package repro

// One benchmark per table and figure of the paper's evaluation, plus
// ablations. Each benchmark regenerates its artifact end to end (at
// reduced campaign sizes so the suite completes in minutes; use
// cmd/reproduce for the full-size campaigns) and reports the headline
// numbers as custom metrics so `go test -bench` output doubles as the
// reproduction record.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/ea"
	"repro/internal/experiment"
	"repro/internal/model"
	"repro/internal/paper"
	"repro/internal/report"
	"repro/internal/sut"
	"repro/internal/tank"
	"repro/internal/target"
)

// benchOpts returns the reduced campaign configuration for benchmarks.
func benchOpts() experiment.Options {
	opts := experiment.DefaultOptions(1)
	opts.Cases = []sut.Case{
		{ID: 1, P1: 8000, P2: 50},
		{ID: 2, P1: 12000, P2: 65},
		{ID: 3, P1: 16000, P2: 80},
	}
	opts.Workers = 8
	return opts
}

// BenchmarkTable1PermeabilityEstimation regenerates Table 1: estimate
// the error permeability of all 25 input/output pairs by fault
// injection on the reimplemented target.
func BenchmarkTable1PermeabilityEstimation(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := experiment.EstimatePermeability(context.Background(), opts, 30)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			e := model.Edge{Module: target.ModDistS, In: 1, Out: 1, From: target.SigPACNT, To: target.SigPulscnt}
			b.ReportMetric(res.Matrix.Get(e), "P(PACNT->pulscnt)")
			b.ReportMetric(float64(res.TotalRuns), "runs")
		}
	}
}

// BenchmarkTable2SignalExposure regenerates Table 2: signal error
// exposures and the PA selection, from the paper's matrix.
func BenchmarkTable2SignalExposure(b *testing.B) {
	p := paper.Table1()
	for i := 0; i < b.N; i++ {
		pr, err := core.BuildProfile(p)
		if err != nil {
			b.Fatal(err)
		}
		sel := core.SelectPA(pr, core.DefaultThresholds())
		if got := len(sel.Selected()); got != 4 {
			b.Fatalf("PA selection has %d signals, want 4", got)
		}
		if i == 0 {
			sp, _ := pr.Signal(target.SigOutValue)
			b.ReportMetric(sp.Exposure, "X(OutValue)")
		}
	}
}

// BenchmarkTable3ResourceRequirements regenerates Table 3: the ROM/RAM
// budget of the EH and PA assertion sets.
func BenchmarkTable3ResourceRequirements(b *testing.B) {
	rig, err := target.NewRig(target.DefaultConfig(12000, 65, 1))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		bank, err := target.NewBank(rig, target.EHSet())
		if err != nil {
			b.Fatal(err)
		}
		eh := bank.TotalCost()
		pa, err := bank.SubsetCost(target.PASet())
		if err != nil {
			b.Fatal(err)
		}
		if eh.ROMBytes != 262 || pa.ROMBytes != 150 {
			b.Fatalf("costs %d/%d, want 262/150", eh.ROMBytes, pa.ROMBytes)
		}
		if i == 0 {
			red := 1 - float64(pa.ROMBytes+pa.RAMBytes)/float64(eh.ROMBytes+eh.RAMBytes)
			b.ReportMetric(red*100, "mem-reduction-%")
		}
	}
}

// BenchmarkTable4InputErrorCoverage regenerates Table 4: detection
// coverage for transient bit-flips at the system inputs.
func BenchmarkTable4InputErrorCoverage(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := experiment.InputCoverage(context.Background(), opts, 45, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.All.PerSet[experiment.SetEH].Estimate(), "c(EH)")
			b.ReportMetric(res.All.PerSet[experiment.SetPA].Estimate(), "c(PA)")
		}
	}
}

// BenchmarkFigure3InternalErrorCoverage regenerates Figure 3: coverage
// under periodic bit-flips into RAM and stack, split by outcome class.
func BenchmarkFigure3InternalErrorCoverage(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := experiment.InternalCoverage(context.Background(), opts, 40, 20)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.RAM.PerSet[experiment.SetEH].Tot.Estimate(), "cRAM(EH)")
			b.ReportMetric(res.RAM.PerSet[experiment.SetPA].Tot.Estimate(), "cRAM(PA)")
			b.ReportMetric(res.Stack.PerSet[experiment.SetEH].Tot.Estimate(), "cStack(EH)")
			b.ReportMetric(res.Stack.PerSet[experiment.SetPA].Tot.Estimate(), "cStack(PA)")
		}
	}
}

// BenchmarkFigure4ImpactTree regenerates Figure 4: the impact tree for
// pulscnt and its propagation paths to TOC2.
func BenchmarkFigure4ImpactTree(b *testing.B) {
	p := paper.Table1()
	for i := 0; i < b.N; i++ {
		tree, err := core.BuildImpactTree(p, target.SigPulscnt)
		if err != nil {
			b.Fatal(err)
		}
		paths := tree.PathsTo(target.SigTOC2)
		imp := core.ImpactFromPaths(paths)
		if imp < 0.020 || imp > 0.022 {
			b.Fatalf("impact = %v, want ~0.021", imp)
		}
		if i == 0 {
			b.ReportMetric(imp, "impact(pulscnt->TOC2)")
		}
	}
}

// BenchmarkFigure5ExposureProfile regenerates Figure 5: the exposure
// profile of the target system.
func BenchmarkFigure5ExposureProfile(b *testing.B) {
	p := paper.Table1()
	for i := 0; i < b.N; i++ {
		pr, err := core.BuildProfile(p)
		if err != nil {
			b.Fatal(err)
		}
		out := report.ProfileFigure(pr, core.ByExposure, "Figure 5")
		if len(out) == 0 {
			b.Fatal("empty profile")
		}
	}
}

// BenchmarkFigure6ImpactProfile regenerates Figure 6: the impact profile
// of the target system.
func BenchmarkFigure6ImpactProfile(b *testing.B) {
	p := paper.Table1()
	for i := 0; i < b.N; i++ {
		pr, err := core.BuildProfile(p)
		if err != nil {
			b.Fatal(err)
		}
		out := report.ProfileFigure(pr, core.ByImpact, "Figure 6")
		if len(out) == 0 {
			b.Fatal("empty profile")
		}
	}
}

// BenchmarkTable5ImpactValues regenerates Table 5: the impact of every
// signal on TOC2.
func BenchmarkTable5ImpactValues(b *testing.B) {
	p := paper.Table1()
	sigs := p.System().SignalIDs()
	for i := 0; i < b.N; i++ {
		for _, s := range sigs {
			if _, err := core.Impact(p, s, target.SigTOC2); err != nil {
				b.Fatal(err)
			}
		}
	}
	imp, _ := core.Impact(p, target.SigSetValue, target.SigTOC2)
	b.ReportMetric(imp, "impact(SetValue->TOC2)")
}

// BenchmarkExtendedSelection regenerates the Section 10 result: the
// extended framework re-derives the EH set.
func BenchmarkExtendedSelection(b *testing.B) {
	p := paper.Table1()
	for i := 0; i < b.N; i++ {
		pr, err := core.BuildProfile(p)
		if err != nil {
			b.Fatal(err)
		}
		sel := core.SelectExtended(pr, core.DefaultThresholds())
		if got := len(sel.Selected()); got != 7 {
			b.Fatalf("extended selection has %d signals, want 7", got)
		}
	}
}

// BenchmarkAblationSelectionPolicies compares exposure-only, impact-only
// and combined placement policies on the paper matrix: how many signals
// each guards and how much of the total impact mass each covers.
func BenchmarkAblationSelectionPolicies(b *testing.B) {
	p := paper.Table1()
	pr, err := core.BuildProfile(p)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		exposureOnly := core.SelectPA(pr, core.Thresholds{ExposureMin: 0.9, ImpactMin: 2, WitnessPermeability: 2})
		combined := core.SelectExtended(pr, core.DefaultThresholds())
		impactOnly := core.SelectExtended(pr, core.Thresholds{ExposureMin: 99, ImpactMin: 0.25, WitnessPermeability: 2})
		if i == 0 {
			b.ReportMetric(float64(len(exposureOnly.Selected())), "n(exposure-only)")
			b.ReportMetric(float64(len(impactOnly.Selected())), "n(impact-only)")
			b.ReportMetric(float64(len(combined.Selected())), "n(combined)")
		}
	}
}

// BenchmarkAblationEATightness sweeps the pulscnt assertion's step
// budget and reports the PACNT detection coverage and false positives
// each setting reaches — the coverage/false-positive trade the EA
// parameters navigate.
func BenchmarkAblationEATightness(b *testing.B) {
	opts := benchOpts()
	steps := []model.Word{4, 16, 64}
	for i := 0; i < b.N; i++ {
		points, err := experiment.EATightnessStudy(context.Background(), opts, 24, steps)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, pt := range points {
				b.ReportMetric(pt.Coverage.Estimate(), fmt.Sprintf("c(step=%d)", pt.MaxStep))
			}
		}
	}
}

// BenchmarkCriticalityMultiOutput exercises Eq. 3-4 on a synthetic
// multi-output system (the arrestment target has one output, so the
// paper reports no numbers; this pins the computation's cost and a
// reference value).
func BenchmarkCriticalityMultiOutput(b *testing.B) {
	sys, err := model.NewBuilder("multi").
		AddSignal("in", model.Uint(16), model.AsSystemInput()).
		AddSignal("mid", model.Uint(16)).
		AddSignal("act", model.Uint(8), model.AsSystemOutput(1.0)).
		AddSignal("diag", model.Uint(16), model.AsSystemOutput(0.2)).
		AddModule("A", model.In("in"), model.Out("mid")).
		AddModule("B", model.In("mid"), model.Out("act", "diag")).
		Build()
	if err != nil {
		b.Fatal(err)
	}
	p := core.NewPermeability(sys)
	p.MustSet("A", 1, 1, 0.8)
	p.MustSet("B", 1, 1, 0.9)
	p.MustSet("B", 1, 2, 0.9)
	for i := 0; i < b.N; i++ {
		c, err := core.Criticality(p, "in")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(c, "criticality(in)")
		}
	}
}

// BenchmarkEABankCheck pins the per-period runtime cost of the full
// assertion bank — the execution-time-overhead side of Table 3.
func BenchmarkEABankCheck(b *testing.B) {
	rig, err := target.NewRig(target.DefaultConfig(12000, 65, 1))
	if err != nil {
		b.Fatal(err)
	}
	bank, err := target.NewBank(rig, target.EHSet())
	if err != nil {
		b.Fatal(err)
	}
	specs, err := target.SpecsFor(target.PASet())
	if err != nil {
		b.Fatal(err)
	}
	paBank, err := ea.NewBank(rig.Bus, target.ControlPeriodMs, specs)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("EH", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bank.Hook(int64(i) * target.ControlPeriodMs)
		}
	})
	b.Run("PA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			paBank.Hook(int64(i) * target.ControlPeriodMs)
		}
	})
}

// BenchmarkArrestmentRun pins the cost of one fault-free arrestment —
// the unit everything else multiplies.
func BenchmarkArrestmentRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rig, err := target.NewRig(target.DefaultConfig(12000, 65, 1))
		if err != nil {
			b.Fatal(err)
		}
		arrested, err := rig.RunUntilArrested(30_000)
		if err != nil {
			b.Fatal(err)
		}
		if !arrested {
			b.Fatal("did not arrest")
		}
	}
}

// BenchmarkExtensionModelSensitivity regenerates the error-model
// sensitivity study (DESIGN.md index A1): coverage of both EA sets under
// five input error models.
func BenchmarkExtensionModelSensitivity(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := experiment.ErrorModelSensitivity(context.Background(), opts, 15)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.PerModel["transient"][experiment.SetEH].Estimate(), "c(transient)")
			b.ReportMetric(res.PerModel["intermittent"][experiment.SetEH].Estimate(), "c(intermittent)")
		}
	}
}

// BenchmarkExtensionRecoveryStudy regenerates the recovery study: the
// three-arm failure-rate comparison under the internal error model.
func BenchmarkExtensionRecoveryStudy(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := experiment.RecoveryStudy(context.Background(), opts, 20, 10, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Total.Baseline.FailureRate(), "fail(baseline)")
			b.ReportMetric(res.Total.Wrapped.FailureRate(), "fail(wrapped)")
			b.ReportMetric(res.Total.Hardened.FailureRate(), "fail(hardened)")
		}
	}
}

// BenchmarkAblationImpactVsMonteCarlo quantifies the path-independence
// assumption in Eq. 2 on the paper's matrix: the analytic impact of
// PACNT on TOC2 versus a Monte-Carlo propagation that respects shared
// edges (FKG: the analytic value is an upper bound).
func BenchmarkAblationImpactVsMonteCarlo(b *testing.B) {
	p := paper.Table1()
	for i := 0; i < b.N; i++ {
		mc, err := core.MonteCarloImpact(p, target.SigPACNT, target.SigTOC2, 20_000, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			eq2, err := core.Impact(p, target.SigPACNT, target.SigTOC2)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(eq2, "eq2")
			b.ReportMetric(mc, "monte-carlo")
		}
	}
}

// BenchmarkGeneralityTankTarget validates the framework's generalized
// applicability (the paper's future work): the full pipeline on the
// second target, a two-output tank level controller.
func BenchmarkGeneralityTankTarget(b *testing.B) {
	opts, err := experiment.DefaultOptionsFor("tank", 1)
	if err != nil {
		b.Fatal(err)
	}
	opts.Cases = opts.Cases[:2]
	opts.MaxRunMs = 20_000
	opts.Workers = 1
	for i := 0; i < b.N; i++ {
		res, err := experiment.EstimatePermeability(context.Background(), opts, 16)
		if err != nil {
			b.Fatal(err)
		}
		ranks, err := tank.RankCriticality(res.Matrix)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(ranks) > 0 {
			b.ReportMetric(ranks[0].Criticality, "top-criticality")
			b.ReportMetric(float64(res.TotalRuns), "runs")
		}
	}
}

// BenchmarkExtensionEAIntegration compares the sampling and inline EA
// deployments on identical error sets — the mechanism behind our
// Table 4 coverage sitting below the paper's.
func BenchmarkExtensionEAIntegration(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		pt, err := experiment.EAIntegrationStudy(context.Background(), opts, 45)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(pt.Sampled.Estimate(), "c(sampled)")
			b.ReportMetric(pt.WriteTriggered.Estimate(), "c(inline)")
			b.ReportMetric(pt.TightInline.Estimate(), "c(inline-tight)")
		}
	}
}

// BenchmarkAnalyticRanking pins the analytic solver's headline number:
// a full placement ranking — compile, solve every source row, profile,
// select — from a cold engine, in well under a millisecond.
func BenchmarkAnalyticRanking(b *testing.B) {
	p := paper.Table1()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pr, err := analytic.New().Profile(p)
		if err != nil {
			b.Fatal(err)
		}
		sel := core.SelectPA(pr, core.DefaultThresholds())
		if got := len(sel.Selected()); got != 4 {
			b.Fatalf("PA selection has %d signals, want 4", got)
		}
	}
}

// BenchmarkAnalyticWhatIfSweep pins the full module × factor
// containment sweep (every module, five factors, single-threaded) that
// replaces one fault-injection campaign per cell.
func BenchmarkAnalyticWhatIfSweep(b *testing.B) {
	p := paper.Table1()
	mods := p.System().ModuleIDs()
	factors := []float64{0, 0.25, 0.5, 0.75, 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := analytic.Sweep(analytic.New(), p, mods, factors, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.BaseTotal, "base-criticality")
		}
	}
}

// BenchmarkAnalyticIncremental pins compositional re-analysis: after
// scaling one module of a 160-signal grid, a warm engine re-solves
// only the rows whose downstream cone contains it.
func BenchmarkAnalyticIncremental(b *testing.B) {
	_, gp := analytic.Grid(16, 10)
	warm := analytic.New()
	if _, err := warm.Profile(gp); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh factor every iteration keeps each profile a genuine
		// re-analysis rather than a memoized replay.
		scaled, err := gp.ScaleModule("M_0_0", 0.5+float64(i)*1e-9)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := warm.Profile(scaled); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonteCarloImpact pins the Monte Carlo estimator's sampling
// throughput after the scratch-hoisting and worker-pool rework, at the
// volume the cyclic validation uses.
func BenchmarkMonteCarloImpact(b *testing.B) {
	p := paper.Table1()
	const samples = 100_000
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.MonteCarloImpactWorkers(p, target.SigPACNT, target.SigTOC2, samples, 1, workers); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(samples*b.N)/b.Elapsed().Seconds(), "samples/s")
		})
	}
}
