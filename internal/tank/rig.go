package tank

import (
	"fmt"

	"repro/internal/memmap"
	"repro/internal/model"
	"repro/internal/sched"
)

// ControlPeriodMs is the control period: every module runs once per
// 10 ms major cycle.
const ControlPeriodMs = 10

// Config is one tank scenario.
type Config struct {
	// InflowBase is the disturbance inflow in m³/s.
	InflowBase float64
	// SetpointUnits is the level setpoint in 0..1000 units.
	SetpointUnits model.Word
	// Seed drives plant noise.
	Seed int64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.InflowBase <= 0 {
		return fmt.Errorf("tank: InflowBase %v must be positive", c.InflowBase)
	}
	if c.SetpointUnits < 100 || c.SetpointUnits > 900 {
		return fmt.Errorf("tank: SetpointUnits %d outside the controllable band", c.SetpointUnits)
	}
	return nil
}

// TestCase is one workload entry.
type TestCase struct {
	ID            int
	InflowBase    float64
	SetpointUnits model.Word
}

// Config returns the scenario configuration.
func (tc TestCase) Config(seed int64) Config {
	return Config{InflowBase: tc.InflowBase, SetpointUnits: tc.SetpointUnits, Seed: seed}
}

// String implements fmt.Stringer.
func (tc TestCase) String() string {
	return fmt.Sprintf("tank case %d: inflow %.2f m3/s, setpoint %d", tc.ID, tc.InflowBase, tc.SetpointUnits)
}

// DefaultTestCases returns the 3x2 workload grid.
func DefaultTestCases() []TestCase {
	inflows := []float64{0.06, 0.09, 0.12}
	setpoints := []model.Word{450, 550}
	var out []TestCase
	id := 1
	for _, q := range inflows {
		for _, sp := range setpoints {
			out = append(out, TestCase{ID: id, InflowBase: q, SetpointUnits: sp})
			id++
		}
	}
	return out
}

// Rig is an assembled tank target.
type Rig struct {
	Cfg   Config
	Sys   *model.System
	Bus   *model.Bus
	Mem   *memmap.Map
	Plant *Plant
	Sched *sched.Scheduler
}

// NewRig assembles a tank rig for one scenario.
func NewRig(cfg Config) (*Rig, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sys := NewSystem()
	bus := model.NewBus(sys)
	mem := &memmap.Map{}
	plant := NewPlant(DefaultPlantParams(cfg.InflowBase, cfg.Seed))

	table := sched.Table{
		SlotMs: 1,
		Slots: [][]model.ModuleID{
			1: {ModSensL},
			2: {ModSensF},
			3: {ModCtrl},
			4: {ModAlarm},
			5: {ModAct},
			9: {},
		},
	}
	s, err := sched.New(bus, table)
	if err != nil {
		return nil, err
	}
	mods := []model.Runnable{
		newSensL(mem),
		newSensF(mem),
		newCtrl(mem, cfg.SetpointUnits),
		newAlarmM(mem),
		newAct(mem),
	}
	for _, m := range mods {
		if err := s.Register(m); err != nil {
			return nil, err
		}
	}

	r := &Rig{Cfg: cfg, Sys: sys, Bus: bus, Mem: mem, Plant: plant, Sched: s}
	s.OnPreSlot(func(nowMs int64) {
		r.Plant.StepMs(1)
		bus.Poke(SigLvlADC, r.Plant.LevelADC())
		bus.Poke(SigFlwCnt, r.Plant.FlowCount())
	})
	s.OnPostSlot(func(nowMs int64) {
		r.Plant.SetValve(bus.Peek(SigValve))
	})
	return r, nil
}

// RunFor runs the rig for durationMs of scheduler time.
func (r *Rig) RunFor(durationMs int64) error { return r.Sched.RunFor(durationMs) }

// Outcome classifies a finished run against the tank specification.
type Outcome struct {
	// InBand reports whether the level stayed within 1..9 m throughout.
	InBand bool
	// MinLevelM and MaxLevelM are the observed extremes.
	MinLevelM, MaxLevelM float64
	// FalseAlarm reports an alarm raised while the level was in the
	// comfortable band at run end.
	FalseAlarm bool
}

// Failed reports whether the run violated the specification.
func (o Outcome) Failed() bool { return !o.InBand }

// Classify evaluates the rig after a run.
func (r *Rig) Classify() Outcome {
	o := Outcome{
		MinLevelM: r.Plant.MinLevelM(),
		MaxLevelM: r.Plant.MaxLevelM(),
	}
	o.InBand = o.MinLevelM > 1.0 && o.MaxLevelM < 9.0
	alarm := r.Bus.Peek(SigAlarm)
	frac := r.Plant.LevelM() / r.Plant.Params().MaxLevelM * 1000
	o.FalseAlarm = alarm != AlarmNone && frac > 360 && frac < 640
	return o
}
