package tank

import (
	"repro/internal/memmap"
	"repro/internal/model"
)

// Signal names of the tank target.
const (
	SigLvlADC model.SignalID = "LVL_ADC"
	SigFlwCnt model.SignalID = "FLW_CNT"
	SigLevel  model.SignalID = "level"
	SigTrend  model.SignalID = "trend"
	SigInflow model.SignalID = "inflow"
	SigCmd    model.SignalID = "cmd"
	SigValve  model.SignalID = "VALVE"
	SigAlarm  model.SignalID = "ALARM"
)

// Module names of the tank target.
const (
	ModSensL model.ModuleID = "SENS_L"
	ModSensF model.ModuleID = "SENS_F"
	ModCtrl  model.ModuleID = "CTRL"
	ModAlarm model.ModuleID = "ALARM_M"
	ModAct   model.ModuleID = "ACT"
)

// Alarm codes carried by the ALARM output.
const (
	AlarmNone model.Word = 0
	AlarmLow  model.Word = 1
	AlarmHigh model.Word = 2
)

// NewSystem builds the static description: five modules, eight signals,
// two system outputs with different criticalities — the multi-output
// shape the arrestment target lacks.
func NewSystem() *model.System {
	return model.NewBuilder("tank-level").
		AddSignal(SigLvlADC, model.Uint(10), model.AsSystemInput(),
			model.WithDoc("level sensor analog-to-digital converter")).
		AddSignal(SigFlwCnt, model.Uint(16), model.AsSystemInput(),
			model.WithDoc("inflow meter pulse counter")).
		AddSignal(SigLevel, model.Uint(10),
			model.WithDoc("filtered level, 0..1000 units over the tank height")).
		AddSignal(SigTrend, model.Int(8),
			model.WithDoc("level slope per control period")).
		AddSignal(SigInflow, model.Uint(8),
			model.WithDoc("inflow pulses per measurement window")).
		AddSignal(SigCmd, model.Uint(8),
			model.WithDoc("regulator valve demand")).
		AddSignal(SigValve, model.Uint(8), model.AsSystemOutput(1.0),
			model.WithDoc("valve actuator register")).
		AddSignal(SigAlarm, model.Uint(2), model.AsSystemOutput(0.25),
			model.WithDoc("alarm line: 0 none, 1 low, 2 high")).
		AddModule(ModSensL, model.In(SigLvlADC), model.Out(SigLevel, SigTrend)).
		AddModule(ModSensF, model.In(SigFlwCnt), model.Out(SigInflow)).
		AddModule(ModCtrl, model.In(SigLevel, SigTrend, SigInflow), model.Out(SigCmd)).
		AddModule(ModAlarm, model.In(SigLevel, SigTrend), model.Out(SigAlarm)).
		AddModule(ModAct, model.In(SigCmd), model.Out(SigValve)).
		MustBuild()
}

// AllSignals returns every signal in declaration order.
func AllSignals() []model.SignalID {
	return []model.SignalID{
		SigLvlADC, SigFlwCnt, SigLevel, SigTrend, SigInflow,
		SigCmd, SigValve, SigAlarm,
	}
}

// sensL filters the level ADC (average of 4 burst samples, coarse
// quantization) and differentiates it into a trend.
type sensL struct {
	prevLevel *memmap.Var // RAM: previous filtered level
	locSum    *memmap.Var // stack: burst accumulator
}

func newSensL(mem *memmap.Map) *sensL {
	return &sensL{
		prevLevel: mem.AllocRAM(string(ModSensL), "prevLevel", model.Uint(10), 500),
		locSum:    mem.AllocStack(string(ModSensL), "sum", model.Uint(16)),
	}
}

func (s *sensL) ModuleID() model.ModuleID { return ModSensL }
func (s *sensL) Reset()                   {}

func (s *sensL) Step(e *model.Exec) {
	s.locSum.Set(0)
	for k := 0; k < 4; k++ {
		s.locSum.Set(s.locSum.Get() + e.In(1))
	}
	level := s.locSum.Get() / 4 * 1000 / 1023
	level -= level % 4

	prev := s.prevLevel.Get()
	trend := level - prev
	if trend > 127 {
		trend = 127
	}
	if trend < -128 {
		trend = -128
	}
	s.prevLevel.Set(level)
	e.Out(1, level)
	e.Out(2, trend)
}

// sensF turns the inflow pulse counter into pulses per measurement
// window.
type sensF struct {
	winLen   model.Word
	prevCnt  *memmap.Var // RAM: previous counter sample
	winCount *memmap.Var // RAM: pulses in the current window
	winPos   *memmap.Var // RAM: window position
	lastWin  *memmap.Var // RAM: last complete window
	locDelta *memmap.Var // stack: per-invocation delta
}

func newSensF(mem *memmap.Map) *sensF {
	return &sensF{
		winLen:   16,
		prevCnt:  mem.AllocRAM(string(ModSensF), "prevCnt", model.Uint(16), 0),
		winCount: mem.AllocRAM(string(ModSensF), "winCount", model.Uint(8), 0),
		winPos:   mem.AllocRAM(string(ModSensF), "winPos", model.Uint(8), 0),
		lastWin:  mem.AllocRAM(string(ModSensF), "lastWin", model.Uint(8), 0),
		locDelta: mem.AllocStack(string(ModSensF), "delta", model.Uint(8)),
	}
}

func (s *sensF) ModuleID() model.ModuleID { return ModSensF }
func (s *sensF) Reset()                   {}

func (s *sensF) Step(e *model.Exec) {
	cnt := e.In(1)
	d := (cnt - s.prevCnt.Get()) & 0xFFFF
	if d > 200 {
		d = 200 // implausible: meter glitch
	}
	s.locDelta.Set(d)
	s.prevCnt.Set(cnt)
	s.winCount.Add(s.locDelta.Get())
	if pos := s.winPos.Add(1); pos >= s.winLen {
		s.lastWin.Set(s.winCount.Get())
		s.winCount.Set(0)
		s.winPos.Set(0)
	}
	e.Out(1, s.lastWin.Get())
}

// ctrl is the level regulator: proportional + integral on the setpoint
// error, derivative damping from the trend, feed-forward from the
// measured inflow.
type ctrl struct {
	setpoint model.Word // level units
	ffGain   model.Word // cmd units per inflow pulse/window

	integ  *memmap.Var // RAM: integrator
	locErr *memmap.Var // stack: current error
	locCmd *memmap.Var // stack: computed command
}

const ctrlIntegMax = 2000

func newCtrl(mem *memmap.Map, setpoint model.Word) *ctrl {
	return &ctrl{
		setpoint: setpoint,
		ffGain:   9,
		integ:    mem.AllocRAM(string(ModCtrl), "integ", model.Int(16), 0),
		locErr:   mem.AllocStack(string(ModCtrl), "err", model.Int(16)),
		locCmd:   mem.AllocStack(string(ModCtrl), "cmd", model.Uint(8)),
	}
}

func (c *ctrl) ModuleID() model.ModuleID { return ModCtrl }
func (c *ctrl) Reset()                   {}

func (c *ctrl) Step(e *model.Exec) {
	level := e.In(1)
	trend := e.In(2)
	inflow := e.In(3)

	c.locErr.Set(level - c.setpoint)
	err := c.locErr.Get()

	integ := c.integ.Get() + err/8
	if integ > ctrlIntegMax {
		integ = ctrlIntegMax
	}
	if integ < -ctrlIntegMax {
		integ = -ctrlIntegMax
	}
	c.integ.Set(integ)

	cmd := c.ffGain*inflow + err*2 + integ/32 + trend*4
	if cmd < 0 {
		cmd = 0
	}
	if cmd > 255 {
		cmd = 255
	}
	c.locCmd.Set(cmd)
	e.Out(1, c.locCmd.Get())
}

// alarmM raises the alarm line with hysteresis, using the trend to
// latch slightly earlier when the level is moving toward a bound.
type alarmM struct {
	highOn, highOff model.Word
	lowOn, lowOff   model.Word
	state           *memmap.Var // RAM: current alarm code
}

func newAlarmM(mem *memmap.Map) *alarmM {
	return &alarmM{
		highOn: 700, highOff: 660,
		lowOn: 300, lowOff: 340,
		state: mem.AllocRAM(string(ModAlarm), "state", model.Uint(2), 0),
	}
}

func (a *alarmM) ModuleID() model.ModuleID { return ModAlarm }
func (a *alarmM) Reset()                   {}

func (a *alarmM) Step(e *model.Exec) {
	level := e.In(1)
	trend := e.In(2)
	// Predictive margin: look one window ahead along the trend.
	pred := level + trend*8

	state := a.state.Get()
	switch state {
	case AlarmHigh:
		if level < a.highOff {
			state = AlarmNone
		}
	case AlarmLow:
		if level > a.lowOff {
			state = AlarmNone
		}
	default:
		switch {
		case level >= a.highOn || pred >= a.highOn+40:
			state = AlarmHigh
		case level <= a.lowOn || pred <= a.lowOn-40:
			state = AlarmLow
		}
	}
	a.state.Set(state)
	e.Out(1, state)
}

// act drives the valve register with a slew limit.
type act struct {
	maxSlew model.Word
	prev    *memmap.Var // RAM: last command written
	locOut  *memmap.Var // stack: slewed value
}

func newAct(mem *memmap.Map) *act {
	return &act{
		maxSlew: 8,
		prev:    mem.AllocRAM(string(ModAct), "prev", model.Uint(8), 0),
		locOut:  mem.AllocStack(string(ModAct), "out", model.Uint(8)),
	}
}

func (a *act) ModuleID() model.ModuleID { return ModAct }
func (a *act) Reset()                   {}

func (a *act) Step(e *model.Exec) {
	cmd := e.In(1)
	prev := a.prev.Get()
	d := cmd - prev
	if d > a.maxSlew {
		d = a.maxSlew
	}
	if d < -a.maxSlew {
		d = -a.maxSlew
	}
	a.locOut.Set(prev + d)
	v := a.locOut.Get()
	a.prev.Set(v)
	e.Out(1, v)
}
