// Package tank is a second, independent target system — the paper's
// stated future work is "applying the analysis framework on alternate
// target systems in order to validate the generalized applicability".
// It is a tank level controller: five modules hold the level of a
// buffer tank at a setpoint against a varying inflow, by modulating an
// outflow valve, and raise an alarm output when the level leaves its
// safe band. Unlike the arrestment target it has TWO system outputs
// with different criticalities (the valve command and the alarm line),
// so impact and criticality genuinely diverge at runtime (paper
// Section 8).
package tank

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/model"
)

// PlantParams configures the physical tank.
type PlantParams struct {
	// AreaM2 is the tank cross-section.
	AreaM2 float64
	// MaxLevelM is the physical tank height.
	MaxLevelM float64
	// InitialLevelM is the level at start.
	InitialLevelM float64
	// ValveCoeff relates valve opening (0..1) and sqrt(level) to
	// outflow in m³/s.
	ValveCoeff float64
	// InflowBase and InflowVar parameterize the disturbance inflow in
	// m³/s: base plus a slow seeded random walk within ±InflowVar.
	InflowBase, InflowVar float64
	// PulsePerM3 is the inflow meter resolution (pulses per m³).
	PulsePerM3 float64
	// LevelNoiseLSB is the half-range of uniform level-sensor noise.
	LevelNoiseLSB int
	// Seed drives sensor noise and the inflow walk.
	Seed int64
}

// DefaultPlantParams returns a tank that the default controller holds
// comfortably in band for every test case.
func DefaultPlantParams(inflowBase float64, seed int64) PlantParams {
	return PlantParams{
		AreaM2:        4,
		MaxLevelM:     10,
		InitialLevelM: 5,
		ValveCoeff:    0.08,
		InflowBase:    inflowBase,
		InflowVar:     0.05,
		PulsePerM3:    1000,
		LevelNoiseLSB: 1,
		Seed:          seed,
	}
}

// Validate reports whether the parameters are usable.
func (p PlantParams) Validate() error {
	switch {
	case p.AreaM2 <= 0:
		return fmt.Errorf("tank: AreaM2 %v must be positive", p.AreaM2)
	case p.MaxLevelM <= 0:
		return fmt.Errorf("tank: MaxLevelM %v must be positive", p.MaxLevelM)
	case p.InitialLevelM < 0 || p.InitialLevelM > p.MaxLevelM:
		return fmt.Errorf("tank: InitialLevelM %v outside [0, %v]", p.InitialLevelM, p.MaxLevelM)
	case p.ValveCoeff <= 0:
		return fmt.Errorf("tank: ValveCoeff %v must be positive", p.ValveCoeff)
	case p.InflowBase < 0 || p.InflowVar < 0:
		return fmt.Errorf("tank: negative inflow parameters")
	case p.PulsePerM3 <= 0:
		return fmt.Errorf("tank: PulsePerM3 %v must be positive", p.PulsePerM3)
	}
	return nil
}

// Plant simulates the tank.
type Plant struct {
	p   PlantParams
	rng *rand.Rand

	timeS  float64
	level  float64 // m
	valve  float64 // 0..1 commanded opening (applied directly; valve is fast)
	inflow float64 // current inflow, m³/s

	pulses     float64 // accumulated inflow volume in pulses
	levelNoise int

	minLevel, maxLevel float64
}

// NewPlant creates a tank plant; it panics on invalid parameters.
func NewPlant(p PlantParams) *Plant {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Plant{
		p:        p,
		rng:      rand.New(rand.NewSource(p.Seed)),
		level:    p.InitialLevelM,
		inflow:   p.InflowBase,
		minLevel: p.InitialLevelM,
		maxLevel: p.InitialLevelM,
	}
}

// Params returns the configuration.
func (pl *Plant) Params() PlantParams { return pl.p }

// SetValve applies the actuator register (0..255).
func (pl *Plant) SetValve(v model.Word) {
	if v < 0 {
		v = 0
	}
	if v > 255 {
		v = 255
	}
	pl.valve = float64(v) / 255
}

// StepMs advances the simulation by dtMs milliseconds.
func (pl *Plant) StepMs(dtMs int64) {
	const dt = 0.001
	for i := int64(0); i < dtMs; i++ {
		// Slow inflow random walk, clamped to the disturbance band.
		pl.inflow += (pl.rng.Float64() - 0.5) * 0.002
		lo, hi := pl.p.InflowBase-pl.p.InflowVar, pl.p.InflowBase+pl.p.InflowVar
		if pl.inflow < lo {
			pl.inflow = lo
		}
		if pl.inflow > hi {
			pl.inflow = hi
		}

		out := pl.p.ValveCoeff * pl.valve * math.Sqrt(math.Max(pl.level, 0))
		pl.level += (pl.inflow - out) / pl.p.AreaM2 * dt
		if pl.level < 0 {
			pl.level = 0
		}
		if pl.level > pl.p.MaxLevelM {
			pl.level = pl.p.MaxLevelM
		}
		if pl.level < pl.minLevel {
			pl.minLevel = pl.level
		}
		if pl.level > pl.maxLevel {
			pl.maxLevel = pl.level
		}
		pl.pulses += pl.inflow * dt * pl.p.PulsePerM3
		pl.timeS += dt
	}
	pl.levelNoise = pl.rng.Intn(2*pl.p.LevelNoiseLSB+1) - pl.p.LevelNoiseLSB
}

// LevelADC returns the 10-bit level sensor sample.
func (pl *Plant) LevelADC() model.Word {
	raw := int64(pl.level/pl.p.MaxLevelM*1023) + int64(pl.levelNoise)
	if raw < 0 {
		raw = 0
	}
	if raw > 1023 {
		raw = 1023
	}
	return model.Word(raw)
}

// FlowCount returns the 16-bit inflow pulse counter (wraps).
func (pl *Plant) FlowCount() model.Word {
	return model.Word(int64(pl.pulses)) & 0xFFFF
}

// LevelM returns the true level in meters.
func (pl *Plant) LevelM() float64 { return pl.level }

// MinLevelM and MaxLevelM return the observed extremes.
func (pl *Plant) MinLevelM() float64 { return pl.minLevel }

// MaxLevelM returns the highest level seen.
func (pl *Plant) MaxLevelM() float64 { return pl.maxLevel }

// TimeS returns elapsed plant time.
func (pl *Plant) TimeS() float64 { return pl.timeS }
