package tank

import (
	"repro/internal/core"
	"repro/internal/model"
)

// CriticalityReport ranks the tank's internal signals by impact on each
// output and by criticality under the declared output criticalities —
// the runtime multi-output demonstration of Eqs. 3–4.
type CriticalityReport struct {
	Signal      model.SignalID
	ImpactValve float64
	ImpactAlarm float64
	Criticality float64
}

// RankCriticality profiles the measured matrix and returns the internal
// signals ranked by criticality, descending.
func RankCriticality(m *core.Permeability) ([]CriticalityReport, error) {
	pr, err := core.BuildProfile(m)
	if err != nil {
		return nil, err
	}
	var out []CriticalityReport
	for _, sp := range pr.Ranked(core.ByCriticality) {
		if sp.Kind != model.KindIntermediate {
			continue
		}
		out = append(out, CriticalityReport{
			Signal:      sp.Signal,
			ImpactValve: sp.ImpactOn[SigValve],
			ImpactAlarm: sp.ImpactOn[SigAlarm],
			Criticality: sp.Criticality,
		})
	}
	return out, nil
}
