package tank

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/fi"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/trace"
)

// CampaignOptions configures the tank permeability campaign.
type CampaignOptions struct {
	Cases []TestCase
	// PerInput is the number of injections per module input across all
	// cases.
	PerInput int
	// RunMs is the fixed run horizon.
	RunMs int64
	Seed  int64
}

// DefaultCampaignOptions returns a laptop-scale campaign.
func DefaultCampaignOptions(seed int64) CampaignOptions {
	return CampaignOptions{
		Cases:    DefaultTestCases(),
		PerInput: 96,
		RunMs:    40_000,
		Seed:     seed,
	}
}

// Validate reports whether the options are usable.
func (o CampaignOptions) Validate() error {
	switch {
	case len(o.Cases) == 0:
		return fmt.Errorf("tank: no test cases")
	case o.PerInput < 1:
		return fmt.Errorf("tank: PerInput %d must be >= 1", o.PerInput)
	case o.RunMs < 1000:
		return fmt.Errorf("tank: RunMs %d too short", o.RunMs)
	}
	return nil
}

// CampaignResult is the estimated matrix with raw counts.
type CampaignResult struct {
	Matrix  *core.Permeability
	Samples map[model.Edge]stats.Proportion
	Runs    int
}

// tankJob is one injection run: a bit-flip at one module input port,
// against one case's golden trace.
type tankJob struct {
	mod     *model.ModuleDecl
	port    model.PortRef
	sig     *model.Signal
	caseIdx int
	// watch and cutoffs implement the direct-errors-only rule for this
	// input (shared across the port's jobs).
	watch, cutoffs []model.SignalID
}

// tankOutcome is one run's evaluation.
type tankOutcome struct {
	applied bool
	ir      *trace.Trace
}

// tankCampaign is the tank permeability estimation on the shared
// campaign engine — the same Plan/Execute/Reduce decomposition the
// arrestment campaigns use, demonstrating it is target-independent.
type tankCampaign struct {
	opts    CampaignOptions
	sys     *model.System
	goldens []*trace.Trace
}

func (c *tankCampaign) Name() string { return "tank-permeability" }

func (c *tankCampaign) Plan() ([]tankJob, error) {
	// Golden traces per case.
	c.goldens = make([]*trace.Trace, len(c.opts.Cases))
	for i, tc := range c.opts.Cases {
		tr, err := runOnce(tc.Config(c.opts.Seed*101+int64(tc.ID)), AllSignals(), c.opts.RunMs, nil)
		if err != nil {
			return nil, err
		}
		c.goldens[i] = tr
	}

	perCase := c.opts.PerInput / len(c.opts.Cases)
	if perCase < 1 {
		perCase = 1
	}
	var plan []tankJob
	for _, mod := range c.sys.Modules() {
		for _, in := range mod.Inputs {
			port := model.PortRef{Module: mod.ID, Dir: model.DirIn, Index: in.Index}
			sig, _ := c.sys.Signal(in.Signal)

			// Watch the module's outputs and its cutoff inputs.
			outputs := map[model.SignalID]bool{}
			var watch []model.SignalID
			var cutoffs []model.SignalID
			for _, op := range mod.Outputs {
				outputs[op.Signal] = true
				watch = append(watch, op.Signal)
			}
			for _, other := range mod.Inputs {
				if other.Signal == in.Signal || outputs[other.Signal] {
					continue
				}
				watch = append(watch, other.Signal)
				cutoffs = append(cutoffs, other.Signal)
			}

			for ci := range c.opts.Cases {
				for k := 0; k < perCase; k++ {
					plan = append(plan, tankJob{
						mod: mod, port: port, sig: sig, caseIdx: ci,
						watch: watch, cutoffs: cutoffs,
					})
				}
			}
		}
	}
	return plan, nil
}

func (c *tankCampaign) Execute(_ context.Context, j tankJob, index int) (tankOutcome, error) {
	rng := rand.New(rand.NewSource(c.opts.Seed*100_003 + int64(index)))
	tc := c.opts.Cases[j.caseIdx]
	flip := &fi.ReadFlip{
		Port:   j.port,
		Bit:    uint8(rng.Intn(int(j.sig.Type.Width))),
		FromMs: rng.Int63n(c.opts.RunMs - 1000),
	}
	inj := fi.NewInjector(flip)
	ir, err := runOnce(tc.Config(c.opts.Seed*101+int64(tc.ID)), j.watch, c.opts.RunMs, inj)
	if err != nil {
		return tankOutcome{}, err
	}
	applied, _ := flip.Applied()
	return tankOutcome{applied: applied, ir: ir}, nil
}

func (c *tankCampaign) Reduce(plan []tankJob, results []tankOutcome) (*CampaignResult, error) {
	res := &CampaignResult{
		Matrix:  core.NewPermeability(c.sys),
		Samples: make(map[model.Edge]stats.Proportion),
	}
	for i, j := range plan {
		out := results[i]
		res.Runs++
		if !out.applied {
			continue
		}
		cutoff := -1
		for _, s := range j.cutoffs {
			if fd := trace.FirstDifference(c.goldens[j.caseIdx], out.ir, s); fd != trace.NoDifference {
				if cutoff < 0 || fd < cutoff {
					cutoff = fd
				}
			}
		}
		for _, op := range j.mod.Outputs {
			fd := trace.FirstDifference(c.goldens[j.caseIdx], out.ir, op.Signal)
			direct := fd != trace.NoDifference && (cutoff < 0 || fd <= cutoff)
			e := model.Edge{Module: j.mod.ID, In: j.port.Index, Out: op.Index, From: j.sig.ID, To: op.Signal}
			p := res.Samples[e]
			p.Add(direct)
			res.Samples[e] = p
		}
	}
	for e, p := range res.Samples {
		if err := res.Matrix.SetEdge(e, p.Estimate()); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func (c *tankCampaign) Describe(j tankJob, index int) string {
	return fmt.Sprintf("seed=%d case=%d signal=%s", c.opts.Seed, c.opts.Cases[j.caseIdx].ID, j.sig.ID)
}

// EstimatePermeability runs the paper's permeability-estimation method
// on the tank target: single transient bit-flips at every module input,
// golden-run comparison per output, direct errors only. It validates
// the framework's "generalized applicability" beyond the arrestment
// system (the paper's stated future work).
func EstimatePermeability(opts CampaignOptions) (*CampaignResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	c := &tankCampaign{opts: opts, sys: NewSystem()}
	return campaign.Execute[tankJob, tankOutcome, *CampaignResult](context.Background(), c, campaign.Serial{}, nil)
}

// runOnce executes one tank run, recording the watch signals at slot
// resolution, optionally with an injector installed.
func runOnce(cfg Config, watch []model.SignalID, runMs int64, inj *fi.Injector) (*trace.Trace, error) {
	rig, err := NewRig(cfg)
	if err != nil {
		return nil, err
	}
	if inj != nil {
		rig.Sched.OnPreSlot(inj.Hook)
		rig.Bus.OnRead(inj.ReadHook())
	}
	rec := trace.NewRecorder(rig.Bus, watch, 1, runMs)
	rig.Sched.OnPostSlot(rec.Hook)
	if err := rig.RunFor(runMs); err != nil {
		return nil, err
	}
	return rec.Trace(), nil
}

// CriticalityReport ranks the tank's internal signals by impact on each
// output and by criticality under the declared output criticalities —
// the runtime multi-output demonstration of Eqs. 3–4.
type CriticalityReport struct {
	Signal      model.SignalID
	ImpactValve float64
	ImpactAlarm float64
	Criticality float64
}

// RankCriticality profiles the measured matrix and returns the internal
// signals ranked by criticality, descending.
func RankCriticality(m *core.Permeability) ([]CriticalityReport, error) {
	pr, err := core.BuildProfile(m)
	if err != nil {
		return nil, err
	}
	var out []CriticalityReport
	for _, sp := range pr.Ranked(core.ByCriticality) {
		if sp.Kind != model.KindIntermediate {
			continue
		}
		out = append(out, CriticalityReport{
			Signal:      sp.Signal,
			ImpactValve: sp.ImpactOn[SigValve],
			ImpactAlarm: sp.ImpactOn[SigAlarm],
			Criticality: sp.Criticality,
		})
	}
	return out, nil
}
