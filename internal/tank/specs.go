package tank

import (
	"fmt"

	"repro/internal/ea"
	"repro/internal/erm"
)

// Names of the executable assertions guarding the tank signals. The
// bounds are tuned against the fault-free workload grid (all default
// cases, multiple seeds) with 2-4x margin over the observed fault-free
// dynamics, the same methodology the arrestment target's EA1-EA7 use.
const (
	TEALevel  = "TEA-level"  // level: range and rate
	TEATrend  = "TEA-trend"  // trend: range and rate
	TEAInflow = "TEA-inflow" // inflow: range and rate
	TEAFlw    = "TEA-flw"    // FLW_CNT: bounded counter increments
	TEAValve  = "TEA-valve"  // VALVE: range and rate
)

// AllEASpecs returns the experience-based assertion set for the tank:
// one assertion on every internally generated non-boolean signal that
// admits a meaningful bound (cmd slews across its full width by design,
// so no range or rate assertion separates corruption from control
// action; ALARM is a 2-bit enum guarded by the failure classifier).
func AllEASpecs() []ea.Spec {
	return []ea.Spec{
		{
			// The filtered level tracks the slow plant: fault-free it
			// stays well inside 440..560 units and moves at most 4
			// units per period.
			Name: TEALevel, Signal: SigLevel, Kind: ea.KindBehaviour,
			Min: 50, Max: 990, MaxUp: 24, MaxDown: 24, WarmupChecks: 3,
		},
		{
			// The quantized trend is +-4 units fault-free.
			Name: TEATrend, Signal: SigTrend, Kind: ea.KindBehaviour,
			Min: -30, Max: 30, MaxUp: 24, MaxDown: 24, WarmupChecks: 3,
		},
		{
			// The windowed pulse count peaks at 27 at the highest
			// inflow; window updates jump by up to 19 units.
			Name: TEAInflow, Signal: SigInflow, Kind: ea.KindBehaviour,
			Min: 0, Max: 60, MaxUp: 40, MaxDown: 40, WarmupChecks: 3,
		},
		{
			// The hardware flow counter gains at most 2 counts per
			// period at the highest inflow.
			Name: TEAFlw, Signal: SigFlwCnt, Kind: ea.KindCounter,
			MinStep: 0, MaxStep: 8, WrapWidth: 16, WarmupChecks: 2,
		},
		{
			// ACT slew-limits the valve to 8 units per invocation; the
			// 0/255 rails are saturation-exempt.
			Name: TEAValve, Signal: SigValve, Kind: ea.KindBehaviour,
			Min: 0, Max: 255, MaxUp: 24, MaxDown: 24, WarmupChecks: 3,
		},
	}
}

// SpecsFor resolves assertion names to their specifications.
func SpecsFor(names []string) ([]ea.Spec, error) {
	all := AllEASpecs()
	byName := make(map[string]ea.Spec, len(all))
	for _, s := range all {
		byName[s.Name] = s
	}
	out := make([]ea.Spec, 0, len(names))
	for _, n := range names {
		s, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("tank: unknown assertion %q", n)
		}
		out = append(out, s)
	}
	return out, nil
}

// EHSet is the experience-based placement over the tank signals.
func EHSet() []string {
	return []string{TEALevel, TEATrend, TEAInflow, TEAFlw, TEAValve}
}

// PASet is the exposure-selected placement: the level/valve chain that
// feeds the criticality-1.0 VALVE output dominates signal exposure.
func PASet() []string {
	return []string{TEALevel, TEAValve}
}

// ExtendedSet is the extended analytical placement; as on the
// arrestment target it coincides with the experience-based set.
func ExtendedSet() []string {
	return EHSet()
}

// DefaultERMSpecs returns recovery wrappers for the tank: rate-based
// wrappers on the level/valve chain plus a range wrapper on the window
// pulse count, with bounds loose enough to stay silent across the
// fault-free workload grid.
func DefaultERMSpecs() []erm.Spec {
	return []erm.Spec{
		{
			Name: "ERM-level", Signal: SigLevel,
			Min: 0, Max: 1023, MaxUp: 30, MaxDown: 30,
			Policy: erm.PolicyHoldLast, WarmupWrites: 4,
		},
		{
			Name: "ERM-inflow", Signal: SigInflow,
			Min: 0, Max: 80, MaxUp: 60, MaxDown: 60,
			Policy: erm.PolicyHoldLast, WarmupWrites: 4,
		},
		{
			Name: "ERM-valve", Signal: SigValve,
			Min: 0, Max: 255, MaxUp: 30, MaxDown: 30,
			Policy: erm.PolicyClamp, WarmupWrites: 4,
		},
	}
}
