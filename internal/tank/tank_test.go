package tank

import (
	"testing"

	"repro/internal/model"
)

func TestPlantParamsValidate(t *testing.T) {
	good := DefaultPlantParams(0.09, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*PlantParams)
	}{
		{"area", func(p *PlantParams) { p.AreaM2 = 0 }},
		{"height", func(p *PlantParams) { p.MaxLevelM = 0 }},
		{"initial", func(p *PlantParams) { p.InitialLevelM = 99 }},
		{"valve", func(p *PlantParams) { p.ValveCoeff = 0 }},
		{"inflow", func(p *PlantParams) { p.InflowBase = -1 }},
		{"pulses", func(p *PlantParams) { p.PulsePerM3 = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := good
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestPlantFillsWithValveClosed(t *testing.T) {
	pl := NewPlant(DefaultPlantParams(0.12, 1))
	start := pl.LevelM()
	pl.StepMs(20_000)
	if pl.LevelM() <= start {
		t.Errorf("level did not rise with the valve closed: %.2f -> %.2f", start, pl.LevelM())
	}
}

func TestPlantDrainsWithValveOpen(t *testing.T) {
	pl := NewPlant(DefaultPlantParams(0.06, 1))
	pl.SetValve(255)
	start := pl.LevelM()
	pl.StepMs(20_000)
	if pl.LevelM() >= start {
		t.Errorf("level did not fall with the valve open: %.2f -> %.2f", start, pl.LevelM())
	}
}

func TestPlantSensors(t *testing.T) {
	pl := NewPlant(DefaultPlantParams(0.09, 1))
	pl.StepMs(5_000)
	adc := pl.LevelADC()
	if adc < 0 || adc > 1023 {
		t.Errorf("LevelADC = %d outside 10 bits", adc)
	}
	want := model.Word(pl.LevelM() / pl.Params().MaxLevelM * 1023)
	if diff := adc - want; diff < -3 || diff > 3 {
		t.Errorf("LevelADC = %d, want ~%d", adc, want)
	}
	// ~0.09 m³/s for 5 s at 1000 pulses/m³ = ~450 pulses.
	if got := pl.FlowCount(); got < 200 || got > 700 {
		t.Errorf("FlowCount = %d, want ~450 within walk range", got)
	}
}

func TestSystemStructure(t *testing.T) {
	sys := NewSystem()
	if got := len(sys.Modules()); got != 5 {
		t.Errorf("modules = %d, want 5", got)
	}
	if got := len(sys.Edges()); got != 9 {
		t.Errorf("edges = %d, want 9", got)
	}
	outs := sys.SystemOutputs()
	if len(outs) != 2 {
		t.Fatalf("outputs = %v, want 2", outs)
	}
	valve, _ := sys.Signal(SigValve)
	alarm, _ := sys.Signal(SigAlarm)
	if valve.Criticality <= alarm.Criticality {
		t.Errorf("valve criticality %v not above alarm %v", valve.Criticality, alarm.Criticality)
	}
}

func TestGoldenRunsStayInBand(t *testing.T) {
	for _, tc := range DefaultTestCases() {
		tc := tc
		t.Run(tc.String(), func(t *testing.T) {
			rig, err := NewRig(tc.Config(1))
			if err != nil {
				t.Fatal(err)
			}
			if err := rig.RunFor(60_000); err != nil {
				t.Fatal(err)
			}
			o := rig.Classify()
			if o.Failed() {
				t.Errorf("golden run failed: %+v", o)
			}
			if o.FalseAlarm {
				t.Errorf("false alarm in golden run: %+v", o)
			}
			// Steady state must be near the setpoint.
			final := rig.Bus.Peek(SigLevel)
			if d := final - tc.SetpointUnits; d < -40 || d > 40 {
				t.Errorf("settled at %d, setpoint %d", final, tc.SetpointUnits)
			}
		})
	}
}

func TestAlarmRaisesOnOverfill(t *testing.T) {
	// Strong inflow and a valve pinned shut by a broken controller
	// stand-in: drive the rig but override cmd to zero each cycle.
	rig, err := NewRig(Config{InflowBase: 0.12, SetpointUnits: 550, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rig.Bus.OnWriteFilter(func(_ model.PortRef, sig model.SignalID, _, proposed model.Word) model.Word {
		if sig == SigCmd {
			return 0
		}
		return proposed
	})
	if err := rig.RunFor(120_000); err != nil {
		t.Fatal(err)
	}
	if got := rig.Bus.Peek(SigAlarm); got != AlarmHigh {
		t.Errorf("alarm = %d after sustained overfill, want high (%d); level %.2f m",
			got, AlarmHigh, rig.Plant.LevelM())
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Error("zero config accepted")
	}
	if err := (Config{InflowBase: 0.09, SetpointUnits: 50}).Validate(); err == nil {
		t.Error("setpoint outside band accepted")
	}
}
