package tank

import (
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

func TestPlantParamsValidate(t *testing.T) {
	good := DefaultPlantParams(0.09, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*PlantParams)
	}{
		{"area", func(p *PlantParams) { p.AreaM2 = 0 }},
		{"height", func(p *PlantParams) { p.MaxLevelM = 0 }},
		{"initial", func(p *PlantParams) { p.InitialLevelM = 99 }},
		{"valve", func(p *PlantParams) { p.ValveCoeff = 0 }},
		{"inflow", func(p *PlantParams) { p.InflowBase = -1 }},
		{"pulses", func(p *PlantParams) { p.PulsePerM3 = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := good
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestPlantFillsWithValveClosed(t *testing.T) {
	pl := NewPlant(DefaultPlantParams(0.12, 1))
	start := pl.LevelM()
	pl.StepMs(20_000)
	if pl.LevelM() <= start {
		t.Errorf("level did not rise with the valve closed: %.2f -> %.2f", start, pl.LevelM())
	}
}

func TestPlantDrainsWithValveOpen(t *testing.T) {
	pl := NewPlant(DefaultPlantParams(0.06, 1))
	pl.SetValve(255)
	start := pl.LevelM()
	pl.StepMs(20_000)
	if pl.LevelM() >= start {
		t.Errorf("level did not fall with the valve open: %.2f -> %.2f", start, pl.LevelM())
	}
}

func TestPlantSensors(t *testing.T) {
	pl := NewPlant(DefaultPlantParams(0.09, 1))
	pl.StepMs(5_000)
	adc := pl.LevelADC()
	if adc < 0 || adc > 1023 {
		t.Errorf("LevelADC = %d outside 10 bits", adc)
	}
	want := model.Word(pl.LevelM() / pl.Params().MaxLevelM * 1023)
	if diff := adc - want; diff < -3 || diff > 3 {
		t.Errorf("LevelADC = %d, want ~%d", adc, want)
	}
	// ~0.09 m³/s for 5 s at 1000 pulses/m³ = ~450 pulses.
	if got := pl.FlowCount(); got < 200 || got > 700 {
		t.Errorf("FlowCount = %d, want ~450 within walk range", got)
	}
}

func TestSystemStructure(t *testing.T) {
	sys := NewSystem()
	if got := len(sys.Modules()); got != 5 {
		t.Errorf("modules = %d, want 5", got)
	}
	if got := len(sys.Edges()); got != 9 {
		t.Errorf("edges = %d, want 9", got)
	}
	outs := sys.SystemOutputs()
	if len(outs) != 2 {
		t.Fatalf("outputs = %v, want 2", outs)
	}
	valve, _ := sys.Signal(SigValve)
	alarm, _ := sys.Signal(SigAlarm)
	if valve.Criticality <= alarm.Criticality {
		t.Errorf("valve criticality %v not above alarm %v", valve.Criticality, alarm.Criticality)
	}
}

func TestGoldenRunsStayInBand(t *testing.T) {
	for _, tc := range DefaultTestCases() {
		tc := tc
		t.Run(tc.String(), func(t *testing.T) {
			rig, err := NewRig(tc.Config(1))
			if err != nil {
				t.Fatal(err)
			}
			if err := rig.RunFor(60_000); err != nil {
				t.Fatal(err)
			}
			o := rig.Classify()
			if o.Failed() {
				t.Errorf("golden run failed: %+v", o)
			}
			if o.FalseAlarm {
				t.Errorf("false alarm in golden run: %+v", o)
			}
			// Steady state must be near the setpoint.
			final := rig.Bus.Peek(SigLevel)
			if d := final - tc.SetpointUnits; d < -40 || d > 40 {
				t.Errorf("settled at %d, setpoint %d", final, tc.SetpointUnits)
			}
		})
	}
}

func TestAlarmRaisesOnOverfill(t *testing.T) {
	// Strong inflow and a valve pinned shut by a broken controller
	// stand-in: drive the rig but override cmd to zero each cycle.
	rig, err := NewRig(Config{InflowBase: 0.12, SetpointUnits: 550, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rig.Bus.OnWriteFilter(func(_ model.PortRef, sig model.SignalID, _, proposed model.Word) model.Word {
		if sig == SigCmd {
			return 0
		}
		return proposed
	})
	if err := rig.RunFor(120_000); err != nil {
		t.Fatal(err)
	}
	if got := rig.Bus.Peek(SigAlarm); got != AlarmHigh {
		t.Errorf("alarm = %d after sustained overfill, want high (%d); level %.2f m",
			got, AlarmHigh, rig.Plant.LevelM())
	}
}

func TestConfigAndOptionsValidate(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Error("zero config accepted")
	}
	if err := (Config{InflowBase: 0.09, SetpointUnits: 50}).Validate(); err == nil {
		t.Error("setpoint outside band accepted")
	}
	if err := DefaultCampaignOptions(1).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultCampaignOptions(1)
	bad.PerInput = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero PerInput accepted")
	}
	bad = DefaultCampaignOptions(1)
	bad.RunMs = 10
	if err := bad.Validate(); err == nil {
		t.Error("tiny RunMs accepted")
	}
	bad = DefaultCampaignOptions(1)
	bad.Cases = nil
	if err := bad.Validate(); err == nil {
		t.Error("no cases accepted")
	}
}

func TestCampaignSmall(t *testing.T) {
	opts := DefaultCampaignOptions(1)
	opts.Cases = DefaultTestCases()[:1]
	opts.PerInput = 6
	opts.RunMs = 20_000
	res, err := EstimatePermeability(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 8*6 { // 8 module input ports
		t.Errorf("runs = %d, want 48", res.Runs)
	}
	for _, e := range NewSystem().Edges() {
		v := res.Matrix.Get(e)
		if v < 0 || v > 1 {
			t.Errorf("edge %v = %v outside [0,1]", e, v)
		}
	}
}

func TestRuntimeCriticalityDivergence(t *testing.T) {
	if testing.Short() {
		t.Skip("medium campaign")
	}
	opts := DefaultCampaignOptions(1)
	opts.Cases = DefaultTestCases()[:2]
	opts.PerInput = 24
	opts.RunMs = 30_000
	res, err := EstimatePermeability(opts)
	if err != nil {
		t.Fatal(err)
	}
	ranks, err := RankCriticality(res.Matrix)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[model.SignalID]CriticalityReport{}
	for _, r := range ranks {
		byName[r.Signal] = r
	}

	// cmd and inflow reach only the valve; trend and level reach both
	// outputs — the runtime realization of the paper's Section 8 point.
	if r := byName[SigCmd]; r.ImpactAlarm != 0 || r.ImpactValve <= 0 {
		t.Errorf("cmd impacts = %+v, want valve-only", r)
	}
	if r := byName[SigInflow]; r.ImpactAlarm != 0 {
		t.Errorf("inflow impacts alarm: %+v", r)
	}
	if r := byName[SigTrend]; r.ImpactAlarm <= 0 || r.ImpactValve <= 0 {
		t.Errorf("trend impacts = %+v, want both outputs", r)
	}
	// Criticality must order consistently with Eq. 4 given the declared
	// output criticalities (valve 1.0, alarm 0.25).
	for _, r := range ranks {
		want := 1 - (1-1.0*r.ImpactValve)*(1-0.25*r.ImpactAlarm)
		if diff := r.Criticality - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s criticality %v, want %v", r.Signal, r.Criticality, want)
		}
	}
}

func TestCampaignDeterministic(t *testing.T) {
	opts := DefaultCampaignOptions(7)
	opts.Cases = DefaultTestCases()[:1]
	opts.PerInput = 4
	opts.RunMs = 15_000
	a, err := EstimatePermeability(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimatePermeability(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range NewSystem().Edges() {
		if a.Matrix.Get(e) != b.Matrix.Get(e) {
			t.Errorf("edge %v differs across identical campaigns", e)
		}
	}
}

func TestPASelectionOnTank(t *testing.T) {
	if testing.Short() {
		t.Skip("medium campaign")
	}
	opts := DefaultCampaignOptions(1)
	opts.Cases = DefaultTestCases()[:2]
	opts.PerInput = 24
	opts.RunMs = 30_000
	res, err := EstimatePermeability(opts)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := core.BuildProfile(res.Matrix)
	if err != nil {
		t.Fatal(err)
	}
	sel := core.SelectPA(pr, core.DefaultThresholds())
	picked := map[model.SignalID]bool{}
	for _, s := range sel.Selected() {
		picked[s] = true
	}
	// The placement rules transfer: guarded signals must be internal,
	// non-boolean, exposed and consequential.
	for s := range picked {
		sig, _ := NewSystem().Signal(s)
		if sig.Kind != model.KindIntermediate {
			t.Errorf("PA selected boundary signal %s", s)
		}
	}
	if len(picked) == 0 {
		t.Error("PA selected nothing on the tank target")
	}
}
