package report

import (
	"fmt"
	"strings"

	"repro/internal/experiment"
)

// ModelSensitivity renders the coverage-per-error-model comparison
// (DESIGN.md index A1): how the EH and PA assertion sets fare when the
// input error model departs from the paper's single transient flip.
func ModelSensitivity(res *experiment.ModelSensitivityResult) string {
	var b strings.Builder
	b.WriteString("Error-model sensitivity: detection coverage per input error model (errors in PACNT)\n\n")
	fmt.Fprintf(&b, "%-14s %8s %10s %10s\n", "model", "n_err", "EH", "PA")
	for _, m := range res.Models {
		sets := res.PerModel[m]
		fmt.Fprintf(&b, "%-14s %8d %10.3f %10.3f\n",
			m, res.ActivePerModel[m],
			sets[experiment.SetEH].Estimate(), sets[experiment.SetPA].Estimate())
	}
	return b.String()
}

// RecoveryTable renders the three-arm recovery study: specification
// failure rates under the internal error model without recovery, with
// signal-level containment wrappers, and with module-internal
// containment (the hardened DIST_S).
func RecoveryTable(res *experiment.RecoveryStudyResult) string {
	var b strings.Builder
	b.WriteString("Recovery study: failure rates under the internal error model\n")
	fmt.Fprintf(&b, "%d RAM and %d stack locations, three arms over identical injections\n\n",
		res.RAMLocations, res.StackLocations)
	fmt.Fprintf(&b, "%-7s %10s %10s %10s %14s\n",
		"region", "baseline", "wrapped", "hardened", "wrapper events")
	for _, r := range []experiment.RecoveryRegion{res.RAM, res.Stack, res.Total} {
		fmt.Fprintf(&b, "%-7s %10.3f %10.3f %10.3f %14d\n",
			r.Region,
			r.Baseline.FailureRate(), r.Wrapped.FailureRate(),
			r.Hardened.FailureRate(), r.Wrapped.Recoveries)
	}
	b.WriteString("\nbaseline: no recovery; wrapped: write-filter wrappers on the PA signals;\n")
	b.WriteString("hardened: DIST_S rejects implausible pulse deltas (module-internal, per R2)\n")
	return b.String()
}

// TightnessTable renders the EA-tightness ablation: the pulscnt
// assertion's step budget against detection coverage and fault-free
// false positives.
func TightnessTable(points []experiment.TightnessPoint) string {
	var b strings.Builder
	b.WriteString("EA tightness ablation: pulscnt assertion step budget vs coverage and false positives\n\n")
	fmt.Fprintf(&b, "%8s %10s %18s\n", "MaxStep", "coverage", "false positives")
	for _, pt := range points {
		fmt.Fprintf(&b, "%8d %10.3f %11d/%d runs\n",
			pt.MaxStep, pt.Coverage.Estimate(), pt.FalsePositiveRuns, pt.GoldenRuns)
	}
	return b.String()
}

// IntegrationTable renders the EA integration-mode comparison: sampled
// vs write-triggered vs tight write-triggered detection of the same
// error set.
func IntegrationTable(pt *experiment.IntegrationPoint) string {
	var b strings.Builder
	b.WriteString("EA integration modes: pulscnt assertion against identical PACNT errors\n\n")
	fmt.Fprintf(&b, "%-34s %10s\n", "deployment", "coverage")
	fmt.Fprintf(&b, "%-34s %10.3f\n", "sampled every 10 ms (budget 16)", pt.Sampled.Estimate())
	fmt.Fprintf(&b, "%-34s %10.3f\n", "inline at every write (budget 16)", pt.WriteTriggered.Estimate())
	fmt.Fprintf(&b, "%-34s %10.3f  (%d golden false positives)\n",
		"inline, tight budget 8", pt.TightInline.Estimate(), pt.TightInlineFalsePositives)
	b.WriteString("\ninline checking sees transients that self-correct between samples;\n")
	b.WriteString("the tight budget is admissible only inline, where scheduler jitter\n")
	b.WriteString("cannot stretch the check gap\n")
	return b.String()
}
