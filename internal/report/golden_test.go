package report

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/paper"
	"repro/internal/target"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// goldenCheck compares rendered output against a checked-in golden file
// — locking the exact paper-mode artifacts against regressions. Run
// `go test ./internal/report -update` after an intentional change.
func goldenCheck(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with -update): %v", path, err)
	}
	if string(want) != got {
		t.Errorf("output differs from %s; run with -update after verifying.\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

func TestGoldenPaperArtifacts(t *testing.T) {
	p := paper.Table1()
	pr, err := core.BuildProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	th := core.DefaultThresholds()

	goldenCheck(t, "table1.golden", Table1(p))
	goldenCheck(t, "table2.golden", Table2(pr, core.SelectPA(pr, th)))
	goldenCheck(t, "table5.golden", Table5(pr, target.SigTOC2))
	goldenCheck(t, "figure5.golden", ProfileFigure(pr, core.ByExposure, "Figure 5: exposure profile of target system"))
	goldenCheck(t, "figure6.golden", ProfileFigure(pr, core.ByImpact, "Figure 6: impact profile of target system"))

	fig4, err := Figure4(p, target.SigPulscnt, target.SigTOC2)
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "figure4.golden", fig4)
}
