package report

import (
	"fmt"
	"strings"

	"repro/internal/experiment"
)

// MatrixTable renders the placement-robustness matrix: one block per
// target, one row per error model, detection coverage per placement set
// over the errors that were live before the run's natural completion.
func MatrixTable(res *experiment.MatrixResult) string {
	sets := []string{experiment.SetEH, experiment.SetPA, experiment.SetExtended}
	var b strings.Builder
	b.WriteString("Placement robustness: detection coverage per target x error model\n")
	for _, target := range res.Targets {
		fmt.Fprintf(&b, "\ntarget %s\n", target)
		fmt.Fprintf(&b, "  %-10s %6s %7s", "model", "runs", "active")
		for _, s := range sets {
			fmt.Fprintf(&b, " %9s", s)
		}
		b.WriteString("\n")
		for _, m := range res.Models {
			cell := res.Cell(target, m)
			if cell == nil {
				continue
			}
			fmt.Fprintf(&b, "  %-10s %6d %7d", m, cell.Runs, cell.Active)
			for _, s := range sets {
				p, ok := cell.PerSet[s]
				if !ok || p.Trials == 0 {
					fmt.Fprintf(&b, " %9s", "-")
					continue
				}
				fmt.Fprintf(&b, " %8.1f%%", 100*p.Estimate())
			}
			b.WriteString("\n")
		}
	}
	b.WriteString("\ncoverage over active errors; '-' means the target declares no assertions in that set\n")
	return b.String()
}
