package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/experiment"
	"repro/internal/stats"
)

// Subsumption renders the pairwise detection-overlap matrix of one
// coverage row: entry (row a, column b) is the fraction of a's
// detections also detected by b. A column of 1.000 under some assertion
// means it subsumes the row assertion — the machinery behind the paper's
// observation that "all errors detected by EA1, EA2 or EA7 were also
// detected by EA4".
func Subsumption(row experiment.CoverageRow, eaOrder []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Detection subsumption for errors in %s (P[column detects | row detects])\n\n", row.Signal)
	fmt.Fprintf(&b, "%-8s %6s ", "", "n_det")
	for _, name := range eaOrder {
		fmt.Fprintf(&b, "%7s", name)
	}
	b.WriteString("\n")
	for _, a := range eaOrder {
		na := row.PairDetections[a][a]
		fmt.Fprintf(&b, "%-8s %6d ", a, na)
		for _, other := range eaOrder {
			if na == 0 {
				fmt.Fprintf(&b, "%7s", "-")
				continue
			}
			fmt.Fprintf(&b, "%7.3f", float64(row.PairDetections[a][other])/float64(na))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// SubsumedBy lists the assertions fully subsumed by another assertion in
// the row (every one of their detections was also the other's), sorted.
func SubsumedBy(row experiment.CoverageRow, by string) []string {
	var out []string
	for a, pairs := range row.PairDetections {
		if a == by {
			continue
		}
		na := pairs[a]
		if na > 0 && pairs[by] == na {
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}

// LatencySummary renders per-set detection-latency statistics: how long
// after the injected corruption each assertion set first fired (the
// companion metric to coverage when composing mechanisms, cf. Steininger
// & Scherrer's coverage/latency trade-off cited by the paper).
func LatencySummary(title string, latencies map[string][]float64) string {
	var b strings.Builder
	b.WriteString(title + "\n\n")
	fmt.Fprintf(&b, "%-10s %6s %10s %10s %10s %10s\n", "set", "n", "median", "p90", "max", "mean")
	names := make([]string, 0, len(latencies))
	for name := range latencies {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		xs := latencies[name]
		if len(xs) == 0 {
			fmt.Fprintf(&b, "%-10s %6d %10s %10s %10s %10s\n", name, 0, "-", "-", "-", "-")
			continue
		}
		fmt.Fprintf(&b, "%-10s %6d %9.0fms %9.0fms %9.0fms %9.0fms\n",
			name, len(xs),
			stats.Quantile(xs, 0.5), stats.Quantile(xs, 0.9),
			stats.Quantile(xs, 1.0), stats.Mean(xs))
	}
	return b.String()
}
