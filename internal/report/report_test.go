package report

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ea"
	"repro/internal/experiment"
	"repro/internal/paper"
	"repro/internal/stats"
	"repro/internal/target"
)

func paperProfile(t *testing.T) *core.Profile {
	t.Helper()
	pr, err := core.BuildProfile(paper.Table1())
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestTable1Rendering(t *testing.T) {
	out := Table1(paper.Table1())
	for _, want := range []string{
		"Table 1", "PACNT", "pulscnt", "P^DIST_S_{1,1}", "0.957",
		"P^V_REG_{2,1}", "0.896",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
	if got := strings.Count(out, "P^"); got != 25 {
		t.Errorf("Table1 has %d pair rows, want 25", got)
	}
}

func TestTable2Rendering(t *testing.T) {
	pr := paperProfile(t)
	sel := core.SelectPA(pr, core.DefaultThresholds())
	out := Table2(pr, sel)
	for _, want := range []string{"OutValue", "1.781", "yes", "no", "boolean"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q", want)
		}
	}
	// System inputs are not tabulated.
	if strings.Contains(out, "PACNT") {
		t.Error("Table2 tabulates system input PACNT")
	}
}

func TestTable3Rendering(t *testing.T) {
	var rows []Table3Row
	inPA := map[string]bool{}
	for _, n := range target.PASet() {
		inPA[n] = true
	}
	for _, spec := range target.AllEASpecs() {
		a := ea.MustNew(spec)
		rows = append(rows, Table3Row{
			Name: spec.Name, Signal: spec.Signal,
			InEH: true, InPA: inPA[spec.Name], Cost: a.Cost(),
		})
	}
	out := Table3(rows)
	for _, want := range []string{"262/94", "150/54", "EA5", "ms_slot_nbr", "Memory reduction PA vs EH: 43%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table3 missing %q in:\n%s", want, out)
		}
	}
}

func syntheticCoverage() *experiment.InputCoverageResult {
	row := experiment.CoverageRow{
		Signal:   target.SigPACNT,
		Injected: 100, Active: 90,
		PerEA: map[string]stats.Proportion{
			target.EA4: {Successes: 80, Trials: 90},
			target.EA1: {},
		},
		PerSet: map[string]stats.Proportion{
			experiment.SetEH: {Successes: 82, Trials: 90},
			experiment.SetPA: {Successes: 82, Trials: 90},
		},
	}
	all := row
	all.Signal = "All"
	return &experiment.InputCoverageResult{Rows: []experiment.CoverageRow{row}, All: all}
}

func TestTable4Rendering(t *testing.T) {
	out := Table4(syntheticCoverage(), []string{target.EA1, target.EA4})
	for _, want := range []string{"PACNT", "90", "0.889", "-", "EH-total", "All"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table4 missing %q in:\n%s", want, out)
		}
	}
}

func TestFigure3Rendering(t *testing.T) {
	mk := func(tot, fail, nofail int, n int) experiment.SetCoverage {
		return experiment.SetCoverage{
			Tot:    stats.Proportion{Successes: tot, Trials: n},
			Fail:   stats.Proportion{Successes: fail, Trials: n / 4},
			NoFail: stats.Proportion{Successes: nofail, Trials: n - n/4},
		}
	}
	region := func(name string) experiment.RegionCoverage {
		return experiment.RegionCoverage{
			Region: name,
			Runs:   100, Failures: 25,
			PerSet: map[string]experiment.SetCoverage{
				experiment.SetEH:       mk(40, 20, 20, 100),
				experiment.SetPA:       mk(20, 15, 5, 100),
				experiment.SetExtended: mk(40, 20, 20, 100),
			},
		}
	}
	res := &experiment.InternalCoverageResult{
		RAM: region("RAM"), Stack: region("Stack"), Total: region("Total"),
		RAMLocations: 150, StackLocations: 50,
	}
	out := Figure3(res)
	for _, want := range []string{"Figure 3", "RAM", "Stack", "Total", "c_tot", "c_fail", "c_nofail", "150 RAM", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure3 missing %q", want)
		}
	}
}

func TestFigure4Rendering(t *testing.T) {
	out, err := Figure4(paper.Table1(), target.SigPulscnt, target.SigTOC2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 4", "impact tree rooted at pulscnt", "w1 =", "Impact(pulscnt -> TOC2) = 0.021"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure4 missing %q in:\n%s", want, out)
		}
	}
	if _, err := Figure4(paper.Table1(), "ghost", target.SigTOC2); err == nil {
		t.Error("Figure4(ghost) = nil error")
	}
}

func TestProfileFigures(t *testing.T) {
	pr := paperProfile(t)
	fig5 := ProfileFigure(pr, core.ByExposure, "Figure 5: exposure profile of target system")
	if !strings.Contains(fig5, "OutValue") || !strings.Contains(fig5, "1.781") {
		t.Errorf("Figure 5 missing top exposure signal:\n%s", fig5)
	}
	fig6 := ProfileFigure(pr, core.ByImpact, "Figure 6: impact profile of target system")
	if !strings.Contains(fig6, "0.784") {
		t.Errorf("Figure 6 missing IsValue impact:\n%s", fig6)
	}
	// The two profiles must differ — the paper's point.
	if fig5 == fig6 {
		t.Error("exposure and impact profiles identical")
	}
	figC := ProfileFigure(pr, core.ByCriticality, "criticality")
	if len(figC) == 0 {
		t.Error("criticality profile empty")
	}
}

func TestTable5Rendering(t *testing.T) {
	out := Table5(paperProfile(t), target.SigTOC2)
	for _, want := range []string{"Table 5", "0.774", "0.691", "0.410"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table5 missing %q", want)
		}
	}
	// TOC2 row shows a dash for impact on itself.
	if !strings.Contains(out, "TOC2") {
		t.Error("Table5 missing TOC2 row")
	}
}

func TestPermeabilityComparison(t *testing.T) {
	p := paper.Table1()
	out := PermeabilityComparison(p, p)
	if !strings.Contains(out, "mean |diff| = 0.000") {
		t.Errorf("self-comparison nonzero:\n%s", out)
	}
}

func TestBarClamps(t *testing.T) {
	if got := bar(-0.5, 10); got != ".........." {
		t.Errorf("bar(-0.5) = %q", got)
	}
	if got := bar(2.0, 10); got != "##########" {
		t.Errorf("bar(2) = %q", got)
	}
	if got := bar(0.5, 10); got != "#####....." {
		t.Errorf("bar(0.5) = %q", got)
	}
}
