// Package report renders the paper's tables and figures — from the
// analytical fixtures or from measured campaign results — as aligned
// ASCII, matching the layout of the published artifacts so paper and
// reproduction can be compared side by side.
package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/ea"
	"repro/internal/experiment"
	"repro/internal/model"
	"repro/internal/stats"
)

// Table1 renders the estimated error permeability of every input/output
// pair, in system edge order (the paper's Table 1 layout: Input ->
// Output, name, value).
func Table1(p *core.Permeability) string {
	var b strings.Builder
	b.WriteString("Table 1: estimated error permeability values of the input/output pairs\n\n")
	fmt.Fprintf(&b, "%-12s -> %-12s %-22s %s\n", "Input", "Output", "Name", "Value")
	for _, e := range p.System().Edges() {
		name := fmt.Sprintf("P^%s_{%d,%d}", e.Module, e.In, e.Out)
		fmt.Fprintf(&b, "%-12s -> %-12s %-22s %.3f\n", e.From, e.To, name, p.Get(e))
	}
	return b.String()
}

// Table2 renders signal error exposures with the PA placement decision
// and its motivating rule, ranked by exposure (the paper's Table 2).
func Table2(pr *core.Profile, sel core.Selection) string {
	var b strings.Builder
	b.WriteString("Table 2: estimated signal error exposures and PA-based selection of EA locations\n\n")
	fmt.Fprintf(&b, "%-12s %8s  %-6s %s\n", "Signal", "X^S_s", "Select", "Motivation")
	for _, sp := range pr.Ranked(core.ByExposure) {
		if sp.Kind == model.KindSystemInput {
			continue // the paper tabulates internal and output signals
		}
		c, err := sel.Candidate(sp.Signal)
		if err != nil {
			continue
		}
		pick := "no"
		if c.Selected {
			pick = "yes"
		}
		var rules []string
		for _, r := range c.Rules {
			rules = append(rules, string(r))
		}
		fmt.Fprintf(&b, "%-12s %8.3f  %-6s %s\n", sp.Signal, sp.Exposure, pick, strings.Join(rules, "; "))
	}
	return b.String()
}

// Table3Row describes one assertion for the resource table.
type Table3Row struct {
	Name   string
	Signal model.SignalID
	InEH   bool
	InPA   bool
	Cost   ea.Cost
}

// Table3 renders the EA setup and the summed ROM/RAM requirements of the
// two sets (the paper's Table 3).
func Table3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3: EA setup and sum of ROM/RAM requirements\n\n")
	fmt.Fprintf(&b, "%-6s %-12s %-6s %-6s %10s %10s\n", "EA", "Signal", "EH-set", "PA-set", "ROM(bytes)", "RAM(bytes)")
	var ehROM, ehRAM, paROM, paRAM, ehCyc, paCyc int
	mark := func(in bool) string {
		if in {
			return "x"
		}
		return "-"
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %-12s %-6s %-6s %10d %10d\n",
			r.Name, r.Signal, mark(r.InEH), mark(r.InPA), r.Cost.ROMBytes, r.Cost.RAMBytes)
		if r.InEH {
			ehROM += r.Cost.ROMBytes
			ehRAM += r.Cost.RAMBytes
			ehCyc += r.Cost.Cycles
		}
		if r.InPA {
			paROM += r.Cost.ROMBytes
			paRAM += r.Cost.RAMBytes
			paCyc += r.Cost.Cycles
		}
	}
	fmt.Fprintf(&b, "\nTotal ROM/RAM (bytes): EH-set %d/%d, PA-set %d/%d\n", ehROM, ehRAM, paROM, paRAM)
	ehTot, paTot := float64(ehROM+ehRAM), float64(paROM+paRAM)
	if ehTot > 0 {
		fmt.Fprintf(&b, "Memory reduction PA vs EH: %.0f%%\n", (1-paTot/ehTot)*100)
	}
	if ehCyc > 0 {
		fmt.Fprintf(&b, "Execution overhead (cycles/period): EH-set %d, PA-set %d (%.0f%% reduction)\n",
			ehCyc, paCyc, (1-float64(paCyc)/float64(ehCyc))*100)
	}
	return b.String()
}

// Table4 renders the measured detection coverage for errors injected in
// the system inputs (the paper's Table 4).
func Table4(res *experiment.InputCoverageResult, eaOrder []string) string {
	var b strings.Builder
	b.WriteString("Table 4: obtained detection coverage for errors injected in system input\n\n")
	fmt.Fprintf(&b, "%-8s %6s ", "Signal", "n_err")
	for _, name := range eaOrder {
		fmt.Fprintf(&b, "%7s", name)
	}
	fmt.Fprintf(&b, "%9s %9s\n", "EH-total", "PA-total")
	writeRow := func(r experiment.CoverageRow) {
		fmt.Fprintf(&b, "%-8s %6d ", r.Signal, r.Active)
		for _, name := range eaOrder {
			p := r.PerEA[name]
			if p.Successes == 0 {
				fmt.Fprintf(&b, "%7s", "-")
			} else {
				fmt.Fprintf(&b, "%7.3f", p.Estimate())
			}
		}
		fmt.Fprintf(&b, "%9.3f %9.3f\n",
			r.PerSet[experiment.SetEH].Estimate(), r.PerSet[experiment.SetPA].Estimate())
	}
	for _, r := range res.Rows {
		writeRow(r)
	}
	writeRow(res.All)
	return b.String()
}

// bar renders a horizontal bar of width proportional to v in [0,1].
func bar(v float64, width int) string {
	n := int(v*float64(width) + 0.5)
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// Figure3 renders the coverage comparison under the internal error model
// as grouped ASCII bars (the paper's Figure 3): per region and per EA
// set, the c_tot / c_fail / c_nofail bars.
func Figure3(res *experiment.InternalCoverageResult) string {
	const width = 40
	var b strings.Builder
	b.WriteString("Figure 3: comparison of coverage values (internal error model)\n")
	fmt.Fprintf(&b, "periodic bit-flips; %d RAM and %d stack locations\n\n",
		res.RAMLocations, res.StackLocations)
	regions := []experiment.RegionCoverage{res.RAM, res.Stack, res.Total}
	sets := []string{experiment.SetEH, experiment.SetPA, experiment.SetExtended}
	for _, rc := range regions {
		fmt.Fprintf(&b, "%s (%d runs, %d failures)\n", rc.Region, rc.Runs, rc.Failures)
		for _, set := range sets {
			sc := rc.PerSet[set]
			fmt.Fprintf(&b, "  %-9s c_tot    %s %.3f\n", set, bar(sc.Tot.Estimate(), width), sc.Tot.Estimate())
			fmt.Fprintf(&b, "  %-9s c_fail   %s %.3f\n", "", bar(sc.Fail.Estimate(), width), sc.Fail.Estimate())
			fmt.Fprintf(&b, "  %-9s c_nofail %s %.3f\n", "", bar(sc.NoFail.Estimate(), width), sc.NoFail.Estimate())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Figure4 renders the impact tree of a signal and the propagation paths
// to the destination output with their weights and combined impact (the
// paper's Figure 4, drawn for pulscnt → TOC2).
func Figure4(p *core.Permeability, from, to model.SignalID) (string, error) {
	tree, err := core.BuildImpactTree(p, from)
	if err != nil {
		return "", err
	}
	paths := tree.PathsTo(to)
	// The displayed figure enumerates the paths (that is the point of
	// Fig. 4), but the impact value itself comes from the shared
	// analytic solver cache, like every other hot-path impact query.
	impact, err := analytic.Shared().Impact(p, from, to)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: impact tree for signal %s and generated propagation paths\n\n", from)
	b.WriteString(tree.Render())
	b.WriteString("\nPaths to " + string(to) + ":\n")
	for i, path := range paths {
		fmt.Fprintf(&b, "  w%d = %s\n", i+1, path)
	}
	fmt.Fprintf(&b, "\nImpact(%s -> %s) = %.3f\n", from, to, impact)
	return b.String(), nil
}

// ProfileFigure renders the per-signal profile of one metric as a ranked
// bar diagram — the textual equivalent of the line-thickness profiles of
// Figures 5 (exposure) and 6 (impact).
func ProfileFigure(pr *core.Profile, metric core.Metric, title string) string {
	const width = 40
	var b strings.Builder
	b.WriteString(title + "\n\n")
	ranked := pr.Ranked(metric)
	max := 0.0
	for _, sp := range ranked {
		if v := metricOf(sp, metric); v > max {
			max = v
		}
	}
	for _, sp := range ranked {
		v := metricOf(sp, metric)
		norm := 0.0
		if max > 0 {
			norm = v / max
		}
		note := ""
		switch {
		case sp.Kind == model.KindSystemInput:
			note = " (system input)"
		case sp.Kind == model.KindSystemOutput:
			note = " (system output)"
		case sp.IsBool:
			note = " (boolean)"
		}
		fmt.Fprintf(&b, "  %-12s %s %6.3f%s\n", sp.Signal, bar(norm, width), v, note)
	}
	return b.String()
}

func metricOf(sp core.SignalProfile, m core.Metric) float64 {
	switch m {
	case core.ByExposure:
		return sp.Exposure
	case core.ByImpact:
		return sp.Impact
	case core.ByCriticality:
		return sp.Criticality
	default:
		return 0
	}
}

// Table5 renders exposure and impact side by side (the paper's Table 5),
// ranked by exposure.
func Table5(pr *core.Profile, out model.SignalID) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: estimated signal error exposures and impacts on %s\n\n", out)
	fmt.Fprintf(&b, "%-12s %10s %14s\n", "Signal", "X^S_s", "I(s->"+string(out)+")")
	for _, sp := range pr.Ranked(core.ByExposure) {
		if sp.Signal == out {
			fmt.Fprintf(&b, "%-12s %10.3f %14s\n", sp.Signal, sp.Exposure, "-")
			continue
		}
		fmt.Fprintf(&b, "%-12s %10.3f %14.3f\n", sp.Signal, sp.Exposure, sp.ImpactOn[out])
	}
	return b.String()
}

// PermeabilityComparison renders paper-vs-measured permeabilities side
// by side with absolute differences, sorted by edge order.
func PermeabilityComparison(paperP, measured *core.Permeability) string {
	var b strings.Builder
	b.WriteString("Permeability comparison: paper (Table 1) vs measured (this reproduction)\n\n")
	fmt.Fprintf(&b, "%-12s -> %-12s %8s %9s %7s\n", "Input", "Output", "paper", "measured", "|diff|")
	var diffs []float64
	for _, e := range paperP.System().Edges() {
		pv, mv := paperP.Get(e), measured.Get(e)
		d := pv - mv
		if d < 0 {
			d = -d
		}
		diffs = append(diffs, d)
		fmt.Fprintf(&b, "%-12s -> %-12s %8.3f %9.3f %7.3f\n", e.From, e.To, pv, mv, d)
	}
	sort.Float64s(diffs)
	fmt.Fprintf(&b, "\nmean |diff| = %.3f, median = %.3f, max = %.3f\n",
		stats.Mean(diffs), diffs[len(diffs)/2], diffs[len(diffs)-1])
	return b.String()
}

// SweepGrid renders a what-if containment sweep (cmd/place -sweep) as a
// module × factor table of total-criticality deltas, with the
// highest-criticality internal signal of each cell.
func SweepGrid(modules []model.ModuleID, factors []float64, res *analytic.SweepResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "What-if containment sweep: Σ criticality delta by module × scale factor (baseline Σ = %.3f)\n\n", res.BaseTotal)
	fmt.Fprintf(&b, "%-12s", "Module")
	for _, f := range factors {
		fmt.Fprintf(&b, " %10s", fmt.Sprintf("×%.2f", f))
	}
	b.WriteString("\n")
	for mi, mod := range modules {
		fmt.Fprintf(&b, "%-12s", mod)
		for fi := range factors {
			cell := res.Cells[mi*len(factors)+fi]
			fmt.Fprintf(&b, " %+10.3f", cell.Delta)
		}
		b.WriteString("\n")
	}
	b.WriteString("\nMost critical internal signal per module at the strongest containment (first factor):\n")
	for mi, mod := range modules {
		cell := res.Cells[mi*len(factors)]
		fmt.Fprintf(&b, "  %-12s %s (C=%.3f)\n", mod, cell.Top, cell.TopCriticality)
	}
	return b.String()
}
