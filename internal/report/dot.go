package report

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/model"
)

// DotProfile renders the system graph in Graphviz DOT with edge width
// proportional to the per-signal measure — the native form of the
// paper's Figures 5 and 6, where "the thickness of a line ... depicts
// the value of the respective measure". Zero-valued signals are dashed
// and boundary signals dash-dotted, as in the paper's legend.
func DotProfile(pr *core.Profile, metric core.Metric, title string) string {
	sys := pr.System()
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box, fontname=\"Helvetica\"];\n")

	for _, m := range sys.Modules() {
		fmt.Fprintf(&b, "  %q;\n", m.ID)
	}

	max := 0.0
	for _, sp := range pr.Signals() {
		if v := metricOf(sp, metric); v > max {
			max = v
		}
	}

	// Each signal is drawn as the edges from its producer to its
	// consumers (or to/from boundary markers), styled by its measure.
	for _, sp := range pr.Signals() {
		style := signalStyle(sp, metric, max)
		producer, hasProducer := sys.ProducerOf(sp.Signal)
		consumers := sys.ConsumersOf(sp.Signal)

		switch {
		case !hasProducer: // system input
			fmt.Fprintf(&b, "  %q [shape=plaintext];\n", sp.Signal)
			for _, c := range consumers {
				fmt.Fprintf(&b, "  %q -> %q [%s];\n", sp.Signal, c.Module, style)
			}
		case len(consumers) == 0: // system output or scheduler-consumed
			fmt.Fprintf(&b, "  %q [shape=plaintext];\n", sp.Signal)
			fmt.Fprintf(&b, "  %q -> %q [%s];\n", producer.Module, sp.Signal, style)
		default:
			for _, c := range consumers {
				fmt.Fprintf(&b, "  %q -> %q [label=%q, %s];\n", producer.Module, c.Module, sp.Signal, style)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func signalStyle(sp core.SignalProfile, metric core.Metric, max float64) string {
	v := metricOf(sp, metric)
	boundary := sp.Kind != model.KindIntermediate
	noValue := boundary && ((metric == core.ByExposure && sp.Kind == model.KindSystemInput) ||
		(metric != core.ByExposure && sp.Kind == model.KindSystemOutput))
	switch {
	case noValue:
		return `style="dashed,dotted", penwidth=1`
	case v == 0:
		return "style=dashed, penwidth=1"
	default:
		width := 1.0
		if max > 0 {
			width = 1 + 6*v/max
		}
		return fmt.Sprintf("penwidth=%.2f", width)
	}
}
