package report

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/paper"
	"repro/internal/stats"
	"repro/internal/target"
)

func subsumptionRow() experiment.CoverageRow {
	return experiment.CoverageRow{
		Signal: target.SigPACNT,
		PairDetections: map[string]map[string]int{
			// EA4 detected 100 runs; EA1 detected 20, all of which EA4
			// also detected; EA3 detected 40, 30 shared with EA4.
			target.EA1: {target.EA1: 20, target.EA4: 20, target.EA3: 5},
			target.EA3: {target.EA3: 40, target.EA4: 30, target.EA1: 5},
			target.EA4: {target.EA4: 100, target.EA1: 20, target.EA3: 30},
		},
	}
}

func TestSubsumptionMatrix(t *testing.T) {
	out := Subsumption(subsumptionRow(), []string{target.EA1, target.EA3, target.EA4})
	if !strings.Contains(out, "PACNT") {
		t.Error("missing signal name")
	}
	// EA1 row: 20 detections, all subsumed by EA4 -> 1.000 in EA4 column.
	for _, want := range []string{"EA1", "1.000", "0.750", "0.125"} {
		if !strings.Contains(out, want) {
			t.Errorf("Subsumption missing %q in:\n%s", want, out)
		}
	}
}

func TestSubsumptionEmptyRow(t *testing.T) {
	row := experiment.CoverageRow{
		Signal: target.SigTIC1,
		PairDetections: map[string]map[string]int{
			target.EA1: {},
		},
	}
	out := Subsumption(row, []string{target.EA1})
	if !strings.Contains(out, "-") {
		t.Errorf("empty row should render dashes:\n%s", out)
	}
}

func TestSubsumedBy(t *testing.T) {
	row := subsumptionRow()
	got := SubsumedBy(row, target.EA4)
	if len(got) != 1 || got[0] != target.EA1 {
		t.Errorf("SubsumedBy(EA4) = %v, want [EA1]", got)
	}
	if got := SubsumedBy(row, target.EA1); len(got) != 0 {
		t.Errorf("SubsumedBy(EA1) = %v, want none", got)
	}
}

func TestLatencySummary(t *testing.T) {
	out := LatencySummary("Detection latency (input model)", map[string][]float64{
		"EH": {10, 20, 30, 40, 100},
		"PA": {},
	})
	for _, want := range []string{"Detection latency", "EH", "30ms", "100ms", "PA", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("LatencySummary missing %q in:\n%s", want, out)
		}
	}
}

func TestModelSensitivityRendering(t *testing.T) {
	res := &experiment.ModelSensitivityResult{
		Models: []string{"transient", "stuck-at-1"},
		PerModel: map[string]map[string]stats.Proportion{
			"transient":  {experiment.SetEH: {Successes: 7, Trials: 10}, experiment.SetPA: {Successes: 7, Trials: 10}, experiment.SetExtended: {}},
			"stuck-at-1": {experiment.SetEH: {Successes: 10, Trials: 10}, experiment.SetPA: {Successes: 9, Trials: 10}, experiment.SetExtended: {}},
		},
		ActivePerModel: map[string]int{"transient": 10, "stuck-at-1": 10},
	}
	out := ModelSensitivity(res)
	for _, want := range []string{"transient", "stuck-at-1", "0.700", "1.000", "0.900"} {
		if !strings.Contains(out, want) {
			t.Errorf("ModelSensitivity missing %q in:\n%s", want, out)
		}
	}
}

func TestRecoveryTableRendering(t *testing.T) {
	res := &experiment.RecoveryStudyResult{
		RAM: experiment.RecoveryRegion{Region: "RAM",
			Baseline: experiment.RecoveryArm{Runs: 100, Failures: 20},
			Wrapped:  experiment.RecoveryArm{Runs: 100, Failures: 19, Recoveries: 500},
			Hardened: experiment.RecoveryArm{Runs: 100, Failures: 5},
		},
		Stack:        experiment.RecoveryRegion{Region: "Stack"},
		Total:        experiment.RecoveryRegion{Region: "Total"},
		RAMLocations: 50, StackLocations: 20,
	}
	out := RecoveryTable(res)
	for _, want := range []string{"0.200", "0.190", "0.050", "500", "hardened", "R2"} {
		if !strings.Contains(out, want) {
			t.Errorf("RecoveryTable missing %q in:\n%s", want, out)
		}
	}
}

func TestTightnessTableRendering(t *testing.T) {
	points := []experiment.TightnessPoint{
		{MaxStep: 4, Coverage: stats.Proportion{Successes: 30, Trials: 30}, FalsePositiveRuns: 5, GoldenRuns: 25},
		{MaxStep: 16, Coverage: stats.Proportion{Successes: 24, Trials: 30}, FalsePositiveRuns: 0, GoldenRuns: 25},
	}
	out := TightnessTable(points)
	for _, want := range []string{"MaxStep", "1.000", "0.800", "5/25", "0/25"} {
		if !strings.Contains(out, want) {
			t.Errorf("TightnessTable missing %q in:\n%s", want, out)
		}
	}
}

func TestDotProfileRendering(t *testing.T) {
	pr, err := core.BuildProfile(paper.Table1())
	if err != nil {
		t.Fatal(err)
	}
	dot := DotProfile(pr, core.ByExposure, "fig5")
	for _, want := range []string{
		"digraph", "rankdir=LR", `"CLOCK"`, `"DIST_S" -> "CALC"`,
		"penwidth", "style=dashed", `label="pulscnt"`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DotProfile missing %q in:\n%s", want, dot)
		}
	}
	// The highest-exposure signal gets the widest pen.
	if !strings.Contains(dot, "penwidth=7.00") {
		t.Error("no maximal-width edge in exposure profile")
	}
	impactDot := DotProfile(pr, core.ByImpact, "fig6")
	if impactDot == dot {
		t.Error("impact and exposure DOT identical")
	}
}

func TestIntegrationTableRendering(t *testing.T) {
	pt := &experiment.IntegrationPoint{
		Sampled:        stats.Proportion{Successes: 73, Trials: 100},
		WriteTriggered: stats.Proportion{Successes: 83, Trials: 100},
		TightInline:    stats.Proportion{Successes: 87, Trials: 100},
	}
	out := IntegrationTable(pt)
	for _, want := range []string{"0.730", "0.830", "0.870", "inline", "sampled"} {
		if !strings.Contains(out, want) {
			t.Errorf("IntegrationTable missing %q in:\n%s", want, out)
		}
	}
}
