package fi

import (
	"strings"
	"testing"

	"repro/internal/memmap"
	"repro/internal/model"
)

func fiSystem(t *testing.T) (*model.System, *model.Bus) {
	t.Helper()
	sys, err := model.NewBuilder("fi").
		AddSignal("in", model.Uint(16), model.AsSystemInput()).
		AddSignal("mid", model.Uint(16)).
		AddSignal("out", model.Uint(8), model.AsSystemOutput(1)).
		AddModule("A", model.In("in"), model.Out("mid")).
		AddModule("B", model.In("mid"), model.Out("out")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return sys, model.NewBus(sys)
}

func TestInjectorOneShotReadFlip(t *testing.T) {
	sys, bus := fiSystem(t)
	bus.Poke("in", 0b1000)

	flip := &ReadFlip{
		Port:   model.PortRef{Module: "A", Dir: model.DirIn, Index: 1},
		Bit:    1,
		FromMs: 20,
	}
	inj := NewInjector(flip)
	bus.OnRead(inj.ReadHook())

	a, _ := sys.Module("A")
	read := func(now int64) model.Word {
		inj.Hook(now)
		return model.NewExec(bus, a, now).In(1)
	}

	if got := read(0); got != 0b1000 {
		t.Errorf("read before FromMs = %#b, corrupted too early", got)
	}
	if !flip.Armed() {
		t.Error("flip consumed before FromMs")
	}
	if got := read(20); got != 0b1010 {
		t.Errorf("read at FromMs = %#b, want bit 1 flipped", got)
	}
	if applied, at := flip.Applied(); !applied || at != 20 {
		t.Errorf("Applied() = %v,%d want true,20", applied, at)
	}
	if got := read(30); got != 0b1000 {
		t.Errorf("read after one-shot = %#b, want pristine", got)
	}
	if got := bus.Peek("in"); got != 0b1000 {
		t.Errorf("stored value corrupted: %#b", got)
	}
}

func TestInjectorIgnoresOtherPorts(t *testing.T) {
	sys, bus := fiSystem(t)
	bus.Poke("mid", 4)
	flip := &ReadFlip{
		Port: model.PortRef{Module: "A", Dir: model.DirIn, Index: 1},
		Bit:  0,
	}
	inj := NewInjector(flip)
	bus.OnRead(inj.ReadHook())
	inj.Hook(0)

	b, _ := sys.Module("B")
	if got := model.NewExec(bus, b, 0).In(1); got != 4 {
		t.Errorf("B's read corrupted: %d", got)
	}
	if !flip.Armed() {
		t.Error("flip consumed by non-target port")
	}
}

func TestPeriodicInjectorRAMCell(t *testing.T) {
	_, bus := fiSystem(t)
	var mem memmap.Map
	v := mem.AllocRAM("M", "x", model.Uint(8), 0)

	pi, err := NewPeriodicInjector(MemTarget{Kind: TargetRAMCell, Cell: v.ID(), Bit: 2}, 20, 0, bus, &mem)
	if err != nil {
		t.Fatal(err)
	}
	pi.Hook(0)
	if got := v.Get(); got != 4 {
		t.Errorf("after first tick = %d, want 4", got)
	}
	pi.Hook(10) // before next period: no flip
	if got := v.Get(); got != 4 {
		t.Errorf("flipped off-period: %d", got)
	}
	pi.Hook(20) // second tick re-flips (XOR)
	if got := v.Get(); got != 0 {
		t.Errorf("after second tick = %d, want 0 (re-flip)", got)
	}
	if got := pi.Injections(); got != 2 {
		t.Errorf("Injections() = %d, want 2", got)
	}
}

func TestPeriodicInjectorBusSignal(t *testing.T) {
	_, bus := fiSystem(t)
	var mem memmap.Map
	bus.Poke("mid", 0)
	pi, err := NewPeriodicInjector(MemTarget{Kind: TargetBusSignal, Signal: "mid", Bit: 7}, 20, 40, bus, &mem)
	if err != nil {
		t.Fatal(err)
	}
	pi.Hook(0)
	if got := bus.Peek("mid"); got != 0 {
		t.Errorf("flip before FromMs: %d", got)
	}
	pi.Hook(40)
	if got := bus.Peek("mid"); got != 128 {
		t.Errorf("after tick = %d, want 128", got)
	}
}

func TestPeriodicInjectorStackCellTransient(t *testing.T) {
	_, bus := fiSystem(t)
	var mem memmap.Map
	v := mem.AllocStack("M", "tmp", model.Uint(8))
	v.Set(1)

	pi, err := NewPeriodicInjector(MemTarget{Kind: TargetStackCell, Cell: v.ID(), Bit: 1}, 20, 0, bus, &mem)
	if err != nil {
		t.Fatal(err)
	}
	mem.OnRead(pi.MemHook())

	pi.Hook(0) // arm
	if got := v.Get(); got != 3 {
		t.Errorf("first read after arm = %d, want 3 (transient flip)", got)
	}
	if got := v.Get(); got != 1 {
		t.Errorf("second read = %d, want 1 (consumed)", got)
	}
	if got := mem.Peek(v.ID()); got != 1 {
		t.Errorf("stored stack value corrupted: %d", got)
	}
}

func TestNewPeriodicInjectorValidation(t *testing.T) {
	_, bus := fiSystem(t)
	var mem memmap.Map
	v := mem.AllocRAM("M", "x", model.Uint(8), 0)

	tests := []struct {
		name    string
		target  MemTarget
		period  int64
		wantSub string
	}{
		{"zero period", MemTarget{Kind: TargetRAMCell, Cell: v.ID(), Bit: 0}, 0, "period"},
		{"bit beyond cell width", MemTarget{Kind: TargetRAMCell, Cell: v.ID(), Bit: 8}, 20, "width"},
		{"unknown signal", MemTarget{Kind: TargetBusSignal, Signal: "ghost", Bit: 0}, 20, "unknown signal"},
		{"bit beyond signal width", MemTarget{Kind: TargetBusSignal, Signal: "out", Bit: 8}, 20, "width"},
		{"bad kind", MemTarget{Kind: TargetKind(9)}, 20, "kind"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewPeriodicInjector(tt.target, tt.period, 0, bus, &mem)
			if err == nil {
				t.Fatal("NewPeriodicInjector = nil error")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q missing %q", err, tt.wantSub)
			}
		})
	}
}

func TestEnumerateTargets(t *testing.T) {
	sys, _ := fiSystem(t)
	var mem memmap.Map
	mem.AllocRAM("A", "state", model.Uint(8), 0) // 8 bits
	mem.AllocStack("A", "tmp", model.Uint(16))   // 16 bits
	mem.AllocRAM("B", "ctr", model.Uint(4), 0)   // 4 bits

	ram := EnumerateRAMTargets(sys, &mem)
	// 8 + 4 cell bits, plus signals mid (16) and out (8); "in" excluded
	// as a system input.
	if got, want := len(ram), 8+4+16+8; got != want {
		t.Errorf("RAM targets = %d, want %d", got, want)
	}
	for _, tgt := range ram {
		if tgt.Kind == TargetBusSignal && tgt.Signal == "in" {
			t.Error("system input enumerated as RAM target")
		}
		if tgt.Kind == TargetStackCell {
			t.Error("stack cell in RAM enumeration")
		}
	}

	stack := EnumerateStackTargets(&mem)
	if got := len(stack); got != 16 {
		t.Errorf("stack targets = %d, want 16", got)
	}
}

func TestSampleTargetsDeterministicAndDistinct(t *testing.T) {
	sys, _ := fiSystem(t)
	var mem memmap.Map
	mem.AllocRAM("A", "s", model.Uint(16), 0)
	all := EnumerateRAMTargets(sys, &mem)

	a := SampleTargets(all, 10, 42)
	b := SampleTargets(all, 10, 42)
	if len(a) != 10 {
		t.Fatalf("sampled %d, want 10", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed samples differ")
		}
	}
	seen := map[MemTarget]bool{}
	for _, tgt := range a {
		if seen[tgt] {
			t.Errorf("duplicate target %+v", tgt)
		}
		seen[tgt] = true
	}

	full := SampleTargets(all, len(all)+5, 1)
	if len(full) != len(all) {
		t.Errorf("oversampling returned %d, want all %d", len(full), len(all))
	}
	// Must not alias the input.
	full[0].Bit = 99
	if all[0].Bit == 99 {
		t.Error("SampleTargets aliases its input")
	}
}

func TestTargetDescribe(t *testing.T) {
	var mem memmap.Map
	v := mem.AllocRAM("CALC", "i", model.Uint(8), 0)
	d := MemTarget{Kind: TargetRAMCell, Cell: v.ID(), Bit: 3}.Describe(&mem)
	if !strings.Contains(d, "CALC.i") || !strings.Contains(d, "bit3") {
		t.Errorf("Describe() = %q", d)
	}
	ds := MemTarget{Kind: TargetBusSignal, Signal: "mid", Bit: 0}.Describe(&mem)
	if !strings.Contains(ds, "mid") {
		t.Errorf("Describe() = %q", ds)
	}
}
