package fi

import (
	"fmt"

	"repro/internal/memmap"
	"repro/internal/model"
	"repro/internal/sched"
)

// This file holds the extended error-model menu beyond the paper's two
// models: persistent stuck-at memory cells, clustered multi-bit burst
// flips, and timing/omission errors in the scheduler slots (OpenSEA's
// fault menagerie). All strategies are deterministic — the same plan
// replays identically — and hook the same seams the paper's models use
// (pre-slot hooks, memory read hooks) plus the scheduler step-filter
// seam for the executive faults.

// StuckAt forces one bit of a memory-map cell or bus-signal store to a
// fixed value from FromMs onward, modelling a permanently failed memory
// line. RAM cells and bus signals are forced in place at the start of
// every slot (so program rewrites cannot clear the fault for longer
// than one slot); stack cells are forced at every read, because a
// reused activation frame is rewritten wholesale on each invocation.
type StuckAt struct {
	Target MemTarget
	// Value is the forced bit value, 0 or 1.
	Value uint8
	// FromMs is the scheduler time at which the fault manifests.
	FromMs int64
}

// StuckAtInjector drives one StuckAt. Install Hook as a pre-slot hook
// and, for stack targets, MemHook on the memory map.
type StuckAtInjector struct {
	s    StuckAt
	bus  *model.Bus
	mem  *memmap.Map
	mask model.Word

	nowMs   int64
	applied int
	firstMs int64
}

// NewStuckAtInjector validates the fault against the run's bus and
// memory and wraps it for installation.
func NewStuckAtInjector(s StuckAt, bus *model.Bus, mem *memmap.Map) (*StuckAtInjector, error) {
	if s.Value > 1 {
		return nil, fmt.Errorf("fi: stuck-at value %d, want 0 or 1", s.Value)
	}
	if err := validateMemTarget(s.Target, bus, mem); err != nil {
		return nil, err
	}
	return &StuckAtInjector{
		s:       s,
		bus:     bus,
		mem:     mem,
		mask:    model.Word(1) << s.Target.Bit,
		firstMs: -1,
	}, nil
}

// Hook forces the bit in place for RAM and bus-signal targets; install
// as a pre-slot hook after the environment hook.
func (si *StuckAtInjector) Hook(nowMs int64) {
	si.nowMs = nowMs
	if nowMs < si.s.FromMs {
		return
	}
	switch si.s.Target.Kind {
	case TargetRAMCell:
		si.force(si.mem.PeekRaw(si.s.Target.Cell), func(raw model.Word) {
			si.mem.PokeRaw(si.s.Target.Cell, raw)
		})
	case TargetBusSignal:
		si.force(si.bus.PeekRaw(si.s.Target.Signal), func(raw model.Word) {
			si.bus.PokeRaw(si.s.Target.Signal, raw)
		})
	}
}

// force applies the stuck bit to raw and stores it when it changed,
// keeping the corruption accounting.
func (si *StuckAtInjector) force(raw model.Word, store func(model.Word)) {
	forced := si.forcedValue(raw)
	if forced == raw {
		return
	}
	store(forced)
	si.applied++
	if si.firstMs < 0 {
		si.firstMs = si.nowMs
	}
}

func (si *StuckAtInjector) forcedValue(raw model.Word) model.Word {
	if si.s.Value == 0 {
		return raw &^ si.mask
	}
	return raw | si.mask
}

// MemHook returns the memory read hook forcing stack-cell reads; no-op
// for other target kinds. Install with Map.OnRead.
func (si *StuckAtInjector) MemHook() memmap.ReadHook {
	return func(info memmap.CellInfo, raw model.Word) model.Word {
		if si.s.Target.Kind != TargetStackCell || si.nowMs < si.s.FromMs || info.ID != si.s.Target.Cell {
			return raw
		}
		forced := si.forcedValue(raw)
		if forced != raw {
			si.applied++
			if si.firstMs < 0 {
				si.firstMs = si.nowMs
			}
		}
		return forced
	}
}

// Applied returns how many corruptions landed (bit actually changed)
// and when the first one happened (-1 if none).
func (si *StuckAtInjector) Applied() (int, int64) { return si.applied, si.firstMs }

// BurstFlip flips Width adjacent bits of a memory-map cell or
// bus-signal store exactly once, at the first slot at or after FromMs —
// a clustered multi-bit upset from one particle strike. RAM cells and
// bus signals are corrupted in place; stack cells arm a one-shot
// corruption of the next read.
type BurstFlip struct {
	// Target names the cell or signal; Target.Bit is the lowest
	// affected bit.
	Target MemTarget
	// Width is the number of adjacent bits flipped (>= 1).
	Width uint8
	// FromMs is the earliest scheduler time the burst lands.
	FromMs int64
}

// BurstFlipInjector drives one BurstFlip. Install Hook as a pre-slot
// hook and, for stack targets, MemHook on the memory map.
type BurstFlipInjector struct {
	b    BurstFlip
	bus  *model.Bus
	mem  *memmap.Map
	mask model.Word

	nowMs   int64
	armed   bool
	applied int
	firstMs int64
}

// NewBurstFlipInjector validates the burst against the run's bus and
// memory and wraps it for installation.
func NewBurstFlipInjector(b BurstFlip, bus *model.Bus, mem *memmap.Map) (*BurstFlipInjector, error) {
	if b.Width < 1 {
		return nil, fmt.Errorf("fi: burst width must be >= 1")
	}
	width, err := memTargetWidth(b.Target, bus, mem)
	if err != nil {
		return nil, err
	}
	if int(b.Target.Bit)+int(b.Width) > int(width) {
		return nil, fmt.Errorf("fi: burst bits %d..%d outside width %d",
			b.Target.Bit, int(b.Target.Bit)+int(b.Width)-1, width)
	}
	return &BurstFlipInjector{
		b:       b,
		bus:     bus,
		mem:     mem,
		mask:    ((model.Word(1) << b.Width) - 1) << b.Target.Bit,
		firstMs: -1,
	}, nil
}

// Hook fires the one-shot burst once due; install as a pre-slot hook.
func (bi *BurstFlipInjector) Hook(nowMs int64) {
	bi.nowMs = nowMs
	if bi.applied > 0 || bi.armed || nowMs < bi.b.FromMs {
		return
	}
	switch bi.b.Target.Kind {
	case TargetRAMCell:
		bi.mem.PokeRaw(bi.b.Target.Cell, bi.mem.PeekRaw(bi.b.Target.Cell)^bi.mask)
		bi.land()
	case TargetBusSignal:
		bi.bus.PokeRaw(bi.b.Target.Signal, bi.bus.PeekRaw(bi.b.Target.Signal)^bi.mask)
		bi.land()
	case TargetStackCell:
		bi.armed = true
	}
}

func (bi *BurstFlipInjector) land() {
	bi.applied++
	if bi.firstMs < 0 {
		bi.firstMs = bi.nowMs
	}
}

// MemHook returns the memory read hook consuming an armed stack burst;
// no-op for other target kinds. Install with Map.OnRead.
func (bi *BurstFlipInjector) MemHook() memmap.ReadHook {
	return func(info memmap.CellInfo, raw model.Word) model.Word {
		if bi.b.Target.Kind != TargetStackCell || !bi.armed || info.ID != bi.b.Target.Cell {
			return raw
		}
		bi.armed = false
		bi.land()
		return raw ^ bi.mask
	}
}

// Applied returns whether the burst landed (1 or 0 corruptions) and
// when (-1 if never).
func (bi *BurstFlipInjector) Applied() (int, int64) { return bi.applied, bi.firstMs }

// SlotFaultMode selects the executive error model for one module.
type SlotFaultMode int

// Scheduler slot fault modes.
const (
	// SlotOmission skips the module's scheduled steps entirely during
	// the fault window — the task never runs (crash/omission failure).
	SlotOmission SlotFaultMode = iota + 1
	// SlotDelay defers the module's steps to the end of their slot
	// during the fault window, so they observe inputs produced later in
	// the slot and publish outputs late (timing failure).
	SlotDelay
)

// String implements fmt.Stringer.
func (m SlotFaultMode) String() string {
	switch m {
	case SlotOmission:
		return "omission"
	case SlotDelay:
		return "delay"
	default:
		return "unknown slot fault"
	}
}

// SlotFault is a timing/omission error in the slot-based executive: one
// module's scheduled steps are skipped or deferred while the scheduler
// clock is inside [FromMs, UntilMs). UntilMs <= 0 means the fault
// persists to the end of the run.
type SlotFault struct {
	Module  model.ModuleID
	Mode    SlotFaultMode
	FromMs  int64
	UntilMs int64
}

// SlotFaultInjector drives one SlotFault through the scheduler's step
// filter seam. Install Filter with Scheduler.OnStep.
type SlotFaultInjector struct {
	f       SlotFault
	applied int
	firstMs int64
}

// NewSlotFaultInjector validates the fault against the system and wraps
// it for installation.
func NewSlotFaultInjector(f SlotFault, sys *model.System) (*SlotFaultInjector, error) {
	if _, ok := sys.Module(f.Module); !ok {
		return nil, fmt.Errorf("fi: unknown module %q", f.Module)
	}
	switch f.Mode {
	case SlotOmission, SlotDelay:
	default:
		return nil, fmt.Errorf("fi: invalid slot fault mode %d", int(f.Mode))
	}
	if f.UntilMs > 0 && f.UntilMs <= f.FromMs {
		return nil, fmt.Errorf("fi: empty slot fault window [%d, %d)", f.FromMs, f.UntilMs)
	}
	return &SlotFaultInjector{f: f, firstMs: -1}, nil
}

// Filter returns the scheduler step filter realizing the fault.
func (sf *SlotFaultInjector) Filter() sched.StepFilter {
	return func(id model.ModuleID, nowMs int64) sched.StepAction {
		if id != sf.f.Module || nowMs < sf.f.FromMs || (sf.f.UntilMs > 0 && nowMs >= sf.f.UntilMs) {
			return sched.StepRun
		}
		sf.applied++
		if sf.firstMs < 0 {
			sf.firstMs = nowMs
		}
		if sf.f.Mode == SlotOmission {
			return sched.StepSkip
		}
		return sched.StepDefer
	}
}

// Applied returns how many scheduled steps were disturbed and when the
// first disturbance happened (-1 if none).
func (sf *SlotFaultInjector) Applied() (int, int64) { return sf.applied, sf.firstMs }

// validateMemTarget checks that a MemTarget names a real cell or signal
// and that its bit lies inside the declared width.
func validateMemTarget(t MemTarget, bus *model.Bus, mem *memmap.Map) error {
	width, err := memTargetWidth(t, bus, mem)
	if err != nil {
		return err
	}
	if t.Bit >= width {
		return fmt.Errorf("fi: bit %d outside width %d", t.Bit, width)
	}
	return nil
}

// memTargetWidth resolves the declared width of a MemTarget.
func memTargetWidth(t MemTarget, bus *model.Bus, mem *memmap.Map) (uint8, error) {
	switch t.Kind {
	case TargetRAMCell, TargetStackCell:
		return mem.Info(t.Cell).Type.Width, nil
	case TargetBusSignal:
		sig, ok := bus.System().Signal(t.Signal)
		if !ok {
			return 0, fmt.Errorf("fi: unknown signal %q", t.Signal)
		}
		return sig.Type.Width, nil
	default:
		return 0, fmt.Errorf("fi: invalid target kind %d", int(t.Kind))
	}
}
