package fi

import (
	"strings"
	"testing"

	"repro/internal/model"
)

func corruptionRig(t *testing.T) (*model.Bus, func(now int64) model.Word, model.PortRef) {
	t.Helper()
	sys, bus := fiSystem(t)
	a, _ := sys.Module("A")
	port := model.PortRef{Module: "A", Dir: model.DirIn, Index: 1}
	read := func(now int64) model.Word {
		return model.NewExec(bus, a, now).In(1)
	}
	return bus, read, port
}

func installCorruption(t *testing.T, bus *model.Bus, c Corruption) (*CorruptionInjector, func(now int64)) {
	t.Helper()
	ci, err := NewCorruptionInjector(c, bus)
	if err != nil {
		t.Fatal(err)
	}
	bus.OnRead(ci.ReadHook())
	return ci, ci.Hook
}

func TestCorruptTransientOneShot(t *testing.T) {
	bus, read, port := corruptionRig(t)
	bus.Poke("in", 0)
	ci, tick := installCorruption(t, bus, Corruption{Kind: CorruptTransient, Port: port, Bit: 2, FromMs: 10})

	tick(0)
	if got := read(0); got != 0 {
		t.Errorf("corrupted before FromMs: %d", got)
	}
	tick(10)
	if got := read(10); got != 4 {
		t.Errorf("first read = %d, want 4", got)
	}
	if got := read(10); got != 0 {
		t.Errorf("second read = %d, want pristine", got)
	}
	if n, at := ci.Applied(); n != 1 || at != 10 {
		t.Errorf("Applied = %d,%d", n, at)
	}
}

func TestCorruptStuckAt(t *testing.T) {
	bus, read, port := corruptionRig(t)
	bus.Poke("in", 0b0100)
	_, tick := installCorruption(t, bus, Corruption{Kind: CorruptStuckAt0, Port: port, Bit: 2})
	tick(0)
	for k := 0; k < 3; k++ {
		if got := read(int64(k)); got != 0 {
			t.Fatalf("stuck-at-0 read %d = %d, want 0", k, got)
		}
	}

	bus2, read2, port2 := corruptionRig(t)
	bus2.Poke("in", 0)
	ci, tick2 := installCorruption(t, bus2, Corruption{Kind: CorruptStuckAt1, Port: port2, Bit: 3})
	tick2(0)
	for k := 0; k < 3; k++ {
		if got := read2(int64(k)); got != 8 {
			t.Fatalf("stuck-at-1 read %d = %d, want 8", k, got)
		}
	}
	if n, _ := ci.Applied(); n != 3 {
		t.Errorf("stuck-at applied %d times, want 3", n)
	}
}

func TestCorruptStuckAtNoOpNotCounted(t *testing.T) {
	bus, read, port := corruptionRig(t)
	bus.Poke("in", 0b1000)
	ci, tick := installCorruption(t, bus, Corruption{Kind: CorruptStuckAt1, Port: port, Bit: 3})
	tick(0)
	read(0)
	if n, at := ci.Applied(); n != 0 || at != -1 {
		t.Errorf("no-op stuck-at counted: %d,%d", n, at)
	}
}

func TestCorruptBurst(t *testing.T) {
	bus, read, port := corruptionRig(t)
	bus.Poke("in", 0)
	ci, tick := installCorruption(t, bus, Corruption{Kind: CorruptBurst, Port: port, Bit: 4, BurstWidth: 3})
	tick(0)
	if got := read(0); got != 0b1110000 {
		t.Errorf("burst read = %#b, want bits 4..6 flipped", got)
	}
	if got := read(0); got != 0 {
		t.Errorf("burst is one-shot; second read = %d", got)
	}
	if n, _ := ci.Applied(); n != 1 {
		t.Errorf("Applied = %d", n)
	}
}

func TestCorruptIntermittent(t *testing.T) {
	bus, read, port := corruptionRig(t)
	bus.Poke("in", 0)
	ci, tick := installCorruption(t, bus, Corruption{Kind: CorruptIntermittent, Port: port, Bit: 0, PeriodReads: 3})
	tick(0)
	want := []model.Word{1, 0, 0, 1, 0, 0, 1}
	for k, w := range want {
		if got := read(int64(k)); got != w {
			t.Fatalf("intermittent read %d = %d, want %d", k, got, w)
		}
	}
	if n, _ := ci.Applied(); n != 3 {
		t.Errorf("Applied = %d, want 3", n)
	}
}

func TestCorruptionValidate(t *testing.T) {
	tests := []struct {
		name    string
		c       Corruption
		width   uint8
		wantSub string
	}{
		{"bit beyond width", Corruption{Kind: CorruptTransient, Bit: 16}, 16, "width"},
		{"zero burst", Corruption{Kind: CorruptBurst, BurstWidth: 0}, 16, "burst"},
		{"burst overflow", Corruption{Kind: CorruptBurst, Bit: 14, BurstWidth: 4}, 16, "outside"},
		{"zero period", Corruption{Kind: CorruptIntermittent, Bit: 0}, 16, "period"},
		{"bad kind", Corruption{Kind: CorruptionKind(42)}, 16, "unknown"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.c.Validate(tt.width)
			if err == nil {
				t.Fatal("Validate = nil")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q missing %q", err, tt.wantSub)
			}
		})
	}
}

func TestNewCorruptionInjectorResolvesPort(t *testing.T) {
	_, bus := fiSystem(t)
	if _, err := NewCorruptionInjector(Corruption{
		Kind: CorruptTransient,
		Port: model.PortRef{Module: "ghost", Dir: model.DirIn, Index: 1},
	}, bus); err == nil {
		t.Error("unknown module accepted")
	}
	if _, err := NewCorruptionInjector(Corruption{
		Kind: CorruptTransient,
		Port: model.PortRef{Module: "A", Dir: model.DirIn, Index: 9},
	}, bus); err == nil {
		t.Error("unknown port accepted")
	}
	// "mid" is 16-bit: bit 20 must be rejected via the resolved width.
	if _, err := NewCorruptionInjector(Corruption{
		Kind: CorruptTransient, Bit: 20,
		Port: model.PortRef{Module: "B", Dir: model.DirIn, Index: 1},
	}, bus); err == nil {
		t.Error("bit beyond resolved width accepted")
	}
}

func TestCorruptionKindStrings(t *testing.T) {
	kinds := []CorruptionKind{
		CorruptTransient, CorruptStuckAt0, CorruptStuckAt1,
		CorruptBurst, CorruptIntermittent, CorruptionKind(0),
	}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("CorruptionKind(%d).String() empty", int(k))
		}
	}
}
