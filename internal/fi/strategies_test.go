package fi

import (
	"testing"

	"repro/internal/memmap"
	"repro/internal/model"
)

func TestStuckAtRAMCell(t *testing.T) {
	_, bus := fiSystem(t)
	var mem memmap.Map
	v := mem.AllocRAM("M", "x", model.Uint(8), 0)

	si, err := NewStuckAtInjector(StuckAt{
		Target: MemTarget{Kind: TargetRAMCell, Cell: v.ID(), Bit: 2},
		Value:  1,
		FromMs: 10,
	}, bus, &mem)
	if err != nil {
		t.Fatal(err)
	}
	si.Hook(0)
	if got := v.Get(); got != 0 {
		t.Errorf("forced before FromMs: %d", got)
	}
	si.Hook(10)
	if got := v.Get(); got != 4 {
		t.Errorf("after FromMs = %d, want 4", got)
	}
	// A program rewrite clears the bit; the next slot re-forces it.
	v.Set(0)
	si.Hook(11)
	if got := v.Get(); got != 4 {
		t.Errorf("rewrite survived a slot = %d, want 4", got)
	}
	// Already-forced slots do not count as new corruptions.
	si.Hook(12)
	if n, first := si.Applied(); n != 2 || first != 10 {
		t.Errorf("Applied() = %d,%d want 2,10", n, first)
	}
}

func TestStuckAtZeroClearsBit(t *testing.T) {
	_, bus := fiSystem(t)
	var mem memmap.Map
	v := mem.AllocRAM("M", "x", model.Uint(8), 0)
	v.Set(0xFF)

	si, err := NewStuckAtInjector(StuckAt{
		Target: MemTarget{Kind: TargetRAMCell, Cell: v.ID(), Bit: 0},
		Value:  0,
	}, bus, &mem)
	if err != nil {
		t.Fatal(err)
	}
	si.Hook(0)
	if got := v.Get(); got != 0xFE {
		t.Errorf("stuck-at-0 = %#x, want 0xFE", got)
	}
}

func TestStuckAtBusSignal(t *testing.T) {
	_, bus := fiSystem(t)
	var mem memmap.Map
	bus.Poke("mid", 0)
	si, err := NewStuckAtInjector(StuckAt{
		Target: MemTarget{Kind: TargetBusSignal, Signal: "mid", Bit: 7},
		Value:  1,
	}, bus, &mem)
	if err != nil {
		t.Fatal(err)
	}
	si.Hook(0)
	if got := bus.Peek("mid"); got != 128 {
		t.Errorf("bus signal = %d, want 128", got)
	}
}

func TestStuckAtStackCellForcesReads(t *testing.T) {
	_, bus := fiSystem(t)
	var mem memmap.Map
	v := mem.AllocStack("M", "tmp", model.Uint(8))

	si, err := NewStuckAtInjector(StuckAt{
		Target: MemTarget{Kind: TargetStackCell, Cell: v.ID(), Bit: 1},
		Value:  1,
		FromMs: 5,
	}, bus, &mem)
	if err != nil {
		t.Fatal(err)
	}
	mem.OnRead(si.MemHook())
	si.Hook(0)
	if got := v.Get(); got != 0 {
		t.Errorf("stack read forced before FromMs: %d", got)
	}
	si.Hook(5)
	if got := v.Get(); got != 2 {
		t.Errorf("stack read = %d, want 2", got)
	}
	// The stored value stays pristine; only reads are forced.
	if raw := mem.PeekRaw(v.ID()); raw != 0 {
		t.Errorf("stored value corrupted: %d", raw)
	}
	if n, first := si.Applied(); n != 1 || first != 5 {
		t.Errorf("Applied() = %d,%d want 1,5", n, first)
	}
}

func TestStuckAtValidation(t *testing.T) {
	_, bus := fiSystem(t)
	var mem memmap.Map
	v := mem.AllocRAM("M", "x", model.Uint(8), 0)
	tgt := MemTarget{Kind: TargetRAMCell, Cell: v.ID(), Bit: 2}
	if _, err := NewStuckAtInjector(StuckAt{Target: tgt, Value: 2}, bus, &mem); err == nil {
		t.Error("value 2 accepted")
	}
	bad := tgt
	bad.Bit = 8
	if _, err := NewStuckAtInjector(StuckAt{Target: bad}, bus, &mem); err == nil {
		t.Error("bit outside width accepted")
	}
	if _, err := NewStuckAtInjector(StuckAt{
		Target: MemTarget{Kind: TargetBusSignal, Signal: "ghost"},
	}, bus, &mem); err == nil {
		t.Error("unknown signal accepted")
	}
}

func TestBurstFlipRAMOneShot(t *testing.T) {
	_, bus := fiSystem(t)
	var mem memmap.Map
	v := mem.AllocRAM("M", "x", model.Uint(8), 0)

	bi, err := NewBurstFlipInjector(BurstFlip{
		Target: MemTarget{Kind: TargetRAMCell, Cell: v.ID(), Bit: 1},
		Width:  3,
		FromMs: 10,
	}, bus, &mem)
	if err != nil {
		t.Fatal(err)
	}
	bi.Hook(0)
	if got := v.Get(); got != 0 {
		t.Errorf("burst before FromMs: %d", got)
	}
	bi.Hook(10)
	if got := v.Get(); got != 0b1110 {
		t.Errorf("burst = %#b, want bits 1..3 flipped", got)
	}
	bi.Hook(11)
	if got := v.Get(); got != 0b1110 {
		t.Errorf("burst fired twice: %#b", got)
	}
	if n, first := bi.Applied(); n != 1 || first != 10 {
		t.Errorf("Applied() = %d,%d want 1,10", n, first)
	}
}

func TestBurstFlipStackArmsNextRead(t *testing.T) {
	_, bus := fiSystem(t)
	var mem memmap.Map
	v := mem.AllocStack("M", "tmp", model.Uint(8))
	v.Set(0b1000)

	bi, err := NewBurstFlipInjector(BurstFlip{
		Target: MemTarget{Kind: TargetStackCell, Cell: v.ID(), Bit: 0},
		Width:  2,
	}, bus, &mem)
	if err != nil {
		t.Fatal(err)
	}
	mem.OnRead(bi.MemHook())
	bi.Hook(0)
	if got := v.Get(); got != 0b1011 {
		t.Errorf("armed read = %#b, want low bits flipped", got)
	}
	if got := v.Get(); got != 0b1000 {
		t.Errorf("second read corrupted: %#b (burst must be one-shot)", got)
	}
	if n, first := bi.Applied(); n != 1 || first != 0 {
		t.Errorf("Applied() = %d,%d want 1,0", n, first)
	}
}

func TestBurstFlipValidation(t *testing.T) {
	_, bus := fiSystem(t)
	var mem memmap.Map
	v := mem.AllocRAM("M", "x", model.Uint(8), 0)
	tgt := MemTarget{Kind: TargetRAMCell, Cell: v.ID(), Bit: 6}
	if _, err := NewBurstFlipInjector(BurstFlip{Target: tgt, Width: 0}, bus, &mem); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewBurstFlipInjector(BurstFlip{Target: tgt, Width: 3}, bus, &mem); err == nil {
		t.Error("burst past the cell width accepted")
	}
}

func TestSlotFaultValidation(t *testing.T) {
	sys, _ := fiSystem(t)
	if _, err := NewSlotFaultInjector(SlotFault{Module: "GHOST", Mode: SlotOmission}, sys); err == nil {
		t.Error("unknown module accepted")
	}
	if _, err := NewSlotFaultInjector(SlotFault{Module: "A"}, sys); err == nil {
		t.Error("zero mode accepted")
	}
	if _, err := NewSlotFaultInjector(SlotFault{Module: "A", Mode: SlotDelay, FromMs: 10, UntilMs: 10}, sys); err == nil {
		t.Error("empty window accepted")
	}
}

func TestSlotFaultFilterWindow(t *testing.T) {
	sys, _ := fiSystem(t)
	sf, err := NewSlotFaultInjector(SlotFault{
		Module: "A", Mode: SlotOmission, FromMs: 10, UntilMs: 30,
	}, sys)
	if err != nil {
		t.Fatal(err)
	}
	f := sf.Filter()
	if got := f("A", 0); got != 0 { // sched.StepRun
		t.Errorf("verdict before window = %d, want run", got)
	}
	if got := f("B", 15); got != 0 {
		t.Errorf("other module disturbed: %d", got)
	}
	if got := f("A", 10); got == 0 {
		t.Error("fault window start not honored")
	}
	if got := f("A", 30); got != 0 {
		t.Errorf("verdict at UntilMs = %d, want run (window is half-open)", got)
	}
	if n, first := sf.Applied(); n != 1 || first != 10 {
		t.Errorf("Applied() = %d,%d want 1,10", n, first)
	}
}

func TestSlotFaultModesDistinct(t *testing.T) {
	sys, _ := fiSystem(t)
	for mode, name := range map[SlotFaultMode]string{SlotOmission: "omission", SlotDelay: "delay"} {
		if got := mode.String(); got != name {
			t.Errorf("%d.String() = %q, want %q", int(mode), got, name)
		}
		if _, err := NewSlotFaultInjector(SlotFault{Module: "A", Mode: mode}, sys); err != nil {
			t.Errorf("mode %s rejected: %v", name, err)
		}
	}
}

// TestStrategiesDeterministic replays each strategy twice over the same
// access pattern and requires identical corruption accounting — the
// engine's determinism invariant extends to the new error models.
func TestStrategiesDeterministic(t *testing.T) {
	run := func() [4]int64 {
		_, bus := fiSystem(t)
		var mem memmap.Map
		r := mem.AllocRAM("M", "x", model.Uint(16), 3)
		s := mem.AllocStack("M", "tmp", model.Uint(8))

		si, err := NewStuckAtInjector(StuckAt{
			Target: MemTarget{Kind: TargetRAMCell, Cell: r.ID(), Bit: 5}, Value: 1, FromMs: 4,
		}, bus, &mem)
		if err != nil {
			t.Fatal(err)
		}
		bi, err := NewBurstFlipInjector(BurstFlip{
			Target: MemTarget{Kind: TargetStackCell, Cell: s.ID(), Bit: 2}, Width: 2, FromMs: 6,
		}, bus, &mem)
		if err != nil {
			t.Fatal(err)
		}
		mem.OnRead(si.MemHook())
		mem.OnRead(bi.MemHook())
		for now := int64(0); now < 20; now++ {
			si.Hook(now)
			bi.Hook(now)
			r.Set(r.Get() + 1)
			_ = s.Get()
		}
		sn, sfirst := si.Applied()
		bn, bfirst := bi.Applied()
		return [4]int64{int64(sn), sfirst, int64(bn), bfirst}
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("replay diverged: %v vs %v", a, b)
	}
	if a[0] == 0 || a[2] == 0 {
		t.Errorf("strategies never fired: %v", a)
	}
}
