package fi

import (
	"fmt"

	"repro/internal/model"
)

// CorruptionKind selects an error model for read corruption. The paper
// uses CorruptTransient throughout and shows its conclusions are
// error-model sensitive; the additional kinds let the experiment layer
// probe that sensitivity on the input side as well (DESIGN.md index A1).
type CorruptionKind int

// Read-corruption error models.
const (
	// CorruptTransient flips one bit at exactly one read — the paper's
	// input error model.
	CorruptTransient CorruptionKind = iota + 1
	// CorruptStuckAt0 forces one bit to 0 at every read from FromMs on
	// (a permanently failed sensor line).
	CorruptStuckAt0
	// CorruptStuckAt1 forces one bit to 1 at every read from FromMs on.
	CorruptStuckAt1
	// CorruptBurst flips BurstWidth adjacent bits at exactly one read
	// (a bus glitch spanning several lines).
	CorruptBurst
	// CorruptIntermittent flips one bit at every PeriodReads-th read
	// from FromMs on (a loose contact).
	CorruptIntermittent
)

// String implements fmt.Stringer.
func (k CorruptionKind) String() string {
	switch k {
	case CorruptTransient:
		return "transient"
	case CorruptStuckAt0:
		return "stuck-at-0"
	case CorruptStuckAt1:
		return "stuck-at-1"
	case CorruptBurst:
		return "burst"
	case CorruptIntermittent:
		return "intermittent"
	default:
		return "unknown corruption"
	}
}

// Corruption describes one read-corruption injection.
type Corruption struct {
	Kind CorruptionKind
	// Port is the reading module input port whose reads are corrupted.
	Port model.PortRef
	// Bit is the (lowest) affected bit.
	Bit uint8
	// BurstWidth is the number of adjacent bits for CorruptBurst.
	BurstWidth uint8
	// PeriodReads is the read period for CorruptIntermittent.
	PeriodReads int
	// FromMs is the earliest scheduler time the corruption applies.
	FromMs int64
}

// Validate reports whether the corruption is well formed against the
// signal width it will target.
func (c Corruption) Validate(width uint8) error {
	switch c.Kind {
	case CorruptTransient, CorruptStuckAt0, CorruptStuckAt1:
		if c.Bit >= width {
			return fmt.Errorf("fi: bit %d outside width %d", c.Bit, width)
		}
	case CorruptBurst:
		if c.BurstWidth < 1 {
			return fmt.Errorf("fi: burst width must be >= 1")
		}
		if int(c.Bit)+int(c.BurstWidth) > int(width) {
			return fmt.Errorf("fi: burst bits %d..%d outside width %d", c.Bit, int(c.Bit)+int(c.BurstWidth)-1, width)
		}
	case CorruptIntermittent:
		if c.Bit >= width {
			return fmt.Errorf("fi: bit %d outside width %d", c.Bit, width)
		}
		if c.PeriodReads < 1 {
			return fmt.Errorf("fi: intermittent period must be >= 1")
		}
	default:
		return fmt.Errorf("fi: unknown corruption kind %d", int(c.Kind))
	}
	return nil
}

// CorruptionInjector drives one Corruption. Install Hook as a pre-slot
// hook and ReadHook on the bus.
type CorruptionInjector struct {
	c     Corruption
	nowMs int64

	reads     int // matching reads seen since FromMs
	applied   int // corrupted reads
	firstMs   int64
	oneshotOK bool
}

// NewCorruptionInjector validates the corruption against the signal
// bound to its port and wraps it for installation.
func NewCorruptionInjector(c Corruption, bus *model.Bus) (*CorruptionInjector, error) {
	m, ok := bus.System().Module(c.Port.Module)
	if !ok {
		return nil, fmt.Errorf("fi: unknown module %q", c.Port.Module)
	}
	sid, ok := m.InputSignal(c.Port.Index)
	if !ok {
		return nil, fmt.Errorf("fi: module %s has no input %d", c.Port.Module, c.Port.Index)
	}
	sig, _ := bus.System().Signal(sid)
	if err := c.Validate(sig.Type.Width); err != nil {
		return nil, err
	}
	return &CorruptionInjector{c: c, firstMs: -1}, nil
}

// Hook maintains the injector clock; install as a pre-slot hook.
func (ci *CorruptionInjector) Hook(nowMs int64) { ci.nowMs = nowMs }

// ReadHook returns the bus read hook realizing the corruption.
func (ci *CorruptionInjector) ReadHook() model.ReadHook {
	return func(port model.PortRef, sig model.SignalID, raw model.Word) model.Word {
		if port != ci.c.Port || ci.nowMs < ci.c.FromMs {
			return raw
		}
		ci.reads++
		var corrupted model.Word
		switch ci.c.Kind {
		case CorruptTransient:
			if ci.oneshotOK {
				return raw
			}
			ci.oneshotOK = true
			corrupted = raw ^ (model.Word(1) << ci.c.Bit)
		case CorruptStuckAt0:
			corrupted = raw &^ (model.Word(1) << ci.c.Bit)
		case CorruptStuckAt1:
			corrupted = raw | (model.Word(1) << ci.c.Bit)
		case CorruptBurst:
			if ci.oneshotOK {
				return raw
			}
			ci.oneshotOK = true
			mask := ((model.Word(1) << ci.c.BurstWidth) - 1) << ci.c.Bit
			corrupted = raw ^ mask
		case CorruptIntermittent:
			if (ci.reads-1)%ci.c.PeriodReads != 0 {
				return raw
			}
			corrupted = raw ^ (model.Word(1) << ci.c.Bit)
		default:
			return raw
		}
		if corrupted != raw {
			ci.applied++
			if ci.firstMs < 0 {
				ci.firstMs = ci.nowMs
			}
		}
		return corrupted
	}
}

// Applied returns how many reads were corrupted and when the first one
// happened (-1 if none). Stuck-at corruption of a bit that already holds
// the forced value corrupts nothing and is not counted.
func (ci *CorruptionInjector) Applied() (int, int64) { return ci.applied, ci.firstMs }
