// Package fi is the fault-injection engine, substituting for the
// authors' proprietary Windows FI tool (Hiller, TR 00-19). It realizes
// the paper's two error models:
//
//   - Input model (Sections 5–6): a single transient bit-flip observed at
//     one module's read of one signal — "errors in the input signals of
//     the modules", injected once per run. Realized as a one-shot bus
//     read hook, so the stored value is untouched and exactly one read
//     observes the corruption.
//   - Internal (severe) model (Section 7): single bit-flips injected
//     "periodically with a period of 20 ms" into RAM and stack. RAM
//     targets (module state cells and shared-memory signal stores) are
//     corrupted in place at every tick; stack targets (locals in reused
//     activation frames) are armed at every tick and corrupt the next
//     read, modelling a flip landing in a live frame.
//
// Injectors are deterministic: given the same plan, a run replays
// identically. Campaign-level randomness (which bit, when) is drawn by
// the experiment layer from seeded generators.
package fi

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/memmap"
	"repro/internal/model"
)

// ReadFlip is a one-shot transient bit-flip observed at a module input
// port read: the first read of the port at or after FromMs sees the
// stored value with Bit inverted.
type ReadFlip struct {
	// Port is the reading module input port.
	Port model.PortRef
	// Bit is the bit to invert (must be below the signal width; the
	// experiment layer draws it against the declared width).
	Bit uint8
	// FromMs is the earliest scheduler time at which the flip applies.
	FromMs int64

	applied   bool
	appliedAt int64
}

// Armed reports whether the flip is still pending.
func (f *ReadFlip) Armed() bool { return !f.applied }

// markApplied is used by armedReadFlip.
func (f *ReadFlip) markApplied(now int64) {
	f.applied = true
	f.appliedAt = now
}

// Applied reports whether the flip was observed, and at what time.
func (f *ReadFlip) Applied() (bool, int64) { return f.applied, f.appliedAt }

// Injector drives one ReadFlip with time gating. Install Hook as a
// pre-slot hook (it updates the clock the read hook consults) and
// ReadHook on the bus.
type Injector struct {
	flip  *ReadFlip
	nowMs int64
}

// NewInjector wraps a ReadFlip for installation.
func NewInjector(flip *ReadFlip) *Injector {
	return &Injector{flip: flip}
}

// Hook is the scheduler pre-slot hook maintaining the injector's clock.
func (in *Injector) Hook(nowMs int64) { in.nowMs = nowMs }

// ReadHook is the bus read hook applying the one-shot flip once due.
func (in *Injector) ReadHook() model.ReadHook {
	return func(port model.PortRef, sig model.SignalID, raw model.Word) model.Word {
		f := in.flip
		if f.applied || in.nowMs < f.FromMs || port != f.Port {
			return raw
		}
		f.markApplied(in.nowMs)
		return raw ^ (model.Word(1) << f.Bit)
	}
}

// Flip returns the driven flip.
func (in *Injector) Flip() *ReadFlip { return in.flip }

// TargetKind classifies a memory-injection target of the severe model.
type TargetKind int

// Memory target kinds.
const (
	// TargetRAMCell is a module state variable: flips persist in place.
	TargetRAMCell TargetKind = iota + 1
	// TargetStackCell is a local in a reused activation frame: each tick
	// arms a transient corruption of the next read.
	TargetStackCell
	// TargetBusSignal is the shared-memory store of a signal: flips
	// persist until the producing module rewrites the signal.
	TargetBusSignal
)

// String implements fmt.Stringer.
func (k TargetKind) String() string {
	switch k {
	case TargetRAMCell:
		return "ram"
	case TargetStackCell:
		return "stack"
	case TargetBusSignal:
		return "signal"
	default:
		return "unknown"
	}
}

// MemTarget is one (location, bit) pair of the severe error model.
type MemTarget struct {
	Kind   TargetKind
	Cell   memmap.CellID  // for TargetRAMCell / TargetStackCell
	Signal model.SignalID // for TargetBusSignal
	Bit    uint8
}

// Describe renders the target, e.g. "ram:RAM:CALC.i bit3".
func (t MemTarget) Describe(mem *memmap.Map) string {
	switch t.Kind {
	case TargetRAMCell, TargetStackCell:
		return fmt.Sprintf("%s:%s bit%d", t.Kind, mem.Info(t.Cell).Address(), t.Bit)
	case TargetBusSignal:
		return fmt.Sprintf("%s:%s bit%d", t.Kind, t.Signal, t.Bit)
	default:
		return "unknown target"
	}
}

// PeriodicInjector applies the severe model to one MemTarget: every
// PeriodMs starting at FromMs it corrupts the target (or arms a stack
// corruption). Install Hook as a pre-slot hook and, for stack targets,
// MemHook on the memory map.
type PeriodicInjector struct {
	Target   MemTarget
	PeriodMs int64
	FromMs   int64

	bus      *model.Bus
	mem      *memmap.Map
	nextMs   int64
	armed    bool
	injected int
}

// NewPeriodicInjector builds an injector over the run's bus and memory.
func NewPeriodicInjector(target MemTarget, periodMs, fromMs int64, bus *model.Bus, mem *memmap.Map) (*PeriodicInjector, error) {
	if periodMs <= 0 {
		return nil, fmt.Errorf("fi: period %d must be positive", periodMs)
	}
	switch target.Kind {
	case TargetRAMCell, TargetStackCell:
		info := mem.Info(target.Cell)
		if target.Bit >= info.Type.Width {
			return nil, fmt.Errorf("fi: bit %d outside %s (width %d)", target.Bit, info.Address(), info.Type.Width)
		}
	case TargetBusSignal:
		sig, ok := bus.System().Signal(target.Signal)
		if !ok {
			return nil, fmt.Errorf("fi: unknown signal %q", target.Signal)
		}
		if target.Bit >= sig.Type.Width {
			return nil, fmt.Errorf("fi: bit %d outside signal %s (width %d)", target.Bit, target.Signal, sig.Type.Width)
		}
	default:
		return nil, fmt.Errorf("fi: invalid target kind %d", int(target.Kind))
	}
	return &PeriodicInjector{
		Target:   target,
		PeriodMs: periodMs,
		FromMs:   fromMs,
		bus:      bus,
		mem:      mem,
		nextMs:   fromMs,
	}, nil
}

// Hook fires the periodic corruption; attach as a scheduler pre-slot
// hook (after the environment hook, so sensor refreshes cannot mask it).
func (pi *PeriodicInjector) Hook(nowMs int64) {
	if nowMs < pi.nextMs {
		return
	}
	pi.nextMs = nowMs + pi.PeriodMs
	pi.injected++
	switch pi.Target.Kind {
	case TargetRAMCell:
		// Width was validated at construction; FlipBit cannot fail here.
		if err := pi.mem.FlipBit(pi.Target.Cell, pi.Target.Bit); err != nil {
			panic(fmt.Sprintf("fi: %v", err))
		}
	case TargetStackCell:
		pi.armed = true
	case TargetBusSignal:
		raw := pi.bus.PeekRaw(pi.Target.Signal)
		pi.bus.PokeRaw(pi.Target.Signal, raw^(model.Word(1)<<pi.Target.Bit))
	}
}

// MemHook returns the memory read hook consuming armed stack
// corruptions. Install with Map.OnRead (no-op for non-stack targets).
func (pi *PeriodicInjector) MemHook() memmap.ReadHook {
	return func(info memmap.CellInfo, raw model.Word) model.Word {
		if pi.Target.Kind != TargetStackCell || !pi.armed || info.ID != pi.Target.Cell {
			return raw
		}
		pi.armed = false
		return raw ^ (model.Word(1) << pi.Target.Bit)
	}
}

// Injections returns how many ticks fired.
func (pi *PeriodicInjector) Injections() int { return pi.injected }

// EnumerateRAMTargets lists every (location, bit) of the RAM portion of
// the severe model: all bits of module RAM cells plus all bits of the
// shared-memory stores of intermediate and system-output signals (system
// inputs are hardware registers refreshed by sensors, not program RAM).
func EnumerateRAMTargets(sys *model.System, mem *memmap.Map) []MemTarget {
	var out []MemTarget
	for _, c := range mem.CellsIn(memmap.RegionRAM) {
		for b := uint8(0); b < c.Type.Width; b++ {
			out = append(out, MemTarget{Kind: TargetRAMCell, Cell: c.ID, Bit: b})
		}
	}
	for _, sig := range sys.Signals() {
		if sig.Kind == model.KindSystemInput {
			continue
		}
		for b := uint8(0); b < sig.Type.Width; b++ {
			out = append(out, MemTarget{Kind: TargetBusSignal, Signal: sig.ID, Bit: b})
		}
	}
	return out
}

// EnumerateStackTargets lists every (location, bit) of the stack region.
func EnumerateStackTargets(mem *memmap.Map) []MemTarget {
	var out []MemTarget
	for _, c := range mem.CellsIn(memmap.RegionStack) {
		for b := uint8(0); b < c.Type.Width; b++ {
			out = append(out, MemTarget{Kind: TargetStackCell, Cell: c.ID, Bit: b})
		}
	}
	return out
}

// SampleTargets draws n distinct targets deterministically from the
// list (the paper's campaigns pick 150 RAM and 50 stack locations). If
// n >= len(targets), a copy of the full list is returned.
func SampleTargets(targets []MemTarget, n int, seed int64) []MemTarget {
	cp := append([]MemTarget(nil), targets...)
	if n >= len(cp) {
		return cp
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(cp), func(i, j int) { cp[i], cp[j] = cp[j], cp[i] })
	cp = cp[:n]
	// Stable order for reproducible reports.
	sort.Slice(cp, func(i, j int) bool {
		a, b := cp[i], cp[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Cell != b.Cell {
			return a.Cell < b.Cell
		}
		if a.Signal != b.Signal {
			return a.Signal < b.Signal
		}
		return a.Bit < b.Bit
	})
	return cp
}
