package campaign

import (
	"context"
	"fmt"
	"hash/fnv"
	"strconv"
	"time"

	"repro/internal/obs"
)

// Default retry parameters, shared with the subprocess dispatcher.
const (
	// DefaultAttempts is how many times a run is tried in total when
	// Retry.Attempts is zero.
	DefaultAttempts = 3
	// DefaultBackoffBase is the first retry delay when unset.
	DefaultBackoffBase = 2 * time.Millisecond
	// DefaultBackoffCap bounds the exponential backoff when unset.
	DefaultBackoffCap = 250 * time.Millisecond
)

// BackoffDelay returns the sleep before retry attempt `attempt`
// (1-based: the delay taken after the attempt-1 failure): capped
// exponential backoff plus deterministic jitter. The jitter is a pure
// function of (seed, key, attempt) — never of wall clock or scheduling
// — so a retried campaign backs off identically on every replay, which
// keeps fault-tolerance tests reproducible.
func BackoffDelay(base, cap time.Duration, seed int64, key uint64, attempt int) time.Duration {
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if cap <= 0 {
		cap = DefaultBackoffCap
	}
	d := base
	for i := 1; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d", seed, key, attempt)
	jitter := time.Duration(h.Sum64() % uint64(base))
	return d + jitter
}

// Retry wraps an Executor with a per-run attempt loop: a run that
// fails — by error or by panic — is retried with capped exponential
// backoff and deterministic jitter until it succeeds or Attempts is
// exhausted. Because campaign runs are pure functions of (run, index),
// re-executing one is always safe, and a transient fault injected at
// the executor seam (see internal/campaign/chaos) heals without
// changing campaign output. Context cancellation is never retried.
//
// Retry changes the Executor contract's "at most once" to "at least
// once on failure": results land in index-owned slots, so a re-execution
// overwrites a slot with the identical value.
type Retry struct {
	// Inner schedules the runs (nil defaults to Serial).
	Inner Executor
	// Attempts is the total tries per run (0 selects DefaultAttempts).
	Attempts int
	// BackoffBase and BackoffCap shape the retry delay (zero values
	// select the package defaults).
	BackoffBase, BackoffCap time.Duration
	// Seed feeds the deterministic backoff jitter.
	Seed int64
	// Sleep replaces time.Sleep (tests); nil selects time.Sleep.
	Sleep func(time.Duration)
	// OnRetry, when non-nil, observes every failed attempt before its
	// backoff: the run index, the 1-based attempt number and the error.
	OnRetry func(index, attempt int, err error)
}

func (r Retry) inner() Executor {
	if r.Inner == nil {
		return Serial{}
	}
	return r.Inner
}

func (r Retry) attempts() int {
	if r.Attempts < 1 {
		return DefaultAttempts
	}
	return r.Attempts
}

func (r Retry) Name() string {
	return fmt.Sprintf("retry(%s,attempts=%d)", r.inner().Name(), r.attempts())
}

func (r Retry) Run(ctx context.Context, n int, keys []uint64, fn func(i int) error) error {
	sleep := r.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	attempts := r.attempts()
	return r.inner().Run(ctx, n, keys, func(i int) error {
		var err error
		for attempt := 1; attempt <= attempts; attempt++ {
			// Recover panics here, before the inner executor's own
			// recovery can turn them into a campaign abort: a panic is
			// just another failed attempt until retries are exhausted.
			if err = call(fn, i); err == nil {
				return nil
			}
			if ctx.Err() != nil || attempt == attempts {
				break
			}
			if r.OnRetry != nil {
				r.OnRetry(i, attempt, err)
			}
			if tel := obs.Active(); tel != nil {
				tel.RunRetries.Inc()
				tel.Progress.Retry()
				tel.Live.Retry()
				tel.Events.Emit("run.retry", map[string]string{
					"run":     strconv.Itoa(i),
					"attempt": strconv.Itoa(attempt),
					"error":   err.Error(),
				})
			}
			key := uint64(i)
			if keys != nil {
				key = keys[i]
			}
			sleep(BackoffDelay(r.BackoffBase, r.BackoffCap, r.Seed, key, attempt))
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("after %d attempts: %w", attempts, err)
	})
}
