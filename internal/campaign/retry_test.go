package campaign

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// flaky fails (or panics) the first failures[i] attempts of run i.
type flaky struct {
	mu       sync.Mutex
	failures map[int]int
	attempts map[int]int
	panics   bool
}

func (f *flaky) fn(i int) error {
	f.mu.Lock()
	f.attempts[i]++
	n := f.attempts[i]
	f.mu.Unlock()
	if n <= f.failures[i] {
		if f.panics {
			panic(fmt.Sprintf("transient fault (run %d attempt %d)", i, n))
		}
		return fmt.Errorf("transient fault (run %d attempt %d)", i, n)
	}
	return nil
}

func TestRetryHealsTransientErrorsAndPanics(t *testing.T) {
	for _, panics := range []bool{false, true} {
		for _, inner := range []Executor{Serial{}, Sharded{Workers: 4, Shards: 8}} {
			f := &flaky{failures: map[int]int{3: 2, 7: 1}, attempts: map[int]int{}, panics: panics}
			ex := Retry{Inner: inner, Attempts: 3, Sleep: func(time.Duration) {}}
			if err := ex.Run(context.Background(), 10, nil, f.fn); err != nil {
				t.Fatalf("panics=%v inner=%s: %v", panics, inner.Name(), err)
			}
			if f.attempts[3] != 3 || f.attempts[7] != 2 || f.attempts[0] != 1 {
				t.Errorf("panics=%v inner=%s: attempts = %v", panics, inner.Name(), f.attempts)
			}
		}
	}
}

func TestRetryExhaustionSurfacesLastError(t *testing.T) {
	boom := errors.New("boom")
	var retries []int
	ex := Retry{
		Attempts: 3,
		Sleep:    func(time.Duration) {},
		OnRetry:  func(index, attempt int, err error) { retries = append(retries, attempt) },
	}
	err := ex.Run(context.Background(), 1, nil, func(i int) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("err %q does not name the attempt count", err)
	}
	if len(retries) != 2 {
		t.Errorf("OnRetry observed %v, want attempts [1 2]", retries)
	}
}

func TestRetryDoesNotRetryCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	ex := Retry{Attempts: 5, Sleep: func(time.Duration) {}}
	err := ex.Run(ctx, 1, nil, func(i int) error {
		calls++
		cancel()
		return errors.New("failed as the context died")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Errorf("run attempted %d times under a cancelled context, want 1", calls)
	}
}

func TestRetryPreservesPanicDiagnostics(t *testing.T) {
	cause := errors.New("root cause")
	ex := Retry{Attempts: 2, Sleep: func(time.Duration) {}}
	err := ex.Run(context.Background(), 3, nil, func(i int) error {
		if i == 1 {
			panic(cause)
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 1 {
		t.Fatalf("err = %v, want PanicError at index 1", err)
	}
	if !errors.Is(err, cause) {
		t.Errorf("PanicError does not unwrap to the panicked error: %v", err)
	}
}

func TestBackoffDelayDeterministicAndCapped(t *testing.T) {
	base, cap := 10*time.Millisecond, 80*time.Millisecond
	var prev []time.Duration
	for trial := 0; trial < 2; trial++ {
		var ds []time.Duration
		for attempt := 1; attempt <= 6; attempt++ {
			ds = append(ds, BackoffDelay(base, cap, 42, 0xfeed, attempt))
		}
		if trial == 1 {
			for i := range ds {
				if ds[i] != prev[i] {
					t.Fatalf("backoff not deterministic: %v vs %v", ds, prev)
				}
			}
		}
		prev = ds
	}
	for attempt, d := range prev {
		if d < base || d >= cap+base {
			t.Errorf("attempt %d: delay %v outside [base, cap+jitter)", attempt+1, d)
		}
	}
	if prev[0] >= prev[3] {
		t.Errorf("backoff does not grow: %v", prev)
	}
	// Different keys draw different jitter.
	if BackoffDelay(base, cap, 42, 1, 1) == BackoffDelay(base, cap, 42, 2, 1) &&
		BackoffDelay(base, cap, 42, 1, 2) == BackoffDelay(base, cap, 42, 2, 2) {
		t.Error("jitter does not depend on the key")
	}
}

func TestPanicErrorUnwrapsErrorValues(t *testing.T) {
	cause := errors.New("panicked cause")
	for _, ex := range executors() {
		c := &squares{n: 5, fail: func(i int) error {
			if i == 2 {
				panic(cause)
			}
			return nil
		}}
		_, err := Execute[int, int, int](context.Background(), c, ex, nil)
		if !errors.Is(err, cause) {
			t.Errorf("%s: engine diagnostic does not unwrap to the panicked error: %v", ex.Name(), err)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("%s: no PanicError in %v", ex.Name(), err)
		}
	}
	// Non-error panic values have no cause.
	if (&PanicError{Value: "not an error"}).Unwrap() != nil {
		t.Error("string panic value should not unwrap")
	}
}
