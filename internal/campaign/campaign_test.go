package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// squares is a minimal campaign: plan n ints, square each, sum them.
// ShardKey groups runs by run%3, mimicking case-keyed sharding.
type squares struct {
	n       int
	planErr error
	// execute hook lets tests inject failures per index.
	fail func(i int) error
}

func (s *squares) Name() string { return "squares" }

func (s *squares) Plan() ([]int, error) {
	if s.planErr != nil {
		return nil, s.planErr
	}
	plan := make([]int, s.n)
	for i := range plan {
		plan[i] = i
	}
	return plan, nil
}

func (s *squares) Execute(ctx context.Context, run, index int) (int, error) {
	if s.fail != nil {
		if err := s.fail(index); err != nil {
			return 0, err
		}
	}
	return run * run, nil
}

func (s *squares) Reduce(plan, results []int) (int, error) {
	sum := 0
	for _, r := range results {
		sum += r
	}
	return sum, nil
}

func (s *squares) ShardKey(run, index int) uint64 { return uint64(run % 3) }

func (s *squares) Describe(run, index int) string {
	return fmt.Sprintf("run=%d", run)
}

func executors() []Executor {
	return []Executor{
		Serial{},
		Sharded{Workers: 1, Shards: 1},
		Sharded{Workers: 2, Shards: 2},
		Sharded{Workers: 8, Shards: 8},
		Sharded{Workers: 8}, // DefaultShards
		Sharded{Workers: 3, Shards: 100},
	}
}

func TestExecutorsAgree(t *testing.T) {
	want := 0
	for i := 0; i < 100; i++ {
		want += i * i
	}
	for _, ex := range executors() {
		got, err := Execute[int, int, int](context.Background(), &squares{n: 100}, ex, nil)
		if err != nil {
			t.Fatalf("%s: %v", ex.Name(), err)
		}
		if got != want {
			t.Errorf("%s: sum = %d, want %d", ex.Name(), got, want)
		}
	}
}

func TestExecutorRunsEveryIndexOnce(t *testing.T) {
	for _, ex := range executors() {
		n := 250
		var hits [250]int32
		err := ex.Run(context.Background(), n, nil, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", ex.Name(), err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Errorf("%s: index %d ran %d times", ex.Name(), i, h)
			}
		}
	}
}

func TestShardPartitionIgnoresWorkers(t *testing.T) {
	// The shard a run lands in is key % shards: identical membership for
	// any worker count. Record each run's executing shard via the order
	// guarantee (runs of one shard execute in ascending index order on
	// one goroutine) — here simply assert both worker counts execute all
	// runs and agree on results, with keys supplied.
	keys := make([]uint64, 64)
	for i := range keys {
		keys[i] = uint64(i * 7)
	}
	for _, workers := range []int{1, 4, 16} {
		var sum int64
		ex := Sharded{Workers: workers, Shards: 8}
		if err := ex.Run(context.Background(), len(keys), keys, func(i int) error {
			atomic.AddInt64(&sum, int64(i))
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want := int64(63 * 64 / 2); sum != want {
			t.Errorf("workers=%d: sum = %d, want %d", workers, sum, want)
		}
	}
}

func TestPanicBecomesDiagnosticError(t *testing.T) {
	for _, ex := range executors() {
		c := &squares{n: 10, fail: func(i int) error {
			if i == 7 {
				panic("poisoned run")
			}
			return nil
		}}
		_, err := Execute[int, int, int](context.Background(), c, ex, nil)
		if err == nil {
			t.Fatalf("%s: panic did not surface as error", ex.Name())
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("%s: error %v is not a PanicError", ex.Name(), err)
		}
		if pe.Index != 7 {
			t.Errorf("%s: panic index = %d, want 7", ex.Name(), pe.Index)
		}
		// The engine decorates with the campaign name and the run's
		// Describe output — the "which run failed" diagnostic.
		for _, want := range []string{"squares", "run 7", "run=7", "poisoned run"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s: error %q missing %q", ex.Name(), err, want)
			}
		}
	}
}

func TestRunErrorCarriesDescription(t *testing.T) {
	boom := errors.New("boom")
	c := &squares{n: 5, fail: func(i int) error {
		if i == 3 {
			return boom
		}
		return nil
	}}
	_, err := Execute[int, int, int](context.Background(), c, Serial{}, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap the run error", err)
	}
	for _, want := range []string{"squares", "run 3", "run=3"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestCancellationStopsExecution(t *testing.T) {
	for _, ex := range executors() {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		err := ex.Run(ctx, 10_000, nil, func(i int) error {
			if ran.Add(1) == 5 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", ex.Name(), err)
		}
		if n := ran.Load(); n == 10_000 {
			t.Errorf("%s: cancellation did not stop the plan (all %d runs executed)", ex.Name(), n)
		}
	}
}

func TestPreCancelledContextRunsNothing(t *testing.T) {
	for _, ex := range executors() {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var ran atomic.Int32
		err := ex.Run(ctx, 100, nil, func(i int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", ex.Name(), err)
		}
		if n := ran.Load(); n != 0 {
			t.Errorf("%s: %d runs executed under a cancelled context", ex.Name(), n)
		}
	}
}

func TestPlanErrorAborts(t *testing.T) {
	planErr := errors.New("no plan")
	_, err := Execute[int, int, int](context.Background(), &squares{planErr: planErr}, Serial{}, nil)
	if !errors.Is(err, planErr) {
		t.Fatalf("err = %v, want plan error", err)
	}
}

func TestCollectorObservesThroughEngine(t *testing.T) {
	col := &Collector{}
	if _, err := Execute[int, int, int](context.Background(), &squares{n: 42}, Serial{}, col); err != nil {
		t.Fatal(err)
	}
	rows := col.Rows()
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	if rows[0].Campaign != "squares" || rows[0].Runs != 42 {
		t.Errorf("row = %+v, want campaign=squares runs=42", rows[0])
	}
}

func TestWriteBenchRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	rows := []Timing{NewTiming("c1", 100, 2*time.Second)}
	if rows[0].RunsPerSec != 50 {
		t.Fatalf("RunsPerSec = %v, want 50", rows[0].RunsPerSec)
	}
	cache := CacheStats{Size: 3, Hits: 7, Misses: 3}
	if err := WriteBench(path, 1, 8, rows, cache); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Seed        int64      `json:"seed"`
		Workers     int        `json:"workers"`
		Campaigns   []Timing   `json:"campaigns"`
		GoldenCache CacheStats `json:"golden_cache"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	// WriteBench derives the hit rate from the raw hit/miss counts.
	wantCache := cache
	wantCache.HitRate = 0.7
	if rep.Seed != 1 || rep.Workers != 8 || len(rep.Campaigns) != 1 || rep.GoldenCache != wantCache {
		t.Errorf("report = %+v", rep)
	}
	// Empty path and empty rows are no-ops.
	if err := WriteBench("", 1, 8, rows, cache); err != nil {
		t.Error(err)
	}
	if err := WriteBench(filepath.Join(t.TempDir(), "x.json"), 1, 8, nil, cache); err != nil {
		t.Error(err)
	}
}

// TestNilExecutorDefaultsToSerial pins the engine's fallback.
func TestNilExecutorDefaultsToSerial(t *testing.T) {
	got, err := Execute[int, int, int](context.Background(), &squares{n: 4}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0+1+4+9 {
		t.Errorf("sum = %d", got)
	}
}
