// Package chaos injects faults into the campaign engine itself.
//
// Chaos wraps any campaign.Executor and, from a seeded deterministic
// PRNG, makes a chosen fraction of runs misbehave the first time they
// execute: panic, stall past a deadline, fail with a spurious error,
// drop their result, or corrupt their encoded shard payload. Faults
// fire at the same seams the real failure modes use — the per-run
// function the executor drives, and the payload store the dispatcher
// feeds — so the engine's recovery machinery (campaign.Retry, the
// dispatch.Subprocess shard retry) is exercised exactly as a real
// crash, hang or corrupted result would exercise it.
//
// Every fault decision is a pure function of (Seed, run index), so a
// chaos campaign is reproducible, and faults fire only on a run's
// first attempt, so a wrapper with any retry budget converges. Tests
// use this to pin that a chaos-ridden campaign reduces byte-identical
// to a serial one.
package chaos

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"strconv"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
)

// Fault names one injected failure kind.
type Fault string

const (
	// FaultNone marks a run left alone.
	FaultNone Fault = "none"
	// FaultPanic panics inside the run function.
	FaultPanic Fault = "panic"
	// FaultDelay stalls the run past its deadline and then fails it, as
	// a worker answering after the dispatcher gave up would.
	FaultDelay Fault = "delay"
	// FaultError fails the run with a spurious (non-deterministic) error.
	FaultError Fault = "error"
	// FaultDrop loses the run's result: the run function is never
	// invoked (plain seam), or the payload is rejected unstored
	// (payload seam).
	FaultDrop Fault = "drop"
	// FaultCorrupt flips bytes in the run's encoded payload before it
	// is stored, tripping the dispatcher's integrity/decode checks.
	// Meaningful only on the payload seam; on the plain seam it is a
	// no-op (there is no encoded result to corrupt).
	FaultCorrupt Fault = "corrupt"
)

// Chaos is an Executor wrapper that injects deterministic faults into
// the runs it forwards to Inner. Compose it outside the recovery layer
// it is meant to exercise: Chaos{Inner: Retry{Inner: Sharded{...}}}
// lets Retry heal the injected panics/errors/delays/drops, and
// Chaos{Inner: &Subprocess{...}} lets the dispatcher's shard retry
// heal injected payload corruption.
type Chaos struct {
	Inner campaign.Executor
	// Seed drives every fault decision; same seed, same faults.
	Seed int64
	// Per-kind fault probabilities in [0, 1]; their cumulative sum
	// should stay <= 1. A run draws one value in [0, 1) from
	// (Seed, index) and falls into at most one kind.
	PanicRate, ErrorRate, DelayRate, DropRate, CorruptRate float64
	// Delay is how long a FaultDelay stalls before failing (0 stalls
	// not at all — the "deadline" is simulated by the error itself).
	Delay time.Duration
	// Sleep implements the stall (nil uses time.Sleep); tests inject a
	// recorder.
	Sleep func(time.Duration)
	// OnFault observes every injected fault (may be called from many
	// goroutines).
	OnFault func(index int, kind Fault)
}

func (c Chaos) Name() string {
	return fmt.Sprintf("chaos(%s,seed=%d)", c.Inner.Name(), c.Seed)
}

// decide returns the fault assigned to run index: a pure function of
// (Seed, index), stable across seams, attempts and executors.
func (c Chaos) decide(index int) Fault {
	h := fnv.New64a()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(c.Seed))
	h.Write(buf[:])
	binary.BigEndian.PutUint64(buf[:], uint64(index))
	h.Write(buf[:])
	// FNV-1a's high bits respond poorly to trailing bytes (the index
	// would barely move the draw); finish with a 64-bit avalanche mix
	// before taking the top 53 bits as a uniform draw.
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	u := float64(x>>11) / float64(1<<53)
	for _, band := range []struct {
		rate float64
		kind Fault
	}{
		{c.PanicRate, FaultPanic},
		{c.ErrorRate, FaultError},
		{c.DelayRate, FaultDelay},
		{c.DropRate, FaultDrop},
		{c.CorruptRate, FaultCorrupt},
	} {
		if u < band.rate {
			return band.kind
		}
		u -= band.rate
	}
	return FaultNone
}

func (c Chaos) fired(index int, kind Fault) {
	if c.OnFault != nil {
		c.OnFault(index, kind)
	}
	if tel := obs.Active(); tel != nil {
		tel.Reg.Counter("repro_chaos_faults_total", obs.L("kind", string(kind))).Inc()
		tel.Events.Emit("chaos.fault", map[string]string{
			"run":  strconv.Itoa(index),
			"kind": string(kind),
		})
	}
}

// onceTracker arms each run's fault exactly once, so retries converge.
type onceTracker struct {
	mu    sync.Mutex
	fired map[int]bool
}

func (t *onceTracker) arm(index int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.fired[index] {
		return false
	}
	t.fired[index] = true
	return true
}

// Run drives Inner with a run function that misbehaves on each faulted
// run's first attempt: panics, spurious errors, past-deadline delays
// and dropped results all surface here. FaultCorrupt has nothing to
// corrupt on this seam and passes through.
func (c Chaos) Run(ctx context.Context, n int, keys []uint64, fn func(i int) error) error {
	once := &onceTracker{fired: make(map[int]bool)}
	return c.Inner.Run(ctx, n, keys, func(i int) error {
		kind := c.decide(i)
		if kind == FaultNone || kind == FaultCorrupt || !once.arm(i) {
			return fn(i)
		}
		c.fired(i, kind)
		switch kind {
		case FaultPanic:
			panic(fmt.Sprintf("chaos: injected panic (run %d)", i))
		case FaultDelay:
			if c.Delay > 0 {
				sleep := c.Sleep
				if sleep == nil {
					sleep = time.Sleep
				}
				sleep(c.Delay)
			}
			return fmt.Errorf("chaos: run %d answered after its deadline", i)
		case FaultError:
			return fmt.Errorf("chaos: injected spurious error (run %d)", i)
		default: // FaultDrop: fn never runs, the result is simply missing.
			return fmt.Errorf("chaos: dropped result of run %d", i)
		}
	})
}

// RunPayload forwards the job to Inner (when Inner moves payloads)
// with a Store that drops or corrupts faulted runs' payloads on first
// delivery — the dispatcher sees a decode/integrity failure and
// re-runs the shard. Exec is left alone on this seam: in-process
// (degraded) execution treats run errors as deterministic campaign
// failures, which an injected fault is not. When Inner has no payload
// path, the job degrades to the plain seam with the full fault set.
func (c Chaos) RunPayload(ctx context.Context, job campaign.PayloadJob) error {
	pex, ok := c.Inner.(campaign.PayloadExecutor)
	if !ok {
		return c.Run(ctx, job.N, job.Keys, job.Exec)
	}
	once := &onceTracker{fired: make(map[int]bool)}
	store := job.Store
	job.Store = func(i int, payload []byte) error {
		kind := c.decide(i)
		if (kind != FaultDrop && kind != FaultCorrupt) || !once.arm(i) {
			return store(i, payload)
		}
		c.fired(i, kind)
		if kind == FaultDrop {
			return fmt.Errorf("chaos: dropped payload of run %d", i)
		}
		mangled := append([]byte(nil), payload...)
		for k := range mangled {
			mangled[k] ^= 0xa5
		}
		if err := store(i, mangled); err != nil {
			return err
		}
		// The mangled payload decoded anyway; still report the fault so
		// the dispatcher re-runs the shard and the good payload lands.
		return fmt.Errorf("chaos: corrupted payload of run %d", i)
	}
	return pex.RunPayload(ctx, job)
}
