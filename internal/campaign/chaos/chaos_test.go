package chaos

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
)

// cubes is a minimal wire-capable campaign: plan the ints [0, n), cube
// each, reduce to the printed result slice. Shard keys deliberately
// scatter neighbouring runs across shards.
type cubes struct {
	campaign.JSONWire[int]
	n int
}

func (c cubes) Name() string { return "cubes" }

func (c cubes) Plan() ([]int, error) {
	plan := make([]int, c.n)
	for i := range plan {
		plan[i] = i
	}
	return plan, nil
}

func (c cubes) Execute(_ context.Context, r, _ int) (int, error) { return r * r * r, nil }

func (c cubes) Reduce(_ []int, results []int) (string, error) {
	return fmt.Sprint(results), nil
}

func (c cubes) ShardKey(r, _ int) uint64 { return uint64(r) * 2654435761 }

// faultCounter tallies injected faults across goroutines.
type faultCounter struct {
	mu    sync.Mutex
	kinds map[Fault]int
	total int
}

func (f *faultCounter) hook(_ int, kind Fault) {
	f.mu.Lock()
	f.kinds[kind]++
	f.total++
	f.mu.Unlock()
}

func newFaultCounter() *faultCounter { return &faultCounter{kinds: make(map[Fault]int)} }

func baseline(t *testing.T, n int) string {
	t.Helper()
	out, err := campaign.Execute[int, int, string](context.Background(), cubes{n: n}, campaign.Serial{}, nil)
	if err != nil {
		t.Fatalf("serial baseline: %v", err)
	}
	return out
}

// TestChaosWithRetryReducesIdenticalToSerial is the headline pin: a
// campaign riddled with injected panics, spurious errors, past-deadline
// delays and dropped results still reduces byte-identically to the
// serial run, because Retry inside the chaos wrapper heals every
// injected (first-attempt) fault.
func TestChaosWithRetryReducesIdenticalToSerial(t *testing.T) {
	const n = 64
	want := baseline(t, n)
	for _, inner := range []campaign.Executor{
		campaign.Serial{},
		campaign.Sharded{Workers: 4, Shards: 8},
	} {
		faults := newFaultCounter()
		ex := Chaos{
			Inner:     campaign.Retry{Inner: inner, Attempts: 3, Sleep: func(time.Duration) {}},
			Seed:      1,
			PanicRate: 0.10, ErrorRate: 0.10, DelayRate: 0.10, DropRate: 0.10,
			OnFault: faults.hook,
		}
		got, err := campaign.Execute[int, int, string](context.Background(), cubes{n: n}, ex, nil)
		if err != nil {
			t.Fatalf("%s: %v", ex.Name(), err)
		}
		if got != want {
			t.Errorf("%s: output diverged from serial\n got %s\nwant %s", ex.Name(), got, want)
		}
		if faults.total == 0 {
			t.Errorf("%s: no faults fired — the test pinned nothing", ex.Name())
		}
	}
}

// TestChaosFaultsAreRealWithoutRetry proves the injected faults are not
// cosmetic: without a retry layer inside the wrapper, the campaign
// fails with the chaos diagnostic.
func TestChaosFaultsAreRealWithoutRetry(t *testing.T) {
	ex := Chaos{Inner: campaign.Serial{}, Seed: 1, ErrorRate: 1}
	_, err := campaign.Execute[int, int, string](context.Background(), cubes{n: 8}, ex, nil)
	if err == nil || !strings.Contains(err.Error(), "chaos:") {
		t.Fatalf("err = %v, want a chaos-injected failure", err)
	}
}

// TestChaosDecisionsAreDeterministic pins that fault placement is a
// pure function of (seed, index): two runs with the same seed inject
// the identical fault set, and the seed actually matters.
func TestChaosDecisionsAreDeterministic(t *testing.T) {
	record := func(seed int64) map[int]Fault {
		got := make(map[int]Fault)
		var mu sync.Mutex
		ex := Chaos{
			Inner:     campaign.Retry{Inner: campaign.Sharded{Workers: 4, Shards: 8}, Attempts: 2, Sleep: func(time.Duration) {}},
			Seed:      seed,
			PanicRate: 0.15, ErrorRate: 0.15, DropRate: 0.15,
			OnFault: func(i int, kind Fault) {
				mu.Lock()
				got[i] = kind
				mu.Unlock()
			},
		}
		if _, err := campaign.Execute[int, int, string](context.Background(), cubes{n: 64}, ex, nil); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		return got
	}
	a, b := record(7), record(7)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("same seed, different faults:\n%v\n%v", a, b)
	}
	if fmt.Sprint(a) == fmt.Sprint(record(8)) && fmt.Sprint(a) == fmt.Sprint(record(9)) {
		t.Error("fault placement ignores the seed")
	}
}

// fakeDispatcher is a payload executor with dispatch.Subprocess-shaped
// semantics in miniature: per run, execute + encode + store, retrying
// the store a bounded number of times — the seam Chaos corrupts.
type fakeDispatcher struct{}

func (fakeDispatcher) Name() string { return "fake-dispatcher" }

func (fakeDispatcher) Run(ctx context.Context, n int, keys []uint64, fn func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}

func (fakeDispatcher) RunPayload(ctx context.Context, job campaign.PayloadJob) error {
	for i := 0; i < job.N; i++ {
		var lastErr error
		for attempt := 0; attempt < 3; attempt++ {
			if err := job.Exec(i); err != nil {
				return err
			}
			payload, err := job.Encode(i)
			if err != nil {
				return err
			}
			if lastErr = job.Store(i, payload); lastErr == nil {
				break
			}
		}
		if lastErr != nil {
			return fmt.Errorf("run %d: %w", i, lastErr)
		}
	}
	return nil
}

// TestChaosCorruptsAndDropsPayloads pins the payload seam: corrupted
// and dropped shard payloads are detected by the store path and healed
// by the dispatcher's retry, leaving output identical to serial.
func TestChaosCorruptsAndDropsPayloads(t *testing.T) {
	const n = 64
	want := baseline(t, n)
	faults := newFaultCounter()
	ex := Chaos{
		Inner: fakeDispatcher{},
		Seed:  3, CorruptRate: 0.25, DropRate: 0.25,
		OnFault: faults.hook,
	}
	got, err := campaign.Execute[int, int, string](context.Background(), cubes{n: n}, ex, nil)
	if err != nil {
		t.Fatalf("%s: %v", ex.Name(), err)
	}
	if got != want {
		t.Errorf("output diverged from serial\n got %s\nwant %s", got, want)
	}
	if faults.kinds[FaultCorrupt] == 0 || faults.kinds[FaultDrop] == 0 {
		t.Errorf("fault mix %v missing corrupt or drop", faults.kinds)
	}
}
