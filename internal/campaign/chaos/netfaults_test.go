package chaos

import (
	"testing"
	"time"

	dnet "repro/internal/campaign/dispatch/net"
)

func TestNetFaultsDeterministic(t *testing.T) {
	mk := func() *NetFaults {
		return &NetFaults{Seed: 7, DropRate: 0.2, CorruptRate: 0.2, ResetRate: 0.1, DelayRate: 0.1, Delay: time.Millisecond}
	}
	a, b := mk(), mk()
	for ord := uint64(0); ord < 200; ord++ {
		for _, dir := range []dnet.Direction{dnet.Send, dnet.Recv} {
			if got, want := a.Frame(dir, ord), b.Frame(dir, ord); got != want {
				t.Fatalf("dir=%v ord=%d: %+v vs %+v — draw is not deterministic", dir, ord, got, want)
			}
		}
	}
	if a.Faults() == 0 {
		t.Fatal("rates totalling 0.6 over 400 frames injected no faults")
	}
}

func TestNetFaultsDirectionsDrawIndependently(t *testing.T) {
	nf := &NetFaults{Seed: 11, DropRate: 0.5}
	same := 0
	const frames = 200
	for ord := uint64(0); ord < frames; ord++ {
		if nf.Frame(dnet.Send, ord).Drop == nf.Frame(dnet.Recv, ord).Drop {
			same++
		}
	}
	if same == frames {
		t.Fatal("send and recv draws are identical; direction is not mixed into the draw")
	}
}

func TestNetFaultsSkipFrames(t *testing.T) {
	nf := &NetFaults{Seed: 3, DropRate: 1}
	if got := nf.Frame(dnet.Send, 0); !got.Drop {
		t.Fatalf("frame 0 with SkipFrames unset should drop, got %+v", got)
	}
	nf2 := &NetFaults{Seed: 3, DropRate: 1, SkipFrames: 4}
	for ord := uint64(0); ord < 4; ord++ {
		if got := nf2.Frame(dnet.Send, ord); got != (dnet.Action{}) {
			t.Fatalf("frame %d inside skip window got fault %+v", ord, got)
		}
	}
	if got := nf2.Frame(dnet.Send, 4); !got.Drop {
		t.Fatalf("frame 4 past skip window should drop, got %+v", got)
	}
}

func TestNetFaultsMaxFaultsCap(t *testing.T) {
	nf := &NetFaults{Seed: 5, DropRate: 1, MaxFaults: 3}
	dropped := 0
	for ord := uint64(0); ord < 50; ord++ {
		if nf.Frame(dnet.Recv, ord).Drop {
			dropped++
		}
	}
	if dropped != 3 {
		t.Fatalf("MaxFaults=3 but %d frames dropped", dropped)
	}
	if nf.Faults() != 3 {
		t.Fatalf("Faults() = %d, want 3", nf.Faults())
	}
}

func TestNetFaultsObserver(t *testing.T) {
	var kinds []Fault
	nf := &NetFaults{
		Seed: 9, CorruptRate: 1, MaxFaults: 2,
		OnFault: func(dir dnet.Direction, ordinal uint64, kind Fault) { kinds = append(kinds, kind) },
	}
	for ord := uint64(0); ord < 5; ord++ {
		nf.Frame(dnet.Send, ord)
	}
	if len(kinds) != 2 {
		t.Fatalf("observer saw %d faults, want 2", len(kinds))
	}
	for _, k := range kinds {
		if k != FaultCorrupt {
			t.Fatalf("observer saw %s, want %s", k, FaultCorrupt)
		}
	}
}
