package chaos

import (
	"encoding/binary"
	"hash/fnv"
	"strconv"
	"sync/atomic"
	"time"

	dnet "repro/internal/campaign/dispatch/net"
	"repro/internal/obs"
)

// NetFaults is a dnet.Tap that injects deterministic network faults
// into the fleet transport: dropped frames, corrupted frame bodies,
// connection resets and delayed delivery. It exercises the same
// recovery machinery a flaky network would — the coordinator's
// integrity checks, heartbeat dead-peer detection, shard retries and
// capped-backoff reconnects — while staying reproducible: each frame's
// fate is a pure function of (Seed, direction, ordinal).
//
// Frame ordinals restart at zero on every connection, so an unbounded
// deterministic fault that kills the handshake would kill every
// reconnect attempt the same way and the campaign could never
// converge. MaxFaults caps the total number of injected faults across
// all connections sharing the tap (0 means unlimited); fleet tests set
// it so chaos provably runs dry and the retry budget heals the rest.
type NetFaults struct {
	// Seed drives every fault decision; same seed, same faults.
	Seed int64
	// Per-kind fault probabilities in [0, 1] per frame; their
	// cumulative sum should stay <= 1.
	DropRate, CorruptRate, ResetRate, DelayRate float64
	// Delay is how long a delayed frame stalls before delivery.
	Delay time.Duration
	// SkipFrames exempts each connection's first N frames in each
	// direction — set it past the handshake (hello, netConfig, ack) so
	// faults land on shard traffic rather than refusing every
	// connection at birth.
	SkipFrames uint64
	// MaxFaults caps total injected faults across the tap's lifetime
	// (0 = unlimited).
	MaxFaults int64
	// OnFault observes every injected fault (may be called from many
	// goroutines).
	OnFault func(dir dnet.Direction, ordinal uint64, kind Fault)

	fired atomic.Int64
}

// Faults reports how many faults the tap has injected so far.
func (nf *NetFaults) Faults() int64 { return nf.fired.Load() }

// Frame decides one frame's fate. Concurrency-safe; called by every
// connection wearing this tap.
func (nf *NetFaults) Frame(dir dnet.Direction, ordinal uint64) dnet.Action {
	if ordinal < nf.SkipFrames {
		return dnet.Action{}
	}
	kind := nf.decide(dir, ordinal)
	if kind == FaultNone {
		return dnet.Action{}
	}
	if nf.MaxFaults > 0 {
		if n := nf.fired.Add(1); n > nf.MaxFaults {
			nf.fired.Add(-1)
			return dnet.Action{}
		}
	} else {
		nf.fired.Add(1)
	}
	if nf.OnFault != nil {
		nf.OnFault(dir, ordinal, kind)
	}
	if tel := obs.Active(); tel != nil {
		tel.Reg.Counter("repro_chaos_net_faults_total", obs.L("kind", string(kind))).Inc()
		tel.Events.Emit("chaos.netfault", map[string]string{
			"dir":     dir.String(),
			"ordinal": strconv.FormatUint(ordinal, 10),
			"kind":    string(kind),
		})
	}
	switch kind {
	case FaultDrop:
		return dnet.Action{Drop: true}
	case FaultCorrupt:
		return dnet.Action{Corrupt: true}
	case FaultError: // reset band
		return dnet.Action{Reset: true}
	default: // FaultDelay
		return dnet.Action{Delay: nf.Delay}
	}
}

// decide maps (Seed, direction, ordinal) onto a fault kind with the
// same FNV-1a + avalanche draw the run-level chaos wrapper uses.
func (nf *NetFaults) decide(dir dnet.Direction, ordinal uint64) Fault {
	h := fnv.New64a()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(nf.Seed))
	h.Write(buf[:])
	binary.BigEndian.PutUint64(buf[:], uint64(dir))
	h.Write(buf[:])
	binary.BigEndian.PutUint64(buf[:], ordinal)
	h.Write(buf[:])
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	u := float64(x>>11) / float64(1<<53)
	for _, band := range []struct {
		rate float64
		kind Fault
	}{
		{nf.DropRate, FaultDrop},
		{nf.CorruptRate, FaultCorrupt},
		{nf.ResetRate, FaultError},
		{nf.DelayRate, FaultDelay},
	} {
		if u < band.rate {
			return band.kind
		}
		u -= band.rate
	}
	return FaultNone
}
