package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// Timing is one row of the BENCH_campaigns.json report: how many runs
// a campaign executed, how long it took, and the throughput. The
// telemetry-derived fields (retries, redispatches, shard latency
// percentiles) are omitted when zero, so reports from telemetry-free
// runs keep the original schema exactly.
type Timing struct {
	Campaign   string  `json:"campaign"`
	Runs       int     `json:"runs"`
	WallS      float64 `json:"wall_s"`
	RunsPerSec float64 `json:"runs_per_sec"`
	// RunsPlanned is the size of the full (exact) injection grid the
	// campaign stands for; RunsExecuted is what actually ran after
	// equivalence pruning and early stopping, and RunsSaved is the
	// difference. For exact campaigns all three agree (saved = 0).
	RunsPlanned  int `json:"runs_planned"`
	RunsExecuted int `json:"runs_executed"`
	RunsSaved    int `json:"runs_saved"`
	// RunRetries counts run re-attempts by the Retry executor during
	// this campaign.
	RunRetries int64 `json:"run_retries,omitempty"`
	// ShardRetries counts shard re-dispatches by the subprocess
	// dispatcher during this campaign.
	ShardRetries int64 `json:"shard_retries,omitempty"`
	// FleetReconnects counts reconnects to lost fleet workers during
	// this campaign; StragglerRedispatches counts duplicate shard
	// dispatches racing stragglers. Both zero (and omitted) outside
	// fleet dispatch.
	FleetReconnects       int64 `json:"fleet_reconnects,omitempty"`
	StragglerRedispatches int64 `json:"straggler_redispatches,omitempty"`
	// ShardP50Ms / ShardP99Ms estimate per-shard wall-time percentiles
	// (milliseconds) from the shard-duration histogram's movement.
	ShardP50Ms float64 `json:"shard_p50_ms,omitempty"`
	ShardP99Ms float64 `json:"shard_p99_ms,omitempty"`
	// AllocsPerOp / AllocBytesPerOp record per-operation allocation
	// counts for solver rows (cmd/place's analytic benchmarks), where
	// "op" is one run of the measured operation (Runs counts the
	// repetitions). Zero for injection campaigns.
	AllocsPerOp     float64 `json:"allocs_per_op,omitempty"`
	AllocBytesPerOp float64 `json:"alloc_bytes_per_op,omitempty"`
}

// Extras carries the telemetry-derived additions to a timing row.
type Extras struct {
	RunRetries            int64
	ShardRetries          int64
	FleetReconnects       int64
	StragglerRedispatches int64
	ShardP50Ms            float64
	ShardP99Ms            float64
	// RunsPlanned, when positive, records the exact-grid size an
	// adaptive campaign stands for; the row's RunsSaved becomes
	// RunsPlanned - runs.
	RunsPlanned int
	// Per-op allocation stats for solver benchmark rows.
	AllocsPerOp     float64
	AllocBytesPerOp float64
}

// NewTiming builds one timing row from a campaign's run count and
// wall-clock duration.
func NewTiming(campaign string, runs int, wall time.Duration) Timing {
	t := Timing{
		Campaign:     campaign,
		Runs:         runs,
		WallS:        wall.Seconds(),
		RunsPlanned:  runs,
		RunsExecuted: runs,
	}
	if t.WallS > 0 {
		t.RunsPerSec = float64(runs) / t.WallS
	}
	return t
}

// Collector accumulates per-campaign timing rows. The engine observes
// into it from Execute, so commands that run several campaigns collect
// all rows through one hook instead of stopwatching each call site.
// Safe for concurrent observers.
type Collector struct {
	mu   sync.Mutex
	rows []Timing
}

// NewCollector returns an empty collector. The zero value is also
// ready to use.
func NewCollector() *Collector { return &Collector{} }

// Observe appends one campaign's timing row.
func (c *Collector) Observe(campaign string, runs int, wall time.Duration) {
	c.ObserveExt(campaign, runs, wall, Extras{})
}

// ObserveExt appends one campaign's timing row with telemetry extras.
func (c *Collector) ObserveExt(campaign string, runs int, wall time.Duration, ext Extras) {
	row := NewTiming(campaign, runs, wall)
	row.RunRetries = ext.RunRetries
	row.ShardRetries = ext.ShardRetries
	row.FleetReconnects = ext.FleetReconnects
	row.StragglerRedispatches = ext.StragglerRedispatches
	row.ShardP50Ms = ext.ShardP50Ms
	row.ShardP99Ms = ext.ShardP99Ms
	row.AllocsPerOp = ext.AllocsPerOp
	row.AllocBytesPerOp = ext.AllocBytesPerOp
	if ext.RunsPlanned > 0 {
		row.RunsPlanned = ext.RunsPlanned
		row.RunsSaved = ext.RunsPlanned - runs
	}
	c.mu.Lock()
	c.rows = append(c.rows, row)
	c.mu.Unlock()
}

// Rows returns the collected timing rows in observation order.
func (c *Collector) Rows() []Timing {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Timing(nil), c.rows...)
}

// CacheStats reports reference-run cache traffic alongside the timing
// rows (the experiment layer's golden cache). HitRate is hits over
// total lookups, 0 when the cache was never consulted.
type CacheStats struct {
	Size    int     `json:"size"`
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// benchReport is the BENCH_campaigns.json document.
type benchReport struct {
	Seed        int64      `json:"seed"`
	Workers     int        `json:"workers"`
	Campaigns   []Timing   `json:"campaigns"`
	GoldenCache CacheStats `json:"golden_cache"`
}

// WriteBench writes the timing rows (plus cache statistics) as JSON to
// path. An empty path or an empty row set disables the report.
func WriteBench(path string, seed int64, workers int, rows []Timing, cache CacheStats) error {
	if path == "" || len(rows) == 0 {
		return nil
	}
	if total := cache.Hits + cache.Misses; total > 0 && cache.HitRate == 0 {
		cache.HitRate = float64(cache.Hits) / float64(total)
	}
	rep := benchReport{Seed: seed, Workers: workers, Campaigns: rows, GoldenCache: cache}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("campaign: writing bench report: %w", err)
	}
	return nil
}
