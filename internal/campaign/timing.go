package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// Timing is one row of the BENCH_campaigns.json report: how many runs
// a campaign executed, how long it took, and the throughput.
type Timing struct {
	Campaign   string  `json:"campaign"`
	Runs       int     `json:"runs"`
	WallS      float64 `json:"wall_s"`
	RunsPerSec float64 `json:"runs_per_sec"`
}

// NewTiming builds one timing row from a campaign's run count and
// wall-clock duration.
func NewTiming(campaign string, runs int, wall time.Duration) Timing {
	t := Timing{
		Campaign: campaign,
		Runs:     runs,
		WallS:    wall.Seconds(),
	}
	if t.WallS > 0 {
		t.RunsPerSec = float64(runs) / t.WallS
	}
	return t
}

// Collector accumulates per-campaign timing rows. The engine observes
// into it from Execute, so commands that run several campaigns collect
// all rows through one hook instead of stopwatching each call site.
// Safe for concurrent observers.
type Collector struct {
	mu   sync.Mutex
	rows []Timing
}

// NewCollector returns an empty collector. The zero value is also
// ready to use.
func NewCollector() *Collector { return &Collector{} }

// Observe appends one campaign's timing row.
func (c *Collector) Observe(campaign string, runs int, wall time.Duration) {
	c.mu.Lock()
	c.rows = append(c.rows, NewTiming(campaign, runs, wall))
	c.mu.Unlock()
}

// Rows returns the collected timing rows in observation order.
func (c *Collector) Rows() []Timing {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Timing(nil), c.rows...)
}

// CacheStats reports reference-run cache traffic alongside the timing
// rows (the experiment layer's golden cache).
type CacheStats struct {
	Size   int   `json:"size"`
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// benchReport is the BENCH_campaigns.json document.
type benchReport struct {
	Seed        int64      `json:"seed"`
	Workers     int        `json:"workers"`
	Campaigns   []Timing   `json:"campaigns"`
	GoldenCache CacheStats `json:"golden_cache"`
}

// WriteBench writes the timing rows (plus cache statistics) as JSON to
// path. An empty path or an empty row set disables the report.
func WriteBench(path string, seed int64, workers int, rows []Timing, cache CacheStats) error {
	if path == "" || len(rows) == 0 {
		return nil
	}
	rep := benchReport{Seed: seed, Workers: workers, Campaigns: rows, GoldenCache: cache}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("campaign: writing bench report: %w", err)
	}
	return nil
}
