// Package campaign is the unified engine behind every fault-injection
// campaign: a campaign declares its work as Plan/Execute/Reduce, and a
// pluggable Executor schedules the independent runs. The decomposition
// is the architectural seam for scaling — the plan is deterministic and
// indexable, runs are pure functions of (run, index), and results are
// reduced in plan order, so the same campaign is byte-identical whether
// it executes serially, on a sharded worker pool, or (later) on a
// distributed work queue.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Campaign decomposes one experiment into independently schedulable
// runs. Plan builds the full run list deterministically (no randomness
// beyond what the campaign's seed fixes); Execute performs run i and
// must derive all its randomness from (run, index), never from
// scheduling; Reduce folds the results — in plan order — into the
// campaign's output. Execute must only touch index-owned state: the
// engine invokes it concurrently.
type Campaign[Run, Result, Out any] interface {
	// Name identifies the campaign in timing rows and diagnostics.
	Name() string
	// Plan returns every run of the campaign.
	Plan() ([]Run, error)
	// Execute performs one run.
	Execute(ctx context.Context, run Run, index int) (Result, error)
	// Reduce aggregates the results, which are indexed like the plan.
	Reduce(plan []Run, results []Result) (Out, error)
}

// Sharder is an optional Campaign refinement: ShardKey assigns run i a
// deterministic work-distribution key. Keys must be pure functions of
// the run's identity (seed, test case, physics, horizons — the same
// fields that key the golden cache), never of worker count, so a shard
// holds the same runs no matter where or how wide it executes. Runs
// sharing a key share a shard, which keeps per-case golden reuse local
// to one shard when shards are dispatched to separate processes.
type Sharder[Run any] interface {
	ShardKey(run Run, index int) uint64
}

// Describer is an optional Campaign refinement: Describe renders run i
// for diagnostics (the failing run's seed and test case), used to
// decorate errors and recovered panics.
type Describer[Run any] interface {
	Describe(run Run, index int) string
}

// Execute runs a campaign end to end: plan, execute every run on the
// executor, reduce. A nil executor defaults to Serial. When col is
// non-nil the engine observes the campaign's run count and wall-clock
// time into it (the engine-level timing hook behind BENCH_campaigns
// reports). Errors and panics from individual runs abort the campaign
// and are decorated with the failing run's index and description.
func Execute[Run, Result, Out any](ctx context.Context, c Campaign[Run, Result, Out], ex Executor, col *Collector) (Out, error) {
	var zero Out
	if ex == nil {
		ex = Serial{}
	}
	plan, err := c.Plan()
	if err != nil {
		return zero, fmt.Errorf("%s: plan: %w", c.Name(), err)
	}

	var keys []uint64
	if s, ok := any(c).(Sharder[Run]); ok {
		keys = make([]uint64, len(plan))
		for i, r := range plan {
			keys[i] = s.ShardKey(r, i)
		}
	}

	results := make([]Result, len(plan))
	fn := func(i int) error {
		res, err := c.Execute(ctx, plan[i], i)
		if err != nil {
			return fmt.Errorf("%s: run %d%s: %w", c.Name(), i, describe(c, plan, i), err)
		}
		results[i] = res
		return nil
	}
	start := time.Now()
	// Executors that can source results from worker processes or a
	// checkpoint journal get the payload path, provided the campaign's
	// results can cross a process boundary (Wire). Campaigns without a
	// codec fall back to plain in-process scheduling.
	if pex, isPayload := ex.(PayloadExecutor); isPayload {
		if w, hasWire := any(c).(Wire[Result]); hasWire {
			err = pex.RunPayload(ctx, PayloadJob{
				Campaign: c.Name(),
				N:        len(plan),
				Keys:     keys,
				PlanHash: PlanHash(c.Name(), len(plan), keys),
				Exec:     func(i int) error { return call(fn, i) },
				Encode:   func(i int) ([]byte, error) { return w.EncodeResult(results[i]) },
				Store: func(i int, payload []byte) error {
					res, derr := w.DecodeResult(payload)
					if derr != nil {
						return derr
					}
					results[i] = res
					return nil
				},
			})
		} else {
			err = ex.Run(ctx, len(plan), keys, fn)
		}
	} else {
		err = ex.Run(ctx, len(plan), keys, fn)
	}
	if col != nil {
		col.Observe(c.Name(), len(plan), time.Since(start))
	}
	if err != nil {
		// Panics are recovered inside the executor, which cannot know the
		// run's meaning; attach the campaign-level description here.
		var pe *PanicError
		if errors.As(err, &pe) && pe.Index >= 0 && pe.Index < len(plan) {
			err = fmt.Errorf("%s: run %d%s: %w", c.Name(), pe.Index, describe(c, plan, pe.Index), err)
		}
		return zero, err
	}
	return c.Reduce(plan, results)
}

// describe renders run i via the campaign's Describer, if implemented.
func describe[Run, Result, Out any](c Campaign[Run, Result, Out], plan []Run, i int) string {
	if d, ok := any(c).(Describer[Run]); ok {
		if s := d.Describe(plan[i], i); s != "" {
			return " (" + s + ")"
		}
	}
	return ""
}
