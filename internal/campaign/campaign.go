// Package campaign is the unified engine behind every fault-injection
// campaign: a campaign declares its work as Plan/Execute/Reduce, and a
// pluggable Executor schedules the independent runs. The decomposition
// is the architectural seam for scaling — the plan is deterministic and
// indexable, runs are pure functions of (run, index), and results are
// reduced in plan order, so the same campaign is byte-identical whether
// it executes serially, on a sharded worker pool, or (later) on a
// distributed work queue.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"repro/internal/obs"
)

// Campaign decomposes one experiment into independently schedulable
// runs. Plan builds the full run list deterministically (no randomness
// beyond what the campaign's seed fixes); Execute performs run i and
// must derive all its randomness from (run, index), never from
// scheduling; Reduce folds the results — in plan order — into the
// campaign's output. Execute must only touch index-owned state: the
// engine invokes it concurrently.
type Campaign[Run, Result, Out any] interface {
	// Name identifies the campaign in timing rows and diagnostics.
	Name() string
	// Plan returns every run of the campaign.
	Plan() ([]Run, error)
	// Execute performs one run.
	Execute(ctx context.Context, run Run, index int) (Result, error)
	// Reduce aggregates the results, which are indexed like the plan.
	Reduce(plan []Run, results []Result) (Out, error)
}

// Sharder is an optional Campaign refinement: ShardKey assigns run i a
// deterministic work-distribution key. Keys must be pure functions of
// the run's identity (seed, test case, physics, horizons — the same
// fields that key the golden cache), never of worker count, so a shard
// holds the same runs no matter where or how wide it executes. Runs
// sharing a key share a shard, which keeps per-case golden reuse local
// to one shard when shards are dispatched to separate processes.
type Sharder[Run any] interface {
	ShardKey(run Run, index int) uint64
}

// Describer is an optional Campaign refinement: Describe renders run i
// for diagnostics (the failing run's seed and test case), used to
// decorate errors and recovered panics.
type Describer[Run any] interface {
	Describe(run Run, index int) string
}

// Planned is an optional Campaign refinement for campaigns whose plan
// is a pruned stand-in for a larger exact grid: PlannedRuns reports the
// exact-grid size, and the engine records it in the campaign's timing
// row so BENCH reports show runs saved. Campaigns without it are taken
// at face value (planned = executed).
type Planned interface {
	PlannedRuns() int
}

// Execute runs a campaign end to end: plan, execute every run on the
// executor, reduce. A nil executor defaults to Serial. When col is
// non-nil the engine observes the campaign's run count and wall-clock
// time into it (the engine-level timing hook behind BENCH_campaigns
// reports). Errors and panics from individual runs abort the campaign
// and are decorated with the failing run's index and description.
func Execute[Run, Result, Out any](ctx context.Context, c Campaign[Run, Result, Out], ex Executor, col *Collector) (Out, error) {
	var zero Out
	if ex == nil {
		ex = Serial{}
	}
	// Telemetry is strictly observational: every instrument below is
	// nil-safe, results never depend on telemetry state, and with no
	// telemetry installed each site costs one nil check.
	tel := obs.Active()
	var root *obs.Span
	if tel != nil {
		root = tel.Events.StartSpan("campaign", map[string]string{
			"campaign": c.Name(), "executor": ex.Name(),
		})
	}
	planSpan := root.Child("plan", nil)
	plan, err := c.Plan()
	planSpan.End()
	if err != nil {
		root.End()
		return zero, fmt.Errorf("%s: plan: %w", c.Name(), err)
	}

	var keys []uint64
	if s, ok := any(c).(Sharder[Run]); ok {
		keys = make([]uint64, len(plan))
		for i, r := range plan {
			keys[i] = s.ShardKey(r, i)
		}
	}

	// The campaign's trace id is its plan hash: deterministic, derived
	// from identity alone, and independently computable by every process
	// that handles a shard — traces from the whole fleet correlate with
	// no id handshake.
	var trace string
	var live *obs.LiveCampaign
	if tel != nil {
		trace = obs.TraceID(PlanHash(c.Name(), len(plan), keys))
		root.SetTrace(trace)
		live = tel.Live.StartCampaign(c.Name(), ex.Name(), trace, len(plan))
		defer tel.Live.EndCampaign(live)
	}

	results := make([]Result, len(plan))
	fn := func(i int) error {
		res, err := c.Execute(ctx, plan[i], i)
		if err != nil {
			return fmt.Errorf("%s: run %d%s: %w", c.Name(), i, describe(c, plan, i), err)
		}
		results[i] = res
		return nil
	}

	// Retry/redispatch deltas bracket the execution so the collector's
	// row reports only this campaign's movement even when several
	// campaigns share one process-wide telemetry.
	var (
		runsDone                  *obs.Counter
		preRunRetries, preShRetry int64
		preReconn, preStrag       int64
		preShardCounts            []int64
	)
	if tel != nil {
		tel.Campaigns.Inc()
		tel.Reg.Counter("repro_campaign_runs_total", obs.L("campaign", c.Name())).Add(int64(len(plan)))
		runsDone = tel.Reg.Counter("repro_campaign_runs_done_total", obs.L("campaign", c.Name()))
		tel.Progress.StartCampaign(c.Name(), len(plan))
		preRunRetries = tel.RunRetries.Value()
		preShRetry = tel.DispatchRetries.Value()
		preReconn = tel.FleetReconnects.Value()
		preStrag = tel.FleetStragglers.Value()
		preShardCounts = tel.ShardDur.Counts()

		inner := fn
		fn = func(i int) error {
			runStart := time.Now()
			err := inner(i)
			tel.RunDur.ObserveSince(runStart)
			if err == nil {
				runsDone.Inc()
				tel.Progress.RunDone(1)
				live.RunDone()
			}
			return err
		}
	}
	execSpan := root.Child("execute", map[string]string{"runs": strconv.Itoa(len(plan))})
	if tel != nil {
		// Carry the execute span and trace id to executors and
		// dispatchers. Gated on telemetry so the disabled path never
		// pays the context allocation.
		ctx = obs.WithTrace(ctx, execSpan, trace)
	}
	start := time.Now()
	// Executors that can source results from worker processes or a
	// checkpoint journal get the payload path, provided the campaign's
	// results can cross a process boundary (Wire). Campaigns without a
	// codec fall back to plain in-process scheduling.
	if pex, isPayload := ex.(PayloadExecutor); isPayload {
		if w, hasWire := any(c).(Wire[Result]); hasWire {
			err = pex.RunPayload(ctx, PayloadJob{
				Campaign: c.Name(),
				N:        len(plan),
				Keys:     keys,
				PlanHash: PlanHash(c.Name(), len(plan), keys),
				Exec:     func(i int) error { return call(fn, i) },
				Encode:   func(i int) ([]byte, error) { return w.EncodeResult(results[i]) },
				Store: func(i int, payload []byte) error {
					res, derr := w.DecodeResult(payload)
					if derr != nil {
						return derr
					}
					results[i] = res
					// Runs dispatched to worker processes (or replayed
					// from a checkpoint) land here, not through fn.
					runsDone.Inc()
					if tel != nil {
						tel.Progress.RunDone(1)
						live.RunDone()
					}
					return nil
				},
			})
		} else {
			err = ex.Run(ctx, len(plan), keys, fn)
		}
	} else {
		err = ex.Run(ctx, len(plan), keys, fn)
	}
	execSpan.End()
	if col != nil {
		ext := Extras{}
		if p, ok := any(c).(Planned); ok {
			ext.RunsPlanned = p.PlannedRuns()
		}
		if tel != nil {
			ext.RunRetries = tel.RunRetries.Value() - preRunRetries
			ext.ShardRetries = tel.DispatchRetries.Value() - preShRetry
			ext.FleetReconnects = tel.FleetReconnects.Value() - preReconn
			ext.StragglerRedispatches = tel.FleetStragglers.Value() - preStrag
			counts := tel.ShardDur.Counts()
			for i := range counts {
				if i < len(preShardCounts) {
					counts[i] -= preShardCounts[i]
				}
			}
			ext.ShardP50Ms = 1000 * obs.QuantileFromCounts(obs.DurationBuckets, counts, 0.50)
			ext.ShardP99Ms = 1000 * obs.QuantileFromCounts(obs.DurationBuckets, counts, 0.99)
		}
		col.ObserveExt(c.Name(), len(plan), time.Since(start), ext)
	}
	if err != nil {
		root.End()
		// Panics are recovered inside the executor, which cannot know the
		// run's meaning; attach the campaign-level description here.
		var pe *PanicError
		if errors.As(err, &pe) && pe.Index >= 0 && pe.Index < len(plan) {
			err = fmt.Errorf("%s: run %d%s: %w", c.Name(), pe.Index, describe(c, plan, pe.Index), err)
		}
		return zero, err
	}
	reduceSpan := root.Child("reduce", nil)
	out, err := c.Reduce(plan, results)
	reduceSpan.End()
	root.End()
	return out, err
}

// describe renders run i via the campaign's Describer, if implemented.
func describe[Run, Result, Out any](c Campaign[Run, Result, Out], plan []Run, i int) string {
	if d, ok := any(c).(Describer[Run]); ok {
		if s := d.Describe(plan[i], i); s != "" {
			return " (" + s + ")"
		}
	}
	return ""
}
