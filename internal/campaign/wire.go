package campaign

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
)

// Wire is an optional Campaign refinement: campaigns whose results can
// cross a process boundary. EncodeResult and DecodeResult must be
// exact inverses for every value Execute can produce — the dispatcher
// relies on decode(encode(r)) being indistinguishable from r during
// Reduce, which is what makes a dispatched campaign byte-identical to
// an in-process one.
type Wire[Result any] interface {
	EncodeResult(Result) ([]byte, error)
	DecodeResult([]byte) (Result, error)
}

// JSONWire implements Wire via encoding/json. Campaigns embed it to
// opt into cross-process dispatch; the result type must round-trip
// JSON faithfully (exported fields, integer/bool/map payloads — Go
// floats also round-trip exactly, but avoid NaN).
type JSONWire[Result any] struct{}

func (JSONWire[Result]) EncodeResult(r Result) ([]byte, error) { return json.Marshal(r) }

func (JSONWire[Result]) DecodeResult(b []byte) (Result, error) {
	var r Result
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("campaign: decoding wire result: %w", err)
	}
	return r, nil
}

// PayloadJob is the engine's view of one campaign handed to a
// PayloadExecutor: the plan's size, shard keys and identity hash, plus
// three callbacks. Exec performs run i in this process and stores its
// result (panics are already recovered into *PanicError). Encode
// serializes the locally stored result of run i; Store decodes a
// remotely computed payload and stores it as run i's result. Exec and
// Store are safe to call concurrently for distinct indices.
type PayloadJob struct {
	// Campaign is the campaign's Name(), used to address the matching
	// plan in worker processes and checkpoint journals.
	Campaign string
	// N is the plan length.
	N int
	// Keys holds run i's shard key at Keys[i] (nil when the campaign
	// assigns none; executors then key by plan index).
	Keys []uint64
	// PlanHash fingerprints (Campaign, N, Keys): two processes agree on
	// it iff they built the same plan partition.
	PlanHash uint64
	// Exec executes run i locally and stores its result.
	Exec func(i int) error
	// Encode serializes the stored result of run i.
	Encode func(i int) ([]byte, error)
	// Store decodes payload and stores it as run i's result.
	Store func(i int, payload []byte) error
}

// PayloadExecutor is an Executor refinement for executors that can
// obtain run results as opaque payloads — from worker processes or a
// checkpoint journal — instead of (or in addition to) executing runs
// in this process. The engine prefers RunPayload over Run whenever the
// campaign implements Wire.
type PayloadExecutor interface {
	Executor
	RunPayload(ctx context.Context, job PayloadJob) error
}

// PlanHash fingerprints a campaign's plan partition: its name, plan
// length and shard keys. Workers verify it before executing a shard so
// a parent/worker configuration mismatch is detected instead of
// silently computing the wrong runs, and checkpoint journals bind
// entries to it so a stale journal is never replayed into a different
// campaign.
func PlanHash(name string, n int, keys []uint64) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|", name, n)
	var buf [8]byte
	for _, k := range keys {
		binary.BigEndian.PutUint64(buf[:], k)
		h.Write(buf[:])
	}
	return h.Sum64()
}
