// Package dnet carries the dispatch shard protocol over network
// connections. It owns the length-prefixed JSON frame codec the
// subprocess dispatcher already speaks over pipes (WriteFrame /
// ReadFrame are the same bytes), and adds the pieces pipes never
// needed: a framed connection with an interior write lock so
// heartbeats can interleave with responses, per-frame read deadlines
// for dead-peer detection, TCP/TLS dial and listen helpers, and a Tap
// seam through which internal/campaign/chaos injects network faults
// (dropped, corrupted, delayed frames; connection resets) to prove
// the coordinator's recovery never changes campaign output.
//
// The package deliberately knows nothing about campaigns: frames are
// opaque JSON values, so both the dispatcher and the chaos harness can
// import it without cycles.
package dnet

import (
	"bufio"
	"context"
	"crypto/tls"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// MaxFrame bounds a frame body so a corrupted length prefix cannot ask
// the reader to allocate unbounded memory (a detected data error, in
// the paper's terms, not a crash).
const MaxFrame = 256 << 20

// DefaultDialTimeout bounds one connection attempt.
const DefaultDialTimeout = 10 * time.Second

// WriteFrame marshals v and writes it as one length-prefixed frame.
// A *bufio.Writer is flushed so the frame is on the wire when the call
// returns.
func WriteFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("dispatch: marshaling frame: %w", err)
	}
	var pre [4]byte
	binary.BigEndian.PutUint32(pre[:], uint32(len(body)))
	if _, err := w.Write(pre[:]); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	if bw, ok := w.(*bufio.Writer); ok {
		return bw.Flush()
	}
	return nil
}

// ReadFrame reads one length-prefixed frame into v. io.EOF at a frame
// boundary is returned as-is (clean shutdown); anything else that cuts
// a frame short is an unexpected-EOF error.
func ReadFrame(r io.Reader, v any) error {
	body, err := readBody(r)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("dispatch: decoding frame: %w", err)
	}
	return nil
}

// readBody reads one raw frame body (without decoding it).
func readBody(r io.Reader) ([]byte, error) {
	var pre [4]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("dispatch: reading frame length: %w", err)
	}
	n := binary.BigEndian.Uint32(pre[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("dispatch: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("dispatch: reading %d-byte frame: %w", n, err)
	}
	return body, nil
}

// Direction tells a Tap which way a frame is crossing the connection.
type Direction int

const (
	// Send frames leave this endpoint.
	Send Direction = iota
	// Recv frames arrive at this endpoint.
	Recv
)

func (d Direction) String() string {
	if d == Send {
		return "send"
	}
	return "recv"
}

// Action is a Tap's verdict on one frame. The zero value lets the
// frame pass untouched.
type Action struct {
	// Drop loses the frame: a send returns success without writing, a
	// receive discards the frame and reads the next one. The peer's
	// deadline or heartbeat machinery must recover.
	Drop bool
	// Corrupt flips bits in the frame body (the length prefix stays
	// intact), so decoding or the integrity hash fails downstream.
	Corrupt bool
	// Reset closes the underlying connection mid-frame, like a peer
	// crash or a network partition.
	Reset bool
	// Delay stalls the frame before it is written or delivered.
	Delay time.Duration
}

// Tap intercepts raw frames crossing a Conn, one call per frame with
// that direction's zero-based ordinal. Implementations must be safe
// for concurrent use: one Conn calls it from its reader and writer,
// and a coordinator shares one Tap across every worker connection.
type Tap interface {
	Frame(dir Direction, ordinal uint64) Action
}

// Conn is one framed transport connection: WriteFrame/ReadFrame
// semantics over a net.Conn, an interior write lock so concurrent
// writers (shard responses and heartbeat pings) interleave at frame
// granularity, an optional per-frame read deadline bounding peer
// silence, and an optional fault-injection Tap.
type Conn struct {
	raw net.Conn
	br  *bufio.Reader

	wmu     sync.Mutex
	bw      *bufio.Writer
	sendOrd uint64

	tap         Tap
	readTimeout time.Duration
	recvOrd     uint64 // single reader; no lock needed

	closeOnce sync.Once
	closeErr  error
}

// NewConn wraps an established connection. readTimeout, when positive,
// bounds the silence between frames: a peer that sends nothing for
// that long (no responses, no heartbeats) is declared dead and reads
// fail. Zero disables the deadline.
func NewConn(raw net.Conn, tap Tap, readTimeout time.Duration) *Conn {
	return &Conn{
		raw:         raw,
		br:          bufio.NewReader(raw),
		bw:          bufio.NewWriter(raw),
		tap:         tap,
		readTimeout: readTimeout,
	}
}

// WriteFrame sends one frame, applying the tap's verdict first. Safe
// for concurrent use.
func (c *Conn) WriteFrame(v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("dispatch: marshaling frame: %w", err)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.tap != nil {
		act := c.tap.Frame(Send, c.sendOrd)
		c.sendOrd++
		if act.Delay > 0 {
			time.Sleep(act.Delay)
		}
		if act.Reset {
			c.raw.Close()
			return fmt.Errorf("dispatch: connection reset (injected fault)")
		}
		if act.Drop {
			return nil
		}
		if act.Corrupt {
			body = corruptBody(body)
		}
	}
	var pre [4]byte
	binary.BigEndian.PutUint32(pre[:], uint32(len(body)))
	if _, err := c.bw.Write(pre[:]); err != nil {
		return err
	}
	if _, err := c.bw.Write(body); err != nil {
		return err
	}
	return c.bw.Flush()
}

// ReadFrame reads the next delivered frame into v. Dropped frames are
// consumed and skipped; a read deadline overrun reports the peer as
// silent so callers can distinguish a dead connection from a slow
// shard.
func (c *Conn) ReadFrame(v any) error {
	for {
		if c.readTimeout > 0 {
			if err := c.raw.SetReadDeadline(time.Now().Add(c.readTimeout)); err != nil {
				return err
			}
		}
		body, err := readBody(c.br)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				return fmt.Errorf("dispatch: peer silent for %s (missed heartbeats): %w", c.readTimeout, err)
			}
			return err
		}
		if c.tap != nil {
			act := c.tap.Frame(Recv, c.recvOrd)
			c.recvOrd++
			if act.Delay > 0 {
				time.Sleep(act.Delay)
			}
			if act.Reset {
				c.raw.Close()
				return fmt.Errorf("dispatch: connection reset (injected fault)")
			}
			if act.Drop {
				continue
			}
			if act.Corrupt {
				body = corruptBody(body)
			}
		}
		if err := json.Unmarshal(body, v); err != nil {
			return fmt.Errorf("dispatch: decoding frame: %w", err)
		}
		return nil
	}
}

// Close tears the connection down; safe to call more than once and
// from any goroutine (it is how peers unblock a pending ReadFrame).
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.raw.Close() })
	return c.closeErr
}

// RemoteAddr names the peer for diagnostics.
func (c *Conn) RemoteAddr() net.Addr { return c.raw.RemoteAddr() }

// corruptBody returns a copy of body with a few bits flipped, length
// preserved — the shape of corruption the integrity hash and JSON
// decoding are there to catch.
func corruptBody(body []byte) []byte {
	b := append([]byte(nil), body...)
	if len(b) == 0 {
		return b
	}
	b[0] ^= 0xa5
	b[len(b)/2] ^= 0x5a
	b[len(b)-1] ^= 0xa5
	return b
}

// Dial connects to a worker endpoint (TLS when tlsCfg is non-nil) and
// wraps it as a framed Conn.
func Dial(ctx context.Context, addr string, tlsCfg *tls.Config, tap Tap, readTimeout time.Duration) (*Conn, error) {
	d := &net.Dialer{Timeout: DefaultDialTimeout}
	var raw net.Conn
	var err error
	if tlsCfg != nil {
		raw, err = (&tls.Dialer{NetDialer: d, Config: tlsCfg}).DialContext(ctx, "tcp", addr)
	} else {
		raw, err = d.DialContext(ctx, "tcp", addr)
	}
	if err != nil {
		return nil, err
	}
	return NewConn(raw, tap, readTimeout), nil
}

// Listen binds addr for incoming transport connections (TLS when
// tlsCfg is non-nil). Callers wrap accepted connections with NewConn.
func Listen(addr string, tlsCfg *tls.Config) (net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tlsCfg != nil {
		l = tls.NewListener(l, tlsCfg)
	}
	return l, nil
}
