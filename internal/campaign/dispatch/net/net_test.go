package dnet

import (
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

type msg struct {
	Seq  int    `json:"seq"`
	Text string `json:"text"`
}

// pair builds a connected framed pair over a real localhost TCP
// socket, with the given tap and read timeout on the server side.
func pair(t *testing.T, tap Tap, readTimeout time.Duration) (client, server *Conn) {
	t.Helper()
	l, err := Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		raw, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		server = NewConn(raw, tap, readTimeout)
	}()
	client, err = Dial(context.Background(), l.Addr().String(), nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if server == nil {
		t.Fatal("no server connection")
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestFrameRoundTrip(t *testing.T) {
	client, server := pair(t, nil, 0)
	for i := 0; i < 10; i++ {
		if err := client.WriteFrame(msg{Seq: i, Text: strings.Repeat("x", i*100)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		var m msg
		if err := server.ReadFrame(&m); err != nil {
			t.Fatal(err)
		}
		if m.Seq != i || len(m.Text) != i*100 {
			t.Fatalf("frame %d arrived as %+v", i, m)
		}
	}
	// Closing the peer surfaces as EOF at the frame boundary.
	client.Close()
	var m msg
	if err := server.ReadFrame(&m); err != io.EOF {
		t.Fatalf("read after close = %v, want io.EOF", err)
	}
}

func TestConcurrentWritersInterleaveAtFrameGranularity(t *testing.T) {
	client, server := pair(t, nil, 0)
	const writers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := client.WriteFrame(msg{Seq: w, Text: strings.Repeat("y", 50)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	counts := make([]int, writers)
	for i := 0; i < writers*per; i++ {
		var m msg
		if err := server.ReadFrame(&m); err != nil {
			t.Fatal(err)
		}
		counts[m.Seq]++
	}
	for w, n := range counts {
		if n != per {
			t.Fatalf("writer %d delivered %d frames, want %d", w, n, per)
		}
	}
}

// scriptTap replays a fixed per-ordinal action script on one
// direction.
type scriptTap struct {
	dir    Direction
	script map[uint64]Action
}

func (s *scriptTap) Frame(dir Direction, ordinal uint64) Action {
	if dir != s.dir {
		return Action{}
	}
	return s.script[ordinal]
}

func TestTapDropSkipsFrame(t *testing.T) {
	client, server := pair(t, &scriptTap{dir: Recv, script: map[uint64]Action{1: {Drop: true}}}, 0)
	for i := 0; i < 3; i++ {
		if err := client.WriteFrame(msg{Seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	var got []int
	for i := 0; i < 2; i++ {
		var m msg
		if err := server.ReadFrame(&m); err != nil {
			t.Fatal(err)
		}
		got = append(got, m.Seq)
	}
	if got[0] != 0 || got[1] != 2 {
		t.Fatalf("delivered %v, want [0 2]", got)
	}
}

func TestTapCorruptBreaksDecoding(t *testing.T) {
	client, server := pair(t, &scriptTap{dir: Recv, script: map[uint64]Action{0: {Corrupt: true}}}, 0)
	if err := client.WriteFrame(msg{Seq: 7, Text: "payload"}); err != nil {
		t.Fatal(err)
	}
	var m msg
	err := server.ReadFrame(&m)
	if err == nil || !strings.Contains(err.Error(), "decoding frame") {
		t.Fatalf("corrupted frame read = %v, want decode error", err)
	}
}

func TestTapResetClosesConnection(t *testing.T) {
	client, server := pair(t, &scriptTap{dir: Recv, script: map[uint64]Action{0: {Reset: true}}}, 0)
	if err := client.WriteFrame(msg{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	var m msg
	if err := server.ReadFrame(&m); err == nil || !strings.Contains(err.Error(), "reset") {
		t.Fatalf("read through reset = %v, want reset error", err)
	}
	// The underlying connection is gone for the peer too.
	client.raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	var m2 msg
	if err := client.ReadFrame(&m2); err == nil {
		t.Fatal("peer read succeeded after reset")
	}
}

func TestReadTimeoutReportsSilentPeer(t *testing.T) {
	_, server := pair(t, nil, 50*time.Millisecond)
	var m msg
	err := server.ReadFrame(&m)
	if err == nil || !strings.Contains(err.Error(), "silent") {
		t.Fatalf("silent peer read = %v, want missed-heartbeat error", err)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("silent peer error %v does not unwrap to a timeout", err)
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	client, server := pair(t, nil, 0)
	// Hand-write a frame whose length prefix claims more than MaxFrame.
	if _, err := client.raw.Write([]byte{0xff, 0xff, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	var m msg
	if err := server.ReadFrame(&m); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized frame read = %v, want limit error", err)
	}
}
