package dispatch

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// journalEntry is one completed shard, durably recorded so a killed
// campaign resumes by replaying only the shards that are missing. The
// entry binds to the campaign name and plan hash: a journal written by
// a different campaign, seed, size or shard count is never replayed.
type journalEntry struct {
	Campaign string       `json:"campaign"`
	PlanHash string       `json:"plan_hash"`
	Shard    string       `json:"shard"`
	Results  []runPayload `json:"results"`
	// Hash is payloadHash over (shard, results) — the same integrity
	// check the wire protocol uses, here protecting against torn or
	// corrupted journal writes.
	Hash string `json:"hash"`
}

// journalKey addresses an entry within one journal file.
type journalKey struct {
	campaign, planHash, shard string
}

// journal is a shard-granular checkpoint: an append-only file of
// length-prefixed JSON entries, one per completed shard. Appends are
// synced, and loading tolerates a truncated or corrupted tail (the
// frame a crash cut short is simply not resumed). Safe for concurrent
// appenders.
type journal struct {
	mu      sync.Mutex
	f       *os.File
	entries map[journalKey]journalEntry
}

// openJournal opens (creating if needed) the journal at path and loads
// every intact entry. The file is truncated to the last intact entry so
// subsequent appends start at a clean frame boundary.
func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dispatch: opening checkpoint journal: %w", err)
	}
	j := &journal{f: f, entries: make(map[journalKey]journalEntry)}
	var off int64
	for {
		var e journalEntry
		err := readFrame(f, &e)
		if err != nil {
			// io.EOF is a clean end; anything else is the torn tail of
			// an interrupted append — drop it and resume from the last
			// intact entry.
			break
		}
		if e.Hash != hex64(payloadHash(parseHex64(e.Shard), e.Results)) {
			break
		}
		j.entries[journalKey{e.Campaign, e.PlanHash, e.Shard}] = e
		if off, err = f.Seek(0, io.SeekCurrent); err != nil {
			f.Close()
			return nil, err
		}
	}
	if err := f.Truncate(off); err != nil {
		f.Close()
		return nil, fmt.Errorf("dispatch: truncating journal tail: %w", err)
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// lookup returns the journaled results of a shard, if any.
func (j *journal) lookup(campaign, planHash string, shard string) ([]runPayload, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.entries[journalKey{campaign, planHash, shard}]
	if !ok {
		return nil, false
	}
	return e.Results, true
}

// append records one completed shard and syncs it to disk before
// returning, so a SIGKILL immediately after never forfeits the shard.
func (j *journal) append(campaign, planHash, shard string, results []runPayload) error {
	e := journalEntry{
		Campaign: campaign,
		PlanHash: planHash,
		Shard:    shard,
		Results:  results,
		Hash:     hex64(payloadHash(parseHex64(shard), results)),
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := writeFrame(j.f, e); err != nil {
		return fmt.Errorf("dispatch: appending to checkpoint journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("dispatch: syncing checkpoint journal: %w", err)
	}
	j.entries[journalKey{campaign, planHash, shard}] = e
	return nil
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// parseHex64 inverts hex64; malformed input yields 0, which then fails
// the integrity comparison rather than crashing the loader.
func parseHex64(s string) uint64 {
	var v uint64
	if _, err := fmt.Sscanf(s, "%x", &v); err != nil {
		return 0
	}
	return v
}
