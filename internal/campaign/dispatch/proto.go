// Package dispatch ships whole campaign shards to worker processes.
//
// The parent re-execs the current binary in a hidden worker mode and
// speaks a length-prefixed JSON frame protocol over the worker's
// stdin/stdout: one request frame per shard (campaign name, plan hash,
// shard id, run indices), one response frame back (encoded results plus
// an integrity hash). The seam is hardened end-to-end — per-shard
// deadlines, crash and hang detection, retry with capped exponential
// backoff and deterministic jitter on a fresh worker, response
// integrity verification, shard-granular checkpoint/resume — and
// degrades gracefully to in-process execution when subprocesses cannot
// be spawned. Everything the protocol moves is a pure function of
// campaign identity, so a dispatched campaign reduces byte-identically
// to a serial one; internal/campaign/chaos injects faults into this
// very seam to prove it.
//
// The same frame protocol also runs over TCP/TLS connections: ServeNet
// and DialAndServe turn a process into a networked worker agent, and
// the Fleet executor coordinates shards across a fleet of them with
// heartbeats, straggler re-dispatch and capped-backoff reconnect —
// degrading to Subprocess and then to in-process execution when the
// fleet is empty. See the dnet sub-package for the transport.
package dispatch

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"

	dnet "repro/internal/campaign/dispatch/net"
	"repro/internal/obs"
)

// protoVersion gates the frame protocol; parent and worker must agree.
// Version 2 wrapped worker→parent traffic in envelope frames so workers
// can interleave telemetry deltas with shard responses.
const protoVersion = 2

// maxFrame bounds a frame body so a corrupted length prefix cannot ask
// the reader to allocate unbounded memory (a detected data error, in
// the paper's terms, not a crash). The limit lives with the codec in
// the dnet sub-package; pipes and sockets share it.
const maxFrame = dnet.MaxFrame

// hello is the first frame a worker writes after starting, proving the
// process came up and speaks our protocol version.
type hello struct {
	Proto int `json:"proto"`
	PID   int `json:"pid"`
	// Token identifies the worker's process instance (obs.ProcessToken).
	// A parent that reads its own token knows the "worker" runs in the
	// same process and shares its metric registry, so the parent skips
	// merging that worker's telemetry deltas (they are already counted).
	Token string `json:"token,omitempty"`
}

// request asks a worker to execute one shard of a campaign's plan.
type request struct {
	Seq      uint64 `json:"seq"`
	Campaign string `json:"campaign"`
	// PlanHash is campaign.PlanHash rendered %016x (JSON numbers cannot
	// carry 64-bit values exactly).
	PlanHash string `json:"plan_hash"`
	// Shard is the shard's deterministic FNV-1a id, rendered %016x.
	Shard string `json:"shard"`
	// Indices are the plan indices of the shard, ascending.
	Indices []int `json:"indices"`
	// Trace, when non-empty, is the parent campaign's trace id: the
	// worker records spans for this shard and ships them back on the
	// response. Empty means tracing is off and the worker records
	// nothing.
	Trace string `json:"trace,omitempty"`
	// Span is the parent-side dispatch span id, carried for diagnostics
	// (the parent re-parents returned spans itself when folding).
	Span uint64 `json:"span,omitempty"`
}

// runPayload is one run's encoded result inside a response.
type runPayload struct {
	Index   int    `json:"index"`
	Payload []byte `json:"payload"`
}

// response carries one shard's results (or the worker-side error).
type response struct {
	Seq   uint64 `json:"seq"`
	Shard string `json:"shard"`
	// Error, when non-empty, reports a campaign-level failure inside
	// the worker (a run returned an error or panicked). These are
	// deterministic, so the parent aborts instead of retrying.
	Error   string       `json:"error,omitempty"`
	Results []runPayload `json:"results,omitempty"`
	// Hash is payloadHash over (shard, results), rendered %016x. It is
	// computed worker-side before the frame enters the pipe, so any
	// corruption in transit is detected by the parent and the shard is
	// re-run.
	Hash string `json:"hash,omitempty"`
	// Spans are the worker-side spans recorded while serving this shard
	// (only when the request carried a trace id). They ride outside the
	// integrity hash — trace data is observational and must never gate
	// result acceptance.
	Spans []obs.SpanRec `json:"spans,omitempty"`
}

// envelope is one worker→parent frame after the hello: either a shard
// response or a batch of telemetry deltas (counter/histogram movement
// since the worker's previous metrics frame — see obs.DeltaTracker).
// Workers send the metrics frame for a shard before its response, so by
// the time the parent observes a campaign as finished every worker-side
// count has been merged.
type envelope struct {
	Resp    *response    `json:"resp,omitempty"`
	Metrics []obs.Series `json:"metrics,omitempty"`
	// Ping is a worker-agent heartbeat on network transports: proof of
	// life while a long shard computes. Subprocess workers never send
	// it (pipes cannot half-fail the way sockets do), so proto-v2
	// parents and workers interoperate unchanged.
	Ping *pingFrame `json:"ping,omitempty"`
}

// pingFrame is the heartbeat body; the sequence number only aids
// debugging — any arriving frame refreshes the peer's read deadline.
type pingFrame struct {
	Seq uint64 `json:"seq"`
}

// netConfig is the coordinator→worker frame that follows the hello on
// network connections: worker agents start independently of any
// campaign (unlike subprocess workers, whose spec rides in their
// environment), so the coordinator ships the campaign spec and the
// heartbeat interval at handshake. The worker acknowledges with a
// response envelope (Seq 0; Error carries a spec the agent cannot
// serve) before the first shard request.
type netConfig struct {
	// Spec is the opaque campaign spec (the experiment layer's encoded
	// WorkerSpec) the agent builds its campaign lookup from.
	Spec string `json:"spec"`
	// HeartbeatMs is the agent's ping interval; 0 disables heartbeats.
	HeartbeatMs int64 `json:"heartbeat_ms"`
	// Trace, when non-empty, is the coordinator's campaign trace id,
	// logged by the agent so operators can grep a fleet's logs by trace.
	// Per-shard tracing is governed by request.Trace, not this field.
	Trace string `json:"trace,omitempty"`
}

// hex64 renders a 64-bit id the way every frame and journal entry
// carries it.
func hex64(v uint64) string { return fmt.Sprintf("%016x", v) }

// payloadHash fingerprints one shard's output, bound to the shard's
// own id: FNV-1a over the shard id, then every (index, payload) pair.
// A response whose hash does not match its content — or whose shard id
// does not match the request — is treated as a corrupted result.
func payloadHash(shard uint64, results []runPayload) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], shard)
	h.Write(buf[:])
	for _, r := range results {
		binary.BigEndian.PutUint64(buf[:], uint64(r.Index))
		h.Write(buf[:])
		binary.BigEndian.PutUint64(buf[:], uint64(len(r.Payload)))
		h.Write(buf[:])
		h.Write(r.Payload)
	}
	return h.Sum64()
}

// shardID derives a shard's deterministic identity from the campaign's
// plan hash, the bucket number and the member indices. It names the
// shard in diagnostics, journal entries and wire frames.
func shardID(planHash uint64, bucket int, indices []int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], planHash)
	h.Write(buf[:])
	binary.BigEndian.PutUint64(buf[:], uint64(bucket))
	h.Write(buf[:])
	for _, i := range indices {
		binary.BigEndian.PutUint64(buf[:], uint64(i))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// writeFrame marshals v and writes it as one length-prefixed frame.
// The codec lives in the dnet sub-package so pipe and socket
// transports move identical bytes.
func writeFrame(w io.Writer, v any) error { return dnet.WriteFrame(w, v) }

// readFrame reads one length-prefixed frame into v. io.EOF at a frame
// boundary is returned as-is (clean shutdown); anything else that cuts
// a frame short is an unexpected-EOF error.
func readFrame(r io.Reader, v any) error { return dnet.ReadFrame(r, v) }
