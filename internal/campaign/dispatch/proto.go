// Package dispatch ships whole campaign shards to worker processes.
//
// The parent re-execs the current binary in a hidden worker mode and
// speaks a length-prefixed JSON frame protocol over the worker's
// stdin/stdout: one request frame per shard (campaign name, plan hash,
// shard id, run indices), one response frame back (encoded results plus
// an integrity hash). The seam is hardened end-to-end — per-shard
// deadlines, crash and hang detection, retry with capped exponential
// backoff and deterministic jitter on a fresh worker, response
// integrity verification, shard-granular checkpoint/resume — and
// degrades gracefully to in-process execution when subprocesses cannot
// be spawned. Everything the protocol moves is a pure function of
// campaign identity, so a dispatched campaign reduces byte-identically
// to a serial one; internal/campaign/chaos injects faults into this
// very seam to prove it.
package dispatch

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/obs"
)

// protoVersion gates the frame protocol; parent and worker must agree.
// Version 2 wrapped worker→parent traffic in envelope frames so workers
// can interleave telemetry deltas with shard responses.
const protoVersion = 2

// maxFrame bounds a frame body so a corrupted length prefix cannot ask
// the reader to allocate unbounded memory (a detected data error, in
// the paper's terms, not a crash).
const maxFrame = 256 << 20

// hello is the first frame a worker writes after starting, proving the
// process came up and speaks our protocol version.
type hello struct {
	Proto int `json:"proto"`
	PID   int `json:"pid"`
}

// request asks a worker to execute one shard of a campaign's plan.
type request struct {
	Seq      uint64 `json:"seq"`
	Campaign string `json:"campaign"`
	// PlanHash is campaign.PlanHash rendered %016x (JSON numbers cannot
	// carry 64-bit values exactly).
	PlanHash string `json:"plan_hash"`
	// Shard is the shard's deterministic FNV-1a id, rendered %016x.
	Shard string `json:"shard"`
	// Indices are the plan indices of the shard, ascending.
	Indices []int `json:"indices"`
}

// runPayload is one run's encoded result inside a response.
type runPayload struct {
	Index   int    `json:"index"`
	Payload []byte `json:"payload"`
}

// response carries one shard's results (or the worker-side error).
type response struct {
	Seq   uint64 `json:"seq"`
	Shard string `json:"shard"`
	// Error, when non-empty, reports a campaign-level failure inside
	// the worker (a run returned an error or panicked). These are
	// deterministic, so the parent aborts instead of retrying.
	Error   string       `json:"error,omitempty"`
	Results []runPayload `json:"results,omitempty"`
	// Hash is payloadHash over (shard, results), rendered %016x. It is
	// computed worker-side before the frame enters the pipe, so any
	// corruption in transit is detected by the parent and the shard is
	// re-run.
	Hash string `json:"hash,omitempty"`
}

// envelope is one worker→parent frame after the hello: either a shard
// response or a batch of telemetry deltas (counter/histogram movement
// since the worker's previous metrics frame — see obs.DeltaTracker).
// Workers send the metrics frame for a shard before its response, so by
// the time the parent observes a campaign as finished every worker-side
// count has been merged.
type envelope struct {
	Resp    *response    `json:"resp,omitempty"`
	Metrics []obs.Series `json:"metrics,omitempty"`
}

// hex64 renders a 64-bit id the way every frame and journal entry
// carries it.
func hex64(v uint64) string { return fmt.Sprintf("%016x", v) }

// payloadHash fingerprints one shard's output, bound to the shard's
// own id: FNV-1a over the shard id, then every (index, payload) pair.
// A response whose hash does not match its content — or whose shard id
// does not match the request — is treated as a corrupted result.
func payloadHash(shard uint64, results []runPayload) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], shard)
	h.Write(buf[:])
	for _, r := range results {
		binary.BigEndian.PutUint64(buf[:], uint64(r.Index))
		h.Write(buf[:])
		binary.BigEndian.PutUint64(buf[:], uint64(len(r.Payload)))
		h.Write(buf[:])
		h.Write(r.Payload)
	}
	return h.Sum64()
}

// shardID derives a shard's deterministic identity from the campaign's
// plan hash, the bucket number and the member indices. It names the
// shard in diagnostics, journal entries and wire frames.
func shardID(planHash uint64, bucket int, indices []int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], planHash)
	h.Write(buf[:])
	binary.BigEndian.PutUint64(buf[:], uint64(bucket))
	h.Write(buf[:])
	for _, i := range indices {
		binary.BigEndian.PutUint64(buf[:], uint64(i))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// writeFrame marshals v and writes it as one length-prefixed frame.
func writeFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("dispatch: marshaling frame: %w", err)
	}
	var pre [4]byte
	binary.BigEndian.PutUint32(pre[:], uint32(len(body)))
	if _, err := w.Write(pre[:]); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	if bw, ok := w.(*bufio.Writer); ok {
		return bw.Flush()
	}
	return nil
}

// readFrame reads one length-prefixed frame into v. io.EOF at a frame
// boundary is returned as-is (clean shutdown); anything else that cuts
// a frame short is an unexpected-EOF error.
func readFrame(r io.Reader, v any) error {
	var pre [4]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("dispatch: reading frame length: %w", err)
	}
	n := binary.BigEndian.Uint32(pre[:])
	if n > maxFrame {
		return fmt.Errorf("dispatch: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return fmt.Errorf("dispatch: reading %d-byte frame: %w", n, err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("dispatch: decoding frame: %w", err)
	}
	return nil
}
