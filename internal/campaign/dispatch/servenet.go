package dispatch

import (
	"context"
	"crypto/tls"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/campaign"
	dnet "repro/internal/campaign/dispatch/net"
	"repro/internal/obs"
)

// DefaultHeartbeat is the worker-agent ping interval when a Fleet
// leaves Heartbeat zero. The coordinator declares a connection dead
// after three missed beats, so hang detection reacts within ~3×this
// while a genuinely slow shard (whose agent keeps pinging) gets the
// full shard deadline.
const DefaultHeartbeat = 2 * time.Second

// LookupFactory builds a campaign lookup from the spec a coordinator
// ships at handshake. Network agents start before any campaign exists,
// so — unlike subprocess workers, which read their spec from the
// environment — the factory runs once per connection, when the
// coordinator's netConfig frame arrives.
type LookupFactory func(ctx context.Context, spec string) (func(name string) (Worker, error), error)

// NetServeOptions tunes a networked worker agent.
type NetServeOptions struct {
	// TLS wraps the transport when non-nil (server config for ServeNet,
	// client config for DialAndServe).
	TLS *tls.Config
	// Tap, when non-nil, intercepts every frame — the chaos seam.
	Tap dnet.Tap
	// Log receives agent diagnostics (nil discards them).
	Log io.Writer
	// Ready, when non-nil, is called once with the bound listen address
	// (ServeNet only) — tests listen on ":0" and need the port.
	Ready func(addr net.Addr)
	// ReconnectBase and ReconnectCap shape DialAndServe's capped
	// reconnect backoff (zero selects the campaign package defaults).
	ReconnectBase, ReconnectCap time.Duration
}

func (o NetServeOptions) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// ServeNet runs a worker agent that listens on addr and serves shard
// requests on every accepted coordinator connection until ctx is
// canceled. Each connection handshakes independently (hello out,
// netConfig in, ack out) and builds its own campaign lookup from the
// spec the coordinator ships, so one long-lived agent can serve many
// campaigns — and many coordinators — in sequence.
func ServeNet(ctx context.Context, addr string, factory LookupFactory, o NetServeOptions) error {
	l, err := dnet.Listen(addr, o.TLS)
	if err != nil {
		return fmt.Errorf("dispatch: worker agent cannot listen on %s: %w", addr, err)
	}
	if o.Ready != nil {
		o.Ready(l.Addr())
	}
	o.logf("worker agent: serving shards on %s", l.Addr())
	go func() {
		<-ctx.Done()
		l.Close()
	}()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		raw, err := l.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("dispatch: worker agent accept: %w", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			serveNetConn(ctx, dnet.NewConn(raw, o.Tap, 0), factory, o.Log)
		}()
	}
}

// DialAndServe runs a worker agent that registers with a coordinator
// at addr (the coordinator's -fleet listen endpoint) and serves shards
// over the dialed connection, reconnecting with capped backoff when
// the coordinator goes away. It returns when ctx is canceled.
func DialAndServe(ctx context.Context, addr string, factory LookupFactory, o NetServeOptions) error {
	seed := int64(os.Getpid())
	fails := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		c, err := dnet.Dial(ctx, addr, o.TLS, o.Tap, 0)
		if err == nil {
			o.logf("worker agent: registered with coordinator %s", addr)
			fails = 0
			serveNetConn(ctx, c, factory, o.Log)
			if ctx.Err() == nil {
				o.logf("worker agent: coordinator %s went away; reconnecting", addr)
			}
			continue
		}
		fails++
		if fails == 1 {
			o.logf("worker agent: cannot reach coordinator %s (%v); retrying with backoff", addr, err)
		}
		d := campaign.BackoffDelay(o.ReconnectBase, o.ReconnectCap, seed, 0, fails)
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// serveNetConn speaks the worker side of the shard protocol on one
// transport connection: hello, netConfig handshake with spec ack, an
// optional heartbeat ticker for the connection's lifetime, then the
// same request → metrics-delta → response loop subprocess workers run
// over pipes. A canceled ctx closes the connection, which from the
// coordinator's side is indistinguishable from a killed worker — the
// recovery path the fleet tests exercise.
func serveNetConn(ctx context.Context, c *dnet.Conn, factory LookupFactory, log io.Writer) {
	logf := func(format string, args ...any) {
		if log != nil {
			fmt.Fprintf(log, format+"\n", args...)
		}
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	defer c.Close()
	go func() {
		<-ctx.Done()
		c.Close()
	}()

	if err := c.WriteFrame(hello{Proto: protoVersion, PID: os.Getpid(), Token: obs.ProcessToken()}); err != nil {
		return
	}
	var cfg netConfig
	if err := c.ReadFrame(&cfg); err != nil {
		if ctx.Err() == nil {
			logf("worker agent: handshake with %s failed: %v", c.RemoteAddr(), err)
		}
		return
	}
	if cfg.Trace != "" {
		// Announce the campaign trace id so a fleet's scattered agent
		// logs can be correlated by grep; per-shard tracing rides each
		// request frame.
		logf("worker agent: serving campaign trace %s for %s", cfg.Trace, c.RemoteAddr())
	}
	lookup, err := factory(ctx, cfg.Spec)
	ack := response{}
	if err != nil {
		ack.Error = fmt.Sprintf("building campaign lookup: %v", err)
		logf("worker agent: rejecting spec from %s: %v", c.RemoteAddr(), err)
	}
	if werr := c.WriteFrame(envelope{Resp: &ack}); werr != nil || err != nil {
		return
	}

	if cfg.HeartbeatMs > 0 {
		go func() {
			t := time.NewTicker(time.Duration(cfg.HeartbeatMs) * time.Millisecond)
			defer t.Stop()
			var seq uint64
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					seq++
					if err := c.WriteFrame(envelope{Ping: &pingFrame{Seq: seq}}); err != nil {
						// A dead coordinator connection: unblock the serve
						// loop so the agent can take the next coordinator.
						cancel()
						return
					}
				}
			}
		}()
	}

	workers := make(map[string]Worker)
	var deltas obs.DeltaTracker
	for {
		if ctx.Err() != nil {
			return
		}
		var req request
		switch err := c.ReadFrame(&req); {
		case err == io.EOF:
			return
		case err != nil:
			if ctx.Err() == nil {
				logf("worker agent: connection to %s lost: %v", c.RemoteAddr(), err)
			}
			return
		}
		resp := serveShard(ctx, workers, lookup, req)
		// Ship this shard's telemetry movement ahead of its response,
		// mirroring the pipe protocol: once the coordinator has the
		// response it may declare the campaign done.
		if tel := obs.Active(); tel != nil {
			if moved := deltas.Delta(tel.Reg); len(moved) > 0 {
				if err := c.WriteFrame(envelope{Metrics: moved}); err != nil {
					return
				}
			}
		}
		if err := c.WriteFrame(envelope{Resp: &resp}); err != nil {
			return
		}
	}
}
