package dispatch

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
)

// Worker is the worker-process view of one campaign: enough to verify
// the parent and worker agree on the plan and to execute single runs
// into encoded payloads. Adapt builds one from any wire-capable
// campaign.
type Worker interface {
	// Name is the campaign's name.
	Name() string
	// Plan reports the plan length and campaign.PlanHash fingerprint.
	Plan() (n int, hash uint64, err error)
	// ExecuteEncoded performs run i and returns its encoded result.
	ExecuteEncoded(ctx context.Context, i int) ([]byte, error)
}

// adapter implements Worker over a generic campaign, building the plan
// lazily on first use and memoizing it for every subsequent shard.
type adapter[Run, Result, Out any] struct {
	c    campaign.Campaign[Run, Result, Out]
	wire campaign.Wire[Result]

	once    sync.Once
	plan    []Run
	hash    uint64
	planErr error
}

// Adapt wraps a campaign for worker-side serving. The campaign must
// implement campaign.Wire for its result type (embed
// campaign.JSONWire[Result]); Adapt fails fast otherwise.
func Adapt[Run, Result, Out any](c campaign.Campaign[Run, Result, Out]) (Worker, error) {
	w, ok := any(c).(campaign.Wire[Result])
	if !ok {
		return nil, fmt.Errorf("dispatch: campaign %s has no wire codec", c.Name())
	}
	return &adapter[Run, Result, Out]{c: c, wire: w}, nil
}

func (a *adapter[Run, Result, Out]) Name() string { return a.c.Name() }

func (a *adapter[Run, Result, Out]) resolve() {
	a.once.Do(func() {
		plan, err := a.c.Plan()
		if err != nil {
			a.planErr = fmt.Errorf("%s: plan: %w", a.c.Name(), err)
			return
		}
		a.plan = plan
		var keys []uint64
		if s, ok := any(a.c).(campaign.Sharder[Run]); ok {
			keys = make([]uint64, len(plan))
			for i, r := range plan {
				keys[i] = s.ShardKey(r, i)
			}
		}
		a.hash = campaign.PlanHash(a.c.Name(), len(plan), keys)
	})
}

func (a *adapter[Run, Result, Out]) Plan() (int, uint64, error) {
	a.resolve()
	return len(a.plan), a.hash, a.planErr
}

func (a *adapter[Run, Result, Out]) ExecuteEncoded(ctx context.Context, i int) (payload []byte, err error) {
	a.resolve()
	if a.planErr != nil {
		return nil, a.planErr
	}
	if i < 0 || i >= len(a.plan) {
		return nil, fmt.Errorf("%s: run %d outside plan of %d", a.c.Name(), i, len(a.plan))
	}
	// Recover panics into an error naming the run, like the engine
	// does: the parent then aborts with a real diagnostic instead of
	// retrying a deterministic crash until the budget is gone.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%s: run %d panicked: %v\n%s", a.c.Name(), i, r, debug.Stack())
		}
	}()
	var start time.Time
	tel := obs.Active()
	if tel != nil {
		start = time.Now()
	}
	res, err := a.c.Execute(ctx, a.plan[i], i)
	if tel != nil {
		tel.RunDur.ObserveSince(start)
		// Worker-side run counts live under their own family; the
		// parent owns repro_campaign_runs_done_total (one increment per
		// landed result), so merging these can never double count.
		tel.Reg.Counter("repro_worker_runs_total", obs.L("campaign", a.c.Name())).Inc()
	}
	if err != nil {
		return nil, fmt.Errorf("%s: run %d: %w", a.c.Name(), i, err)
	}
	return a.wire.EncodeResult(res)
}

// Serve runs the worker side of the shard protocol over r/w until r
// reaches EOF (the parent closing the worker's stdin is the shutdown
// signal): announce ourselves with a hello frame, then answer each
// shard request with the shard's encoded results and integrity hash.
// lookup resolves a campaign name to its Worker; resolutions are
// memoized, so a process serving many shards of one campaign builds
// its plan (and reference state such as golden runs) once.
func Serve(ctx context.Context, lookup func(name string) (Worker, error), r io.Reader, w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := writeFrame(bw, hello{Proto: protoVersion, PID: os.Getpid(), Token: obs.ProcessToken()}); err != nil {
		return err
	}
	br := bufio.NewReader(r)
	workers := make(map[string]Worker)
	var deltas obs.DeltaTracker
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var req request
		switch err := readFrame(br, &req); {
		case err == io.EOF:
			return nil
		case err != nil:
			return err
		}
		resp := serveShard(ctx, workers, lookup, req)
		// Ship this shard's telemetry movement ahead of its response:
		// once the parent has the response it may declare the campaign
		// done, so the counts must already be merged by then.
		if tel := obs.Active(); tel != nil {
			if moved := deltas.Delta(tel.Reg); len(moved) > 0 {
				if err := writeFrame(bw, envelope{Metrics: moved}); err != nil {
					return err
				}
			}
		}
		if err := writeFrame(bw, envelope{Resp: &resp}); err != nil {
			return err
		}
	}
}

// serveShard executes one shard request; failures become the
// response's Error field rather than killing the serve loop. When the
// request carries a trace id, the worker records its spans (shard root,
// plan resolution, run execution with golden-cache attribution) into a
// TraceRecorder and ships them on the response, where the parent folds
// them into the campaign trace. Recording is observational only: it
// touches nothing the integrity hash covers.
func serveShard(ctx context.Context, workers map[string]Worker, lookup func(string) (Worker, error), req request) (resp response) {
	resp = response{Seq: req.Seq, Shard: req.Shard}
	var rec *obs.TraceRecorder
	var shardSpan *obs.RecSpan
	if req.Trace != "" {
		rec = obs.NewTraceRecorder()
		shardSpan = rec.Start("worker.shard", 0, map[string]string{
			"campaign": req.Campaign,
			"shard":    req.Shard,
			"runs":     fmt.Sprintf("%d", len(req.Indices)),
		})
		// resp is a named result: the deferred drain runs after every
		// return below, so error responses carry their spans too.
		defer func() { shardSpan.End(); resp.Spans = rec.Drain() }()
	}
	wk, ok := workers[req.Campaign]
	if !ok {
		var err error
		if wk, err = lookup(req.Campaign); err != nil {
			resp.Error = fmt.Sprintf("unknown campaign %q: %v", req.Campaign, err)
			return resp
		}
		workers[req.Campaign] = wk
	}
	planSpan := rec.Start("worker.plan", shardSpan.ID(), nil)
	n, hash, err := wk.Plan()
	planSpan.End()
	if err != nil {
		resp.Error = err.Error()
		return resp
	}
	if got := hex64(hash); got != req.PlanHash {
		resp.Error = fmt.Sprintf("plan mismatch for %s: worker %s, parent %s (n=%d) — parent and worker disagree on campaign identity",
			req.Campaign, got, req.PlanHash, n)
		return resp
	}
	tel := obs.Active()
	execSpan := rec.Start("worker.exec", shardSpan.ID(), nil)
	var preHits int64
	if tel != nil {
		preHits = tel.GoldenHits.Value()
	}
	results := make([]runPayload, 0, len(req.Indices))
	for _, i := range req.Indices {
		payload, err := wk.ExecuteEncoded(ctx, i)
		if err != nil {
			execSpan.End()
			resp.Error = err.Error()
			return resp
		}
		results = append(results, runPayload{Index: i, Payload: payload})
	}
	if execSpan != nil {
		execSpan.SetAttr("runs", fmt.Sprintf("%d", len(results)))
		if tel != nil {
			execSpan.SetAttr("golden_hits", fmt.Sprintf("%d", tel.GoldenHits.Value()-preHits))
		}
	}
	execSpan.End()
	resp.Results = results
	resp.Hash = hex64(payloadHash(parseHex64(req.Shard), results))
	return resp
}
