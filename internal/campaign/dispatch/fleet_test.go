package dispatch

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	dnet "repro/internal/campaign/dispatch/net"
)

// The fleet tests run worker agents in-process (goroutines serving the
// real TCP transport) rather than as subprocesses: network failure
// modes are injected by closing connections, corrupting frames via a
// dnet tap, or going silent — all indistinguishable on the wire from a
// killed or partitioned remote worker.

// cubesSpec encodes the test campaign's parameters for the netConfig
// handshake, standing in for the experiment layer's WorkerSpec JSON.
func cubesSpec(n, failAt int) string { return fmt.Sprintf("%d %d", n, failAt) }

// cubesFactory is the agents' LookupFactory; hook (when non-nil) runs
// before every shard-run execution, with the serve context.
func cubesFactory(hook func(ctx context.Context, i int)) LookupFactory {
	return func(_ context.Context, spec string) (func(string) (Worker, error), error) {
		var n, failAt int
		if _, err := fmt.Sscanf(spec, "%d %d", &n, &failAt); err != nil {
			return nil, fmt.Errorf("bad cubes spec %q: %v", spec, err)
		}
		return func(name string) (Worker, error) {
			if name != "cubes" {
				return nil, fmt.Errorf("test agent only serves cubes, not %q", name)
			}
			w, err := Adapt[int, int, string](cubes{n: n, failAt: failAt})
			if err != nil {
				return nil, err
			}
			return hookedWorker{Worker: w, hook: hook}, nil
		}, nil
	}
}

// hookedWorker runs the test's fault hook before each shard run.
type hookedWorker struct {
	Worker
	hook func(ctx context.Context, i int)
}

func (h hookedWorker) ExecuteEncoded(ctx context.Context, i int) ([]byte, error) {
	if h.hook != nil {
		h.hook(ctx, i)
	}
	return h.Worker.ExecuteEncoded(ctx, i)
}

// startAgent runs an in-process ServeNet worker agent and returns its
// dial address plus the cancel that kills it (closing its connections,
// which on the coordinator side looks exactly like a SIGKILLed remote
// worker).
func startAgent(t *testing.T, factory LookupFactory, tap dnet.Tap) (addr string, kill context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan net.Addr, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		ServeNet(ctx, "127.0.0.1:0", factory, NetServeOptions{
			Tap:   tap,
			Ready: func(a net.Addr) { addrCh <- a },
		})
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("agent did not shut down")
		}
	})
	select {
	case a := <-addrCh:
		return a.String(), cancel
	case <-time.After(5 * time.Second):
		t.Fatal("agent did not start")
		return "", nil
	}
}

// testFleet builds a Fleet against the given agents with test-speed
// timeouts.
func testFleet(n int, addrs ...string) *Fleet {
	return &Fleet{
		Addrs:        addrs,
		Spec:         cubesSpec(n, -1),
		Workers:      2,
		Shards:       8,
		ShardTimeout: 30 * time.Second,
		Heartbeat:    200 * time.Millisecond,
		BackoffBase:  time.Millisecond,
		BackoffCap:   4 * time.Millisecond,
		ConnectWait:  10 * time.Second,
	}
}

// TestFleetMatchesSerial pins the headline claim: the same campaign
// dispatched across a networked fleet at several worker and shard
// widths reduces byte-identically to the serial run.
func TestFleetMatchesSerial(t *testing.T) {
	const n = 24
	want := serialBaseline(t, n)
	a1, _ := startAgent(t, cubesFactory(nil), nil)
	a2, _ := startAgent(t, cubesFactory(nil), nil)
	for _, workers := range []int{1, 2, 4} {
		for _, shards := range []int{1, 2, 8} {
			f := testFleet(n, a1, a2)
			f.Workers, f.Shards = workers, shards
			got, err := campaign.Execute[int, int, string](context.Background(), newCubes(n), f, nil)
			if err != nil {
				t.Fatalf("workers=%d shards=%d: %v", workers, shards, err)
			}
			if got != want {
				t.Errorf("workers=%d shards=%d: output diverged from serial\n got %s\nwant %s", workers, shards, got, want)
			}
		}
	}
}

// TestFleetSurvivesKilledWorker kills one of two agents the moment it
// starts executing its first shard: its connections drop mid-flight,
// the coordinator destroys the worker and the retry lands the shard on
// the survivor. Output stays byte-identical to serial.
func TestFleetSurvivesKilledWorker(t *testing.T) {
	const n = 24
	var (
		once  sync.Once
		kill1 context.CancelFunc
	)
	killer := cubesFactory(func(ctx context.Context, i int) {
		once.Do(func() {
			kill1()
			<-ctx.Done() // the dying agent never answers this shard
		})
	})
	a1, k1 := startAgent(t, killer, nil)
	kill1 = k1
	a2, _ := startAgent(t, cubesFactory(nil), nil)

	var log bytes.Buffer
	f := testFleet(n, a1, a2)
	f.Retries, f.Log = 3, &log
	got, err := campaign.Execute[int, int, string](context.Background(), newCubes(n), f, nil)
	if err != nil {
		t.Fatalf("campaign did not survive the killed worker: %v\nlog:\n%s", err, log.String())
	}
	if want := serialBaseline(t, n); got != want {
		t.Errorf("output diverged from serial after worker death\n got %s\nwant %s", got, want)
	}
	logs := log.String()
	if !strings.Contains(logs, "lost worker") && !strings.Contains(logs, "connection lost") {
		t.Errorf("log does not diagnose the lost worker:\n%s", logs)
	}
}

// scriptedTap injects faults at fixed per-connection frame ordinals in
// one direction — deterministic chaos without probability bands.
type scriptedTap struct {
	dir    dnet.Direction
	script map[uint64]dnet.Action
	mu     sync.Mutex
	fired  int
	budget int
}

func (s *scriptedTap) Frame(dir dnet.Direction, ordinal uint64) dnet.Action {
	if dir != s.dir {
		return dnet.Action{}
	}
	act, ok := s.script[ordinal]
	if !ok {
		return dnet.Action{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fired >= s.budget {
		return dnet.Action{}
	}
	s.fired++
	return act
}

// TestFleetSurvivesCorruptedFrames wears a corrupting tap on the
// coordinator side: a shard response frame is mangled in transit, the
// decode fails, the worker is destroyed and re-dialed, and the shard
// retries — output still byte-identical to serial. Corruption is
// capped so the chaos provably runs dry within the retry budget.
func TestFleetSurvivesCorruptedFrames(t *testing.T) {
	const n = 24
	a1, _ := startAgent(t, cubesFactory(nil), nil)
	a2, _ := startAgent(t, cubesFactory(nil), nil)

	// Coordinator recv ordinals per connection: 0 hello, 1 spec ack,
	// then shard responses. Corrupt the first shard response frame on
	// whichever connection gets there first; budget 2 total.
	tap := &scriptedTap{dir: dnet.Recv, script: map[uint64]dnet.Action{2: {Corrupt: true}}, budget: 2}
	var log bytes.Buffer
	f := testFleet(n, a1, a2)
	f.Tap, f.Retries, f.Log = tap, 3, &log

	got, err := campaign.Execute[int, int, string](context.Background(), newCubes(n), f, nil)
	if err != nil {
		t.Fatalf("campaign did not survive frame corruption: %v\nlog:\n%s", err, log.String())
	}
	if want := serialBaseline(t, n); got != want {
		t.Errorf("output diverged from serial under frame corruption\n got %s\nwant %s", got, want)
	}
	if tap.fired == 0 {
		t.Error("tap never fired; the test exercised nothing")
	}
	if !strings.Contains(log.String(), "lost worker") {
		t.Errorf("log does not record the destroyed connection:\n%s", log.String())
	}
}

// TestFleetHeartbeatDetectsSilentPeer pins dead-peer detection: a fake
// worker completes the handshake and then goes silent — no pings, no
// response. The coordinator's read deadline (3 missed beats) reaps it
// long before the shard deadline, and the shard retries on the real
// agent.
func TestFleetHeartbeatDetectsSilentPeer(t *testing.T) {
	const n = 24
	silent := startSilentWorker(t)
	good, _ := startAgent(t, cubesFactory(nil), nil)

	var log bytes.Buffer
	f := testFleet(n, silent, good)
	f.Heartbeat = 100 * time.Millisecond
	f.ShardTimeout = 30 * time.Second // only heartbeats can reap the silent peer quickly
	f.StragglerAfter = -1             // isolate heartbeat detection from straggler re-dispatch
	f.Retries, f.Log = 3, &log

	start := time.Now()
	got, err := campaign.Execute[int, int, string](context.Background(), newCubes(n), f, nil)
	if err != nil {
		t.Fatalf("campaign did not survive the silent worker: %v\nlog:\n%s", err, log.String())
	}
	if want := serialBaseline(t, n); got != want {
		t.Errorf("output diverged from serial with a silent worker\n got %s\nwant %s", got, want)
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Errorf("campaign took %s; heartbeat detection should beat the 30s shard deadline", elapsed)
	}
	if !strings.Contains(log.String(), "missed heartbeats") {
		t.Errorf("log does not attribute the loss to missed heartbeats:\n%s", log.String())
	}
}

// startSilentWorker serves one connection: a correct handshake, then
// silence. It stops listening after the first accept so the
// coordinator's re-dial cannot resurrect it.
func startSilentWorker(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		raw, err := l.Accept()
		if err != nil {
			return
		}
		l.Close()
		defer raw.Close()
		c := dnet.NewConn(raw, nil, 0)
		if err := c.WriteFrame(hello{Proto: protoVersion, PID: os.Getpid()}); err != nil {
			return
		}
		var cfg netConfig
		if err := c.ReadFrame(&cfg); err != nil {
			return
		}
		if err := c.WriteFrame(envelope{Resp: &response{}}); err != nil {
			return
		}
		// Silence: swallow requests, send nothing — not even pings.
		for {
			var req request
			if err := c.ReadFrame(&req); err != nil {
				return
			}
		}
	}()
	return l.Addr().String()
}

// TestFleetStragglerRedispatch pins the straggler policy: one agent
// sits on its first shard far past StragglerAfter (while its heartbeats
// keep the connection alive), a duplicate dispatch lands on the second
// agent, and the first valid result wins. The campaign never waits for
// the full shard deadline and output stays byte-identical to serial.
func TestFleetStragglerRedispatch(t *testing.T) {
	const n = 24
	var once sync.Once
	slow := cubesFactory(func(ctx context.Context, i int) {
		once.Do(func() {
			select {
			case <-time.After(20 * time.Second):
			case <-ctx.Done():
			}
		})
	})
	a1, _ := startAgent(t, slow, nil)
	a2, _ := startAgent(t, cubesFactory(nil), nil)

	var log bytes.Buffer
	f := testFleet(n, a1, a2)
	f.ShardTimeout = 60 * time.Second
	f.StragglerAfter = 200 * time.Millisecond
	f.Log = &log

	start := time.Now()
	got, err := campaign.Execute[int, int, string](context.Background(), newCubes(n), f, nil)
	if err != nil {
		t.Fatalf("campaign did not route around the straggler: %v\nlog:\n%s", err, log.String())
	}
	if want := serialBaseline(t, n); got != want {
		t.Errorf("output diverged from serial with straggler re-dispatch\n got %s\nwant %s", got, want)
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Errorf("campaign took %s; the duplicate dispatch should finish long before the straggler", elapsed)
	}
	if !strings.Contains(log.String(), "re-dispatching") {
		t.Errorf("log does not record the straggler re-dispatch:\n%s", log.String())
	}
}

// TestFleetDegradesWithoutWorkers pins the degradation ladder's bottom
// rung: no agent is reachable, so after ConnectWait the whole campaign
// falls back — here (no Fallback command) to in-process execution —
// and the output is still byte-identical to serial.
func TestFleetDegradesWithoutWorkers(t *testing.T) {
	const n = 16
	// A dead address: listen, then close, so nothing ever accepts.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := l.Addr().String()
	l.Close()

	var log bytes.Buffer
	f := testFleet(n, dead)
	f.ConnectWait = 300 * time.Millisecond
	f.Log = &log
	got, err := campaign.Execute[int, int, string](context.Background(), newCubes(n), f, nil)
	if err != nil {
		t.Fatalf("degraded campaign failed: %v\nlog:\n%s", err, log.String())
	}
	if want := serialBaseline(t, n); got != want {
		t.Errorf("degraded output diverged from serial\n got %s\nwant %s", got, want)
	}
	if !strings.Contains(log.String(), "degrading") {
		t.Errorf("log does not record the degradation:\n%s", log.String())
	}
}

// TestFleetRegistrationMode exercises the -fleet-listen path: the
// coordinator accepts registrations, and DialAndServe agents join on
// their own. Output matches serial.
func TestFleetRegistrationMode(t *testing.T) {
	const n = 24
	// The coordinator needs a deterministic listen address before the
	// agents can dial it.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			DialAndServe(ctx, addr, cubesFactory(nil), NetServeOptions{
				ReconnectBase: time.Millisecond, ReconnectCap: 10 * time.Millisecond,
			})
		}()
	}
	t.Cleanup(func() { cancel(); wg.Wait() })

	f := testFleet(n)
	f.Listen = addr
	got, err := campaign.Execute[int, int, string](context.Background(), newCubes(n), f, nil)
	if err != nil {
		t.Fatalf("registration-mode campaign failed: %v", err)
	}
	if want := serialBaseline(t, n); got != want {
		t.Errorf("registration-mode output diverged from serial\n got %s\nwant %s", got, want)
	}
}

// TestFleetResumesSubprocessJournal pins cross-transport resume: a
// campaign checkpointed under the subprocess dispatcher (failed
// partway by a deterministic run error) resumes under the Fleet with
// the same journal, byte-identical to serial. The journal format is
// keyed by campaign identity alone, so the transport can change
// between sessions.
func TestFleetResumesSubprocessJournal(t *testing.T) {
	const n = 24
	ckpt := filepath.Join(t.TempDir(), "cross.ckpt")

	// Session 1: subprocess dispatch, run 20 fails deterministically.
	s := subproc(t, n, envFailAt+"=20")
	s.Workers, s.Shards, s.Checkpoint = 2, 8, ckpt
	if _, err := campaign.Execute[int, int, string](context.Background(), cubes{n: n, failAt: 20}, s, nil); err == nil {
		t.Fatal("session 1 should have failed at run 20")
	}

	// Session 2: same campaign, same journal, fleet transport.
	a1, _ := startAgent(t, cubesFactory(nil), nil)
	var log bytes.Buffer
	f := testFleet(n, a1)
	f.Checkpoint, f.Log = ckpt, &log
	got, err := campaign.Execute[int, int, string](context.Background(), newCubes(n), f, nil)
	if err != nil {
		t.Fatalf("fleet resume failed: %v\nlog:\n%s", err, log.String())
	}
	if want := serialBaseline(t, n); got != want {
		t.Errorf("resumed output diverged from serial\n got %s\nwant %s", got, want)
	}
	if !strings.Contains(log.String(), "resumed") {
		t.Errorf("log does not record the journal replay:\n%s", log.String())
	}
}

// TestSubprocessResumesFleetJournal is the reverse direction: a
// campaign checkpointed under the Fleet resumes under the subprocess
// dispatcher byte-identically.
func TestSubprocessResumesFleetJournal(t *testing.T) {
	const n = 24
	ckpt := filepath.Join(t.TempDir(), "cross-rev.ckpt")

	// Session 1: fleet dispatch, agents fail run 20 deterministically.
	a1, _ := startAgent(t, cubesFactory(nil), nil)
	f := testFleet(n, a1)
	f.Spec = cubesSpec(n, 20)
	f.Checkpoint = ckpt
	if _, err := campaign.Execute[int, int, string](context.Background(), cubes{n: n, failAt: 20}, f, nil); err == nil {
		t.Fatal("session 1 should have failed at run 20")
	}

	// Session 2: same campaign, same journal, subprocess transport.
	s := subproc(t, n)
	s.Workers, s.Shards, s.Checkpoint = 2, 8, ckpt
	var log bytes.Buffer
	s.Log = &log
	got, err := campaign.Execute[int, int, string](context.Background(), newCubes(n), s, nil)
	if err != nil {
		t.Fatalf("subprocess resume failed: %v\nlog:\n%s", err, log.String())
	}
	if want := serialBaseline(t, n); got != want {
		t.Errorf("resumed output diverged from serial\n got %s\nwant %s", got, want)
	}
	if !strings.Contains(log.String(), "resumed") {
		t.Errorf("log does not record the journal replay:\n%s", log.String())
	}
}

// TestFleetRejectsBadSpec pins handshake rejection: an agent that
// cannot build a lookup from the shipped spec is reported, not
// retried forever — with no other worker the campaign degrades to
// in-process execution and still completes.
func TestFleetRejectsBadSpec(t *testing.T) {
	const n = 16
	a1, _ := startAgent(t, cubesFactory(nil), nil)
	var log bytes.Buffer
	f := testFleet(n, a1)
	f.Spec = "not a cubes spec"
	f.ConnectWait = 500 * time.Millisecond
	f.Log = &log
	got, err := campaign.Execute[int, int, string](context.Background(), newCubes(n), f, nil)
	if err != nil {
		t.Fatalf("campaign failed: %v\nlog:\n%s", err, log.String())
	}
	if want := serialBaseline(t, n); got != want {
		t.Errorf("output diverged from serial\n got %s\nwant %s", got, want)
	}
	if !strings.Contains(log.String(), "rejected spec") && !strings.Contains(log.String(), "degrading") {
		t.Errorf("log records neither the rejection nor the degradation:\n%s", log.String())
	}
}

// TestFleetName pins the executor's diagnostic name shape.
func TestFleetName(t *testing.T) {
	f := &Fleet{Addrs: []string{"a:1", "b:2"}, Listen: "c:3", Workers: 4, Shards: 8}
	want := "fleet(workers=4,shards=8,endpoints=" + strconv.Itoa(3) + ")"
	if got := f.Name(); got != want {
		t.Errorf("Name() = %q, want %q", got, want)
	}
}
