package dispatch

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
)

// DefaultShardTimeout is the per-shard deadline when Subprocess leaves
// ShardTimeout zero. A worker that has not answered a shard within it
// is declared hung, killed, and the shard is re-dispatched.
const DefaultShardTimeout = 5 * time.Minute

// helloTimeout bounds how long a freshly spawned worker may take to
// announce itself before the spawn counts as failed.
const helloTimeout = 30 * time.Second

// Subprocess is a campaign.PayloadExecutor that ships whole shards to
// worker processes over stdin/stdout frames. The plan is partitioned
// exactly like campaign.Sharded — run i lands in shard keys[i]%Shards,
// a pure function of campaign identity — so output is byte-identical
// to in-process execution.
//
// The seam is hardened end-to-end:
//
//   - a worker that crashes (any exit, including SIGKILL) or hangs past
//     ShardTimeout is killed and its shard retried on a fresh worker,
//     with capped exponential backoff and deterministic jitter; the
//     failed worker is never reused;
//   - every response is integrity-checked (FNV-1a over the shard id and
//     payloads, computed worker-side); a mismatch is treated as a
//     corrupted result and the shard re-run;
//   - campaign-level failures reported by a worker (a run returning an
//     error, or panicking) are deterministic and abort immediately —
//     retrying cannot heal them;
//   - when Checkpoint names a journal, each completed shard is synced
//     to it, and a later invocation of the same campaign resumes by
//     replaying journaled shards and dispatching only the missing ones;
//   - when Command is empty, or spawning the first worker fails,
//     execution degrades gracefully to in-process shard execution
//     (same partition, same checkpointing) instead of failing.
type Subprocess struct {
	// Command is the argv (binary plus args) that starts one worker —
	// typically the current binary re-exec'd with a hidden worker flag.
	// Empty selects in-process execution.
	Command []string
	// Env is appended to the parent environment of every worker.
	Env []string
	// WorkerStderr receives worker stderr (nil discards it).
	WorkerStderr io.Writer
	// Workers bounds how many shards are in flight at once (>= 1); in
	// subprocess mode it is also the ceiling on live worker processes.
	Workers int
	// Shards is the partition width (0 selects campaign.DefaultShards).
	Shards int
	// ShardTimeout is the per-shard deadline (0 selects
	// DefaultShardTimeout).
	ShardTimeout time.Duration
	// Retries is how many times a failed shard is re-dispatched after
	// its first attempt (0 selects campaign.DefaultAttempts-1; negative
	// disables retries).
	Retries int
	// BackoffBase and BackoffCap shape the retry backoff (zero selects
	// the campaign package defaults).
	BackoffBase, BackoffCap time.Duration
	// Seed feeds the deterministic backoff jitter.
	Seed int64
	// Checkpoint, when non-empty, names the shard journal enabling
	// crash/resume.
	Checkpoint string
	// Log receives dispatcher diagnostics — retries, degradation,
	// resume accounting (nil discards them).
	Log io.Writer

	logMu sync.Mutex
	seq   atomic.Uint64
}

func (s *Subprocess) workers() int {
	if s.Workers < 1 {
		return 1
	}
	return s.Workers
}

func (s *Subprocess) shards() int {
	if s.Shards < 1 {
		return campaign.DefaultShards
	}
	return s.Shards
}

func (s *Subprocess) shardTimeout() time.Duration {
	if s.ShardTimeout <= 0 {
		return DefaultShardTimeout
	}
	return s.ShardTimeout
}

// attempts returns the total tries per shard.
func (s *Subprocess) attempts() int {
	switch {
	case s.Retries < 0:
		return 1
	case s.Retries == 0:
		return campaign.DefaultAttempts
	default:
		return s.Retries + 1
	}
}

func (s *Subprocess) Name() string {
	mode := "subprocess"
	if len(s.Command) == 0 {
		mode = "subprocess-inproc"
	}
	return fmt.Sprintf("%s(workers=%d,shards=%d)", mode, s.workers(), s.shards())
}

func (s *Subprocess) logf(format string, args ...any) {
	if s.Log == nil {
		return
	}
	s.logMu.Lock()
	fmt.Fprintf(s.Log, format+"\n", args...)
	s.logMu.Unlock()
}

// Run is the plain executor path, used when a campaign has no wire
// codec: nothing can cross a process boundary, so it executes on the
// in-process sharded pool with the same partition.
func (s *Subprocess) Run(ctx context.Context, n int, keys []uint64, fn func(i int) error) error {
	return campaign.Sharded{Workers: s.workers(), Shards: s.Shards}.Run(ctx, n, keys, fn)
}

// task is one shard of work: its bucket, deterministic id and plan
// indices (ascending).
type task struct {
	bucket  int
	id      uint64
	indices []int
}

// permanentError marks failures retrying cannot heal (campaign-level
// run errors, plan mismatches): the dispatcher aborts instead of
// burning the retry budget.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// RunPayload executes the campaign's plan shard by shard: resume
// journaled shards, then dispatch the rest to workers (or run them in
// process when degraded), retrying infrastructure failures per shard.
func (s *Subprocess) RunPayload(ctx context.Context, job campaign.PayloadJob) error {
	tasks := partition(job, s.shards())
	markShardsPlanned(len(tasks))

	var j *journal
	if s.Checkpoint != "" {
		var err error
		if j, err = openJournal(s.Checkpoint); err != nil {
			return err
		}
		defer j.close()
	}

	pool := &workerPool{s: s}
	defer pool.closeAll()
	tel := obs.Active()
	degraded := len(s.Command) == 0
	if !degraded {
		// Probe: if the very first worker cannot be spawned (missing
		// binary, fork limits, sandbox), degrade to in-process
		// execution rather than failing the campaign.
		if w, err := pool.spawn(); err != nil {
			s.logf("dispatch: cannot spawn workers (%v); degrading to in-process execution", err)
			degraded = true
		} else {
			pool.release(w)
		}
	}
	if tel != nil && degraded {
		tel.Degraded.Set(1)
		tel.Events.Emit("dispatch.degraded", map[string]string{"campaign": job.Campaign})
		defer tel.Degraded.Set(0)
	}

	pending := resumeJournaled(job, tasks, j, s.Checkpoint, s.logf)
	if len(pending) == 0 {
		return ctx.Err()
	}
	return runShardSlots(ctx, pending, s.workers(), func(ctx context.Context, t task) error {
		return s.runShard(ctx, job, t, j, pool, degraded)
	})
}

// markShardsPlanned records a dispatcher's shard plan in telemetry.
func markShardsPlanned(n int) {
	if tel := obs.Active(); tel != nil {
		tel.DispatchShards.Add(int64(n))
		tel.ShardsPlanned.Add(int64(n))
		tel.Progress.SetShards(n)
		tel.Live.SetShards(n)
	}
}

// resumeJournaled replays every journaled shard of the plan and
// returns the pending remainder in plan order. The journal is keyed by
// (campaign, plan hash, shard id) — pure functions of campaign
// identity — so a checkpoint written under one dispatcher resumes
// under any other.
func resumeJournaled(job campaign.PayloadJob, tasks []task, j *journal, checkpoint string, logf func(string, ...any)) []task {
	if j == nil {
		return tasks
	}
	tel := obs.Active()
	pending := tasks[:0]
	resumed := 0
	for _, t := range tasks {
		if payloads, ok := j.lookup(job.Campaign, hex64(job.PlanHash), hex64(t.id)); ok {
			if replayShard(job, t, payloads) {
				resumed++
				if tel != nil {
					tel.DispatchResumed.Inc()
					tel.DispatchDone.Inc()
					tel.ShardsDone.Inc()
					tel.Progress.ShardDone()
				}
				continue
			}
			logf("dispatch: journaled shard %s failed to replay; re-running it", hex64(t.id))
		}
		pending = append(pending, t)
	}
	if resumed > 0 {
		logf("dispatch: resumed %d/%d shards of %s from checkpoint %s", resumed, len(tasks), job.Campaign, checkpoint)
		if tel != nil {
			tel.Events.Emit("dispatch.resume", map[string]string{
				"campaign": job.Campaign,
				"shards":   strconv.Itoa(resumed),
			})
		}
	}
	return pending
}

// runShardSlots drives the pending shards through `slots` concurrent
// workers, stopping at the first shard failure.
func runShardSlots(ctx context.Context, pending []task, slots int, run func(ctx context.Context, t task) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}

	work := make(chan task)
	var wg sync.WaitGroup
	if slots > len(pending) {
		slots = len(pending)
	}
	wg.Add(slots)
	for w := 0; w < slots; w++ {
		go func() {
			defer wg.Done()
			for t := range work {
				if ctx.Err() != nil {
					return
				}
				if err := run(ctx, t); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
feed:
	for _, t := range pending {
		select {
		case work <- t:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return err
	}
	return ctx.Err()
}

// partition buckets the plan exactly like campaign.Sharded: run i in
// bucket keys[i] % shards, ascending plan order within a bucket.
func partition(job campaign.PayloadJob, shards int) []task {
	buckets := make([][]int, shards)
	for i := 0; i < job.N; i++ {
		k := uint64(i)
		if job.Keys != nil {
			k = job.Keys[i]
		}
		b := int(k % uint64(shards))
		buckets[b] = append(buckets[b], i)
	}
	var tasks []task
	for b, indices := range buckets {
		if len(indices) == 0 {
			continue
		}
		tasks = append(tasks, task{bucket: b, id: shardID(job.PlanHash, b, indices), indices: indices})
	}
	return tasks
}

// replayShard stores a journaled shard's payloads; false means the
// entry could not be replayed (corrupt payload) and the shard must be
// re-run. A partial replay is harmless: the re-run overwrites every
// index-owned slot.
func replayShard(job campaign.PayloadJob, t task, payloads []runPayload) bool {
	if !indicesMatch(payloads, t.indices) {
		return false
	}
	for _, rp := range payloads {
		if err := job.Store(rp.Index, rp.Payload); err != nil {
			return false
		}
	}
	return true
}

func indicesMatch(payloads []runPayload, indices []int) bool {
	if len(payloads) != len(indices) {
		return false
	}
	for k, rp := range payloads {
		if rp.Index != indices[k] {
			return false
		}
	}
	return true
}

// runShard drives one shard to completion: dispatch (or execute in
// process), verify, store, journal — retrying infrastructure failures
// with backoff on a fresh worker until the attempt budget is gone.
func (s *Subprocess) runShard(ctx context.Context, job campaign.PayloadJob, t task, j *journal, pool *workerPool, degraded bool) error {
	rt := retrier{
		attempts: s.attempts(),
		base:     s.BackoffBase,
		cap:      s.BackoffCap,
		seed:     s.Seed,
		logf:     s.logf,
	}
	return rt.runShard(ctx, job, t, j, func(ctx context.Context) ([]runPayload, error) {
		if degraded {
			return runShardInProcess(ctx, job, t, j != nil)
		}
		return s.runShardOnWorker(ctx, job, t, pool)
	})
}

// retrier is the per-shard retry policy shared by the subprocess and
// fleet dispatchers: attempt budget, capped exponential backoff with
// deterministic jitter, permanent-vs-retryable classification, journal
// append on success.
type retrier struct {
	attempts  int
	base, cap time.Duration
	seed      int64
	logf      func(string, ...any)
}

// runShard drives one shard through attempt() until it succeeds, fails
// permanently, or the budget is gone.
func (rt retrier) runShard(ctx context.Context, job campaign.PayloadJob, t task, j *journal, try func(ctx context.Context) ([]runPayload, error)) error {
	attempts := rt.attempts
	tel := obs.Active()
	var shardStart time.Time
	if tel != nil {
		shardStart = time.Now()
	}
	var lastErr error
	classified := false
	for attempt := 1; attempt <= attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		payloads, err := try(ctx)
		if err == nil {
			if j != nil {
				if aerr := j.append(job.Campaign, hex64(job.PlanHash), hex64(t.id), payloads); aerr != nil {
					return aerr
				}
			}
			if attempt > 1 {
				rt.logf("dispatch: shard %s (%d runs) completed on attempt %d/%d", hex64(t.id), len(t.indices), attempt, attempts)
			}
			if tel != nil {
				tel.ShardDur.ObserveSince(shardStart)
				tel.DispatchDone.Inc()
				tel.ShardsDone.Inc()
				tel.Progress.ShardDone()
				tel.Live.ShardDone()
			}
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			// Classification is logged exactly once per failure, here:
			// permanent failures never reach the retry loop below.
			rt.logf("dispatch: shard %s: permanent failure (campaign-level error; re-dispatch cannot heal it): %v", hex64(t.id), err)
			if tel != nil {
				tel.DispatchPermanent.Inc()
				tel.Events.Emit("dispatch.permanent", map[string]string{
					"shard": hex64(t.id), "error": err.Error(),
				})
			}
			return fmt.Errorf("dispatch: shard %s: %w", hex64(t.id), err)
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		lastErr = err
		if attempt < attempts {
			d := campaign.BackoffDelay(rt.base, rt.cap, rt.seed, t.id, attempt)
			// The retryable classification (with the error) is logged on
			// the shard's first failure only; later attempts log the
			// bare retry so a flapping shard cannot flood the log.
			if !classified {
				classified = true
				rt.logf("dispatch: shard %s attempt %d/%d failed: %v (classified retryable); retrying on a fresh worker in %s",
					hex64(t.id), attempt, attempts, err, d)
			} else {
				rt.logf("dispatch: shard %s attempt %d/%d failed; retrying in %s", hex64(t.id), attempt, attempts, d)
			}
			if tel != nil {
				tel.DispatchRetries.Inc()
				tel.Progress.Retry()
				tel.Live.UpdateShard(obs.ShardStatus{
					ID: hex64(t.id), State: "retrying",
					Runs: len(t.indices), Attempts: attempt,
				})
				tel.Events.Emit("dispatch.retry", map[string]string{
					"shard":      hex64(t.id),
					"attempt":    strconv.Itoa(attempt),
					"backoff_ms": strconv.FormatInt(d.Milliseconds(), 10),
					"error":      err.Error(),
				})
			}
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	return fmt.Errorf("dispatch: shard %s failed after %d attempts: %w", hex64(t.id), attempts, lastErr)
}

// runShardInProcess is the degraded path: execute the shard's runs in
// this process (results land via job.Exec) and, when journaling,
// encode them for the checkpoint. Campaign errors are permanent.
func runShardInProcess(ctx context.Context, job campaign.PayloadJob, t task, journaling bool) ([]runPayload, error) {
	tel := obs.Active()
	var sp *obs.Span
	var start time.Time
	if tel != nil {
		start = time.Now()
		sp = obs.SpanFromContext(ctx).Child("dispatch.shard", map[string]string{
			"shard": hex64(t.id), "worker": "inproc",
			"runs": strconv.Itoa(len(t.indices)),
		})
		defer sp.End()
	}
	var payloads []runPayload
	for _, i := range t.indices {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := job.Exec(i); err != nil {
			return nil, &permanentError{err}
		}
		if journaling {
			p, err := job.Encode(i)
			if err != nil {
				return nil, &permanentError{err}
			}
			payloads = append(payloads, runPayload{Index: i, Payload: p})
		}
	}
	if tel != nil {
		wall := time.Since(start).Milliseconds()
		sp.SetAttr("exec_ms", strconv.FormatInt(wall, 10))
		tel.Live.UpdateShard(obs.ShardStatus{
			ID: hex64(t.id), Worker: "inproc", State: "done",
			Runs: len(t.indices), WallMs: wall, ExecMs: wall,
		})
	}
	return payloads, nil
}

// runShardOnWorker dispatches the shard to a pooled worker process and
// stores the verified payloads. Transport failures (crash, hang,
// corruption) are retryable; the worker that produced one is destroyed
// so the retry lands on a fresh process.
func (s *Subprocess) runShardOnWorker(ctx context.Context, job campaign.PayloadJob, t task, pool *workerPool) ([]runPayload, error) {
	tel := obs.Active()
	trace := obs.TraceFromContext(ctx)
	var sp *obs.Span
	var start time.Time
	if tel != nil {
		start = time.Now()
		sp = obs.SpanFromContext(ctx).Child("dispatch.shard", map[string]string{
			"shard": hex64(t.id), "worker": "subprocess",
			"runs": strconv.Itoa(len(t.indices)),
		})
		defer sp.End()
	}
	w, err := pool.acquire()
	if err != nil {
		return nil, fmt.Errorf("spawning worker: %w", err)
	}
	queueMs := int64(0)
	if tel != nil {
		queueMs = time.Since(start).Milliseconds()
	}
	req := request{
		Seq:      s.seq.Add(1),
		Campaign: job.Campaign,
		PlanHash: hex64(job.PlanHash),
		Shard:    hex64(t.id),
		Indices:  t.indices,
		Trace:    trace,
		Span:     sp.ID(),
	}
	tripStart := time.Now()
	resp, err := w.roundTrip(ctx, req, s.shardTimeout())
	if err != nil {
		pool.destroy(w)
		return nil, err
	}
	payloads, err := verifyAndStore(job, t, resp)
	if err != nil {
		// A worker-reported campaign error is deterministic — the worker
		// itself is healthy; anything else produced a corrupt result and
		// the worker is not trusted again.
		var perm *permanentError
		if errors.As(err, &perm) {
			pool.release(w)
		} else {
			pool.destroy(w)
		}
		return nil, err
	}
	if tel != nil {
		// Attribute the shard's wall time: queue (waiting for a worker
		// slot), exec (the worker's own measurement, from its returned
		// root span), net (round trip minus exec — framing, pipes and
		// scheduling).
		tripMs := time.Since(tripStart).Milliseconds()
		execMs := obs.RootDurMs(resp.Spans)
		netMs := tripMs - execMs
		if netMs < 0 {
			netMs = 0
		}
		sp.SetAttr("queue_ms", strconv.FormatInt(queueMs, 10))
		sp.SetAttr("exec_ms", strconv.FormatInt(execMs, 10))
		sp.SetAttr("net_ms", strconv.FormatInt(netMs, 10))
		tel.Events.FoldSpans(sp, trace, resp.Spans)
		tel.TraceWorkerSpans.Add(int64(len(resp.Spans)))
		tel.Live.UpdateShard(obs.ShardStatus{
			ID: hex64(t.id), Worker: workerID(w.cmd.Process.Pid),
			State: "done", Runs: len(t.indices),
			WallMs:  time.Since(start).Milliseconds(),
			QueueMs: queueMs, ExecMs: execMs, NetMs: netMs,
		})
	}
	pool.release(w)
	return payloads, nil
}

// workerID names a subprocess worker in live views and span attributes.
func workerID(pid int) string { return fmt.Sprintf("pid:%d", pid) }

// verifyAndStore checks one shard response end to end — worker-side
// campaign error, index set, integrity hash — and stores its payloads.
// A campaign-level error comes back as a permanentError; any mismatch
// or decode failure is a retryable corruption. Shared by the
// subprocess and fleet dispatchers so both enforce identical trust in
// worker results.
func verifyAndStore(job campaign.PayloadJob, t task, resp response) ([]runPayload, error) {
	if resp.Error != "" {
		return nil, &permanentError{fmt.Errorf("worker reported: %s", resp.Error)}
	}
	if !indicesMatch(resp.Results, t.indices) || resp.Hash != hex64(payloadHash(t.id, resp.Results)) {
		if tel := obs.Active(); tel != nil {
			tel.DispatchIntegrity.Inc()
			tel.Events.Emit("dispatch.integrity", map[string]string{"shard": hex64(t.id)})
		}
		return nil, fmt.Errorf("corrupted shard result (integrity check failed for shard %s)", hex64(t.id))
	}
	for _, rp := range resp.Results {
		if serr := job.Store(rp.Index, rp.Payload); serr != nil {
			if tel := obs.Active(); tel != nil {
				tel.DispatchIntegrity.Inc()
				tel.Events.Emit("dispatch.integrity", map[string]string{"shard": hex64(t.id)})
			}
			return nil, fmt.Errorf("corrupted shard result (run %d failed to decode): %w", rp.Index, serr)
		}
	}
	return resp.Results, nil
}

// workerPool hands out live worker processes to shard slots. A slot
// returns a healthy worker with release (reused for the next shard)
// and a suspect one with destroy (killed and reaped; the replacement
// is spawned fresh). At most Workers processes are alive at once
// because each slot holds at most one.
type workerPool struct {
	s    *Subprocess
	mu   sync.Mutex
	idle []*workerProc
}

func (p *workerPool) acquire() (*workerProc, error) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		w := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return w, nil
	}
	p.mu.Unlock()
	return p.spawn()
}

func (p *workerPool) release(w *workerProc) {
	p.mu.Lock()
	p.idle = append(p.idle, w)
	p.mu.Unlock()
}

func (p *workerPool) destroy(w *workerProc) { w.kill() }

func (p *workerPool) closeAll() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, w := range idle {
		w.kill()
	}
}

func (p *workerPool) spawn() (*workerProc, error) {
	s := p.s
	cmd := exec.Command(s.Command[0], s.Command[1:]...)
	cmd.Env = append(os.Environ(), s.Env...)
	cmd.Stderr = s.WorkerStderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting worker %q: %w", s.Command[0], err)
	}
	w := &workerProc{
		cmd:     cmd,
		stdin:   stdin,
		frames:  make(chan response, 1),
		helloOK: make(chan struct{}),
		done:    make(chan struct{}),
	}
	go w.read(stdout)
	select {
	case <-w.helloOK:
		if tel := obs.Active(); tel != nil {
			tel.WorkerSpawns.Inc()
			tel.Events.Emit("dispatch.spawn", map[string]string{"pid": strconv.Itoa(cmd.Process.Pid)})
			tel.Live.WorkerJoin(workerID(cmd.Process.Pid), cmd.Process.Pid)
		}
		return w, nil
	case <-w.done:
		w.kill()
		return nil, fmt.Errorf("worker exited before hello: %v", w.err)
	case <-time.After(helloTimeout):
		w.kill()
		return nil, fmt.Errorf("worker did not announce itself within %s", helloTimeout)
	}
}

// workerProc is one live worker process plus its frame reader.
type workerProc struct {
	cmd     *exec.Cmd
	stdin   io.WriteCloser
	frames  chan response
	helloOK chan struct{}
	done    chan struct{}
	killed  atomic.Bool
	err     error
	token   string
}

// read drains the worker's stdout: the hello frame first, then one
// response per request, delivered on w.frames. Any read error (EOF
// from a crash, garbage framing) ends the loop; w.err keeps the cause.
func (w *workerProc) read(stdout io.Reader) {
	defer close(w.done)
	br := bufio.NewReader(stdout)
	var h hello
	if err := readFrame(br, &h); err != nil {
		w.err = fmt.Errorf("reading hello: %w", err)
		return
	}
	if h.Proto != protoVersion {
		w.err = fmt.Errorf("worker speaks protocol %d, want %d", h.Proto, protoVersion)
		return
	}
	w.token = h.Token
	close(w.helloOK)
	for {
		var env envelope
		if err := readFrame(br, &env); err != nil {
			if err != io.EOF {
				w.err = err
			}
			return
		}
		// Telemetry frames are merged as they arrive (the worker sends
		// them ahead of the response they describe); only responses are
		// handed to the shard slot. A worker sharing this process (its
		// hello carried our own token) already counted its movement in
		// our registry — merging it again would double count.
		if env.Metrics != nil && w.token != obs.ProcessToken() {
			if tel := obs.Active(); tel != nil {
				tel.Reg.Merge(env.Metrics)
			}
		}
		if env.Resp != nil {
			w.frames <- *env.Resp
		}
	}
}

// roundTrip sends one shard request and waits for its response within
// the deadline. A worker that crashes mid-shard surfaces here as a
// closed frame stream ("worker crashed"); one that hangs surfaces as a
// deadline overrun. Either way the caller destroys the worker.
func (w *workerProc) roundTrip(ctx context.Context, req request, deadline time.Duration) (response, error) {
	if err := writeFrame(w.stdin, req); err != nil {
		return response{}, fmt.Errorf("worker crashed (request write failed: %v)", err)
	}
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	select {
	case resp := <-w.frames:
		if resp.Seq != req.Seq || resp.Shard != req.Shard {
			return response{}, fmt.Errorf("corrupted shard result (response for seq %d shard %s, want seq %d shard %s)",
				resp.Seq, resp.Shard, req.Seq, req.Shard)
		}
		return resp, nil
	case <-w.done:
		state := "stream ended"
		if ps := w.cmd.ProcessState; ps != nil {
			state = ps.String()
		}
		if w.err != nil {
			return response{}, fmt.Errorf("worker crashed mid-shard (%v)", w.err)
		}
		return response{}, fmt.Errorf("worker crashed mid-shard (%s)", state)
	case <-timer.C:
		return response{}, fmt.Errorf("worker hung (no response within %s)", deadline)
	case <-ctx.Done():
		return response{}, ctx.Err()
	}
}

// kill tears the worker down hard and reaps it. Closing stdin first
// lets a healthy worker exit on EOF; the Kill covers the rest.
func (w *workerProc) kill() {
	if w.killed.CompareAndSwap(false, true) {
		if tel := obs.Active(); tel != nil {
			tel.WorkerKills.Inc()
			if w.cmd.Process != nil {
				tel.Live.WorkerLost(workerID(w.cmd.Process.Pid))
			}
		}
	}
	w.stdin.Close()
	if w.cmd.Process != nil {
		w.cmd.Process.Kill()
	}
	<-w.done
	w.cmd.Wait()
}
