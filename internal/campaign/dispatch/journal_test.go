package dispatch

import (
	"bytes"
	"context"
	"encoding/base64"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/campaign"
)

// TestCheckpointResumeIsByteIdentical is the resume pin: a campaign
// killed mid-flight leaves a journal from which a second invocation
// replays the completed shards, executes only the missing ones, and
// reduces byte-identically to an uninterrupted run.
func TestCheckpointResumeIsByteIdentical(t *testing.T) {
	const n = 32
	want := serialBaseline(t, n)
	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")

	// First invocation: a deterministic failure aborts the campaign
	// partway; every shard completed before the abort is journaled.
	var log1 bytes.Buffer
	first := &Subprocess{Workers: 1, Shards: 8, Checkpoint: ckpt, Retries: -1, Log: &log1}
	c1 := cubes{n: n, failAt: 19, hits: &atomic.Int64{}}
	if _, err := campaign.Execute[int, int, string](context.Background(), c1, first, nil); err == nil {
		t.Fatal("first invocation should have aborted at run 19")
	}
	if c1.hits.Load() == 0 {
		t.Fatal("first invocation executed nothing; the resume test is vacuous")
	}

	// Second invocation: same campaign identity, no failure. Journaled
	// shards are replayed, not re-executed.
	var log2 bytes.Buffer
	second := &Subprocess{Workers: 1, Shards: 8, Checkpoint: ckpt, Log: &log2}
	c2 := cubes{n: n, failAt: -1, hits: &atomic.Int64{}}
	got, err := campaign.Execute[int, int, string](context.Background(), c2, second, nil)
	if err != nil {
		t.Fatalf("resume: %v\nlog:\n%s", err, log2.String())
	}
	if got != want {
		t.Errorf("resumed output diverged from uninterrupted run\n got %s\nwant %s", got, want)
	}
	if !strings.Contains(log2.String(), "resumed") {
		t.Errorf("resume log does not account for replayed shards:\n%s", log2.String())
	}
	if c2.hits.Load() >= n {
		t.Errorf("resume re-executed all %d runs; journaled shards were not replayed", n)
	}
	if c2.hits.Load() == 0 {
		t.Error("resume executed nothing, but the first run aborted before completing")
	}

	// Third invocation: everything journaled; zero runs execute.
	third := &Subprocess{Workers: 1, Shards: 8, Checkpoint: ckpt}
	c3 := cubes{n: n, failAt: -1, hits: &atomic.Int64{}}
	if got, err := campaign.Execute[int, int, string](context.Background(), c3, third, nil); err != nil || got != want {
		t.Fatalf("fully journaled replay: got %q err %v", got, err)
	}
	if c3.hits.Load() != 0 {
		t.Errorf("fully journaled replay still executed %d runs", c3.hits.Load())
	}
}

// TestCheckpointResumeAcrossWorkerProcesses runs the interrupted
// campaign on real worker subprocesses both times; the journal is
// written and consumed by the parent, so crash recovery composes with
// dispatch.
func TestCheckpointResumeAcrossWorkerProcesses(t *testing.T) {
	const n = 24
	want := serialBaseline(t, n)
	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")

	first := subproc(t, n, envFailAt+"=7")
	first.Workers, first.Shards, first.Checkpoint, first.Retries = 2, 8, ckpt, -1
	if _, err := campaign.Execute[int, int, string](context.Background(), newCubes(n), first, nil); err == nil {
		t.Fatal("first invocation should have aborted at the worker's failing run")
	}

	var log bytes.Buffer
	second := subproc(t, n)
	second.Workers, second.Shards, second.Checkpoint, second.Log = 2, 8, ckpt, &log
	got, err := campaign.Execute[int, int, string](context.Background(), newCubes(n), second, nil)
	if err != nil {
		t.Fatalf("resume: %v\nlog:\n%s", err, log.String())
	}
	if got != want {
		t.Errorf("resumed output diverged\n got %s\nwant %s", got, want)
	}
}

// TestCheckpointIgnoresForeignJournals pins journal keying: entries are
// bound to (campaign, plan hash), so a journal written by a different
// plan (different n) is never replayed into this campaign.
func TestCheckpointIgnoresForeignJournals(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")

	// Journal a full 16-run campaign.
	s16 := &Subprocess{Workers: 1, Shards: 4, Checkpoint: ckpt}
	if _, err := campaign.Execute[int, int, string](context.Background(), newCubes(16), s16, nil); err != nil {
		t.Fatal(err)
	}

	// A 32-run campaign sharing the journal must execute all 32 runs.
	s32 := &Subprocess{Workers: 1, Shards: 4, Checkpoint: ckpt}
	c := cubes{n: 32, failAt: -1, hits: &atomic.Int64{}}
	got, err := campaign.Execute[int, int, string](context.Background(), c, s32, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := serialBaseline(t, 32); got != want {
		t.Errorf("foreign journal leaked into the output\n got %s\nwant %s", got, want)
	}
	if c.hits.Load() != 32 {
		t.Errorf("executed %d of 32 runs; a foreign journal entry was replayed", c.hits.Load())
	}
}

// TestJournalToleratesTornTail pins crash tolerance in the journal
// itself: a write cut short mid-frame (the SIGKILL case) drops only
// the torn entry; every intact entry before it still resumes.
func TestJournalToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.ckpt")
	j, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	good := []runPayload{{Index: 0, Payload: []byte(`7`)}, {Index: 3, Payload: []byte(`11`)}}
	if err := j.append("cubes", hex64(42), hex64(7), good); err != nil {
		t.Fatal(err)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a frame length promising more bytes
	// than follow.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 1, 0, '{', '"'}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	sizeBefore, _ := os.Stat(path)

	j2, err := openJournal(path)
	if err != nil {
		t.Fatalf("openJournal on torn tail: %v", err)
	}
	defer j2.close()
	results, ok := j2.lookup("cubes", hex64(42), hex64(7))
	if !ok || len(results) != 2 || string(results[1].Payload) != `11` {
		t.Fatalf("intact entry lost behind the torn tail: %v %v", results, ok)
	}
	sizeAfter, _ := os.Stat(path)
	if sizeAfter.Size() >= sizeBefore.Size() {
		t.Errorf("torn tail not truncated: %d -> %d bytes", sizeBefore.Size(), sizeAfter.Size())
	}

	// The reopened journal appends cleanly after the truncation.
	if err := j2.append("cubes", hex64(42), hex64(9), good); err != nil {
		t.Fatalf("append after truncation: %v", err)
	}
	j2.close()
	j3, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.close()
	if _, ok := j3.lookup("cubes", hex64(42), hex64(9)); !ok {
		t.Error("entry appended after truncation did not survive a reload")
	}
}

// TestJournalRejectsCorruptedEntries pins the integrity hash on disk: a
// flipped byte inside a journaled payload invalidates that entry (and
// the tail behind it) instead of resuming corrupted results.
func TestJournalRejectsCorruptedEntries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.ckpt")
	j, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.append("cubes", hex64(1), hex64(2), []runPayload{{Index: 0, Payload: []byte(`123456789`)}}); err != nil {
		t.Fatal(err)
	}
	j.close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// []byte payloads cross the JSON frame base64-encoded; flip one
	// character to another valid base64 character so the frame still
	// parses and the integrity hash is what catches the corruption.
	b64 := base64.StdEncoding.EncodeToString([]byte(`123456789`))
	i := bytes.Index(raw, []byte(b64))
	if i < 0 {
		t.Fatal("payload bytes not found in journal")
	}
	raw[i] ^= 0x01 // 'M' -> 'L'
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := openJournal(path)
	if err != nil {
		t.Fatalf("openJournal on corrupted entry: %v", err)
	}
	defer j2.close()
	if _, ok := j2.lookup("cubes", hex64(1), hex64(2)); ok {
		t.Error("corrupted entry survived the integrity check")
	}
}

// TestSubprocessShardTimeoutDefaults sanity-checks option defaulting.
func TestSubprocessShardTimeoutDefaults(t *testing.T) {
	s := &Subprocess{}
	if s.shardTimeout() != DefaultShardTimeout {
		t.Errorf("shardTimeout = %v, want %v", s.shardTimeout(), DefaultShardTimeout)
	}
	if s.attempts() != campaign.DefaultAttempts {
		t.Errorf("attempts = %d, want %d", s.attempts(), campaign.DefaultAttempts)
	}
	if (&Subprocess{Retries: -1}).attempts() != 1 {
		t.Error("negative Retries should disable retrying")
	}
	if (&Subprocess{ShardTimeout: time.Second}).shardTimeout() != time.Second {
		t.Error("explicit ShardTimeout ignored")
	}
}
