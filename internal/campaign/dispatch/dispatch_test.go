package dispatch

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/campaign"
)

// The dispatcher tests re-exec this very test binary as the worker
// process: TestMain diverts to the worker serve loop when the marker
// environment variable is set, so the Subprocess executor is exercised
// against real processes, real pipes and real SIGKILLs.
const (
	envWorker = "DISPATCH_TEST_WORKER"
	envN      = "DISPATCH_TEST_N"
	envMode   = "DISPATCH_TEST_MODE"
	envMarker = "DISPATCH_TEST_MARKER"
	envFailAt = "DISPATCH_TEST_FAIL_AT"
)

func TestMain(m *testing.M) {
	if os.Getenv(envWorker) == "1" {
		runTestWorker()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// cubes is the shared parent/worker test campaign: plan [0, n), cube
// each value. failAt (when >= 0) makes one run fail deterministically;
// hits counts Execute invocations when non-nil. Neither is part of the
// campaign's plan identity, so a failing parent run and a clean resume
// share a plan hash.
type cubes struct {
	campaign.JSONWire[int]
	n      int
	failAt int
	hits   *atomic.Int64
}

func (c cubes) Name() string { return "cubes" }

func (c cubes) Plan() ([]int, error) {
	plan := make([]int, c.n)
	for i := range plan {
		plan[i] = i
	}
	return plan, nil
}

func (c cubes) Execute(_ context.Context, r, i int) (int, error) {
	if c.hits != nil {
		c.hits.Add(1)
	}
	if c.failAt >= 0 && i == c.failAt {
		return 0, fmt.Errorf("deterministic failure at run %d", i)
	}
	return r * r * r, nil
}

func (c cubes) Reduce(_ []int, results []int) (string, error) {
	return fmt.Sprint(results), nil
}

func (c cubes) ShardKey(r, _ int) uint64 { return uint64(r) * 2654435761 }

func newCubes(n int) cubes { return cubes{n: n, failAt: -1} }

// claim atomically wins the right to misbehave exactly once across all
// worker processes sharing the marker path.
func claim(path string) bool {
	if path == "" {
		return false
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return false
	}
	f.Close()
	return true
}

// misbehavingWorker injects one process-level fault (self-SIGKILL or a
// hang) before executing its first claimed run.
type misbehavingWorker struct {
	Worker
	mode   string
	marker string
}

func (m misbehavingWorker) ExecuteEncoded(ctx context.Context, i int) ([]byte, error) {
	// Hangs sleep rather than select{} forever: a no-case select would
	// trip the runtime deadlock detector and crash the worker instead.
	if m.mode == "hang-always" {
		time.Sleep(time.Hour) // every attempt hangs; retry exhaustion ends this
	}
	if claim(m.marker) {
		switch m.mode {
		case "sigkill":
			p, _ := os.FindProcess(os.Getpid())
			p.Kill()
			time.Sleep(time.Hour) // wait for the signal to land
		case "hang":
			time.Sleep(time.Hour) // never answer; the parent's deadline reaps us
		}
	}
	return m.Worker.ExecuteEncoded(ctx, i)
}

func runTestWorker() {
	n, _ := strconv.Atoi(os.Getenv(envN))
	failAt := -1
	if s := os.Getenv(envFailAt); s != "" {
		failAt, _ = strconv.Atoi(s)
	}
	mode, marker := os.Getenv(envMode), os.Getenv(envMarker)
	lookup := func(name string) (Worker, error) {
		if name != "cubes" {
			return nil, fmt.Errorf("test worker only serves cubes, not %q", name)
		}
		w, err := Adapt[int, int, string](cubes{n: n, failAt: failAt})
		if err != nil {
			return nil, err
		}
		return misbehavingWorker{Worker: w, mode: mode, marker: marker}, nil
	}
	var err error
	if mode == "corrupt" {
		err = corruptServe(marker, lookup)
	} else {
		err = Serve(context.Background(), lookup, os.Stdin, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "test worker:", err)
		os.Exit(1)
	}
}

// corruptServe answers its first claimed shard with a garbage payload
// and a wrong integrity hash, then behaves properly.
func corruptServe(marker string, lookup func(string) (Worker, error)) error {
	bw := bufio.NewWriter(os.Stdout)
	if err := writeFrame(bw, hello{Proto: protoVersion, PID: os.Getpid()}); err != nil {
		return err
	}
	br := bufio.NewReader(os.Stdin)
	workers := make(map[string]Worker)
	for {
		var req request
		switch err := readFrame(br, &req); {
		case err == io.EOF:
			return nil
		case err != nil:
			return err
		}
		if claim(marker) {
			resp := response{
				Seq:     req.Seq,
				Shard:   req.Shard,
				Results: []runPayload{{Index: req.Indices[0], Payload: []byte("garbage")}},
				Hash:    hex64(0xdead),
			}
			if err := writeFrame(bw, envelope{Resp: &resp}); err != nil {
				return err
			}
			continue
		}
		resp := serveShard(context.Background(), workers, lookup, req)
		if err := writeFrame(bw, envelope{Resp: &resp}); err != nil {
			return err
		}
	}
}

// subproc builds a Subprocess whose workers are this test binary.
func subproc(t *testing.T, n int, extraEnv ...string) *Subprocess {
	t.Helper()
	return &Subprocess{
		Command:      []string{os.Args[0]},
		Env:          append([]string{envWorker + "=1", envN + "=" + strconv.Itoa(n)}, extraEnv...),
		ShardTimeout: 30 * time.Second,
		BackoffBase:  time.Millisecond,
		BackoffCap:   4 * time.Millisecond,
	}
}

func serialBaseline(t *testing.T, n int) string {
	t.Helper()
	out, err := campaign.Execute[int, int, string](context.Background(), newCubes(n), campaign.Serial{}, nil)
	if err != nil {
		t.Fatalf("serial baseline: %v", err)
	}
	return out
}

// TestSubprocessMatchesSerial pins the headline determinism claim: the
// same campaign dispatched to 1, 2 and 4 worker processes at several
// shard widths reduces byte-identically to the serial run.
func TestSubprocessMatchesSerial(t *testing.T) {
	const n = 24
	want := serialBaseline(t, n)
	for _, workers := range []int{1, 2, 4} {
		for _, shards := range []int{1, 2, 8} {
			s := subproc(t, n)
			s.Workers, s.Shards = workers, shards
			got, err := campaign.Execute[int, int, string](context.Background(), newCubes(n), s, nil)
			if err != nil {
				t.Fatalf("workers=%d shards=%d: %v", workers, shards, err)
			}
			if got != want {
				t.Errorf("workers=%d shards=%d: output diverged from serial\n got %s\nwant %s", workers, shards, got, want)
			}
		}
	}
}

// TestSubprocessInProcessMatchesSerial pins the degraded (no Command)
// path against the same baseline.
func TestSubprocessInProcessMatchesSerial(t *testing.T) {
	const n = 24
	want := serialBaseline(t, n)
	for _, shards := range []int{1, 2, 8} {
		s := &Subprocess{Workers: 3, Shards: shards}
		got, err := campaign.Execute[int, int, string](context.Background(), newCubes(n), s, nil)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got != want {
			t.Errorf("shards=%d: output diverged from serial\n got %s\nwant %s", shards, got, want)
		}
	}
}

// TestSubprocessDegradesWhenSpawningFails pins graceful degradation: an
// unspawnable worker binary falls back to in-process execution instead
// of failing the campaign.
func TestSubprocessDegradesWhenSpawningFails(t *testing.T) {
	const n = 16
	var log bytes.Buffer
	s := &Subprocess{
		Command: []string{filepath.Join(t.TempDir(), "no-such-worker-binary")},
		Workers: 2, Shards: 4, Log: &log,
	}
	got, err := campaign.Execute[int, int, string](context.Background(), newCubes(n), s, nil)
	if err != nil {
		t.Fatalf("degraded run: %v", err)
	}
	if want := serialBaseline(t, n); got != want {
		t.Errorf("degraded output diverged from serial\n got %s\nwant %s", got, want)
	}
	if !strings.Contains(log.String(), "degrading to in-process execution") {
		t.Errorf("log does not record the degradation:\n%s", log.String())
	}
}

// kills the acceptance scenario head on: a worker is SIGKILLed
// mid-shard; the dispatcher detects the crash, re-dispatches the shard
// to a fresh worker with backoff, and the campaign completes with a
// diagnostic naming the shard key and attempt count.
func TestSubprocessSurvivesWorkerSigkill(t *testing.T) {
	const n = 24
	marker := filepath.Join(t.TempDir(), "sigkill.once")
	var log bytes.Buffer
	s := subproc(t, n, envMode+"=sigkill", envMarker+"="+marker)
	s.Workers, s.Shards, s.Retries, s.Log = 2, 8, 2, &log

	got, err := campaign.Execute[int, int, string](context.Background(), newCubes(n), s, nil)
	if err != nil {
		t.Fatalf("campaign did not survive the SIGKILLed worker: %v\nlog:\n%s", err, log.String())
	}
	if want := serialBaseline(t, n); got != want {
		t.Errorf("output diverged from serial after worker crash\n got %s\nwant %s", got, want)
	}
	logs := log.String()
	if !strings.Contains(logs, "worker crashed mid-shard") {
		t.Errorf("log does not diagnose the crash:\n%s", logs)
	}
	if !strings.Contains(logs, "attempt 1/3 failed") || !strings.Contains(logs, "retrying on a fresh worker") {
		t.Errorf("log does not name the attempt count and re-dispatch:\n%s", logs)
	}
	if !strings.Contains(logs, "shard ") {
		t.Errorf("log does not name the shard key:\n%s", logs)
	}
}

// TestSubprocessReapsHungWorker pins hang detection: a worker that
// never answers is killed at the shard deadline and its shard retried.
func TestSubprocessReapsHungWorker(t *testing.T) {
	const n = 24
	marker := filepath.Join(t.TempDir(), "hang.once")
	var log bytes.Buffer
	s := subproc(t, n, envMode+"=hang", envMarker+"="+marker)
	s.Workers, s.Shards, s.Retries, s.Log = 2, 8, 2, &log
	s.ShardTimeout = 300 * time.Millisecond

	got, err := campaign.Execute[int, int, string](context.Background(), newCubes(n), s, nil)
	if err != nil {
		t.Fatalf("campaign did not survive the hung worker: %v\nlog:\n%s", err, log.String())
	}
	if want := serialBaseline(t, n); got != want {
		t.Errorf("output diverged from serial after worker hang\n got %s\nwant %s", got, want)
	}
	if !strings.Contains(log.String(), "worker hung (no response within") {
		t.Errorf("log does not diagnose the hang:\n%s", log.String())
	}
}

// TestSubprocessRejectsCorruptResponses pins the integrity check: a
// response whose payload does not match its hash is discarded and the
// shard re-run, never stored.
func TestSubprocessRejectsCorruptResponses(t *testing.T) {
	const n = 24
	marker := filepath.Join(t.TempDir(), "corrupt.once")
	var log bytes.Buffer
	s := subproc(t, n, envMode+"=corrupt", envMarker+"="+marker)
	s.Workers, s.Shards, s.Retries, s.Log = 2, 8, 2, &log

	got, err := campaign.Execute[int, int, string](context.Background(), newCubes(n), s, nil)
	if err != nil {
		t.Fatalf("campaign did not survive the corrupted response: %v\nlog:\n%s", err, log.String())
	}
	if want := serialBaseline(t, n); got != want {
		t.Errorf("corrupted payload leaked into the output\n got %s\nwant %s", got, want)
	}
	if !strings.Contains(log.String(), "corrupted shard result") {
		t.Errorf("log does not diagnose the corruption:\n%s", log.String())
	}
}

// TestSubprocessAbortsOnDeterministicFailure pins error classification:
// a campaign-level failure reported by a worker aborts immediately —
// the retry budget is never spent on a failure that cannot heal.
func TestSubprocessAbortsOnDeterministicFailure(t *testing.T) {
	const n = 24
	var log bytes.Buffer
	s := subproc(t, n, envFailAt+"=5")
	s.Workers, s.Shards, s.Retries, s.Log = 2, 4, 3, &log

	_, err := campaign.Execute[int, int, string](context.Background(), newCubes(n), s, nil)
	if err == nil {
		t.Fatal("campaign succeeded despite a deterministic run failure in the worker")
	}
	if !strings.Contains(err.Error(), "worker reported") || !strings.Contains(err.Error(), "run 5") {
		t.Errorf("error does not carry the worker diagnostic: %v", err)
	}
	if strings.Contains(log.String(), "retrying") {
		t.Errorf("dispatcher retried a deterministic failure:\n%s", log.String())
	}
}

// TestSubprocessRejectsPlanMismatch pins the plan-hash handshake: a
// worker that disagrees on campaign identity is a deterministic error,
// not something to retry.
func TestSubprocessRejectsPlanMismatch(t *testing.T) {
	s := subproc(t, 8) // worker plans 8 runs; parent plans 16
	s.Workers, s.Shards = 1, 4
	_, err := campaign.Execute[int, int, string](context.Background(), newCubes(16), s, nil)
	if err == nil || !strings.Contains(err.Error(), "plan mismatch") {
		t.Fatalf("err = %v, want a plan mismatch diagnostic", err)
	}
}

// TestSubprocessExhaustsRetriesWithDiagnostic pins the failure shape
// when every attempt fails: the error names the shard key and the
// attempt count.
func TestSubprocessExhaustsRetriesWithDiagnostic(t *testing.T) {
	const n = 8
	var log bytes.Buffer
	s := subproc(t, n, envMode+"=hang-always")
	s.Workers, s.Shards, s.Retries, s.Log = 1, 1, 1, &log
	s.ShardTimeout = 200 * time.Millisecond

	_, err := campaign.Execute[int, int, string](context.Background(), newCubes(n), s, nil)
	if err == nil {
		t.Fatal("campaign succeeded though every worker hangs")
	}
	if !strings.Contains(err.Error(), "failed after 2 attempts") || !strings.Contains(err.Error(), "shard ") {
		t.Errorf("exhaustion error does not name the shard and attempt count: %v", err)
	}
}

// TestSubprocessCancellation pins that mid-campaign cancellation
// surfaces as context.Canceled, on both the worker and in-process
// paths.
func TestSubprocessCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, s := range map[string]*Subprocess{
		"worker":    subproc(t, 16),
		"inprocess": {Workers: 2, Shards: 4},
	} {
		_, err := campaign.Execute[int, int, string](ctx, newCubes(16), s, nil)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}
