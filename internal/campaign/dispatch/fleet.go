package dispatch

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	dnet "repro/internal/campaign/dispatch/net"
	"repro/internal/obs"
)

// DefaultConnectWait bounds how long a Fleet waits for its first
// worker before degrading to local execution.
const DefaultConnectWait = 10 * time.Second

// errNoWorkers reports that the fleet stayed empty past its patience:
// the shard runs in-process instead.
var errNoWorkers = errors.New("no live fleet workers")

// Fleet is a campaign.PayloadExecutor that balances shards across a
// fleet of networked worker agents (ServeNet / DialAndServe peers).
// The partition, wire frames, integrity checks and checkpoint journal
// are exactly the subprocess dispatcher's, so output stays
// byte-identical to Serial and a journal written under one transport
// resumes under the other.
//
// Hardening on top of Subprocess's per-shard deadline/retry/integrity
// machinery:
//
//   - workers heartbeat while connected (even mid-shard), so a dead
//     connection is detected after ~3 missed beats instead of the full
//     shard deadline; lost workers are re-dialed with capped backoff
//     and rejoin the rotation;
//   - a shard still unanswered after StragglerAfter is re-dispatched
//     to a second idle worker; the first integrity-checked result wins
//     and the loser is discarded deterministically (its payloads are
//     never stored);
//   - an empty fleet degrades gracefully: at campaign start to the
//     Fallback subprocess dispatcher (or in-process execution), and
//     mid-campaign — every worker gone, none returning — each waiting
//     shard runs in-process rather than stalling the campaign.
type Fleet struct {
	// Addrs lists worker agent endpoints to dial (host:port).
	Addrs []string
	// Listen, when non-empty, also accepts incoming worker
	// registrations (DialAndServe agents) on this address.
	Listen string
	// Spec is the opaque campaign spec shipped to every worker at
	// handshake (the experiment layer's encoded WorkerSpec).
	Spec string
	// TLS wraps dialed worker connections when non-nil; ListenTLS the
	// accepted ones.
	TLS, ListenTLS *tls.Config
	// Tap, when non-nil, intercepts every frame on every connection —
	// the chaos seam.
	Tap dnet.Tap
	// Workers bounds how many shards are in flight at once (>= 1).
	Workers int
	// Shards is the partition width (0 selects campaign.DefaultShards).
	Shards int
	// ShardTimeout is the per-shard deadline (0 selects
	// DefaultShardTimeout).
	ShardTimeout time.Duration
	// Heartbeat is the worker ping interval (0 selects
	// DefaultHeartbeat; negative disables heartbeats and dead-peer
	// read deadlines).
	Heartbeat time.Duration
	// StragglerAfter is how long a shard may stay unanswered before a
	// duplicate is dispatched to another worker (0 selects half the
	// shard deadline; negative disables straggler re-dispatch).
	StragglerAfter time.Duration
	// Retries is how many times a failed shard is re-dispatched after
	// its first attempt (0 selects campaign.DefaultAttempts-1;
	// negative disables retries).
	Retries int
	// BackoffBase and BackoffCap shape retry and reconnect backoff
	// (zero selects the campaign package defaults).
	BackoffBase, BackoffCap time.Duration
	// Seed feeds the deterministic backoff jitter.
	Seed int64
	// Checkpoint, when non-empty, names the shard journal enabling
	// crash/resume — the same journal format as Subprocess.
	Checkpoint string
	// ConnectWait is how long to wait for the first worker before
	// degrading (0 selects DefaultConnectWait).
	ConnectWait time.Duration
	// Fallback carries the subprocess configuration (Command, Env,
	// WorkerStderr) used when the fleet is empty; nil degrades straight
	// to in-process execution. Scheduling fields are copied from the
	// Fleet either way.
	Fallback *Subprocess
	// Log receives coordinator diagnostics (nil discards them).
	Log io.Writer

	logMu sync.Mutex
	seq   atomic.Uint64
	// trace is the running campaign's trace id, captured from the
	// context at RunPayload entry (before connection goroutines start)
	// so handshakes can announce it to joining workers.
	trace string
}

func (f *Fleet) workers() int {
	if f.Workers < 1 {
		return 1
	}
	return f.Workers
}

func (f *Fleet) shards() int {
	if f.Shards < 1 {
		return campaign.DefaultShards
	}
	return f.Shards
}

func (f *Fleet) shardTimeout() time.Duration {
	if f.ShardTimeout <= 0 {
		return DefaultShardTimeout
	}
	return f.ShardTimeout
}

func (f *Fleet) attempts() int {
	switch {
	case f.Retries < 0:
		return 1
	case f.Retries == 0:
		return campaign.DefaultAttempts
	default:
		return f.Retries + 1
	}
}

func (f *Fleet) heartbeat() time.Duration {
	switch {
	case f.Heartbeat < 0:
		return 0
	case f.Heartbeat == 0:
		return DefaultHeartbeat
	default:
		return f.Heartbeat
	}
}

// deadAfter is the read deadline on coordinator-side connections:
// three missed heartbeats mean the worker (or the path to it) is gone.
func (f *Fleet) deadAfter() time.Duration {
	hb := f.heartbeat()
	if hb == 0 {
		return 0
	}
	return 3 * hb
}

func (f *Fleet) stragglerAfter() time.Duration {
	switch {
	case f.StragglerAfter < 0:
		return 0
	case f.StragglerAfter == 0:
		return f.shardTimeout() / 2
	default:
		return f.StragglerAfter
	}
}

func (f *Fleet) connectWait() time.Duration {
	if f.ConnectWait <= 0 {
		return DefaultConnectWait
	}
	return f.ConnectWait
}

func (f *Fleet) Name() string {
	endpoints := len(f.Addrs)
	if f.Listen != "" {
		endpoints++
	}
	return fmt.Sprintf("fleet(workers=%d,shards=%d,endpoints=%d)", f.workers(), f.shards(), endpoints)
}

func (f *Fleet) logf(format string, args ...any) {
	if f.Log == nil {
		return
	}
	f.logMu.Lock()
	fmt.Fprintf(f.Log, format+"\n", args...)
	f.logMu.Unlock()
}

// Run is the plain executor path, used when a campaign has no wire
// codec: nothing can cross a process boundary, so it executes on the
// in-process sharded pool with the same partition.
func (f *Fleet) Run(ctx context.Context, n int, keys []uint64, fn func(i int) error) error {
	return campaign.Sharded{Workers: f.workers(), Shards: f.Shards}.Run(ctx, n, keys, fn)
}

// fallback builds the executor an empty fleet degrades to: the
// configured Fallback subprocess dispatcher with the Fleet's
// scheduling fields, or a bare in-process Subprocess when none is
// configured.
func (f *Fleet) fallback() *Subprocess {
	fb := &Subprocess{}
	if f.Fallback != nil {
		fb.Command = f.Fallback.Command
		fb.Env = f.Fallback.Env
		fb.WorkerStderr = f.Fallback.WorkerStderr
	}
	fb.Workers = f.Workers
	fb.Shards = f.Shards
	fb.ShardTimeout = f.ShardTimeout
	fb.Retries = f.Retries
	fb.BackoffBase = f.BackoffBase
	fb.BackoffCap = f.BackoffCap
	fb.Seed = f.Seed
	fb.Checkpoint = f.Checkpoint
	fb.Log = f.Log
	return fb
}

// RunPayload executes the campaign's plan across the fleet: connect to
// the workers, resume journaled shards, then balance the rest over the
// live connections with per-shard retries and straggler re-dispatch.
// With no reachable worker the whole campaign degrades to the fallback
// dispatcher — same partition, same journal, same output.
func (f *Fleet) RunPayload(ctx context.Context, job campaign.PayloadJob) error {
	f.trace = obs.TraceFromContext(ctx)
	reg, err := f.connect(ctx)
	if err != nil {
		return err
	}
	defer reg.close()
	if !reg.waitReady(ctx, f.connectWait()) {
		if err := ctx.Err(); err != nil {
			return err
		}
		reg.close()
		fb := f.fallback()
		f.logf("fleet: no workers reachable within %s; degrading to %s", f.connectWait(), fb.Name())
		if tel := obs.Active(); tel != nil {
			tel.Events.Emit("fleet.degraded", map[string]string{"campaign": job.Campaign})
		}
		return fb.RunPayload(ctx, job)
	}

	tasks := partition(job, f.shards())
	markShardsPlanned(len(tasks))

	var j *journal
	if f.Checkpoint != "" {
		if j, err = openJournal(f.Checkpoint); err != nil {
			return err
		}
		defer j.close()
	}
	pending := resumeJournaled(job, tasks, j, f.Checkpoint, f.logf)
	if len(pending) == 0 {
		return ctx.Err()
	}
	return runShardSlots(ctx, pending, f.workers(), func(ctx context.Context, t task) error {
		return f.runShard(ctx, job, t, j, reg)
	})
}

// runShard drives one shard through the shared retry policy, each
// attempt going to the fleet (with straggler duplication) or — when
// the fleet has emptied out — running in-process.
func (f *Fleet) runShard(ctx context.Context, job campaign.PayloadJob, t task, j *journal, reg *fleetRegistry) error {
	rt := retrier{
		attempts: f.attempts(),
		base:     f.BackoffBase,
		cap:      f.BackoffCap,
		seed:     f.Seed,
		logf:     f.logf,
	}
	return rt.runShard(ctx, job, t, j, func(ctx context.Context) ([]runPayload, error) {
		return f.attemptShard(ctx, job, t, j != nil, reg)
	})
}

// flight is one in-flight dispatch of a shard to one worker.
type flight struct {
	w      *netWorker
	resp   response
	err    error
	wallMs int64 // round-trip time of this dispatch, for phase attribution
}

// attemptShard performs one attempt of one shard against the fleet.
// The primary dispatch goes to the first idle worker; if it is still
// unanswered after the straggler deadline a duplicate goes to a second
// worker, and the first valid (integrity-checked) result wins — the
// loser's payloads are never stored, so duplication cannot change
// output. Workers that produced transport errors or corrupt results
// are destroyed (their dial loops reconnect fresh); healthy ones
// return to the rotation.
func (f *Fleet) attemptShard(ctx context.Context, job campaign.PayloadJob, t task, journaling bool, reg *fleetRegistry) ([]runPayload, error) {
	tel := obs.Active()
	trace := obs.TraceFromContext(ctx)
	var sp *obs.Span
	var start time.Time
	if tel != nil {
		start = time.Now()
		sp = obs.SpanFromContext(ctx).Child("dispatch.shard", map[string]string{
			"shard": hex64(t.id), "worker": "fleet",
			"runs": strconv.Itoa(len(t.indices)),
		})
		defer sp.End()
	}
	w, err := reg.acquire(ctx, f.shardTimeout())
	if err != nil {
		if errors.Is(err, errNoWorkers) {
			f.logf("fleet: no live workers; running shard %s in-process", hex64(t.id))
			return runShardInProcess(ctx, job, t, journaling)
		}
		return nil, err
	}
	queueMs := int64(0)
	if tel != nil {
		queueMs = time.Since(start).Milliseconds()
		tel.Live.UpdateShard(obs.ShardStatus{
			ID: hex64(t.id), Worker: w.id, State: "running",
			Runs: len(t.indices), QueueMs: queueMs,
		})
	}

	results := make(chan flight, 2)
	dispatch := func(w *netWorker) {
		req := request{
			Seq:      f.seq.Add(1),
			Campaign: job.Campaign,
			PlanHash: hex64(job.PlanHash),
			Shard:    hex64(t.id),
			Indices:  t.indices,
			Trace:    trace,
			Span:     sp.ID(),
		}
		tripStart := time.Now()
		resp, err := w.roundTrip(ctx, req, f.shardTimeout())
		results <- flight{w: w, resp: resp, err: err, wallMs: time.Since(tripStart).Milliseconds()}
	}
	inflight := 1
	go dispatch(w)

	var stragglerC <-chan time.Time
	if sa := f.stragglerAfter(); sa > 0 {
		timer := time.NewTimer(sa)
		defer timer.Stop()
		stragglerC = timer.C
	}

	var lastErr error
	for inflight > 0 {
		select {
		case fl := <-results:
			inflight--
			if fl.err != nil {
				reg.destroy(fl.w)
				lastErr = fl.err
				continue
			}
			payloads, verr := verifyAndStore(job, t, fl.resp)
			if verr == nil {
				if tel != nil {
					// Attribute the winning flight: queue (waiting for a
					// worker), exec (the worker's own root-span time), net
					// (round trip minus exec — framing, TCP, scheduling).
					execMs := obs.RootDurMs(fl.resp.Spans)
					netMs := fl.wallMs - execMs
					if netMs < 0 {
						netMs = 0
					}
					sp.SetAttr("worker_id", fl.w.id)
					sp.SetAttr("queue_ms", strconv.FormatInt(queueMs, 10))
					sp.SetAttr("exec_ms", strconv.FormatInt(execMs, 10))
					sp.SetAttr("net_ms", strconv.FormatInt(netMs, 10))
					tel.Events.FoldSpans(sp, trace, fl.resp.Spans)
					tel.TraceWorkerSpans.Add(int64(len(fl.resp.Spans)))
					tel.Live.UpdateShard(obs.ShardStatus{
						ID: hex64(t.id), Worker: fl.w.id, State: "done",
						Runs:    len(t.indices),
						WallMs:  time.Since(start).Milliseconds(),
						QueueMs: queueMs, ExecMs: execMs, NetMs: netMs,
					})
				}
				reg.release(fl.w)
				drainFlights(reg, results, inflight)
				return payloads, nil
			}
			var perm *permanentError
			if errors.As(verr, &perm) {
				// Deterministic campaign failure: every duplicate would
				// report the same thing. The worker itself is healthy.
				reg.release(fl.w)
				drainFlights(reg, results, inflight)
				return nil, verr
			}
			// Corrupt result: drop the worker, keep waiting on the
			// duplicate if one is racing.
			reg.destroy(fl.w)
			lastErr = verr
		case <-stragglerC:
			stragglerC = nil
			if dup, ok := reg.tryAcquire(); ok {
				inflight++
				f.logf("fleet: shard %s unanswered after %s; re-dispatching to %s", hex64(t.id), f.stragglerAfter(), dup.id)
				if tel != nil {
					tel.FleetStragglers.Inc()
					tel.Events.Emit("fleet.straggler", map[string]string{
						"shard": hex64(t.id), "worker": dup.id,
					})
					tel.Live.UpdateShard(obs.ShardStatus{
						ID: hex64(t.id), Worker: dup.id, State: "retrying",
						Runs: len(t.indices), QueueMs: queueMs,
					})
				}
				go dispatch(dup)
			}
		case <-ctx.Done():
			drainFlights(reg, results, inflight)
			return nil, ctx.Err()
		}
	}
	return nil, lastErr
}

// drainFlights reaps abandoned duplicate dispatches in the background:
// their results are discarded (never stored), their workers released
// or destroyed by health.
func drainFlights(reg *fleetRegistry, results chan flight, inflight int) {
	if inflight <= 0 {
		return
	}
	go func() {
		for i := 0; i < inflight; i++ {
			fl := <-results
			if fl.err != nil {
				reg.destroy(fl.w)
			} else {
				reg.release(fl.w)
			}
		}
	}()
}

// connect starts the fleet's connection machinery: one dial loop per
// configured address (reconnecting with capped backoff for as long as
// the campaign runs) and, when Listen is set, an accept loop for
// incoming worker registrations.
func (f *Fleet) connect(ctx context.Context) (*fleetRegistry, error) {
	ctx, cancel := context.WithCancel(ctx)
	reg := &fleetRegistry{
		f:      f,
		cancel: cancel,
		notify: make(chan struct{}, 1),
		all:    make(map[*netWorker]struct{}),
	}
	if f.Listen != "" {
		l, err := dnet.Listen(f.Listen, f.ListenTLS)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("fleet: cannot listen on %s: %w", f.Listen, err)
		}
		f.logf("fleet: accepting worker registrations on %s", l.Addr())
		go func() {
			<-ctx.Done()
			l.Close()
		}()
		reg.wg.Add(1)
		go reg.acceptLoop(ctx, l)
	}
	for _, addr := range f.Addrs {
		reg.wg.Add(1)
		go reg.dialLoop(ctx, addr)
	}
	return reg, nil
}

// handshake completes the coordinator side on a fresh connection:
// hello in, spec and heartbeat interval out, spec ack in. The returned
// worker has its frame reader running.
func (f *Fleet) handshake(c *dnet.Conn, id string) (*netWorker, error) {
	var h hello
	if err := c.ReadFrame(&h); err != nil {
		return nil, fmt.Errorf("reading hello: %w", err)
	}
	if h.Proto != protoVersion {
		return nil, fmt.Errorf("worker speaks protocol %d, want %d", h.Proto, protoVersion)
	}
	if err := c.WriteFrame(netConfig{Spec: f.Spec, HeartbeatMs: f.heartbeat().Milliseconds(), Trace: f.trace}); err != nil {
		return nil, fmt.Errorf("sending spec: %w", err)
	}
	for {
		var env envelope
		if err := c.ReadFrame(&env); err != nil {
			return nil, fmt.Errorf("reading spec ack: %w", err)
		}
		if env.Resp == nil {
			continue // tolerate early pings
		}
		if env.Resp.Error != "" {
			return nil, fmt.Errorf("worker rejected spec: %s", env.Resp.Error)
		}
		break
	}
	w := &netWorker{
		id:     id,
		pid:    h.PID,
		token:  h.Token,
		conn:   c,
		frames: make(chan response, 2),
		done:   make(chan struct{}),
	}
	go w.read()
	return w, nil
}

// netWorker is one live worker connection plus its frame reader.
type netWorker struct {
	id     string
	pid    int
	token  string
	conn   *dnet.Conn
	frames chan response
	done   chan struct{}
	err    error
}

// read drains the connection: telemetry deltas are merged as they
// arrive, responses delivered to the shard slot, pings consumed (each
// arriving frame refreshes the read deadline, which is the liveness
// check). Any read error — including the missed-heartbeat deadline —
// ends the loop; w.err keeps the cause.
func (w *netWorker) read() {
	defer close(w.done)
	for {
		var env envelope
		if err := w.conn.ReadFrame(&env); err != nil {
			if err != io.EOF {
				w.err = err
			}
			return
		}
		// Skip the merge for a worker that shares this process (its hello
		// carried our own token — in-process test agents do this): its
		// movement already landed in our registry, and merging the deltas
		// again would double count every metric it touched.
		if env.Metrics != nil && w.token != obs.ProcessToken() {
			if tel := obs.Active(); tel != nil {
				tel.Reg.Merge(env.Metrics)
			}
		}
		if env.Resp != nil {
			select {
			case w.frames <- *env.Resp:
			default:
				// An unsolicited response (nothing waiting): stale frame
				// from an abandoned round trip. Drop it — the worker is
				// destroyed after any round-trip failure, so this cannot
				// starve a live request.
			}
		}
	}
}

// roundTrip sends one shard request and waits for its response within
// the deadline. A connection that dies mid-shard surfaces via w.done
// (heartbeat deadline or EOF); a worker that hangs while pinging
// surfaces as the deadline overrun.
func (w *netWorker) roundTrip(ctx context.Context, req request, deadline time.Duration) (response, error) {
	if err := w.conn.WriteFrame(req); err != nil {
		return response{}, fmt.Errorf("worker %s connection lost (request write failed: %v)", w.id, err)
	}
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	select {
	case resp := <-w.frames:
		if resp.Seq != req.Seq || resp.Shard != req.Shard {
			return response{}, fmt.Errorf("corrupted shard result (response for seq %d shard %s, want seq %d shard %s)",
				resp.Seq, resp.Shard, req.Seq, req.Shard)
		}
		return resp, nil
	case <-w.done:
		if w.err != nil {
			return response{}, fmt.Errorf("worker %s connection lost mid-shard (%v)", w.id, w.err)
		}
		return response{}, fmt.Errorf("worker %s connection closed mid-shard", w.id)
	case <-timer.C:
		return response{}, fmt.Errorf("worker %s hung (no response within %s)", w.id, deadline)
	case <-ctx.Done():
		return response{}, ctx.Err()
	}
}

// close tears the connection down and waits for the reader to finish.
func (w *netWorker) close() {
	w.conn.Close()
	<-w.done
}

// dead reports whether the worker's connection has ended.
func (w *netWorker) dead() bool {
	select {
	case <-w.done:
		return true
	default:
		return false
	}
}

// fleetRegistry tracks the fleet's live worker connections and hands
// idle ones to shard slots. Dial loops own their workers' lifecycles
// (add on handshake, remove on death, reconnect after); incoming
// registrations live until their connection drops.
type fleetRegistry struct {
	f      *Fleet
	cancel context.CancelFunc
	wg     sync.WaitGroup
	notify chan struct{}

	mu     sync.Mutex
	idle   []*netWorker
	all    map[*netWorker]struct{}
	live   int
	closed bool
}

func (r *fleetRegistry) wake() {
	select {
	case r.notify <- struct{}{}:
	default:
	}
}

// add registers a freshly handshaken worker; false means the registry
// already closed and the caller must tear the worker down.
func (r *fleetRegistry) add(w *netWorker) bool {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return false
	}
	r.all[w] = struct{}{}
	r.idle = append(r.idle, w)
	r.live++
	live := r.live
	r.mu.Unlock()
	if tel := obs.Active(); tel != nil {
		tel.FleetWorkers.Set(int64(live))
		tel.FleetRegistrations.Inc()
		tel.Events.Emit("fleet.join", map[string]string{
			"worker": w.id, "pid": strconv.Itoa(w.pid),
		})
		tel.Live.WorkerJoin(w.id, w.pid)
	}
	r.wake()
	return true
}

// remove forgets a dead worker.
func (r *fleetRegistry) remove(w *netWorker) {
	r.mu.Lock()
	if _, ok := r.all[w]; !ok {
		r.mu.Unlock()
		return
	}
	delete(r.all, w)
	for i, iw := range r.idle {
		if iw == w {
			r.idle = append(r.idle[:i], r.idle[i+1:]...)
			break
		}
	}
	r.live--
	live := r.live
	r.mu.Unlock()
	if tel := obs.Active(); tel != nil {
		tel.FleetWorkers.Set(int64(live))
		tel.Live.WorkerLost(w.id)
	}
	r.wake()
}

// tryAcquire pops an idle live worker without waiting.
func (r *fleetRegistry) tryAcquire() (*netWorker, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for n := len(r.idle); n > 0; n = len(r.idle) {
		w := r.idle[n-1]
		r.idle = r.idle[:n-1]
		if !w.dead() {
			return w, true
		}
	}
	return nil, false
}

// acquire blocks until an idle worker is available. Busy workers are
// waited on indefinitely (they release when their shard settles), but
// if the fleet stays completely empty for maxEmpty the caller gets
// errNoWorkers and runs the shard locally.
func (r *fleetRegistry) acquire(ctx context.Context, maxEmpty time.Duration) (*netWorker, error) {
	emptyDeadline := time.Now().Add(maxEmpty)
	for {
		if w, ok := r.tryAcquire(); ok {
			return w, nil
		}
		r.mu.Lock()
		empty := r.live == 0
		r.mu.Unlock()
		if empty {
			if time.Now().After(emptyDeadline) {
				return nil, errNoWorkers
			}
		} else {
			emptyDeadline = time.Now().Add(maxEmpty)
		}
		select {
		case <-r.notify:
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// release returns a healthy worker to the rotation.
func (r *fleetRegistry) release(w *netWorker) {
	if w.dead() {
		return // its owner loop is already accounting for the death
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.idle = append(r.idle, w)
	r.mu.Unlock()
	r.wake()
}

// destroy drops a suspect worker hard; its dial loop (if any)
// reconnects fresh.
func (r *fleetRegistry) destroy(w *netWorker) {
	if tel := obs.Active(); tel != nil {
		tel.WorkerKills.Inc()
	}
	w.conn.Close()
}

// waitReady blocks until at least one worker has joined, the wait
// budget is spent, or ctx ends. It reports whether the fleet is
// usable.
func (r *fleetRegistry) waitReady(ctx context.Context, wait time.Duration) bool {
	deadline := time.Now().Add(wait)
	for {
		r.mu.Lock()
		live := r.live
		r.mu.Unlock()
		if live > 0 {
			return true
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return false
		}
		if remain > 20*time.Millisecond {
			remain = 20 * time.Millisecond
		}
		select {
		case <-r.notify:
		case <-time.After(remain):
		case <-ctx.Done():
			return false
		}
	}
}

// close tears the whole registry down: stops dial/accept loops, closes
// every connection, waits for the loops to end. Idempotent.
func (r *fleetRegistry) close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		r.wg.Wait()
		return
	}
	r.closed = true
	workers := make([]*netWorker, 0, len(r.all))
	for w := range r.all {
		workers = append(workers, w)
	}
	r.mu.Unlock()
	r.cancel()
	for _, w := range workers {
		w.conn.Close()
	}
	r.wg.Wait()
	if tel := obs.Active(); tel != nil {
		tel.FleetWorkers.Set(0)
	}
}

// dialLoop maintains the connection to one configured worker address:
// dial, handshake, serve until the connection dies, reconnect with
// capped backoff. Reconnects after a served session are counted — they
// are the fleet surviving a lost worker.
func (r *fleetRegistry) dialLoop(ctx context.Context, addr string) {
	defer r.wg.Done()
	f := r.f
	connected := false
	fails := 0
	for ctx.Err() == nil {
		c, err := dnet.Dial(ctx, addr, f.TLS, f.Tap, f.deadAfter())
		var w *netWorker
		if err == nil {
			w, err = f.handshake(c, addr)
			if err != nil {
				c.Close()
			}
		}
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			fails++
			if fails == 1 {
				f.logf("fleet: worker %s unavailable (%v); retrying with backoff", addr, err)
			}
			d := campaign.BackoffDelay(f.BackoffBase, f.BackoffCap, f.Seed, fnvString(addr), fails)
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return
			}
			continue
		}
		fails = 0
		if connected {
			f.logf("fleet: reconnected to worker %s (pid %d)", addr, w.pid)
			if tel := obs.Active(); tel != nil {
				tel.FleetReconnects.Inc()
				tel.Events.Emit("fleet.reconnect", map[string]string{"worker": addr})
			}
		} else {
			f.logf("fleet: worker %s joined (pid %d)", addr, w.pid)
			connected = true
		}
		if !r.add(w) {
			w.close()
			return
		}
		<-w.done
		r.remove(w)
		if ctx.Err() == nil {
			f.logf("fleet: lost worker %s (%s)", addr, errString(w.err))
		}
	}
}

// acceptLoop admits incoming worker registrations (DialAndServe
// agents) for as long as the campaign runs. A registered worker that
// drops is forgotten — re-registration is the agent's job.
func (r *fleetRegistry) acceptLoop(ctx context.Context, l net.Listener) {
	defer r.wg.Done()
	n := 0
	for {
		raw, err := l.Accept()
		if err != nil {
			return // listener closed on shutdown
		}
		n++
		id := fmt.Sprintf("%s#%d", raw.RemoteAddr(), n)
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			f := r.f
			c := dnet.NewConn(raw, f.Tap, f.deadAfter())
			w, err := f.handshake(c, id)
			if err != nil {
				c.Close()
				f.logf("fleet: registration from %s failed: %v", id, err)
				return
			}
			f.logf("fleet: worker %s registered (pid %d)", id, w.pid)
			if !r.add(w) {
				w.close()
				return
			}
			<-w.done
			r.remove(w)
			if ctx.Err() == nil {
				f.logf("fleet: lost worker %s (%s)", id, errString(w.err))
			}
		}()
	}
}

func errString(err error) string {
	if err == nil {
		return "connection closed"
	}
	return err.Error()
}

func fnvString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
