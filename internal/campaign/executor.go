package campaign

import (
	"context"
	"fmt"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// Executor schedules the n independent runs of a campaign plan. Run
// invokes fn(i) at most once for every i in [0, n) and returns the
// first error (runs already in flight finish; queued runs are
// abandoned). keys, when non-nil, holds run i's shard key at keys[i];
// executors without a sharding notion ignore it. Implementations must
// recover panics out of fn into a *PanicError, so one poisoned run
// produces a diagnostic instead of killing the process.
type Executor interface {
	// Name identifies the executor in logs and test failures.
	Name() string
	Run(ctx context.Context, n int, keys []uint64, fn func(i int) error) error
}

// PanicError is a panic recovered from one campaign run.
type PanicError struct {
	// Index is the plan index of the run that panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("run panicked: %v\n%s", e.Value, e.Stack)
}

// Unwrap exposes the panic value as the error's cause when the run
// panicked with an error (panic(err) is common in library code), so
// engine diagnostics pass errors.Is/errors.As checks against the
// underlying error. Panics with non-error values have no cause.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// call invokes fn(i), converting a panic into a *PanicError.
func call(fn func(i int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// Serial executes the plan in index order on the calling goroutine.
// It is the reference semantics every other executor must reproduce
// byte-for-byte.
type Serial struct{}

func (Serial) Name() string { return "serial" }

func (Serial) Run(ctx context.Context, n int, _ []uint64, fn func(i int) error) error {
	// Serial is one shard covering the whole plan: the shard telemetry
	// below keeps progress and bench percentiles meaningful in -workers 1
	// mode without changing execution in any way.
	tel := obs.Active()
	var start time.Time
	var sp *obs.Span
	if tel != nil && n > 0 {
		tel.ShardsPlanned.Inc()
		tel.Progress.SetShards(1)
		tel.Live.SetShards(1)
		sp = obs.SpanFromContext(ctx).Child("shard", map[string]string{
			"shard": "0", "runs": strconv.Itoa(n),
		})
		start = time.Now()
	}
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			sp.End()
			return err
		}
		if err := call(fn, i); err != nil {
			sp.End()
			return err
		}
	}
	if tel != nil && n > 0 {
		sp.End()
		wall := time.Since(start)
		tel.ShardDur.Observe(wall.Seconds())
		tel.ShardsDone.Inc()
		tel.Progress.ShardDone()
		tel.Live.ShardDone()
		tel.Live.UpdateShard(obs.ShardStatus{
			ID: "0", Worker: "local", State: "done", Runs: n,
			WallMs: wall.Milliseconds(), ExecMs: wall.Milliseconds(),
		})
	}
	return nil
}

// DefaultShards is the shard count a Sharded executor with Shards == 0
// uses. It is a fixed constant — deliberately not derived from Workers
// or GOMAXPROCS — so the plan→shard partition of a campaign is stable
// across machines and worker counts.
const DefaultShards = 16

// Sharded partitions the plan into deterministic shards and executes
// them on a bounded worker pool. Run i lands in shard keys[i] % Shards
// (plan index when the campaign assigns no keys), so the partition
// depends only on the plan and the shard count — never on Workers —
// and a shard is a self-contained unit that could be dispatched to a
// remote worker without changing any result. Within a shard, runs
// execute in ascending plan order.
type Sharded struct {
	// Workers bounds how many shards execute concurrently (>= 1).
	Workers int
	// Shards is the partition width (0 selects DefaultShards).
	Shards int
}

func (s Sharded) Name() string {
	return fmt.Sprintf("sharded(workers=%d,shards=%d)", s.Workers, s.shards())
}

func (s Sharded) shards() int {
	if s.Shards < 1 {
		return DefaultShards
	}
	return s.Shards
}

func (s Sharded) Run(ctx context.Context, n int, keys []uint64, fn func(i int) error) error {
	workers := s.Workers
	if workers < 1 {
		workers = 1
	}
	shards := s.shards()

	// Partition by key. Appending in index order keeps each shard's runs
	// ascending, so a shard replays identically under any executor.
	buckets := make([][]int, shards)
	for i := 0; i < n; i++ {
		k := uint64(i)
		if keys != nil {
			k = keys[i]
		}
		b := int(k % uint64(shards))
		buckets[b] = append(buckets[b], i)
	}

	tel := obs.Active()
	if tel != nil {
		planned := 0
		for _, b := range buckets {
			if len(b) > 0 {
				planned++
			}
		}
		tel.ShardsPlanned.Add(int64(planned))
		tel.Progress.SetShards(planned)
		tel.Live.SetShards(planned)
	}
	parent := obs.SpanFromContext(ctx)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}

	type job struct {
		bucket int
		runs   []int
	}
	work := make(chan job)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for j := range work {
				var shardStart time.Time
				var sp *obs.Span
				if tel != nil {
					shardStart = time.Now()
					sp = parent.Child("shard", map[string]string{
						"shard": strconv.Itoa(j.bucket),
						"runs":  strconv.Itoa(len(j.runs)),
					})
				}
				for _, i := range j.runs {
					if ctx.Err() != nil {
						sp.End()
						return
					}
					if err := call(fn, i); err != nil {
						sp.End()
						fail(err)
						return
					}
				}
				if tel != nil {
					sp.End()
					wall := time.Since(shardStart)
					tel.ShardDur.Observe(wall.Seconds())
					tel.ShardsDone.Inc()
					tel.Progress.ShardDone()
					tel.Live.ShardDone()
					tel.Live.UpdateShard(obs.ShardStatus{
						ID: strconv.Itoa(j.bucket), Worker: "local",
						State: "done", Runs: len(j.runs),
						WallMs: wall.Milliseconds(), ExecMs: wall.Milliseconds(),
					})
				}
			}
		}()
	}
feed:
	for bi, b := range buckets {
		if len(b) == 0 {
			continue
		}
		select {
		case work <- job{bucket: bi, runs: b}:
		case <-ctx.Done():
			// Stop feeding: after cancellation no worker will accept
			// another bucket, so iterating the remainder only spins.
			break feed
		}
	}
	close(work)
	wg.Wait()

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return err
	}
	return ctx.Err()
}
