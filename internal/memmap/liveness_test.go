package memmap

import (
	"testing"

	"repro/internal/model"
)

func TestWriteHooksObserveSetNotPoke(t *testing.T) {
	var m Map
	v := m.AllocRAM("M", "x", model.Uint(8), 0)
	var seen []model.Word
	m.OnWrite(func(info CellInfo, raw model.Word) {
		if info.Name == "x" {
			seen = append(seen, raw)
		}
	})
	v.Set(3)
	v.SetBool(true)
	m.Poke(v.ID(), 9) // experiment-side mutation: no hook
	if err := m.FlipBit(v.ID(), 0); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	if len(seen) != 2 || seen[0] != 3 || seen[1] != 1 {
		t.Errorf("write hook observed %v, want [3 1] (Set and SetBool only)", seen)
	}
	m.ClearHooks()
	v.Set(7)
	if len(seen) != 2 {
		t.Errorf("write hook fired after ClearHooks: %v", seen)
	}
}

// liveness test fixture: drive the profiler clock by hand and access two
// variables at scripted times against a period-10 injection from t=10.
func TestLivenessCriteria(t *testing.T) {
	var m Map
	rdBeforeWr := m.AllocRAM("M", "rw", model.Uint(8), 0) // read after a tick: vulnerable
	wrBeforeRd := m.AllocRAM("M", "wr", model.Uint(8), 0) // always written just before read
	dead := m.AllocRAM("M", "dead", model.Uint(8), 0)     // written, never read
	early := m.AllocStack("M", "early", model.Uint(8))    // read only before the first tick
	lateRead := m.AllocStack("M", "late", model.Uint(8))  // read after the first tick

	l, err := NewLiveness(&m, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	m.OnRead(l.ReadHook())
	m.OnWrite(l.WriteHook())

	l.Hook(5)
	early.Set(1)
	_ = early.Get() // read at t=5, before the first tick at t=10
	_ = rdBeforeWr.Get()

	l.Hook(12)
	// Write at t=12 re-defines wrBeforeRd after the t=10 tick, then read:
	// persistent flips are overwritten, so masked.
	wrBeforeRd.Set(4)
	_ = wrBeforeRd.Get()
	// rdBeforeWr is read with its last access at t=5 and a tick at t=10
	// in between: vulnerable.
	_ = rdBeforeWr.Get()
	dead.Set(2)
	_ = lateRead.Get()

	if l.PersistentMasked(rdBeforeWr.ID()) {
		t.Error("rdBeforeWr: read after tick without redefinition must be vulnerable")
	}
	if !l.PersistentMasked(wrBeforeRd.ID()) {
		t.Error("wrBeforeRd: every read is preceded by a same-slot write, must be masked")
	}
	if !l.PersistentMasked(dead.ID()) {
		t.Error("dead: never read, must be masked")
	}
	if !l.PersistentMasked(early.ID()) {
		t.Error("early: only read before the first tick, must be persistent-masked")
	}

	if !l.TransientMasked(early.ID()) {
		t.Error("early: no read at/after the first tick, must be transient-masked")
	}
	if l.TransientMasked(lateRead.ID()) {
		t.Error("lateRead: read after the first tick consumes an armed corruption")
	}
	if !l.TransientMasked(dead.ID()) {
		t.Error("dead: never read, must be transient-masked")
	}
	// A write does NOT disarm the transient (armed-read) model.
	if l.TransientMasked(wrBeforeRd.ID()) {
		t.Error("wrBeforeRd: read after the first tick, transient corruption observable despite the write")
	}

	if r, w := l.Accesses(rdBeforeWr.ID()); r != 2 || w != 0 {
		t.Errorf("rdBeforeWr accesses = (%d, %d), want (2, 0)", r, w)
	}
}

// A never-accessed cell is masked under both criteria, and its first
// read after any tick is vulnerable (the initial value was corrupted
// before the program ever defined it).
func TestLivenessInitialValueRead(t *testing.T) {
	var m Map
	v := m.AllocRAM("M", "x", model.Uint(8), 7)
	l, err := NewLiveness(&m, 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	m.OnRead(l.ReadHook())
	m.OnWrite(l.WriteHook())
	if !l.PersistentMasked(v.ID()) || !l.TransientMasked(v.ID()) {
		t.Fatal("unaccessed cell must start masked")
	}
	l.Hook(20)
	_ = v.Get()
	if l.PersistentMasked(v.ID()) {
		t.Error("first read at the first tick must be vulnerable (no prior definition)")
	}
}

func TestLivenessRejectsBadClock(t *testing.T) {
	var m Map
	if _, err := NewLiveness(&m, 0, 0); err == nil {
		t.Error("period 0 accepted")
	}
	if _, err := NewLiveness(&m, 10, -1); err == nil {
		t.Error("negative start accepted")
	}
}
