// Package memmap simulates the byte-level memory of the embedded target:
// per-module RAM regions holding persistent state and a stack region
// holding invocation frames. It exists so the paper's severe error model
// (Section 7: periodic bit-flips into "150 locations in RAM and 50
// locations in the stack") has a faithful substrate even though we run on
// a hosted Go runtime instead of an MC68HC11-class microcontroller.
//
// Modules allocate variables (Var) in a Map. RAM variables persist across
// invocations (counters, integrators, previous samples); stack variables
// model locals in a reused activation frame: they keep their cell between
// invocations, so corrupting one affects the next invocation only if the
// module consumes the local before overwriting it — the same
// live-range-dependent masking real stack flips exhibit.
//
// Fault injection corrupts cells directly (FlipBit) or transiently at
// read time (read hooks), mirroring the two injection styles of the
// paper's FI tool.
package memmap

import (
	"fmt"

	"repro/internal/model"
)

// Region classifies where a cell lives.
type Region int

// Memory regions.
const (
	RegionRAM Region = iota + 1
	RegionStack
)

// String implements fmt.Stringer.
func (r Region) String() string {
	switch r {
	case RegionRAM:
		return "RAM"
	case RegionStack:
		return "stack"
	default:
		return "unknown"
	}
}

// CellID indexes a cell within a Map.
type CellID int

// CellInfo describes one allocated cell.
type CellInfo struct {
	ID     CellID
	Owner  string // owning module
	Name   string // variable name, unique per owner
	Region Region
	Type   model.Type
	Init   model.Word
}

// Address renders a symbolic address like "RAM:CALC.i".
func (c CellInfo) Address() string {
	return fmt.Sprintf("%s:%s.%s", c.Region, c.Owner, c.Name)
}

// ReadHook intercepts a hooked read of a cell, receiving and returning
// the raw bit pattern. Transient stack-corruption injection attaches here.
type ReadHook func(info CellInfo, raw model.Word) model.Word

// WriteHook observes a hooked write of a cell after the raw bit pattern
// is stored. Write hooks are observers only — they cannot alter the
// stored value — and fire for module writes (Var.Set and friends), not
// for experiment-side mutation (Poke, FlipBit, Reset), so a liveness
// profiler sees exactly the program's own def/use behaviour.
type WriteHook func(info CellInfo, raw model.Word)

type cell struct {
	info CellInfo
	raw  model.Word
}

// Map is a simulated memory map. The zero value is ready to use. A Map is
// not safe for concurrent use; every experiment run owns its own Map.
type Map struct {
	cells  []cell
	names  map[string]struct{} // "owner.name" uniqueness
	reads  []ReadHook
	writes []WriteHook
}

// Alloc allocates a cell and returns a Var handle bound to it. It panics
// on duplicate owner/name pairs or invalid types — allocation happens at
// construction time with statically-known arguments, so an error return
// would only be plumbing.
func (m *Map) Alloc(owner, name string, region Region, t model.Type, initial model.Word) *Var {
	if err := t.Validate(); err != nil {
		panic(fmt.Sprintf("memmap: alloc %s.%s: %v", owner, name, err))
	}
	if m.names == nil {
		m.names = make(map[string]struct{})
	}
	key := owner + "." + name
	if _, dup := m.names[key]; dup {
		panic(fmt.Sprintf("memmap: duplicate cell %s", key))
	}
	m.names[key] = struct{}{}
	id := CellID(len(m.cells))
	m.cells = append(m.cells, cell{
		info: CellInfo{ID: id, Owner: owner, Name: name, Region: region, Type: t, Init: t.ToRaw(initial)},
		raw:  t.ToRaw(initial),
	})
	return &Var{m: m, id: id}
}

// AllocRAM allocates a persistent state variable.
func (m *Map) AllocRAM(owner, name string, t model.Type, initial model.Word) *Var {
	return m.Alloc(owner, name, RegionRAM, t, initial)
}

// AllocStack allocates a local variable in the owner's reused stack frame.
func (m *Map) AllocStack(owner, name string, t model.Type) *Var {
	return m.Alloc(owner, name, RegionStack, t, 0)
}

// Reset restores every cell to its initial value, keeping hooks.
func (m *Map) Reset() {
	for i := range m.cells {
		m.cells[i].raw = m.cells[i].info.Init
	}
}

// OnRead installs a read hook; hooks chain in installation order.
func (m *Map) OnRead(h ReadHook) { m.reads = append(m.reads, h) }

// OnWrite installs a write hook; hooks run in installation order.
func (m *Map) OnWrite(h WriteHook) { m.writes = append(m.writes, h) }

// ClearHooks removes all read and write hooks.
func (m *Map) ClearHooks() {
	m.reads = nil
	m.writes = nil
}

// Cells returns the metadata of every allocated cell, in allocation order.
func (m *Map) Cells() []CellInfo {
	out := make([]CellInfo, len(m.cells))
	for i := range m.cells {
		out[i] = m.cells[i].info
	}
	return out
}

// CellsIn returns the metadata of every cell in the given region.
func (m *Map) CellsIn(region Region) []CellInfo {
	var out []CellInfo
	for i := range m.cells {
		if m.cells[i].info.Region == region {
			out = append(out, m.cells[i].info)
		}
	}
	return out
}

// Info returns the metadata of one cell.
func (m *Map) Info(id CellID) CellInfo {
	m.check(id)
	return m.cells[id].info
}

// FlipBit XORs one bit of the stored cell value. Bit positions at or
// above the cell width are reported as an error: the paper's injector
// targets occupied locations, so flipping a nonexistent bit would
// silently weaken a campaign.
func (m *Map) FlipBit(id CellID, bit uint8) error {
	m.check(id)
	c := &m.cells[id]
	if bit >= c.info.Type.Width {
		return fmt.Errorf("memmap: flip bit %d of %s (width %d)", bit, c.info.Address(), c.info.Type.Width)
	}
	c.raw ^= model.Word(1) << bit
	return nil
}

// PeekRaw returns the stored bit pattern of a cell without hooks.
// Fault-injection strategies that force individual bits (stuck-at,
// burst) work in the raw domain so signed encodings cannot distort the
// corruption.
func (m *Map) PeekRaw(id CellID) model.Word {
	m.check(id)
	return m.cells[id].raw
}

// PokeRaw overwrites a cell's stored bit pattern without hooks. The
// pattern is masked to the cell width.
func (m *Map) PokeRaw(id CellID, raw model.Word) {
	m.check(id)
	m.cells[id].raw = raw & m.cells[id].info.Type.Mask()
}

// Peek returns the interpreted value of a cell without hooks.
func (m *Map) Peek(id CellID) model.Word {
	m.check(id)
	c := m.cells[id]
	return c.info.Type.FromRaw(c.raw)
}

// Poke overwrites a cell (interpreted domain) without hooks.
func (m *Map) Poke(id CellID, v model.Word) {
	m.check(id)
	m.cells[id].raw = m.cells[id].info.Type.ToRaw(v)
}

func (m *Map) check(id CellID) {
	if id < 0 || int(id) >= len(m.cells) {
		panic(fmt.Sprintf("memmap: cell id %d out of range (have %d cells)", id, len(m.cells)))
	}
}

func (m *Map) read(id CellID) model.Word {
	c := &m.cells[id]
	raw := c.raw
	for _, h := range m.reads {
		raw = h(c.info, raw) & c.info.Type.Mask()
	}
	return c.info.Type.FromRaw(raw)
}

func (m *Map) write(id CellID, v model.Word) {
	c := &m.cells[id]
	c.raw = c.info.Type.ToRaw(v)
	if len(m.writes) > 0 {
		for _, h := range m.writes {
			h(c.info, c.raw)
		}
	}
}

// Var is a module-owned variable backed by a memory cell. Get goes
// through read hooks (so transient injection is observed); Set stores
// directly.
type Var struct {
	m  *Map
	id CellID
}

// Get reads the variable through read hooks.
func (v *Var) Get() model.Word { return v.m.read(v.id) }

// GetBool reads the variable as a boolean.
func (v *Var) GetBool() bool { return v.m.read(v.id) != 0 }

// Set writes the variable.
func (v *Var) Set(w model.Word) { v.m.write(v.id, w) }

// SetBool writes a boolean value.
func (v *Var) SetBool(b bool) {
	if b {
		v.m.write(v.id, 1)
	} else {
		v.m.write(v.id, 0)
	}
}

// Add adds delta to the variable (with width wrap-around) and returns the
// new value.
func (v *Var) Add(delta model.Word) model.Word {
	nv := v.Get() + delta
	v.Set(nv)
	return v.m.Peek(v.id)
}

// ID returns the backing cell's identity.
func (v *Var) ID() CellID { return v.id }

// Info returns the backing cell's metadata.
func (v *Var) Info() CellInfo { return v.m.Info(v.id) }
