package memmap

import (
	"fmt"

	"repro/internal/model"
)

// Liveness observes one fault-free run and decides, per cell, whether a
// periodic bit-flip campaign against that cell could ever be observed —
// the def/use analysis behind equivalence-class pruning (in the style
// of DETOx: an injection into a cell that is dead, or overwritten
// before its next read, provably shares the fault-free outcome).
//
// The profiler models the injection clock of fi.PeriodicInjector: ticks
// at fromMs, fromMs+periodMs, ... fire in a scheduler pre-slot hook,
// i.e. before any module access in the same millisecond. Two masking
// criteria fall out, one per injection style:
//
//   - Persistent (RAM-style, corrupt-in-place): a read at time r can
//     observe the corruption iff some tick lies in (a, r], where a is
//     the cell's previous access (read or write; -1 if none). A write
//     re-defines the cell and clears any pending corruption from the
//     reader's point of view.
//   - Transient (stack-style, armed corruption of the next read): any
//     read at or after the first tick observes a corruption — an
//     intervening write does not disarm the injector.
//
// The soundness argument is inductive: as long as no corrupted value
// has been read, the faulted run is bit-identical to the fault-free
// run, so the fault-free access trace remains the valid predictor of
// the next access. The first vulnerable access, if any, is therefore
// correctly identified from the profile alone. The analysis is
// conservative in exactly one direction — a cell it calls vulnerable
// may still mask in practice (e.g. flips cancelling over an even
// number of periods); such targets are simply executed.
//
// Install Hook as a scheduler pre-slot hook and ReadHook/WriteHook on
// the profiled Map, run the fault-free scenario to completion, then
// query PersistentMasked/TransientMasked.
type Liveness struct {
	periodMs, fromMs int64
	nowMs            int64

	last       []int64 // last access time per cell, -1 = never accessed
	persistent []bool  // some read could observe an in-place periodic flip
	transient  []bool  // some read at/after the first tick (armed-read observable)
	reads      []int
	writes     []int
}

// NewLiveness builds a profiler for the periodic injection clock
// (periodMs, fromMs) over the cells of m. Cells must all be allocated
// before profiling starts (module construction precedes hook
// installation on a Rig, so this holds by construction).
func NewLiveness(m *Map, periodMs, fromMs int64) (*Liveness, error) {
	if periodMs <= 0 {
		return nil, fmt.Errorf("memmap: liveness period %d must be positive", periodMs)
	}
	if fromMs < 0 {
		return nil, fmt.Errorf("memmap: liveness start %d must not be negative", fromMs)
	}
	n := len(m.cells)
	l := &Liveness{
		periodMs:   periodMs,
		fromMs:     fromMs,
		last:       make([]int64, n),
		persistent: make([]bool, n),
		transient:  make([]bool, n),
		reads:      make([]int, n),
		writes:     make([]int, n),
	}
	for i := range l.last {
		l.last[i] = -1
	}
	return l, nil
}

// Hook is the scheduler pre-slot hook maintaining the profiler's clock;
// it must be installed so accesses carry their slot time.
func (l *Liveness) Hook(nowMs int64) { l.nowMs = nowMs }

// ReadHook returns the read observer. It never alters the value read.
func (l *Liveness) ReadHook() ReadHook {
	return func(info CellInfo, raw model.Word) model.Word {
		i := int(info.ID)
		if i >= 0 && i < len(l.last) {
			r := l.nowMs
			if r >= l.fromMs {
				l.transient[i] = true
				// Latest tick at or before r; ticks precede same-ms
				// accesses, so a tick after the previous access and at
				// or before this read is observable.
				tick := l.fromMs + (r-l.fromMs)/l.periodMs*l.periodMs
				if tick > l.last[i] {
					l.persistent[i] = true
				}
			}
			l.last[i] = r
			l.reads[i]++
		}
		return raw
	}
}

// WriteHook returns the write observer: a write re-defines the cell.
func (l *Liveness) WriteHook() WriteHook {
	return func(info CellInfo, _ model.Word) {
		i := int(info.ID)
		if i >= 0 && i < len(l.last) {
			l.last[i] = l.nowMs
			l.writes[i]++
		}
	}
}

// PersistentMasked reports whether in-place periodic flips of the cell
// (fi.TargetRAMCell) are provably unobservable: no read of the cell
// ever follows a tick without an intervening write.
func (l *Liveness) PersistentMasked(id CellID) bool {
	return int(id) < len(l.persistent) && !l.persistent[id]
}

// TransientMasked reports whether armed read-corruptions of the cell
// (fi.TargetStackCell) are provably unobservable: the cell is never
// read at or after the first tick.
func (l *Liveness) TransientMasked(id CellID) bool {
	return int(id) < len(l.transient) && !l.transient[id]
}

// Accesses reports the profiled read and write counts of a cell.
func (l *Liveness) Accesses(id CellID) (reads, writes int) {
	if int(id) >= len(l.reads) {
		return 0, 0
	}
	return l.reads[id], l.writes[id]
}
