package memmap

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestAllocAndPeek(t *testing.T) {
	var m Map
	v := m.AllocRAM("CALC", "i", model.Uint(8), 3)
	if got := v.Get(); got != 3 {
		t.Errorf("Get() = %d, want 3", got)
	}
	info := v.Info()
	if info.Owner != "CALC" || info.Name != "i" || info.Region != RegionRAM {
		t.Errorf("Info() = %+v", info)
	}
	if got := info.Address(); got != "RAM:CALC.i" {
		t.Errorf("Address() = %q, want RAM:CALC.i", got)
	}
}

func TestAllocStackDefaultsToZero(t *testing.T) {
	var m Map
	v := m.AllocStack("CALC", "tmp", model.Uint(16))
	if got := v.Get(); got != 0 {
		t.Errorf("stack var initial = %d, want 0", got)
	}
	if got := v.Info().Region; got != RegionStack {
		t.Errorf("Region = %v, want stack", got)
	}
}

func TestDuplicateAllocPanics(t *testing.T) {
	var m Map
	m.AllocRAM("M", "x", model.Uint(8), 0)
	defer func() {
		if recover() == nil {
			t.Error("duplicate Alloc did not panic")
		}
	}()
	m.AllocStack("M", "x", model.Uint(8))
}

func TestInvalidTypePanics(t *testing.T) {
	var m Map
	defer func() {
		if recover() == nil {
			t.Error("invalid type Alloc did not panic")
		}
	}()
	m.Alloc("M", "bad", RegionRAM, model.Type{Name: "w0", Width: 0}, 0)
}

func TestResetRestoresInitialValues(t *testing.T) {
	var m Map
	a := m.AllocRAM("M", "a", model.Uint(16), 100)
	b := m.AllocStack("M", "b", model.Uint(8))
	a.Set(5)
	b.Set(9)
	m.Reset()
	if got := a.Get(); got != 100 {
		t.Errorf("after Reset a = %d, want 100", got)
	}
	if got := b.Get(); got != 0 {
		t.Errorf("after Reset b = %d, want 0", got)
	}
}

func TestFlipBit(t *testing.T) {
	var m Map
	v := m.AllocRAM("M", "x", model.Uint(8), 0b1010)
	if err := m.FlipBit(v.ID(), 0); err != nil {
		t.Fatalf("FlipBit: %v", err)
	}
	if got := v.Get(); got != 0b1011 {
		t.Errorf("after flip bit 0: %#b, want 0b1011", got)
	}
	if err := m.FlipBit(v.ID(), 7); err != nil {
		t.Fatalf("FlipBit: %v", err)
	}
	if got := v.Get(); got != 0b10001011 {
		t.Errorf("after flip bit 7: %#b, want 0b10001011", got)
	}
}

func TestFlipBitOutOfWidthErrors(t *testing.T) {
	var m Map
	v := m.AllocRAM("M", "x", model.Uint(8), 0)
	err := m.FlipBit(v.ID(), 8)
	if err == nil {
		t.Fatal("FlipBit(8) on width-8 cell returned nil error")
	}
	if !strings.Contains(err.Error(), "width") {
		t.Errorf("error %q does not mention width", err)
	}
}

// Property: flipping the same valid bit twice is the identity.
func TestQuickDoubleFlipIsIdentity(t *testing.T) {
	var m Map
	v := m.AllocRAM("M", "x", model.Uint(16), 0)
	f := func(init model.Word, bit uint8) bool {
		bit %= 16
		m.Poke(v.ID(), init)
		before := m.Peek(v.ID())
		if err := m.FlipBit(v.ID(), bit); err != nil {
			return false
		}
		mid := m.Peek(v.ID())
		if mid == before {
			return false // a flip must change the value
		}
		if err := m.FlipBit(v.ID(), bit); err != nil {
			return false
		}
		return m.Peek(v.ID()) == before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a single flip changes exactly one bit of the raw pattern.
func TestQuickFlipChangesExactlyOneBit(t *testing.T) {
	var m Map
	v := m.AllocRAM("M", "x", model.Uint(16), 0)
	f := func(init model.Word, bit uint8) bool {
		bit %= 16
		m.Poke(v.ID(), init)
		before := m.Peek(v.ID())
		if err := m.FlipBit(v.ID(), bit); err != nil {
			return false
		}
		diff := before ^ m.Peek(v.ID())
		return diff == model.Word(1)<<bit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadHooksApplyToGetNotPeek(t *testing.T) {
	var m Map
	v := m.AllocRAM("M", "x", model.Uint(8), 10)
	m.OnRead(func(info CellInfo, raw model.Word) model.Word {
		if info.Name == "x" {
			return raw ^ 0x4
		}
		return raw
	})
	if got := v.Get(); got != 14 {
		t.Errorf("hooked Get() = %d, want 14", got)
	}
	if got := m.Peek(v.ID()); got != 10 {
		t.Errorf("Peek() = %d, want 10 (hooks must not apply)", got)
	}
	m.ClearHooks()
	if got := v.Get(); got != 10 {
		t.Errorf("Get() after ClearHooks = %d, want 10", got)
	}
}

func TestCellsAndRegions(t *testing.T) {
	var m Map
	m.AllocRAM("A", "x", model.Uint(8), 0)
	m.AllocRAM("B", "y", model.Uint(16), 0)
	m.AllocStack("A", "t", model.Uint(8))
	if got := len(m.Cells()); got != 3 {
		t.Errorf("len(Cells()) = %d, want 3", got)
	}
	if got := len(m.CellsIn(RegionRAM)); got != 2 {
		t.Errorf("len(CellsIn(RAM)) = %d, want 2", got)
	}
	if got := len(m.CellsIn(RegionStack)); got != 1 {
		t.Errorf("len(CellsIn(stack)) = %d, want 1", got)
	}
}

func TestVarHelpers(t *testing.T) {
	var m Map
	b := m.AllocRAM("M", "flag", model.Bool(), 0)
	b.SetBool(true)
	if !b.GetBool() {
		t.Error("GetBool() = false after SetBool(true)")
	}
	b.SetBool(false)
	if b.GetBool() {
		t.Error("GetBool() = true after SetBool(false)")
	}

	c := m.AllocRAM("M", "ctr", model.Uint(8), 250)
	if got := c.Add(10); got != 4 {
		t.Errorf("Add past width = %d, want 4 (wraps at 256)", got)
	}
}

func TestOutOfRangeCellPanics(t *testing.T) {
	var m Map
	m.AllocRAM("M", "x", model.Uint(8), 0)
	defer func() {
		if recover() == nil {
			t.Error("Peek of bad id did not panic")
		}
	}()
	m.Peek(CellID(7))
}
