// Package stats provides the estimators used when reducing
// fault-injection campaigns: proportion estimates with confidence
// intervals (coverage estimation in the style of Powell et al. [14]) and
// simple summary statistics.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Proportion is a Bernoulli estimate: successes out of trials.
type Proportion struct {
	Successes int
	Trials    int
}

// Add accumulates one trial.
func (p *Proportion) Add(success bool) {
	p.Trials++
	if success {
		p.Successes++
	}
}

// AddN accumulates n identical trials. Equivalence-class pruning uses
// this to credit one representative run with the outcome of the whole
// class: n trials with the representative's result are statistically
// exchangeable with the class members because class membership proves
// the outcomes equal. Non-positive n is a no-op.
func (p *Proportion) AddN(success bool, n int) {
	if n <= 0 {
		return
	}
	p.Trials += n
	if success {
		p.Successes += n
	}
}

// Estimate returns the point estimate (0 for an empty sample).
func (p Proportion) Estimate() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Successes) / float64(p.Trials)
}

// WilsonCI returns the Wilson score interval at the given z quantile
// (1.96 for 95%). Preferred over the normal approximation because
// coverage estimates sit near 0 and 1, where the Wald interval
// degenerates.
func (p Proportion) WilsonCI(z float64) (lo, hi float64) {
	if p.Trials == 0 {
		return 0, 1
	}
	n := float64(p.Trials)
	ph := p.Estimate()
	z2 := z * z
	den := 1 + z2/n
	center := (ph + z2/(2*n)) / den
	half := z / den * math.Sqrt(ph*(1-ph)/n+z2/(4*n*n))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// StopRule is a sequential early-stopping criterion for Bernoulli
// streams: stop sampling once the Wilson score interval at quantile Z
// is tighter than ±HalfWidth, but never before MinTrials trials. The
// floor guards against the interval collapsing on an early run of
// identical outcomes (at 0/n or n/n the Wilson interval narrows like
// z²/n, so a rare-event stream could otherwise stop long before the
// first success had a chance to appear).
type StopRule struct {
	// Z is the interval quantile (1.96 for 95%).
	Z float64
	// HalfWidth is the target half-width; a rule with HalfWidth <= 0
	// never converges (sampling runs the full grid).
	HalfWidth float64
	// MinTrials is the floor below which the rule never fires.
	MinTrials int
}

// Converged reports whether sampling of the stream may stop.
func (r StopRule) Converged(p Proportion) bool {
	if r.HalfWidth <= 0 || p.Trials < r.MinTrials {
		return false
	}
	lo, hi := p.WilsonCI(r.Z)
	return hi-lo <= 2*r.HalfWidth
}

// String renders "123/456 = 0.270".
func (p Proportion) String() string {
	return fmt.Sprintf("%d/%d = %.3f", p.Successes, p.Trials, p.Estimate())
}

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for fewer than two
// values).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns 0 for an empty
// slice and does not modify its input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	pos := q * float64(len(cp)-1)
	lo := int(pos)
	if lo == len(cp)-1 {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[lo+1]*frac
}

// Stratified combines per-stratum proportions with weights (e.g. one
// stratum per test case), returning the weighted coverage estimate.
// Weights are normalized internally; strata with zero trials contribute
// nothing.
func Stratified(strata []Proportion, weights []float64) (float64, error) {
	if len(strata) != len(weights) {
		return 0, fmt.Errorf("stats: %d strata but %d weights", len(strata), len(weights))
	}
	var wsum, acc float64
	for i, s := range strata {
		if weights[i] < 0 {
			return 0, fmt.Errorf("stats: negative weight %v", weights[i])
		}
		if s.Trials == 0 {
			continue
		}
		wsum += weights[i]
		acc += weights[i] * s.Estimate()
	}
	if wsum == 0 {
		return 0, nil
	}
	return acc / wsum, nil
}
