package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProportionEstimate(t *testing.T) {
	var p Proportion
	if got := p.Estimate(); got != 0 {
		t.Errorf("empty Estimate = %v, want 0", got)
	}
	p.Add(true)
	p.Add(true)
	p.Add(false)
	p.Add(true)
	if got := p.Estimate(); got != 0.75 {
		t.Errorf("Estimate = %v, want 0.75", got)
	}
	if got := p.String(); got != "3/4 = 0.750" {
		t.Errorf("String = %q", got)
	}
}

func TestWilsonCI(t *testing.T) {
	p := Proportion{Successes: 50, Trials: 100}
	lo, hi := p.WilsonCI(1.96)
	if lo >= 0.5 || hi <= 0.5 {
		t.Errorf("CI [%v, %v] does not contain the point estimate", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Errorf("CI [%v, %v] too wide for n=100", lo, hi)
	}

	// Near-boundary estimates stay in [0,1] (the Wilson advantage).
	edge := Proportion{Successes: 0, Trials: 20}
	lo, hi = edge.WilsonCI(1.96)
	if lo != 0 || hi <= 0 || hi >= 0.5 {
		t.Errorf("boundary CI = [%v, %v]", lo, hi)
	}

	// Empty sample: maximal uncertainty.
	lo, hi = Proportion{}.WilsonCI(1.96)
	if lo != 0 || hi != 1 {
		t.Errorf("empty CI = [%v, %v], want [0, 1]", lo, hi)
	}
}

// Property: the Wilson interval always contains the point estimate and
// stays within [0,1]; more trials never widen it (at fixed rate).
func TestQuickWilsonProperties(t *testing.T) {
	f := func(succ8, trials8 uint8) bool {
		trials := int(trials8%100) + 1
		succ := int(succ8) % (trials + 1)
		p := Proportion{Successes: succ, Trials: trials}
		lo, hi := p.WilsonCI(1.96)
		if lo < 0 || hi > 1 || lo > hi {
			return false
		}
		est := p.Estimate()
		if est < lo-1e-12 || est > hi+1e-12 {
			return false
		}
		// Scale up 4x at the same rate: the interval must shrink.
		p4 := Proportion{Successes: succ * 4, Trials: trials * 4}
		lo4, hi4 := p4.WilsonCI(1.96)
		return hi4-lo4 <= hi-lo+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWilsonCIEdgeCases(t *testing.T) {
	// 0/0: no information, maximal uncertainty.
	lo, hi := Proportion{}.WilsonCI(1.96)
	if lo != 0 || hi != 1 {
		t.Errorf("0/0 CI = [%v, %v], want [0, 1]", lo, hi)
	}
	// 0/n: lower bound pinned at 0, upper bound strictly inside (0, 1)
	// and shrinking with n.
	prev := 1.0
	for _, n := range []int{1, 10, 100, 1000} {
		lo, hi = Proportion{Successes: 0, Trials: n}.WilsonCI(1.96)
		if lo != 0 {
			t.Errorf("0/%d lo = %v, want 0", n, lo)
		}
		if hi <= 0 || hi >= prev {
			t.Errorf("0/%d hi = %v, want in (0, %v)", n, hi, prev)
		}
		prev = hi
	}
	// n/n mirrors 0/n: upper bound pinned at 1, lower bound rising.
	prev = 0
	for _, n := range []int{1, 10, 100, 1000} {
		lo, hi = Proportion{Successes: n, Trials: n}.WilsonCI(1.96)
		if hi < 1-1e-12 || hi > 1 {
			t.Errorf("%d/%d hi = %v, want 1", n, n, hi)
		}
		if lo <= prev && n > 1 {
			t.Errorf("%d/%d lo = %v, want > %v", n, n, lo, prev)
		}
		prev = lo
	}
}

func TestAddN(t *testing.T) {
	var p Proportion
	p.AddN(true, 3)
	p.AddN(false, 2)
	p.AddN(true, 0)  // no-op
	p.AddN(true, -5) // no-op
	if p.Successes != 3 || p.Trials != 5 {
		t.Errorf("AddN accumulated %d/%d, want 3/5", p.Successes, p.Trials)
	}
}

func TestStopRuleFloor(t *testing.T) {
	r := StopRule{Z: 1.96, HalfWidth: 0.05, MinTrials: 100}
	// Below the floor the rule never fires, even at 0/n where the
	// Wilson interval is already razor thin.
	for n := 0; n < 100; n++ {
		if r.Converged(Proportion{Successes: 0, Trials: n}) {
			t.Fatalf("rule fired at %d trials, below the %d floor", n, r.MinTrials)
		}
	}
	if !r.Converged(Proportion{Successes: 0, Trials: 100}) {
		t.Error("rule must fire at the floor when the interval is tight (0/100)")
	}
	// A maximally uncertain estimate at the floor must not stop:
	// 50/100 has a Wilson half-width near 0.097 > 0.05.
	if r.Converged(Proportion{Successes: 50, Trials: 100}) {
		t.Error("rule fired on a wide interval (50/100 at ±0.05)")
	}
	// Disabled rule never converges.
	off := StopRule{Z: 1.96, HalfWidth: 0, MinTrials: 0}
	if off.Converged(Proportion{Successes: 0, Trials: 1 << 20}) {
		t.Error("disabled rule (HalfWidth 0) converged")
	}
}

// Property: re-weighted pruned estimates equal exact estimates when
// every equivalence class has size 1 — AddN(x, 1) per representative is
// then literally Add(x), so pruning with trivial classes is the exact
// campaign.
func TestQuickSingletonClassReweighting(t *testing.T) {
	f := func(outcomes []bool) bool {
		var exact, pruned Proportion
		for _, o := range outcomes {
			exact.Add(o)
			pruned.AddN(o, 1)
		}
		return exact == pruned
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: AddN(x, n) is n repetitions of Add(x), and the stopping
// rule is monotone in the floor — raising MinTrials never lets a
// stopped stream keep running longer than the tighter rule allows.
func TestQuickAddNEquivalence(t *testing.T) {
	f := func(succ bool, n8 uint8) bool {
		n := int(n8)
		var a, b Proportion
		a.AddN(succ, n)
		for i := 0; i < n; i++ {
			b.Add(succ)
		}
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanAndStdDev(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := StdDev(xs); math.Abs(got-2.138) > 0.001 {
		t.Errorf("StdDev = %v, want ~2.138", got)
	}
	if got := StdDev([]float64{1}); got != 0 {
		t.Errorf("StdDev single = %v, want 0", got)
	}
}

func TestStratified(t *testing.T) {
	strata := []Proportion{
		{Successes: 9, Trials: 10}, // 0.9
		{Successes: 1, Trials: 10}, // 0.1
	}
	got, err := Stratified(strata, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if want := (3*0.9 + 1*0.1) / 4; math.Abs(got-want) > 1e-12 {
		t.Errorf("Stratified = %v, want %v", got, want)
	}

	// Empty strata contribute nothing.
	got, err = Stratified([]Proportion{{}, {Successes: 5, Trials: 10}}, []float64{100, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 {
		t.Errorf("Stratified with empty stratum = %v, want 0.5", got)
	}

	if _, err := Stratified(strata, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Stratified(strata, []float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
	got, err = Stratified(nil, nil)
	if err != nil || got != 0 {
		t.Errorf("Stratified(nil) = %v, %v", got, err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 10}, {0.25, 20}, {0.5, 30}, {0.75, 40}, {1, 50}, {0.125, 15},
		{-1, 10}, {2, 50},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(nil) = %v", got)
	}
	// Input must not be reordered.
	in := []float64{3, 1, 2}
	Quantile(in, 0.5)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

// Property: the quantile of any slice lies within [min, max] and is
// monotone in q.
func TestQuickQuantileProperties(t *testing.T) {
	f := func(raw []uint8, qa, qb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := float64(raw[0]), float64(raw[0])
		for i, r := range raw {
			xs[i] = float64(r)
			if xs[i] < lo {
				lo = xs[i]
			}
			if xs[i] > hi {
				hi = xs[i]
			}
		}
		q1, q2 := float64(qa)/255, float64(qb)/255
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, v2 := Quantile(xs, q1), Quantile(xs, q2)
		return v1 >= lo && v2 <= hi && v1 <= v2+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
