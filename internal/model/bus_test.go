package model

import (
	"testing"
	"testing/quick"
)

func TestBusResetAndInitialValues(t *testing.T) {
	sys, err := NewBuilder("init").
		AddSignal("in", Uint(16), AsSystemInput(), WithInitial(42)).
		AddSignal("out", Uint(8), AsSystemOutput(1), WithInitial(7)).
		AddModule("M", In("in"), Out("out")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	bus := NewBus(sys)
	if got := bus.Peek("in"); got != 42 {
		t.Errorf("Peek(in) = %d, want 42", got)
	}
	if got := bus.Peek("out"); got != 7 {
		t.Errorf("Peek(out) = %d, want 7", got)
	}
	bus.Poke("in", 99)
	bus.Reset()
	if got := bus.Peek("in"); got != 42 {
		t.Errorf("after Reset, Peek(in) = %d, want 42", got)
	}
}

func TestBusPokeMasksToWidth(t *testing.T) {
	sys := tinySystem(t)
	bus := NewBus(sys)
	bus.Poke("out", 0x1FF) // out is uint8
	if got := bus.Peek("out"); got != 0xFF {
		t.Errorf("Peek(out) = %#x, want 0xFF (masked to 8 bits)", got)
	}
	bus.PokeRaw("mid", 0x12345)
	if got := bus.PeekRaw("mid"); got != 0x2345 {
		t.Errorf("PeekRaw(mid) = %#x, want 0x2345 (masked to 16 bits)", got)
	}
}

func TestExecPortIO(t *testing.T) {
	sys := tinySystem(t)
	bus := NewBus(sys)
	bus.Poke("in", 1000)

	a, _ := sys.Module("A")
	ex := NewExec(bus, a, 5)
	if got := ex.NowMs(); got != 5 {
		t.Errorf("NowMs() = %d, want 5", got)
	}
	if got := ex.In(1); got != 1000 {
		t.Errorf("In(1) = %d, want 1000", got)
	}
	ex.Out(1, 123)
	ex.OutBool(2, true)
	if got := bus.Peek("mid"); got != 123 {
		t.Errorf("Peek(mid) = %d, want 123", got)
	}
	if got := bus.Peek("flag"); got != 1 {
		t.Errorf("Peek(flag) = %d, want 1", got)
	}

	b, _ := sys.Module("B")
	exB := NewExec(bus, b, 6)
	if !exB.InBool(2) {
		t.Error("InBool(2) = false, want true")
	}
}

func TestExecPanicsOnUnboundPort(t *testing.T) {
	sys := tinySystem(t)
	bus := NewBus(sys)
	a, _ := sys.Module("A")
	ex := NewExec(bus, a, 0)

	assertPanics(t, "In(2)", func() { ex.In(2) })
	assertPanics(t, "Out(3, 0)", func() { ex.Out(3, 0) })
}

func TestBusPanicsOnUnknownSignal(t *testing.T) {
	sys := tinySystem(t)
	bus := NewBus(sys)
	assertPanics(t, "Peek", func() { bus.Peek("nope") })
	assertPanics(t, "PeekRaw", func() { bus.PeekRaw("nope") })
	assertPanics(t, "Poke", func() { bus.Poke("nope", 1) })
	assertPanics(t, "PokeRaw", func() { bus.PokeRaw("nope", 1) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}

func TestReadHooksInterceptOnlyPortReads(t *testing.T) {
	sys := tinySystem(t)
	bus := NewBus(sys)
	bus.Poke("in", 100)

	var hookCalls int
	bus.OnRead(func(port PortRef, sig SignalID, raw Word) Word {
		hookCalls++
		if sig == "in" {
			return raw ^ 0x1 // flip bit 0 as the injector would
		}
		return raw
	})

	// Peek must not trigger hooks.
	if got := bus.Peek("in"); got != 100 {
		t.Errorf("Peek(in) = %d, want 100 (hooks must not apply)", got)
	}
	if hookCalls != 0 {
		t.Errorf("Peek triggered %d hook calls, want 0", hookCalls)
	}

	a, _ := sys.Module("A")
	ex := NewExec(bus, a, 0)
	if got := ex.In(1); got != 101 {
		t.Errorf("hooked In(1) = %d, want 101", got)
	}
	if hookCalls != 1 {
		t.Errorf("hook calls = %d, want 1", hookCalls)
	}
	// The stored value must be untouched (transient error semantics).
	if got := bus.Peek("in"); got != 100 {
		t.Errorf("stored value changed to %d after hooked read, want 100", got)
	}
}

func TestReadHooksChainInOrder(t *testing.T) {
	sys := tinySystem(t)
	bus := NewBus(sys)
	bus.Poke("in", 0)
	bus.OnRead(func(_ PortRef, _ SignalID, raw Word) Word { return raw + 1 })
	bus.OnRead(func(_ PortRef, _ SignalID, raw Word) Word { return raw * 10 })
	a, _ := sys.Module("A")
	if got := NewExec(bus, a, 0).In(1); got != 10 {
		t.Errorf("chained hooks In(1) = %d, want 10 ((0+1)*10)", got)
	}
}

func TestWriteHookSeesOldAndNew(t *testing.T) {
	sys := tinySystem(t)
	bus := NewBus(sys)
	bus.Poke("mid", 5)

	var gotOld, gotNew Word
	var gotPort PortRef
	bus.OnWrite(func(port PortRef, sig SignalID, oldRaw, newRaw Word) {
		if sig == "mid" {
			gotPort, gotOld, gotNew = port, oldRaw, newRaw
		}
	})
	a, _ := sys.Module("A")
	NewExec(bus, a, 0).Out(1, 9)
	if gotOld != 5 || gotNew != 9 {
		t.Errorf("write hook old/new = %d/%d, want 5/9", gotOld, gotNew)
	}
	if gotPort.Module != "A" || gotPort.Dir != DirOut || gotPort.Index != 1 {
		t.Errorf("write hook port = %+v, want A.out[1]", gotPort)
	}
}

func TestClearHooks(t *testing.T) {
	sys := tinySystem(t)
	bus := NewBus(sys)
	called := false
	bus.OnRead(func(_ PortRef, _ SignalID, raw Word) Word { called = true; return raw })
	bus.OnWrite(func(_ PortRef, _ SignalID, _, _ Word) { called = true })
	bus.ClearHooks()
	a, _ := sys.Module("A")
	ex := NewExec(bus, a, 0)
	ex.In(1)
	ex.Out(1, 1)
	if called {
		t.Error("hooks ran after ClearHooks")
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	sys := tinySystem(t)
	bus := NewBus(sys)
	bus.Poke("mid", 77)
	snap := bus.Snapshot()
	if snap["mid"] != 77 {
		t.Errorf("Snapshot[mid] = %d, want 77", snap["mid"])
	}
	snap["mid"] = 0
	if got := bus.Peek("mid"); got != 77 {
		t.Errorf("mutating snapshot changed bus value to %d", got)
	}
}

func TestSnapshotInto(t *testing.T) {
	sys := tinySystem(t)
	bus := NewBus(sys)
	bus.Poke("mid", 77)

	snap := bus.SnapshotInto(nil)
	if len(snap) != sys.NumSignals() {
		t.Fatalf("SnapshotInto returned %d values, want %d", len(snap), sys.NumSignals())
	}
	i, ok := sys.SignalIndex("mid")
	if !ok {
		t.Fatal("mid has no dense index")
	}
	if snap[i] != 77 {
		t.Errorf("snap[%d] = %d, want 77", i, snap[i])
	}

	// A big-enough buffer is reused in place, without reallocating.
	big := make([]Word, 0, sys.NumSignals()+4)
	bus.Poke("mid", 88)
	reused := bus.SnapshotInto(big)
	if &reused[0] != &big[:1][0] {
		t.Error("SnapshotInto reallocated despite sufficient capacity")
	}
	if reused[i] != 88 {
		t.Errorf("reused[%d] = %d, want 88", i, reused[i])
	}

	// Mutating the snapshot must not reach the bus.
	reused[i] = 0
	if got := bus.Peek("mid"); got != 88 {
		t.Errorf("mutating snapshot changed bus value to %d", got)
	}
}

// Property: Poke then Peek round-trips any value through the declared
// width for unsigned signals.
func TestQuickBusPokePeekRoundTrip(t *testing.T) {
	sys := tinySystem(t)
	bus := NewBus(sys)
	mid, _ := sys.Signal("mid")
	f := func(v Word) bool {
		bus.Poke("mid", v)
		return bus.Peek("mid") == mid.Type.FromRaw(mid.Type.ToRaw(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWriteFilterSubstitutesValue(t *testing.T) {
	sys := tinySystem(t)
	bus := NewBus(sys)
	bus.Poke("mid", 100)

	var sawOld, sawProposed Word
	bus.OnWriteFilter(func(port PortRef, sig SignalID, old, proposed Word) Word {
		if sig != "mid" {
			return proposed
		}
		sawOld, sawProposed = old, proposed
		if proposed > 200 {
			return old // hold last good value
		}
		return proposed
	})

	a, _ := sys.Module("A")
	ex := NewExec(bus, a, 0)
	ex.Out(1, 150)
	if got := bus.Peek("mid"); got != 150 {
		t.Errorf("plausible write filtered: %d", got)
	}
	ex.Out(1, 5000)
	if got := bus.Peek("mid"); got != 150 {
		t.Errorf("implausible write stored: %d, want held 150", got)
	}
	if sawOld != 150 || sawProposed != 5000 {
		t.Errorf("filter saw old/proposed = %d/%d", sawOld, sawProposed)
	}
}

func TestWriteFiltersChainAndHooksSeeFinal(t *testing.T) {
	sys := tinySystem(t)
	bus := NewBus(sys)
	bus.OnWriteFilter(func(_ PortRef, _ SignalID, _, proposed Word) Word { return proposed + 1 })
	bus.OnWriteFilter(func(_ PortRef, _ SignalID, _, proposed Word) Word { return proposed * 2 })
	var hookSaw Word
	bus.OnWrite(func(_ PortRef, sig SignalID, _, newRaw Word) {
		if sig == "mid" {
			hookSaw = newRaw
		}
	})
	a, _ := sys.Module("A")
	NewExec(bus, a, 0).Out(1, 10)
	if got := bus.Peek("mid"); got != 22 {
		t.Errorf("chained filters produced %d, want (10+1)*2", got)
	}
	if hookSaw != 22 {
		t.Errorf("write hook saw %d, want final 22", hookSaw)
	}
}

func TestPokeBypassesWriteFilters(t *testing.T) {
	sys := tinySystem(t)
	bus := NewBus(sys)
	bus.OnWriteFilter(func(_ PortRef, _ SignalID, _, _ Word) Word { return 0 })
	bus.Poke("mid", 77)
	if got := bus.Peek("mid"); got != 77 {
		t.Errorf("Poke filtered: %d", got)
	}
}
