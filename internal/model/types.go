package model

import (
	"fmt"
	"strconv"
)

// Word is the value carried by a signal. All signals are fixed-width
// integers (the paper's target is an 8/16-bit embedded platform); booleans
// are 1-bit words holding 0 or 1. Word is wide enough to hold any
// supported width (up to 32 bits unsigned is stored in the low bits of the
// int64 to keep masking trivial).
type Word = int64

// Type describes the value domain of a signal.
type Type struct {
	// Name is a human-readable type name, e.g. "uint16" or "bool".
	Name string
	// Width is the number of significant bits, 1..32. Writes to a signal
	// are masked to Width bits, which gives hardware-counter wrap-around
	// semantics for free.
	Width uint8
	// Signed selects two's-complement interpretation on reads.
	Signed bool
	// IsBool marks 1-bit boolean signals. The paper's EA mechanisms are
	// explicitly "not geared at boolean values" (Table 2), so placement
	// rules need to know.
	IsBool bool
}

// Uint returns an unsigned integer type of the given bit width.
func Uint(width uint8) Type {
	return Type{Name: "uint" + strconv.Itoa(int(width)), Width: width}
}

// Int returns a signed two's-complement integer type of the given width.
func Int(width uint8) Type {
	return Type{Name: "int" + strconv.Itoa(int(width)), Width: width, Signed: true}
}

// Bool returns the 1-bit boolean type.
func Bool() Type {
	return Type{Name: "bool", Width: 1, IsBool: true}
}

// Validate reports whether the type is well formed.
func (t Type) Validate() error {
	if t.Width < 1 || t.Width > 32 {
		return fmt.Errorf("model: type %q has unsupported width %d (want 1..32)", t.Name, t.Width)
	}
	if t.IsBool && t.Width != 1 {
		return fmt.Errorf("model: boolean type %q must have width 1, got %d", t.Name, t.Width)
	}
	if t.IsBool && t.Signed {
		return fmt.Errorf("model: boolean type %q cannot be signed", t.Name)
	}
	return nil
}

// Mask returns the bit mask selecting the significant bits of the type.
func (t Type) Mask() Word {
	return (Word(1) << t.Width) - 1
}

// Canon canonicalizes a raw word to the type's domain: the value is
// truncated to Width bits. The stored representation is always the masked
// unsigned pattern; interpretation as signed happens in FromRaw.
func (t Type) Canon(v Word) Word {
	return v & t.Mask()
}

// FromRaw interprets a stored (masked) bit pattern according to the type,
// sign-extending two's-complement values for signed types.
func (t Type) FromRaw(raw Word) Word {
	raw &= t.Mask()
	if t.Signed {
		signBit := Word(1) << (t.Width - 1)
		if raw&signBit != 0 {
			raw -= Word(1) << t.Width
		}
	}
	return raw
}

// ToRaw converts an interpreted value to the stored masked representation.
func (t Type) ToRaw(v Word) Word {
	return v & t.Mask()
}

// MaxUnsigned returns the largest storable raw value.
func (t Type) MaxUnsigned() Word {
	return t.Mask()
}

// String implements fmt.Stringer.
func (t Type) String() string { return t.Name }
