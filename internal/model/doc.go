// Package model implements the modular black-box software system model of
// Hiller, Jhumka and Suri (DSN 2002, Section 3).
//
// A system is a set of modules — generalized black boxes with numbered
// input and output ports — connected by signals, the abstract software
// channels for data communication (shared memory, messages, parameters).
// The model is split in two layers:
//
//   - A static description layer (System, ModuleDecl, Signal) used by the
//     propagation/effect analysis framework in internal/core. The analysis
//     only needs the wiring graph and per-signal metadata, never module
//     internals — modules stay black boxes.
//   - A runtime layer (Bus, Runnable, Exec) used to actually execute a
//     system under the slot-based scheduler in internal/sched, with
//     read/write hooks where the fault injector and the trace recorder
//     attach.
//
// Signals carry fixed-width integer words (Word). Widths are faithful to
// the embedded hardware the paper targets: a 16-bit pulse counter stays
// 16 bits wide, so bit-flip error models operate on realistic
// representations and counter wrap-around behaves like the real register.
package model
