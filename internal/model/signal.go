package model

// SignalID names a signal. Names follow the paper's Figure 1 (e.g.
// "PACNT", "pulscnt", "SetValue").
type SignalID string

// ModuleID names a module, e.g. "DIST_S" or "CALC".
type ModuleID string

// Kind classifies a signal's role at the system boundary.
type Kind int

// Signal kinds. A system input enters from the environment (sensors,
// hardware counters); a system output leaves across the system barrier
// (actuator registers); everything else is intermediate.
const (
	KindIntermediate Kind = iota + 1
	KindSystemInput
	KindSystemOutput
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindIntermediate:
		return "intermediate"
	case KindSystemInput:
		return "system-input"
	case KindSystemOutput:
		return "system-output"
	default:
		return "unknown"
	}
}

// Dir distinguishes input ports from output ports.
type Dir int

// Port directions.
const (
	DirIn Dir = iota + 1
	DirOut
)

// String implements fmt.Stringer.
func (d Dir) String() string {
	switch d {
	case DirIn:
		return "in"
	case DirOut:
		return "out"
	default:
		return "unknown"
	}
}

// PortRef identifies one port of one module. Indices are 1-based,
// matching the paper's numbering ("PACNT is input #1 of DIST_S, SetValue
// is output #2 of CALC").
type PortRef struct {
	Module ModuleID
	Dir    Dir
	Index  int
}

// Signal is the static description of one software channel.
type Signal struct {
	// ID is the signal name.
	ID SignalID
	// Type is the value domain.
	Type Type
	// Kind is the boundary classification.
	Kind Kind
	// Initial is the reset value (interpreted, not raw).
	Initial Word
	// Criticality is the designer-assigned output criticality C_o in
	// [0,1] (paper Section 8). It is only meaningful for system outputs;
	// zero elsewhere.
	Criticality float64
	// Doc is an optional human-readable description.
	Doc string
}

// IsBool reports whether the signal carries a boolean value.
func (s *Signal) IsBool() bool { return s.Type.IsBool }
