package model

import (
	"encoding/json"
	"fmt"
)

// systemJSON is the serialized form of a System.
type systemJSON struct {
	Name    string       `json:"name"`
	Signals []signalJSON `json:"signals"`
	Modules []moduleJSON `json:"modules"`
}

type signalJSON struct {
	ID          SignalID `json:"id"`
	Width       uint8    `json:"width"`
	Signed      bool     `json:"signed,omitempty"`
	Bool        bool     `json:"bool,omitempty"`
	Kind        string   `json:"kind"`
	Initial     Word     `json:"initial,omitempty"`
	Criticality float64  `json:"criticality,omitempty"`
	Doc         string   `json:"doc,omitempty"`
}

type moduleJSON struct {
	ID SignalID `json:"id"`
	// Inputs and Outputs list signal IDs in port order (1-based ports).
	Inputs  []SignalID `json:"inputs"`
	Outputs []SignalID `json:"outputs"`
	Doc     string     `json:"doc,omitempty"`
}

func kindToJSON(k Kind) string {
	switch k {
	case KindSystemInput:
		return "input"
	case KindSystemOutput:
		return "output"
	default:
		return "intermediate"
	}
}

func kindFromJSON(s string) (Kind, error) {
	switch s {
	case "input":
		return KindSystemInput, nil
	case "output":
		return KindSystemOutput, nil
	case "intermediate", "":
		return KindIntermediate, nil
	default:
		return 0, fmt.Errorf("model: unknown signal kind %q", s)
	}
}

// MarshalJSON serializes the system description: signals with their
// types and boundary roles, modules with their port bindings. The
// encoding captures everything the analysis framework needs — module
// behaviour (Runnable) is code, not data, and is not serialized.
func (s *System) MarshalJSON() ([]byte, error) {
	out := systemJSON{Name: s.name}
	for _, sig := range s.Signals() {
		out.Signals = append(out.Signals, signalJSON{
			ID:          sig.ID,
			Width:       sig.Type.Width,
			Signed:      sig.Type.Signed,
			Bool:        sig.Type.IsBool,
			Kind:        kindToJSON(sig.Kind),
			Initial:     sig.Initial,
			Criticality: sig.Criticality,
			Doc:         sig.Doc,
		})
	}
	for _, m := range s.Modules() {
		mj := moduleJSON{ID: SignalID(m.ID), Doc: m.Doc}
		for _, in := range m.Inputs {
			mj.Inputs = append(mj.Inputs, in.Signal)
		}
		for _, op := range m.Outputs {
			mj.Outputs = append(mj.Outputs, op.Signal)
		}
		out.Modules = append(out.Modules, mj)
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalSystem reconstructs a validated System from MarshalJSON
// output.
func UnmarshalSystem(data []byte) (*System, error) {
	var in systemJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("model: decode system: %w", err)
	}
	b := NewBuilder(in.Name)
	for _, sj := range in.Signals {
		var t Type
		switch {
		case sj.Bool:
			t = Bool()
		case sj.Signed:
			t = Int(sj.Width)
		default:
			t = Uint(sj.Width)
		}
		kind, err := kindFromJSON(sj.Kind)
		if err != nil {
			return nil, err
		}
		opts := []SignalOption{WithInitial(sj.Initial), WithDoc(sj.Doc)}
		switch kind {
		case KindSystemInput:
			opts = append(opts, AsSystemInput())
		case KindSystemOutput:
			opts = append(opts, AsSystemOutput(sj.Criticality))
		}
		b.AddSignal(sj.ID, t, opts...)
	}
	for _, mj := range in.Modules {
		b.AddModule(ModuleID(mj.ID), mj.Inputs, mj.Outputs)
	}
	sys, err := b.Build()
	if err != nil {
		return nil, err
	}
	// Docs are not a Builder option; restore them directly.
	for _, mj := range in.Modules {
		if m, ok := sys.Module(ModuleID(mj.ID)); ok {
			m.Doc = mj.Doc
		}
	}
	return sys, nil
}
