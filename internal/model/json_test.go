package model

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSystemJSONRoundTrip(t *testing.T) {
	orig := tinySystem(t)
	data, err := orig.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSystem(data)
	if err != nil {
		t.Fatal(err)
	}

	if got.Name() != orig.Name() {
		t.Errorf("name %q != %q", got.Name(), orig.Name())
	}
	if len(got.Signals()) != len(orig.Signals()) {
		t.Fatalf("signal count %d != %d", len(got.Signals()), len(orig.Signals()))
	}
	for _, want := range orig.Signals() {
		sig, ok := got.Signal(want.ID)
		if !ok {
			t.Fatalf("signal %s lost", want.ID)
		}
		if sig.Type != want.Type || sig.Kind != want.Kind ||
			sig.Initial != want.Initial || sig.Criticality != want.Criticality {
			t.Errorf("signal %s = %+v, want %+v", want.ID, sig, want)
		}
	}
	wantEdges := orig.Edges()
	gotEdges := got.Edges()
	if len(wantEdges) != len(gotEdges) {
		t.Fatalf("edges %d != %d", len(gotEdges), len(wantEdges))
	}
	for i := range wantEdges {
		if wantEdges[i] != gotEdges[i] {
			t.Errorf("edge %d: %+v != %+v", i, gotEdges[i], wantEdges[i])
		}
	}
}

func TestSystemJSONPreservesDocs(t *testing.T) {
	sys, err := NewBuilder("docs").
		AddSignal("in", Uint(8), AsSystemInput(), WithDoc("sensor feed")).
		AddSignal("out", Uint(8), AsSystemOutput(0.5)).
		AddModule("M", In("in"), Out("out")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	data, err := sys.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "sensor feed") {
		t.Error("doc string not serialized")
	}
	got, err := UnmarshalSystem(data)
	if err != nil {
		t.Fatal(err)
	}
	sig, _ := got.Signal("in")
	if sig.Doc != "sensor feed" {
		t.Errorf("doc = %q", sig.Doc)
	}
	outSig, _ := got.Signal("out")
	if outSig.Criticality != 0.5 {
		t.Errorf("criticality = %v, want 0.5", outSig.Criticality)
	}
}

func TestUnmarshalSystemRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalSystem([]byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := UnmarshalSystem([]byte(`{"name":"x","signals":[{"id":"a","width":8,"kind":"nonsense"}]}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	// Structurally invalid system: module references missing signal.
	bad := `{"name":"x","signals":[],"modules":[{"id":"M","inputs":["ghost"],"outputs":[]}]}`
	if _, err := UnmarshalSystem([]byte(bad)); err == nil {
		t.Error("invalid structure accepted")
	}
}

// TestMultiOutputCriticalityRoundTrip serializes a system with several
// weighted outputs (Eq. 3/4 inputs) and checks every weight survives,
// including the endpoints 0 and 1.
func TestMultiOutputCriticalityRoundTrip(t *testing.T) {
	weights := map[SignalID]float64{
		"primary":   1.0,
		"secondary": 0.25,
		"telemetry": 0.0625,
		"scrap":     0,
	}
	b := NewBuilder("weighted").
		AddSignal("in", Uint(8), AsSystemInput()).
		AddSignal("primary", Uint(16), AsSystemOutput(weights["primary"])).
		AddSignal("secondary", Int(12), AsSystemOutput(weights["secondary"])).
		AddSignal("telemetry", Uint(8), AsSystemOutput(weights["telemetry"])).
		AddSignal("scrap", Bool(), AsSystemOutput(weights["scrap"])).
		AddModule("M", In("in"), Out("primary", "secondary", "telemetry", "scrap"))
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	data, err := sys.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSystem(data)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(got.SystemOutputs()); n != 4 {
		t.Fatalf("system outputs = %d, want 4", n)
	}
	for id, want := range weights {
		sig, ok := got.Signal(id)
		if !ok {
			t.Fatalf("output %s lost", id)
		}
		if sig.Criticality != want {
			t.Errorf("criticality(%s) = %v, want %v", id, sig.Criticality, want)
		}
	}
}

// TestModulePortOrderStable checks module port bindings keep their
// declared order and indices across a marshal/unmarshal cycle — the
// runtime addresses ports positionally, so a reordering would silently
// rewire a JSON-loaded target.
func TestModulePortOrderStable(t *testing.T) {
	sys, err := NewBuilder("ports").
		AddSignal("s1", Uint(8), AsSystemInput()).
		AddSignal("s2", Uint(8), AsSystemInput()).
		AddSignal("s3", Uint(8), AsSystemInput()).
		AddSignal("o1", Uint(8)).
		AddSignal("o2", Uint(8)).
		AddSignal("out", Uint(8), AsSystemOutput(1)).
		AddModule("M", In("s3", "s1", "s2"), Out("o2", "o1")).
		AddModule("N", In("o1", "o2"), Out("out")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	data, err := sys.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSystem(data)
	if err != nil {
		t.Fatal(err)
	}
	mod, ok := got.Module("M")
	if !ok {
		t.Fatal("module M lost")
	}
	wantIn := []SignalID{"s3", "s1", "s2"}
	for i, want := range wantIn {
		if mod.Inputs[i].Index != i+1 || mod.Inputs[i].Signal != want {
			t.Errorf("input port %d = %+v, want index %d signal %s",
				i, mod.Inputs[i], i+1, want)
		}
	}
	wantOut := []SignalID{"o2", "o1"}
	for i, want := range wantOut {
		if mod.Outputs[i].Index != i+1 || mod.Outputs[i].Signal != want {
			t.Errorf("output port %d = %+v, want index %d signal %s",
				i, mod.Outputs[i], i+1, want)
		}
	}
	// A second cycle must be byte-stable (canonical ordering).
	again, err := got.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Error("second marshal not byte-identical to the first")
	}
}

// TestUnmarshalRejectsDanglingPorts covers dangling signal references
// in both directions of a module's port lists.
func TestUnmarshalRejectsDanglingPorts(t *testing.T) {
	sys, err := NewBuilder("ok").
		AddSignal("in", Uint(8), AsSystemInput()).
		AddSignal("out", Uint(8), AsSystemOutput(1)).
		AddModule("M", In("in"), Out("out")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	data, err := sys.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ name, from, to string }{
		{"dangling-input", `"in"`, `"missing_in"`},
		{"dangling-output", `"out"`, `"missing_out"`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Corrupt only the module port list, leaving the signal
			// table intact: replace the second occurrence (the port
			// reference), not the signal declaration.
			s := string(data)
			i := strings.Index(s, tc.from)
			if i < 0 {
				t.Fatal("fixture missing signal reference")
			}
			j := strings.Index(s[i+len(tc.from):], tc.from)
			if j < 0 {
				t.Fatal("fixture has only one occurrence")
			}
			pos := i + len(tc.from) + j
			bad := s[:pos] + tc.to + s[pos+len(tc.from):]
			if _, err := UnmarshalSystem([]byte(bad)); err == nil {
				t.Errorf("dangling port reference accepted:\n%s", bad)
			}
		})
	}
}

// Property: signed/unsigned/bool types of any width survive the round
// trip.
func TestQuickSignalTypeRoundTrip(t *testing.T) {
	f := func(width8 uint8, signed, boolean bool) bool {
		width := width8%32 + 1
		var typ Type
		switch {
		case boolean:
			typ = Bool()
		case signed:
			typ = Int(width)
		default:
			typ = Uint(width)
		}
		sys, err := NewBuilder("rt").
			AddSignal("in", typ, AsSystemInput()).
			AddSignal("out", Uint(8), AsSystemOutput(1)).
			AddModule("M", In("in"), Out("out")).
			Build()
		if err != nil {
			return false
		}
		data, err := sys.MarshalJSON()
		if err != nil {
			return false
		}
		got, err := UnmarshalSystem(data)
		if err != nil {
			return false
		}
		sig, ok := got.Signal("in")
		return ok && sig.Type == typ
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
