package model

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSystemJSONRoundTrip(t *testing.T) {
	orig := tinySystem(t)
	data, err := orig.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSystem(data)
	if err != nil {
		t.Fatal(err)
	}

	if got.Name() != orig.Name() {
		t.Errorf("name %q != %q", got.Name(), orig.Name())
	}
	if len(got.Signals()) != len(orig.Signals()) {
		t.Fatalf("signal count %d != %d", len(got.Signals()), len(orig.Signals()))
	}
	for _, want := range orig.Signals() {
		sig, ok := got.Signal(want.ID)
		if !ok {
			t.Fatalf("signal %s lost", want.ID)
		}
		if sig.Type != want.Type || sig.Kind != want.Kind ||
			sig.Initial != want.Initial || sig.Criticality != want.Criticality {
			t.Errorf("signal %s = %+v, want %+v", want.ID, sig, want)
		}
	}
	wantEdges := orig.Edges()
	gotEdges := got.Edges()
	if len(wantEdges) != len(gotEdges) {
		t.Fatalf("edges %d != %d", len(gotEdges), len(wantEdges))
	}
	for i := range wantEdges {
		if wantEdges[i] != gotEdges[i] {
			t.Errorf("edge %d: %+v != %+v", i, gotEdges[i], wantEdges[i])
		}
	}
}

func TestSystemJSONPreservesDocs(t *testing.T) {
	sys, err := NewBuilder("docs").
		AddSignal("in", Uint(8), AsSystemInput(), WithDoc("sensor feed")).
		AddSignal("out", Uint(8), AsSystemOutput(0.5)).
		AddModule("M", In("in"), Out("out")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	data, err := sys.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "sensor feed") {
		t.Error("doc string not serialized")
	}
	got, err := UnmarshalSystem(data)
	if err != nil {
		t.Fatal(err)
	}
	sig, _ := got.Signal("in")
	if sig.Doc != "sensor feed" {
		t.Errorf("doc = %q", sig.Doc)
	}
	outSig, _ := got.Signal("out")
	if outSig.Criticality != 0.5 {
		t.Errorf("criticality = %v, want 0.5", outSig.Criticality)
	}
}

func TestUnmarshalSystemRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalSystem([]byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := UnmarshalSystem([]byte(`{"name":"x","signals":[{"id":"a","width":8,"kind":"nonsense"}]}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	// Structurally invalid system: module references missing signal.
	bad := `{"name":"x","signals":[],"modules":[{"id":"M","inputs":["ghost"],"outputs":[]}]}`
	if _, err := UnmarshalSystem([]byte(bad)); err == nil {
		t.Error("invalid structure accepted")
	}
}

// Property: signed/unsigned/bool types of any width survive the round
// trip.
func TestQuickSignalTypeRoundTrip(t *testing.T) {
	f := func(width8 uint8, signed, boolean bool) bool {
		width := width8%32 + 1
		var typ Type
		switch {
		case boolean:
			typ = Bool()
		case signed:
			typ = Int(width)
		default:
			typ = Uint(width)
		}
		sys, err := NewBuilder("rt").
			AddSignal("in", typ, AsSystemInput()).
			AddSignal("out", Uint(8), AsSystemOutput(1)).
			AddModule("M", In("in"), Out("out")).
			Build()
		if err != nil {
			return false
		}
		data, err := sys.MarshalJSON()
		if err != nil {
			return false
		}
		got, err := UnmarshalSystem(data)
		if err != nil {
			return false
		}
		sig, ok := got.Signal("in")
		return ok && sig.Type == typ
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
