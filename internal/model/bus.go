package model

import "fmt"

// ReadHook intercepts a module's read of a signal. The fault injector
// uses read hooks to realize transient errors: the stored value stays
// intact but the reading module observes a corrupted word, matching
// injection "in the input signals of the modules" (paper Section 5.3).
// The hook receives the reading port and the raw stored value and returns
// the raw value the module should observe.
type ReadHook func(port PortRef, sig SignalID, raw Word) Word

// WriteHook observes a module's write to a signal, after width masking.
// The trace recorder attaches here.
type WriteHook func(port PortRef, sig SignalID, oldRaw, newRaw Word)

// WriteFilter may replace the value a module writes to a signal before
// it is stored. Error recovery mechanisms (containment wrappers) attach
// here: an implausible output can be substituted with a recovered value
// before it propagates. Filters receive and return interpreted values.
type WriteFilter func(port PortRef, sig SignalID, old, proposed Word) Word

// Bus holds the current value of every signal of a system and mediates
// all port I/O. It is the runtime counterpart of the static wiring graph.
// A Bus is not safe for concurrent use; the slot-based scheduler is
// strictly sequential, like the paper's single-processor target.
//
// Storage is a flat slice indexed by the system's dense signal indices
// (System.SignalIndex); the string-keyed methods resolve the index at
// the edge and the index-based methods are the allocation-free fast path
// used by the runtime layer.
type Bus struct {
	sys     *System
	values  []Word // raw (masked) representations, dense signal index
	reads   []ReadHook
	writes  []WriteHook
	filters []WriteFilter
}

// NewBus creates a bus for the system with every signal at its declared
// initial value.
func NewBus(sys *System) *Bus {
	b := &Bus{
		sys:    sys,
		values: make([]Word, sys.NumSignals()),
	}
	b.Reset()
	return b
}

// System returns the static description this bus instantiates.
func (b *Bus) System() *System { return b.sys }

// Reset restores every signal to its declared initial value and keeps
// installed hooks.
func (b *Bus) Reset() {
	for i, sig := range b.sys.sigList {
		b.values[i] = sig.Type.ToRaw(sig.Initial)
	}
}

// OnRead installs a read hook. Hooks run in installation order, each
// seeing the previous hook's result.
func (b *Bus) OnRead(h ReadHook) { b.reads = append(b.reads, h) }

// OnWrite installs a write hook. Hooks run in installation order.
func (b *Bus) OnWrite(h WriteHook) { b.writes = append(b.writes, h) }

// OnWriteFilter installs a write filter. Filters run in installation
// order, each seeing the previous filter's result, before write hooks
// observe the final stored value.
func (b *Bus) OnWriteFilter(f WriteFilter) { b.filters = append(b.filters, f) }

// ClearHooks removes all read hooks, write hooks and write filters. The
// backing arrays are kept so re-installing hooks after a reset does not
// allocate.
func (b *Bus) ClearHooks() {
	b.reads = b.reads[:0]
	b.writes = b.writes[:0]
	b.filters = b.filters[:0]
}

// index resolves a signal to its dense index, panicking on unknown IDs.
func (b *Bus) index(op string, id SignalID) int {
	i, ok := b.sys.sigIdx[id]
	if !ok {
		panic(fmt.Sprintf("model: %s of unknown signal %q", op, id))
	}
	return i
}

// Peek returns the interpreted value of a signal without triggering read
// hooks. Monitors (EAs, trace recorders, failure classifiers) use Peek so
// that observing a signal can never perturb an experiment.
func (b *Bus) Peek(id SignalID) Word {
	return b.PeekIdx(b.index("Peek", id))
}

// PeekIdx is Peek by dense signal index (System.SignalIndex).
func (b *Bus) PeekIdx(i int) Word {
	return b.sys.sigList[i].Type.FromRaw(b.values[i])
}

// PeekRaw returns the stored bit pattern of a signal without hooks.
func (b *Bus) PeekRaw(id SignalID) Word {
	return b.values[b.index("PeekRaw", id)]
}

// Poke overwrites the stored value of a signal (interpreted domain)
// without triggering write hooks. The environment simulation uses Poke to
// drive system inputs; permanent-fault injectors use it to corrupt state.
func (b *Bus) Poke(id SignalID, v Word) {
	b.PokeIdx(b.index("Poke", id), v)
}

// PokeIdx is Poke by dense signal index.
func (b *Bus) PokeIdx(i int, v Word) {
	b.values[i] = b.sys.sigList[i].Type.ToRaw(v)
}

// PokeRaw overwrites the stored bit pattern without hooks, masking to the
// signal width.
func (b *Bus) PokeRaw(id SignalID, raw Word) {
	i := b.index("PokeRaw", id)
	b.values[i] = raw & b.sys.sigList[i].Type.Mask()
}

// read performs a hooked port read, returning the interpreted value.
func (b *Bus) read(port PortRef, id SignalID) Word {
	i := b.index("read", id)
	return b.readIdx(port, id, i, b.sys.sigList[i])
}

// readIdx is the fast path of read: the caller has already resolved the
// signal's dense index and descriptor (ModuleDecl caches both per port).
func (b *Bus) readIdx(port PortRef, id SignalID, i int, sig *Signal) Word {
	raw := b.values[i]
	for _, h := range b.reads {
		raw = h(port, id, raw) & sig.Type.Mask()
	}
	return sig.Type.FromRaw(raw)
}

// write performs a filtered, hooked port write of an interpreted value.
func (b *Bus) write(port PortRef, id SignalID, v Word) {
	i := b.index("write", id)
	b.writeIdx(port, id, i, b.sys.sigList[i], v)
}

// writeIdx is the fast path of write, mirroring readIdx.
func (b *Bus) writeIdx(port PortRef, id SignalID, i int, sig *Signal, v Word) {
	oldRaw := b.values[i]
	if len(b.filters) > 0 {
		old := sig.Type.FromRaw(oldRaw)
		for _, f := range b.filters {
			v = f(port, id, old, v)
		}
	}
	newRaw := sig.Type.ToRaw(v)
	b.values[i] = newRaw
	for _, h := range b.writes {
		h(port, id, oldRaw, newRaw)
	}
}

// Snapshot copies the raw value of every signal, keyed by signal ID.
func (b *Bus) Snapshot() map[SignalID]Word {
	out := make(map[SignalID]Word, len(b.values))
	for i, id := range b.sys.sigOrder {
		out[id] = b.values[i]
	}
	return out
}

// SnapshotInto copies the raw value of every signal into dst, ordered by
// dense signal index, and returns the filled slice. It reuses dst's
// backing array when the capacity suffices, so recording paths can
// snapshot every period without allocating.
func (b *Bus) SnapshotInto(dst []Word) []Word {
	if cap(dst) < len(b.values) {
		dst = make([]Word, len(b.values))
	}
	dst = dst[:len(b.values)]
	copy(dst, b.values)
	return dst
}
