package model

import "fmt"

// ReadHook intercepts a module's read of a signal. The fault injector
// uses read hooks to realize transient errors: the stored value stays
// intact but the reading module observes a corrupted word, matching
// injection "in the input signals of the modules" (paper Section 5.3).
// The hook receives the reading port and the raw stored value and returns
// the raw value the module should observe.
type ReadHook func(port PortRef, sig SignalID, raw Word) Word

// WriteHook observes a module's write to a signal, after width masking.
// The trace recorder attaches here.
type WriteHook func(port PortRef, sig SignalID, oldRaw, newRaw Word)

// WriteFilter may replace the value a module writes to a signal before
// it is stored. Error recovery mechanisms (containment wrappers) attach
// here: an implausible output can be substituted with a recovered value
// before it propagates. Filters receive and return interpreted values.
type WriteFilter func(port PortRef, sig SignalID, old, proposed Word) Word

// Bus holds the current value of every signal of a system and mediates
// all port I/O. It is the runtime counterpart of the static wiring graph.
// A Bus is not safe for concurrent use; the slot-based scheduler is
// strictly sequential, like the paper's single-processor target.
type Bus struct {
	sys     *System
	values  map[SignalID]Word // raw (masked) representations
	reads   []ReadHook
	writes  []WriteHook
	filters []WriteFilter
}

// NewBus creates a bus for the system with every signal at its declared
// initial value.
func NewBus(sys *System) *Bus {
	b := &Bus{
		sys:    sys,
		values: make(map[SignalID]Word, len(sys.sigOrder)),
	}
	b.Reset()
	return b
}

// System returns the static description this bus instantiates.
func (b *Bus) System() *System { return b.sys }

// Reset restores every signal to its declared initial value and keeps
// installed hooks.
func (b *Bus) Reset() {
	for _, sig := range b.sys.Signals() {
		b.values[sig.ID] = sig.Type.ToRaw(sig.Initial)
	}
}

// OnRead installs a read hook. Hooks run in installation order, each
// seeing the previous hook's result.
func (b *Bus) OnRead(h ReadHook) { b.reads = append(b.reads, h) }

// OnWrite installs a write hook. Hooks run in installation order.
func (b *Bus) OnWrite(h WriteHook) { b.writes = append(b.writes, h) }

// OnWriteFilter installs a write filter. Filters run in installation
// order, each seeing the previous filter's result, before write hooks
// observe the final stored value.
func (b *Bus) OnWriteFilter(f WriteFilter) { b.filters = append(b.filters, f) }

// ClearHooks removes all read hooks, write hooks and write filters.
func (b *Bus) ClearHooks() {
	b.reads = nil
	b.writes = nil
	b.filters = nil
}

// Peek returns the interpreted value of a signal without triggering read
// hooks. Monitors (EAs, trace recorders, failure classifiers) use Peek so
// that observing a signal can never perturb an experiment.
func (b *Bus) Peek(id SignalID) Word {
	sig, ok := b.sys.Signal(id)
	if !ok {
		panic(fmt.Sprintf("model: Peek of unknown signal %q", id))
	}
	return sig.Type.FromRaw(b.values[id])
}

// PeekRaw returns the stored bit pattern of a signal without hooks.
func (b *Bus) PeekRaw(id SignalID) Word {
	if _, ok := b.sys.Signal(id); !ok {
		panic(fmt.Sprintf("model: PeekRaw of unknown signal %q", id))
	}
	return b.values[id]
}

// Poke overwrites the stored value of a signal (interpreted domain)
// without triggering write hooks. The environment simulation uses Poke to
// drive system inputs; permanent-fault injectors use it to corrupt state.
func (b *Bus) Poke(id SignalID, v Word) {
	sig, ok := b.sys.Signal(id)
	if !ok {
		panic(fmt.Sprintf("model: Poke of unknown signal %q", id))
	}
	b.values[id] = sig.Type.ToRaw(v)
}

// PokeRaw overwrites the stored bit pattern without hooks, masking to the
// signal width.
func (b *Bus) PokeRaw(id SignalID, raw Word) {
	sig, ok := b.sys.Signal(id)
	if !ok {
		panic(fmt.Sprintf("model: PokeRaw of unknown signal %q", id))
	}
	b.values[id] = raw & sig.Type.Mask()
}

// read performs a hooked port read, returning the interpreted value.
func (b *Bus) read(port PortRef, id SignalID) Word {
	sig, ok := b.sys.Signal(id)
	if !ok {
		panic(fmt.Sprintf("model: read of unknown signal %q", id))
	}
	raw := b.values[id]
	for _, h := range b.reads {
		raw = h(port, id, raw) & sig.Type.Mask()
	}
	return sig.Type.FromRaw(raw)
}

// write performs a filtered, hooked port write of an interpreted value.
func (b *Bus) write(port PortRef, id SignalID, v Word) {
	sig, ok := b.sys.Signal(id)
	if !ok {
		panic(fmt.Sprintf("model: write of unknown signal %q", id))
	}
	oldRaw := b.values[id]
	if len(b.filters) > 0 {
		old := sig.Type.FromRaw(oldRaw)
		for _, f := range b.filters {
			v = f(port, id, old, v)
		}
	}
	newRaw := sig.Type.ToRaw(v)
	b.values[id] = newRaw
	for _, h := range b.writes {
		h(port, id, oldRaw, newRaw)
	}
}

// Snapshot copies the raw value of every signal, keyed by signal ID.
func (b *Bus) Snapshot() map[SignalID]Word {
	out := make(map[SignalID]Word, len(b.values))
	for k, v := range b.values {
		out[k] = v
	}
	return out
}
