package model

import (
	"strings"
	"testing"
)

// tinySystem builds a two-module chain used across tests:
//
//	in -> [A] -> mid -> [B] -> out
//
// with an extra boolean flag produced by A and consumed by B.
func tinySystem(t *testing.T) *System {
	t.Helper()
	sys, err := NewBuilder("tiny").
		AddSignal("in", Uint(16), AsSystemInput()).
		AddSignal("mid", Uint(16)).
		AddSignal("flag", Bool()).
		AddSignal("out", Uint(8), AsSystemOutput(1.0)).
		AddModule("A", In("in"), Out("mid", "flag")).
		AddModule("B", In("mid", "flag"), Out("out")).
		Build()
	if err != nil {
		t.Fatalf("Build() error: %v", err)
	}
	return sys
}

func TestBuilderBuildsValidSystem(t *testing.T) {
	sys := tinySystem(t)
	if got := sys.Name(); got != "tiny" {
		t.Errorf("Name() = %q, want %q", got, "tiny")
	}
	if got := len(sys.Modules()); got != 2 {
		t.Errorf("len(Modules()) = %d, want 2", got)
	}
	if got := len(sys.Signals()); got != 4 {
		t.Errorf("len(Signals()) = %d, want 4", got)
	}
}

func TestSystemBoundaryClassification(t *testing.T) {
	sys := tinySystem(t)
	if got := sys.SystemInputs(); len(got) != 1 || got[0] != "in" {
		t.Errorf("SystemInputs() = %v, want [in]", got)
	}
	if got := sys.SystemOutputs(); len(got) != 1 || got[0] != "out" {
		t.Errorf("SystemOutputs() = %v, want [out]", got)
	}
}

func TestProducersAndConsumers(t *testing.T) {
	sys := tinySystem(t)

	p, ok := sys.ProducerOf("mid")
	if !ok {
		t.Fatal("ProducerOf(mid) not found")
	}
	if p.Module != "A" || p.Index != 1 || p.Dir != DirOut {
		t.Errorf("ProducerOf(mid) = %+v, want A.out[1]", p)
	}

	if _, ok := sys.ProducerOf("in"); ok {
		t.Error("ProducerOf(in) should not exist for a system input")
	}

	cons := sys.ConsumersOf("mid")
	if len(cons) != 1 || cons[0].Module != "B" || cons[0].Index != 1 {
		t.Errorf("ConsumersOf(mid) = %+v, want [B.in[1]]", cons)
	}
	if got := sys.ConsumersOf("out"); len(got) != 0 {
		t.Errorf("ConsumersOf(out) = %v, want empty", got)
	}
}

func TestEdgesEnumeratesAllIOPairs(t *testing.T) {
	sys := tinySystem(t)
	edges := sys.Edges()
	// A: 1 input x 2 outputs, B: 2 inputs x 1 output -> 4 edges.
	if len(edges) != 4 {
		t.Fatalf("len(Edges()) = %d, want 4", len(edges))
	}
	want := []Edge{
		{Module: "A", In: 1, Out: 1, From: "in", To: "mid"},
		{Module: "A", In: 1, Out: 2, From: "in", To: "flag"},
		{Module: "B", In: 1, Out: 1, From: "mid", To: "out"},
		{Module: "B", In: 2, Out: 1, From: "flag", To: "out"},
	}
	for i, e := range edges {
		if e != want[i] {
			t.Errorf("Edges()[%d] = %+v, want %+v", i, e, want[i])
		}
	}
}

func TestOutEdgesInEdges(t *testing.T) {
	sys := tinySystem(t)
	if got := sys.OutEdges("in"); len(got) != 2 {
		t.Errorf("OutEdges(in) has %d edges, want 2", len(got))
	}
	in := sys.InEdges("out")
	if len(in) != 2 {
		t.Fatalf("InEdges(out) has %d edges, want 2", len(in))
	}
	for _, e := range in {
		if e.To != "out" {
			t.Errorf("InEdges(out) contains edge to %q", e.To)
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	tests := []struct {
		name    string
		build   func() (*System, error)
		wantSub string
	}{
		{
			name: "duplicate signal",
			build: func() (*System, error) {
				return NewBuilder("x").
					AddSignal("s", Uint(8)).
					AddSignal("s", Uint(8)).
					Build()
			},
			wantSub: "duplicate signal",
		},
		{
			name: "duplicate module",
			build: func() (*System, error) {
				return NewBuilder("x").
					AddSignal("s", Uint(8), AsSystemInput()).
					AddSignal("o", Uint(8), AsSystemOutput(1)).
					AddModule("M", In("s"), Out("o")).
					AddModule("M", In("s"), Out()).
					Build()
			},
			wantSub: "duplicate module",
		},
		{
			name: "undeclared signal",
			build: func() (*System, error) {
				return NewBuilder("x").
					AddModule("M", In("ghost"), Out()).
					Build()
			},
			wantSub: "undeclared signal",
		},
		{
			name: "two producers",
			build: func() (*System, error) {
				return NewBuilder("x").
					AddSignal("in", Uint(8), AsSystemInput()).
					AddSignal("s", Uint(8)).
					AddModule("M1", In("in"), Out("s")).
					AddModule("M2", In("in"), Out("s")).
					Build()
			},
			wantSub: "written by both",
		},
		{
			name: "system input with producer",
			build: func() (*System, error) {
				return NewBuilder("x").
					AddSignal("in", Uint(8), AsSystemInput()).
					AddSignal("si", Uint(8), AsSystemInput()).
					AddModule("M", In("in"), Out("si")).
					Build()
			},
			wantSub: "is written by a module",
		},
		{
			name: "orphan intermediate",
			build: func() (*System, error) {
				return NewBuilder("x").
					AddSignal("orphan", Uint(8)).
					Build()
			},
			wantSub: "no producing module",
		},
		{
			name: "criticality out of range",
			build: func() (*System, error) {
				return NewBuilder("x").
					AddSignal("in", Uint(8), AsSystemInput()).
					AddSignal("o", Uint(8), AsSystemOutput(1.5)).
					AddModule("M", In("in"), Out("o")).
					Build()
			},
			wantSub: "criticality",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := tt.build()
			if err == nil {
				t.Fatal("Build() = nil error, want failure")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q does not contain %q", err, tt.wantSub)
			}
		})
	}
}

func TestModuleDeclPortLookup(t *testing.T) {
	sys := tinySystem(t)
	b, _ := sys.Module("B")
	if sid, ok := b.InputSignal(2); !ok || sid != "flag" {
		t.Errorf("B.InputSignal(2) = %q,%v want flag,true", sid, ok)
	}
	if _, ok := b.InputSignal(0); ok {
		t.Error("InputSignal(0) should fail (ports are 1-based)")
	}
	if _, ok := b.InputSignal(3); ok {
		t.Error("InputSignal(3) should fail (only 2 inputs)")
	}
	if sid, ok := b.OutputSignal(1); !ok || sid != "out" {
		t.Errorf("B.OutputSignal(1) = %q,%v want out,true", sid, ok)
	}
}

func TestSortedSignalIDs(t *testing.T) {
	sys := tinySystem(t)
	ids := sys.SortedSignalIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("SortedSignalIDs not sorted: %v", ids)
		}
	}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{KindIntermediate, "intermediate"},
		{KindSystemInput, "system-input"},
		{KindSystemOutput, "system-output"},
		{Kind(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(tt.k), got, tt.want)
		}
	}
}
