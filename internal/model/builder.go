package model

import (
	"errors"
	"fmt"
)

// Builder assembles a System incrementally and validates it on Build.
// The zero value is not usable; call NewBuilder.
type Builder struct {
	sys  *System
	errs []error
}

// NewBuilder returns a builder for a system with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		sys: &System{
			name:      name,
			modules:   make(map[ModuleID]*ModuleDecl),
			signals:   make(map[SignalID]*Signal),
			producers: make(map[SignalID]PortRef),
			consumers: make(map[SignalID][]PortRef),
		},
	}
}

// SignalOption configures a signal at declaration time.
type SignalOption func(*Signal)

// AsSystemInput marks the signal as entering from the environment.
func AsSystemInput() SignalOption {
	return func(s *Signal) { s.Kind = KindSystemInput }
}

// AsSystemOutput marks the signal as crossing the system barrier to the
// environment, with the designer-assigned criticality C_o in [0,1].
func AsSystemOutput(criticality float64) SignalOption {
	return func(s *Signal) {
		s.Kind = KindSystemOutput
		s.Criticality = criticality
	}
}

// WithInitial sets the reset value of the signal.
func WithInitial(v Word) SignalOption {
	return func(s *Signal) { s.Initial = v }
}

// WithDoc attaches a description to the signal.
func WithDoc(doc string) SignalOption {
	return func(s *Signal) { s.Doc = doc }
}

// AddSignal declares a signal. Signals default to KindIntermediate.
func (b *Builder) AddSignal(id SignalID, t Type, opts ...SignalOption) *Builder {
	if _, dup := b.sys.signals[id]; dup {
		b.errs = append(b.errs, fmt.Errorf("model: duplicate signal %q", id))
		return b
	}
	sig := &Signal{ID: id, Type: t, Kind: KindIntermediate}
	for _, opt := range opts {
		opt(sig)
	}
	if err := t.Validate(); err != nil {
		b.errs = append(b.errs, fmt.Errorf("signal %q: %w", id, err))
		return b
	}
	b.sys.signals[id] = sig
	b.sys.sigOrder = append(b.sys.sigOrder, id)
	return b
}

// In lists the signals bound to a module's input ports 1..n, in order.
func In(signals ...SignalID) []SignalID { return signals }

// Out lists the signals bound to a module's output ports 1..n, in order.
func Out(signals ...SignalID) []SignalID { return signals }

// AddModule declares a module with its port bindings. Port indices are
// assigned from the order of the ins/outs slices (1-based).
func (b *Builder) AddModule(id ModuleID, ins, outs []SignalID) *Builder {
	if _, dup := b.sys.modules[id]; dup {
		b.errs = append(b.errs, fmt.Errorf("model: duplicate module %q", id))
		return b
	}
	m := &ModuleDecl{ID: id}
	for i, sid := range ins {
		if !b.requireSignal(id, sid) {
			continue
		}
		m.Inputs = append(m.Inputs, PortBinding{Index: i + 1, Signal: sid})
		ref := PortRef{Module: id, Dir: DirIn, Index: i + 1}
		b.sys.consumers[sid] = append(b.sys.consumers[sid], ref)
	}
	for k, sid := range outs {
		if !b.requireSignal(id, sid) {
			continue
		}
		m.Outputs = append(m.Outputs, PortBinding{Index: k + 1, Signal: sid})
		ref := PortRef{Module: id, Dir: DirOut, Index: k + 1}
		if prev, taken := b.sys.producers[sid]; taken {
			b.errs = append(b.errs, fmt.Errorf(
				"model: signal %q written by both %s.out[%d] and %s.out[%d]",
				sid, prev.Module, prev.Index, id, k+1))
			continue
		}
		b.sys.producers[sid] = ref
	}
	b.sys.modules[id] = m
	b.sys.modOrder = append(b.sys.modOrder, id)
	return b
}

func (b *Builder) requireSignal(mod ModuleID, sid SignalID) bool {
	if _, ok := b.sys.signals[sid]; !ok {
		b.errs = append(b.errs, fmt.Errorf("model: module %q references undeclared signal %q", mod, sid))
		return false
	}
	return true
}

// Build validates the assembled system and returns it. The builder must
// not be reused after Build.
func (b *Builder) Build() (*System, error) {
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("model: invalid system %q: %w", b.sys.name, errors.Join(b.errs...))
	}
	if err := b.sys.Validate(); err != nil {
		return nil, err
	}
	b.sys.finalize()
	return b.sys, nil
}

// MustBuild is Build that panics on error. Intended for statically-known
// system descriptions in tests and fixtures.
func (b *Builder) MustBuild() *System {
	sys, err := b.Build()
	if err != nil {
		panic(err)
	}
	return sys
}
