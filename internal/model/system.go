package model

import (
	"fmt"
	"sort"
)

// PortBinding attaches a signal to a numbered port.
type PortBinding struct {
	// Index is the 1-based port number.
	Index int
	// Signal is the attached signal.
	Signal SignalID
}

// ModuleDecl is the static, black-box view of a module: its identity and
// which signals are bound to its numbered input and output ports. Module
// behaviour lives entirely in the runtime layer (Runnable).
type ModuleDecl struct {
	ID ModuleID
	// Inputs and Outputs are ordered by port index (1..n, contiguous).
	Inputs  []PortBinding
	Outputs []PortBinding
	// Doc is an optional human-readable description.
	Doc string

	// Dense resolution of the port bindings, filled by System.finalize:
	// position p of these slices corresponds to port index p+1.
	inIdx   []int
	inSigs  []*Signal
	outIdx  []int
	outSigs []*Signal
}

// InputSignal returns the signal bound to input port index (1-based).
func (m *ModuleDecl) InputSignal(index int) (SignalID, bool) {
	if index < 1 || index > len(m.Inputs) {
		return "", false
	}
	return m.Inputs[index-1].Signal, true
}

// OutputSignal returns the signal bound to output port index (1-based).
func (m *ModuleDecl) OutputSignal(index int) (SignalID, bool) {
	if index < 1 || index > len(m.Outputs) {
		return "", false
	}
	return m.Outputs[index-1].Signal, true
}

// Edge is one potential propagation step: input port i of module Module
// reads signal From, and output port k writes signal To. The propagation
// analysis framework assigns each edge an error permeability P^M_{i,k}.
type Edge struct {
	Module ModuleID
	// In and Out are 1-based port indices.
	In, Out int
	// From and To are the signals bound to those ports.
	From, To SignalID
}

// System is the static description of a modular software system: the
// wiring graph over which error propagation is analyzed.
//
// At build time every signal is interned to a dense index (its position
// in declaration order). The runtime layer (Bus, Exec, trace recorders)
// uses these indices for slice-based access, keeping the string-keyed
// SignalID API at the edges.
type System struct {
	name      string
	modules   map[ModuleID]*ModuleDecl
	signals   map[SignalID]*Signal
	modOrder  []ModuleID
	sigOrder  []SignalID
	producers map[SignalID]PortRef   // signal -> producing output port
	consumers map[SignalID][]PortRef // signal -> consuming input ports

	sigIdx  map[SignalID]int // signal -> dense index (declaration order)
	sigList []*Signal        // dense index -> signal
}

// finalize interns signals to dense indices and pre-resolves every
// module port binding to its signal's index. Called once from
// Builder.Build after validation; the System is immutable afterwards.
func (s *System) finalize() {
	s.sigIdx = make(map[SignalID]int, len(s.sigOrder))
	s.sigList = make([]*Signal, len(s.sigOrder))
	for i, id := range s.sigOrder {
		s.sigIdx[id] = i
		s.sigList[i] = s.signals[id]
	}
	for _, mid := range s.modOrder {
		m := s.modules[mid]
		m.inIdx = make([]int, len(m.Inputs))
		m.inSigs = make([]*Signal, len(m.Inputs))
		for i, pb := range m.Inputs {
			m.inIdx[i] = s.sigIdx[pb.Signal]
			m.inSigs[i] = s.signals[pb.Signal]
		}
		m.outIdx = make([]int, len(m.Outputs))
		m.outSigs = make([]*Signal, len(m.Outputs))
		for k, pb := range m.Outputs {
			m.outIdx[k] = s.sigIdx[pb.Signal]
			m.outSigs[k] = s.signals[pb.Signal]
		}
	}
}

// NumSignals returns the number of declared signals (and the length of
// the dense index space).
func (s *System) NumSignals() int { return len(s.sigList) }

// SignalIndex returns the dense index of a signal, assigned in
// declaration order at build time.
func (s *System) SignalIndex(id SignalID) (int, bool) {
	i, ok := s.sigIdx[id]
	return i, ok
}

// SignalAt returns the signal at a dense index. It panics on
// out-of-range indices — indices come from SignalIndex, so a bad one is
// a harness bug.
func (s *System) SignalAt(i int) *Signal { return s.sigList[i] }

// Name returns the system name.
func (s *System) Name() string { return s.name }

// Module returns the declaration of the named module.
func (s *System) Module(id ModuleID) (*ModuleDecl, bool) {
	m, ok := s.modules[id]
	return m, ok
}

// Modules returns all module declarations in declaration order.
func (s *System) Modules() []*ModuleDecl {
	out := make([]*ModuleDecl, 0, len(s.modOrder))
	for _, id := range s.modOrder {
		out = append(out, s.modules[id])
	}
	return out
}

// Signal returns the named signal.
func (s *System) Signal(id SignalID) (*Signal, bool) {
	sig, ok := s.signals[id]
	return sig, ok
}

// Signals returns all signals in declaration order.
func (s *System) Signals() []*Signal {
	out := make([]*Signal, 0, len(s.sigOrder))
	for _, id := range s.sigOrder {
		out = append(out, s.signals[id])
	}
	return out
}

// SignalIDs returns all signal names in declaration order.
func (s *System) SignalIDs() []SignalID {
	out := make([]SignalID, len(s.sigOrder))
	copy(out, s.sigOrder)
	return out
}

// SystemInputs returns the system input signals in declaration order.
func (s *System) SystemInputs() []SignalID { return s.signalsOfKind(KindSystemInput) }

// SystemOutputs returns the system output signals in declaration order.
func (s *System) SystemOutputs() []SignalID { return s.signalsOfKind(KindSystemOutput) }

func (s *System) signalsOfKind(k Kind) []SignalID {
	var out []SignalID
	for _, id := range s.sigOrder {
		if s.signals[id].Kind == k {
			out = append(out, id)
		}
	}
	return out
}

// ProducerOf returns the output port that writes the signal. System
// inputs have no producer (ok == false).
func (s *System) ProducerOf(id SignalID) (PortRef, bool) {
	p, ok := s.producers[id]
	return p, ok
}

// ConsumersOf returns the input ports that read the signal. The returned
// slice is a copy and safe to mutate.
func (s *System) ConsumersOf(id SignalID) []PortRef {
	src := s.consumers[id]
	out := make([]PortRef, len(src))
	copy(out, src)
	return out
}

// Edges enumerates every input/output pair of every module — exactly the
// pairs for which the paper defines an error permeability (Eq. 1). Edges
// are ordered by module declaration order, then input index, then output
// index; for the arrestment target this yields the 25 pairs of Table 1.
func (s *System) Edges() []Edge {
	var out []Edge
	for _, mid := range s.modOrder {
		m := s.modules[mid]
		for _, in := range m.Inputs {
			for _, outp := range m.Outputs {
				out = append(out, Edge{
					Module: mid,
					In:     in.Index,
					Out:    outp.Index,
					From:   in.Signal,
					To:     outp.Signal,
				})
			}
		}
	}
	return out
}

// OutEdges returns the edges whose From signal is id.
func (s *System) OutEdges(id SignalID) []Edge {
	var out []Edge
	for _, e := range s.Edges() {
		if e.From == id {
			out = append(out, e)
		}
	}
	return out
}

// InEdges returns the edges whose To signal is id.
func (s *System) InEdges(id SignalID) []Edge {
	var out []Edge
	for _, e := range s.Edges() {
		if e.To == id {
			out = append(out, e)
		}
	}
	return out
}

// ModuleIDs returns all module names in declaration order.
func (s *System) ModuleIDs() []ModuleID {
	out := make([]ModuleID, len(s.modOrder))
	copy(out, s.modOrder)
	return out
}

// SortedSignalIDs returns all signal names sorted lexicographically.
// Useful for deterministic reports independent of declaration order.
func (s *System) SortedSignalIDs() []SignalID {
	out := s.SignalIDs()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate re-checks structural invariants. Systems obtained from
// Builder.Build are already validated; Validate is exposed for systems
// reconstructed from serialized descriptions.
func (s *System) Validate() error {
	for _, id := range s.sigOrder {
		sig := s.signals[id]
		if err := sig.Type.Validate(); err != nil {
			return fmt.Errorf("signal %q: %w", id, err)
		}
		_, hasProducer := s.producers[id]
		switch sig.Kind {
		case KindSystemInput:
			if hasProducer {
				return fmt.Errorf("model: system input %q is written by a module", id)
			}
		case KindSystemOutput, KindIntermediate:
			if !hasProducer {
				return fmt.Errorf("model: signal %q (%s) has no producing module", id, sig.Kind)
			}
		default:
			return fmt.Errorf("model: signal %q has invalid kind %d", id, int(sig.Kind))
		}
		if sig.Criticality < 0 || sig.Criticality > 1 {
			return fmt.Errorf("model: signal %q criticality %v outside [0,1]", id, sig.Criticality)
		}
	}
	for _, mid := range s.modOrder {
		m := s.modules[mid]
		if err := contiguous(m.Inputs); err != nil {
			return fmt.Errorf("module %q inputs: %w", mid, err)
		}
		if err := contiguous(m.Outputs); err != nil {
			return fmt.Errorf("module %q outputs: %w", mid, err)
		}
	}
	return nil
}

func contiguous(ports []PortBinding) error {
	for i, p := range ports {
		if p.Index != i+1 {
			return fmt.Errorf("model: port %d bound at position %d (indices must be contiguous from 1)", p.Index, i)
		}
	}
	return nil
}
