package model

import (
	"testing"
	"testing/quick"
)

func TestTypeConstructors(t *testing.T) {
	tests := []struct {
		name     string
		typ      Type
		wantName string
		wantW    uint8
		signed   bool
		boolean  bool
	}{
		{"uint16", Uint(16), "uint16", 16, false, false},
		{"uint10", Uint(10), "uint10", 10, false, false},
		{"uint1", Uint(1), "uint1", 1, false, false},
		{"int8", Int(8), "int8", 8, true, false},
		{"int32", Int(32), "int32", 32, true, false},
		{"bool", Bool(), "bool", 1, false, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.typ.Name; got != tt.wantName {
				t.Errorf("Name = %q, want %q", got, tt.wantName)
			}
			if got := tt.typ.Width; got != tt.wantW {
				t.Errorf("Width = %d, want %d", got, tt.wantW)
			}
			if got := tt.typ.Signed; got != tt.signed {
				t.Errorf("Signed = %v, want %v", got, tt.signed)
			}
			if got := tt.typ.IsBool; got != tt.boolean {
				t.Errorf("IsBool = %v, want %v", got, tt.boolean)
			}
			if err := tt.typ.Validate(); err != nil {
				t.Errorf("Validate() = %v, want nil", err)
			}
		})
	}
}

func TestTypeValidateRejectsBadTypes(t *testing.T) {
	tests := []struct {
		name string
		typ  Type
	}{
		{"zero width", Type{Name: "z", Width: 0}},
		{"too wide", Type{Name: "w", Width: 33}},
		{"wide bool", Type{Name: "b", Width: 2, IsBool: true}},
		{"signed bool", Type{Name: "sb", Width: 1, IsBool: true, Signed: true}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.typ.Validate(); err == nil {
				t.Errorf("Validate() = nil, want error for %+v", tt.typ)
			}
		})
	}
}

func TestTypeMask(t *testing.T) {
	tests := []struct {
		width uint8
		want  Word
	}{
		{1, 0x1},
		{8, 0xFF},
		{10, 0x3FF},
		{16, 0xFFFF},
		{32, 0xFFFFFFFF},
	}
	for _, tt := range tests {
		if got := Uint(tt.width).Mask(); got != tt.want {
			t.Errorf("Uint(%d).Mask() = %#x, want %#x", tt.width, got, tt.want)
		}
	}
}

func TestSignedRoundTrip(t *testing.T) {
	tests := []struct {
		typ  Type
		in   Word
		want Word
	}{
		{Int(8), 127, 127},
		{Int(8), -128, -128},
		{Int(8), 128, -128}, // wraps
		{Int(8), 255, -1},   // wraps
		{Int(16), -1, -1},
		{Int(16), 32768, -32768},
		{Uint(16), 65536, 0}, // counter wrap
		{Uint(16), 65535, 65535},
		{Uint(10), 1024, 0},
	}
	for _, tt := range tests {
		raw := tt.typ.ToRaw(tt.in)
		if got := tt.typ.FromRaw(raw); got != tt.want {
			t.Errorf("%s round trip of %d = %d, want %d", tt.typ, tt.in, got, tt.want)
		}
	}
}

func TestFromRawMasksBeforeInterpreting(t *testing.T) {
	typ := Int(8)
	// Raw pattern with garbage above bit 7 must be ignored.
	if got := typ.FromRaw(0xF00FF); got != -1 {
		t.Errorf("FromRaw(0xF00FF) = %d, want -1", got)
	}
}

// Property: for every unsigned type, Canon is idempotent and FromRaw of a
// canonical value is within [0, MaxUnsigned].
func TestQuickUnsignedCanonIdempotent(t *testing.T) {
	f := func(width8 uint8, v Word) bool {
		width := width8%32 + 1
		typ := Uint(width)
		c := typ.Canon(v)
		if typ.Canon(c) != c {
			return false
		}
		got := typ.FromRaw(c)
		return got >= 0 && got <= typ.MaxUnsigned()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: signed interpretation stays within the two's-complement range
// and ToRaw∘FromRaw is the identity on raw patterns.
func TestQuickSignedRangeAndRawIdentity(t *testing.T) {
	f := func(width8 uint8, v Word) bool {
		width := width8%32 + 1
		typ := Int(width)
		raw := typ.Canon(v)
		iv := typ.FromRaw(raw)
		lo := -(Word(1) << (width - 1))
		hi := Word(1)<<(width-1) - 1
		if iv < lo || iv > hi {
			return false
		}
		return typ.ToRaw(iv) == raw
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
