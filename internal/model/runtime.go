package model

import "fmt"

// Exec is the execution context handed to a module invocation. It scopes
// port I/O to the module's declared bindings, so a module can only touch
// signals wired to its own ports — preserving the black-box discipline at
// runtime.
type Exec struct {
	bus  *Bus
	decl *ModuleDecl
	now  int64 // milliseconds since system start
}

// NewExec binds an execution context for one invocation of a module.
// nowMs is the scheduler's notion of elapsed time in milliseconds.
func NewExec(bus *Bus, decl *ModuleDecl, nowMs int64) *Exec {
	return &Exec{bus: bus, decl: decl, now: nowMs}
}

// Bind re-targets the context at another module invocation. The
// scheduler allocates one Exec and rebinds it every step, keeping the
// inner loop allocation-free.
func (e *Exec) Bind(decl *ModuleDecl, nowMs int64) {
	e.decl = decl
	e.now = nowMs
}

// In reads the module's input port index (1-based) through the bus read
// hooks (where transient fault injection attaches).
func (e *Exec) In(index int) Word {
	d := e.decl
	if index < 1 || index > len(d.Inputs) {
		panic(fmt.Sprintf("model: module %s has no input port %d", d.ID, index))
	}
	return e.bus.readIdx(PortRef{Module: d.ID, Dir: DirIn, Index: index},
		d.Inputs[index-1].Signal, d.inIdx[index-1], d.inSigs[index-1])
}

// InBool reads an input port as a boolean.
func (e *Exec) InBool(index int) bool { return e.In(index) != 0 }

// Out writes the module's output port index (1-based) through the bus
// write hooks (where the trace recorder attaches).
func (e *Exec) Out(index int, v Word) {
	d := e.decl
	if index < 1 || index > len(d.Outputs) {
		panic(fmt.Sprintf("model: module %s has no output port %d", d.ID, index))
	}
	e.bus.writeIdx(PortRef{Module: d.ID, Dir: DirOut, Index: index},
		d.Outputs[index-1].Signal, d.outIdx[index-1], d.outSigs[index-1], v)
}

// OutBool writes a boolean output port.
func (e *Exec) OutBool(index int, v bool) {
	var w Word
	if v {
		w = 1
	}
	e.Out(index, w)
}

// NowMs returns the scheduler time of this invocation in milliseconds.
func (e *Exec) NowMs() int64 { return e.now }

// Module returns the declaration of the executing module.
func (e *Exec) Module() *ModuleDecl { return e.decl }

// Runnable is the behaviour of a module. Implementations live outside
// this package (internal/target provides the six arrestment modules); the
// analysis framework never sees Runnable — modules stay black boxes.
type Runnable interface {
	// ModuleID returns the identity this behaviour implements; it must
	// match a ModuleDecl in the system the behaviour is registered with.
	ModuleID() ModuleID
	// Step executes one invocation: read inputs, update state, write
	// outputs. Step must be deterministic given its inputs and state.
	Step(e *Exec)
	// Reset restores the module's internal state to power-on values.
	Reset()
}
