package target

import (
	"fmt"

	"repro/internal/ea"
)

// Names of the executable assertions guarding the arrestment signals
// (paper Table 3).
const (
	EA1 = "EA1" // SetValue: range and rate
	EA2 = "EA2" // IsValue: range and rate
	EA3 = "EA3" // i: monotonic counter
	EA4 = "EA4" // pulscnt: bounded counter increments
	EA5 = "EA5" // ms_slot_nbr: cyclic sequence
	EA6 = "EA6" // mscnt: fixed-step counter
	EA7 = "EA7" // OutValue: range and rate
)

// AllEASpecs returns the seven assertions of the experience-based
// (heuristic) placement, tuned against the fault-free workload grid.
func AllEASpecs() []ea.Spec {
	return []ea.Spec{
		{
			// SetValue moves slowly along the braking profile; the
			// start-up ramp stays under 60 units per period and the
			// drop to zero at standstill is saturation-exempt.
			Name: EA1, Signal: SigSetValue, Kind: ea.KindBehaviour,
			Min: 0, Max: 1000, MaxUp: 120, MaxDown: 120, WarmupChecks: 3,
		},
		{
			// IsValue follows the hydraulic lag (tau = 250 ms), so a
			// legitimate pressure slope is at most ~40 units per period.
			Name: EA2, Signal: SigIsValue, Kind: ea.KindBehaviour,
			Min: 0, Max: 1000, MaxUp: 200, MaxDown: 200, WarmupChecks: 3,
		},
		{
			// The frame counter advances exactly once per major cycle.
			Name: EA3, Signal: SigI, Kind: ea.KindCounter,
			MinStep: 1, MaxStep: 1, WrapWidth: 16, WarmupChecks: 2,
		},
		{
			// At 80 m/s the drum yields 8 pulses per period; 16 leaves
			// headroom for timing jitter without admitting corruption.
			Name: EA4, Signal: SigPulscnt, Kind: ea.KindCounter,
			MinStep: 0, MaxStep: 16, WrapWidth: 16, WarmupChecks: 2,
		},
		{
			// The slot selector is sampled at the frame boundary, so a
			// healthy schedule always shows slot 0.
			Name: EA5, Signal: SigMsSlotNbr, Kind: ea.KindSequence,
			Modulo: 10, StepPerPeriod: 0, AllowExtra: 0, WarmupChecks: 2,
		},
		{
			// The millisecond counter gains exactly one period per period.
			Name: EA6, Signal: SigMscnt, Kind: ea.KindCounter,
			MinStep: 10, MaxStep: 10, WrapWidth: 16, WarmupChecks: 2,
		},
		{
			// V_REG slew-limits its output to 40 units per period.
			Name: EA7, Signal: SigOutValue, Kind: ea.KindBehaviour,
			Min: 0, Max: 1000, MaxUp: 60, MaxDown: 60, WarmupChecks: 3,
		},
	}
}

// SpecsFor resolves assertion names to their specifications.
func SpecsFor(names []string) ([]ea.Spec, error) {
	all := AllEASpecs()
	byName := make(map[string]ea.Spec, len(all))
	for _, s := range all {
		byName[s.Name] = s
	}
	out := make([]ea.Spec, 0, len(names))
	for _, n := range names {
		s, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("target: unknown assertion %q", n)
		}
		out = append(out, s)
	}
	return out, nil
}

// EHSet is the experience-based placement: one assertion on every
// internally generated non-boolean signal (paper Section 6.1).
func EHSet() []string {
	return []string{EA1, EA2, EA3, EA4, EA5, EA6, EA7}
}

// PASet is the exposure-selected placement: the four signals whose
// measured exposure clears the Section 4 threshold (paper Section 6.2).
func PASet() []string {
	return []string{EA1, EA3, EA4, EA7}
}

// ExtendedSet is the extended analytical placement of Section 7.1: the
// witness and effect rules add IsValue, mscnt and ms_slot_nbr back, so
// it coincides with the experience-based set.
func ExtendedSet() []string {
	return EHSet()
}

// NewBank instantiates the named assertions over the rig's bus, checked
// once per control period. The caller decides where the bank samples:
// install bank.Hook as a post-slot hook for periodic checking, or use
// an ea.WriteBank for inline checking.
func NewBank(rig *Rig, names []string) (*ea.Bank, error) {
	specs, err := SpecsFor(names)
	if err != nil {
		return nil, err
	}
	return ea.NewBank(rig.Bus, ControlPeriodMs, specs)
}
