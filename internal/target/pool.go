package target

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// rigPool recycles fully-assembled rigs across injection runs. A rig is
// ~30 heap objects (bus, memory cells, scheduler dispatch tables, plant)
// plus hook arrays; at full campaign size (~39 000 runs) per-run
// construction dominated the inner loop. Reset re-arms a pooled rig to a
// state bit-identical with a fresh NewRig, so pooling cannot perturb
// campaign results (asserted by the determinism tests in
// internal/experiment).
var rigPool sync.Pool

// poolingDisabled gates AcquireRig's reuse path; the determinism tests
// flip it to prove pooled and unpooled campaigns agree byte-for-byte.
var poolingDisabled atomic.Bool

// SetRigPooling enables or disables rig reuse process-wide. Pooling is
// on by default; disabling makes AcquireRig equivalent to NewRig.
func SetRigPooling(enabled bool) { poolingDisabled.Store(!enabled) }

// RigPoolingEnabled reports whether AcquireRig reuses rigs.
func RigPoolingEnabled() bool { return !poolingDisabled.Load() }

// AcquireRig returns a rig for the scenario, reusing a pooled one when
// available. Pass it back with ReleaseRig when the run is over; the rig
// must not be used after release.
func AcquireRig(cfg Config) (*Rig, error) {
	tel := obs.Active()
	if tel != nil {
		tel.RigAcquires.Inc()
	}
	if poolingDisabled.Load() {
		if tel != nil {
			tel.RigBuilds.Inc()
		}
		return NewRig(cfg)
	}
	if v := rigPool.Get(); v != nil {
		r := v.(*Rig)
		if err := r.Reset(cfg); err != nil {
			return nil, err
		}
		if tel != nil {
			tel.RigReuses.Inc()
		}
		return r, nil
	}
	if tel != nil {
		tel.RigBuilds.Inc()
	}
	return NewRig(cfg)
}

// ReleaseRig returns a rig to the pool. Safe on nil.
func ReleaseRig(r *Rig) {
	if r == nil || poolingDisabled.Load() {
		return
	}
	if tel := obs.Active(); tel != nil {
		tel.RigReleases.Inc()
	}
	rigPool.Put(r)
}
