package target

import "fmt"

// TestCase is one workload entry of the arrestment test grid.
type TestCase struct {
	ID                int
	MassKg            float64
	EngageVelocityMps float64
}

// Config returns the scenario configuration for this case.
func (tc TestCase) Config(seed int64) Config {
	return Config{MassKg: tc.MassKg, EngageVelocityMps: tc.EngageVelocityMps, Seed: seed}
}

// String implements fmt.Stringer.
func (tc TestCase) String() string {
	return fmt.Sprintf("arrest case %d: %.0f kg at %.1f m/s", tc.ID, tc.MassKg, tc.EngageVelocityMps)
}

// DefaultTestCases returns the 5x5 mass/velocity workload grid used by
// the injection campaigns (the paper's operational profile spans light
// fighters to heavy strike aircraft at carrier-landing speeds).
func DefaultTestCases() []TestCase {
	masses := []float64{8000, 10000, 12000, 14000, 16000}
	velocities := []float64{50, 57.5, 65, 72.5, 80}
	var out []TestCase
	id := 1
	for _, m := range masses {
		for _, v := range velocities {
			out = append(out, TestCase{ID: id, MassKg: m, EngageVelocityMps: v})
			id++
		}
	}
	return out
}
