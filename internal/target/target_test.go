package target

import (
	"testing"

	"repro/internal/ea"
	"repro/internal/failure"
)

func TestSetSizes(t *testing.T) {
	if got := len(EHSet()); got != 7 {
		t.Errorf("len(EHSet()) = %d, want 7", got)
	}
	if got := len(PASet()); got != 4 {
		t.Errorf("len(PASet()) = %d, want 4", got)
	}
	if got, want := len(ExtendedSet()), len(EHSet()); got != want {
		t.Errorf("len(ExtendedSet()) = %d, want %d", got, want)
	}
}

func TestEASpecsNameExistingSignals(t *testing.T) {
	sys := NewSystem()
	for _, spec := range AllEASpecs() {
		if _, ok := sys.Signal(spec.Signal); !ok {
			t.Errorf("%s guards unknown signal %q", spec.Name, spec.Signal)
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
}

func TestSpecsForRejectsUnknownNames(t *testing.T) {
	if _, err := SpecsFor([]string{"EA99"}); err == nil {
		t.Error("unknown assertion name accepted")
	}
}

func TestSystemShapeMatchesPaper(t *testing.T) {
	sys := NewSystem()
	if got := len(sys.Modules()); got != 6 {
		t.Errorf("modules = %d, want 6", got)
	}
	inputs := sys.SystemInputs()
	if len(inputs) != 4 {
		t.Errorf("system inputs = %v, want 4", inputs)
	}
	// Each sensor register feeds exactly one module (paper Fig. 2).
	for _, in := range SystemInputs() {
		if got := len(sys.ConsumersOf(in)); got != 1 {
			t.Errorf("%s has %d consumers, want 1", in, got)
		}
	}
}

// TestSetCostsMatchPaperTable3 pins the derived resource footprints to
// the paper's published totals.
func TestSetCostsMatchPaperTable3(t *testing.T) {
	rig, err := NewRig(DefaultConfig(12000, 65, 1))
	if err != nil {
		t.Fatal(err)
	}
	bank, err := NewBank(rig, EHSet())
	if err != nil {
		t.Fatal(err)
	}
	if c := bank.TotalCost(); c.ROMBytes != 262 || c.RAMBytes != 94 {
		t.Errorf("EH cost = %d/%d bytes, want 262/94", c.ROMBytes, c.RAMBytes)
	}
	pa, err := bank.SubsetCost(PASet())
	if err != nil {
		t.Fatal(err)
	}
	if pa.ROMBytes != 150 || pa.RAMBytes != 54 {
		t.Errorf("PA cost = %d/%d bytes, want 150/54", pa.ROMBytes, pa.RAMBytes)
	}
}

// TestSmokeArrest is the basic liveness check: a mid-weight aircraft at
// cruise engagement speed must be arrested well within 30 s, inside the
// runway, under the structural limits, with no assertion firing.
func TestSmokeArrest(t *testing.T) {
	rig, err := NewRig(DefaultConfig(12000, 65, 1))
	if err != nil {
		t.Fatal(err)
	}
	bank, err := NewBank(rig, EHSet())
	if err != nil {
		t.Fatal(err)
	}
	rig.Sched.OnPostSlot(bank.Hook)

	ok, err := rig.RunUntilArrested(30_000)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("not arrested after 30 s: v = %.1f m/s at %.1f m",
			rig.Plant.Velocity(), rig.Plant.Distance())
	}
	rep := failure.Classify(rig.Plant, rig.Arrested(), failure.DefaultLimits())
	if rep.Failed() {
		t.Errorf("golden arrest violates limits: %+v", rep)
	}
	if bank.Detected() {
		t.Errorf("assertions fired on a fault-free run: %v", bank.DetectedBy())
	}
}

// TestGoldenGridCleanAcrossCasesAndSets runs the full workload grid
// with every assertion set and the recovery wrappers deployed: nothing
// may fire on fault-free runs.
func TestGoldenGridCleanAcrossCasesAndSets(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid")
	}
	for _, tc := range DefaultTestCases() {
		rig, err := NewRig(tc.Config(1))
		if err != nil {
			t.Fatal(err)
		}
		bank, err := NewBank(rig, EHSet())
		if err != nil {
			t.Fatal(err)
		}
		rig.Sched.OnPostSlot(bank.Hook)
		wrappers, err := NewERMBank(rig, DefaultERMSpecs())
		if err != nil {
			t.Fatal(err)
		}
		ok, err := rig.RunUntilArrested(30_000)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("%v: not arrested: v = %.1f m/s at %.1f m",
				tc, rig.Plant.Velocity(), rig.Plant.Distance())
			continue
		}
		if err := rig.RunFor(500); err != nil {
			t.Fatal(err)
		}
		rep := failure.Classify(rig.Plant, true, failure.DefaultLimits())
		if rep.Failed() {
			t.Errorf("%v: limits violated: %+v", tc, rep)
		}
		if bank.Detected() {
			t.Errorf("%v: assertions fired fault-free: %v", tc, bank.DetectedBy())
		}
		if wrappers.Recovered() {
			t.Errorf("%v: wrappers fired fault-free: %v", tc, wrappers.RecoveredBy())
		}
	}
}

func TestClockPublishesSlotZeroAtFrameBoundaries(t *testing.T) {
	rig, err := NewRig(DefaultConfig(8000, 50, 1))
	if err != nil {
		t.Fatal(err)
	}
	var bad int
	rig.Sched.OnPostSlot(func(nowMs int64) {
		if nowMs%ControlPeriodMs == 0 && rig.Bus.Peek(SigMsSlotNbr) != 0 {
			bad++
		}
	})
	if err := rig.RunFor(2000); err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Errorf("%d frame boundaries with nonzero slot selector", bad)
	}
}

func TestConfigValidate(t *testing.T) {
	for _, cfg := range []Config{
		{MassKg: 0, EngageVelocityMps: 65},
		{MassKg: 12000, EngageVelocityMps: 0},
		{MassKg: 900, EngageVelocityMps: 65},
		{MassKg: 12000, EngageVelocityMps: 200},
	} {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if err := DefaultConfig(12000, 65, 1).Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestDefaultTestCaseIDsUniqueAndValid(t *testing.T) {
	seen := make(map[int]bool)
	for _, tc := range DefaultTestCases() {
		if seen[tc.ID] {
			t.Errorf("duplicate case ID %d", tc.ID)
		}
		seen[tc.ID] = true
		if err := tc.Config(1).Validate(); err != nil {
			t.Errorf("%v: %v", tc, err)
		}
	}
	if len(seen) != 25 {
		t.Errorf("cases = %d, want 25", len(seen))
	}
}

func TestAllSignalsDeclared(t *testing.T) {
	sys := NewSystem()
	for _, id := range AllSignals() {
		if _, ok := sys.Signal(id); !ok {
			t.Errorf("AllSignals lists unknown %q", id)
		}
	}
	if got, want := len(AllSignals()), len(sys.Signals()); got != want {
		t.Errorf("AllSignals lists %d signals, system has %d", got, want)
	}
}

// TestEABudgetsAreDerived guards against accidental cost overrides:
// the paper totals must come from the derived per-kind costs.
func TestEABudgetsAreDerived(t *testing.T) {
	for _, spec := range AllEASpecs() {
		if !spec.Cost.IsZero() {
			t.Errorf("%s has an explicit cost override", spec.Name)
		}
		if spec.Kind == ea.KindBool {
			t.Errorf("%s guards a boolean: banks reject these", spec.Name)
		}
	}
}
