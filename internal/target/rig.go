package target

import (
	"fmt"

	"repro/internal/memmap"
	"repro/internal/model"
	"repro/internal/physics"
	"repro/internal/sched"
)

// Config is one arrestment scenario.
type Config struct {
	// MassKg is the aircraft mass dialled in by the operator.
	MassKg float64
	// EngageVelocityMps is the speed at cable engagement.
	EngageVelocityMps float64
	// Seed drives plant sensor noise.
	Seed int64
	// HardenedDistS enables the module-internal delta plausibility
	// check in DIST_S (the Section 7 recovery experiment).
	HardenedDistS bool
}

// DefaultConfig returns a plain (unhardened) scenario.
func DefaultConfig(mass, velocity float64, seed int64) Config {
	return Config{MassKg: mass, EngageVelocityMps: velocity, Seed: seed}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.MassKg < 1000 || c.MassKg > 50000 {
		return fmt.Errorf("target: MassKg %v outside the arrestable band", c.MassKg)
	}
	if c.EngageVelocityMps < 10 || c.EngageVelocityMps > 120 {
		return fmt.Errorf("target: EngageVelocityMps %v outside the arrestable band", c.EngageVelocityMps)
	}
	return nil
}

// Rig is an assembled arrestment target: the static description, the
// shared-memory bus, the memory map, the plant and the scheduler.
//
// Rigs are reusable: Reset re-arms an existing rig for a new scenario,
// and AcquireRig/ReleaseRig pool rigs so an injection campaign does not
// rebuild the six-module system per run. The Sys field is the
// process-shared immutable description (SharedSystem).
type Rig struct {
	Cfg   Config
	Sys   *model.System
	Bus   *model.Bus
	Mem   *memmap.Map
	Plant *physics.Plant
	Sched *sched.Scheduler

	// Configurable module behaviours, kept for Reset.
	dist *distS
	calc *calc

	// Environment hooks, created once and re-installed on Reset. Cached
	// dense indices make the per-slot sensor refresh map-free.
	envPre, envPost sched.Hook
}

// NewRig assembles an arrestment rig for one scenario.
func NewRig(cfg Config) (*Rig, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sys := SharedSystem()
	bus := model.NewBus(sys)
	mem := &memmap.Map{}
	plant := physics.New(physics.DefaultParams(cfg.MassKg, cfg.EngageVelocityMps, cfg.Seed))

	// CLOCK runs every millisecond slot and publishes the selector; the
	// other five modules occupy fixed slots of the 10 ms frame. The
	// empty slots are spare capacity in the original schedule.
	table := sched.Table{
		SlotMs:   1,
		Every:    []model.ModuleID{ModClock},
		Selector: SigMsSlotNbr,
		Slots: [][]model.ModuleID{
			3: {ModDistS},
			5: {ModPresS},
			6: {ModCalc},
			7: {ModVReg},
			9: {ModPresA},
		},
	}
	s, err := sched.New(bus, table)
	if err != nil {
		return nil, err
	}
	// Memory cell IDs are assigned in allocation order, and the internal
	// error model samples cells by ID — keep the module construction
	// sequence fixed.
	clk := newClock(mem)
	dist := newDistS(mem, cfg.HardenedDistS)
	prs := newPresS(mem)
	cal := newCalc(mem, model.Word(cfg.MassKg))
	mods := []model.Runnable{
		clk,
		dist,
		prs,
		cal,
		newVReg(mem),
		newPresA(mem),
	}
	for _, m := range mods {
		if err := s.Register(m); err != nil {
			return nil, err
		}
	}

	r := &Rig{Cfg: cfg, Sys: sys, Bus: bus, Mem: mem, Plant: plant, Sched: s, dist: dist, calc: cal}
	idx := func(id model.SignalID) int {
		i, _ := sys.SignalIndex(id)
		return i
	}
	iPACNT, iTIC1, iTCNT, iADC, iTOC2 := idx(SigPACNT), idx(SigTIC1), idx(SigTCNT), idx(SigADC), idx(SigTOC2)
	r.envPre = func(nowMs int64) {
		r.Plant.StepMs(1)
		bus.PokeIdx(iPACNT, r.Plant.PACNT())
		bus.PokeIdx(iTIC1, r.Plant.TIC1())
		bus.PokeIdx(iTCNT, r.Plant.TCNT())
		bus.PokeIdx(iADC, r.Plant.ADC())
	}
	r.envPost = func(nowMs int64) {
		r.Plant.SetValveDuty(bus.PeekIdx(iTOC2))
	}
	s.OnPreSlot(r.envPre)
	s.OnPostSlot(r.envPost)
	return r, nil
}

// Reset re-arms the rig for a new scenario, as if freshly constructed by
// NewRig(cfg): bus signals, memory cells, module state, scheduler time
// and the plant all return to power-on values; every experiment-attached
// hook (injectors, recorders, assertion banks) is removed and the rig's
// own environment hooks are re-installed. Determinism invariant: a reset
// rig and a new rig produce bit-identical runs for the same cfg.
func (r *Rig) Reset(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	r.Cfg = cfg
	r.Bus.ClearHooks()
	r.Mem.ClearHooks()
	r.Sched.ResetHooks()
	r.Sched.Reset() // rewinds time, resets bus values and module state
	r.Mem.Reset()
	r.Plant.Reset(physics.DefaultParams(cfg.MassKg, cfg.EngageVelocityMps, cfg.Seed))
	r.dist.setHardened(cfg.HardenedDistS)
	r.calc.setMass(model.Word(cfg.MassKg))
	r.Sched.OnPreSlot(r.envPre)
	r.Sched.OnPostSlot(r.envPost)
	return nil
}

// RunFor runs the rig for durationMs of scheduler time.
func (r *Rig) RunFor(durationMs int64) error { return r.Sched.RunFor(durationMs) }

// RunUntilArrested runs until the aircraft is at standstill, or maxMs
// elapses. It reports whether the arrest completed.
func (r *Rig) RunUntilArrested(maxMs int64) (bool, error) {
	return r.Sched.RunUntil(r.Arrested, maxMs)
}

// Arrested reports whether the aircraft has come to a standstill.
func (r *Rig) Arrested() bool { return r.Plant.Stopped() }
