package target

import (
	"fmt"

	"repro/internal/memmap"
	"repro/internal/model"
	"repro/internal/physics"
	"repro/internal/sched"
)

// Config is one arrestment scenario.
type Config struct {
	// MassKg is the aircraft mass dialled in by the operator.
	MassKg float64
	// EngageVelocityMps is the speed at cable engagement.
	EngageVelocityMps float64
	// Seed drives plant sensor noise.
	Seed int64
	// HardenedDistS enables the module-internal delta plausibility
	// check in DIST_S (the Section 7 recovery experiment).
	HardenedDistS bool
}

// DefaultConfig returns a plain (unhardened) scenario.
func DefaultConfig(mass, velocity float64, seed int64) Config {
	return Config{MassKg: mass, EngageVelocityMps: velocity, Seed: seed}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.MassKg < 1000 || c.MassKg > 50000 {
		return fmt.Errorf("target: MassKg %v outside the arrestable band", c.MassKg)
	}
	if c.EngageVelocityMps < 10 || c.EngageVelocityMps > 120 {
		return fmt.Errorf("target: EngageVelocityMps %v outside the arrestable band", c.EngageVelocityMps)
	}
	return nil
}

// Rig is an assembled arrestment target: the static description, the
// shared-memory bus, the memory map, the plant and the scheduler.
type Rig struct {
	Cfg   Config
	Sys   *model.System
	Bus   *model.Bus
	Mem   *memmap.Map
	Plant *physics.Plant
	Sched *sched.Scheduler
}

// NewRig assembles an arrestment rig for one scenario.
func NewRig(cfg Config) (*Rig, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sys := NewSystem()
	bus := model.NewBus(sys)
	mem := &memmap.Map{}
	plant := physics.New(physics.DefaultParams(cfg.MassKg, cfg.EngageVelocityMps, cfg.Seed))

	// CLOCK runs every millisecond slot and publishes the selector; the
	// other five modules occupy fixed slots of the 10 ms frame. The
	// empty slots are spare capacity in the original schedule.
	table := sched.Table{
		SlotMs:   1,
		Every:    []model.ModuleID{ModClock},
		Selector: SigMsSlotNbr,
		Slots: [][]model.ModuleID{
			3: {ModDistS},
			5: {ModPresS},
			6: {ModCalc},
			7: {ModVReg},
			9: {ModPresA},
		},
	}
	s, err := sched.New(bus, table)
	if err != nil {
		return nil, err
	}
	mods := []model.Runnable{
		newClock(mem),
		newDistS(mem, cfg.HardenedDistS),
		newPresS(mem),
		newCalc(mem, model.Word(cfg.MassKg)),
		newVReg(mem),
		newPresA(mem),
	}
	for _, m := range mods {
		if err := s.Register(m); err != nil {
			return nil, err
		}
	}

	r := &Rig{Cfg: cfg, Sys: sys, Bus: bus, Mem: mem, Plant: plant, Sched: s}
	s.OnPreSlot(func(nowMs int64) {
		r.Plant.StepMs(1)
		bus.Poke(SigPACNT, r.Plant.PACNT())
		bus.Poke(SigTIC1, r.Plant.TIC1())
		bus.Poke(SigTCNT, r.Plant.TCNT())
		bus.Poke(SigADC, r.Plant.ADC())
	})
	s.OnPostSlot(func(nowMs int64) {
		r.Plant.SetValveDuty(bus.Peek(SigTOC2))
	})
	return r, nil
}

// RunFor runs the rig for durationMs of scheduler time.
func (r *Rig) RunFor(durationMs int64) error { return r.Sched.RunFor(durationMs) }

// RunUntilArrested runs until the aircraft is at standstill, or maxMs
// elapses. It reports whether the arrest completed.
func (r *Rig) RunUntilArrested(maxMs int64) (bool, error) {
	return r.Sched.RunUntil(r.Arrested, maxMs)
}

// Arrested reports whether the aircraft has come to a standstill.
func (r *Rig) Arrested() bool { return r.Plant.Stopped() }
