package target

import "repro/internal/erm"

// DefaultERMSpecs returns the recovery wrappers of the Section 7
// study: one wrapper on each signal of the exposure-selected (PA)
// placement, with bounds loose enough to stay silent across the
// fault-free workload grid.
func DefaultERMSpecs() []erm.Spec {
	return []erm.Spec{
		{
			Name: "ERM-SetValue", Signal: SigSetValue,
			Min: 0, Max: 1000, MaxUp: 150, MaxDown: 0,
			Policy: erm.PolicyClamp, WarmupWrites: 10,
		},
		{
			Name: "ERM-i", Signal: SigI,
			Min: 0, Max: 65535, MaxUp: 2, MaxDown: 1,
			Policy: erm.PolicyHoldLast, WarmupWrites: 2,
		},
		{
			Name: "ERM-pulscnt", Signal: SigPulscnt,
			Min: 0, Max: 65535, MaxUp: 20, MaxDown: 1,
			Policy: erm.PolicyHoldLast, WarmupWrites: 2,
		},
		{
			Name: "ERM-OutValue", Signal: SigOutValue,
			Min: 0, Max: 1000, MaxUp: 50, MaxDown: 50,
			Policy: erm.PolicyClamp, WarmupWrites: 4,
		},
	}
}

// NewERMBank installs the recovery wrappers on the rig: write filters
// on the guarded signals plus the bank's pre-slot clock hook.
func NewERMBank(rig *Rig, specs []erm.Spec) (*erm.Bank, error) {
	bank, err := erm.NewBank(rig.Bus, specs)
	if err != nil {
		return nil, err
	}
	rig.Sched.OnPreSlot(bank.Hook)
	return bank, nil
}
