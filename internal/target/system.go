// Package target is the paper's target system: the embedded control
// program of an aircraft arrestment rig (Hiller/Jhumka/Suri, DSN 2002,
// Section 5). Six software modules exchange ten signals over a shared
// memory bus and drive a hydraulic brake valve so that an aircraft
// engaging the arrestment cable is stopped inside the runway without
// exceeding the structural retardation and cable-force limits.
//
// The module and signal names follow the paper's Figure 2: CLOCK owns
// the 10 ms minor-cycle bookkeeping, DIST_S and PRES_S are the sensor
// conditioning modules for the rotation counter and the pressure ADC,
// CALC computes the pressure set point from the braking profile, V_REG
// closes the pressure loop, and PRES_A drives the valve actuator
// register.
package target

import (
	"sync"

	"repro/internal/memmap"
	"repro/internal/model"
)

// Signal names of the arrestment target (paper Fig. 2).
const (
	// SigPACNT is the pulse accumulator: rotation pulses from the
	// cable drum, 10 pulses per metre of tape.
	SigPACNT model.SignalID = "PACNT"
	// SigTIC1 is the input-capture timer latched at the last pulse.
	SigTIC1 model.SignalID = "TIC1"
	// SigTCNT is the free-running timer register.
	SigTCNT model.SignalID = "TCNT"
	// SigADC is the brake-pressure analog-to-digital converter.
	SigADC model.SignalID = "ADC"
	// SigI is the major-cycle (frame) counter maintained by CALC.
	SigI model.SignalID = "i"
	// SigMsSlotNbr is the minor-cycle slot selector published by CLOCK.
	SigMsSlotNbr model.SignalID = "ms_slot_nbr"
	// SigMscnt counts scheduler milliseconds since start.
	SigMscnt model.SignalID = "mscnt"
	// SigPulscnt is the accumulated rotation pulse count.
	SigPulscnt model.SignalID = "pulscnt"
	// SigSlowSpeed flags tape speed below the slow threshold.
	SigSlowSpeed model.SignalID = "slow_speed"
	// SigStopped flags a standstill (no pulses for several frames).
	SigStopped model.SignalID = "stopped"
	// SigIsValue is the measured brake pressure in 0..1000 units.
	SigIsValue model.SignalID = "IsValue"
	// SigSetValue is the demanded brake pressure in 0..1000 units.
	SigSetValue model.SignalID = "SetValue"
	// SigOutValue is the regulated valve command in 0..1000 units.
	SigOutValue model.SignalID = "OutValue"
	// SigTOC2 is the output-compare register driving the valve PWM.
	SigTOC2 model.SignalID = "TOC2"
)

// Module names of the arrestment target (paper Fig. 2).
const (
	ModClock model.ModuleID = "CLOCK"
	ModDistS model.ModuleID = "DIST_S"
	ModPresS model.ModuleID = "PRES_S"
	ModCalc  model.ModuleID = "CALC"
	ModVReg  model.ModuleID = "V_REG"
	ModPresA model.ModuleID = "PRES_A"
)

// ControlPeriodMs is the major cycle: every module runs once per 10 ms
// frame, in the slot assigned by CLOCK's ms_slot_nbr.
const ControlPeriodMs = 10

// NewSystem builds the static description of the arrestment target:
// six modules, fourteen signals, one critical system output. Port
// orders match the paper's permeability tables (Table 1).
func NewSystem() *model.System {
	return model.NewBuilder("aircraft-arrestment").
		AddSignal(SigPACNT, model.Uint(16), model.AsSystemInput(),
			model.WithDoc("drum rotation pulse accumulator, 10 pulses per metre")).
		AddSignal(SigTIC1, model.Uint(16), model.AsSystemInput(),
			model.WithDoc("input-capture timer latched at the last drum pulse")).
		AddSignal(SigTCNT, model.Uint(16), model.AsSystemInput(),
			model.WithDoc("free-running timer register")).
		AddSignal(SigADC, model.Uint(10), model.AsSystemInput(),
			model.WithDoc("brake pressure ADC, 0..1023 over full scale")).
		AddSignal(SigI, model.Uint(16),
			model.WithDoc("frame counter: incremented once per major cycle by CALC")).
		AddSignal(SigMsSlotNbr, model.Uint(4),
			model.WithDoc("minor-cycle slot selector, 0..9")).
		AddSignal(SigMscnt, model.Uint(16),
			model.WithDoc("millisecond counter since system start")).
		AddSignal(SigPulscnt, model.Uint(16),
			model.WithDoc("accumulated rotation pulses: 0.1 m of tape each")).
		AddSignal(SigSlowSpeed, model.Bool(),
			model.WithDoc("tape speed below the slow-finish threshold")).
		AddSignal(SigStopped, model.Bool(),
			model.WithDoc("standstill: no drum pulses for several frames")).
		AddSignal(SigIsValue, model.Uint(10),
			model.WithDoc("measured brake pressure, 0..1000 units")).
		AddSignal(SigSetValue, model.Uint(10),
			model.WithDoc("demanded brake pressure, 0..1000 units")).
		AddSignal(SigOutValue, model.Uint(10),
			model.WithDoc("regulated valve command, 0..1000 units")).
		AddSignal(SigTOC2, model.Uint(8), model.AsSystemOutput(1.0),
			model.WithDoc("valve PWM compare register, 0..255")).
		AddModule(ModClock, model.In(SigI), model.Out(SigMsSlotNbr, SigMscnt)).
		AddModule(ModDistS, model.In(SigPACNT, SigTIC1, SigTCNT),
			model.Out(SigPulscnt, SigSlowSpeed, SigStopped)).
		AddModule(ModPresS, model.In(SigADC), model.Out(SigIsValue)).
		AddModule(ModCalc, model.In(SigI, SigMscnt, SigPulscnt, SigSlowSpeed, SigStopped),
			model.Out(SigI, SigSetValue)).
		AddModule(ModVReg, model.In(SigSetValue, SigIsValue), model.Out(SigOutValue)).
		AddModule(ModPresA, model.In(SigOutValue), model.Out(SigTOC2)).
		MustBuild()
}

var (
	sharedSysOnce sync.Once
	sharedSys     *model.System
)

// SharedSystem returns the process-wide arrestment system description.
// The description is configuration-independent and immutable after
// build, so every rig and every campaign plan can share one instance
// instead of rebuilding the wiring graph ~39 000 times per full-size
// campaign. Concurrent use is safe: all System methods are read-only.
func SharedSystem() *model.System {
	sharedSysOnce.Do(func() { sharedSys = NewSystem() })
	return sharedSys
}

// AllSignals returns every signal in declaration order.
func AllSignals() []model.SignalID {
	return []model.SignalID{
		SigPACNT, SigTIC1, SigTCNT, SigADC,
		SigI, SigMsSlotNbr, SigMscnt, SigPulscnt, SigSlowSpeed, SigStopped,
		SigIsValue, SigSetValue, SigOutValue, SigTOC2,
	}
}

// SystemInputs returns the sensor registers refreshed by the
// environment before every slot.
func SystemInputs() []model.SignalID {
	return []model.SignalID{SigPACNT, SigTIC1, SigTCNT, SigADC}
}

// clock is the CLOCK module: it ticks the millisecond counter every
// slot and publishes the minor-cycle slot selector. Once per frame it
// re-synchronises its rotation phase against the frame counter i, so a
// corrupted frame counter rotates the whole schedule — the paper's
// P(i -> ms_slot_nbr) = 1.000 coupling.
type clock struct {
	msCount *memmap.Var // RAM: millisecond counter backing mscnt
	expI    *memmap.Var // RAM: frame counter value expected at the frame boundary
	k       *memmap.Var // RAM: own minor-cycle position, 0..9
	phase   *memmap.Var // RAM: schedule rotation, 0..9
	locSlot *memmap.Var // stack: slot number being published
	locTick *memmap.Var // stack: incremented millisecond count
}

func newClock(mem *memmap.Map) *clock {
	return &clock{
		msCount: mem.AllocRAM(string(ModClock), "msCount", model.Uint(16), 0),
		expI:    mem.AllocRAM(string(ModClock), "expI", model.Uint(16), 0),
		k:       mem.AllocRAM(string(ModClock), "k", model.Uint(4), 0),
		phase:   mem.AllocRAM(string(ModClock), "phase", model.Uint(4), 0),
		locSlot: mem.AllocStack(string(ModClock), "slot", model.Uint(4)),
		locTick: mem.AllocStack(string(ModClock), "tick", model.Uint(16)),
	}
}

func (c *clock) ModuleID() model.ModuleID { return ModClock }
func (c *clock) Reset()                   {}

func (c *clock) Step(e *model.Exec) {
	c.locTick.Set(c.msCount.Get() + 1)
	c.msCount.Set(c.locTick.Get())
	e.Out(2, c.msCount.Get())

	k := c.k.Get() % 10
	if k == 0 {
		// Frame boundary: CALC must have advanced the frame counter
		// exactly once since the last boundary. Any discrepancy shifts
		// the schedule phase for the coming frames.
		i := e.In(1)
		off := (i - c.expI.Get()) % 10
		c.phase.Set((off + 10) % 10)
		c.expI.Set(i + 1)
	}
	c.locSlot.Set((k + c.phase.Get()) % 10)
	e.Out(1, c.locSlot.Get())
	c.k.Set((k + 1) % 10)
}

// distSMaxDelta is the hardened DIST_S plausibility bound on pulses per
// frame: 16 m/s of tape per 10 ms would be 160 m/s — far above any
// engagement speed, so larger deltas are sensor or memory corruption.
const distSMaxDelta = 16

// distSStopRuns is how many consecutive zero-delta frames declare
// standstill: 5 frames (50 ms) without a pulse means v < 2 m/s.
const distSStopRuns = 5

// distS is the DIST_S module: it differentiates the rotation pulse
// accumulator into per-frame deltas, accumulates the distance count and
// derives the slow-speed and standstill flags. The timer inputs TIC1
// and TCNT are sampled for the (unused) pulse-period speed estimate —
// the paper found their permeability to be exactly zero.
type distS struct {
	hardened  bool
	prevPACNT *memmap.Var // RAM: previous accumulator sample
	accum     *memmap.Var // RAM: accumulated pulse count
	lastDelta *memmap.Var // RAM: last plausible per-frame delta
	zeroRuns  *memmap.Var // RAM: consecutive zero-delta frames
	locDelta  *memmap.Var // stack: per-invocation delta
}

func newDistS(mem *memmap.Map, hardened bool) *distS {
	return &distS{
		hardened:  hardened,
		prevPACNT: mem.AllocRAM(string(ModDistS), "prevPACNT", model.Uint(16), 0),
		accum:     mem.AllocRAM(string(ModDistS), "accum", model.Uint(16), 0),
		lastDelta: mem.AllocRAM(string(ModDistS), "lastDelta", model.Uint(8), 0),
		zeroRuns:  mem.AllocRAM(string(ModDistS), "zeroRuns", model.Uint(8), 0),
		locDelta:  mem.AllocStack(string(ModDistS), "delta", model.Uint(16)),
	}
}

func (d *distS) ModuleID() model.ModuleID { return ModDistS }
func (d *distS) Reset()                   {}

// setHardened reconfigures the plausibility check for a reused rig.
func (d *distS) setHardened(on bool) { d.hardened = on }

func (d *distS) Step(e *model.Exec) {
	cnt := e.In(1)
	_ = e.In(2) // TIC1: pulse-period capture, masked by the counting logic
	_ = e.In(3) // TCNT: timer reference, masked by the counting logic

	d.locDelta.Set((cnt - d.prevPACNT.Get()) & 0xFFFF)
	d.prevPACNT.Set(cnt)
	delta := d.locDelta.Get()
	if d.hardened && delta > distSMaxDelta {
		// Implausible jump: a real drum cannot gain this many pulses
		// in one frame. Substitute the last plausible delta.
		delta = d.lastDelta.Get()
	} else {
		d.lastDelta.Set(delta)
	}

	d.accum.Add(delta)
	// Standstill detection latches: below ~2 m/s a stray pulse can still
	// arrive many frames apart, and a flickering stopped flag would make
	// CALC slam the demand between zero and the braking profile.
	zr := d.zeroRuns.Get()
	switch {
	case zr >= distSStopRuns:
		// latched
	case delta == 0:
		zr++
		d.zeroRuns.Set(zr)
	default:
		d.zeroRuns.Set(0)
		zr = 0
	}

	e.Out(1, d.accum.Get())
	e.OutBool(2, delta < 2)
	e.OutBool(3, zr >= distSStopRuns)
}

// presS is the PRES_S module: it averages a 4-sample ADC burst and
// rescales it to 0..1000 pressure units, quantised to suppress ADC
// noise. The averaging and quantisation absorb most single-bit sensor
// errors — the paper measured P(ADC -> IsValue) as negligible.
type presS struct {
	locSum *memmap.Var // stack: burst accumulator
	locVal *memmap.Var // stack: scaled pressure value
}

func newPresS(mem *memmap.Map) *presS {
	return &presS{
		locSum: mem.AllocStack(string(ModPresS), "sum", model.Uint(16)),
		locVal: mem.AllocStack(string(ModPresS), "val", model.Uint(10)),
	}
}

func (p *presS) ModuleID() model.ModuleID { return ModPresS }
func (p *presS) Reset()                   {}

func (p *presS) Step(e *model.Exec) {
	p.locSum.Set(0)
	for k := 0; k < 4; k++ {
		p.locSum.Set(p.locSum.Get() + e.In(1))
	}
	v := p.locSum.Get() / 4 * 1000 / 1023
	v -= v % 4
	p.locVal.Set(v)
	e.Out(1, p.locVal.Get())
}

// CALC braking-profile constants.
const (
	// calcStopDistanceM is the planned stop distance: 250 m of profile
	// braking leaves margin to the 335 m runway end for the estimator
	// warm-up and the hydraulic lag.
	calcStopDistanceM = 250
	// calcVEstMax caps the speed estimate (0.1 m/s units).
	calcVEstMax = 65535
)

// calc is the CALC module: the braking-profile computer. It advances
// the frame counter, estimates tape speed from the pulse count and the
// millisecond counter, and converts the constant-deceleration profile
//
//	a = v_engage^2 / (2 * stop_distance)
//
// into a pressure set point, compensating estimated drag and the
// geometric gain of the tape payout.
type calc struct {
	massKg model.Word // aircraft mass dialled in by the operator

	prevPulscnt *memmap.Var // RAM: previous pulse count sample
	prevMscnt   *memmap.Var // RAM: previous millisecond sample
	vEst        *memmap.Var // RAM: filtered speed estimate, 0.1 m/s units
	vMax        *memmap.Var // RAM: engagement speed latch, 0.1 m/s units
	lastSet     *memmap.Var // RAM: last computed demand (held at slow speed)
	locDem      *memmap.Var // stack: demand being assembled
}

func newCalc(mem *memmap.Map, massKg model.Word) *calc {
	return &calc{
		massKg:      massKg,
		prevPulscnt: mem.AllocRAM(string(ModCalc), "prevPulscnt", model.Uint(16), 0),
		prevMscnt:   mem.AllocRAM(string(ModCalc), "prevMscnt", model.Uint(16), 0),
		vEst:        mem.AllocRAM(string(ModCalc), "vEst", model.Uint(16), 0),
		vMax:        mem.AllocRAM(string(ModCalc), "vMax", model.Uint(16), 0),
		lastSet:     mem.AllocRAM(string(ModCalc), "lastSet", model.Uint(10), 0),
		locDem:      mem.AllocStack(string(ModCalc), "dem", model.Uint(10)),
	}
}

func (c *calc) ModuleID() model.ModuleID { return ModCalc }
func (c *calc) Reset()                   {}

// setMass reconfigures the operator-dialled mass for a reused rig.
func (c *calc) setMass(m model.Word) { c.massKg = m }

func (c *calc) Step(e *model.Exec) {
	i := e.In(1)
	ms := e.In(2)
	pc := e.In(3)
	slow := e.InBool(4)
	stop := e.InBool(5)

	e.Out(1, i+1)

	dt := (ms - c.prevMscnt.Get()) & 0xFFFF
	c.prevMscnt.Set(ms)
	if dt < 1 {
		dt = 1
	}
	if dt > 50 {
		dt = 50
	}

	dp := (pc - c.prevPulscnt.Get()) & 0xFFFF
	c.prevPulscnt.Set(pc)

	// Speed estimate in 0.1 m/s units: dp pulses of 0.1 m over dt ms.
	inst := dp * 1000 / dt
	v := c.vEst.Get() + (inst-c.vEst.Get())/4
	if v < 0 {
		v = 0
	}
	if v > calcVEstMax {
		v = calcVEstMax
	}
	c.vEst.Set(v)
	if v > c.vMax.Get() {
		c.vMax.Set(v)
	}

	var dem model.Word
	switch {
	case stop:
		dem = 0
	case slow:
		dem = c.lastSet.Get()
	default:
		vm := c.vMax.Get()
		dEst := pc / 10 // metres of tape paid out
		// Constant-deceleration profile from the latched engagement
		// speed, in mm/s^2: vm^2 [0.01 m^2/s^2] / (2 * stop distance).
		aMilli := vm * vm * 5 / calcStopDistanceM
		// Brake force in N, net of estimated aero and rolling drag.
		force := c.massKg*aMilli/1000 - v*v/40 - c.massKg*196/1000
		if force < 0 {
			force = 0
		}
		// Geometric gain of the tape payout, in permille.
		g := dEst
		if g > 335 {
			g = 335
		}
		geom := 1000 + 250*g/335
		dem = force * 1000000 / (420000 * geom)
		if dem > 1000 {
			dem = 1000
		}
		c.lastSet.Set(dem)
	}

	if !stop {
		// Anti-stiction dither keyed to the frame counter keeps the
		// hydraulic valve moving.
		dem += i%5 - 2
		if dem < 0 {
			dem = 0
		}
		if dem > 1000 {
			dem = 1000
		}
	}
	c.locDem.Set(dem)
	e.Out(2, c.locDem.Get())
}

// vRegMaxSlew bounds the per-frame change of the valve command.
const vRegMaxSlew = 40

// vReg is the V_REG module: the pressure regulator. It combines the
// set point feed-forward with a clamped integrator and a proportional
// term on the pressure error, then slew-limits the valve command.
type vReg struct {
	integ   *memmap.Var // RAM: error integrator
	prevOut *memmap.Var // RAM: last command written
	locErr  *memmap.Var // stack: current pressure error
	locOut  *memmap.Var // stack: slewed command
}

const vRegIntegMax = 400

func newVReg(mem *memmap.Map) *vReg {
	return &vReg{
		integ:   mem.AllocRAM(string(ModVReg), "integ", model.Int(16), 0),
		prevOut: mem.AllocRAM(string(ModVReg), "prevOut", model.Uint(10), 0),
		locErr:  mem.AllocStack(string(ModVReg), "err", model.Int(16)),
		locOut:  mem.AllocStack(string(ModVReg), "out", model.Uint(10)),
	}
}

func (v *vReg) ModuleID() model.ModuleID { return ModVReg }
func (v *vReg) Reset()                   {}

func (v *vReg) Step(e *model.Exec) {
	set := e.In(1)
	is := e.In(2)

	v.locErr.Set(set - is)
	err := v.locErr.Get()

	integ := v.integ.Get() + err/8
	if integ > vRegIntegMax {
		integ = vRegIntegMax
	}
	if integ < -vRegIntegMax {
		integ = -vRegIntegMax
	}
	v.integ.Set(integ)

	// The feed-forward does almost all the work (the valve duty maps
	// linearly to steady-state pressure); the integrator and the
	// proportional term only trim quantisation and sensor noise.
	cmd := set + integ/32 + err/16
	if cmd < 0 {
		cmd = 0
	}
	if cmd > 1000 {
		cmd = 1000
	}

	prev := v.prevOut.Get()
	d := cmd - prev
	if d > vRegMaxSlew {
		d = vRegMaxSlew
	}
	if d < -vRegMaxSlew {
		d = -vRegMaxSlew
	}
	v.locOut.Set(prev + d)
	out := v.locOut.Get()
	v.prevOut.Set(out)
	e.Out(1, out)
}

// presA is the PRES_A module: it rescales the valve command to the
// 8-bit PWM compare register.
type presA struct {
	locDuty *memmap.Var // stack: scaled duty cycle
}

func newPresA(mem *memmap.Map) *presA {
	return &presA{
		locDuty: mem.AllocStack(string(ModPresA), "duty", model.Uint(8)),
	}
}

func (p *presA) ModuleID() model.ModuleID { return ModPresA }
func (p *presA) Reset()                   {}

func (p *presA) Step(e *model.Exec) {
	p.locDuty.Set(e.In(1) * 255 / 1000)
	e.Out(1, p.locDuty.Get())
}
