// Package physics simulates the plant of the paper's target: an aircraft
// engaging a BAK-12-class rotary-friction arrestment system (MIL-A-38202C)
// on a short runway. The real rig — cable, tape drums, hydraulically
// modulated friction brakes — is proprietary hardware we cannot run, so we
// substitute a deterministic discrete-time simulation exposing exactly the
// observable interface the target software has: a rotation pulse counter
// (PACNT), an input-capture timestamp of the last pulse (TIC1), a
// free-running timer (TCNT), a pressure-sensor ADC, and a valve-command
// register (TOC2). See DESIGN.md §5 for the substitution argument.
//
// Dynamics, per simulation step:
//
//	target pressure   Pt = duty/255 · PMax
//	actual pressure   dP/dt = (Pt − P)/τ            (hydraulic lag)
//	brake force       Fb = P · BrakeGain · geom(x)   (tape-payout geometry)
//	drag force        Fd = DragCoeff·v² + RollCoeff·m·g
//	deceleration      a = (Fb + Fd)/m, v̇ = −a, ẋ = v
//
// Sensor noise is drawn from a seeded generator once per step, so golden
// runs and injection runs that execute the same number of steps observe
// identical noise — a prerequisite for golden-run comparison.
package physics

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/model"
)

// StandardGravity is g in m/s².
const StandardGravity = 9.80665

// Params configures one arrestment scenario.
type Params struct {
	// MassKg is the aircraft mass (the operator dials this into the real
	// system before an engagement).
	MassKg float64
	// EngageVelocityMps is the velocity at cable engagement.
	EngageVelocityMps float64

	// PMax is full-scale brake pressure in pressure units (the software
	// works in 0..1000 "pressure units"; the plant normalizes to 0..1).
	PMax float64
	// BrakeGain converts pressure (0..1) to braking force in newtons at
	// x = 0.
	BrakeGain float64
	// GeomGain models tape-payout geometry: effective force multiplier
	// grows linearly to (1+GeomGain) at RunwayLengthM.
	GeomGain float64
	// TauMs is the hydraulic first-order time constant in milliseconds.
	TauMs float64
	// DragCoeff is the aerodynamic drag coefficient (N per (m/s)²).
	DragCoeff float64
	// RollCoeff is rolling-resistance force as a fraction of weight.
	RollCoeff float64

	// MetersPerPulse is the cable travel per rotation-sensor pulse.
	MetersPerPulse float64
	// TimerTickUs is the period of the 16-bit free-running timer in
	// microseconds (TCNT/TIC1 resolution).
	TimerTickUs float64
	// ADCNoiseLSB is the half-range of uniform ADC noise in LSBs.
	ADCNoiseLSB int

	// RunwayLengthM is the distance at which geometry tops out and the
	// specification's stopping-distance limit applies (335 m).
	RunwayLengthM float64

	// Seed seeds the sensor-noise generator.
	Seed int64
}

// DefaultParams returns plant constants tuned so that every test case in
// the paper's 5×5 mass/velocity grid arrests within specification under
// fault-free control.
func DefaultParams(massKg, engageVelocityMps float64, seed int64) Params {
	return Params{
		MassKg:            massKg,
		EngageVelocityMps: engageVelocityMps,
		PMax:              1.0,
		BrakeGain:         420_000, // N at full pressure, x = 0
		GeomGain:          0.25,
		TauMs:             250,
		DragCoeff:         2.5,
		RollCoeff:         0.02,
		MetersPerPulse:    0.1,
		TimerTickUs:       100, // 0.1 ms timer tick
		ADCNoiseLSB:       1,
		RunwayLengthM:     335,
		Seed:              seed,
	}
}

// Validate reports whether the parameters are physically usable.
func (p Params) Validate() error {
	switch {
	case p.MassKg <= 0:
		return fmt.Errorf("physics: MassKg %v must be positive", p.MassKg)
	case p.EngageVelocityMps <= 0:
		return fmt.Errorf("physics: EngageVelocityMps %v must be positive", p.EngageVelocityMps)
	case p.PMax <= 0 || p.BrakeGain <= 0:
		return fmt.Errorf("physics: PMax/BrakeGain must be positive")
	case p.TauMs <= 0:
		return fmt.Errorf("physics: TauMs %v must be positive", p.TauMs)
	case p.MetersPerPulse <= 0:
		return fmt.Errorf("physics: MetersPerPulse %v must be positive", p.MetersPerPulse)
	case p.TimerTickUs <= 0:
		return fmt.Errorf("physics: TimerTickUs %v must be positive", p.TimerTickUs)
	case p.RunwayLengthM <= 0:
		return fmt.Errorf("physics: RunwayLengthM %v must be positive", p.RunwayLengthM)
	}
	return nil
}

// Plant is the simulated arrestment rig plus aircraft. Create with New.
type Plant struct {
	p   Params
	rng *rand.Rand

	timeS    float64
	x        float64 // distance traveled, m
	v        float64 // velocity, m/s
	pressure float64 // actual brake pressure, 0..1
	duty     float64 // commanded valve duty, 0..1

	adcNoise int // noise for the current step's ADC sample

	lastPulseCount int64
	lastPulseTick  int64

	curAccel  float64 // current deceleration, m/s²
	maxRetard float64 // max retardation seen, in g
	maxForce  float64 // max retardation force seen, N
}

// New creates a plant. It panics on invalid parameters (plants are
// constructed from validated test-case definitions).
func New(p Params) *Plant {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	pl := &Plant{
		p:   p,
		rng: rand.New(rand.NewSource(p.Seed)),
		v:   p.EngageVelocityMps,
	}
	return pl
}

// Params returns the plant configuration.
func (pl *Plant) Params() Params { return pl.p }

// Reset re-initializes the plant for a new scenario, reusing the
// allocated noise generator. A reset plant is indistinguishable from
// New(p): the generator is reseeded, so the noise sequence replays
// exactly — the precondition for golden-run comparison across pooled
// rigs.
func (pl *Plant) Reset(p Params) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	rng := pl.rng
	*pl = Plant{p: p, rng: rng, v: p.EngageVelocityMps}
	pl.rng.Seed(p.Seed)
}

// SetValveDuty applies the actuator command from the TOC2 register
// (0..255, clamped).
func (pl *Plant) SetValveDuty(duty8 model.Word) {
	if duty8 < 0 {
		duty8 = 0
	}
	if duty8 > 255 {
		duty8 = 255
	}
	pl.duty = float64(duty8) / 255
}

// StepMs advances the simulation by dtMs milliseconds using sub-ms Euler
// integration, then refreshes the sensor sample for this step.
func (pl *Plant) StepMs(dtMs int64) {
	const subDt = 0.001 // 1 ms in seconds
	for i := int64(0); i < dtMs; i++ {
		pl.stepOnce(subDt)
	}
	pl.adcNoise = pl.rng.Intn(2*pl.p.ADCNoiseLSB+1) - pl.p.ADCNoiseLSB
}

func (pl *Plant) stepOnce(dt float64) {
	// Hydraulic lag toward commanded pressure.
	tau := pl.p.TauMs / 1000
	pl.pressure += (pl.duty*pl.p.PMax - pl.pressure) * dt / tau
	if pl.pressure < 0 {
		pl.pressure = 0
	}
	if pl.pressure > pl.p.PMax {
		pl.pressure = pl.p.PMax
	}

	if pl.v <= 0 {
		pl.v = 0
		pl.timeS += dt
		return
	}

	geom := 1 + pl.p.GeomGain*math.Min(pl.x/pl.p.RunwayLengthM, 1)
	fBrake := pl.pressure * pl.p.BrakeGain * geom
	fDrag := pl.p.DragCoeff*pl.v*pl.v + pl.p.RollCoeff*pl.p.MassKg*StandardGravity
	force := fBrake + fDrag
	a := force / pl.p.MassKg

	pl.curAccel = a
	if r := a / StandardGravity; r > pl.maxRetard {
		pl.maxRetard = r
	}
	if force > pl.maxForce {
		pl.maxForce = force
	}

	pl.x += pl.v * dt
	pl.v -= a * dt
	if pl.v < 0 {
		pl.v = 0
	}
	pl.timeS += dt

	// Rotation pulses: one per MetersPerPulse of cable travel.
	if n := int64(pl.x / pl.p.MetersPerPulse); n > pl.lastPulseCount {
		pl.lastPulseCount = n
		pl.lastPulseTick = pl.timerTick()
	}
}

func (pl *Plant) timerTick() int64 {
	return int64(pl.timeS * 1e6 / pl.p.TimerTickUs)
}

// PACNT returns the 16-bit hardware pulse counter (wraps).
func (pl *Plant) PACNT() model.Word {
	return model.Word(pl.lastPulseCount) & 0xFFFF
}

// TIC1 returns the 16-bit input-capture timestamp of the last pulse.
func (pl *Plant) TIC1() model.Word {
	return model.Word(pl.lastPulseTick) & 0xFFFF
}

// TCNT returns the 16-bit free-running timer.
func (pl *Plant) TCNT() model.Word {
	return model.Word(pl.timerTick()) & 0xFFFF
}

// ADC returns the 10-bit pressure-sensor sample with this step's noise.
func (pl *Plant) ADC() model.Word {
	raw := int64(pl.pressure/pl.p.PMax*1023) + int64(pl.adcNoise)
	if raw < 0 {
		raw = 0
	}
	if raw > 1023 {
		raw = 1023
	}
	return model.Word(raw)
}

// Distance returns the distance traveled in meters.
func (pl *Plant) Distance() float64 { return pl.x }

// Velocity returns the current velocity in m/s.
func (pl *Plant) Velocity() float64 { return pl.v }

// TimeS returns the elapsed plant time in seconds.
func (pl *Plant) TimeS() float64 { return pl.timeS }

// Pressure returns the actual brake pressure (0..PMax).
func (pl *Plant) Pressure() float64 { return pl.pressure }

// RetardationG returns the current deceleration in g.
func (pl *Plant) RetardationG() float64 { return pl.curAccel / StandardGravity }

// MaxRetardationG returns the peak deceleration seen so far, in g.
func (pl *Plant) MaxRetardationG() float64 { return pl.maxRetard }

// MaxForceN returns the peak retardation force seen so far, in newtons.
func (pl *Plant) MaxForceN() float64 { return pl.maxForce }

// Stopped reports whether the aircraft has come to rest.
func (pl *Plant) Stopped() bool { return pl.v <= 0 }

// KineticEnergyJ returns the aircraft's remaining kinetic energy.
func (pl *Plant) KineticEnergyJ() float64 {
	return 0.5 * pl.p.MassKg * pl.v * pl.v
}
