package physics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func defaultPlant() *Plant {
	return New(DefaultParams(12000, 60, 1))
}

func TestParamsValidate(t *testing.T) {
	good := DefaultParams(12000, 60, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero mass", func(p *Params) { p.MassKg = 0 }},
		{"negative velocity", func(p *Params) { p.EngageVelocityMps = -1 }},
		{"zero brake gain", func(p *Params) { p.BrakeGain = 0 }},
		{"zero tau", func(p *Params) { p.TauMs = 0 }},
		{"zero pulse spacing", func(p *Params) { p.MetersPerPulse = 0 }},
		{"zero timer tick", func(p *Params) { p.TimerTickUs = 0 }},
		{"zero runway", func(p *Params) { p.RunwayLengthM = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := good
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestCoastingWithoutBrakeBarelyDecelerates(t *testing.T) {
	pl := defaultPlant()
	pl.StepMs(1000)
	// Only drag and rolling resistance: well under 0.2 g for a 12 t jet.
	if r := pl.MaxRetardationG(); r > 0.2 {
		t.Errorf("coasting retardation = %.3f g, want < 0.2 g", r)
	}
	if pl.Velocity() >= 60 {
		t.Errorf("velocity did not decrease: %v", pl.Velocity())
	}
	if pl.Distance() < 55 {
		t.Errorf("distance after 1 s at ~60 m/s = %.1f m, want > 55", pl.Distance())
	}
}

func TestFullBrakeStopsAircraft(t *testing.T) {
	pl := defaultPlant()
	pl.SetValveDuty(255)
	for i := 0; i < 60_000 && !pl.Stopped(); i++ {
		pl.StepMs(1)
	}
	if !pl.Stopped() {
		t.Fatal("aircraft did not stop within 60 s under full brake")
	}
	if d := pl.Distance(); d > 335 {
		t.Errorf("full-brake stopping distance %.1f m exceeds runway", d)
	}
}

func TestHydraulicLag(t *testing.T) {
	pl := defaultPlant()
	pl.SetValveDuty(255)
	pl.StepMs(1)
	if p := pl.Pressure(); p > 0.05 {
		t.Errorf("pressure %.3f after 1 ms, want lag (< 0.05)", p)
	}
	pl.StepMs(int64(pl.Params().TauMs))
	p1 := pl.Pressure()
	if p1 < 0.55 || p1 > 0.72 {
		t.Errorf("pressure after one tau = %.3f, want ~1-1/e = 0.632", p1)
	}
	pl.StepMs(5 * int64(pl.Params().TauMs))
	if p := pl.Pressure(); p < 0.95 {
		t.Errorf("pressure after 6 tau = %.3f, want near 1", p)
	}
}

func TestValveDutyClamped(t *testing.T) {
	pl := defaultPlant()
	pl.SetValveDuty(-10)
	pl.StepMs(500)
	if p := pl.Pressure(); p != 0 {
		t.Errorf("pressure %.3f with negative duty, want 0", p)
	}
	pl.SetValveDuty(999)
	pl.StepMs(3000)
	if p := pl.Pressure(); p > pl.Params().PMax {
		t.Errorf("pressure %.3f exceeds PMax", p)
	}
}

func TestPulseCounterTracksDistance(t *testing.T) {
	pl := defaultPlant()
	pl.StepMs(500) // ~30 m at 60 m/s
	wantPulses := int64(pl.Distance() / pl.Params().MetersPerPulse)
	if got := int64(pl.PACNT()); got != wantPulses&0xFFFF {
		t.Errorf("PACNT = %d, want %d", got, wantPulses)
	}
}

func TestTimersAre16Bit(t *testing.T) {
	pl := defaultPlant()
	pl.StepMs(10_000) // 100k timer ticks at 0.1 ms: must wrap
	if got := pl.TCNT(); got > 0xFFFF {
		t.Errorf("TCNT = %d, want 16-bit", got)
	}
	if got := pl.TIC1(); got > 0xFFFF {
		t.Errorf("TIC1 = %d, want 16-bit", got)
	}
}

func TestTIC1CapturesLastPulseTime(t *testing.T) {
	pl := defaultPlant()
	pl.StepMs(100)
	tic := pl.TIC1()
	tcnt := pl.TCNT()
	// At 60 m/s a pulse arrives every ~1.7 ms, i.e. within ~17 timer
	// ticks of now (modulo wrap, irrelevant this early).
	if tic > tcnt {
		t.Fatalf("TIC1 %d after TCNT %d", tic, tcnt)
	}
	if tcnt-tic > 40 {
		t.Errorf("last pulse %d ticks ago, want recent at 60 m/s", tcnt-tic)
	}
}

func TestADCWithinRangeAndTracksPressure(t *testing.T) {
	pl := defaultPlant()
	pl.SetValveDuty(255)
	pl.StepMs(3000)
	adc := pl.ADC()
	if adc < 0 || adc > 1023 {
		t.Fatalf("ADC = %d outside 10-bit range", adc)
	}
	want := int64(pl.Pressure() / pl.Params().PMax * 1023)
	if diff := int64(adc) - want; diff < -3 || diff > 3 {
		t.Errorf("ADC = %d, want %d ± noise", adc, want)
	}
}

func TestADCNoiseIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []int64 {
		pl := New(DefaultParams(12000, 60, seed))
		pl.SetValveDuty(128)
		var out []int64
		for i := 0; i < 200; i++ {
			pl.StepMs(1)
			out = append(out, int64(pl.ADC()))
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed runs diverge at step %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical noise sequences")
	}
}

func TestEnergyDecreasesMonotonically(t *testing.T) {
	pl := defaultPlant()
	pl.SetValveDuty(200)
	prev := pl.KineticEnergyJ()
	for i := 0; i < 5000; i++ {
		pl.StepMs(1)
		e := pl.KineticEnergyJ()
		if e > prev+1e-9 {
			t.Fatalf("kinetic energy increased at step %d: %v -> %v", i, prev, e)
		}
		prev = e
	}
}

func TestDistanceMonotoneVelocityNonNegative(t *testing.T) {
	pl := defaultPlant()
	pl.SetValveDuty(255)
	prevX := 0.0
	for i := 0; i < 30_000; i++ {
		pl.StepMs(1)
		if pl.Distance() < prevX {
			t.Fatalf("distance decreased at step %d", i)
		}
		prevX = pl.Distance()
		if pl.Velocity() < 0 {
			t.Fatalf("velocity negative at step %d", i)
		}
	}
}

// Property: for any admissible mass/velocity in the paper's envelope and
// any constant duty, the plant keeps its core invariants over 2 s.
func TestQuickPlantInvariants(t *testing.T) {
	f := func(mSel, vSel uint8, duty uint8) bool {
		mass := 8000 + float64(mSel%5)*2000 // 8..16 t
		vel := 50 + float64(vSel%5)*7.5     // 50..80 m/s
		pl := New(DefaultParams(mass, vel, int64(mSel)*31+int64(vSel)))
		pl.SetValveDuty(model.Word(duty))
		prevE := pl.KineticEnergyJ()
		for i := 0; i < 2000; i++ {
			pl.StepMs(1)
			if pl.Velocity() < 0 || pl.Distance() < 0 {
				return false
			}
			if pl.Pressure() < 0 || pl.Pressure() > pl.Params().PMax {
				return false
			}
			e := pl.KineticEnergyJ()
			if e > prevE+1e-9 {
				return false
			}
			prevE = e
			if adc := pl.ADC(); adc < 0 || adc > 1023 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMaxForceAndRetardationAccounting(t *testing.T) {
	pl := defaultPlant()
	pl.SetValveDuty(255)
	for !pl.Stopped() {
		pl.StepMs(1)
		if pl.TimeS() > 60 {
			t.Fatal("did not stop")
		}
	}
	if pl.MaxForceN() <= 0 {
		t.Error("MaxForceN not recorded")
	}
	if pl.MaxRetardationG() <= 0 {
		t.Error("MaxRetardationG not recorded")
	}
	// Peak force over mass must be consistent with peak retardation.
	impliedG := pl.MaxForceN() / pl.Params().MassKg / StandardGravity
	if math.Abs(impliedG-pl.MaxRetardationG()) > 0.05 {
		t.Errorf("force/retardation inconsistent: %.3f g vs %.3f g", impliedG, pl.MaxRetardationG())
	}
}
