package experiment

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sut"
	"repro/internal/target"
)

func smallOpts() Options {
	opts := DefaultOptions(1)
	opts.Cases = []sut.Case{
		{ID: 1, P1: 8000, P2: 50},
		{ID: 2, P1: 16000, P2: 80},
	}
	opts.Workers = 8
	return opts
}

func TestOptionsValidate(t *testing.T) {
	good := DefaultOptions(1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*Options)
	}{
		{"no cases", func(o *Options) { o.Cases = nil }},
		{"zero workers", func(o *Options) { o.Workers = 0 }},
		{"zero max run", func(o *Options) { o.MaxRunMs = 0 }},
		{"negative tail", func(o *Options) { o.TailMs = -1 }},
		{"zero period", func(o *Options) { o.PeriodicMs = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			o := good
			tt.mutate(&o)
			if err := o.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestGoldenRunsProduceAlignedTraces(t *testing.T) {
	opts := smallOpts()
	tgt, err := resolvedTarget(opts)
	if err != nil {
		t.Fatal(err)
	}
	golds, err := goldens(context.Background(), opts, tgt)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range golds {
		if g.arrestMs <= 0 || g.arrestMs > opts.MaxRunMs {
			t.Errorf("%v: arrest at %d ms", g.tc, g.arrestMs)
		}
		if g.horizonMs != g.arrestMs+opts.TailMs {
			t.Errorf("%v: horizon %d != arrest %d + tail", g.tc, g.horizonMs, g.arrestMs)
		}
		// One sample per slot from t=0 through the horizon.
		if got, want := g.trace.Len(), int(g.horizonMs); got != want {
			t.Errorf("%v: trace has %d samples, want %d", g.tc, got, want)
		}
	}
}

func TestEstimatePermeabilityRejectsBadArgs(t *testing.T) {
	opts := smallOpts()
	if _, err := EstimatePermeability(context.Background(), opts, 0); err == nil {
		t.Error("perInput 0 accepted")
	}
	bad := opts
	bad.Workers = 0
	if _, err := EstimatePermeability(context.Background(), bad, 10); err == nil {
		t.Error("invalid options accepted")
	}
}

func TestEstimatePermeabilitySmallCampaign(t *testing.T) {
	opts := smallOpts()
	res, err := EstimatePermeability(context.Background(), opts, 8) // 4 per case per input
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRuns != 13*8 { // 13 module input ports
		t.Errorf("TotalRuns = %d, want %d", res.TotalRuns, 13*8)
	}
	if res.ActiveRuns < res.TotalRuns*9/10 {
		t.Errorf("only %d/%d runs active", res.ActiveRuns, res.TotalRuns)
	}
	sys := target.NewSystem()
	for _, e := range sys.Edges() {
		v := res.Matrix.Get(e)
		if v < 0 || v > 1 {
			t.Errorf("edge %v permeability %v outside [0,1]", e, v)
		}
	}
	// Structural facts that hold even at tiny sample sizes.
	for _, e := range sys.Edges() {
		switch {
		case e.From == target.SigTIC1 || e.From == target.SigTCNT:
			if got := res.Matrix.Get(e); got != 0 {
				t.Errorf("%s -> %s = %v, want 0 (timer inputs are masked)", e.From, e.To, got)
			}
		case e.From == target.SigI && e.To == target.SigMsSlotNbr:
			if got := res.Matrix.Get(e); got != 1 {
				t.Errorf("i -> ms_slot_nbr = %v, want 1", got)
			}
		case e.From == target.SigI && e.To == target.SigMscnt:
			if got := res.Matrix.Get(e); got != 0 {
				t.Errorf("i -> mscnt = %v, want 0", got)
			}
		}
	}
}

func TestEstimatePermeabilityDeterministic(t *testing.T) {
	opts := smallOpts()
	a, err := EstimatePermeability(context.Background(), opts, 6)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 2 // determinism must not depend on parallelism
	b, err := EstimatePermeability(context.Background(), opts, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range target.NewSystem().Edges() {
		if a.Matrix.Get(e) != b.Matrix.Get(e) {
			t.Errorf("edge %v differs across identical campaigns: %v vs %v",
				e, a.Matrix.Get(e), b.Matrix.Get(e))
		}
	}
}

func TestInputCoverageSmallCampaign(t *testing.T) {
	opts := smallOpts()
	res, err := InputCoverage(context.Background(), opts, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 system inputs", len(res.Rows))
	}
	for _, row := range res.Rows {
		switch row.Signal {
		case target.SigADC, target.SigTIC1, target.SigTCNT:
			// The paper: these errors do not propagate to guarded
			// signals, so no EA may fire.
			if got := row.PerSet[SetEH].Successes; got != 0 {
				t.Errorf("%s: %d EH detections, want 0", row.Signal, got)
			}
		case target.SigPACNT:
			if got := row.PerSet[SetPA].Estimate(); got < 0.5 {
				t.Errorf("PACNT PA coverage = %v, want majority detection", got)
			}
		}
		if row.Active > row.Injected {
			t.Errorf("%s: active %d > injected %d", row.Signal, row.Active, row.Injected)
		}
	}
	if res.All.Injected == 0 {
		t.Error("All row empty")
	}
}

func TestInputCoverageEHEqualsPA(t *testing.T) {
	if testing.Short() {
		t.Skip("medium campaign")
	}
	opts := smallOpts()
	res, err := InputCoverage(context.Background(), opts, 60, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Table 4 headline: "the obtained coverage for the two
	// sets of EA's is the same".
	eh := res.All.PerSet[SetEH]
	pa := res.All.PerSet[SetPA]
	if eh.Trials != pa.Trials {
		t.Fatalf("trial mismatch: %d vs %d", eh.Trials, pa.Trials)
	}
	diff := eh.Successes - pa.Successes
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.02*float64(eh.Trials)+1 {
		t.Errorf("EH detections %d vs PA %d differ beyond tolerance", eh.Successes, pa.Successes)
	}
	// And EA4 (pulscnt) dominates detection.
	var pacnt *CoverageRow
	for i := range res.Rows {
		if res.Rows[i].Signal == target.SigPACNT {
			pacnt = &res.Rows[i]
		}
	}
	if pacnt == nil {
		t.Fatal("no PACNT row")
	}
	ea4 := pacnt.PerEA[target.EA4].Estimate()
	for name, p := range pacnt.PerEA {
		if name != target.EA4 && p.Estimate() > ea4 {
			t.Errorf("%s coverage %v exceeds EA4 %v", name, p.Estimate(), ea4)
		}
	}
}

func TestInternalCoverageSmallCampaign(t *testing.T) {
	opts := smallOpts()
	res, err := InternalCoverage(context.Background(), opts, 20, 12)
	if err != nil {
		t.Fatal(err)
	}
	if res.RAMLocations != 20 || res.StackLocations != 12 {
		t.Errorf("sampled %d/%d locations, want 20/12", res.RAMLocations, res.StackLocations)
	}
	wantRuns := (20 + 12) * len(opts.Cases)
	if got := res.Total.Runs; got != wantRuns {
		t.Errorf("total runs = %d, want %d", got, wantRuns)
	}
	for _, rc := range []RegionCoverage{res.RAM, res.Stack, res.Total} {
		eh := rc.PerSet[SetEH].Tot.Estimate()
		pa := rc.PerSet[SetPA].Tot.Estimate()
		if pa > eh {
			t.Errorf("%s: PA coverage %v exceeds EH %v (PA is a subset)", rc.Region, pa, eh)
		}
		ext := rc.PerSet[SetExtended].Tot
		ehp := rc.PerSet[SetEH].Tot
		if ext != ehp {
			t.Errorf("%s: extended coverage %v != EH %v (same EA set)", rc.Region, ext, ehp)
		}
	}
}

func TestInternalCoveragePASignificantlyBelowEH(t *testing.T) {
	if testing.Short() {
		t.Skip("medium campaign")
	}
	opts := smallOpts()
	res, err := InternalCoverage(context.Background(), opts, 60, 40)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Figure 3 headline: under the internal error model the
	// PA set loses substantial coverage versus the EH set, more on the
	// stack than in RAM.
	ramEH := res.RAM.PerSet[SetEH].Tot.Estimate()
	ramPA := res.RAM.PerSet[SetPA].Tot.Estimate()
	if ramPA >= ramEH*0.95 {
		t.Errorf("RAM: PA %v not clearly below EH %v", ramPA, ramEH)
	}
	stkEH := res.Stack.PerSet[SetEH].Tot.Estimate()
	stkPA := res.Stack.PerSet[SetPA].Tot.Estimate()
	if stkPA >= stkEH*0.8 {
		t.Errorf("Stack: PA %v not well below EH %v", stkPA, stkEH)
	}
	if res.Total.Failures == 0 {
		t.Error("no failures induced; c_fail undefined")
	}
}

// TestMeasuredSelectionsReproducePaper is the headline end-to-end test:
// estimate permeabilities on OUR target by fault injection, run the
// placement rules on the measured matrix, and require the paper's
// selections — PA set {SetValue, i, pulscnt, OutValue} and extended set
// equal to the EH set of seven signals.
func TestMeasuredSelectionsReproducePaper(t *testing.T) {
	if testing.Short() {
		t.Skip("medium campaign")
	}
	opts := smallOpts()
	res, err := EstimatePermeability(context.Background(), opts, 40)
	if err != nil {
		t.Fatal(err)
	}
	requireSelections(t, res)
}

func TestInternalCoverageRejectsBadCounts(t *testing.T) {
	opts := smallOpts()
	if _, err := InternalCoverage(context.Background(), opts, 0, 5); err == nil {
		t.Error("zero RAM locations accepted")
	}
	if _, err := InputCoverage(context.Background(), opts, 0, nil); err == nil {
		t.Error("zero perSignal accepted")
	}
}

// requireSelections asserts that placement over the measured matrix
// reproduces the paper's PA and extended selections.
func requireSelections(t *testing.T, res *PermeabilityResult) {
	t.Helper()
	pr, err := core.BuildProfile(res.Matrix)
	if err != nil {
		t.Fatal(err)
	}
	th := core.DefaultThresholds()

	wantPA := map[model.SignalID]bool{
		target.SigSetValue: true, target.SigI: true,
		target.SigPulscnt: true, target.SigOutValue: true,
	}
	gotPA := core.SelectPA(pr, th).Selected()
	if len(gotPA) != len(wantPA) {
		t.Errorf("PA selection = %v, want 4 signals", gotPA)
	}
	for _, s := range gotPA {
		if !wantPA[s] {
			t.Errorf("PA selected %s, paper did not", s)
		}
	}

	wantExt := map[model.SignalID]bool{
		target.SigSetValue: true, target.SigI: true,
		target.SigPulscnt: true, target.SigOutValue: true,
		target.SigIsValue: true, target.SigMscnt: true, target.SigMsSlotNbr: true,
	}
	gotExt := core.SelectExtended(pr, th).Selected()
	if len(gotExt) != len(wantExt) {
		t.Errorf("extended selection = %v, want 7 signals", gotExt)
	}
	for _, s := range gotExt {
		if !wantExt[s] {
			t.Errorf("extended selected %s, paper did not", s)
		}
	}
}
