// Package experiment orchestrates the paper's fault-injection campaigns
// end to end on the reimplemented target: permeability estimation
// (Table 1), detection coverage under the input error model (Table 4)
// and under the internal error model (Figure 3). It is the "measured
// mode" of DESIGN.md §3 — absolute numbers are properties of our
// reconstructed target, the shape is compared against the paper in
// EXPERIMENTS.md and integration tests.
//
// Every campaign is expressed as a campaign.Campaign (Plan, Execute,
// Reduce) and scheduled by a pluggable campaign.Executor; the entry
// points here only build plans and fold results. Results are invariant
// across executors, worker counts and shard counts — all randomness is
// keyed by plan index, never by scheduling.
package experiment

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/campaign"
	"repro/internal/campaign/dispatch"
	"repro/internal/model"
	"repro/internal/target"
	"repro/internal/trace"
)

// DispatchConfig selects multi-process campaign execution: shards are
// shipped to worker subprocesses (re-execs of the current binary in
// worker mode) with per-shard deadlines, retries, integrity checks and
// optional checkpoint/resume. All fields beyond Command tune the
// hardening; results are byte-identical to in-process execution.
type DispatchConfig struct {
	// Command is the worker argv; empty runs shards in-process (the
	// dispatcher's degraded mode, still honoring Checkpoint).
	Command []string `json:"-"`
	// Env is appended to each worker's environment.
	Env []string `json:"-"`
	// Checkpoint names the shard journal enabling crash/resume ("" off).
	Checkpoint string `json:"-"`
	// ShardTimeout is the per-shard worker deadline (0 selects
	// dispatch.DefaultShardTimeout).
	ShardTimeout time.Duration `json:"-"`
	// Retries is how many times a failed shard is re-dispatched
	// (0 selects the default budget; negative disables retries).
	Retries int `json:"-"`
	// Log receives dispatcher diagnostics (nil discards them).
	Log io.Writer `json:"-"`
	// WorkerStderr receives worker-process stderr (nil discards it).
	WorkerStderr io.Writer `json:"-"`
}

// Options configures a campaign.
type Options struct {
	// Cases is the test-case workload (the paper's 25 arrestments).
	Cases []target.TestCase
	// Seed drives all campaign randomness (bit and time choices) and
	// plant noise. Same seed, same results, regardless of Workers.
	Seed int64
	// Workers bounds campaign parallelism (runs are independent).
	Workers int
	// Shards overrides the sharded executor's deterministic shard count
	// (0 selects campaign.DefaultShards). Like Workers it never affects
	// results, only how the plan is partitioned for scheduling.
	Shards int
	// Timings, when non-nil, receives one engine-observed wall-clock row
	// per campaign (the BENCH_campaigns.json hook).
	Timings *campaign.Collector `json:"-"`
	// Dispatch, when non-nil, moves execution onto the fault-tolerant
	// subprocess dispatcher. Never set inside a worker process.
	Dispatch *DispatchConfig `json:"-"`
	// MaxRunMs bounds a single run.
	MaxRunMs int64
	// TailMs extends recording past software arrest, so detections
	// around standstill are observed.
	TailMs int64
	// GraceMs extends injected runs past the golden horizon before
	// declaring "not arrested".
	GraceMs int64
	// PeriodicMs is the injection period of the internal error model.
	PeriodicMs int64

	// Adaptive enables the adaptive-campaign layer: def/use equivalence
	// pruning of the internal-model grid and sequential early stopping
	// of permeability streams (docs/adaptive.md). Off, campaigns run the
	// paper-faithful exact grid.
	Adaptive bool
	// StopHalfWidth is the Wilson 95% half-width at which an adaptive
	// stream stops sampling (0 selects the 0.05 default; negative
	// disables early stopping, leaving only equivalence pruning).
	StopHalfWidth float64
	// StopMinTrials is the floor below which the stopping rule never
	// fires (0 selects the 100 default; negative means no floor).
	StopMinTrials int

	// execOverride, when non-nil, replaces the selected executor. Tests
	// use it to compose fault-injecting wrappers (campaign/chaos) around
	// the engine; being unexported it never crosses the wire to workers.
	execOverride campaign.Executor
}

// DefaultOptions returns the full-size campaign configuration.
func DefaultOptions(seed int64) Options {
	return Options{
		Cases:      target.DefaultTestCases(),
		Seed:       seed,
		Workers:    8,
		MaxRunMs:   30_000,
		TailMs:     500,
		GraceMs:    5_000,
		PeriodicMs: 20,
	}
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	switch {
	case len(o.Cases) == 0:
		return fmt.Errorf("experiment: no test cases")
	case o.Workers < 1:
		return fmt.Errorf("experiment: Workers %d must be >= 1", o.Workers)
	case o.MaxRunMs <= 0:
		return fmt.Errorf("experiment: MaxRunMs %d must be positive", o.MaxRunMs)
	case o.TailMs < 0 || o.GraceMs < 0:
		return fmt.Errorf("experiment: negative tail/grace")
	case o.PeriodicMs <= 0:
		return fmt.Errorf("experiment: PeriodicMs %d must be positive", o.PeriodicMs)
	}
	if d := o.Dispatch; d != nil {
		if d.ShardTimeout < 0 {
			return fmt.Errorf("experiment: Dispatch.ShardTimeout %v must not be negative", d.ShardTimeout)
		}
		if d.Retries < -1 {
			return fmt.Errorf("experiment: Dispatch.Retries %d must be >= -1", d.Retries)
		}
	}
	return nil
}

// executor returns the executor the options select: the subprocess
// dispatcher when Dispatch is configured, serial for a single worker,
// the sharded worker pool otherwise.
func (o Options) executor() campaign.Executor {
	if o.execOverride != nil {
		return o.execOverride
	}
	if d := o.Dispatch; d != nil {
		return &dispatch.Subprocess{
			Command:      d.Command,
			Env:          d.Env,
			WorkerStderr: d.WorkerStderr,
			Workers:      o.Workers,
			Shards:       o.Shards,
			ShardTimeout: d.ShardTimeout,
			Retries:      d.Retries,
			Seed:         o.Seed,
			Checkpoint:   d.Checkpoint,
			Log:          d.Log,
		}
	}
	if o.Workers <= 1 {
		return campaign.Serial{}
	}
	return campaign.Sharded{Workers: o.Workers, Shards: o.Shards}
}

// golden is the reference data of one test case.
type golden struct {
	tc        target.TestCase
	trace     *trace.Trace
	arrestMs  int64
	horizonMs int64
}

// caseSeed derives the plant-noise seed of a test case. Golden and
// injection runs of the same case share it, so sensor noise replays
// identically — the precondition for golden-run comparison.
func caseSeed(opts Options, tc target.TestCase) int64 {
	return opts.Seed*1009 + int64(tc.ID)
}

// runSeed derives the randomness seed of one injection run.
func runSeed(opts Options, campaign string, index int) int64 {
	h := opts.Seed
	for _, c := range campaign {
		h = h*131 + int64(c)
	}
	return h*1_000_003 + int64(index)
}

// describeRun renders one run's identity for engine diagnostics: the
// campaign-derived seed and the test case a failing run belonged to.
func describeRun(opts Options, name string, index, caseIdx int) string {
	if caseIdx < 0 || caseIdx >= len(opts.Cases) {
		return fmt.Sprintf("seed=%d", runSeed(opts, name, index))
	}
	tc := opts.Cases[caseIdx]
	return fmt.Sprintf("seed=%d case=%d mass=%.0fkg v=%.0fm/s",
		runSeed(opts, name, index), tc.ID, tc.MassKg, tc.EngageVelocityMps)
}

// runGolden executes the fault-free reference run of a test case,
// recording every signal at the 1 ms slot period. The recorded trace is
// retained (goldens are cached and compared against for the rest of the
// process), so the recorder is deliberately not pooled.
func runGolden(opts Options, tc target.TestCase) (*golden, error) {
	rig, err := target.AcquireRig(tc.Config(caseSeed(opts, tc)))
	if err != nil {
		return nil, err
	}
	defer target.ReleaseRig(rig)
	rec := trace.NewRecorder(rig.Bus, target.AllSignals(), 1, opts.MaxRunMs)
	rig.Sched.OnPostSlot(rec.Hook)
	arrested, err := rig.RunUntilArrested(opts.MaxRunMs)
	if err != nil {
		return nil, err
	}
	if !arrested {
		return nil, fmt.Errorf("experiment: golden run of %v did not arrest within %d ms", tc, opts.MaxRunMs)
	}
	arrest := rig.Sched.NowMs()
	if err := rig.RunFor(opts.TailMs); err != nil {
		return nil, err
	}
	return &golden{
		tc:        tc,
		trace:     rec.Trace(),
		arrestMs:  arrest,
		horizonMs: rig.Sched.NowMs(),
	}, nil
}

// goldens returns the reference data of every case, computing cache
// misses on the options' executor and memoizing them in the
// process-wide GoldenCache. Misses are sharded by the same case key as
// injection runs, so a sharded worker computes exactly the goldens its
// own shard needs.
func goldens(ctx context.Context, opts Options) ([]*golden, error) {
	out := make([]*golden, len(opts.Cases))
	var missing []int
	for i, tc := range opts.Cases {
		if g, ok := globalGoldens.lookup(keyFor(opts, tc)); ok {
			out[i] = g
		} else {
			missing = append(missing, i)
		}
	}
	if len(missing) == 0 {
		return out, nil
	}
	keys := make([]uint64, len(missing))
	for j, i := range missing {
		keys[j] = shardKeyFor(opts, opts.Cases[i])
	}
	err := opts.executor().Run(ctx, len(missing), keys, func(j int) error {
		i := missing[j]
		g, err := runGolden(opts, opts.Cases[i])
		if err != nil {
			return fmt.Errorf("golden run of case %d: %w", opts.Cases[i].ID, err)
		}
		out[i] = g
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, i := range missing {
		globalGoldens.store(keyFor(opts, opts.Cases[i]), out[i])
	}
	return out, nil
}

// pickBit draws a uniformly random bit index for a signal.
func pickBit(rng *rand.Rand, sys *model.System, sig model.SignalID) uint8 {
	s, ok := sys.Signal(sig)
	if !ok {
		panic(fmt.Sprintf("experiment: unknown signal %q", sig))
	}
	return uint8(rng.Intn(int(s.Type.Width)))
}
