// Package experiment orchestrates the paper's fault-injection campaigns
// end to end on the reimplemented target: permeability estimation
// (Table 1), detection coverage under the input error model (Table 4)
// and under the internal error model (Figure 3). It is the "measured
// mode" of DESIGN.md §3 — absolute numbers are properties of our
// reconstructed target, the shape is compared against the paper in
// EXPERIMENTS.md and integration tests.
package experiment

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/model"
	"repro/internal/target"
	"repro/internal/trace"
)

// Options configures a campaign.
type Options struct {
	// Cases is the test-case workload (the paper's 25 arrestments).
	Cases []target.TestCase
	// Seed drives all campaign randomness (bit and time choices) and
	// plant noise. Same seed, same results, regardless of Workers.
	Seed int64
	// Workers bounds campaign parallelism (runs are independent).
	Workers int
	// MaxRunMs bounds a single run.
	MaxRunMs int64
	// TailMs extends recording past software arrest, so detections
	// around standstill are observed.
	TailMs int64
	// GraceMs extends injected runs past the golden horizon before
	// declaring "not arrested".
	GraceMs int64
	// PeriodicMs is the injection period of the internal error model.
	PeriodicMs int64
}

// DefaultOptions returns the full-size campaign configuration.
func DefaultOptions(seed int64) Options {
	return Options{
		Cases:      target.DefaultTestCases(),
		Seed:       seed,
		Workers:    8,
		MaxRunMs:   30_000,
		TailMs:     500,
		GraceMs:    5_000,
		PeriodicMs: 20,
	}
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	switch {
	case len(o.Cases) == 0:
		return fmt.Errorf("experiment: no test cases")
	case o.Workers < 1:
		return fmt.Errorf("experiment: Workers %d must be >= 1", o.Workers)
	case o.MaxRunMs <= 0:
		return fmt.Errorf("experiment: MaxRunMs %d must be positive", o.MaxRunMs)
	case o.TailMs < 0 || o.GraceMs < 0:
		return fmt.Errorf("experiment: negative tail/grace")
	case o.PeriodicMs <= 0:
		return fmt.Errorf("experiment: PeriodicMs %d must be positive", o.PeriodicMs)
	}
	return nil
}

// golden is the reference data of one test case.
type golden struct {
	tc        target.TestCase
	trace     *trace.Trace
	arrestMs  int64
	horizonMs int64
}

// caseSeed derives the plant-noise seed of a test case. Golden and
// injection runs of the same case share it, so sensor noise replays
// identically — the precondition for golden-run comparison.
func caseSeed(opts Options, tc target.TestCase) int64 {
	return opts.Seed*1009 + int64(tc.ID)
}

// runSeed derives the randomness seed of one injection run.
func runSeed(opts Options, campaign string, index int) int64 {
	h := opts.Seed
	for _, c := range campaign {
		h = h*131 + int64(c)
	}
	return h*1_000_003 + int64(index)
}

// runGolden executes the fault-free reference run of a test case,
// recording every signal at the 1 ms slot period. The recorded trace is
// retained (goldens are cached and compared against for the rest of the
// process), so the recorder is deliberately not pooled.
func runGolden(opts Options, tc target.TestCase) (*golden, error) {
	rig, err := target.AcquireRig(tc.Config(caseSeed(opts, tc)))
	if err != nil {
		return nil, err
	}
	defer target.ReleaseRig(rig)
	rec := trace.NewRecorder(rig.Bus, target.AllSignals(), 1, opts.MaxRunMs)
	rig.Sched.OnPostSlot(rec.Hook)
	arrested, err := rig.RunUntilArrested(opts.MaxRunMs)
	if err != nil {
		return nil, err
	}
	if !arrested {
		return nil, fmt.Errorf("experiment: golden run of %v did not arrest within %d ms", tc, opts.MaxRunMs)
	}
	arrest := rig.Sched.NowMs()
	if err := rig.RunFor(opts.TailMs); err != nil {
		return nil, err
	}
	return &golden{
		tc:        tc,
		trace:     rec.Trace(),
		arrestMs:  arrest,
		horizonMs: rig.Sched.NowMs(),
	}, nil
}

// goldens returns the reference data of every case, computing cache
// misses in parallel and memoizing them in the process-wide GoldenCache.
func goldens(opts Options) ([]*golden, error) {
	out := make([]*golden, len(opts.Cases))
	var missing []int
	for i, tc := range opts.Cases {
		if g, ok := globalGoldens.lookup(keyFor(opts, tc)); ok {
			out[i] = g
		} else {
			missing = append(missing, i)
		}
	}
	if len(missing) == 0 {
		return out, nil
	}
	errs := make([]error, len(missing))
	parallelFor(len(missing), opts.Workers, func(j int) {
		i := missing[j]
		out[i], errs[j] = runGolden(opts, opts.Cases[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, i := range missing {
		globalGoldens.store(keyFor(opts, opts.Cases[i]), out[i])
	}
	return out, nil
}

// parallelFor runs fn(0..n-1) on up to workers goroutines and waits.
// fn must only touch index-owned state.
func parallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// pickBit draws a uniformly random bit index for a signal.
func pickBit(rng *rand.Rand, sys *model.System, sig model.SignalID) uint8 {
	s, ok := sys.Signal(sig)
	if !ok {
		panic(fmt.Sprintf("experiment: unknown signal %q", sig))
	}
	return uint8(rng.Intn(int(s.Type.Width)))
}
