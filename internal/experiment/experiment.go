// Package experiment orchestrates the paper's fault-injection campaigns
// end to end on the reimplemented target: permeability estimation
// (Table 1), detection coverage under the input error model (Table 4)
// and under the internal error model (Figure 3). It is the "measured
// mode" of DESIGN.md §3 — absolute numbers are properties of our
// reconstructed target, the shape is compared against the paper in
// EXPERIMENTS.md and integration tests.
//
// Every campaign is expressed as a campaign.Campaign (Plan, Execute,
// Reduce) and scheduled by a pluggable campaign.Executor; the entry
// points here only build plans and fold results. Results are invariant
// across executors, worker counts and shard counts — all randomness is
// keyed by plan index, never by scheduling.
//
// Campaigns are generic over the system under test: everything
// target-specific — rig construction, test cases, assertion banks,
// completion and failure semantics, seed policies — is reached through
// the sut.Target seam, selected by Options.Target from the process-wide
// registry (docs/targets.md). The default is the paper's arrestment
// system; the campaigns run unchanged against any registered entry.
package experiment

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/campaign"
	"repro/internal/campaign/dispatch"
	"repro/internal/model"
	"repro/internal/sut"
	"repro/internal/trace"
)

// DispatchConfig selects multi-process campaign execution: shards are
// shipped to worker subprocesses (re-execs of the current binary in
// worker mode) with per-shard deadlines, retries, integrity checks and
// optional checkpoint/resume. All fields beyond Command tune the
// hardening; results are byte-identical to in-process execution.
type DispatchConfig struct {
	// Command is the worker argv; empty runs shards in-process (the
	// dispatcher's degraded mode, still honoring Checkpoint).
	Command []string `json:"-"`
	// Env is appended to each worker's environment.
	Env []string `json:"-"`
	// Checkpoint names the shard journal enabling crash/resume ("" off).
	Checkpoint string `json:"-"`
	// ShardTimeout is the per-shard worker deadline (0 selects
	// dispatch.DefaultShardTimeout).
	ShardTimeout time.Duration `json:"-"`
	// Retries is how many times a failed shard is re-dispatched
	// (0 selects the default budget; negative disables retries).
	Retries int `json:"-"`
	// Log receives dispatcher diagnostics (nil discards them).
	Log io.Writer `json:"-"`
	// WorkerStderr receives worker-process stderr (nil discards it).
	WorkerStderr io.Writer `json:"-"`

	// Fleet lists networked worker-agent addresses; FleetListen
	// additionally accepts incoming agent registrations. Either being
	// set moves execution onto the fleet coordinator (with the
	// subprocess dispatcher as its degradation fallback).
	Fleet       []string `json:"-"`
	FleetListen string   `json:"-"`
	// Heartbeat is the fleet worker ping interval (0 selects the
	// default; negative disables heartbeats).
	Heartbeat time.Duration `json:"-"`
	// Spec is the encoded WorkerSpec the fleet coordinator ships to
	// worker agents at handshake (the same JSON Env carries for
	// subprocess workers).
	Spec string `json:"-"`
}

// Options configures a campaign.
type Options struct {
	// Target names the registered system under test ("" selects
	// sut.DefaultTarget, the arrestment system).
	Target string
	// Cases is the test-case workload (the paper's 25 arrestments for
	// the default target).
	Cases []sut.Case
	// Seed drives all campaign randomness (bit and time choices) and
	// plant noise. Same seed, same results, regardless of Workers.
	Seed int64
	// Workers bounds campaign parallelism (runs are independent).
	Workers int
	// Shards overrides the sharded executor's deterministic shard count
	// (0 selects campaign.DefaultShards). Like Workers it never affects
	// results, only how the plan is partitioned for scheduling.
	Shards int
	// Timings, when non-nil, receives one engine-observed wall-clock row
	// per campaign (the BENCH_campaigns.json hook).
	Timings *campaign.Collector `json:"-"`
	// Dispatch, when non-nil, moves execution onto the fault-tolerant
	// subprocess dispatcher. Never set inside a worker process.
	Dispatch *DispatchConfig `json:"-"`
	// MaxRunMs bounds a single run.
	MaxRunMs int64
	// TailMs extends recording past software arrest, so detections
	// around standstill are observed.
	TailMs int64
	// GraceMs extends injected runs past the golden horizon before
	// declaring "not arrested".
	GraceMs int64
	// PeriodicMs is the injection period of the internal error model.
	PeriodicMs int64

	// Adaptive enables the adaptive-campaign layer: def/use equivalence
	// pruning of the internal-model grid and sequential early stopping
	// of permeability streams (docs/adaptive.md). Off, campaigns run the
	// paper-faithful exact grid.
	Adaptive bool
	// StopHalfWidth is the Wilson 95% half-width at which an adaptive
	// stream stops sampling (0 selects the 0.05 default; negative
	// disables early stopping, leaving only equivalence pruning).
	StopHalfWidth float64
	// StopMinTrials is the floor below which the stopping rule never
	// fires (0 selects the 100 default; negative means no floor).
	StopMinTrials int

	// execOverride, when non-nil, replaces the selected executor. Tests
	// use it to compose fault-injecting wrappers (campaign/chaos) around
	// the engine; being unexported it never crosses the wire to workers.
	execOverride campaign.Executor
}

// DefaultOptions returns the full-size campaign configuration for the
// default (arrestment) target.
func DefaultOptions(seed int64) Options {
	opts, err := DefaultOptionsFor(sut.DefaultTarget, seed)
	if err != nil {
		panic(err) // the default target is always registered
	}
	return opts
}

// DefaultOptionsFor returns the full-size campaign configuration of a
// registered target: its workload grid and horizon defaults.
func DefaultOptionsFor(name string, seed int64) (Options, error) {
	t, err := sut.Lookup(name)
	if err != nil {
		return Options{}, err
	}
	d := t.Defaults()
	return Options{
		Target:     t.Name(),
		Cases:      t.DefaultCases(),
		Seed:       seed,
		Workers:    8,
		MaxRunMs:   d.MaxRunMs,
		TailMs:     d.TailMs,
		GraceMs:    d.GraceMs,
		PeriodicMs: d.PeriodicMs,
	}, nil
}

// resolvedTarget looks the options' target up in the registry.
func resolvedTarget(opts Options) (sut.Target, error) {
	return sut.Lookup(opts.Target)
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	switch {
	case len(o.Cases) == 0:
		return fmt.Errorf("experiment: no test cases")
	case o.Workers < 1:
		return fmt.Errorf("experiment: Workers %d must be >= 1", o.Workers)
	case o.MaxRunMs <= 0:
		return fmt.Errorf("experiment: MaxRunMs %d must be positive", o.MaxRunMs)
	case o.TailMs < 0 || o.GraceMs < 0:
		return fmt.Errorf("experiment: negative tail/grace")
	case o.PeriodicMs <= 0:
		return fmt.Errorf("experiment: PeriodicMs %d must be positive", o.PeriodicMs)
	}
	if d := o.Dispatch; d != nil {
		if d.ShardTimeout < 0 {
			return fmt.Errorf("experiment: Dispatch.ShardTimeout %v must not be negative", d.ShardTimeout)
		}
		if d.Retries < -1 {
			return fmt.Errorf("experiment: Dispatch.Retries %d must be >= -1", d.Retries)
		}
	}
	return nil
}

// executor returns the executor the options select: the subprocess
// dispatcher when Dispatch is configured, serial for a single worker,
// the sharded worker pool otherwise.
func (o Options) executor() campaign.Executor {
	if o.execOverride != nil {
		return o.execOverride
	}
	if d := o.Dispatch; d != nil {
		sub := &dispatch.Subprocess{
			Command:      d.Command,
			Env:          d.Env,
			WorkerStderr: d.WorkerStderr,
			Workers:      o.Workers,
			Shards:       o.Shards,
			ShardTimeout: d.ShardTimeout,
			Retries:      d.Retries,
			Seed:         o.Seed,
			Checkpoint:   d.Checkpoint,
			Log:          d.Log,
		}
		if len(d.Fleet) > 0 || d.FleetListen != "" {
			return &dispatch.Fleet{
				Addrs:        d.Fleet,
				Listen:       d.FleetListen,
				Spec:         d.Spec,
				Workers:      o.Workers,
				Shards:       o.Shards,
				ShardTimeout: d.ShardTimeout,
				Heartbeat:    d.Heartbeat,
				Retries:      d.Retries,
				Seed:         o.Seed,
				Checkpoint:   d.Checkpoint,
				Log:          d.Log,
				Fallback:     sub,
			}
		}
		return sub
	}
	if o.Workers <= 1 {
		return campaign.Serial{}
	}
	return campaign.Sharded{Workers: o.Workers, Shards: o.Shards}
}

// golden is the reference data of one test case.
type golden struct {
	tc        sut.Case
	trace     *trace.Trace
	arrestMs  int64
	horizonMs int64
}

// describeRun renders one run's identity for engine diagnostics: the
// campaign-derived seed and the test case a failing run belonged to.
func describeRun(t sut.Target, opts Options, name string, index, caseIdx int) string {
	if caseIdx < 0 || caseIdx >= len(opts.Cases) {
		return fmt.Sprintf("seed=%d", t.RunSeed(opts.Seed, name, index))
	}
	tc := opts.Cases[caseIdx]
	return fmt.Sprintf("seed=%d case=%d %s",
		t.RunSeed(opts.Seed, name, index), tc.ID, t.DescribeCase(tc))
}

// runGolden executes the fault-free reference run of a test case,
// recording every signal at the 1 ms slot period. The recorded trace is
// retained (goldens are cached and compared against for the rest of the
// process), so the recorder is deliberately not pooled.
func runGolden(opts Options, t sut.Target, tc sut.Case) (*golden, error) {
	rig, err := t.Acquire(tc, t.CaseSeed(opts.Seed, tc), sut.Variant{})
	if err != nil {
		return nil, err
	}
	defer t.Release(rig)
	rec := trace.NewRecorder(rig.Bus(), t.AllSignals(), 1, opts.MaxRunMs)
	rig.Sched().OnPostSlot(rec.Hook)
	done, err := rig.RunUntilDone(opts.MaxRunMs)
	if err != nil {
		return nil, err
	}
	if !done {
		return nil, fmt.Errorf("experiment: golden run of case %d (%s) did not complete within %d ms",
			tc.ID, t.DescribeCase(tc), opts.MaxRunMs)
	}
	arrest := rig.Sched().NowMs()
	if err := rig.RunFor(opts.TailMs); err != nil {
		return nil, err
	}
	return &golden{
		tc:        tc,
		trace:     rec.Trace(),
		arrestMs:  arrest,
		horizonMs: rig.Sched().NowMs(),
	}, nil
}

// goldens returns the reference data of every case, computing cache
// misses on the options' executor and memoizing them in the
// process-wide GoldenCache. Misses are sharded by the same case key as
// injection runs, so a sharded worker computes exactly the goldens its
// own shard needs.
func goldens(ctx context.Context, opts Options, t sut.Target) ([]*golden, error) {
	out := make([]*golden, len(opts.Cases))
	var missing []int
	for i, tc := range opts.Cases {
		if g, ok := globalGoldens.lookup(keyFor(opts, tc)); ok {
			out[i] = g
		} else {
			missing = append(missing, i)
		}
	}
	if len(missing) == 0 {
		return out, nil
	}
	keys := make([]uint64, len(missing))
	for j, i := range missing {
		keys[j] = shardKeyFor(opts, opts.Cases[i])
	}
	err := opts.executor().Run(ctx, len(missing), keys, func(j int) error {
		i := missing[j]
		g, err := runGolden(opts, t, opts.Cases[i])
		if err != nil {
			return fmt.Errorf("golden run of case %d: %w", opts.Cases[i].ID, err)
		}
		out[i] = g
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, i := range missing {
		globalGoldens.store(keyFor(opts, opts.Cases[i]), out[i])
	}
	return out, nil
}

// probePort resolves the target's probe input to the single consuming
// port the sensor-side studies (tightness, model sensitivity,
// integration) corrupt, plus the probed signal's declaration.
func probePort(t sut.Target) (model.PortRef, *model.Signal, error) {
	sys := t.System()
	in := t.Probe().Input
	consumers := sys.ConsumersOf(in)
	if len(consumers) != 1 {
		return model.PortRef{}, nil, fmt.Errorf("experiment: probe input %s of target %s has %d consumers",
			in, t.Name(), len(consumers))
	}
	sig, ok := sys.Signal(in)
	if !ok {
		return model.PortRef{}, nil, fmt.Errorf("experiment: target %s probe signal %s not in system", t.Name(), in)
	}
	return consumers[0], sig, nil
}

// pickBit draws a uniformly random bit index for a signal.
func pickBit(rng *rand.Rand, sys *model.System, sig model.SignalID) uint8 {
	s, ok := sys.Signal(sig)
	if !ok {
		panic(fmt.Sprintf("experiment: unknown signal %q", sig))
	}
	return uint8(rng.Intn(int(s.Type.Width)))
}
