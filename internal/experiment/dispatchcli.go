package experiment

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// ValidateDispatchFlags checks the scheduling flags shared by
// cmd/inject and cmd/reproduce before any campaign work starts, so a
// bad invocation fails with a usage error instead of a mid-campaign
// surprise. dispatch reports whether -dispatch (or an implying flag)
// was given.
func ValidateDispatchFlags(workers, shards int, shardTimeout time.Duration, retries int, checkpoint string, dispatch bool) error {
	switch {
	case workers < 1:
		return fmt.Errorf("-workers %d: must be >= 1", workers)
	case shards < 0:
		return fmt.Errorf("-shards %d: must be >= 0 (0 selects the default)", shards)
	case shardTimeout < 0:
		return fmt.Errorf("-shard-timeout %v: must not be negative (0 selects the default)", shardTimeout)
	case retries < -1:
		return fmt.Errorf("-retries %d: must be >= -1 (-1 disables retries, 0 selects the default)", retries)
	}
	if !dispatch && checkpoint == "" && (shardTimeout != 0 || retries != 0) {
		return fmt.Errorf("-shard-timeout and -retries require -dispatch or -checkpoint")
	}
	if checkpoint != "" {
		if dir := filepath.Dir(checkpoint); dir != "." {
			if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
				return fmt.Errorf("-checkpoint %q: parent directory %q is not a directory", checkpoint, dir)
			}
		}
	}
	return nil
}

// SelfDispatch switches opts onto the fault-tolerant subprocess
// dispatcher, with workers that are re-execs of the current binary
// under workerFlag and the given spec shipped through the worker
// environment. If the current executable cannot be resolved the
// command list stays empty and the dispatcher runs shards in-process
// (its degraded mode) — checkpointing still works there.
func SelfDispatch(opts *Options, spec WorkerSpec, workerFlag, checkpoint string, shardTimeout time.Duration, retries int, log io.Writer) error {
	spec.Options = *opts
	specJSON, err := spec.Encode()
	if err != nil {
		return err
	}
	cfg := &DispatchConfig{
		Env:          []string{WorkerSpecEnv + "=" + specJSON},
		Checkpoint:   checkpoint,
		ShardTimeout: shardTimeout,
		Retries:      retries,
		Log:          log,
		WorkerStderr: log,
	}
	if exe, err := os.Executable(); err == nil {
		cfg.Command = []string{exe, workerFlag}
	} else if log != nil {
		fmt.Fprintf(log, "dispatch: cannot resolve current executable (%v); shards will run in-process\n", err)
	}
	opts.Dispatch = cfg
	return nil
}
