package experiment

import (
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// ValidateDispatchFlags checks the scheduling flags shared by
// cmd/inject and cmd/reproduce before any campaign work starts, so a
// bad invocation fails with a usage error instead of a mid-campaign
// surprise. dispatch reports whether -dispatch (or an implying flag)
// was given.
func ValidateDispatchFlags(workers, shards int, shardTimeout time.Duration, retries int, checkpoint string, dispatch bool) error {
	switch {
	case workers < 1:
		return fmt.Errorf("-workers %d: must be >= 1", workers)
	case shards < 0:
		return fmt.Errorf("-shards %d: must be >= 0 (0 selects the default)", shards)
	case shardTimeout < 0:
		return fmt.Errorf("-shard-timeout %v: must not be negative (0 selects the default)", shardTimeout)
	case retries < -1:
		return fmt.Errorf("-retries %d: must be >= -1 (-1 disables retries, 0 selects the default)", retries)
	}
	if !dispatch && checkpoint == "" && (shardTimeout != 0 || retries != 0) {
		return fmt.Errorf("-shard-timeout and -retries require -dispatch or -checkpoint")
	}
	if checkpoint != "" {
		if dir := filepath.Dir(checkpoint); dir != "." {
			if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
				return fmt.Errorf("-checkpoint %q: parent directory %q is not a directory", checkpoint, dir)
			}
		}
	}
	return nil
}

// SelfDispatch switches opts onto the fault-tolerant subprocess
// dispatcher, with workers that are re-execs of the current binary
// under workerFlag and the given spec shipped through the worker
// environment. If the current executable cannot be resolved the
// command list stays empty and the dispatcher runs shards in-process
// (its degraded mode) — checkpointing still works there.
func SelfDispatch(opts *Options, spec WorkerSpec, workerFlag, checkpoint string, shardTimeout time.Duration, retries int, log io.Writer) error {
	spec.Options = *opts
	specJSON, err := spec.Encode()
	if err != nil {
		return err
	}
	cfg := &DispatchConfig{
		Env:          []string{WorkerSpecEnv + "=" + specJSON},
		Spec:         specJSON,
		Checkpoint:   checkpoint,
		ShardTimeout: shardTimeout,
		Retries:      retries,
		Log:          log,
		WorkerStderr: log,
	}
	if exe, err := os.Executable(); err == nil {
		cfg.Command = []string{exe, workerFlag}
	} else if log != nil {
		fmt.Fprintf(log, "dispatch: cannot resolve current executable (%v); shards will run in-process\n", err)
	}
	opts.Dispatch = cfg
	return nil
}

// FleetDispatch switches opts onto the networked fleet coordinator:
// shards go to worker agents at addrs (and to agents registering on
// listen, when set), with the subprocess dispatcher as the degradation
// fallback when no agent is reachable. The worker spec is shipped to
// agents at handshake, so agents need no pre-arranged environment.
func FleetDispatch(opts *Options, spec WorkerSpec, workerFlag string, addrs []string, listen string, heartbeat time.Duration, checkpoint string, shardTimeout time.Duration, retries int, log io.Writer) error {
	if err := SelfDispatch(opts, spec, workerFlag, checkpoint, shardTimeout, retries, log); err != nil {
		return err
	}
	opts.Dispatch.Fleet = addrs
	opts.Dispatch.FleetListen = listen
	opts.Dispatch.Heartbeat = heartbeat
	return nil
}

// ParseFleet splits a -fleet flag value (comma-separated host:port
// endpoints) and validates each address shape.
func ParseFleet(fleet string) ([]string, error) {
	var addrs []string
	for _, a := range strings.Split(fleet, ",") {
		if a = strings.TrimSpace(a); a == "" {
			continue
		}
		if _, _, err := net.SplitHostPort(a); err != nil {
			return nil, fmt.Errorf("-fleet %q: %v (want host:port)", a, err)
		}
		addrs = append(addrs, a)
	}
	return addrs, nil
}

// ValidateFleetFlags checks the networked-dispatch flags of cmd/inject
// and cmd/reproduce before any campaign work: the worker-agent flags
// (-worker-listen / -worker-connect) are mutually exclusive with each
// other, with the coordinator flags (-fleet / -fleet-listen) and with
// the subprocess worker mode (-worker-shard); -fleet cannot combine
// with -worker-shard either (a worker must never re-dispatch); and
// -heartbeat only means something to a coordinator.
func ValidateFleetFlags(fleet, fleetListen, workerListen, workerConnect string, heartbeat time.Duration, workerShard bool) error {
	agent := workerListen != "" || workerConnect != ""
	coordinator := fleet != "" || fleetListen != ""
	switch {
	case workerListen != "" && workerConnect != "":
		return fmt.Errorf("-worker-listen and -worker-connect are mutually exclusive (serve or register, not both)")
	case agent && coordinator:
		return fmt.Errorf("worker-agent flags (-worker-listen/-worker-connect) cannot combine with coordinator flags (-fleet/-fleet-listen)")
	case agent && workerShard:
		return fmt.Errorf("-worker-shard (subprocess worker mode) cannot combine with -worker-listen/-worker-connect")
	case coordinator && workerShard:
		return fmt.Errorf("-fleet/-fleet-listen cannot combine with -worker-shard (workers never re-dispatch)")
	case heartbeat != 0 && !coordinator:
		return fmt.Errorf("-heartbeat requires -fleet or -fleet-listen (agents take the interval from their coordinator)")
	}
	if _, err := ParseFleet(fleet); err != nil {
		return err
	}
	if fleetListen != "" {
		if _, _, err := net.SplitHostPort(fleetListen); err != nil {
			return fmt.Errorf("-fleet-listen %q: %v (want host:port)", fleetListen, err)
		}
	}
	if workerListen != "" {
		if _, _, err := net.SplitHostPort(workerListen); err != nil {
			return fmt.Errorf("-worker-listen %q: %v (want host:port)", workerListen, err)
		}
	}
	if workerConnect != "" {
		if _, _, err := net.SplitHostPort(workerConnect); err != nil {
			return fmt.Errorf("-worker-connect %q: %v (want host:port)", workerConnect, err)
		}
	}
	return nil
}
