package experiment

import (
	"fmt"
	"math/rand"

	"repro/internal/ea"
	"repro/internal/fi"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/target"
)

// TightnessPoint is one setting of the EA-tightness ablation
// (DESIGN.md index A2): the pulscnt assertion's step budget against the
// coverage it buys and the false positives it costs.
type TightnessPoint struct {
	// MaxStep is the assertion's per-period step budget.
	MaxStep model.Word
	// Coverage is the detection coverage over active PACNT injections.
	Coverage stats.Proportion
	// FalsePositiveRuns counts fault-free runs (one per test case) in
	// which the assertion fired.
	FalsePositiveRuns int
	// GoldenRuns and InjectedRuns are the fault-free and injected run
	// counts of this setting.
	GoldenRuns, InjectedRuns int
}

// EATightnessStudy sweeps the pulscnt assertion's MaxStep and measures,
// for each setting, (a) detection coverage for transient PACNT errors
// and (b) false positives on fault-free runs — the trade the paper's EA
// parameters navigate implicitly. perStep is the number of injections
// per setting across all cases.
func EATightnessStudy(opts Options, perStep int, steps []model.Word) ([]TightnessPoint, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if perStep < 1 {
		return nil, fmt.Errorf("experiment: perStep %d must be >= 1", perStep)
	}
	if len(steps) == 0 {
		return nil, fmt.Errorf("experiment: no step settings")
	}
	golds, err := goldens(opts)
	if err != nil {
		return nil, err
	}
	sys := target.SharedSystem()
	consumers := sys.ConsumersOf(target.SigPACNT)
	if len(consumers) != 1 {
		return nil, fmt.Errorf("experiment: PACNT has %d consumers", len(consumers))
	}
	port := consumers[0]
	sig, _ := sys.Signal(target.SigPACNT)

	spec := func(maxStep model.Word) ea.Spec {
		return ea.Spec{
			Name: "EA4t", Signal: target.SigPulscnt, Kind: ea.KindCounter,
			MinStep: 0, MaxStep: maxStep, WrapWidth: 16, WarmupChecks: 2,
		}
	}

	perCase := perStep / len(opts.Cases)
	if perCase < 1 {
		perCase = 1
	}

	type job struct {
		stepIdx int
		caseIdx int
		k       int
		golden  bool
	}
	var plan []job
	for si := range steps {
		for ci := range opts.Cases {
			plan = append(plan, job{stepIdx: si, caseIdx: ci, golden: true})
			for k := 0; k < perCase; k++ {
				plan = append(plan, job{stepIdx: si, caseIdx: ci, k: k})
			}
		}
	}

	type outcome struct {
		active   bool
		detected bool
		err      error
	}
	results := make([]outcome, len(plan))
	parallelFor(len(plan), opts.Workers, func(i int) {
		j := plan[i]
		g := golds[j.caseIdx]
		rig, err := target.AcquireRig(g.tc.Config(caseSeed(opts, g.tc)))
		if err != nil {
			results[i] = outcome{err: err}
			return
		}
		defer target.ReleaseRig(rig)
		bank, err := ea.NewBank(rig.Bus, target.ControlPeriodMs, []ea.Spec{spec(steps[j.stepIdx])})
		if err != nil {
			results[i] = outcome{err: err}
			return
		}
		rig.Sched.OnPostSlot(bank.Hook)

		active := true
		if !j.golden {
			// Identical injections across settings: the seed depends on
			// the case and iteration only, so every budget is evaluated
			// against the same error set and coverage is exactly monotone
			// in the budget.
			rng := rand.New(rand.NewSource(runSeed(opts, "tight", j.caseIdx*1_000_000+j.k)))
			flip := &fi.ReadFlip{
				Port:   port,
				Bit:    uint8(rng.Intn(int(sig.Type.Width))),
				FromMs: rng.Int63n(g.arrestMs),
			}
			inj := fi.NewInjector(flip)
			rig.Sched.OnPreSlot(inj.Hook)
			rig.Bus.OnRead(inj.ReadHook())
			if err := rig.RunFor(g.horizonMs); err != nil {
				results[i] = outcome{err: err}
				return
			}
			applied, at := flip.Applied()
			active = applied && at < g.arrestMs
		} else if err := rig.RunFor(g.horizonMs); err != nil {
			results[i] = outcome{err: err}
			return
		}
		results[i] = outcome{active: active, detected: bank.Detected()}
	})

	points := make([]TightnessPoint, len(steps))
	for i := range steps {
		points[i].MaxStep = steps[i]
	}
	for i, j := range plan {
		out := results[i]
		if out.err != nil {
			return nil, out.err
		}
		pt := &points[j.stepIdx]
		if j.golden {
			pt.GoldenRuns++
			if out.detected {
				pt.FalsePositiveRuns++
			}
			continue
		}
		pt.InjectedRuns++
		if out.active {
			pt.Coverage.Add(out.detected)
		}
	}
	return points, nil
}
