package experiment

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/campaign"
	"repro/internal/ea"
	"repro/internal/fi"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/sut"
)

// TightnessPoint is one setting of the EA-tightness ablation
// (DESIGN.md index A2): the pulscnt assertion's step budget against the
// coverage it buys and the false positives it costs.
type TightnessPoint struct {
	// MaxStep is the assertion's per-period step budget.
	MaxStep model.Word
	// Coverage is the detection coverage over active PACNT injections.
	Coverage stats.Proportion
	// FalsePositiveRuns counts fault-free runs (one per test case) in
	// which the assertion fired.
	FalsePositiveRuns int
	// GoldenRuns and InjectedRuns are the fault-free and injected run
	// counts of this setting.
	GoldenRuns, InjectedRuns int
}

// tightJob is one run of the tightness sweep: either a fault-free run
// (golden) or injection k, under step setting stepIdx.
type tightJob struct {
	stepIdx int
	caseIdx int
	k       int
	golden  bool
}

// tightOutcome is one run's verdict, wire-encodable for the subprocess
// dispatcher.
type tightOutcome struct {
	Active   bool `json:"active"`
	Detected bool `json:"detected"`
}

// tightnessCampaign is the A2 ablation on the engine.
type tightnessCampaign struct {
	campaign.JSONWire[tightOutcome]
	opts    Options
	t       sut.Target
	perStep int
	steps   []model.Word
	golds   []*golden
	port    model.PortRef
	sig     *model.Signal
}

func (c *tightnessCampaign) Name() string { return "tightness" }

func (c *tightnessCampaign) Plan() ([]tightJob, error) {
	perCase := c.perStep / len(c.opts.Cases)
	if perCase < 1 {
		perCase = 1
	}
	var plan []tightJob
	for si := range c.steps {
		for ci := range c.opts.Cases {
			plan = append(plan, tightJob{stepIdx: si, caseIdx: ci, golden: true})
			for k := 0; k < perCase; k++ {
				plan = append(plan, tightJob{stepIdx: si, caseIdx: ci, k: k})
			}
		}
	}
	return plan, nil
}

// spec derives the swept assertion from the target's probe guard: the
// guard with its step budget replaced by the setting under test. For the
// arrestment target this reproduces the original hardcoded "EA4t"
// counter spec (EA4 with MaxStep swept).
func (c *tightnessCampaign) spec(maxStep model.Word) ea.Spec {
	spec := c.t.Probe().Guard
	spec.Name += "t"
	if spec.Kind == ea.KindCounter {
		spec.MaxStep = maxStep
	} else {
		spec.MaxUp = maxStep
		spec.MaxDown = maxStep
	}
	return spec
}

func (c *tightnessCampaign) Execute(_ context.Context, j tightJob, _ int) (tightOutcome, error) {
	g := c.golds[j.caseIdx]
	rig, err := c.t.Acquire(g.tc, c.t.CaseSeed(c.opts.Seed, g.tc), sut.Variant{})
	if err != nil {
		return tightOutcome{}, err
	}
	defer c.t.Release(rig)
	bank, err := ea.NewBank(rig.Bus(), c.t.ControlPeriodMs(), []ea.Spec{c.spec(c.steps[j.stepIdx])})
	if err != nil {
		return tightOutcome{}, err
	}
	rig.Sched().OnPostSlot(bank.Hook)

	active := true
	if !j.golden {
		// Identical injections across settings: the seed depends on
		// the case and iteration only, so every budget is evaluated
		// against the same error set and coverage is exactly monotone
		// in the budget.
		rng := rand.New(rand.NewSource(c.t.RunSeed(c.opts.Seed, "tight", j.caseIdx*1_000_000+j.k)))
		flip := &fi.ReadFlip{
			Port:   c.port,
			Bit:    uint8(rng.Intn(int(c.sig.Type.Width))),
			FromMs: rng.Int63n(c.t.InjectWindow(g.arrestMs)),
		}
		inj := fi.NewInjector(flip)
		rig.Sched().OnPreSlot(inj.Hook)
		rig.Bus().OnRead(inj.ReadHook())
		if err := rig.RunFor(g.horizonMs); err != nil {
			return tightOutcome{}, err
		}
		applied, at := flip.Applied()
		active = applied && at < g.arrestMs
	} else if err := rig.RunFor(g.horizonMs); err != nil {
		return tightOutcome{}, err
	}
	return tightOutcome{Active: active, Detected: bank.Detected()}, nil
}

func (c *tightnessCampaign) Reduce(plan []tightJob, results []tightOutcome) ([]TightnessPoint, error) {
	points := make([]TightnessPoint, len(c.steps))
	for i := range c.steps {
		points[i].MaxStep = c.steps[i]
	}
	for i, j := range plan {
		out := results[i]
		pt := &points[j.stepIdx]
		if j.golden {
			pt.GoldenRuns++
			if out.Detected {
				pt.FalsePositiveRuns++
			}
			continue
		}
		pt.InjectedRuns++
		if out.Active {
			pt.Coverage.Add(out.Detected)
		}
	}
	return points, nil
}

func (c *tightnessCampaign) ShardKey(j tightJob, _ int) uint64 {
	return shardKeyFor(c.opts, c.opts.Cases[j.caseIdx])
}

func (c *tightnessCampaign) Describe(j tightJob, index int) string {
	kind := "injected"
	if j.golden {
		kind = "golden"
	}
	return describeRun(c.t, c.opts, "tight", index, j.caseIdx) +
		fmt.Sprintf(" step=%d %s", c.steps[j.stepIdx], kind)
}

// EATightnessStudy sweeps the pulscnt assertion's MaxStep and measures,
// for each setting, (a) detection coverage for transient PACNT errors
// and (b) false positives on fault-free runs — the trade the paper's EA
// parameters navigate implicitly. perStep is the number of injections
// per setting across all cases.
func EATightnessStudy(ctx context.Context, opts Options, perStep int, steps []model.Word) ([]TightnessPoint, error) {
	c, err := newTightnessCampaign(ctx, opts, perStep, steps)
	if err != nil {
		return nil, err
	}
	return campaign.Execute[tightJob, tightOutcome, []TightnessPoint](ctx, c, opts.executor(), opts.Timings)
}

func newTightnessCampaign(ctx context.Context, opts Options, perStep int, steps []model.Word) (*tightnessCampaign, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if perStep < 1 {
		return nil, fmt.Errorf("experiment: perStep %d must be >= 1", perStep)
	}
	if len(steps) == 0 {
		return nil, fmt.Errorf("experiment: no step settings")
	}
	t, err := resolvedTarget(opts)
	if err != nil {
		return nil, err
	}
	golds, err := goldens(ctx, opts, t)
	if err != nil {
		return nil, err
	}
	port, sig, err := probePort(t)
	if err != nil {
		return nil, err
	}
	return &tightnessCampaign{
		opts: opts, t: t, perStep: perStep, steps: steps, golds: golds,
		port: port, sig: sig,
	}, nil
}
