package experiment

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
)

// TelemetryFlags carries the observability flags shared by cmd/inject
// and cmd/reproduce.
type TelemetryFlags struct {
	// ObsAddr, when non-empty, serves the diagnostics HTTP endpoint
	// (/metrics, /healthz, /debug/vars, /debug/pprof) on this address.
	ObsAddr string
	// EventsOut, when non-empty, streams NDJSON span/event records to
	// this file ("-" selects stderr).
	EventsOut string
	// Progress enables the live stderr progress line.
	Progress bool
}

// StartTelemetry installs the process-wide telemetry for a campaign
// command and returns its shutdown function. The registry is always
// installed — counting retries, cache traffic and shard movement is
// cheap and feeds the end-of-run retry summary and the -bench-out
// extras — while the exposure surfaces (HTTP endpoint, event stream,
// progress line) are attached only when their flags ask for them.
func StartTelemetry(f TelemetryFlags, stderr io.Writer) (func(), error) {
	cfg := obs.Config{}
	var eventsFile *os.File
	switch f.EventsOut {
	case "":
	case "-":
		cfg.EventSink = stderr
	default:
		file, err := os.Create(f.EventsOut)
		if err != nil {
			return nil, fmt.Errorf("-events-out %q: %w", f.EventsOut, err)
		}
		eventsFile = file
		cfg.EventSink = file
	}
	if f.Progress {
		cfg.ProgressSink = stderr
		cfg.ProgressInterval = time.Second
	}

	tel := obs.New(cfg)
	obs.Install(tel)

	var stopServer func()
	if f.ObsAddr != "" {
		addr, stop, err := tel.Serve(f.ObsAddr)
		if err != nil {
			if eventsFile != nil {
				eventsFile.Close()
			}
			obs.Install(nil)
			return nil, fmt.Errorf("-obs-addr %q: %w", f.ObsAddr, err)
		}
		stopServer = stop
		fmt.Fprintf(stderr, "telemetry: serving /metrics /healthz /dash /events /debug/vars /debug/pprof on http://%s\n", addr)
	}

	return func() {
		tel.Close()
		if stopServer != nil {
			stopServer()
		}
		if eventsFile != nil {
			eventsFile.Close()
		}
	}, nil
}

// PrintRetrySummary reports, per campaign, how many runs the Retry
// executor re-attempted and how many shards the dispatcher re-dispatched
// — movement that previously existed only as backoff sleeps invisible in
// any report. Campaigns without retries are folded into one clean line.
func PrintRetrySummary(w io.Writer, col *campaign.Collector) {
	if col == nil {
		return
	}
	rows := col.Rows()
	if len(rows) == 0 {
		return
	}
	var parts []string
	var runRetries, shardRetries, reconnects, stragglers int64
	for _, r := range rows {
		runRetries += r.RunRetries
		shardRetries += r.ShardRetries
		reconnects += r.FleetReconnects
		stragglers += r.StragglerRedispatches
		if r.RunRetries > 0 || r.ShardRetries > 0 || r.FleetReconnects > 0 || r.StragglerRedispatches > 0 {
			line := fmt.Sprintf("%s: %d run retries, %d shard re-dispatches",
				r.Campaign, r.RunRetries, r.ShardRetries)
			// Fleet movement appends only when present, so non-fleet
			// invocations keep the original summary shape exactly.
			if r.FleetReconnects > 0 {
				line += fmt.Sprintf(", %d fleet reconnects", r.FleetReconnects)
			}
			if r.StragglerRedispatches > 0 {
				line += fmt.Sprintf(", %d straggler re-dispatches", r.StragglerRedispatches)
			}
			parts = append(parts, line)
		}
	}
	if len(parts) == 0 {
		fmt.Fprintln(w, "retry summary: no run retries or shard re-dispatches")
		return
	}
	total := fmt.Sprintf("%d run retries, %d shard re-dispatches", runRetries, shardRetries)
	if reconnects > 0 {
		total += fmt.Sprintf(", %d fleet reconnects", reconnects)
	}
	if stragglers > 0 {
		total += fmt.Sprintf(", %d straggler re-dispatches", stragglers)
	}
	fmt.Fprintf(w, "retry summary: %s (total: %s)\n", strings.Join(parts, "; "), total)
	printStragglerAttribution(w)
}

// printStragglerAttribution appends one line naming the slowest shard
// of the last campaign and where its time went (queue wait vs worker
// execution vs network), derived from the merged trace's phase
// attribution. Silent when no dispatch recorded phase data — plain
// serial runs keep the summary shape unchanged.
func printStragglerAttribution(w io.Writer) {
	tel := obs.Active()
	if tel == nil {
		return
	}
	s, ok := tel.Live.SlowestShard()
	if !ok || (s.QueueMs == 0 && s.NetMs == 0) {
		// Without a queue/exec/net split (in-process execution) the wall
		// time alone adds nothing the timing table doesn't already say.
		return
	}
	where := s.Worker
	if where == "" {
		where = "local"
	}
	fmt.Fprintf(w, "slowest shard: %s (%s) %d ms on %s — queue %d ms, exec %d ms, net %d ms\n",
		s.ID, s.Campaign, s.WallMs, where, s.QueueMs, s.ExecMs, s.NetMs)
}
