package experiment

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/fi"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/sut"
	"repro/internal/trace"
)

// PermeabilityResult is the outcome of the Table 1 campaign: the
// estimated permeability matrix plus the raw counts behind every entry.
type PermeabilityResult struct {
	// Matrix holds the estimates P^M_{i,k} = direct deviations / active
	// injections.
	Matrix *core.Permeability
	// Samples holds the per-edge counts (successes = direct output
	// deviations, trials = active injections of that input).
	Samples map[model.Edge]stats.Proportion
	// ActiveRuns and TotalRuns account for the campaign volume.
	ActiveRuns, TotalRuns int
	// PlannedRuns is the exact-grid size the campaign stands for; it
	// exceeds TotalRuns when adaptive early stopping ended streams
	// before the grid was exhausted.
	PlannedRuns int
}

// permJob is one permeability injection run: a bit-flip at one module
// input, evaluated against one test case's golden run. seq is the run's
// position in the exact (full-grid) plan and keys all run randomness,
// so an adaptive round executing a subset of the grid reproduces the
// exact campaign's trials bit for bit.
type permJob struct {
	mod     *model.ModuleDecl
	port    model.PortRef
	sig     model.SignalID
	caseIdx int
	seq     int
}

// permOutcome is one run's evaluation: whether the injection was active
// and which module outputs deviated directly. Fields are exported with
// JSON tags so the outcome can cross the dispatcher's wire codec.
type permOutcome struct {
	Active bool         `json:"active"`
	Direct map[int]bool `json:"direct,omitempty"` // output index -> deviated directly
}

// permeabilityCampaign is the Table 1 campaign on the engine. The
// embedded JSONWire makes its results dispatchable to worker processes.
type permeabilityCampaign struct {
	campaign.JSONWire[permOutcome]
	opts     Options
	t        sut.Target
	perInput int
	golds    []*golden
	sys      *model.System
}

func (c *permeabilityCampaign) Name() string { return "permeability" }

// perCase is how many injections each (module input, test case) pair
// receives in the exact grid.
func (c *permeabilityCampaign) perCase() int {
	perCase := c.perInput / len(c.opts.Cases)
	if perCase < 1 {
		perCase = 1
	}
	return perCase
}

// permStream is one (module, input) sampling stream: the unit at which
// adaptive early stopping decides. base is the stream's first index in
// the exact plan.
type permStream struct {
	mod  *model.ModuleDecl
	port model.PortRef
	sig  model.SignalID
	base int
}

// streams lists the campaign's sampling streams in exact-plan order.
func (c *permeabilityCampaign) streams() []permStream {
	block := c.perCase() * len(c.opts.Cases)
	var out []permStream
	for _, mod := range c.sys.Modules() {
		for _, in := range mod.Inputs {
			out = append(out, permStream{
				mod:  mod,
				port: model.PortRef{Module: mod.ID, Dir: model.DirIn, Index: in.Index},
				sig:  in.Signal,
				base: len(out) * block,
			})
		}
	}
	return out
}

func (c *permeabilityCampaign) Plan() ([]permJob, error) {
	perCase := c.perCase()
	var plan []permJob
	for _, s := range c.streams() {
		for ci := range c.opts.Cases {
			for k := 0; k < perCase; k++ {
				plan = append(plan, permJob{mod: s.mod, port: s.port, sig: s.sig, caseIdx: ci, seq: len(plan)})
			}
		}
	}
	return plan, nil
}

// roundJobs emits the next batch of each unfinished stream's trials.
// Trials advance in case-interleaved order (consecutive trials visit
// consecutive cases) so a stream stopped early has sampled every case
// evenly; seq maps each trial back to its exact-plan slot, preserving
// the run's seed. Pure function of its arguments — the parent driver
// and shard workers derive identical round plans from the shipped
// cursor state.
func (c *permeabilityCampaign) roundJobs(streams []permStream, cursors []int, done []bool, batch int) []permJob {
	numCases := len(c.opts.Cases)
	perCase := c.perCase()
	total := perCase * numCases
	var jobs []permJob
	for si, s := range streams {
		if done[si] {
			continue
		}
		end := cursors[si] + batch
		if end > total {
			end = total
		}
		for t := cursors[si]; t < end; t++ {
			ci := t % numCases
			k := t / numCases
			jobs = append(jobs, permJob{
				mod: s.mod, port: s.port, sig: s.sig,
				caseIdx: ci, seq: s.base + ci*perCase + k,
			})
		}
	}
	return jobs
}

// round builds the executable campaign of one adaptive round. Both the
// parent driver and worker processes construct rounds through this
// path, so plans and plan hashes agree by construction.
func (c *permeabilityCampaign) round(name string, st AdaptiveRound) (*roundCampaign[permJob, permOutcome], error) {
	streams := c.streams()
	if len(st.Cursors) != len(streams) || len(st.Done) != len(streams) {
		return nil, fmt.Errorf("experiment: round %s has %d cursors for %d streams", name, len(st.Cursors), len(streams))
	}
	return &roundCampaign[permJob, permOutcome]{
		name: name,
		jobs: c.roundJobs(streams, st.Cursors, st.Done, st.Batch),
		exec: c.Execute,
		key:  c.ShardKey,
		desc: c.Describe,
	}, nil
}

func (c *permeabilityCampaign) Execute(_ context.Context, j permJob, _ int) (permOutcome, error) {
	return permeabilityRun(c.opts, c.t, c.golds[j.caseIdx], j.mod, j.port, j.sig, j.seq)
}

func (c *permeabilityCampaign) Reduce(plan []permJob, results []permOutcome) (*PermeabilityResult, error) {
	res := &PermeabilityResult{
		Matrix:  core.NewPermeability(c.sys),
		Samples: make(map[model.Edge]stats.Proportion),
	}
	for i, job := range plan {
		out := results[i]
		res.TotalRuns++
		if !out.Active {
			continue
		}
		res.ActiveRuns++
		for _, op := range job.mod.Outputs {
			e := model.Edge{
				Module: job.mod.ID, In: job.port.Index, Out: op.Index,
				From: job.sig, To: op.Signal,
			}
			p := res.Samples[e]
			p.Add(out.Direct[op.Index])
			res.Samples[e] = p
		}
	}
	res.PlannedRuns = res.TotalRuns
	for e, p := range res.Samples {
		if err := res.Matrix.SetEdge(e, p.Estimate()); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func (c *permeabilityCampaign) ShardKey(j permJob, _ int) uint64 {
	return shardKeyFor(c.opts, c.opts.Cases[j.caseIdx])
}

func (c *permeabilityCampaign) Describe(j permJob, _ int) string {
	return describeRun(c.t, c.opts, "perm", j.seq, j.caseIdx) + " signal=" + string(j.sig)
}

// EstimatePermeability runs the Section 5.3 campaign on the
// reimplemented target: for every module input, inject single transient
// bit-flips at the module's reads (spread over the test cases and over
// run time), compare every module output against the golden run, and
// count only direct errors — output deviations observed before any other
// input of the module deviates, so errors that loop back through
// downstream modules are excluded.
//
// perInput is the total number of injections per module input across all
// test cases (the paper used 2000 per target signal).
//
// With opts.Adaptive set, each (module, input) stream is sampled in
// rounds and stops as soon as every outgoing edge's Wilson interval is
// tighter than the stopping rule demands; executed trials are an
// exact-plan subset, so adaptive estimates are prefix averages of the
// exact campaign's trials.
func EstimatePermeability(ctx context.Context, opts Options, perInput int) (*PermeabilityResult, error) {
	if opts.Adaptive {
		return estimatePermeabilityAdaptive(ctx, opts, perInput)
	}
	c, err := newPermeabilityCampaign(ctx, opts, perInput)
	if err != nil {
		return nil, err
	}
	return campaign.Execute[permJob, permOutcome, *PermeabilityResult](ctx, c, opts.executor(), opts.Timings)
}

// newPermeabilityCampaign validates and builds the campaign; worker
// processes rebuild the identical campaign through this same path.
func newPermeabilityCampaign(ctx context.Context, opts Options, perInput int) (*permeabilityCampaign, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if perInput < 1 {
		return nil, fmt.Errorf("experiment: perInput %d must be >= 1", perInput)
	}
	t, err := resolvedTarget(opts)
	if err != nil {
		return nil, err
	}
	golds, err := goldens(ctx, opts, t)
	if err != nil {
		return nil, err
	}
	return &permeabilityCampaign{opts: opts, t: t, perInput: perInput, golds: golds, sys: t.System()}, nil
}

// sampleRow is one edge of the samples document WriteSamples emits.
type sampleRow struct {
	Module    model.ModuleID `json:"module"`
	In        int            `json:"in"`
	Out       int            `json:"out"`
	From      model.SignalID `json:"from"`
	To        model.SignalID `json:"to"`
	Successes int            `json:"successes"`
	Trials    int            `json:"trials"`
}

type samplesDoc struct {
	PlannedRuns int         `json:"planned_runs"`
	TotalRuns   int         `json:"total_runs"`
	ActiveRuns  int         `json:"active_runs"`
	Edges       []sampleRow `json:"edges"`
}

// WriteSamples writes the campaign's per-edge counts as JSON, edges in
// deterministic order — the raw material cmd/adaptcheck uses to verify
// that exact and adaptive campaigns agree within their Wilson
// intervals.
func (r *PermeabilityResult) WriteSamples(path string) error {
	doc := samplesDoc{
		PlannedRuns: r.PlannedRuns,
		TotalRuns:   r.TotalRuns,
		ActiveRuns:  r.ActiveRuns,
	}
	for e, p := range r.Samples {
		doc.Edges = append(doc.Edges, sampleRow{
			Module: e.Module, In: e.In, Out: e.Out, From: e.From, To: e.To,
			Successes: p.Successes, Trials: p.Trials,
		})
	}
	sort.Slice(doc.Edges, func(i, j int) bool {
		a, b := doc.Edges[i], doc.Edges[j]
		if a.Module != b.Module {
			return a.Module < b.Module
		}
		if a.In != b.In {
			return a.In < b.In
		}
		return a.Out < b.Out
	})
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// permeabilityRun executes one injection run and evaluates direct output
// deviations against the golden trace.
func permeabilityRun(opts Options, t sut.Target, g *golden, mod *model.ModuleDecl, port model.PortRef, sig model.SignalID, index int) (permOutcome, error) {
	var out permOutcome
	rng := rand.New(rand.NewSource(t.RunSeed(opts.Seed, "perm", index)))

	rig, err := t.Acquire(g.tc, t.CaseSeed(opts.Seed, g.tc), sut.Variant{})
	if err != nil {
		return out, err
	}
	defer t.Release(rig)

	flip := &fi.ReadFlip{
		Port:   port,
		Bit:    pickBit(rng, rig.System(), sig),
		FromMs: rng.Int63n(t.InjectWindow(g.arrestMs)),
	}
	inj := fi.NewInjector(flip)
	rig.Sched().OnPreSlot(inj.Hook)
	rig.Bus().OnRead(inj.ReadHook())

	// Record the module's outputs plus its other pure inputs (inputs
	// that are not also outputs): the cutoff signals of the
	// direct-errors-only rule.
	outputs := make(map[model.SignalID]bool, len(mod.Outputs))
	for _, op := range mod.Outputs {
		outputs[op.Signal] = true
	}
	var watch []model.SignalID
	var cutoffSigs []model.SignalID
	for _, op := range mod.Outputs {
		watch = append(watch, op.Signal)
	}
	for _, in := range mod.Inputs {
		if in.Signal == sig || outputs[in.Signal] {
			continue
		}
		watch = append(watch, in.Signal)
		cutoffSigs = append(cutoffSigs, in.Signal)
	}
	watch = dedupSignals(watch)

	rec := acquireRecorder(rig.Bus(), watch, 1, g.horizonMs)
	defer releaseRecorder(rec)
	rig.Sched().OnPostSlot(rec.Hook)

	if err := rig.RunFor(g.horizonMs); err != nil {
		return out, err
	}

	applied, at := flip.Applied()
	out.Active = applied && at < g.arrestMs
	out.Direct = make(map[int]bool, len(mod.Outputs))
	if !out.Active {
		return out, nil
	}

	ir := rec.Trace()
	cutoff := -1 // sample index of the earliest other-input deviation
	for _, s := range cutoffSigs {
		if fd := trace.FirstDifference(g.trace, ir, s); fd != trace.NoDifference {
			if cutoff < 0 || fd < cutoff {
				cutoff = fd
			}
		}
	}
	for _, op := range mod.Outputs {
		fd := trace.FirstDifference(g.trace, ir, op.Signal)
		out.Direct[op.Index] = fd != trace.NoDifference && (cutoff < 0 || fd <= cutoff)
	}
	return out, nil
}

func dedupSignals(in []model.SignalID) []model.SignalID {
	seen := make(map[model.SignalID]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
