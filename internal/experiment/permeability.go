package experiment

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/fi"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/target"
	"repro/internal/trace"
)

// PermeabilityResult is the outcome of the Table 1 campaign: the
// estimated permeability matrix plus the raw counts behind every entry.
type PermeabilityResult struct {
	// Matrix holds the estimates P^M_{i,k} = direct deviations / active
	// injections.
	Matrix *core.Permeability
	// Samples holds the per-edge counts (successes = direct output
	// deviations, trials = active injections of that input).
	Samples map[model.Edge]stats.Proportion
	// ActiveRuns and TotalRuns account for the campaign volume.
	ActiveRuns, TotalRuns int
}

// permJob is one permeability injection run: a bit-flip at one module
// input, evaluated against one test case's golden run.
type permJob struct {
	mod     *model.ModuleDecl
	port    model.PortRef
	sig     model.SignalID
	caseIdx int
}

// permOutcome is one run's evaluation: whether the injection was active
// and which module outputs deviated directly. Fields are exported with
// JSON tags so the outcome can cross the dispatcher's wire codec.
type permOutcome struct {
	Active bool         `json:"active"`
	Direct map[int]bool `json:"direct,omitempty"` // output index -> deviated directly
}

// permeabilityCampaign is the Table 1 campaign on the engine. The
// embedded JSONWire makes its results dispatchable to worker processes.
type permeabilityCampaign struct {
	campaign.JSONWire[permOutcome]
	opts     Options
	perInput int
	golds    []*golden
	sys      *model.System
}

func (c *permeabilityCampaign) Name() string { return "permeability" }

func (c *permeabilityCampaign) Plan() ([]permJob, error) {
	perCase := c.perInput / len(c.opts.Cases)
	if perCase < 1 {
		perCase = 1
	}
	var plan []permJob
	for _, mod := range c.sys.Modules() {
		for _, in := range mod.Inputs {
			for ci := range c.opts.Cases {
				for k := 0; k < perCase; k++ {
					plan = append(plan, permJob{
						mod:     mod,
						port:    model.PortRef{Module: mod.ID, Dir: model.DirIn, Index: in.Index},
						sig:     in.Signal,
						caseIdx: ci,
					})
				}
			}
		}
	}
	return plan, nil
}

func (c *permeabilityCampaign) Execute(_ context.Context, j permJob, index int) (permOutcome, error) {
	return permeabilityRun(c.opts, c.golds[j.caseIdx], j.mod, j.port, j.sig, index)
}

func (c *permeabilityCampaign) Reduce(plan []permJob, results []permOutcome) (*PermeabilityResult, error) {
	res := &PermeabilityResult{
		Matrix:  core.NewPermeability(c.sys),
		Samples: make(map[model.Edge]stats.Proportion),
	}
	for i, job := range plan {
		out := results[i]
		res.TotalRuns++
		if !out.Active {
			continue
		}
		res.ActiveRuns++
		for _, op := range job.mod.Outputs {
			e := model.Edge{
				Module: job.mod.ID, In: job.port.Index, Out: op.Index,
				From: job.sig, To: op.Signal,
			}
			p := res.Samples[e]
			p.Add(out.Direct[op.Index])
			res.Samples[e] = p
		}
	}
	for e, p := range res.Samples {
		if err := res.Matrix.SetEdge(e, p.Estimate()); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func (c *permeabilityCampaign) ShardKey(j permJob, _ int) uint64 {
	return shardKeyFor(c.opts, c.opts.Cases[j.caseIdx])
}

func (c *permeabilityCampaign) Describe(j permJob, index int) string {
	return describeRun(c.opts, "perm", index, j.caseIdx) + " signal=" + string(j.sig)
}

// EstimatePermeability runs the Section 5.3 campaign on the
// reimplemented target: for every module input, inject single transient
// bit-flips at the module's reads (spread over the test cases and over
// run time), compare every module output against the golden run, and
// count only direct errors — output deviations observed before any other
// input of the module deviates, so errors that loop back through
// downstream modules are excluded.
//
// perInput is the total number of injections per module input across all
// test cases (the paper used 2000 per target signal).
func EstimatePermeability(ctx context.Context, opts Options, perInput int) (*PermeabilityResult, error) {
	c, err := newPermeabilityCampaign(ctx, opts, perInput)
	if err != nil {
		return nil, err
	}
	return campaign.Execute[permJob, permOutcome, *PermeabilityResult](ctx, c, opts.executor(), opts.Timings)
}

// newPermeabilityCampaign validates and builds the campaign; worker
// processes rebuild the identical campaign through this same path.
func newPermeabilityCampaign(ctx context.Context, opts Options, perInput int) (*permeabilityCampaign, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if perInput < 1 {
		return nil, fmt.Errorf("experiment: perInput %d must be >= 1", perInput)
	}
	golds, err := goldens(ctx, opts)
	if err != nil {
		return nil, err
	}
	return &permeabilityCampaign{opts: opts, perInput: perInput, golds: golds, sys: target.SharedSystem()}, nil
}

// permeabilityRun executes one injection run and evaluates direct output
// deviations against the golden trace.
func permeabilityRun(opts Options, g *golden, mod *model.ModuleDecl, port model.PortRef, sig model.SignalID, index int) (permOutcome, error) {
	var out permOutcome
	rng := rand.New(rand.NewSource(runSeed(opts, "perm", index)))

	rig, err := target.AcquireRig(g.tc.Config(caseSeed(opts, g.tc)))
	if err != nil {
		return out, err
	}
	defer target.ReleaseRig(rig)

	flip := &fi.ReadFlip{
		Port:   port,
		Bit:    pickBit(rng, rig.Sys, sig),
		FromMs: rng.Int63n(g.arrestMs),
	}
	inj := fi.NewInjector(flip)
	rig.Sched.OnPreSlot(inj.Hook)
	rig.Bus.OnRead(inj.ReadHook())

	// Record the module's outputs plus its other pure inputs (inputs
	// that are not also outputs): the cutoff signals of the
	// direct-errors-only rule.
	outputs := make(map[model.SignalID]bool, len(mod.Outputs))
	for _, op := range mod.Outputs {
		outputs[op.Signal] = true
	}
	var watch []model.SignalID
	var cutoffSigs []model.SignalID
	for _, op := range mod.Outputs {
		watch = append(watch, op.Signal)
	}
	for _, in := range mod.Inputs {
		if in.Signal == sig || outputs[in.Signal] {
			continue
		}
		watch = append(watch, in.Signal)
		cutoffSigs = append(cutoffSigs, in.Signal)
	}
	watch = dedupSignals(watch)

	rec := acquireRecorder(rig.Bus, watch, 1, g.horizonMs)
	defer releaseRecorder(rec)
	rig.Sched.OnPostSlot(rec.Hook)

	if err := rig.RunFor(g.horizonMs); err != nil {
		return out, err
	}

	applied, at := flip.Applied()
	out.Active = applied && at < g.arrestMs
	out.Direct = make(map[int]bool, len(mod.Outputs))
	if !out.Active {
		return out, nil
	}

	ir := rec.Trace()
	cutoff := -1 // sample index of the earliest other-input deviation
	for _, s := range cutoffSigs {
		if fd := trace.FirstDifference(g.trace, ir, s); fd != trace.NoDifference {
			if cutoff < 0 || fd < cutoff {
				cutoff = fd
			}
		}
	}
	for _, op := range mod.Outputs {
		fd := trace.FirstDifference(g.trace, ir, op.Signal)
		out.Direct[op.Index] = fd != trace.NoDifference && (cutoff < 0 || fd <= cutoff)
	}
	return out, nil
}

func dedupSignals(in []model.SignalID) []model.SignalID {
	seen := make(map[model.SignalID]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
