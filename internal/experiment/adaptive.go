package experiment

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/erm"
	"repro/internal/fi"
	"repro/internal/memmap"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/sut"
)

// The adaptive-campaign layer (docs/adaptive.md) cuts injection volume
// two ways without giving up determinism:
//
//   - Def/use equivalence pruning: a fault-free run of each test case
//     is profiled (memmap.Liveness) and every internal-model target
//     whose corruption is provably unobservable — dead, or always
//     redefined before its next read — joins a (case, region)
//     equivalence class. One representative executes; the reducer
//     credits its outcome once per class member.
//   - Sequential early stopping: sampling streams (one per module
//     input in the permeability campaign, one per memory region in the
//     internal-model campaigns) run in rounds and stop once their
//     Wilson intervals are tighter than the stopping rule demands.
//
// Rounds compose with every executor: each round is an ordinary
// campaign named "<base>@<round>" whose plan is a pure function of the
// shipped cursor state (AdaptiveRound), so serial, sharded, subprocess
// and chaos execution produce byte-identical outcomes, plan hashes
// agree across the dispatch handshake, and checkpoint journals keyed
// by (campaign, plan hash, shard) resume each round independently.

// Stopping-rule defaults: streams stop once the Wilson 95% interval is
// within ±0.05, but never before 100 trials.
const (
	DefaultStopHalfWidth = 0.05
	DefaultStopMinTrials = 100
)

// stopRule resolves the options' stopping rule, applying defaults. A
// negative StopHalfWidth disables stopping (HalfWidth 0 never
// converges), leaving equivalence pruning as the only savings.
func (o Options) stopRule() stats.StopRule {
	r := stats.StopRule{Z: 1.96, HalfWidth: o.StopHalfWidth, MinTrials: o.StopMinTrials}
	if r.HalfWidth == 0 {
		r.HalfWidth = DefaultStopHalfWidth
	} else if r.HalfWidth < 0 {
		r.HalfWidth = 0
	}
	if r.MinTrials == 0 {
		r.MinTrials = DefaultStopMinTrials
	} else if r.MinTrials < 0 {
		r.MinTrials = 0
	}
	return r
}

// AdaptiveRound is the cursor state of one adaptive round, shipped to
// worker processes through the WorkerSpec so they rebuild the round's
// plan bit-for-bit: per-stream trial cursors, which streams already
// stopped, and the round's batch size.
type AdaptiveRound struct {
	Campaign string `json:"campaign"`
	Round    int    `json:"round"`
	Cursors  []int  `json:"cursors"`
	Done     []bool `json:"done"`
	Batch    int    `json:"batch"`
}

// withRound re-encodes the worker spec in the dispatch environment with
// the round state attached, so the fresh worker processes of this round
// rebuild its campaign. No-op without a dispatcher.
func (o Options) withRound(st AdaptiveRound) (Options, error) {
	if o.Dispatch == nil {
		return o, nil
	}
	d := *o.Dispatch
	d.Env = append([]string(nil), d.Env...)
	reencode := func(specJSON string) (string, error) {
		var spec WorkerSpec
		if err := json.Unmarshal([]byte(specJSON), &spec); err != nil {
			return "", fmt.Errorf("experiment: decoding worker spec for round state: %w", err)
		}
		spec.Round = &st
		return spec.Encode()
	}
	prefix := WorkerSpecEnv + "="
	for i, e := range d.Env {
		if !strings.HasPrefix(e, prefix) {
			continue
		}
		enc, err := reencode(e[len(prefix):])
		if err != nil {
			return o, err
		}
		d.Env[i] = prefix + enc
	}
	// The fleet handshake ships Spec directly; keep it in step with the
	// worker environment so network agents see the same round state.
	if d.Spec != "" {
		enc, err := reencode(d.Spec)
		if err != nil {
			return o, err
		}
		d.Spec = enc
	}
	o.Dispatch = &d
	return o, nil
}

// roundName renders the campaign name of one adaptive round. Distinct
// names give every round its own plan hash, keeping checkpoint-journal
// entries and the dispatch handshake round-scoped.
func roundName(base string, round int) string {
	return fmt.Sprintf("%s@%d", base, round)
}

// parseRoundName splits "<base>@<round>"; ok is false for plain names.
func parseRoundName(name string) (base string, round int, ok bool) {
	i := strings.LastIndex(name, "@")
	if i < 0 {
		return "", 0, false
	}
	if _, err := fmt.Sscanf(name[i+1:], "%d", &round); err != nil || round < 0 {
		return "", 0, false
	}
	return name[:i], round, true
}

// roundBatch is the per-stream batch schedule: quarters of the stream,
// with the first round raised to the stopping floor so the rule can
// fire at the earliest opportunity. Small streams collapse to a single
// round, keeping quick campaigns one-shot.
func roundBatch(round, total, minTrials int) int {
	b := (total + 3) / 4
	if round == 0 && b < minTrials {
		b = minTrials
	}
	if b < 1 {
		b = 1
	}
	return b
}

// roundCampaign adapts one adaptive round into an ordinary engine
// campaign: the plan is the round's job list, Reduce returns results
// verbatim for the driver to fold, and the embedded JSONWire keeps the
// round dispatchable to worker processes.
type roundCampaign[Run, Result any] struct {
	campaign.JSONWire[Result]
	name string
	jobs []Run
	exec func(ctx context.Context, run Run, index int) (Result, error)
	key  func(run Run, index int) uint64
	desc func(run Run, index int) string
}

func (c *roundCampaign[Run, Result]) Name() string { return c.name }

func (c *roundCampaign[Run, Result]) Plan() ([]Run, error) { return c.jobs, nil }

func (c *roundCampaign[Run, Result]) Execute(ctx context.Context, run Run, index int) (Result, error) {
	return c.exec(ctx, run, index)
}

func (c *roundCampaign[Run, Result]) Reduce(_ []Run, results []Result) ([]Result, error) {
	return results, nil
}

func (c *roundCampaign[Run, Result]) ShardKey(run Run, index int) uint64 {
	return c.key(run, index)
}

func (c *roundCampaign[Run, Result]) Describe(run Run, index int) string {
	return c.desc(run, index)
}

// benchBracket aggregates a whole round loop into one BENCH timing row,
// mirroring the engine's per-campaign telemetry deltas.
type benchBracket struct {
	start              time.Time
	tel                *obs.Telemetry
	preRun, preDis     int64
	preReconn, preStrg int64
	preShard           []int64
}

func startBenchBracket() *benchBracket {
	b := &benchBracket{start: time.Now(), tel: obs.Active()}
	if b.tel != nil {
		b.preRun = b.tel.RunRetries.Value()
		b.preDis = b.tel.DispatchRetries.Value()
		b.preReconn = b.tel.FleetReconnects.Value()
		b.preStrg = b.tel.FleetStragglers.Value()
		b.preShard = b.tel.ShardDur.Counts()
	}
	return b
}

func (b *benchBracket) observe(col *campaign.Collector, name string, executed, planned int) {
	if col == nil {
		return
	}
	ext := campaign.Extras{RunsPlanned: planned}
	if b.tel != nil {
		ext.RunRetries = b.tel.RunRetries.Value() - b.preRun
		ext.ShardRetries = b.tel.DispatchRetries.Value() - b.preDis
		ext.FleetReconnects = b.tel.FleetReconnects.Value() - b.preReconn
		ext.StragglerRedispatches = b.tel.FleetStragglers.Value() - b.preStrg
		counts := b.tel.ShardDur.Counts()
		for i := range counts {
			if i < len(b.preShard) {
				counts[i] -= b.preShard[i]
			}
		}
		ext.ShardP50Ms = 1000 * obs.QuantileFromCounts(obs.DurationBuckets, counts, 0.50)
		ext.ShardP99Ms = 1000 * obs.QuantileFromCounts(obs.DurationBuckets, counts, 0.99)
	}
	col.ObserveExt(name, executed, time.Since(b.start), ext)
}

// livenessProfile records the def/use trace of one test case's
// fault-free run against the internal-model injection clock. The
// profiled rig runs exactly like an injection run of the same case
// minus the injector, so (by the induction argument in memmap.Liveness)
// the trace decides observability for every memory target at once.
func livenessProfile(opts Options, t sut.Target, g *golden, hardened bool) (*memmap.Liveness, error) {
	return configuredProfile(opts, t, g, nil, hardened)
}

// recoveryProfile profiles one recovery-study arm: the wrapped arm
// deploys the containment wrappers and the hardened arm the hardened
// DIST_S, since either may change the fault-free memory trace.
func recoveryProfile(opts Options, t sut.Target, g *golden, specs []erm.Spec, arm int) (*memmap.Liveness, error) {
	var ws []erm.Spec
	if arm == 1 {
		ws = specs
	}
	return configuredProfile(opts, t, g, ws, arm == 2)
}

func configuredProfile(opts Options, t sut.Target, g *golden, wrapSpecs []erm.Spec, hardened bool) (*memmap.Liveness, error) {
	rig, err := t.Acquire(g.tc, t.CaseSeed(opts.Seed, g.tc), sut.Variant{Hardened: hardened})
	if err != nil {
		return nil, err
	}
	defer t.Release(rig)
	if len(wrapSpecs) > 0 {
		if _, err := sut.NewERMBank(rig, wrapSpecs); err != nil {
			return nil, err
		}
	}
	l, err := memmap.NewLiveness(rig.Mem(), opts.PeriodicMs, opts.PeriodicMs)
	if err != nil {
		return nil, err
	}
	rig.Sched().OnPreSlot(l.Hook)
	rig.Mem().OnRead(l.ReadHook())
	rig.Mem().OnWrite(l.WriteHook())
	if _, err := rig.RunUntilDone(g.horizonMs + opts.GraceMs); err != nil {
		return nil, err
	}
	return l, nil
}

// maskedTarget reports whether the profile proves injections into the
// target unobservable. RAM cells flip in place (persistent criterion),
// stack cells arm the next read (transient criterion); bus-signal
// targets live outside the memory map and always execute.
func maskedTarget(l *memmap.Liveness, tgt fi.MemTarget) bool {
	switch tgt.Kind {
	case fi.TargetRAMCell:
		return l.PersistentMasked(tgt.Cell)
	case fi.TargetStackCell:
		return l.TransientMasked(tgt.Cell)
	}
	return false
}

// prunedMemJobs builds one region's pruned run list: plan order, with
// each (case) class of masked targets collapsed into its first member
// carrying the class size as weight.
func prunedMemJobs(targets []fi.MemTarget, stack bool, profs []*memmap.Liveness) []memJob {
	numCases := len(profs)
	masked := make([]int, numCases)
	for _, tgt := range targets {
		for ci := 0; ci < numCases; ci++ {
			if maskedTarget(profs[ci], tgt) {
				masked[ci]++
			}
		}
	}
	emitted := make([]bool, numCases)
	var out []memJob
	for _, tgt := range targets {
		for ci := 0; ci < numCases; ci++ {
			if maskedTarget(profs[ci], tgt) {
				if emitted[ci] {
					continue
				}
				emitted[ci] = true
				out = append(out, memJob{tgt: tgt, caseIdx: ci, stack: stack, weight: masked[ci]})
			} else {
				out = append(out, memJob{tgt: tgt, caseIdx: ci, stack: stack})
			}
		}
	}
	return out
}

// estimatePermeabilityAdaptive is the early-stopping permeability
// driver: rounds of case-interleaved trials per (module, input) stream,
// each stream stopping once every outgoing edge's Wilson interval is
// tight. Stopping decisions are pure functions of accumulated
// plan-order results, so the outcome is executor-independent; executed
// trials keep their exact-plan seeds, so the estimates are prefix
// averages of the exact campaign's.
func estimatePermeabilityAdaptive(ctx context.Context, opts Options, perInput int) (*PermeabilityResult, error) {
	bb := startBenchBracket()
	base, err := newPermeabilityCampaign(ctx, opts, perInput)
	if err != nil {
		return nil, err
	}
	streams := base.streams()
	numCases := len(opts.Cases)
	perCase := base.perCase()
	total := perCase * numCases // trials per stream
	rule := opts.stopRule()

	type streamStat struct {
		active int
		direct map[int]int // output index -> direct deviations
	}
	stat := make([]streamStat, len(streams))
	for i := range stat {
		stat[i].direct = make(map[int]int)
	}
	cursors := make([]int, len(streams))
	done := make([]bool, len(streams))
	var allJobs []permJob
	var allResults []permOutcome

	for round := 0; ; round++ {
		batch := roundBatch(round, total, rule.MinTrials)
		st := AdaptiveRound{
			Campaign: base.Name(),
			Round:    round,
			Cursors:  append([]int(nil), cursors...),
			Done:     append([]bool(nil), done...),
			Batch:    batch,
		}
		rc, err := base.round(roundName(base.Name(), round), st)
		if err != nil {
			return nil, err
		}
		if len(rc.jobs) == 0 {
			break
		}
		ropts, err := opts.withRound(st)
		if err != nil {
			return nil, err
		}
		results, err := campaign.Execute[permJob, permOutcome, []permOutcome](ctx, rc, ropts.executor(), nil)
		if err != nil {
			return nil, err
		}
		// Fold stream by stream — roundJobs emits unfinished streams in
		// order, batch (or remainder) trials each.
		ji := 0
		for si := range streams {
			if done[si] {
				continue
			}
			n := batch
			if rem := total - cursors[si]; n > rem {
				n = rem
			}
			for t := 0; t < n; t++ {
				out := results[ji+t]
				if !out.Active {
					continue
				}
				stat[si].active++
				for _, op := range streams[si].mod.Outputs {
					if out.Direct[op.Index] {
						stat[si].direct[op.Index]++
					}
				}
			}
			ji += n
			cursors[si] += n
			if cursors[si] >= total || permStreamConverged(rule, streams[si].mod, stat[si].active, stat[si].direct) {
				done[si] = true
			}
		}
		allJobs = append(allJobs, rc.jobs...)
		allResults = append(allResults, results...)
	}

	res, err := base.Reduce(allJobs, allResults)
	if err != nil {
		return nil, err
	}
	res.PlannedRuns = total * len(streams)
	bb.observe(opts.Timings, base.Name(), len(allJobs), res.PlannedRuns)
	return res, nil
}

// permStreamConverged reports whether every outgoing edge of the
// stream's module has a tight interval over the stream's active trials.
func permStreamConverged(rule stats.StopRule, mod *model.ModuleDecl, active int, direct map[int]int) bool {
	if len(mod.Outputs) == 0 {
		return rule.Converged(stats.Proportion{Trials: active})
	}
	for _, op := range mod.Outputs {
		if !rule.Converged(stats.Proportion{Successes: direct[op.Index], Trials: active}) {
			return false
		}
	}
	return true
}

// internalCoverageAdaptive is the pruning + early-stopping Figure 3
// driver: the two region streams (RAM, stack) sample their pruned run
// lists in rounds, and a region stops once every assertion set's c_tot
// interval is tight over the weighted trials accumulated so far.
func internalCoverageAdaptive(ctx context.Context, opts Options, ramLocations, stackLocations int) (*InternalCoverageResult, error) {
	bb := startBenchBracket()
	base, err := newInternalCoverageCampaign(ctx, opts, ramLocations, stackLocations)
	if err != nil {
		return nil, err
	}
	if err := base.prepare(); err != nil {
		return nil, err
	}
	streams := [][]memJob{base.ramPruned, base.stackPruned}
	maxLen := len(streams[0])
	if len(streams[1]) > maxLen {
		maxLen = len(streams[1])
	}
	rule := opts.stopRule()

	res := &InternalCoverageResult{
		RAM:            newRegionCoverage(base.t, "RAM"),
		Stack:          newRegionCoverage(base.t, "Stack"),
		Total:          newRegionCoverage(base.t, "Total"),
		RAMLocations:   len(base.ramTargets),
		StackLocations: len(base.stackTargets),
	}
	regions := []*RegionCoverage{&res.RAM, &res.Stack}
	cursors := make([]int, len(streams))
	done := make([]bool, len(streams))
	executed := 0

	for round := 0; ; round++ {
		batch := roundBatch(round, maxLen, rule.MinTrials)
		st := AdaptiveRound{
			Campaign: base.Name(),
			Round:    round,
			Cursors:  append([]int(nil), cursors...),
			Done:     append([]bool(nil), done...),
			Batch:    batch,
		}
		rc, err := base.round(roundName(base.Name(), round), st)
		if err != nil {
			return nil, err
		}
		if len(rc.jobs) == 0 {
			break
		}
		ropts, err := opts.withRound(st)
		if err != nil {
			return nil, err
		}
		results, err := campaign.Execute[memJob, memOutcome, []memOutcome](ctx, rc, ropts.executor(), nil)
		if err != nil {
			return nil, err
		}
		ji := 0
		for si := range streams {
			if done[si] {
				continue
			}
			n := batch
			if rem := len(streams[si]) - cursors[si]; n > rem {
				n = rem
			}
			for t := 0; t < n; t++ {
				j, out := rc.jobs[ji+t], results[ji+t]
				regions[si].accumulateN(base.t, out.DetectedAt, out.Failed, opts.PeriodicMs, j.weight)
				res.Total.accumulateN(base.t, out.DetectedAt, out.Failed, opts.PeriodicMs, j.weight)
			}
			ji += n
			cursors[si] += n
			executed += n
			if cursors[si] >= len(streams[si]) || regionConverged(rule, regions[si]) {
				done[si] = true
			}
		}
	}

	res.PlannedRuns = (len(base.ramTargets) + len(base.stackTargets)) * len(opts.Cases)
	res.ExecutedRuns = executed
	bb.observe(opts.Timings, base.Name(), executed, res.PlannedRuns)
	return res, nil
}

// regionConverged reports whether every assertion set's total-coverage
// interval over the region is tight.
func regionConverged(rule stats.StopRule, rc *RegionCoverage) bool {
	for _, sc := range rc.PerSet {
		if !rule.Converged(sc.Tot) {
			return false
		}
	}
	return true
}
