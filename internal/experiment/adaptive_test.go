package experiment

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/campaign/chaos"
)

// adaptiveOpts is determinismOpts with the adaptive layer switched on
// and the stopping rule disabled, isolating equivalence pruning and the
// round machinery: every stream runs its full trial budget, so any
// difference from the exact campaign is a pruning or bookkeeping bug.
func adaptiveOpts(workers int) Options {
	opts := determinismOpts(workers)
	opts.Adaptive = true
	opts.StopHalfWidth = -1 // never converge; rounds cover the full grid
	return opts
}

// regionFingerprint renders a RegionCoverage in a stable order.
// Latencies are sorted: a pruned campaign appends a masked class's
// (identical) latencies consecutively at the representative's position,
// so only the multiset is preserved, not the order.
func regionFingerprint(rc RegionCoverage) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s runs=%d failures=%d\n", rc.Region, rc.Runs, rc.Failures)
	var sets []string
	for set, sc := range rc.PerSet {
		sets = append(sets, fmt.Sprintf("  %s tot=%d/%d fail=%d/%d nofail=%d/%d",
			set, sc.Tot.Successes, sc.Tot.Trials,
			sc.Fail.Successes, sc.Fail.Trials,
			sc.NoFail.Successes, sc.NoFail.Trials))
	}
	sort.Strings(sets)
	b.WriteString(strings.Join(sets, "\n") + "\n")
	var lats []string
	for set, ls := range rc.SetLatenciesMs {
		sorted := append([]float64(nil), ls...)
		sort.Float64s(sorted)
		lats = append(lats, fmt.Sprintf("  %s lat=%v", set, sorted))
	}
	sort.Strings(lats)
	b.WriteString(strings.Join(lats, "\n") + "\n")
	return b.String()
}

func internalFingerprint(res *InternalCoverageResult) string {
	return fmt.Sprintf("ram=%d stack=%d\n", res.RAMLocations, res.StackLocations) +
		regionFingerprint(res.RAM) + regionFingerprint(res.Stack) + regionFingerprint(res.Total)
}

// TestAdaptivePermeabilityMatchesExactWhenStoppingDisabled pins the
// tentpole soundness property on Table 1: with the stopping rule
// disabled, the round-based adaptive driver executes the exact grid —
// trials keep their exact-plan seeds — and reduces byte-identical to
// the one-shot exact campaign.
func TestAdaptivePermeabilityMatchesExactWhenStoppingDisabled(t *testing.T) {
	ClearGoldenCache()
	exact, err := EstimatePermeability(context.Background(), determinismOpts(4), 6)
	if err != nil {
		t.Fatal(err)
	}
	ClearGoldenCache()
	adaptive, err := EstimatePermeability(context.Background(), adaptiveOpts(4), 6)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := permeabilityFingerprint(t, exact), permeabilityFingerprint(t, adaptive); a != b {
		t.Errorf("adaptive (stopping disabled) differs from exact:\n--- exact ---\n%s\n--- adaptive ---\n%s", a, b)
	}
	if adaptive.PlannedRuns != exact.TotalRuns {
		t.Errorf("adaptive PlannedRuns = %d, want exact grid %d", adaptive.PlannedRuns, exact.TotalRuns)
	}
	if adaptive.TotalRuns != adaptive.PlannedRuns {
		t.Errorf("stopping disabled but TotalRuns %d != PlannedRuns %d",
			adaptive.TotalRuns, adaptive.PlannedRuns)
	}
}

// TestAdaptivePermeabilityStopsEarly asserts the early-stopping half of
// the tentpole: a loose rule stops streams before the trial budget, the
// result accounts for the savings, and every executed stream respects
// the minimum-trials floor.
func TestAdaptivePermeabilityStopsEarly(t *testing.T) {
	opts := determinismOpts(4)
	opts.Adaptive = true
	opts.StopHalfWidth = 0.2
	opts.StopMinTrials = 30
	ClearGoldenCache()
	res, err := EstimatePermeability(context.Background(), opts, 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRuns >= res.PlannedRuns {
		t.Errorf("loose stopping rule saved nothing: executed %d of %d planned",
			res.TotalRuns, res.PlannedRuns)
	}
	if res.TotalRuns < opts.StopMinTrials {
		t.Errorf("executed %d trials, below the %d floor for even one stream",
			res.TotalRuns, opts.StopMinTrials)
	}
	// The estimates are prefix averages of the exact campaign's streams,
	// so every edge estimate must stay a valid proportion with trials
	// between the floor and the full budget.
	for e, p := range res.Samples {
		if p.Trials > 0 && (p.Successes < 0 || p.Successes > p.Trials) {
			t.Errorf("edge %v has invalid proportion %d/%d", e, p.Successes, p.Trials)
		}
	}
}

// TestAdaptivePermeabilityDeterministicAcrossExecutors asserts the
// composition requirement: rounds are ordinary campaigns, so serial,
// sharded, chaos-wrapped and subprocess execution of an adaptive
// campaign — early stopping active — produce byte-identical results.
func TestAdaptivePermeabilityDeterministicAcrossExecutors(t *testing.T) {
	run := func(name string, opts Options) string {
		t.Helper()
		ClearGoldenCache()
		res, err := EstimatePermeability(context.Background(), opts, 24)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return permeabilityFingerprint(t, res) +
			fmt.Sprintf("planned=%d", res.PlannedRuns)
	}
	stopping := func(opts Options) Options {
		opts.Adaptive = true
		opts.StopHalfWidth = 0.25
		opts.StopMinTrials = 20
		return opts
	}

	ref := run("serial", stopping(determinismOpts(1)))

	for _, shards := range []int{1, 2, 8} {
		opts := stopping(determinismOpts(4))
		opts.Shards = shards
		if fp := run(fmt.Sprintf("sharded-%d", shards), opts); fp != ref {
			t.Errorf("sharded-%d adaptive output differs from serial:\n--- serial ---\n%s\n--- sharded ---\n%s",
				shards, ref, fp)
		}
	}

	chaosOpts := stopping(determinismOpts(4))
	chaosOpts.Shards = 8
	chaosOpts.execOverride = chaos.Chaos{
		Inner: campaign.Retry{
			Inner:       campaign.Sharded{Workers: 4, Shards: 8},
			Attempts:    4,
			BackoffBase: time.Millisecond,
			BackoffCap:  4 * time.Millisecond,
		},
		Seed:      99,
		PanicRate: 0.05, ErrorRate: 0.05, DelayRate: 0.05, DropRate: 0.05,
	}
	if fp := run("chaos+retry", chaosOpts); fp != ref {
		t.Errorf("chaos adaptive output differs from serial:\n--- serial ---\n%s\n--- chaos ---\n%s", ref, fp)
	}

	var log syncLog
	subOpts := subprocessOpts(t, 2, 4, WorkerSpec{PerInput: 24}, "", &log)
	subOpts = stopping(subOpts)
	if fp := run("subprocess", subOpts); fp != ref {
		t.Errorf("subprocess adaptive output differs from serial:\n--- serial ---\n%s\n--- subprocess ---\n%s\nlog:\n%s",
			ref, fp, log.String())
	}
}

// TestAdaptiveInternalCoverageMatchesExactWithStoppingDisabled pins the
// def/use pruning soundness on Figure 3: the pruned, weight-reduced
// campaign must reproduce the exact campaign's regions — counts,
// per-set proportions and latency multisets, every field
// report.Figure3 renders — while executing fewer injections whenever
// any masked class has size > 1.
func TestAdaptiveInternalCoverageMatchesExactWithStoppingDisabled(t *testing.T) {
	// 60 RAM locations: roughly 4% of the map's RAM cells are provably
	// masked (write-before-read within every injection period), so a
	// 60-location sample reliably contains a few and the equality below
	// exercises the weighted reduction, not just the passthrough.
	ClearGoldenCache()
	exact, err := InternalCoverage(context.Background(), determinismOpts(4), 60, 12)
	if err != nil {
		t.Fatal(err)
	}
	ClearGoldenCache()
	adaptive, err := InternalCoverage(context.Background(), adaptiveOpts(4), 60, 12)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := internalFingerprint(exact), internalFingerprint(adaptive); a != b {
		t.Errorf("pruned coverage differs from exact:\n--- exact ---\n%s\n--- pruned ---\n%s", a, b)
	}
	if adaptive.PlannedRuns != exact.Total.Runs {
		t.Errorf("PlannedRuns = %d, want exact volume %d", adaptive.PlannedRuns, exact.Total.Runs)
	}
	if adaptive.ExecutedRuns >= adaptive.PlannedRuns {
		t.Errorf("pruning executed %d of %d planned runs; no class collapsed",
			adaptive.ExecutedRuns, adaptive.PlannedRuns)
	}
	t.Logf("internal-coverage pruning: %d of %d runs executed (%d saved)",
		adaptive.ExecutedRuns, adaptive.PlannedRuns, adaptive.PlannedRuns-adaptive.ExecutedRuns)
}

// TestAdaptiveInternalCoverageDeterministicAcrossExecutors runs the
// pruned + early-stopping Figure 3 campaign serially, sharded and on
// worker subprocesses; the round plans and stopping decisions must be
// pure functions of the cursor state, so all arms agree byte-for-byte.
func TestAdaptiveInternalCoverageDeterministicAcrossExecutors(t *testing.T) {
	stopping := func(opts Options) Options {
		opts.Adaptive = true
		opts.StopHalfWidth = 0.25
		opts.StopMinTrials = 10
		return opts
	}
	run := func(name string, opts Options) string {
		t.Helper()
		ClearGoldenCache()
		res, err := InternalCoverage(context.Background(), opts, 20, 12)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return internalFingerprint(res) +
			fmt.Sprintf("planned=%d executed=%d", res.PlannedRuns, res.ExecutedRuns)
	}

	ref := run("serial", stopping(determinismOpts(1)))

	sharded := stopping(determinismOpts(4))
	sharded.Shards = 4
	if fp := run("sharded", sharded); fp != ref {
		t.Errorf("sharded adaptive coverage differs from serial:\n--- serial ---\n%s\n--- sharded ---\n%s", ref, fp)
	}

	var log syncLog
	sub := subprocessOpts(t, 2, 4, WorkerSpec{RAMLocations: 20, StackLocations: 12}, "", &log)
	sub = stopping(sub)
	if fp := run("subprocess", sub); fp != ref {
		t.Errorf("subprocess adaptive coverage differs from serial:\n--- serial ---\n%s\n--- subprocess ---\n%s\nlog:\n%s",
			ref, fp, log.String())
	}
}

// TestAdaptiveRecoveryMatchesExact pins pruning soundness on the
// recovery study: per-arm liveness profiles collapse masked classes
// into weighted representatives, and the weighted reduction must equal
// the exact study — runs, failures and recovery counts — in every arm
// of every region.
func TestAdaptiveRecoveryMatchesExact(t *testing.T) {
	ClearGoldenCache()
	exact, err := RecoveryStudy(context.Background(), determinismOpts(4), 12, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	ClearGoldenCache()
	opts := determinismOpts(4)
	opts.Adaptive = true
	pruned, err := RecoveryStudy(context.Background(), opts, 12, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(exact, pruned) {
		t.Errorf("pruned recovery study differs from exact:\n--- exact ---\n%+v\n--- pruned ---\n%+v", exact, pruned)
	}
}

// TestAdaptiveWorkerRejectsStaleRoundState asserts the dispatch safety
// seam: a worker asked to build a round it has no matching cursor state
// for must refuse rather than derive a mismatched plan.
func TestAdaptiveWorkerRejectsStaleRoundState(t *testing.T) {
	opts := determinismOpts(1)
	spec := WorkerSpec{Options: opts, PerInput: 6}
	if _, err := spec.buildWorker(context.Background(), "permeability@0"); err == nil {
		t.Error("worker built a round campaign without round state")
	}
	spec.Round = &AdaptiveRound{Campaign: "permeability", Round: 1, Batch: 2,
		Cursors: make([]int, 1), Done: make([]bool, 1)}
	if _, err := spec.buildWorker(context.Background(), "permeability@0"); err == nil {
		t.Error("worker built round 0 with round-1 state")
	}
}

// TestRoundNameRoundTrip covers the "<base>@<round>" naming scheme the
// checkpoint journal and dispatch handshake key on.
func TestRoundNameRoundTrip(t *testing.T) {
	for _, base := range []string{"permeability", "internal-coverage"} {
		for _, round := range []int{0, 1, 17} {
			name := roundName(base, round)
			b, r, ok := parseRoundName(name)
			if !ok || b != base || r != round {
				t.Errorf("parseRoundName(%q) = %q, %d, %v", name, b, r, ok)
			}
		}
	}
	for _, plain := range []string{"permeability", "recovery", "internal-coverage"} {
		if _, _, ok := parseRoundName(plain); ok {
			t.Errorf("parseRoundName(%q) claimed a round name", plain)
		}
	}
}

// TestRoundBatchSchedule pins the batch schedule: quarters of the
// stream, round 0 raised to the stopping floor, never below one.
func TestRoundBatchSchedule(t *testing.T) {
	cases := []struct {
		round, total, floor, want int
	}{
		{0, 400, 100, 100}, // quarter == floor
		{0, 100, 100, 100}, // small stream collapses into round 0
		{0, 40, 100, 100},  // floor dominates tiny streams
		{1, 40, 100, 10},   // later rounds are plain quarters
		{0, 8, 0, 2},       // no floor: plain quarter
		{3, 2, 0, 1},       // never below 1
	}
	for _, c := range cases {
		if got := roundBatch(c.round, c.total, c.floor); got != c.want {
			t.Errorf("roundBatch(%d, %d, %d) = %d, want %d", c.round, c.total, c.floor, got, c.want)
		}
	}
}
