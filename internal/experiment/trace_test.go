package experiment

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/traceview"
)

// TestFleetMetricsDuringCampaign scrapes /metrics while a campaign runs
// across networked worker agents: the run counter must stay monotone
// between scrapes and finish exactly at the plan size. The agents here
// are in-process, which makes this a regression gate for the hello-token
// merge skip — without it, every agent's metric delta would be merged
// back into the registry it was read from and the counter would
// overshoot the plan.
func TestFleetMetricsDuringCampaign(t *testing.T) {
	prev := obs.Install(nil)
	defer obs.Install(prev)

	tel := obs.New(obs.Config{})
	obs.Install(tel)
	defer func() { obs.Install(nil); tel.Close() }()

	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()

	const perInput = 6
	ClearGoldenCache()
	addrs := startTestAgents(t, 2)
	var log bytes.Buffer
	opts := fleetDispatchOpts(t, determinismOpts(2), WorkerSpec{PerInput: perInput}, addrs, &log)

	type outcome struct {
		res *PermeabilityResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := EstimatePermeability(context.Background(), opts, perInput)
		done <- outcome{res, err}
	}()

	const runsDone = `repro_campaign_runs_done_total{campaign="permeability"}`
	var last float64
	var out outcome
poll:
	for {
		select {
		case out = <-done:
			break poll
		case <-time.After(2 * time.Millisecond):
			v, ok := scrapeValue(t, srv.URL, runsDone)
			if ok && v < last {
				t.Fatalf("runs-done counter went backwards: %g -> %g", last, v)
			}
			if ok {
				last = v
			}
		}
	}
	if out.err != nil {
		t.Fatalf("fleet campaign: %v\nlog:\n%s", out.err, log.String())
	}
	if !bytes.Contains(log.Bytes(), []byte("joined")) {
		t.Fatalf("no worker ever joined; the fleet path was not exercised:\n%s", log.String())
	}

	final, ok := scrapeValue(t, srv.URL, runsDone)
	if !ok {
		t.Fatalf("final scrape is missing %s", runsDone)
	}
	if final < last {
		t.Fatalf("final runs-done %g below mid-campaign scrape %g", final, last)
	}
	if int(final) != out.res.TotalRuns {
		t.Errorf("runs-done counter %g, want plan size %d (agent deltas double-merged?)",
			final, out.res.TotalRuns)
	}
}

// TestFleetTraceMergesWorkerSpans is the tracing acceptance gate: a
// campaign dispatched across three networked agents must produce one
// merged trace in the event log — worker-recorded spans stamped with
// the campaign's deterministic trace id, nested under the coordinator's
// dispatch spans, with queue/exec/net phase attribution on each shard.
func TestFleetTraceMergesWorkerSpans(t *testing.T) {
	prev := obs.Install(nil)
	defer obs.Install(prev)

	events := filepath.Join(t.TempDir(), "events.ndjson")
	f, err := os.Create(events)
	if err != nil {
		t.Fatal(err)
	}
	tel := obs.New(obs.Config{EventSink: f})
	obs.Install(tel)

	const perInput = 6
	ClearGoldenCache()
	addrs := startTestAgents(t, 3)
	var log bytes.Buffer
	opts := fleetDispatchOpts(t, determinismOpts(3), WorkerSpec{PerInput: perInput}, addrs, &log)
	if _, err := EstimatePermeability(context.Background(), opts, perInput); err != nil {
		t.Fatalf("fleet campaign: %v\nlog:\n%s", err, log.String())
	}
	tel.Close()
	obs.Install(nil)
	f.Close()

	ef, err := os.Open(events)
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()
	a, err := traceview.Parse(ef)
	if err != nil {
		t.Fatal(err)
	}
	if a.Skipped > 0 {
		t.Errorf("%d unparseable lines in a clean run's event log", a.Skipped)
	}

	// The campaign root carries a trace id; every traced span in the log
	// agrees with it (one coherent trace, not per-process fragments).
	var trace string
	for _, s := range a.Spans {
		if s.Name == "campaign" && s.Trace != "" {
			trace = s.Trace
			break
		}
	}
	if trace == "" {
		t.Fatal("no campaign root span with a trace id")
	}
	var dispatchSpans, workerRoots, workerExecs int
	for _, s := range a.Spans {
		if s.Trace != "" && s.Trace != trace {
			t.Errorf("span %s carries trace %q, want %q", s.Name, s.Trace, trace)
		}
		switch s.Name {
		case "dispatch.shard":
			dispatchSpans++
			for _, key := range []string{"queue_ms", "exec_ms", "net_ms"} {
				if _, ok := s.Attrs[key]; !ok {
					t.Errorf("dispatch.shard %s missing %s attribution: %v", s.Attrs["shard"], key, s.Attrs)
				}
			}
		case "worker.shard":
			workerRoots++
			if s.Trace != trace {
				t.Errorf("worker.shard not stamped with campaign trace: %q", s.Trace)
			}
			if p, ok := a.Spans[s.Parent]; !ok || p.Name != "dispatch.shard" {
				t.Errorf("worker.shard parent is %v, want a dispatch.shard span", s.Parent)
			}
		case "worker.exec":
			workerExecs++
			if p, ok := a.Spans[s.Parent]; !ok || p.Name != "worker.shard" {
				t.Errorf("worker.exec parent is %v, want a worker.shard span", s.Parent)
			}
		}
	}
	if dispatchSpans == 0 || workerRoots == 0 || workerExecs == 0 {
		t.Fatalf("merged trace incomplete: %d dispatch.shard, %d worker.shard, %d worker.exec spans",
			dispatchSpans, workerRoots, workerExecs)
	}
	if workerRoots != dispatchSpans {
		t.Errorf("%d worker.shard subtrees for %d dispatch.shard spans; every shard should fold one",
			workerRoots, dispatchSpans)
	}

	// The analyzer must walk this log end to end: critical path from the
	// campaign root and per-shard phase attribution.
	var report bytes.Buffer
	if err := traceview.WriteReport(&report, a, 3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(report.Bytes(), []byte("slowest shards")) {
		t.Errorf("analyzer report has no straggler section:\n%s", report.String())
	}
	var folded bytes.Buffer
	if err := traceview.WriteFolded(&folded, a); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(folded.Bytes(), []byte("worker.shard")) {
		t.Errorf("folded stacks missing worker frames:\n%s", folded.String())
	}
}

// TestCancelMidCampaignEventsParse kills a campaign mid-flight via
// context cancellation and requires the event log on disk to remain
// parseable — the flush-per-record contract: at worst the final line is
// cut, never an earlier one, and no record is lost in a buffer.
func TestCancelMidCampaignEventsParse(t *testing.T) {
	prev := obs.Install(nil)
	defer obs.Install(prev)

	events := filepath.Join(t.TempDir(), "events.ndjson")
	f, err := os.Create(events)
	if err != nil {
		t.Fatal(err)
	}
	tel := obs.New(obs.Config{EventSink: f})
	obs.Install(tel)

	ClearGoldenCache()
	opts := determinismOpts(2)
	opts.Shards = 8

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := EstimatePermeability(ctx, opts, 6)
		done <- err
	}()

	// Cancel as soon as the log has real content, so the writer dies
	// with records in flight rather than after a clean finish.
	deadline := time.After(10 * time.Second)
	for {
		if st, err := os.Stat(events); err == nil && st.Size() > 0 {
			break
		}
		select {
		case <-done:
			// Campaign finished before any span ended — still fine, the
			// parseability claim below holds either way.
		case <-deadline:
			t.Fatal("event log never received a record")
		case <-time.After(time.Millisecond):
			continue
		}
		break
	}
	cancel()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("campaign did not stop after cancel")
	}
	// Deliberately NO tel.Close() before reading: the records already on
	// disk must parse without a final flush.
	ef, err := os.Open(events)
	if err != nil {
		t.Fatal(err)
	}
	a, perr := traceview.Parse(ef)
	ef.Close()
	tel.Close()
	obs.Install(nil)
	f.Close()
	if perr != nil {
		t.Fatal(perr)
	}
	if a.Lines == 0 {
		t.Fatal("event log is empty")
	}
	if a.Skipped > 1 {
		t.Errorf("%d of %d lines unparseable; flush-per-record allows at most the final line cut",
			a.Skipped, a.Lines)
	}
}
