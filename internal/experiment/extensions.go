package experiment

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/campaign"
	"repro/internal/erm"
	"repro/internal/fi"
	"repro/internal/memmap"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/sut"
)

// ModelSensitivityResult compares detection coverage across input error
// models (DESIGN.md index A1): the paper shows its conclusions are
// error-model dependent for internal errors; this probes the same
// question on the sensor side.
type ModelSensitivityResult struct {
	// Models lists the evaluated error models in evaluation order.
	Models []string
	// PerModel maps model -> assertion set -> coverage over active
	// errors.
	PerModel map[string]map[string]stats.Proportion
	// ActivePerModel counts active errors per model.
	ActivePerModel map[string]int
	// TotalRuns counts all injection runs across models.
	TotalRuns int
}

// sensitivityModels returns the evaluated corruption templates.
func sensitivityModels() []fi.Corruption {
	return []fi.Corruption{
		{Kind: fi.CorruptTransient},
		{Kind: fi.CorruptStuckAt0},
		{Kind: fi.CorruptStuckAt1},
		{Kind: fi.CorruptBurst, BurstWidth: 3},
		{Kind: fi.CorruptIntermittent, PeriodReads: 5},
	}
}

// sensJob is one error-model sensitivity run.
type sensJob struct {
	modelIdx int
	caseIdx  int
}

// sensOutcome is one sensitivity run's detections, wire-encodable for
// the subprocess dispatcher.
type sensOutcome struct {
	Active     bool             `json:"active"`
	DetectedAt map[string]int64 `json:"detected_at,omitempty"`
}

// sensitivityCampaign is the A1 extension on the engine.
type sensitivityCampaign struct {
	campaign.JSONWire[sensOutcome]
	opts     Options
	t        sut.Target
	perModel int
	models   []fi.Corruption
	golds    []*golden
	port     model.PortRef
	sig      *model.Signal
}

func (c *sensitivityCampaign) Name() string { return "model-sensitivity" }

func (c *sensitivityCampaign) Plan() ([]sensJob, error) {
	perCase := c.perModel / len(c.opts.Cases)
	if perCase < 1 {
		perCase = 1
	}
	var plan []sensJob
	for mi := range c.models {
		for ci := range c.opts.Cases {
			for k := 0; k < perCase; k++ {
				plan = append(plan, sensJob{modelIdx: mi, caseIdx: ci})
			}
		}
	}
	return plan, nil
}

func (c *sensitivityCampaign) Execute(_ context.Context, j sensJob, index int) (sensOutcome, error) {
	rng := rand.New(rand.NewSource(c.t.RunSeed(c.opts.Seed, "modsens", index)))
	corr := c.models[j.modelIdx]
	corr.Port = c.port
	g := c.golds[j.caseIdx]
	corr.FromMs = rng.Int63n(c.t.InjectWindow(g.arrestMs))
	switch corr.Kind {
	case fi.CorruptBurst:
		corr.Bit = uint8(rng.Intn(int(c.sig.Type.Width) - int(corr.BurstWidth) + 1))
	default:
		corr.Bit = uint8(rng.Intn(int(c.sig.Type.Width)))
	}
	active, detected, err := corruptionCoverageRun(c.opts, c.t, g, corr)
	if err != nil {
		return sensOutcome{}, err
	}
	return sensOutcome{Active: active, DetectedAt: detected}, nil
}

func (c *sensitivityCampaign) Reduce(plan []sensJob, results []sensOutcome) (*ModelSensitivityResult, error) {
	res := &ModelSensitivityResult{
		PerModel:       make(map[string]map[string]stats.Proportion, len(c.models)),
		ActivePerModel: make(map[string]int, len(c.models)),
		TotalRuns:      len(plan),
	}
	for _, m := range c.models {
		res.Models = append(res.Models, m.Kind.String())
		sets := make(map[string]stats.Proportion, len(setMembers(c.t)))
		for set := range setMembers(c.t) {
			sets[set] = stats.Proportion{}
		}
		res.PerModel[m.Kind.String()] = sets
	}
	for i, j := range plan {
		out := results[i]
		if !out.Active {
			continue
		}
		name := c.models[j.modelIdx].Kind.String()
		res.ActivePerModel[name]++
		for set, members := range setMembers(c.t) {
			hit := false
			for _, ea := range members {
				if _, ok := out.DetectedAt[ea]; ok {
					hit = true
					break
				}
			}
			p := res.PerModel[name][set]
			p.Add(hit)
			res.PerModel[name][set] = p
		}
	}
	return res, nil
}

func (c *sensitivityCampaign) ShardKey(j sensJob, _ int) uint64 {
	return shardKeyFor(c.opts, c.opts.Cases[j.caseIdx])
}

func (c *sensitivityCampaign) Describe(j sensJob, index int) string {
	return describeRun(c.t, c.opts, "modsens", index, j.caseIdx) +
		" model=" + c.models[j.modelIdx].Kind.String()
}

// ErrorModelSensitivity injects perModel errors into the target's probe
// input (for the arrestment system, PACNT — the one input whose errors
// are detectable at all) under each error model and measures EH/PA
// coverage.
func ErrorModelSensitivity(ctx context.Context, opts Options, perModel int) (*ModelSensitivityResult, error) {
	c, err := newSensitivityCampaign(ctx, opts, perModel)
	if err != nil {
		return nil, err
	}
	return campaign.Execute[sensJob, sensOutcome, *ModelSensitivityResult](ctx, c, opts.executor(), opts.Timings)
}

func newSensitivityCampaign(ctx context.Context, opts Options, perModel int) (*sensitivityCampaign, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if perModel < 1 {
		return nil, fmt.Errorf("experiment: perModel %d must be >= 1", perModel)
	}
	t, err := resolvedTarget(opts)
	if err != nil {
		return nil, err
	}
	golds, err := goldens(ctx, opts, t)
	if err != nil {
		return nil, err
	}
	port, sig, err := probePort(t)
	if err != nil {
		return nil, err
	}
	return &sensitivityCampaign{
		opts: opts, t: t, perModel: perModel, models: sensitivityModels(),
		golds: golds, port: port, sig: sig,
	}, nil
}

// corruptionCoverageRun is coverageRun generalized over error models.
func corruptionCoverageRun(opts Options, t sut.Target, g *golden, c fi.Corruption) (bool, map[string]int64, error) {
	rig, err := t.Acquire(g.tc, t.CaseSeed(opts.Seed, g.tc), sut.Variant{})
	if err != nil {
		return false, nil, err
	}
	defer t.Release(rig)
	bank, err := sut.NewBank(t, rig, t.EHSet())
	if err != nil {
		return false, nil, err
	}
	rig.Sched().OnPostSlot(bank.Hook)

	ci, err := fi.NewCorruptionInjector(c, rig.Bus())
	if err != nil {
		return false, nil, err
	}
	rig.Sched().OnPreSlot(ci.Hook)
	rig.Bus().OnRead(ci.ReadHook())

	if err := rig.RunFor(g.horizonMs); err != nil {
		return false, nil, err
	}
	n, first := ci.Applied()
	active := n > 0 && first < g.arrestMs
	return active, detectionTimes(bank), nil
}

// RecoveryArm is one arm of the recovery study.
type RecoveryArm struct {
	Runs, Failures int
	// Recoveries counts wrapper substitutions (wrapped arm only).
	Recoveries int
}

// FailureRate returns the arm's failure fraction.
func (a RecoveryArm) FailureRate() float64 {
	if a.Runs == 0 {
		return 0
	}
	return float64(a.Failures) / float64(a.Runs)
}

// RecoveryRegion compares outcomes per region across three arms: no
// recovery, signal-level containment wrappers (write filters on the
// PA-selected signals), and module-internal containment (a hardened
// DIST_S that rejects implausible pulse deltas — guideline R2 applied
// inside the most failure-prone module).
type RecoveryRegion struct {
	Region                      string
	Baseline, Wrapped, Hardened RecoveryArm
}

// RecoveryStudyResult quantifies how much the R2-placed containment
// wrappers reduce specification failures under the internal error model.
type RecoveryStudyResult struct {
	RAM, Stack, Total RecoveryRegion
	// RAMLocations and StackLocations echo the sampled campaign size.
	RAMLocations, StackLocations int
}

// recJob is one recovery-study run: one memory target, one case, one
// arm (0 baseline, 1 wrapped, 2 hardened). weight is the def/use
// equivalence class size the run stands for (0 and 1 mean itself).
type recJob struct {
	tgt     fi.MemTarget
	caseIdx int
	stack   bool
	arm     int
	weight  int
}

// recOutcome is one recovery run's verdict, wire-encodable for the
// subprocess dispatcher.
type recOutcome struct {
	Failed     bool `json:"failed"`
	Recoveries int  `json:"recoveries,omitempty"`
}

// recoveryCampaign is the A5 extension on the engine.
type recoveryCampaign struct {
	campaign.JSONWire[recOutcome]
	opts                         Options
	t                            sut.Target
	ramLocations, stackLocations int
	specs                        []erm.Spec
	golds                        []*golden
	ramTargets, stackTargets     []fi.MemTarget
}

func (c *recoveryCampaign) Name() string { return "recovery" }

func (c *recoveryCampaign) Plan() ([]recJob, error) {
	scratch, err := c.t.Acquire(c.opts.Cases[0], 1, sut.Variant{})
	if err != nil {
		return nil, err
	}
	c.ramTargets = fi.SampleTargets(fi.EnumerateRAMTargets(scratch.System(), scratch.Mem()), c.ramLocations, c.opts.Seed*7+1)
	c.stackTargets = fi.SampleTargets(fi.EnumerateStackTargets(scratch.Mem()), c.stackLocations, c.opts.Seed*7+2)
	c.t.Release(scratch)

	if c.opts.Adaptive {
		return c.prunedPlan()
	}
	var plan []recJob
	add := func(tgts []fi.MemTarget, stack bool) {
		for _, tgt := range tgts {
			for ci := range c.opts.Cases {
				for arm := 0; arm < 3; arm++ {
					plan = append(plan, recJob{tgt: tgt, caseIdx: ci, stack: stack, arm: arm})
				}
			}
		}
	}
	add(c.ramTargets, false)
	add(c.stackTargets, true)
	return plan, nil
}

// prunedPlan is the adaptive plan: every (case, arm, region) set of
// provably-masked targets collapses into one weighted representative.
// Each arm gets its own fault-free liveness profile — the wrapped and
// hardened configurations may trace memory differently — so masking is
// judged against the exact configuration the run would execute.
// Deterministic: parent and workers derive the identical plan, so the
// dispatch plan-hash handshake holds.
func (c *recoveryCampaign) prunedPlan() ([]recJob, error) {
	profs := make([][]*memmap.Liveness, 3)
	for arm := 0; arm < 3; arm++ {
		profs[arm] = make([]*memmap.Liveness, len(c.opts.Cases))
		for ci := range c.opts.Cases {
			l, err := recoveryProfile(c.opts, c.t, c.golds[ci], c.specs, arm)
			if err != nil {
				return nil, err
			}
			profs[arm][ci] = l
		}
	}
	var plan []recJob
	add := func(tgts []fi.MemTarget, stack bool) {
		// Class sizes first, then one representative at its natural plan
		// position (the first masked target of each class).
		masked := make([][]int, 3)
		emitted := make([][]bool, 3)
		for arm := range masked {
			masked[arm] = make([]int, len(c.opts.Cases))
			emitted[arm] = make([]bool, len(c.opts.Cases))
			for _, tgt := range tgts {
				for ci := range c.opts.Cases {
					if maskedTarget(profs[arm][ci], tgt) {
						masked[arm][ci]++
					}
				}
			}
		}
		for _, tgt := range tgts {
			for ci := range c.opts.Cases {
				for arm := 0; arm < 3; arm++ {
					if maskedTarget(profs[arm][ci], tgt) {
						if emitted[arm][ci] {
							continue
						}
						emitted[arm][ci] = true
						plan = append(plan, recJob{tgt: tgt, caseIdx: ci, stack: stack, arm: arm, weight: masked[arm][ci]})
					} else {
						plan = append(plan, recJob{tgt: tgt, caseIdx: ci, stack: stack, arm: arm})
					}
				}
			}
		}
	}
	add(c.ramTargets, false)
	add(c.stackTargets, true)
	return plan, nil
}

// PlannedRuns reports the exact grid size the campaign stands for, so
// the engine's timing row shows the pruning savings.
func (c *recoveryCampaign) PlannedRuns() int {
	return (len(c.ramTargets) + len(c.stackTargets)) * len(c.opts.Cases) * 3
}

func (c *recoveryCampaign) Execute(_ context.Context, j recJob, _ int) (recOutcome, error) {
	var ws []erm.Spec
	if j.arm == 1 {
		ws = c.specs
	}
	failed, rec, err := severeRun(c.opts, c.t, c.golds[j.caseIdx], j.tgt, ws, j.arm == 2)
	if err != nil {
		return recOutcome{}, err
	}
	return recOutcome{Failed: failed, Recoveries: rec}, nil
}

func (c *recoveryCampaign) Reduce(plan []recJob, results []recOutcome) (*RecoveryStudyResult, error) {
	res := &RecoveryStudyResult{
		RAM:            RecoveryRegion{Region: "RAM"},
		Stack:          RecoveryRegion{Region: "Stack"},
		Total:          RecoveryRegion{Region: "Total"},
		RAMLocations:   len(c.ramTargets),
		StackLocations: len(c.stackTargets),
	}
	for i, j := range plan {
		out := results[i]
		regions := []*RecoveryRegion{&res.Total, &res.RAM}
		if j.stack {
			regions[1] = &res.Stack
		}
		w := j.weight
		if w < 1 {
			w = 1
		}
		for _, region := range regions {
			arm := &region.Baseline
			switch j.arm {
			case 1:
				arm = &region.Wrapped
			case 2:
				arm = &region.Hardened
			}
			arm.Runs += w
			if out.Failed {
				arm.Failures += w
			}
			arm.Recoveries += w * out.Recoveries
		}
	}
	return res, nil
}

func (c *recoveryCampaign) ShardKey(j recJob, _ int) uint64 {
	return shardKeyFor(c.opts, c.opts.Cases[j.caseIdx])
}

func (c *recoveryCampaign) Describe(j recJob, index int) string {
	arm := [...]string{"baseline", "wrapped", "hardened"}[j.arm]
	return describeRun(c.t, c.opts, "recovery", index, j.caseIdx) + " arm=" + arm
}

// RecoveryStudy runs the internal error model three times over the same
// sampled locations — without recovery, with the containment wrappers,
// and with the hardened DIST_S — and compares failure rates. specs
// defaults to the target's ERMSpecs() when nil.
func RecoveryStudy(ctx context.Context, opts Options, ramLocations, stackLocations int, specs []erm.Spec) (*RecoveryStudyResult, error) {
	c, err := newRecoveryCampaign(ctx, opts, ramLocations, stackLocations, specs)
	if err != nil {
		return nil, err
	}
	return campaign.Execute[recJob, recOutcome, *RecoveryStudyResult](ctx, c, opts.executor(), opts.Timings)
}

func newRecoveryCampaign(ctx context.Context, opts Options, ramLocations, stackLocations int, specs []erm.Spec) (*recoveryCampaign, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if ramLocations < 1 || stackLocations < 1 {
		return nil, fmt.Errorf("experiment: location counts must be >= 1")
	}
	t, err := resolvedTarget(opts)
	if err != nil {
		return nil, err
	}
	if specs == nil {
		specs = t.ERMSpecs()
	}
	golds, err := goldens(ctx, opts, t)
	if err != nil {
		return nil, err
	}
	return &recoveryCampaign{
		opts: opts, t: t, ramLocations: ramLocations, stackLocations: stackLocations,
		specs: specs, golds: golds,
	}, nil
}

// severeRun executes one internal-model run, optionally with recovery
// wrappers and/or the hardened DIST_S deployed, and classifies the
// outcome.
func severeRun(opts Options, t sut.Target, g *golden, tgt fi.MemTarget, wrapSpecs []erm.Spec, hardened bool) (bool, int, error) {
	rig, err := t.Acquire(g.tc, t.CaseSeed(opts.Seed, g.tc), sut.Variant{Hardened: hardened})
	if err != nil {
		return false, 0, err
	}
	defer t.Release(rig)
	var wrappers *erm.Bank
	if len(wrapSpecs) > 0 {
		wrappers, err = sut.NewERMBank(rig, wrapSpecs)
		if err != nil {
			return false, 0, err
		}
	}
	pi, err := fi.NewPeriodicInjector(tgt, opts.PeriodicMs, opts.PeriodicMs, rig.Bus(), rig.Mem())
	if err != nil {
		return false, 0, err
	}
	rig.Sched().OnPreSlot(pi.Hook)
	rig.Mem().OnRead(pi.MemHook())

	done, err := rig.RunUntilDone(g.horizonMs + opts.GraceMs)
	if err != nil {
		return false, 0, err
	}
	recoveries := 0
	if wrappers != nil {
		recoveries = wrappers.TotalRecoveries()
	}
	return rig.Failed(done), recoveries, nil
}
