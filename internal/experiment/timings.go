package experiment

import "repro/internal/campaign"

// WriteCampaignTimings writes the rows an engine-level Collector
// observed — one per campaign the invocation ran — as
// BENCH_campaigns.json, annotated with the process-wide golden-cache
// traffic at write time. An empty path or a nil collector disables the
// report.
func WriteCampaignTimings(path string, seed int64, workers int, col *campaign.Collector) error {
	if col == nil {
		return nil
	}
	size, hits, misses := GoldenCacheStats()
	cache := campaign.CacheStats{Size: size, Hits: hits, Misses: misses}
	return campaign.WriteBench(path, seed, workers, col.Rows(), cache)
}
