package experiment

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// CampaignTiming is one row of the BENCH_campaigns.json report the
// campaign commands emit: how many injection runs a campaign executed,
// how long it took, and the resulting throughput.
type CampaignTiming struct {
	Campaign   string  `json:"campaign"`
	Runs       int     `json:"runs"`
	WallS      float64 `json:"wall_s"`
	RunsPerSec float64 `json:"runs_per_sec"`
}

// NewCampaignTiming builds one timing row from a campaign's run count
// and wall-clock duration.
func NewCampaignTiming(campaign string, runs int, wall time.Duration) CampaignTiming {
	t := CampaignTiming{
		Campaign: campaign,
		Runs:     runs,
		WallS:    wall.Seconds(),
	}
	if t.WallS > 0 {
		t.RunsPerSec = float64(runs) / t.WallS
	}
	return t
}

// benchReport is the BENCH_campaigns.json document.
type benchReport struct {
	Seed      int64            `json:"seed"`
	Workers   int              `json:"workers"`
	Campaigns []CampaignTiming `json:"campaigns"`
	// GoldenCache reports the process-wide reference-run reuse at write
	// time (cached runs, lookup hits, lookup misses).
	GoldenCache struct {
		Size   int   `json:"size"`
		Hits   int64 `json:"hits"`
		Misses int64 `json:"misses"`
	} `json:"golden_cache"`
}

// WriteCampaignTimings writes the timing rows (plus golden-cache
// statistics) as JSON to path. An empty path disables the report.
func WriteCampaignTimings(path string, seed int64, workers int, timings []CampaignTiming) error {
	if path == "" || len(timings) == 0 {
		return nil
	}
	rep := benchReport{Seed: seed, Workers: workers, Campaigns: timings}
	rep.GoldenCache.Size, rep.GoldenCache.Hits, rep.GoldenCache.Misses = GoldenCacheStats()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("experiment: writing campaign timings: %w", err)
	}
	return nil
}
