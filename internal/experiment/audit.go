package experiment

import (
	"context"
	"fmt"

	"repro/internal/fi"
	"repro/internal/sut"
	"repro/internal/trace"
)

// LivenessAuditResult summarizes a masked-class soundness audit of one
// target: how many memory targets the def/use profile classified masked
// and how many of those classifications were proved by actually running
// the injection the profile claims is unobservable.
type LivenessAuditResult struct {
	Target string
	Cases  int
	// RAMTargets and StackTargets count the enumerated (cell, bit)
	// memory targets per region; RAMMasked / StackMasked how many of
	// them the profiles classify masked, summed over cases.
	RAMTargets, StackTargets int
	RAMMasked, StackMasked   int
	// Proofs counts the injection runs executed as witnesses.
	Proofs int
	// Violations lists every masked classification whose witness run
	// diverged from the golden trace — each one a pruning unsoundness.
	Violations []string
}

// AuditLiveness proves the adaptive layer's def/use pruning sound on
// the options' target: for up to perClass masked RAM targets and
// perClass masked stack targets per test case, it executes the very
// injection the liveness profile prunes and requires the run to be
// indistinguishable from the golden run — same completion, same arrest
// time, and no first difference on any recorded signal. A violation
// means pruning would have silently dropped an observable error class.
func AuditLiveness(ctx context.Context, opts Options, perClass int) (*LivenessAuditResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if perClass < 1 {
		return nil, fmt.Errorf("experiment: perClass %d must be >= 1", perClass)
	}
	t, err := resolvedTarget(opts)
	if err != nil {
		return nil, err
	}
	golds, err := goldens(ctx, opts, t)
	if err != nil {
		return nil, err
	}

	res := &LivenessAuditResult{Target: t.Name(), Cases: len(opts.Cases)}
	for ci, g := range golds {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		prof, err := livenessProfile(opts, t, g, false)
		if err != nil {
			return nil, err
		}

		scratch, err := t.Acquire(g.tc, t.CaseSeed(opts.Seed, g.tc), sut.Variant{})
		if err != nil {
			return nil, err
		}
		var ram, stack []fi.MemTarget
		for _, tgt := range fi.EnumerateRAMTargets(scratch.System(), scratch.Mem()) {
			if tgt.Kind == fi.TargetRAMCell {
				ram = append(ram, tgt)
			}
		}
		stack = fi.EnumerateStackTargets(scratch.Mem())
		t.Release(scratch)

		res.RAMTargets = len(ram)
		res.StackTargets = len(stack)
		var maskedRAM, maskedStack []fi.MemTarget
		for _, tgt := range ram {
			if maskedTarget(prof, tgt) {
				maskedRAM = append(maskedRAM, tgt)
			}
		}
		for _, tgt := range stack {
			if maskedTarget(prof, tgt) {
				maskedStack = append(maskedStack, tgt)
			}
		}
		res.RAMMasked += len(maskedRAM)
		res.StackMasked += len(maskedStack)

		for _, class := range []struct {
			region string
			masked []fi.MemTarget
		}{{"ram", maskedRAM}, {"stack", maskedStack}} {
			region, masked := class.region, class.masked
			sample := masked
			if len(sample) > perClass {
				sample = fi.SampleTargets(masked, perClass, t.RunSeed(opts.Seed, "audit-"+region, ci))
			}
			for _, tgt := range sample {
				bad, err := maskedWitnessRun(opts, t, g, tgt)
				if err != nil {
					return nil, err
				}
				res.Proofs++
				for _, v := range bad {
					res.Violations = append(res.Violations,
						fmt.Sprintf("case %d %s cell %v bit %d: %s", g.tc.ID, region, tgt.Cell, tgt.Bit, v))
				}
			}
		}
	}
	return res, nil
}

// maskedWitnessRun executes the pruned injection — the same periodic
// run the internal campaign would have executed — while recording every
// signal, and reports each way the run observably diverged from the
// golden run (none, for a sound masked classification).
func maskedWitnessRun(opts Options, t sut.Target, g *golden, tgt fi.MemTarget) ([]string, error) {
	rig, err := t.Acquire(g.tc, t.CaseSeed(opts.Seed, g.tc), sut.Variant{})
	if err != nil {
		return nil, err
	}
	defer t.Release(rig)
	rec := trace.NewRecorder(rig.Bus(), t.AllSignals(), 1, opts.MaxRunMs)
	rig.Sched().OnPostSlot(rec.Hook)
	pi, err := fi.NewPeriodicInjector(tgt, opts.PeriodicMs, opts.PeriodicMs, rig.Bus(), rig.Mem())
	if err != nil {
		return nil, err
	}
	rig.Sched().OnPreSlot(pi.Hook)
	rig.Mem().OnRead(pi.MemHook())

	// Replicate the golden run's schedule exactly (runGolden): run to
	// completion within MaxRunMs, then the recording tail.
	done, err := rig.RunUntilDone(opts.MaxRunMs)
	if err != nil {
		return nil, err
	}
	var bad []string
	if !done {
		bad = append(bad, fmt.Sprintf("run did not complete within %d ms", opts.MaxRunMs))
		return bad, nil
	}
	if arrest := rig.Sched().NowMs(); arrest != g.arrestMs {
		bad = append(bad, fmt.Sprintf("completed at %d ms, golden at %d ms", arrest, g.arrestMs))
	}
	if err := rig.RunFor(opts.TailMs); err != nil {
		return nil, err
	}
	for sig, idx := range trace.Deviations(g.trace, rec.Trace()) {
		if idx != trace.NoDifference {
			bad = append(bad, fmt.Sprintf("signal %s first differs at slot %d", sig, idx))
		}
	}
	return bad, nil
}
