package experiment

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/campaign"
	"repro/internal/ea"
	"repro/internal/fi"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/sut"
)

// IntegrationPoint compares the two EA integration modes for one
// assertion: periodic bus sampling (our monitoring-task deployment)
// versus write-triggered checking (the paper's inline deployment).
type IntegrationPoint struct {
	// Sampled and WriteTriggered are detection coverages over the same
	// active PACNT error set, at the deployed step budget (16, sized for
	// sampling-period slot jitter).
	Sampled, WriteTriggered stats.Proportion
	// TightInline is write-triggered checking with the budget tightened
	// to the true per-write legitimate maximum (8 pulses) — possible
	// only inline, where scheduler jitter cannot stretch the check gap.
	TightInline stats.Proportion
	// TightInlineFalsePositives counts golden runs where the tight
	// inline assertion fired (it must stay zero for the tightening to
	// be admissible).
	TightInlineFalsePositives int
	// GoldenRuns and InjectedRuns are the fault-free and injected run
	// counts.
	GoldenRuns, InjectedRuns int
}

// integJob is one integration-study run: either the case's fault-free
// run or injection k.
type integJob struct {
	caseIdx, k int
	golden     bool
}

// integOutcome is one run's verdict under all three banks,
// wire-encodable for the subprocess dispatcher.
type integOutcome struct {
	Golden  bool `json:"golden"`
	Active  bool `json:"active"`
	Sampled bool `json:"sampled"`
	Inlined bool `json:"inlined"`
	TightOn bool `json:"tight_on"`
}

// integrationCampaign is the EA-integration study on the engine.
type integrationCampaign struct {
	campaign.JSONWire[integOutcome]
	opts       Options
	t          sut.Target
	perSignal  int
	golds      []*golden
	port       model.PortRef
	sig        *model.Signal
	ea4, tight ea.Spec
}

func (c *integrationCampaign) Name() string { return "integration" }

func (c *integrationCampaign) Plan() ([]integJob, error) {
	perCase := c.perSignal / len(c.opts.Cases)
	if perCase < 1 {
		perCase = 1
	}
	var plan []integJob
	for ci := range c.opts.Cases {
		plan = append(plan, integJob{caseIdx: ci, golden: true})
		for k := 0; k < perCase; k++ {
			plan = append(plan, integJob{caseIdx: ci, k: k})
		}
	}
	return plan, nil
}

func (c *integrationCampaign) Execute(_ context.Context, j integJob, _ int) (integOutcome, error) {
	g := c.golds[j.caseIdx]
	rig, err := c.t.Acquire(g.tc, c.t.CaseSeed(c.opts.Seed, g.tc), sut.Variant{})
	if err != nil {
		return integOutcome{}, err
	}
	defer c.t.Release(rig)
	sampledBank, err := ea.NewBank(rig.Bus(), c.t.ControlPeriodMs(), []ea.Spec{c.ea4})
	if err != nil {
		return integOutcome{}, err
	}
	rig.Sched().OnPostSlot(sampledBank.Hook)
	writeBank, err := ea.NewWriteBank(rig.Bus(), []ea.Spec{c.ea4})
	if err != nil {
		return integOutcome{}, err
	}
	rig.Sched().OnPreSlot(writeBank.Hook)
	rig.Bus().OnWrite(writeBank.WriteHook())
	tightBank, err := ea.NewWriteBank(rig.Bus(), []ea.Spec{c.tight})
	if err != nil {
		return integOutcome{}, err
	}
	rig.Sched().OnPreSlot(tightBank.Hook)
	rig.Bus().OnWrite(tightBank.WriteHook())

	active := true
	if !j.golden {
		rng := rand.New(rand.NewSource(c.t.RunSeed(c.opts.Seed, "integ", j.caseIdx*1_000_000+j.k)))
		flip := &fi.ReadFlip{
			Port:   c.port,
			Bit:    uint8(rng.Intn(int(c.sig.Type.Width))),
			FromMs: rng.Int63n(c.t.InjectWindow(g.arrestMs)),
		}
		inj := fi.NewInjector(flip)
		rig.Sched().OnPreSlot(inj.Hook)
		rig.Bus().OnRead(inj.ReadHook())
		if err := rig.RunFor(g.horizonMs); err != nil {
			return integOutcome{}, err
		}
		applied, at := flip.Applied()
		active = applied && at < g.arrestMs
	} else if err := rig.RunFor(g.horizonMs); err != nil {
		return integOutcome{}, err
	}
	return integOutcome{
		Golden:  j.golden,
		Active:  active,
		Sampled: sampledBank.Detected(),
		Inlined: writeBank.Detected(),
		TightOn: tightBank.Detected(),
	}, nil
}

func (c *integrationCampaign) Reduce(_ []integJob, results []integOutcome) (*IntegrationPoint, error) {
	var pt IntegrationPoint
	for _, out := range results {
		if out.Golden {
			pt.GoldenRuns++
			if out.TightOn {
				pt.TightInlineFalsePositives++
			}
			continue
		}
		pt.InjectedRuns++
		if !out.Active {
			continue
		}
		pt.Sampled.Add(out.Sampled)
		pt.WriteTriggered.Add(out.Inlined)
		pt.TightInline.Add(out.TightOn)
	}
	return &pt, nil
}

func (c *integrationCampaign) ShardKey(j integJob, _ int) uint64 {
	return shardKeyFor(c.opts, c.opts.Cases[j.caseIdx])
}

func (c *integrationCampaign) Describe(j integJob, index int) string {
	kind := "injected"
	if j.golden {
		kind = "golden"
	}
	return describeRun(c.t, c.opts, "integ", index, j.caseIdx) + " " + kind
}

// EAIntegrationStudy measures how much detection the sampling
// deployment loses to sub-period self-correcting transients, by running
// identical PACNT injections against a sampled and a write-triggered
// pulscnt assertion simultaneously. It quantifies the Table 4 deviation
// discussed in EXPERIMENTS.md (our 0.868 vs the paper's 0.975).
func EAIntegrationStudy(ctx context.Context, opts Options, perSignal int) (*IntegrationPoint, error) {
	c, err := newIntegrationCampaign(ctx, opts, perSignal)
	if err != nil {
		return nil, err
	}
	return campaign.Execute[integJob, integOutcome, *IntegrationPoint](ctx, c, opts.executor(), opts.Timings)
}

func newIntegrationCampaign(ctx context.Context, opts Options, perSignal int) (*integrationCampaign, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if perSignal < 1 {
		return nil, fmt.Errorf("experiment: perSignal %d must be >= 1", perSignal)
	}
	t, err := resolvedTarget(opts)
	if err != nil {
		return nil, err
	}
	golds, err := goldens(ctx, opts, t)
	if err != nil {
		return nil, err
	}
	port, sig, err := probePort(t)
	if err != nil {
		return nil, err
	}

	// The sampled/inline arms deploy the probe guard as published; the
	// tight arm halves its step budget to the per-write legitimate
	// maximum (for the arrestment target: EA4's 16 pulses per period
	// down to 8, the hardcoded pre-seam value).
	ea4 := t.Probe().Guard
	tight := ea4
	tight.Name += "i"
	if tight.Kind == ea.KindCounter {
		tight.MaxStep /= 2
	} else {
		tight.MaxUp /= 2
		tight.MaxDown /= 2
	}

	return &integrationCampaign{
		opts: opts, t: t, perSignal: perSignal, golds: golds,
		port: port, sig: sig, ea4: ea4, tight: tight,
	}, nil
}
