package experiment

import (
	"fmt"
	"math/rand"

	"repro/internal/ea"
	"repro/internal/fi"
	"repro/internal/stats"
	"repro/internal/target"
)

// IntegrationPoint compares the two EA integration modes for one
// assertion: periodic bus sampling (our monitoring-task deployment)
// versus write-triggered checking (the paper's inline deployment).
type IntegrationPoint struct {
	// Sampled and WriteTriggered are detection coverages over the same
	// active PACNT error set, at the deployed step budget (16, sized for
	// sampling-period slot jitter).
	Sampled, WriteTriggered stats.Proportion
	// TightInline is write-triggered checking with the budget tightened
	// to the true per-write legitimate maximum (8 pulses) — possible
	// only inline, where scheduler jitter cannot stretch the check gap.
	TightInline stats.Proportion
	// TightInlineFalsePositives counts golden runs where the tight
	// inline assertion fired (it must stay zero for the tightening to
	// be admissible).
	TightInlineFalsePositives int
	// GoldenRuns and InjectedRuns are the fault-free and injected run
	// counts.
	GoldenRuns, InjectedRuns int
}

// EAIntegrationStudy measures how much detection the sampling
// deployment loses to sub-period self-correcting transients, by running
// identical PACNT injections against a sampled and a write-triggered
// pulscnt assertion simultaneously. It quantifies the Table 4 deviation
// discussed in EXPERIMENTS.md (our 0.79 vs the paper's 0.975).
func EAIntegrationStudy(opts Options, perSignal int) (*IntegrationPoint, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if perSignal < 1 {
		return nil, fmt.Errorf("experiment: perSignal %d must be >= 1", perSignal)
	}
	golds, err := goldens(opts)
	if err != nil {
		return nil, err
	}
	sys := target.SharedSystem()
	consumers := sys.ConsumersOf(target.SigPACNT)
	if len(consumers) != 1 {
		return nil, fmt.Errorf("experiment: PACNT has %d consumers", len(consumers))
	}
	port := consumers[0]
	sig, _ := sys.Signal(target.SigPACNT)

	ea4 := func() ea.Spec {
		for _, s := range target.AllEASpecs() {
			if s.Name == target.EA4 {
				return s
			}
		}
		panic("EA4 spec missing")
	}()

	perCase := perSignal / len(opts.Cases)
	if perCase < 1 {
		perCase = 1
	}
	tight := ea4
	tight.Name = "EA4i"
	tight.MaxStep = 8

	type job struct {
		caseIdx, k int
		golden     bool
	}
	var plan []job
	for ci := range opts.Cases {
		plan = append(plan, job{caseIdx: ci, golden: true})
		for k := 0; k < perCase; k++ {
			plan = append(plan, job{caseIdx: ci, k: k})
		}
	}

	type outcome struct {
		golden                    bool
		active                    bool
		sampled, inlined, tightOn bool
		err                       error
	}
	results := make([]outcome, len(plan))
	parallelFor(len(plan), opts.Workers, func(i int) {
		j := plan[i]
		g := golds[j.caseIdx]
		rig, err := target.AcquireRig(g.tc.Config(caseSeed(opts, g.tc)))
		if err != nil {
			results[i] = outcome{err: err}
			return
		}
		defer target.ReleaseRig(rig)
		sampledBank, err := ea.NewBank(rig.Bus, target.ControlPeriodMs, []ea.Spec{ea4})
		if err != nil {
			results[i] = outcome{err: err}
			return
		}
		rig.Sched.OnPostSlot(sampledBank.Hook)
		writeBank, err := ea.NewWriteBank(rig.Bus, []ea.Spec{ea4})
		if err != nil {
			results[i] = outcome{err: err}
			return
		}
		rig.Sched.OnPreSlot(writeBank.Hook)
		rig.Bus.OnWrite(writeBank.WriteHook())
		tightBank, err := ea.NewWriteBank(rig.Bus, []ea.Spec{tight})
		if err != nil {
			results[i] = outcome{err: err}
			return
		}
		rig.Sched.OnPreSlot(tightBank.Hook)
		rig.Bus.OnWrite(tightBank.WriteHook())

		active := true
		if !j.golden {
			rng := rand.New(rand.NewSource(runSeed(opts, "integ", j.caseIdx*1_000_000+j.k)))
			flip := &fi.ReadFlip{
				Port:   port,
				Bit:    uint8(rng.Intn(int(sig.Type.Width))),
				FromMs: rng.Int63n(g.arrestMs),
			}
			inj := fi.NewInjector(flip)
			rig.Sched.OnPreSlot(inj.Hook)
			rig.Bus.OnRead(inj.ReadHook())
			if err := rig.RunFor(g.horizonMs); err != nil {
				results[i] = outcome{err: err}
				return
			}
			applied, at := flip.Applied()
			active = applied && at < g.arrestMs
		} else if err := rig.RunFor(g.horizonMs); err != nil {
			results[i] = outcome{err: err}
			return
		}
		results[i] = outcome{
			golden:  j.golden,
			active:  active,
			sampled: sampledBank.Detected(),
			inlined: writeBank.Detected(),
			tightOn: tightBank.Detected(),
		}
	})

	var pt IntegrationPoint
	for _, out := range results {
		if out.err != nil {
			return nil, out.err
		}
		if out.golden {
			pt.GoldenRuns++
			if out.tightOn {
				pt.TightInlineFalsePositives++
			}
			continue
		}
		pt.InjectedRuns++
		if !out.active {
			continue
		}
		pt.Sampled.Add(out.sampled)
		pt.WriteTriggered.Add(out.inlined)
		pt.TightInline.Add(out.tightOn)
	}
	return &pt, nil
}
