package experiment

import (
	"context"
	"testing"

	"repro/internal/model"
	"repro/internal/sut"
	"repro/internal/target"
)

// benchInjectionOpts is a single-case configuration so the benchmark
// isolates the per-run cost rather than campaign orchestration.
func benchInjectionOpts() Options {
	opts := DefaultOptions(1)
	opts.Cases = []sut.Case{{ID: 1, P1: 12000, P2: 65}}
	opts.Workers = 1
	return opts
}

// BenchmarkInjectionRun pins the cost of one permeability injection run —
// the unit the ~39 000-run full-size campaigns multiply. ReportAllocs
// makes allocation regressions on the inner loop visible in CI.
func BenchmarkInjectionRun(b *testing.B) {
	opts := benchInjectionOpts()
	t, err := resolvedTarget(opts)
	if err != nil {
		b.Fatal(err)
	}
	golds, err := goldens(context.Background(), opts, t)
	if err != nil {
		b.Fatal(err)
	}
	sys := target.SharedSystem()
	mod, ok := sys.Module(target.ModDistS)
	if !ok {
		b.Fatal("DIST_S missing")
	}
	port := model.PortRef{Module: mod.ID, Dir: model.DirIn, Index: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := permeabilityRun(opts, t, golds[0], mod, port, target.SigPACNT, i); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGoldenRun pins the cost of one fault-free reference run with
// the full 14-signal trace attached.
func BenchmarkGoldenRun(b *testing.B) {
	opts := benchInjectionOpts()
	t, err := resolvedTarget(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := runGolden(opts, t, opts.Cases[0]); err != nil {
			b.Fatal(err)
		}
	}
}
