package experiment

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/campaign"
	"repro/internal/fi"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/sut"
)

// Matrix error-model names: the paper's transient read corruption plus
// the extended menu (stuck-at memory lines, clustered multi-bit bursts,
// and scheduler timing/omission faults).
const (
	MatrixTransient = "transient"
	MatrixStuck     = "stuck"
	MatrixBurst     = "burst"
	MatrixDelay     = "delay"
	MatrixOmission  = "omission"
)

// MatrixErrorModels returns the full error-model menu of the placement
// robustness matrix, in report order.
func MatrixErrorModels() []string {
	return []string{MatrixTransient, MatrixStuck, MatrixBurst, MatrixDelay, MatrixOmission}
}

// MatrixCell is one target x error-model cell of the robustness matrix:
// how well each assertion placement (EH, PA, extended) detects that
// error model on that target.
type MatrixCell struct {
	Target string
	Model  string
	// Runs and Active count the cell's injection runs and how many
	// produced an error live before the run's natural horizon.
	Runs, Active int
	// PerSet maps placement set name -> detection coverage over active
	// errors.
	PerSet map[string]stats.Proportion
}

// MatrixResult is the placement-robustness matrix: every registered (or
// requested) target crossed with every error model.
type MatrixResult struct {
	Targets []string
	Models  []string
	// Cells is target-major, model-minor.
	Cells []MatrixCell
}

// Cell returns the named cell, or nil.
func (r *MatrixResult) Cell(target, errModel string) *MatrixCell {
	for i := range r.Cells {
		if r.Cells[i].Target == target && r.Cells[i].Model == errModel {
			return &r.Cells[i]
		}
	}
	return nil
}

// matrixJob is one matrix injection run.
type matrixJob struct {
	tIdx, mIdx, caseIdx, k int
}

// matrixOutcome is one run's verdict, wire-encodable for the subprocess
// dispatcher.
type matrixOutcome struct {
	Active     bool             `json:"active"`
	DetectedAt map[string]int64 `json:"detected_at,omitempty"`
}

// matrixCampaign crosses registered targets with the error-model menu
// on the engine. Each target runs its own default workload and horizon
// (derived per target, not from the caller's options), so cells compare
// placements under each system's natural operating conditions.
type matrixCampaign struct {
	campaign.JSONWire[matrixOutcome]
	perCell int
	models  []string
	names   []string
	targets []sut.Target
	topts   []Options // per-target derived options
	golds   [][]*golden
	ports   []model.PortRef
	sigs    []*model.Signal
}

func (c *matrixCampaign) Name() string { return "matrix" }

func (c *matrixCampaign) Plan() ([]matrixJob, error) {
	var plan []matrixJob
	for ti := range c.targets {
		perCase := c.perCell / len(c.topts[ti].Cases)
		if perCase < 1 {
			perCase = 1
		}
		for mi := range c.models {
			for ci := range c.topts[ti].Cases {
				for k := 0; k < perCase; k++ {
					plan = append(plan, matrixJob{tIdx: ti, mIdx: mi, caseIdx: ci, k: k})
				}
			}
		}
	}
	return plan, nil
}

func (c *matrixCampaign) Execute(_ context.Context, j matrixJob, index int) (matrixOutcome, error) {
	t := c.targets[j.tIdx]
	topts := c.topts[j.tIdx]
	g := c.golds[j.tIdx][j.caseIdx]
	rng := rand.New(rand.NewSource(t.RunSeed(topts.Seed, "matrix", index)))

	rig, err := t.Acquire(g.tc, t.CaseSeed(topts.Seed, g.tc), sut.Variant{})
	if err != nil {
		return matrixOutcome{}, err
	}
	defer t.Release(rig)
	bank, err := sut.NewBank(t, rig, t.EHSet())
	if err != nil {
		return matrixOutcome{}, err
	}
	rig.Sched().OnPostSlot(bank.Hook)

	window := t.InjectWindow(g.arrestMs)
	var applied func() (int, int64)
	switch c.models[j.mIdx] {
	case MatrixTransient:
		flip := &fi.ReadFlip{
			Port:   c.ports[j.tIdx],
			Bit:    pickBit(rng, rig.System(), c.sigs[j.tIdx].ID),
			FromMs: rng.Int63n(window),
		}
		inj := fi.NewInjector(flip)
		rig.Sched().OnPreSlot(inj.Hook)
		rig.Bus().OnRead(inj.ReadHook())
		applied = func() (int, int64) {
			ok, at := flip.Applied()
			if !ok {
				return 0, -1
			}
			return 1, at
		}
	case MatrixStuck:
		tgts := fi.EnumerateRAMTargets(rig.System(), rig.Mem())
		if len(tgts) == 0 {
			return matrixOutcome{}, fmt.Errorf("experiment: target %s has no RAM cells to stick", t.Name())
		}
		inj, err := fi.NewStuckAtInjector(fi.StuckAt{
			Target: tgts[rng.Intn(len(tgts))],
			Value:  uint8(rng.Intn(2)),
			FromMs: rng.Int63n(window),
		}, rig.Bus(), rig.Mem())
		if err != nil {
			return matrixOutcome{}, err
		}
		rig.Sched().OnPreSlot(inj.Hook)
		rig.Mem().OnRead(inj.MemHook())
		applied = inj.Applied
	case MatrixBurst:
		sig := c.sigs[j.tIdx]
		width := uint8(3)
		if sig.Type.Width < width {
			width = sig.Type.Width
		}
		inj, err := fi.NewBurstFlipInjector(fi.BurstFlip{
			Target: fi.MemTarget{
				Kind:   fi.TargetBusSignal,
				Signal: sig.ID,
				Bit:    uint8(rng.Intn(int(sig.Type.Width-width) + 1)),
			},
			Width:  width,
			FromMs: rng.Int63n(window),
		}, rig.Bus(), rig.Mem())
		if err != nil {
			return matrixOutcome{}, err
		}
		rig.Sched().OnPreSlot(inj.Hook)
		rig.Mem().OnRead(inj.MemHook())
		applied = inj.Applied
	case MatrixDelay, MatrixOmission:
		mode := fi.SlotDelay
		if c.models[j.mIdx] == MatrixOmission {
			mode = fi.SlotOmission
		}
		mods := rig.System().Modules()
		from := rng.Int63n(window)
		inj, err := fi.NewSlotFaultInjector(fi.SlotFault{
			Module: mods[rng.Intn(len(mods))].ID,
			Mode:   mode,
			FromMs: from,
			// A bounded executive outage: ten control periods.
			UntilMs: from + 10*t.ControlPeriodMs(),
		}, rig.System())
		if err != nil {
			return matrixOutcome{}, err
		}
		rig.Sched().OnStep(inj.Filter())
		applied = inj.Applied
	default:
		return matrixOutcome{}, fmt.Errorf("experiment: unknown matrix error model %q", c.models[j.mIdx])
	}

	if err := rig.RunFor(g.horizonMs); err != nil {
		return matrixOutcome{}, err
	}
	n, first := applied()
	active := n > 0 && first >= 0 && first < g.arrestMs
	return matrixOutcome{Active: active, DetectedAt: detectionTimes(bank)}, nil
}

func (c *matrixCampaign) Reduce(plan []matrixJob, results []matrixOutcome) (*MatrixResult, error) {
	res := &MatrixResult{Targets: c.names, Models: c.models}
	cellIdx := make(map[[2]int]int)
	for ti, name := range c.names {
		for mi, m := range c.models {
			cellIdx[[2]int{ti, mi}] = len(res.Cells)
			cell := MatrixCell{Target: name, Model: m, PerSet: make(map[string]stats.Proportion)}
			for set := range setMembers(c.targets[ti]) {
				cell.PerSet[set] = stats.Proportion{}
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	for i, j := range plan {
		out := results[i]
		cell := &res.Cells[cellIdx[[2]int{j.tIdx, j.mIdx}]]
		cell.Runs++
		if !out.Active {
			continue
		}
		cell.Active++
		for set, members := range setMembers(c.targets[j.tIdx]) {
			hit := false
			for _, ea := range members {
				if _, ok := out.DetectedAt[ea]; ok {
					hit = true
					break
				}
			}
			p := cell.PerSet[set]
			p.Add(hit)
			cell.PerSet[set] = p
		}
	}
	return res, nil
}

func (c *matrixCampaign) ShardKey(j matrixJob, _ int) uint64 {
	return shardKeyFor(c.topts[j.tIdx], c.topts[j.tIdx].Cases[j.caseIdx])
}

func (c *matrixCampaign) Describe(j matrixJob, index int) string {
	return describeRun(c.targets[j.tIdx], c.topts[j.tIdx], "matrix", index, j.caseIdx) +
		" target=" + c.names[j.tIdx] + " model=" + c.models[j.mIdx]
}

// PlacementMatrix runs perCell injections for every requested target
// crossed with every requested error model and reports detection
// coverage per placement set in each cell. Nil targetNames selects every
// registered target; nil models selects the full error-model menu. The
// caller's options contribute the seed and scheduling; each target's
// workload and horizons come from its own registry defaults.
func PlacementMatrix(ctx context.Context, opts Options, targetNames, models []string, perCell int) (*MatrixResult, error) {
	c, err := newMatrixCampaign(ctx, opts, targetNames, models, perCell)
	if err != nil {
		return nil, err
	}
	return campaign.Execute[matrixJob, matrixOutcome, *MatrixResult](ctx, c, opts.executor(), opts.Timings)
}

func newMatrixCampaign(ctx context.Context, opts Options, targetNames, models []string, perCell int) (*matrixCampaign, error) {
	if perCell < 1 {
		return nil, fmt.Errorf("experiment: perCell %d must be >= 1", perCell)
	}
	if targetNames == nil {
		targetNames = sut.Names()
	}
	if models == nil {
		models = MatrixErrorModels()
	}
	known := make(map[string]bool)
	for _, m := range MatrixErrorModels() {
		known[m] = true
	}
	for _, m := range models {
		if !known[m] {
			return nil, fmt.Errorf("experiment: unknown error model %q (available: %v)", m, MatrixErrorModels())
		}
	}
	c := &matrixCampaign{perCell: perCell, models: models, names: targetNames}
	for _, name := range targetNames {
		t, err := sut.Lookup(name)
		if err != nil {
			return nil, err
		}
		topts := opts
		topts.Target = t.Name()
		topts.Cases = t.DefaultCases()
		d := t.Defaults()
		topts.MaxRunMs = d.MaxRunMs
		topts.TailMs = d.TailMs
		topts.GraceMs = d.GraceMs
		topts.PeriodicMs = d.PeriodicMs
		if topts.Workers < 1 {
			topts.Workers = 1
		}
		if err := topts.Validate(); err != nil {
			return nil, err
		}
		golds, err := goldens(ctx, topts, t)
		if err != nil {
			return nil, err
		}
		port, sig, err := probePort(t)
		if err != nil {
			return nil, err
		}
		c.targets = append(c.targets, t)
		c.topts = append(c.topts, topts)
		c.golds = append(c.golds, golds)
		c.ports = append(c.ports, port)
		c.sigs = append(c.sigs, sig)
	}
	return c, nil
}
