package experiment

import (
	"context"
	"testing"

	"repro/internal/fi"
	"repro/internal/memmap"
	"repro/internal/model"
	"repro/internal/sut"
	"repro/internal/target"
)

func TestErrorModelSensitivitySmall(t *testing.T) {
	opts := smallOpts()
	res, err := ErrorModelSensitivity(context.Background(), opts, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 5 {
		t.Fatalf("models = %v, want 5", res.Models)
	}
	for _, m := range res.Models {
		sets := res.PerModel[m]
		eh := sets[SetEH].Estimate()
		pa := sets[SetPA].Estimate()
		if eh < 0 || eh > 1 || pa < 0 || pa > 1 {
			t.Errorf("%s: coverage outside [0,1]: EH %v PA %v", m, eh, pa)
		}
		if pa > eh+1e-9 {
			t.Errorf("%s: PA %v above EH %v", m, pa, eh)
		}
	}
	// Persistent models must be at least as detectable as the single
	// transient flip: a stuck line or a periodic flip keeps producing
	// anomalies.
	tr := res.PerModel["transient"][SetEH].Estimate()
	for _, harsh := range []string{"stuck-at-1", "intermittent"} {
		if got := res.PerModel[harsh][SetEH].Estimate(); got < tr {
			t.Errorf("%s coverage %v below transient %v", harsh, got, tr)
		}
	}
}

func TestErrorModelSensitivityRejectsBadArgs(t *testing.T) {
	if _, err := ErrorModelSensitivity(context.Background(), smallOpts(), 0); err == nil {
		t.Error("perModel 0 accepted")
	}
	bad := smallOpts()
	bad.Workers = 0
	if _, err := ErrorModelSensitivity(context.Background(), bad, 5); err == nil {
		t.Error("invalid options accepted")
	}
}

func TestRecoveryStudySmall(t *testing.T) {
	opts := smallOpts()
	res, err := RecoveryStudy(context.Background(), opts, 15, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantRuns := 15 * len(opts.Cases)
	for _, region := range []RecoveryRegion{res.RAM} {
		for _, arm := range []RecoveryArm{region.Baseline, region.Wrapped, region.Hardened} {
			if arm.Runs != wantRuns {
				t.Errorf("%s arm runs = %d, want %d", region.Region, arm.Runs, wantRuns)
			}
		}
	}
	// The baseline never recovers anything; only the wrapped arm does.
	if res.Total.Baseline.Recoveries != 0 {
		t.Errorf("baseline recorded %d recoveries", res.Total.Baseline.Recoveries)
	}
	if res.Total.Hardened.Recoveries != 0 {
		t.Errorf("hardened arm recorded %d wrapper recoveries", res.Total.Hardened.Recoveries)
	}
	if rate := res.Total.Baseline.FailureRate(); rate < 0 || rate > 1 {
		t.Errorf("failure rate %v outside [0,1]", rate)
	}
}

// TestHardenedDistSReducesDominantFailures pins the recovery finding:
// corrupting DIST_S's previous-counter sample drives arrest-liveness
// failures in the baseline, and the module-internal delta rejection
// eliminates most of them — while signal wrappers do not.
func TestHardenedDistSReducesDominantFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("medium campaign")
	}
	opts := smallOpts()
	st, err := resolvedTarget(opts)
	if err != nil {
		t.Fatal(err)
	}
	golds, err := goldens(context.Background(), opts, st)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := st.Acquire(opts.Cases[0], 1, sut.Variant{})
	if err != nil {
		t.Fatal(err)
	}
	var cell memmap.CellInfo
	found := false
	for _, c := range scratch.Mem().CellsIn(memmap.RegionRAM) {
		if c.Owner == string(target.ModDistS) && c.Name == "prevPACNT" {
			cell, found = c, true
		}
	}
	if !found {
		t.Fatal("prevPACNT cell not found")
	}
	base, hard := 0, 0
	for b := uint8(0); b < cell.Type.Width; b++ {
		tgt := fi.MemTarget{Kind: fi.TargetRAMCell, Cell: cell.ID, Bit: b}
		for gi := range golds {
			f1, _, err := severeRun(opts, st, golds[gi], tgt, nil, false)
			if err != nil {
				t.Fatal(err)
			}
			f2, _, err := severeRun(opts, st, golds[gi], tgt, nil, true)
			if err != nil {
				t.Fatal(err)
			}
			if f1 {
				base++
			}
			if f2 {
				hard++
			}
		}
	}
	if base < 10 {
		t.Fatalf("baseline failures = %d; prevPACNT no longer a dominant cause", base)
	}
	if hard*2 >= base {
		t.Errorf("hardened failures = %d of baseline %d; containment ineffective", hard, base)
	}
}

func TestHardenedGoldenRunsUnchanged(t *testing.T) {
	// The delta clamp must be invisible on fault-free runs: identical
	// arrest time and distance.
	run := func(hardened bool) (int64, float64) {
		cfg := target.DefaultConfig(12000, 65, 3)
		cfg.HardenedDistS = hardened
		rig, err := target.NewRig(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := rig.RunUntilArrested(30_000)
		if err != nil || !ok {
			t.Fatalf("arrest failed: %v", err)
		}
		return rig.Sched.NowMs(), rig.Plant.Distance()
	}
	t1, d1 := run(false)
	t2, d2 := run(true)
	if t1 != t2 || d1 != d2 {
		t.Errorf("hardening changed golden behaviour: (%d, %.3f) vs (%d, %.3f)", t1, d1, t2, d2)
	}
}

func TestWrappersSilentOnGoldenRuns(t *testing.T) {
	rig, err := target.NewRig(target.DefaultConfig(16000, 80, 2))
	if err != nil {
		t.Fatal(err)
	}
	bank, err := target.NewERMBank(rig, target.DefaultERMSpecs())
	if err != nil {
		t.Fatal(err)
	}
	ok, err := rig.RunUntilArrested(30_000)
	if err != nil || !ok {
		t.Fatalf("arrest failed: %v", err)
	}
	if bank.Recovered() {
		t.Errorf("wrappers fired on a fault-free run: %v", bank.RecoveredBy())
	}
}

func TestCoverageLatenciesNonNegative(t *testing.T) {
	opts := smallOpts()
	res, err := InputCoverage(context.Background(), opts, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	for set, lats := range res.All.SetLatenciesMs {
		if p := res.All.PerSet[set]; len(lats) != p.Successes {
			t.Errorf("%s: %d latencies for %d detections", set, len(lats), p.Successes)
		}
		for _, l := range lats {
			if l < 0 {
				t.Errorf("%s: negative latency %v", set, l)
			}
		}
	}
}

func TestSubsumptionCountsConsistent(t *testing.T) {
	opts := smallOpts()
	res, err := InputCoverage(context.Background(), opts, 24, nil)
	if err != nil {
		t.Fatal(err)
	}
	var pacnt *CoverageRow
	for i := range res.Rows {
		if res.Rows[i].Signal == target.SigPACNT {
			pacnt = &res.Rows[i]
		}
	}
	if pacnt == nil {
		t.Fatal("no PACNT row")
	}
	for a, pairs := range pacnt.PairDetections {
		// Diagonal equals the per-EA detection count.
		if got, want := pairs[a], pacnt.PerEA[a].Successes; got != want {
			t.Errorf("pair[%s][%s] = %d, want %d", a, a, got, want)
		}
		for b, n := range pairs {
			if n > pairs[a] {
				t.Errorf("pair[%s][%s] = %d exceeds diagonal %d", a, b, n, pairs[a])
			}
			if n != pacnt.PairDetections[b][a] {
				t.Errorf("pair matrix asymmetric: [%s][%s]=%d vs [%s][%s]=%d",
					a, b, n, b, a, pacnt.PairDetections[b][a])
			}
		}
	}
}

func TestEATightnessStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("medium campaign")
	}
	opts := smallOpts()
	steps := []model.Word{2, 8, 16, 64}
	points, err := EATightnessStudy(context.Background(), opts, 30, steps)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(steps) {
		t.Fatalf("points = %d, want %d", len(points), len(steps))
	}
	// Coverage must be monotone non-increasing in the step budget: a
	// looser assertion can only miss more.
	for i := 1; i < len(points); i++ {
		if points[i].Coverage.Estimate() > points[i-1].Coverage.Estimate()+1e-9 {
			t.Errorf("coverage rose with looser budget: step %d -> %.3f, step %d -> %.3f",
				points[i-1].MaxStep, points[i-1].Coverage.Estimate(),
				points[i].MaxStep, points[i].Coverage.Estimate())
		}
	}
	// The default budget (16) must be false-positive free; a budget
	// below the legitimate pulse rate (2 < 8 pulses per period at high
	// speed) must false-positive on fault-free runs.
	for _, pt := range points {
		switch pt.MaxStep {
		case 16, 64:
			if pt.FalsePositiveRuns != 0 {
				t.Errorf("step %d: %d false positives, want 0", pt.MaxStep, pt.FalsePositiveRuns)
			}
		case 2:
			if pt.FalsePositiveRuns == 0 {
				t.Error("step 2: no false positives despite impossible budget")
			}
		}
		if pt.GoldenRuns != len(opts.Cases) {
			t.Errorf("step %d: golden runs = %d", pt.MaxStep, pt.GoldenRuns)
		}
	}
}

func TestEATightnessStudyRejectsBadArgs(t *testing.T) {
	opts := smallOpts()
	if _, err := EATightnessStudy(context.Background(), opts, 0, []model.Word{8}); err == nil {
		t.Error("zero perStep accepted")
	}
	if _, err := EATightnessStudy(context.Background(), opts, 5, nil); err == nil {
		t.Error("no steps accepted")
	}
}

func TestEAIntegrationStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("medium campaign")
	}
	opts := smallOpts()
	pt, err := EAIntegrationStudy(context.Background(), opts, 60)
	if err != nil {
		t.Fatal(err)
	}
	// All three deployments see the same error set.
	if pt.Sampled.Trials != pt.WriteTriggered.Trials || pt.Sampled.Trials != pt.TightInline.Trials {
		t.Fatalf("trial counts differ: %d/%d/%d",
			pt.Sampled.Trials, pt.WriteTriggered.Trials, pt.TightInline.Trials)
	}
	// Inline checking sees every written value: it can only detect more
	// than sampling at the same budget; the tight budget more still.
	if pt.WriteTriggered.Successes < pt.Sampled.Successes {
		t.Errorf("inline %d below sampled %d", pt.WriteTriggered.Successes, pt.Sampled.Successes)
	}
	if pt.TightInline.Successes < pt.WriteTriggered.Successes {
		t.Errorf("tight inline %d below inline %d", pt.TightInline.Successes, pt.WriteTriggered.Successes)
	}
	// And the tightening must cost no false positives.
	if pt.TightInlineFalsePositives != 0 {
		t.Errorf("tight inline false positives = %d", pt.TightInlineFalsePositives)
	}
}

func TestEAIntegrationStudyRejectsBadArgs(t *testing.T) {
	if _, err := EAIntegrationStudy(context.Background(), smallOpts(), 0); err == nil {
		t.Error("zero perSignal accepted")
	}
}
