package experiment

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sut"
	"repro/internal/tank"
)

// tankOpts is a reduced tank campaign configuration (the re-homed
// configuration of the deleted bespoke tank campaign's tests).
func tankOpts(t *testing.T, seed int64) Options {
	t.Helper()
	opts, err := DefaultOptionsFor("tank", seed)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 2
	return opts
}

func TestTankCampaignSmall(t *testing.T) {
	opts := tankOpts(t, 1)
	opts.Cases = opts.Cases[:1]
	opts.MaxRunMs = 20_000
	res, err := EstimatePermeability(context.Background(), opts, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRuns != 8*6 { // 8 module input ports
		t.Errorf("runs = %d, want 48", res.TotalRuns)
	}
	for _, e := range tank.NewSystem().Edges() {
		v := res.Matrix.Get(e)
		if v < 0 || v > 1 {
			t.Errorf("edge %v = %v outside [0,1]", e, v)
		}
	}
}

func TestTankCampaignDeterministic(t *testing.T) {
	opts := tankOpts(t, 7)
	opts.Cases = opts.Cases[:1]
	opts.MaxRunMs = 15_000
	a, err := EstimatePermeability(context.Background(), opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Identical rerun, and a rerun on a different executor shape: the
	// matrix must be invariant to both.
	for _, workers := range []int{opts.Workers, 5} {
		opts.Workers = workers
		b, err := EstimatePermeability(context.Background(), opts, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range tank.NewSystem().Edges() {
			if a.Matrix.Get(e) != b.Matrix.Get(e) {
				t.Errorf("edge %v differs across identical campaigns (workers=%d)", e, workers)
			}
		}
	}
}

// TestTankPlacementTransfer reruns the deleted tank campaign's medium
// checks on the seam: the measured matrix realizes the paper's
// Section 8 multi-output points (impact divergence, Eq. 4 criticality)
// and the placement rules transfer unchanged.
func TestTankPlacementTransfer(t *testing.T) {
	if testing.Short() {
		t.Skip("medium campaign")
	}
	opts := tankOpts(t, 1)
	opts.Cases = opts.Cases[:2]
	opts.MaxRunMs = 30_000
	res, err := EstimatePermeability(context.Background(), opts, 24)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("criticality-divergence", func(t *testing.T) {
		ranks, err := tank.RankCriticality(res.Matrix)
		if err != nil {
			t.Fatal(err)
		}
		byName := map[model.SignalID]tank.CriticalityReport{}
		for _, r := range ranks {
			byName[r.Signal] = r
		}
		// cmd and inflow reach only the valve; trend and level reach
		// both outputs — the runtime realization of Section 8.
		if r := byName[tank.SigCmd]; r.ImpactAlarm != 0 || r.ImpactValve <= 0 {
			t.Errorf("cmd impacts = %+v, want valve-only", r)
		}
		if r := byName[tank.SigInflow]; r.ImpactAlarm != 0 {
			t.Errorf("inflow impacts alarm: %+v", r)
		}
		if r := byName[tank.SigTrend]; r.ImpactAlarm <= 0 || r.ImpactValve <= 0 {
			t.Errorf("trend impacts = %+v, want both outputs", r)
		}
		// Criticality must order consistently with Eq. 4 given the
		// declared output criticalities (valve 1.0, alarm 0.25).
		for _, r := range ranks {
			want := 1 - (1-1.0*r.ImpactValve)*(1-0.25*r.ImpactAlarm)
			if diff := r.Criticality - want; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%s criticality %v, want %v", r.Signal, r.Criticality, want)
			}
		}
	})

	t.Run("pa-selection", func(t *testing.T) {
		pr, err := core.BuildProfile(res.Matrix)
		if err != nil {
			t.Fatal(err)
		}
		sel := core.SelectPA(pr, core.DefaultThresholds())
		picked := map[model.SignalID]bool{}
		for _, s := range sel.Selected() {
			picked[s] = true
		}
		// The placement rules transfer: guarded signals must be
		// internal, non-boolean, exposed and consequential.
		for s := range picked {
			sig, _ := tank.NewSystem().Signal(s)
			if sig.Kind != model.KindIntermediate {
				t.Errorf("PA selected boundary signal %s", s)
			}
		}
		if len(picked) == 0 {
			t.Error("PA selected nothing on the tank target")
		}
	})
}

// TestCampaignsRunOnAllTargets drives every campaign entry point
// against all three registered library targets at tiny sizes — the
// seam's generality contract: nothing in any campaign is
// arrestment-specific.
func TestCampaignsRunOnAllTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 7 campaigns x 3 targets")
	}
	ctx := context.Background()
	for _, name := range []string{"arrestment", "tank", "multiout"} {
		name := name
		t.Run(name, func(t *testing.T) {
			opts, err := DefaultOptionsFor(name, 3)
			if err != nil {
				t.Fatal(err)
			}
			opts.Cases = opts.Cases[:1]
			opts.Workers = 2
			if opts.MaxRunMs > 15_000 {
				opts.MaxRunMs = 15_000
			}

			if res, err := EstimatePermeability(ctx, opts, 2); err != nil {
				t.Errorf("permeability: %v", err)
			} else if res.TotalRuns == 0 {
				t.Error("permeability: no runs")
			}
			if res, err := InputCoverage(ctx, opts, 2, nil); err != nil {
				t.Errorf("input coverage: %v", err)
			} else if res.All.Injected == 0 {
				t.Error("input coverage: no runs")
			}
			if res, err := InternalCoverage(ctx, opts, 2, 2); err != nil {
				t.Errorf("internal coverage: %v", err)
			} else if res.RAM.Runs == 0 {
				t.Error("internal coverage: no RAM runs")
			}
			if res, err := ErrorModelSensitivity(ctx, opts, 2); err != nil {
				t.Errorf("model sensitivity: %v", err)
			} else if len(res.Models) == 0 {
				t.Error("model sensitivity: no models")
			}
			if res, err := RecoveryStudy(ctx, opts, 1, 1, nil); err != nil {
				t.Errorf("recovery: %v", err)
			} else if res.Total.Baseline.Runs == 0 {
				t.Error("recovery: no runs")
			}
			if res, err := EATightnessStudy(ctx, opts, 2, []model.Word{8, 16}); err != nil {
				t.Errorf("tightness: %v", err)
			} else if len(res) != 2 {
				t.Errorf("tightness: %d points, want 2", len(res))
			}
			if res, err := EAIntegrationStudy(ctx, opts, 2); err != nil {
				t.Errorf("integration: %v", err)
			} else if res.InjectedRuns == 0 {
				t.Error("integration: no runs")
			}
		})
	}
}

// TestPlacementMatrixSmoke crosses the two non-default library targets
// with the full error-model menu and checks shape, accounting and
// executor invariance of the robustness matrix.
func TestPlacementMatrixSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix campaign")
	}
	opts := DefaultOptions(5)
	opts.Workers = 2
	names := []string{"tank", "multiout"}
	res, err := PlacementMatrix(context.Background(), opts, names, nil, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(names)*len(MatrixErrorModels()) {
		t.Fatalf("cells = %d, want %d", len(res.Cells), len(names)*len(MatrixErrorModels()))
	}
	for _, cell := range res.Cells {
		if cell.Runs == 0 {
			t.Errorf("cell %s/%s: no runs", cell.Target, cell.Model)
		}
		if cell.Active > cell.Runs {
			t.Errorf("cell %s/%s: active %d > runs %d", cell.Target, cell.Model, cell.Active, cell.Runs)
		}
		for set, p := range cell.PerSet {
			if p.Trials != cell.Active {
				t.Errorf("cell %s/%s set %s: trials %d, want active %d",
					cell.Target, cell.Model, set, p.Trials, cell.Active)
			}
		}
	}
	if cell := res.Cell("tank", MatrixTransient); cell == nil {
		t.Error("Cell lookup failed for tank/transient")
	}

	opts.Workers = 5
	again, err := PlacementMatrix(context.Background(), opts, names, nil, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i, cell := range res.Cells {
		b := again.Cells[i]
		if cell.Runs != b.Runs || cell.Active != b.Active {
			t.Errorf("cell %s/%s: accounting differs across executors", cell.Target, cell.Model)
		}
		for set, p := range cell.PerSet {
			if q := b.PerSet[set]; p != q {
				t.Errorf("cell %s/%s set %s: %+v vs %+v across executors", cell.Target, cell.Model, set, p, q)
			}
		}
	}
}

// TestUnknownTargetAndModelValidation pins the fail-before-work
// contract of the name-shaped knobs.
func TestUnknownTargetAndModelValidation(t *testing.T) {
	opts := DefaultOptions(1)
	opts.Target = "no-such-system"
	if _, err := EstimatePermeability(context.Background(), opts, 1); err == nil {
		t.Error("unknown target accepted")
	}
	if _, err := DefaultOptionsFor("also-missing", 1); err == nil {
		t.Error("DefaultOptionsFor accepted an unknown target")
	}
	good := DefaultOptions(1)
	if _, err := PlacementMatrix(context.Background(), good, []string{"arrestment"}, []string{"cosmic-ray"}, 1); err == nil {
		t.Error("unknown error model accepted")
	}
	if _, err := PlacementMatrix(context.Background(), good, []string{"ghost"}, nil, 1); err == nil {
		t.Error("unknown matrix target accepted")
	}
}

// TestAuditLivenessOnArrestment exercises the pruning-soundness audit
// where masked classes actually exist: the arrestment memmap has dead
// and write-before-read cells, every one of which must be proved
// unobservable by its witness run.
func TestAuditLivenessOnArrestment(t *testing.T) {
	opts := DefaultOptions(1)
	opts.Cases = opts.Cases[:2]
	opts.Workers = 2
	res, err := AuditLiveness(context.Background(), opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.RAMMasked == 0 {
		t.Error("arrestment profile found no masked RAM classes; the audit proved nothing")
	}
	if res.Proofs == 0 {
		t.Error("no witness runs executed")
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
}

// TestAuditLivenessOnLibraryTargets runs the audit on the non-default
// targets the adaptive layer may prune: any masked classification they
// ever produce must be witness-proved sound.
func TestAuditLivenessOnLibraryTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("profiles every case")
	}
	for _, name := range []string{"tank", "multiout"} {
		opts, err := DefaultOptionsFor(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		opts.Cases = opts.Cases[:1]
		opts.Workers = 1
		res, err := AuditLiveness(context.Background(), opts, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range res.Violations {
			t.Errorf("%s violation: %s", name, v)
		}
		if res.RAMTargets == 0 || res.StackTargets == 0 {
			t.Errorf("%s: empty memory map (ram %d, stack %d)", name, res.RAMTargets, res.StackTargets)
		}
	}
}

// TestRegistryListsLibraryTargets pins the registry contents and the
// helpful-error contract of Lookup.
func TestRegistryListsLibraryTargets(t *testing.T) {
	names := sut.Names()
	want := map[string]bool{"arrestment": true, "tank": true, "multiout": true}
	for n := range want {
		found := false
		for _, got := range names {
			if got == n {
				found = true
			}
		}
		if !found {
			t.Errorf("registry is missing %q (have %v)", n, names)
		}
	}
	if _, err := sut.Lookup(""); err != nil {
		t.Errorf("empty lookup must resolve the default target: %v", err)
	}
}
