package experiment

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/campaign/dispatch"
)

// startTestAgents runs count in-process networked worker agents on the
// real experiment LookupFactory (the one cmd/inject -worker-listen
// uses) and returns their dial addresses. The campaign spec reaches
// each agent over the wire at handshake, exactly as in a two-terminal
// deployment.
func startTestAgents(t *testing.T, count int) []string {
	t.Helper()
	addrs := make([]string, count)
	for i := range addrs {
		ctx, cancel := context.WithCancel(context.Background())
		addrCh := make(chan net.Addr, 1)
		done := make(chan struct{})
		go func() {
			defer close(done)
			dispatch.ServeNet(ctx, "127.0.0.1:0", LookupFromSpec, dispatch.NetServeOptions{
				Ready: func(a net.Addr) { addrCh <- a },
			})
		}()
		t.Cleanup(func() {
			cancel()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Error("worker agent did not shut down")
			}
		})
		select {
		case a := <-addrCh:
			addrs[i] = a.String()
		case <-time.After(5 * time.Second):
			t.Fatal("worker agent did not start")
		}
	}
	return addrs
}

// fleetDispatchOpts attaches a fleet coordinator to opts, shipping the
// encoded worker spec at handshake. No subprocess Command is set, so a
// dead fleet would degrade straight to in-process execution — which
// would still pass the byte-identity checks, hence the log assertions
// where liveness matters.
func fleetDispatchOpts(t *testing.T, opts Options, spec WorkerSpec, addrs []string, log *bytes.Buffer) Options {
	t.Helper()
	spec.Options = opts
	specJSON, err := spec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	opts.Dispatch = &DispatchConfig{
		Fleet:        addrs,
		Spec:         specJSON,
		Heartbeat:    200 * time.Millisecond,
		ShardTimeout: 60 * time.Second,
		Log:          log,
	}
	return opts
}

// TestFleetPermeabilityMatchesSerial pins the experiment-level fleet
// determinism claim on the paper's Table 1 campaign: permeability
// estimated across two networked worker agents is byte-identical to
// the serial run, with the adaptive early-stopping rounds riding the
// per-round fleet handshake.
func TestFleetPermeabilityMatchesSerial(t *testing.T) {
	const perInput = 6
	for _, adaptive := range []bool{false, true} {
		name := "exact"
		if adaptive {
			name = "adaptive"
		}
		ClearGoldenCache()
		serialOpts := determinismOpts(1)
		serialOpts.Adaptive = adaptive
		want, err := EstimatePermeability(context.Background(), serialOpts, perInput)
		if err != nil {
			t.Fatalf("%s serial baseline: %v", name, err)
		}

		ClearGoldenCache()
		addrs := startTestAgents(t, 2)
		var log bytes.Buffer
		opts := determinismOpts(2)
		opts.Adaptive = adaptive
		opts = fleetDispatchOpts(t, opts, WorkerSpec{PerInput: perInput}, addrs, &log)
		got, err := EstimatePermeability(context.Background(), opts, perInput)
		if err != nil {
			t.Fatalf("%s fleet campaign: %v\nlog:\n%s", name, err, log.String())
		}
		if g, w := permeabilityFingerprint(t, got), permeabilityFingerprint(t, want); g != w {
			t.Errorf("%s: fleet permeability diverged from serial\n--- serial ---\n%s\n--- fleet ---\n%s", name, w, g)
		}
		if !bytes.Contains(log.Bytes(), []byte("joined")) {
			t.Errorf("%s: no worker ever joined; the fleet path was not exercised:\n%s", name, log.String())
		}
		if bytes.Contains(log.Bytes(), []byte("degrading")) {
			t.Errorf("%s: the campaign degraded instead of using the fleet:\n%s", name, log.String())
		}
	}
}

// TestFleetInputCoverageOnTankMatchesSerial pins the same claim on a
// second campaign and a second target: Table 4 input coverage on the
// tank system, dispatched across a fleet, byte-identical to serial.
func TestFleetInputCoverageOnTankMatchesSerial(t *testing.T) {
	const perSignal = 4
	serialOpts := tankOpts(t, 5)
	serialOpts.Workers = 1
	serialOpts.Cases = serialOpts.Cases[:1]
	ClearGoldenCache()
	want, err := InputCoverage(context.Background(), serialOpts, perSignal, nil)
	if err != nil {
		t.Fatalf("serial baseline: %v", err)
	}

	ClearGoldenCache()
	addrs := startTestAgents(t, 2)
	var log bytes.Buffer
	opts := tankOpts(t, 5)
	opts.Cases = opts.Cases[:1]
	opts = fleetDispatchOpts(t, opts, WorkerSpec{PerSignal: perSignal}, addrs, &log)
	got, err := InputCoverage(context.Background(), opts, perSignal, nil)
	if err != nil {
		t.Fatalf("fleet campaign: %v\nlog:\n%s", err, log.String())
	}
	if g, w := coverageFingerprint(t, got), coverageFingerprint(t, want); g != w {
		t.Errorf("fleet tank coverage diverged from serial\n--- serial ---\n%s\n--- fleet ---\n%s", w, g)
	}
	if !bytes.Contains(log.Bytes(), []byte("joined")) {
		t.Errorf("no worker ever joined; the fleet path was not exercised:\n%s", log.String())
	}
	if bytes.Contains(log.Bytes(), []byte("degrading")) {
		t.Errorf("the campaign degraded instead of using the fleet:\n%s", log.String())
	}
}

// TestValidateFleetFlags pins the CLI flag validation: bad
// combinations and malformed addresses fail before any campaign work.
func TestValidateFleetFlags(t *testing.T) {
	cases := []struct {
		name                                            string
		fleet, fleetListen, workerListen, workerConnect string
		heartbeat                                       time.Duration
		workerShard                                     bool
		wantErr                                         bool
	}{
		{name: "all off"},
		{name: "fleet ok", fleet: "127.0.0.1:9000,127.0.0.1:9001"},
		{name: "fleet listen ok", fleetListen: "127.0.0.1:9000"},
		{name: "agent listen ok", workerListen: "127.0.0.1:9000"},
		{name: "agent connect ok", workerConnect: "127.0.0.1:9000"},
		{name: "heartbeat with fleet ok", fleet: "127.0.0.1:9000", heartbeat: time.Second},
		{name: "listen and connect", workerListen: "a:1", workerConnect: "b:2", wantErr: true},
		{name: "agent with coordinator", fleet: "127.0.0.1:9000", workerListen: "a:1", wantErr: true},
		{name: "agent with worker-shard", workerConnect: "a:1", workerShard: true, wantErr: true},
		{name: "fleet with worker-shard", fleet: "127.0.0.1:9000", workerShard: true, wantErr: true},
		{name: "heartbeat without fleet", heartbeat: time.Second, wantErr: true},
		{name: "malformed fleet addr", fleet: "no-port", wantErr: true},
		{name: "malformed fleet-listen", fleetListen: "no-port", wantErr: true},
		{name: "malformed worker-listen", workerListen: "no-port", wantErr: true},
		{name: "malformed worker-connect", workerConnect: "no-port", wantErr: true},
	}
	for _, tc := range cases {
		err := ValidateFleetFlags(tc.fleet, tc.fleetListen, tc.workerListen, tc.workerConnect, tc.heartbeat, tc.workerShard)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: err = %v, wantErr = %v", tc.name, err, tc.wantErr)
		}
	}
}

// TestParseFleet pins the -fleet list parser.
func TestParseFleet(t *testing.T) {
	addrs, err := ParseFleet(" 127.0.0.1:9000, host:9001 ,,")
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 2 || addrs[0] != "127.0.0.1:9000" || addrs[1] != "host:9001" {
		t.Errorf("addrs = %v", addrs)
	}
	if _, err := ParseFleet("missing-port"); err == nil {
		t.Error("malformed address accepted")
	}
	if addrs, err := ParseFleet(""); err != nil || addrs != nil {
		t.Errorf("empty flag: addrs=%v err=%v", addrs, err)
	}
}
