package experiment

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/campaign"
	"repro/internal/ea"
	"repro/internal/fi"
	"repro/internal/memmap"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/sut"
)

// EA set names used across coverage results.
const (
	SetEH       = "EH"
	SetPA       = "PA"
	SetExtended = "extended"
)

// setMembers resolves a set name to the target's assertion names.
func setMembers(t sut.Target) map[string][]string {
	return map[string][]string{
		SetEH:       t.EHSet(),
		SetPA:       t.PASet(),
		SetExtended: t.ExtendedSet(),
	}
}

// CoverageRow is the Table 4 accounting for errors injected into one
// system input signal.
type CoverageRow struct {
	Signal model.SignalID
	// Injected counts all runs; Active the errors "injected before the
	// arrestment ... was completed" (the paper's n_err).
	Injected, Active int
	// PerEA is the detection coverage of each individual assertion over
	// active errors.
	PerEA map[string]stats.Proportion
	// PerSet is the combined coverage of each assertion set.
	PerSet map[string]stats.Proportion
	// PairDetections counts, for each ordered assertion pair (a, b),
	// the active runs detected by both — the raw material for the
	// subsumption analysis behind the paper's remark that every EA1,
	// EA2 or EA7 detection was also an EA4 detection.
	PairDetections map[string]map[string]int
	// SetLatenciesMs holds, per assertion set, the detection latency of
	// every detected run: time from the injected corruption to the
	// set's first firing assertion.
	SetLatenciesMs map[string][]float64
}

// InputCoverageResult is the measured Table 4.
type InputCoverageResult struct {
	Rows []CoverageRow
	// All aggregates across all injected signals (the paper's All row).
	All CoverageRow
}

// covJob is one input-model injection run.
type covJob struct {
	sig     model.SignalID
	port    model.PortRef
	caseIdx int
}

// covOutcome is one input-model run's detections, wire-encodable for
// the subprocess dispatcher.
type covOutcome struct {
	Active     bool             `json:"active"`
	InjectedAt int64            `json:"injected_at"`
	DetectedAt map[string]int64 `json:"detected_at,omitempty"`
}

// inputCoverageCampaign is the Table 4 campaign on the engine.
type inputCoverageCampaign struct {
	campaign.JSONWire[covOutcome]
	opts      Options
	t         sut.Target
	perSignal int
	signals   []model.SignalID
	golds     []*golden
	sys       *model.System
}

func (c *inputCoverageCampaign) Name() string { return "input-coverage" }

func (c *inputCoverageCampaign) Plan() ([]covJob, error) {
	perCase := c.perSignal / len(c.opts.Cases)
	if perCase < 1 {
		perCase = 1
	}
	var plan []covJob
	for _, sig := range c.signals {
		consumers := c.sys.ConsumersOf(sig)
		if len(consumers) != 1 {
			return nil, fmt.Errorf("experiment: system input %s has %d consumers, want 1", sig, len(consumers))
		}
		for ci := range c.opts.Cases {
			for k := 0; k < perCase; k++ {
				plan = append(plan, covJob{sig: sig, port: consumers[0], caseIdx: ci})
			}
		}
	}
	return plan, nil
}

func (c *inputCoverageCampaign) Execute(_ context.Context, j covJob, index int) (covOutcome, error) {
	active, injectedAt, detected, err := coverageRun(c.opts, c.t, c.golds[j.caseIdx], j.port, j.sig, index)
	if err != nil {
		return covOutcome{}, err
	}
	return covOutcome{Active: active, InjectedAt: injectedAt, DetectedAt: detected}, nil
}

func (c *inputCoverageCampaign) Reduce(plan []covJob, results []covOutcome) (*InputCoverageResult, error) {
	rows := make(map[model.SignalID]*CoverageRow, len(c.signals))
	for _, sig := range c.signals {
		rows[sig] = newCoverageRow(c.t, sig)
	}
	all := newCoverageRow(c.t, "All")
	for i, j := range plan {
		out := results[i]
		rows[j.sig].accumulate(c.t, out.Active, out.InjectedAt, out.DetectedAt)
		all.accumulate(c.t, out.Active, out.InjectedAt, out.DetectedAt)
	}
	res := &InputCoverageResult{All: *all}
	for _, sig := range c.signals {
		res.Rows = append(res.Rows, *rows[sig])
	}
	return res, nil
}

func (c *inputCoverageCampaign) ShardKey(j covJob, _ int) uint64 {
	return shardKeyFor(c.opts, c.opts.Cases[j.caseIdx])
}

func (c *inputCoverageCampaign) Describe(j covJob, index int) string {
	return describeRun(c.t, c.opts, "cov", index, j.caseIdx) + " signal=" + string(j.sig)
}

// InputCoverage runs the Section 6.2 campaign: errors enter "via the
// system inputs (e.g., by noisy and/or faulty sensors)" — single
// transient bit-flips observed at the consuming module's read of each
// system input — and every EA's detections are recorded. perSignal is
// the number of injections per input signal across all cases (2000 in
// the paper). Signals defaults to the target's four system inputs when
// nil.
func InputCoverage(ctx context.Context, opts Options, perSignal int, signals []model.SignalID) (*InputCoverageResult, error) {
	c, err := newInputCoverageCampaign(ctx, opts, perSignal, signals)
	if err != nil {
		return nil, err
	}
	return campaign.Execute[covJob, covOutcome, *InputCoverageResult](ctx, c, opts.executor(), opts.Timings)
}

func newInputCoverageCampaign(ctx context.Context, opts Options, perSignal int, signals []model.SignalID) (*inputCoverageCampaign, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if perSignal < 1 {
		return nil, fmt.Errorf("experiment: perSignal %d must be >= 1", perSignal)
	}
	t, err := resolvedTarget(opts)
	if err != nil {
		return nil, err
	}
	if signals == nil {
		signals = t.System().SystemInputs()
	}
	golds, err := goldens(ctx, opts, t)
	if err != nil {
		return nil, err
	}
	return &inputCoverageCampaign{
		opts: opts, t: t, perSignal: perSignal, signals: signals,
		golds: golds, sys: t.System(),
	}, nil
}

func newCoverageRow(t sut.Target, sig model.SignalID) *CoverageRow {
	r := &CoverageRow{
		Signal:         sig,
		PerEA:          make(map[string]stats.Proportion),
		PerSet:         make(map[string]stats.Proportion),
		PairDetections: make(map[string]map[string]int),
		SetLatenciesMs: make(map[string][]float64),
	}
	for _, s := range t.AllEASpecs() {
		r.PerEA[s.Name] = stats.Proportion{}
		r.PairDetections[s.Name] = make(map[string]int)
	}
	for name := range setMembers(t) {
		r.PerSet[name] = stats.Proportion{}
	}
	return r
}

// accumulate folds one run into the row. detectedAt maps each fired
// assertion to its first detection time; injectedAt is when the
// corruption was observed.
func (r *CoverageRow) accumulate(t sut.Target, active bool, injectedAt int64, detectedAt map[string]int64) {
	r.Injected++
	if !active {
		return
	}
	r.Active++
	for ea, p := range r.PerEA {
		_, hit := detectedAt[ea]
		p.Add(hit)
		r.PerEA[ea] = p
	}
	for a := range detectedAt {
		for b := range detectedAt {
			r.PairDetections[a][b]++
		}
	}
	for set, members := range setMembers(t) {
		first := int64(-1)
		for _, ea := range members {
			if at, ok := detectedAt[ea]; ok && (first < 0 || at < first) {
				first = at
			}
		}
		p := r.PerSet[set]
		p.Add(first >= 0)
		r.PerSet[set] = p
		if first >= 0 {
			lat := first - injectedAt
			if lat < 0 {
				lat = 0
			}
			r.SetLatenciesMs[set] = append(r.SetLatenciesMs[set], float64(lat))
		}
	}
}

// coverageRun executes one input-model injection run with the full EA
// bank deployed and reports when the corruption was observed and which
// assertions fired, with their first detection times.
func coverageRun(opts Options, t sut.Target, g *golden, port model.PortRef, sig model.SignalID, index int) (bool, int64, map[string]int64, error) {
	rng := rand.New(rand.NewSource(t.RunSeed(opts.Seed, "cov", index)))

	rig, err := t.Acquire(g.tc, t.CaseSeed(opts.Seed, g.tc), sut.Variant{})
	if err != nil {
		return false, 0, nil, err
	}
	defer t.Release(rig)
	bank, err := sut.NewBank(t, rig, t.EHSet())
	if err != nil {
		return false, 0, nil, err
	}
	rig.Sched().OnPostSlot(bank.Hook)

	flip := &fi.ReadFlip{
		Port:   port,
		Bit:    pickBit(rng, rig.System(), sig),
		FromMs: rng.Int63n(t.InjectWindow(g.arrestMs)),
	}
	inj := fi.NewInjector(flip)
	rig.Sched().OnPreSlot(inj.Hook)
	rig.Bus().OnRead(inj.ReadHook())

	if err := rig.RunFor(g.horizonMs); err != nil {
		return false, 0, nil, err
	}

	applied, at := flip.Applied()
	active := applied && at < g.arrestMs
	return active, at, detectionTimes(bank), nil
}

// detectionTimes extracts each fired assertion's first detection time.
func detectionTimes(bank *ea.Bank) map[string]int64 {
	out := make(map[string]int64)
	for _, a := range bank.Assertions() {
		if at := a.FirstDetectionMs(); at >= 0 {
			out[a.Spec().Name] = at
		}
	}
	return out
}

// SetCoverage is one bar group of Figure 3: total coverage, coverage
// over failed runs, and coverage over non-failed runs.
type SetCoverage struct {
	Tot, Fail, NoFail stats.Proportion
}

// RegionCoverage aggregates one memory region of the internal error
// model.
type RegionCoverage struct {
	Region string
	PerSet map[string]SetCoverage
	// SetLatenciesMs holds, per set, the latency from the first
	// injected corruption to the set's first detection, for every
	// detected run.
	SetLatenciesMs map[string][]float64
	// Runs and Failures account for campaign volume.
	Runs, Failures int
}

// InternalCoverageResult is the measured Figure 3.
type InternalCoverageResult struct {
	RAM, Stack, Total RegionCoverage
	// RAMLocations and StackLocations are the sampled location counts.
	RAMLocations, StackLocations int
	// PlannedRuns and ExecutedRuns account for adaptive savings: the
	// exact grid size the campaign stands for versus the injections that
	// actually ran (equal for exact campaigns).
	PlannedRuns, ExecutedRuns int
}

// memJob is one internal-model injection run: periodic flips of one
// memory target during one test case. weight is the def/use equivalence
// class size the run stands for (0 and 1 both mean just itself): a
// pruned plan executes one representative of each provably-masked class
// and the reducer credits the outcome weight times.
type memJob struct {
	tgt     fi.MemTarget
	caseIdx int
	stack   bool
	weight  int
}

// memOutcome is one internal-model run's detections and verdict,
// wire-encodable for the subprocess dispatcher.
type memOutcome struct {
	DetectedAt map[string]int64 `json:"detected_at,omitempty"`
	Failed     bool             `json:"failed"`
}

// internalCoverageCampaign is the Figure 3 campaign on the engine.
type internalCoverageCampaign struct {
	campaign.JSONWire[memOutcome]
	opts                         Options
	t                            sut.Target
	ramLocations, stackLocations int
	golds                        []*golden
	ramTargets, stackTargets     []fi.MemTarget

	// Adaptive-mode state: the pruned per-region run lists (memoized by
	// prepare, derived deterministically from the options).
	prepared               bool
	ramPruned, stackPruned []memJob
}

func (c *internalCoverageCampaign) Name() string { return "internal-coverage" }

// enumerateTargets samples the campaign's memory targets once, on a
// scratch rig (cell IDs are stable across rigs: allocation order is
// fixed by construction).
func (c *internalCoverageCampaign) enumerateTargets() error {
	if c.ramTargets != nil {
		return nil
	}
	scratch, err := c.t.Acquire(c.opts.Cases[0], 1, sut.Variant{})
	if err != nil {
		return err
	}
	c.ramTargets = fi.SampleTargets(fi.EnumerateRAMTargets(scratch.System(), scratch.Mem()), c.ramLocations, c.opts.Seed*7+1)
	c.stackTargets = fi.SampleTargets(fi.EnumerateStackTargets(scratch.Mem()), c.stackLocations, c.opts.Seed*7+2)
	c.t.Release(scratch)
	return nil
}

func (c *internalCoverageCampaign) Plan() ([]memJob, error) {
	if err := c.enumerateTargets(); err != nil {
		return nil, err
	}
	var plan []memJob
	for _, tgt := range c.ramTargets {
		for ci := range c.opts.Cases {
			plan = append(plan, memJob{tgt: tgt, caseIdx: ci})
		}
	}
	for _, tgt := range c.stackTargets {
		for ci := range c.opts.Cases {
			plan = append(plan, memJob{tgt: tgt, caseIdx: ci, stack: true})
		}
	}
	return plan, nil
}

// prepare builds the adaptive campaign's pruned per-region run lists:
// profile each test case's fault-free def/use trace, collapse every
// (case, region) set of provably-masked targets into one weighted
// representative, and keep all other targets as weight-1 runs. Pure
// function of the options, memoized — parent and workers derive
// identical lists.
func (c *internalCoverageCampaign) prepare() error {
	if c.prepared {
		return nil
	}
	if err := c.enumerateTargets(); err != nil {
		return err
	}
	profs := make([]*memmap.Liveness, len(c.opts.Cases))
	for ci := range c.opts.Cases {
		l, err := livenessProfile(c.opts, c.t, c.golds[ci], false)
		if err != nil {
			return err
		}
		profs[ci] = l
	}
	c.ramPruned = prunedMemJobs(c.ramTargets, false, profs)
	c.stackPruned = prunedMemJobs(c.stackTargets, true, profs)
	c.prepared = true
	return nil
}

// round builds the executable campaign of one adaptive round; streams
// are the two region run lists (RAM, stack).
func (c *internalCoverageCampaign) round(name string, st AdaptiveRound) (*roundCampaign[memJob, memOutcome], error) {
	if err := c.prepare(); err != nil {
		return nil, err
	}
	streams := [][]memJob{c.ramPruned, c.stackPruned}
	if len(st.Cursors) != len(streams) || len(st.Done) != len(streams) {
		return nil, fmt.Errorf("experiment: round %s has %d cursors for %d streams", name, len(st.Cursors), len(streams))
	}
	var jobs []memJob
	for si, stream := range streams {
		if st.Done[si] {
			continue
		}
		end := st.Cursors[si] + st.Batch
		if end > len(stream) {
			end = len(stream)
		}
		jobs = append(jobs, stream[st.Cursors[si]:end]...)
	}
	return &roundCampaign[memJob, memOutcome]{
		name: name,
		jobs: jobs,
		exec: c.Execute,
		key:  c.ShardKey,
		desc: c.Describe,
	}, nil
}

func (c *internalCoverageCampaign) Execute(_ context.Context, j memJob, _ int) (memOutcome, error) {
	detected, failed, err := internalRun(c.opts, c.t, c.golds[j.caseIdx], j.tgt)
	if err != nil {
		return memOutcome{}, err
	}
	return memOutcome{DetectedAt: detected, Failed: failed}, nil
}

func (c *internalCoverageCampaign) Reduce(plan []memJob, results []memOutcome) (*InternalCoverageResult, error) {
	res := &InternalCoverageResult{
		RAM:            newRegionCoverage(c.t, "RAM"),
		Stack:          newRegionCoverage(c.t, "Stack"),
		Total:          newRegionCoverage(c.t, "Total"),
		RAMLocations:   len(c.ramTargets),
		StackLocations: len(c.stackTargets),
	}
	for i, j := range plan {
		out := results[i]
		region := &res.RAM
		if j.stack {
			region = &res.Stack
		}
		region.accumulateN(c.t, out.DetectedAt, out.Failed, c.opts.PeriodicMs, j.weight)
		res.Total.accumulateN(c.t, out.DetectedAt, out.Failed, c.opts.PeriodicMs, j.weight)
	}
	res.PlannedRuns = res.Total.Runs
	res.ExecutedRuns = len(plan)
	return res, nil
}

func (c *internalCoverageCampaign) ShardKey(j memJob, _ int) uint64 {
	return shardKeyFor(c.opts, c.opts.Cases[j.caseIdx])
}

func (c *internalCoverageCampaign) Describe(j memJob, index int) string {
	region := "RAM"
	if j.stack {
		region = "stack"
	}
	return describeRun(c.t, c.opts, "internal", index, j.caseIdx) + " region=" + region
}

// InternalCoverage runs the Section 7 campaign: single bit-flips
// injected periodically (every opts.PeriodicMs) into sampled RAM and
// stack locations, every test case, with all assertions deployed; runs
// are classified against the failure specification so coverage can be
// split into c_tot, c_fail and c_nofail. ramLocations and stackLocations
// are the sampled location counts (the paper used 150 and 50; with 25
// cases that is the paper's 5000 runs).
// With opts.Adaptive set, each test case's fault-free run is first
// profiled for def/use liveness; targets whose corruption is provably
// unobservable collapse into one weighted representative per (case,
// region) class, and the two region streams stop sampling early once
// every set's c_tot interval is tight (docs/adaptive.md).
func InternalCoverage(ctx context.Context, opts Options, ramLocations, stackLocations int) (*InternalCoverageResult, error) {
	if opts.Adaptive {
		return internalCoverageAdaptive(ctx, opts, ramLocations, stackLocations)
	}
	c, err := newInternalCoverageCampaign(ctx, opts, ramLocations, stackLocations)
	if err != nil {
		return nil, err
	}
	return campaign.Execute[memJob, memOutcome, *InternalCoverageResult](ctx, c, opts.executor(), opts.Timings)
}

func newInternalCoverageCampaign(ctx context.Context, opts Options, ramLocations, stackLocations int) (*internalCoverageCampaign, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if ramLocations < 1 || stackLocations < 1 {
		return nil, fmt.Errorf("experiment: location counts must be >= 1")
	}
	t, err := resolvedTarget(opts)
	if err != nil {
		return nil, err
	}
	golds, err := goldens(ctx, opts, t)
	if err != nil {
		return nil, err
	}
	return &internalCoverageCampaign{
		opts: opts, t: t, ramLocations: ramLocations, stackLocations: stackLocations, golds: golds,
	}, nil
}

func newRegionCoverage(t sut.Target, name string) RegionCoverage {
	rc := RegionCoverage{
		Region:         name,
		PerSet:         make(map[string]SetCoverage),
		SetLatenciesMs: make(map[string][]float64),
	}
	for set := range setMembers(t) {
		rc.PerSet[set] = SetCoverage{}
	}
	return rc
}

// accumulateN folds one run into the region n times — the weighted
// accumulation behind equivalence-class pruning, where one executed
// representative stands for n provably-identical runs. n below 1 counts
// as 1 (plain accumulation).
func (rc *RegionCoverage) accumulateN(t sut.Target, detectedAt map[string]int64, failed bool, injectedAt int64, n int) {
	if n < 1 {
		n = 1
	}
	rc.Runs += n
	if failed {
		rc.Failures += n
	}
	for set, members := range setMembers(t) {
		first := int64(-1)
		for _, ea := range members {
			if at, ok := detectedAt[ea]; ok && (first < 0 || at < first) {
				first = at
			}
		}
		sc := rc.PerSet[set]
		sc.Tot.AddN(first >= 0, n)
		if failed {
			sc.Fail.AddN(first >= 0, n)
		} else {
			sc.NoFail.AddN(first >= 0, n)
		}
		rc.PerSet[set] = sc
		if first >= 0 {
			lat := first - injectedAt
			if lat < 0 {
				lat = 0
			}
			for i := 0; i < n; i++ {
				rc.SetLatenciesMs[set] = append(rc.SetLatenciesMs[set], float64(lat))
			}
		}
	}
}

// internalRun executes one severe-model run: periodic flips of one
// memory target, full EA bank, failure classification. It returns each
// fired assertion's first detection time.
func internalRun(opts Options, t sut.Target, g *golden, tgt fi.MemTarget) (map[string]int64, bool, error) {
	rig, err := t.Acquire(g.tc, t.CaseSeed(opts.Seed, g.tc), sut.Variant{})
	if err != nil {
		return nil, false, err
	}
	defer t.Release(rig)
	bank, err := sut.NewBank(t, rig, t.EHSet())
	if err != nil {
		return nil, false, err
	}
	rig.Sched().OnPostSlot(bank.Hook)

	pi, err := fi.NewPeriodicInjector(tgt, opts.PeriodicMs, opts.PeriodicMs, rig.Bus(), rig.Mem())
	if err != nil {
		return nil, false, err
	}
	rig.Sched().OnPreSlot(pi.Hook)
	rig.Mem().OnRead(pi.MemHook())

	done, err := rig.RunUntilDone(g.horizonMs + opts.GraceMs)
	if err != nil {
		return nil, false, err
	}
	return detectionTimes(bank), rig.Failed(done), nil
}
