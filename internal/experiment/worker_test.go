package experiment

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/campaign/chaos"
)

// experimentWorkerEnv diverts the test binary into worker mode: the
// subprocess tests re-exec this binary as their shard workers, exactly
// as cmd/inject and cmd/reproduce re-exec themselves under
// -worker-shard.
const experimentWorkerEnv = "EXPERIMENT_TEST_WORKER"

func TestMain(m *testing.M) {
	if os.Getenv(experimentWorkerEnv) == "1" {
		if err := ServeWorker(context.Background(), os.Getenv(WorkerSpecEnv), os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiment test worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// subprocessOpts configures a campaign to dispatch its shards to
// re-execs of the test binary.
func subprocessOpts(t *testing.T, workers, shards int, spec WorkerSpec, checkpoint string, log *syncLog) Options {
	t.Helper()
	opts := determinismOpts(workers)
	opts.Shards = shards
	spec.Options = opts
	specJSON, err := spec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	opts.Dispatch = &DispatchConfig{
		Command:      []string{os.Args[0]},
		Env:          []string{experimentWorkerEnv + "=1", WorkerSpecEnv + "=" + specJSON},
		Checkpoint:   checkpoint,
		ShardTimeout: 2 * time.Minute,
		Log:          log,
	}
	return opts
}

// syncLog is a concurrency-safe dispatcher log buffer.
type syncLog struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (l *syncLog) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.Write(p)
}

func (l *syncLog) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.String()
}

// TestPermeabilitySubprocessDeterministicAcrossWorkers pins the
// acceptance matrix at the experiment level: the Table 1 campaign
// reduces byte-identical whether it runs serially or on real worker
// subprocesses at worker counts 1, 2 and 4 and shard counts 1, 2 and 8.
func TestPermeabilitySubprocessDeterministicAcrossWorkers(t *testing.T) {
	ClearGoldenCache()
	base, err := EstimatePermeability(context.Background(), determinismOpts(1), 6)
	if err != nil {
		t.Fatal(err)
	}
	ref := permeabilityFingerprint(t, base)

	for _, arm := range []struct{ workers, shards int }{{1, 8}, {2, 2}, {4, 1}, {4, 8}} {
		ClearGoldenCache()
		var log syncLog
		opts := subprocessOpts(t, arm.workers, arm.shards, WorkerSpec{PerInput: 6}, "", &log)
		res, err := EstimatePermeability(context.Background(), opts, 6)
		if err != nil {
			t.Fatalf("workers=%d shards=%d: %v\nlog:\n%s", arm.workers, arm.shards, err, log.String())
		}
		if fp := permeabilityFingerprint(t, res); fp != ref {
			t.Errorf("workers=%d shards=%d differs from serial:\n--- serial ---\n%s\n--- subprocess ---\n%s",
				arm.workers, arm.shards, ref, fp)
		}
	}
}

// TestInputCoverageSubprocessMatchesSerial runs the Table 4 campaign —
// whose reduction folds per-EA and per-set maps — through real worker
// subprocesses and pins it against the serial reference.
func TestInputCoverageSubprocessMatchesSerial(t *testing.T) {
	ClearGoldenCache()
	base, err := InputCoverage(context.Background(), determinismOpts(1), 6, nil)
	if err != nil {
		t.Fatal(err)
	}

	ClearGoldenCache()
	var log syncLog
	opts := subprocessOpts(t, 2, 4, WorkerSpec{PerSignal: 6}, "", &log)
	res, err := InputCoverage(context.Background(), opts, 6, nil)
	if err != nil {
		t.Fatalf("subprocess: %v\nlog:\n%s", err, log.String())
	}
	if a, b := coverageFingerprint(t, base), coverageFingerprint(t, res); a != b {
		t.Errorf("subprocess coverage differs from serial:\n--- serial ---\n%s\n--- subprocess ---\n%s", a, b)
	}
}

// TestPermeabilityChaosWithRetryMatchesSerial injects panics, spurious
// errors, delays and drops into a real campaign's executor seam and
// asserts the retry layer heals every fault: output byte-identical to
// the serial run, with a nonzero fault count proving the chaos was real.
func TestPermeabilityChaosWithRetryMatchesSerial(t *testing.T) {
	ClearGoldenCache()
	base, err := EstimatePermeability(context.Background(), determinismOpts(1), 6)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	faults := 0
	ClearGoldenCache()
	opts := determinismOpts(4)
	opts.Shards = 8
	opts.execOverride = chaos.Chaos{
		Inner: campaign.Retry{
			Inner:       campaign.Sharded{Workers: 4, Shards: 8},
			Attempts:    4,
			BackoffBase: time.Millisecond,
			BackoffCap:  4 * time.Millisecond,
		},
		Seed:      99,
		PanicRate: 0.05, ErrorRate: 0.05, DelayRate: 0.05, DropRate: 0.05,
		OnFault: func(int, chaos.Fault) { mu.Lock(); faults++; mu.Unlock() },
	}
	res, err := EstimatePermeability(context.Background(), opts, 6)
	if err != nil {
		t.Fatalf("chaos campaign: %v", err)
	}
	if faults == 0 {
		t.Fatal("no faults fired; the chaos arm proved nothing")
	}
	if a, b := permeabilityFingerprint(t, base), permeabilityFingerprint(t, res); a != b {
		t.Errorf("chaos campaign differs from serial after %d healed faults:\n--- serial ---\n%s\n--- chaos ---\n%s",
			faults, a, b)
	}
}

// TestCampaignCancellationLeavesResumableJournal is the satellite-4
// scenario: a SIGINT mid-campaign (the commands translate it to
// context cancellation via signal.NotifyContext) must surface
// context.Canceled, must not produce a timing report — the commands
// write BENCH_campaigns.json only after a campaign succeeds — and must
// leave a journal from which a rerun reduces byte-identical to an
// uninterrupted campaign.
func TestCampaignCancellationLeavesResumableJournal(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "perm.journal")
	benchPath := filepath.Join(dir, "BENCH_campaigns.json")

	ClearGoldenCache()
	base, err := EstimatePermeability(context.Background(), determinismOpts(1), 6)
	if err != nil {
		t.Fatal(err)
	}
	ref := permeabilityFingerprint(t, base)

	// Interrupted run: in-process dispatch (Command empty) with a
	// checkpoint; the first shard landing in the journal triggers
	// cancellation, as a ^C between shards would.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		for {
			if fi, serr := os.Stat(journalPath); serr == nil && fi.Size() > 0 {
				cancel()
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()
	log := &syncLog{}
	ClearGoldenCache()
	opts := determinismOpts(2)
	opts.Shards = 8
	opts.Timings = campaign.NewCollector()
	opts.Dispatch = &DispatchConfig{Checkpoint: journalPath, Log: log}
	_, err = EstimatePermeability(ctx, opts, 6)
	if err == nil {
		t.Fatalf("cancelled campaign reported success\nlog:\n%s", log.String())
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign returned %v, want context.Canceled", err)
	}

	// The commands only write the timing report after the campaign
	// returns nil, so an interrupted run must leave none.
	if err == nil {
		if werr := WriteCampaignTimings(benchPath, opts.Seed, opts.Workers, opts.Timings); werr != nil {
			t.Fatal(werr)
		}
	}
	if _, statErr := os.Stat(benchPath); !errors.Is(statErr, os.ErrNotExist) {
		t.Errorf("interrupted campaign left a timing report at %s", benchPath)
	}
	if fi, statErr := os.Stat(journalPath); statErr != nil || fi.Size() == 0 {
		t.Fatalf("interrupted campaign left no journal (stat: %v)", statErr)
	}

	// Resume: same options, fresh context. The journal replays the
	// completed shards and the rest re-run; the reduction must be
	// byte-identical to the uninterrupted serial reference.
	resumeLog := &syncLog{}
	ClearGoldenCache()
	opts2 := determinismOpts(2)
	opts2.Shards = 8
	opts2.Dispatch = &DispatchConfig{Checkpoint: journalPath, Log: resumeLog}
	res, err := EstimatePermeability(context.Background(), opts2, 6)
	if err != nil {
		t.Fatalf("resume: %v\nlog:\n%s", err, resumeLog.String())
	}
	if !strings.Contains(resumeLog.String(), "resumed") {
		t.Errorf("resume log shows no shard replay:\n%s", resumeLog.String())
	}
	if fp := permeabilityFingerprint(t, res); fp != ref {
		t.Errorf("resumed campaign differs from uninterrupted run:\n--- uninterrupted ---\n%s\n--- resumed ---\n%s", ref, fp)
	}
}
