package experiment

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/campaign/chaos"
	"repro/internal/obs"
)

// fullTelemetry builds a Telemetry with every exposure surface active —
// event stream, progress line — so the determinism arms exercise the
// instrumented paths, not just a bare registry. Sinks are discarded;
// only the side effects on campaign output matter here.
func fullTelemetry() *obs.Telemetry {
	return obs.New(obs.Config{
		EventSink:        io.Discard,
		ProgressSink:     io.Discard,
		ProgressInterval: time.Millisecond,
	})
}

// TestTelemetryDoesNotPerturbCampaigns is the tentpole acceptance
// gate: campaign results must be byte-identical with telemetry on and
// off, across every executor — serial, sharded at 1/2/8 shards, the
// chaos+retry seam, and real worker subprocesses (which additionally
// forward metrics frames over the wire protocol).
func TestTelemetryDoesNotPerturbCampaigns(t *testing.T) {
	prev := obs.Install(nil)
	defer obs.Install(prev)

	// Reference arm: telemetry fully disabled.
	ClearGoldenCache()
	base, err := EstimatePermeability(context.Background(), determinismOpts(1), 6)
	if err != nil {
		t.Fatal(err)
	}
	ref := permeabilityFingerprint(t, base)

	run := func(name string, opts Options) {
		t.Helper()
		ClearGoldenCache()
		tel := fullTelemetry()
		obs.Install(tel)
		res, err := EstimatePermeability(context.Background(), opts, 6)
		tel.Close()
		obs.Install(nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fp := permeabilityFingerprint(t, res); fp != ref {
			t.Errorf("%s with telemetry differs from reference without:\n--- off ---\n%s\n--- on ---\n%s",
				name, ref, fp)
		}
	}

	run("serial", determinismOpts(1))
	for _, shards := range []int{1, 2, 8} {
		opts := determinismOpts(4)
		opts.Shards = shards
		run(fmt.Sprintf("sharded-%d", shards), opts)
	}

	// Chaos + retry: telemetry counts every fault and retry while the
	// retry layer heals them; the healed output must still match.
	var mu sync.Mutex
	faults := 0
	chaosOpts := determinismOpts(4)
	chaosOpts.Shards = 8
	chaosOpts.execOverride = chaos.Chaos{
		Inner: campaign.Retry{
			Inner:       campaign.Sharded{Workers: 4, Shards: 8},
			Attempts:    4,
			BackoffBase: time.Millisecond,
			BackoffCap:  4 * time.Millisecond,
		},
		Seed:      99,
		PanicRate: 0.05, ErrorRate: 0.05, DelayRate: 0.05, DropRate: 0.05,
		OnFault: func(int, chaos.Fault) { mu.Lock(); faults++; mu.Unlock() },
	}
	run("chaos+retry", chaosOpts)
	if faults == 0 {
		t.Error("chaos arm fired no faults; it proved nothing")
	}

	// Subprocess dispatch: workers run EnsureActive telemetry and ship
	// metric deltas back over proto-v2 envelopes.
	var log syncLog
	run("subprocess", subprocessOpts(t, 2, 4, WorkerSpec{PerInput: 6}, "", &log))
}

// scrapeValue fetches the /metrics endpoint and returns the value of
// one series (exact rendered name, labels included) plus whether it was
// present at all.
func scrapeValue(t *testing.T, url, series string) (float64, bool) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("scrape read: %v", err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("scrape content type %q", ct)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok || name != series {
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("series %s has unparsable value %q", series, val)
		}
		return f, true
	}
	return 0, false
}

// TestMetricsEndpointDuringCampaign scrapes /metrics while a sharded
// campaign runs and asserts the shard/run counters behave like a real
// monitoring target: monotone nondecreasing between scrapes, and at the
// end exactly equal to the plan size and shard count.
func TestMetricsEndpointDuringCampaign(t *testing.T) {
	prev := obs.Install(nil)
	defer obs.Install(prev)

	tel := obs.New(obs.Config{})
	obs.Install(tel)
	defer func() { obs.Install(nil); tel.Close() }()

	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()

	ClearGoldenCache()
	opts := determinismOpts(4)
	opts.Shards = 8

	type outcome struct {
		res *PermeabilityResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := EstimatePermeability(context.Background(), opts, 6)
		done <- outcome{res, err}
	}()

	const runsDone = `repro_campaign_runs_done_total{campaign="permeability"}`
	var last float64
	var out outcome
poll:
	for {
		select {
		case out = <-done:
			break poll
		case <-time.After(2 * time.Millisecond):
			v, ok := scrapeValue(t, srv.URL, runsDone)
			if ok && v < last {
				t.Fatalf("runs-done counter went backwards: %g -> %g", last, v)
			}
			if ok {
				last = v
			}
		}
	}
	if out.err != nil {
		t.Fatal(out.err)
	}

	final, ok := scrapeValue(t, srv.URL, runsDone)
	if !ok {
		t.Fatalf("final scrape is missing %s", runsDone)
	}
	if final < last {
		t.Fatalf("final runs-done %g below mid-campaign scrape %g", final, last)
	}
	if int(final) != out.res.TotalRuns {
		t.Errorf("runs-done counter %g, want plan size %d", final, out.res.TotalRuns)
	}
	planned, okP := scrapeValue(t, srv.URL, "repro_shards_total")
	doneN, okD := scrapeValue(t, srv.URL, "repro_shards_done_total")
	if !okP || !okD {
		t.Fatalf("shard counters missing: planned=%v done=%v", okP, okD)
	}
	if planned == 0 || planned != doneN {
		t.Errorf("shards done %g of planned %g; want all done and nonzero", doneN, planned)
	}

	// The sibling endpoints must answer, too.
	for _, path := range []string{"/healthz", "/debug/vars"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s returned %d", path, resp.StatusCode)
		}
	}
}

// TestPrintRetrySummary pins the end-of-command retry report in both
// shapes: quiet campaigns fold into one line, noisy ones enumerate.
func TestPrintRetrySummary(t *testing.T) {
	var quiet strings.Builder
	col := campaign.NewCollector()
	col.ObserveExt("calm", 10, time.Second, campaign.Extras{})
	PrintRetrySummary(&quiet, col)
	if got := quiet.String(); !strings.Contains(got, "no run retries or shard re-dispatches") {
		t.Errorf("quiet summary = %q", got)
	}

	var noisy strings.Builder
	col2 := campaign.NewCollector()
	col2.ObserveExt("stormy", 10, time.Second, campaign.Extras{RunRetries: 3, ShardRetries: 2})
	col2.ObserveExt("calm", 10, time.Second, campaign.Extras{})
	PrintRetrySummary(&noisy, col2)
	got := noisy.String()
	for _, want := range []string{"stormy: 3 run retries, 2 shard re-dispatches", "total: 3 run retries, 2 shard re-dispatches"} {
		if !strings.Contains(got, want) {
			t.Errorf("summary %q missing %q", got, want)
		}
	}
	if strings.Contains(got, "calm:") {
		t.Errorf("summary %q should not enumerate the quiet campaign", got)
	}

	// Nil and empty collectors stay silent.
	var empty strings.Builder
	PrintRetrySummary(&empty, nil)
	PrintRetrySummary(&empty, campaign.NewCollector())
	if empty.Len() != 0 {
		t.Errorf("nil/empty collector wrote %q", empty.String())
	}
}
