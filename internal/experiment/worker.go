package experiment

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/campaign/dispatch"
	"repro/internal/erm"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sut"
)

// WorkerSpecEnv is the environment variable through which the parent
// process ships a JSON WorkerSpec to its shard workers.
const WorkerSpecEnv = "REPRO_WORKER_SPEC"

// WorkerSpec carries everything a worker process needs to rebuild the
// campaigns of one invocation bit-for-bit: the options plus every
// campaign's sizing parameters. The parent serializes it into the
// worker environment (WorkerSpecEnv); the worker rebuilds a campaign
// on demand when the first shard request naming it arrives, and the
// dispatch plan-hash handshake verifies both sides agree on the plan.
type WorkerSpec struct {
	// Options is the invocation's configuration. Scheduling-only fields
	// (Workers, Timings, Dispatch) are not serialized; the worker
	// executes single shards and must never re-dispatch.
	Options Options `json:"options"`

	PerInput       int              `json:"per_input,omitempty"`        // permeability
	PerSignal      int              `json:"per_signal,omitempty"`       // input-coverage
	Signals        []model.SignalID `json:"signals,omitempty"`          // input-coverage (nil = defaults)
	RAMLocations   int              `json:"ram_locations,omitempty"`    // internal-coverage, recovery
	StackLocations int              `json:"stack_locations,omitempty"`  // internal-coverage, recovery
	PerStep        int              `json:"per_step,omitempty"`         // tightness
	Steps          []model.Word     `json:"steps,omitempty"`            // tightness
	PerModel       int              `json:"per_model,omitempty"`        // model-sensitivity
	RecoveryRAM    int              `json:"recovery_ram,omitempty"`     // recovery
	RecoveryStack  int              `json:"recovery_stack,omitempty"`   // recovery
	Specs          []erm.Spec       `json:"specs,omitempty"`            // recovery (nil = defaults)
	IntegPerSignal int              `json:"integ_per_signal,omitempty"` // integration
	MatrixTargets  []string         `json:"matrix_targets,omitempty"`   // matrix (nil = all registered)
	MatrixModels   []string         `json:"matrix_models,omitempty"`    // matrix (nil = all error models)
	MatrixPerCell  int              `json:"matrix_per_cell,omitempty"`  // matrix

	// ModelJSON carries the raw system descriptions of JSON-loaded
	// targets (cmd/inject -model), so worker subprocesses re-register
	// them in their own sut registry before rebuilding the campaign.
	ModelJSON []json.RawMessage `json:"model_json,omitempty"`

	// Round carries the cursor state of the adaptive round this worker
	// pool serves (round campaigns are named "<base>@<round>"); nil for
	// exact campaigns. The parent refreshes it per round via
	// Options.withRound — worker pools are created per round, so fresh
	// processes always see their own round's state.
	Round *AdaptiveRound `json:"adaptive_round,omitempty"`
}

// Encode renders the spec for the worker environment.
func (s WorkerSpec) Encode() (string, error) {
	s.Options.Timings = nil
	s.Options.Dispatch = nil
	b, err := json.Marshal(s)
	if err != nil {
		return "", fmt.Errorf("experiment: encoding worker spec: %w", err)
	}
	return string(b), nil
}

// buildWorker rebuilds the named campaign from the spec and adapts it
// for shard serving. The builders are the same ones the parent's entry
// points use, so plans, shard keys and plan hashes agree by
// construction.
func (s WorkerSpec) buildWorker(ctx context.Context, name string) (dispatch.Worker, error) {
	opts := s.Options
	opts.Timings = nil
	opts.Dispatch = nil
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if base, round, ok := parseRoundName(name); ok {
		if s.Round == nil || s.Round.Campaign != base || s.Round.Round != round {
			return nil, fmt.Errorf("experiment: worker has no round state for campaign %q", name)
		}
		switch base {
		case "permeability":
			c, err := newPermeabilityCampaign(ctx, opts, s.PerInput)
			if err != nil {
				return nil, err
			}
			rc, err := c.round(name, *s.Round)
			if err != nil {
				return nil, err
			}
			return dispatch.Adapt[permJob, permOutcome, []permOutcome](rc)
		case "internal-coverage":
			c, err := newInternalCoverageCampaign(ctx, opts, s.RAMLocations, s.StackLocations)
			if err != nil {
				return nil, err
			}
			rc, err := c.round(name, *s.Round)
			if err != nil {
				return nil, err
			}
			return dispatch.Adapt[memJob, memOutcome, []memOutcome](rc)
		}
		return nil, fmt.Errorf("experiment: no adaptive campaign named %q", base)
	}
	switch name {
	case "permeability":
		c, err := newPermeabilityCampaign(ctx, opts, s.PerInput)
		if err != nil {
			return nil, err
		}
		return dispatch.Adapt[permJob, permOutcome, *PermeabilityResult](c)
	case "input-coverage":
		c, err := newInputCoverageCampaign(ctx, opts, s.PerSignal, s.Signals)
		if err != nil {
			return nil, err
		}
		return dispatch.Adapt[covJob, covOutcome, *InputCoverageResult](c)
	case "internal-coverage":
		c, err := newInternalCoverageCampaign(ctx, opts, s.RAMLocations, s.StackLocations)
		if err != nil {
			return nil, err
		}
		return dispatch.Adapt[memJob, memOutcome, *InternalCoverageResult](c)
	case "tightness":
		c, err := newTightnessCampaign(ctx, opts, s.PerStep, s.Steps)
		if err != nil {
			return nil, err
		}
		return dispatch.Adapt[tightJob, tightOutcome, []TightnessPoint](c)
	case "model-sensitivity":
		c, err := newSensitivityCampaign(ctx, opts, s.PerModel)
		if err != nil {
			return nil, err
		}
		return dispatch.Adapt[sensJob, sensOutcome, *ModelSensitivityResult](c)
	case "recovery":
		c, err := newRecoveryCampaign(ctx, opts, s.RecoveryRAM, s.RecoveryStack, s.Specs)
		if err != nil {
			return nil, err
		}
		return dispatch.Adapt[recJob, recOutcome, *RecoveryStudyResult](c)
	case "integration":
		c, err := newIntegrationCampaign(ctx, opts, s.IntegPerSignal)
		if err != nil {
			return nil, err
		}
		return dispatch.Adapt[integJob, integOutcome, *IntegrationPoint](c)
	case "matrix":
		c, err := newMatrixCampaign(ctx, opts, s.MatrixTargets, s.MatrixModels, s.MatrixPerCell)
		if err != nil {
			return nil, err
		}
		return dispatch.Adapt[matrixJob, matrixOutcome, *MatrixResult](c)
	}
	return nil, fmt.Errorf("experiment: no campaign named %q", name)
}

// LookupFromSpec builds the campaign lookup a worker serves shards
// from: decode the spec, register any JSON-loaded model targets, and
// return a lazy per-campaign builder. It is a dispatch.LookupFactory,
// so network worker agents rebuild their lookup per coordinator
// connection from the spec the handshake ships.
func LookupFromSpec(ctx context.Context, specJSON string) (func(name string) (dispatch.Worker, error), error) {
	if specJSON == "" {
		return nil, fmt.Errorf("experiment: worker mode requires a campaign spec")
	}
	var spec WorkerSpec
	if err := json.Unmarshal([]byte(specJSON), &spec); err != nil {
		return nil, fmt.Errorf("experiment: decoding worker spec: %w", err)
	}
	for _, data := range spec.ModelJSON {
		if _, err := sut.EnsureModelJSON(data); err != nil {
			return nil, fmt.Errorf("experiment: registering worker model target: %w", err)
		}
	}
	// Workers always run with a (registry-only) telemetry so rig-pool,
	// golden-cache and per-run counts exist to forward to the parent
	// over the shard protocol's metrics frames.
	obs.EnsureActive()
	return func(name string) (dispatch.Worker, error) {
		return spec.buildWorker(ctx, name)
	}, nil
}

// ServeWorker runs the hidden worker mode of the campaign commands:
// decode the spec the parent put in the environment and answer shard
// requests on stdin/stdout until the parent closes the pipe. Campaign
// state (plans, golden runs) is built lazily per campaign name and
// reused across the shards this process serves.
func ServeWorker(ctx context.Context, specJSON string, r io.Reader, w io.Writer) error {
	if specJSON == "" {
		return fmt.Errorf("experiment: worker mode requires a spec in $%s", WorkerSpecEnv)
	}
	lookup, err := LookupFromSpec(ctx, specJSON)
	if err != nil {
		return err
	}
	return dispatch.Serve(ctx, lookup, r, w)
}

// RunWorkerAgent runs the networked worker-agent mode of the campaign
// commands: serve shard requests on a listen address (-worker-listen),
// or register with a coordinator and serve over the dialed connection
// (-worker-connect). The campaign spec arrives per connection at
// handshake, so one agent serves many campaigns in sequence; the agent
// runs until ctx is canceled.
func RunWorkerAgent(ctx context.Context, listen, connect string, log io.Writer) error {
	obs.EnsureActive()
	o := dispatch.NetServeOptions{Log: log}
	if listen != "" {
		return dispatch.ServeNet(ctx, listen, LookupFromSpec, o)
	}
	return dispatch.DialAndServe(ctx, connect, LookupFromSpec, o)
}
