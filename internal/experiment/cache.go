package experiment

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sut"
	"repro/internal/trace"
)

// goldenKey identifies one golden run. It covers everything runGolden's
// output depends on: the target, the case identity and physics (ID
// feeds the case seed, P1/P2 feed the scenario), the campaign seed, and
// the run horizon options. Workers deliberately does not appear —
// parallelism must not change results.
type goldenKey struct {
	target   string
	seed     int64
	caseID   int
	p1       float64
	p2       float64
	maxRunMs int64
	tailMs   int64
}

func keyFor(opts Options, tc sut.Case) goldenKey {
	name := opts.Target
	if name == "" {
		name = sut.DefaultTarget
	}
	return goldenKey{
		target:   name,
		seed:     opts.Seed,
		caseID:   tc.ID,
		p1:       tc.P1,
		p2:       tc.P2,
		maxRunMs: opts.MaxRunMs,
		tailMs:   opts.TailMs,
	}
}

// shardKeyFor hashes the golden key into a work-distribution key. Every
// campaign shards its plan by this value, so a run's shard depends on
// target + seed + case + physics + horizons — the exact identity that
// keys the golden cache, and never Workers. All runs that share a
// golden land in one shard: a shard dispatched to a separate process
// computes only the reference runs it actually replays against.
// The default target keeps the pre-seam byte layout (no name prefix),
// so its shard assignment — and with it every scheduling-sensitive
// artifact like checkpoint journals — is unchanged.
func shardKeyFor(opts Options, tc sut.Case) uint64 {
	k := keyFor(opts, tc)
	h := fnv.New64a()
	if k.target != sut.DefaultTarget {
		fmt.Fprintf(h, "%s|", k.target)
	}
	fmt.Fprintf(h, "%d|%d|%v|%v|%d|%d",
		k.seed, k.caseID, k.p1, k.p2, k.maxRunMs, k.tailMs)
	return h.Sum64()
}

// GoldenCache memoizes fault-free reference runs process-wide. All seven
// campaign entry points share it, so a process that runs several
// campaigns (cmd/reproduce regenerates Tables 1, 4 and Figure 3 in one
// invocation; cmd/inject one campaign per run) computes the 25 golden
// runs once instead of once per campaign. Cached goldens are immutable
// and safe for concurrent readers.
type GoldenCache struct {
	mu     sync.Mutex
	runs   map[goldenKey]*golden
	hits   atomic.Int64
	misses atomic.Int64
}

// globalGoldens is the process-wide cache consulted by goldens().
var globalGoldens = &GoldenCache{runs: make(map[goldenKey]*golden)}

// lookup returns the cached golden for the key, if any.
func (c *GoldenCache) lookup(k goldenKey) (*golden, bool) {
	c.mu.Lock()
	g, ok := c.runs[k]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	if tel := obs.Active(); tel != nil {
		if ok {
			tel.GoldenHits.Inc()
		} else {
			tel.GoldenMisses.Inc()
		}
	}
	return g, ok
}

// store publishes a computed golden.
func (c *GoldenCache) store(k goldenKey, g *golden) {
	c.mu.Lock()
	c.runs[k] = g
	size := len(c.runs)
	c.mu.Unlock()
	if tel := obs.Active(); tel != nil {
		tel.GoldenSize.Set(int64(size))
	}
}

// GoldenCacheStats reports process-wide cache traffic: cached reference
// runs currently held, lookup hits and misses.
func GoldenCacheStats() (size int, hits, misses int64) {
	globalGoldens.mu.Lock()
	size = len(globalGoldens.runs)
	globalGoldens.mu.Unlock()
	return size, globalGoldens.hits.Load(), globalGoldens.misses.Load()
}

// ClearGoldenCache drops every cached reference run. Tests use it to
// force recomputation; production campaigns never need to.
func ClearGoldenCache() {
	globalGoldens.mu.Lock()
	globalGoldens.runs = make(map[goldenKey]*golden)
	globalGoldens.mu.Unlock()
}

// recorderPool recycles trace recorders across injection runs. A
// recorder's columns hold one Word per sample per signal — tens of
// thousands of rows per run — and Recorder.ResetFor retargets a pooled
// recorder while keeping that storage when the watch set matches.
var recorderPool sync.Pool

// acquireRecorder returns a recorder over the given bus and signals,
// reusing pooled column storage when possible.
func acquireRecorder(bus *model.Bus, signals []model.SignalID, periodMs, horizonMs int64) *trace.Recorder {
	if v := recorderPool.Get(); v != nil {
		rec := v.(*trace.Recorder)
		rec.ResetFor(bus, signals, periodMs, horizonMs)
		return rec
	}
	return trace.NewRecorder(bus, signals, periodMs, horizonMs)
}

// releaseRecorder returns a recorder to the pool. The recorder's trace
// must no longer be referenced — release only after all golden-trace
// comparisons for the run are done.
func releaseRecorder(rec *trace.Recorder) {
	if rec != nil {
		recorderPool.Put(rec)
	}
}
