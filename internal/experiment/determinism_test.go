package experiment

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"repro/internal/sut"
	"repro/internal/target"
)

// determinismOpts is a reduced-size campaign configuration: three cases
// spanning the mass/velocity envelope, full horizons.
func determinismOpts(workers int) Options {
	opts := DefaultOptions(11)
	opts.Cases = []sut.Case{
		{ID: 1, P1: 8000, P2: 40},
		{ID: 2, P1: 12000, P2: 65},
		{ID: 3, P1: 20000, P2: 80},
	}
	opts.Workers = workers
	return opts
}

// permeabilityFingerprint renders a PermeabilityResult in a stable
// order (Samples is map-keyed, so edges are sorted textually).
func permeabilityFingerprint(t *testing.T, res *PermeabilityResult) string {
	t.Helper()
	lines := make([]string, 0, len(res.Samples)+1)
	for e, p := range res.Samples {
		lines = append(lines, fmt.Sprintf("%s[%d->%d] %s->%s: %d/%d",
			e.Module, e.In, e.Out, e.From, e.To, p.Successes, p.Trials))
	}
	sort.Strings(lines)
	return fmt.Sprintf("active=%d total=%d\n", res.ActiveRuns, res.TotalRuns) +
		fmt.Sprint(lines)
}

// coverageFingerprint renders an InputCoverageResult in a stable order.
func coverageFingerprint(t *testing.T, res *InputCoverageResult) string {
	t.Helper()
	var out string
	rows := append([]CoverageRow{res.All}, res.Rows...)
	for _, row := range rows {
		out += fmt.Sprintf("%s inj=%d act=%d\n", row.Signal, row.Injected, row.Active)
		var eas []string
		for ea, p := range row.PerEA {
			eas = append(eas, fmt.Sprintf("  %s %d/%d", ea, p.Successes, p.Trials))
		}
		sort.Strings(eas)
		out += fmt.Sprint(eas) + "\n"
		var sets []string
		for set, p := range row.PerSet {
			sets = append(sets, fmt.Sprintf("  %s %d/%d", set, p.Successes, p.Trials))
		}
		sort.Strings(sets)
		out += fmt.Sprint(sets) + "\n"
	}
	return out
}

// TestPermeabilityDeterministicAcrossWorkers asserts the Table 1
// campaign invariant: the same seed yields byte-identical results
// whether runs execute serially or on eight workers.
func TestPermeabilityDeterministicAcrossWorkers(t *testing.T) {
	var prints []string
	for _, workers := range []int{1, 8} {
		ClearGoldenCache()
		res, err := EstimatePermeability(context.Background(), determinismOpts(workers), 6)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		prints = append(prints, permeabilityFingerprint(t, res))
	}
	if prints[0] != prints[1] {
		t.Errorf("permeability differs across Workers=1 vs 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			prints[0], prints[1])
	}
}

// TestPermeabilityDeterministicAcrossPooling asserts the rig-reuse
// invariant: pooled rigs (reset) and fresh rigs (NewRig per run)
// produce byte-identical campaign results.
func TestPermeabilityDeterministicAcrossPooling(t *testing.T) {
	if !target.RigPoolingEnabled() {
		t.Fatal("rig pooling should be on by default")
	}
	defer target.SetRigPooling(true)

	var prints []string
	for _, pooled := range []bool{true, false} {
		target.SetRigPooling(pooled)
		ClearGoldenCache()
		res, err := EstimatePermeability(context.Background(), determinismOpts(4), 6)
		if err != nil {
			t.Fatalf("pooled=%v: %v", pooled, err)
		}
		prints = append(prints, permeabilityFingerprint(t, res))
	}
	if prints[0] != prints[1] {
		t.Errorf("permeability differs with pooling on vs off:\n--- pooled ---\n%s\n--- fresh ---\n%s",
			prints[0], prints[1])
	}
}

// TestInputCoverageDeterministicAcrossWorkersAndPooling asserts the
// Table 4 campaign invariant across both axes at once: Workers=1 with
// fresh rigs versus Workers=8 with pooled rigs.
func TestInputCoverageDeterministicAcrossWorkersAndPooling(t *testing.T) {
	defer target.SetRigPooling(true)

	type arm struct {
		workers int
		pooled  bool
	}
	var prints []string
	for _, a := range []arm{{1, false}, {8, true}} {
		target.SetRigPooling(a.pooled)
		ClearGoldenCache()
		res, err := InputCoverage(context.Background(), determinismOpts(a.workers), 6, nil)
		if err != nil {
			t.Fatalf("workers=%d pooled=%v: %v", a.workers, a.pooled, err)
		}
		prints = append(prints, coverageFingerprint(t, res))
	}
	if prints[0] != prints[1] {
		t.Errorf("input coverage differs across worker/pooling arms:\n--- serial/fresh ---\n%s\n--- parallel/pooled ---\n%s",
			prints[0], prints[1])
	}
}

// TestPermeabilityDeterministicAcrossExecutors asserts the engine
// invariant behind the unified campaign runner: the serial executor and
// the sharded worker pool — at shard counts 1, 2 and 8 — all produce
// byte-identical campaign output for a fixed seed.
func TestPermeabilityDeterministicAcrossExecutors(t *testing.T) {
	type arm struct {
		name            string
		workers, shards int
	}
	arms := []arm{
		{"serial", 1, 0},
		{"sharded-1", 4, 1},
		{"sharded-2", 4, 2},
		{"sharded-8", 4, 8},
	}
	var ref string
	for _, a := range arms {
		ClearGoldenCache()
		opts := determinismOpts(a.workers)
		opts.Shards = a.shards
		res, err := EstimatePermeability(context.Background(), opts, 6)
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		fp := permeabilityFingerprint(t, res)
		if ref == "" {
			ref = fp
		} else if fp != ref {
			t.Errorf("%s output differs from serial reference:\n--- serial ---\n%s\n--- %s ---\n%s",
				a.name, ref, a.name, fp)
		}
	}
}

// TestInputCoverageDeterministicAcrossExecutors is the same
// serial-vs-sharded equivalence over the Table 4 campaign, whose
// reduction (per-EA and per-set maps) exercises a different result
// shape than the permeability matrix.
func TestInputCoverageDeterministicAcrossExecutors(t *testing.T) {
	var ref string
	for _, shards := range []int{0, 1, 2, 8} {
		ClearGoldenCache()
		workers := 1
		if shards > 0 {
			workers = 4
		}
		opts := determinismOpts(workers)
		opts.Shards = shards
		res, err := InputCoverage(context.Background(), opts, 6, nil)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		fp := coverageFingerprint(t, res)
		if ref == "" {
			ref = fp
		} else if fp != ref {
			t.Errorf("shards=%d output differs from serial reference:\n--- serial ---\n%s\n--- sharded ---\n%s",
				shards, ref, fp)
		}
	}
}

// TestGoldenCacheReuse asserts that a second campaign over the same
// options recomputes no golden runs and returns identical results.
func TestGoldenCacheReuse(t *testing.T) {
	ClearGoldenCache()
	opts := determinismOpts(4)
	first, err := EstimatePermeability(context.Background(), opts, 6)
	if err != nil {
		t.Fatal(err)
	}
	size, _, misses0 := GoldenCacheStats()
	if size != len(opts.Cases) {
		t.Fatalf("golden cache holds %d runs, want %d", size, len(opts.Cases))
	}
	second, err := EstimatePermeability(context.Background(), opts, 6)
	if err != nil {
		t.Fatal(err)
	}
	_, hits, misses := GoldenCacheStats()
	if misses != misses0 {
		t.Errorf("second campaign recomputed goldens: misses %d -> %d", misses0, misses)
	}
	if hits == 0 {
		t.Error("second campaign recorded no cache hits")
	}
	if a, b := permeabilityFingerprint(t, first), permeabilityFingerprint(t, second); a != b {
		t.Errorf("cached goldens changed campaign results:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}
