package sut

import (
	"fmt"

	"repro/internal/ea"
	"repro/internal/erm"
	"repro/internal/failure"
	"repro/internal/memmap"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/target"
)

func init() {
	MustRegister(arrestment{})
}

// arrestment adapts internal/target — the paper's aircraft arrestment
// system — to the Target seam. Every derivation here (case seeds, run
// seeds, injection windows, bank construction order) reproduces what
// the campaigns did before the seam existed, so default-target output
// stays byte-identical for fixed seeds.
type arrestment struct{}

func (arrestment) Name() string          { return DefaultTarget }
func (arrestment) System() *model.System { return target.SharedSystem() }

func (arrestment) DefaultCases() []Case {
	tcs := target.DefaultTestCases()
	out := make([]Case, len(tcs))
	for i, tc := range tcs {
		out[i] = Case{ID: tc.ID, P1: tc.MassKg, P2: tc.EngageVelocityMps}
	}
	return out
}

func (arrestment) DescribeCase(tc Case) string {
	return fmt.Sprintf("mass=%.0fkg v=%.0fm/s", tc.P1, tc.P2)
}

func (arrestment) AllSignals() []model.SignalID { return target.AllSignals() }
func (arrestment) ControlPeriodMs() int64       { return target.ControlPeriodMs }

func (arrestment) Defaults() Defaults {
	return Defaults{MaxRunMs: 30_000, TailMs: 500, GraceMs: 5_000, PeriodicMs: 20}
}

func (arrestment) Acquire(tc Case, seed int64, v Variant) (Rig, error) {
	r, err := target.AcquireRig(target.Config{
		MassKg:            tc.P1,
		EngageVelocityMps: tc.P2,
		Seed:              seed,
		HardenedDistS:     v.Hardened,
	})
	if err != nil {
		return nil, err
	}
	return arrestRig{r}, nil
}

func (arrestment) Release(r Rig) {
	if ar, ok := r.(arrestRig); ok {
		target.ReleaseRig(ar.r)
	}
}

func (arrestment) AllEASpecs() []ea.Spec { return target.AllEASpecs() }
func (arrestment) EHSet() []string       { return target.EHSet() }
func (arrestment) PASet() []string       { return target.PASet() }
func (arrestment) ExtendedSet() []string { return target.ExtendedSet() }
func (arrestment) ERMSpecs() []erm.Spec  { return target.DefaultERMSpecs() }

func (arrestment) Probe() Probe {
	// PACNT's single consumer (DIST_S) derives pulscnt; EA4 is the
	// bounded-counter assertion the tightness study sweeps.
	var guard ea.Spec
	for _, s := range target.AllEASpecs() {
		if s.Name == target.EA4 {
			guard = s
		}
	}
	return Probe{Input: target.SigPACNT, Guard: guard}
}

func (arrestment) CaseSeed(seed int64, tc Case) int64 {
	return seed*1009 + int64(tc.ID)
}

func (arrestment) RunSeed(seed int64, campaign string, index int) int64 {
	return HashSeed(seed, campaign, index)
}

func (arrestment) InjectWindow(horizonMs int64) int64 { return horizonMs }

// arrestRig wraps *target.Rig behind the Rig seam.
type arrestRig struct {
	r *target.Rig
}

func (a arrestRig) System() *model.System   { return a.r.Sys }
func (a arrestRig) Bus() *model.Bus         { return a.r.Bus }
func (a arrestRig) Mem() *memmap.Map        { return a.r.Mem }
func (a arrestRig) Sched() *sched.Scheduler { return a.r.Sched }

func (a arrestRig) RunFor(durationMs int64) error { return a.r.RunFor(durationMs) }

func (a arrestRig) RunUntilDone(maxMs int64) (bool, error) {
	return a.r.RunUntilArrested(maxMs)
}

func (a arrestRig) Failed(done bool) bool {
	return failure.Classify(a.r.Plant, done, failure.DefaultLimits()).Failed()
}
