package sut

import (
	"fmt"

	"repro/internal/ea"
	"repro/internal/erm"
	"repro/internal/memmap"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/tank"
)

func init() {
	MustRegister(tankTarget{})
}

// tankTarget adapts internal/tank — the two-output level-control demo
// (VALVE criticality 1.0, ALARM criticality 0.25, exercising the
// multi-output criticality math of Eqs. 3-4) — to the Target seam. The
// seed and injection-window policies reproduce the deleted bespoke
// campaign glue in internal/tank, so examples/tanklevel output stays
// byte-identical.
type tankTarget struct{}

func (tankTarget) Name() string          { return "tank" }
func (tankTarget) System() *model.System { return tank.NewSystem() }

func (tankTarget) DefaultCases() []Case {
	tcs := tank.DefaultTestCases()
	out := make([]Case, len(tcs))
	for i, tc := range tcs {
		out[i] = Case{ID: tc.ID, P1: tc.InflowBase, P2: float64(tc.SetpointUnits)}
	}
	return out
}

func (tankTarget) DescribeCase(tc Case) string {
	return fmt.Sprintf("inflow=%.2fm3/s setpoint=%.0f", tc.P1, tc.P2)
}

func (tankTarget) AllSignals() []model.SignalID { return tank.AllSignals() }
func (tankTarget) ControlPeriodMs() int64       { return tank.ControlPeriodMs }

func (tankTarget) Defaults() Defaults {
	// The tank has no natural completion criterion; campaigns observe
	// a fixed 40 s horizon (the deleted glue's RunMs) with no tail.
	return Defaults{MaxRunMs: 40_000, TailMs: 0, GraceMs: 0, PeriodicMs: 10}
}

func (tankTarget) Acquire(tc Case, seed int64, v Variant) (Rig, error) {
	r, err := tank.NewRig(tank.Config{
		InflowBase:    tc.P1,
		SetpointUnits: model.Word(tc.P2),
		Seed:          seed,
	})
	if err != nil {
		return nil, err
	}
	return tankRig{r}, nil
}

func (tankTarget) Release(r Rig) {}

func (tankTarget) AllEASpecs() []ea.Spec { return tank.AllEASpecs() }
func (tankTarget) EHSet() []string       { return tank.EHSet() }
func (tankTarget) PASet() []string       { return tank.PASet() }
func (tankTarget) ExtendedSet() []string { return tank.ExtendedSet() }
func (tankTarget) ERMSpecs() []erm.Spec  { return tank.DefaultERMSpecs() }

func (tankTarget) Probe() Probe {
	// FLW_CNT's single consumer (SENS_F) derives inflow; the windowed
	// pulse-count assertion is the bound the tightness study sweeps.
	var guard ea.Spec
	for _, s := range tank.AllEASpecs() {
		if s.Name == tank.TEAInflow {
			guard = s
		}
	}
	return Probe{Input: tank.SigFlwCnt, Guard: guard}
}

// CaseSeed and RunSeed reproduce the deleted tank campaign glue's
// derivations exactly (golden cfg seed Seed*101+ID, run rng
// Seed*100_003+index, campaign-name independent).
func (tankTarget) CaseSeed(seed int64, tc Case) int64 {
	return seed*101 + int64(tc.ID)
}

func (tankTarget) RunSeed(seed int64, campaign string, index int) int64 {
	return seed*100_003 + int64(index)
}

// InjectWindow keeps the glue's 1 s guard band before the horizon so
// every drawn flip is observed by at least one scheduled read.
func (tankTarget) InjectWindow(horizonMs int64) int64 { return horizonMs - 1000 }

// tankRig wraps *tank.Rig behind the Rig seam. Tank rigs are not
// pooled: each run builds a fresh system, as the deleted glue did.
type tankRig struct {
	r *tank.Rig
}

func (t tankRig) System() *model.System   { return t.r.Sys }
func (t tankRig) Bus() *model.Bus         { return t.r.Bus }
func (t tankRig) Mem() *memmap.Map        { return t.r.Mem }
func (t tankRig) Sched() *sched.Scheduler { return t.r.Sched }

func (t tankRig) RunFor(durationMs int64) error { return t.r.RunFor(durationMs) }

func (t tankRig) RunUntilDone(maxMs int64) (bool, error) {
	if err := t.r.RunFor(maxMs); err != nil {
		return false, err
	}
	return true, nil
}

func (t tankRig) Failed(done bool) bool { return t.r.Classify().Failed() }
