package sut

import (
	_ "embed"
	"fmt"

	"repro/internal/ea"
	"repro/internal/erm"
	"repro/internal/memmap"
	"repro/internal/model"
	"repro/internal/sched"
)

//go:embed multiout.json
var multioutJSON []byte

func init() {
	if _, err := RegisterModelJSON(multioutJSON); err != nil {
		panic(err)
	}
}

// genericTarget is an interpreter-backed target built from a JSON system
// description: every module runs the same low-pass dataflow kernel over
// its declared ports, system inputs are driven by a seeded random walk,
// and assertion bounds are synthesized from signal widths. The dynamics
// are deliberately simple — the point is that the campaign machinery
// (permeability, coverage, placement comparison) needs nothing beyond
// the model's structure, so any system expressible in internal/model
// JSON can be measured.
type genericTarget struct {
	sys    *model.System
	inputs []model.SignalID
	probe  model.SignalID // single-consumer input the probe corrupts
	guard  model.SignalID // the probed consumer's first output
}

// NewGenericTarget builds a runnable target from MarshalJSON output.
// The system's name becomes the registry key.
func NewGenericTarget(data []byte) (Target, error) {
	sys, err := model.UnmarshalSystem(data)
	if err != nil {
		return nil, err
	}
	probe, err := singleConsumerInput(sys)
	if err != nil {
		return nil, err
	}
	consumer := sys.ConsumersOf(probe)[0]
	mod, _ := sys.Module(consumer.Module)
	if len(mod.Outputs) == 0 {
		return nil, fmt.Errorf("sut: probe consumer %s of system %s has no outputs", mod.ID, sys.Name())
	}
	return &genericTarget{
		sys:    sys,
		inputs: sys.SystemInputs(),
		probe:  probe,
		guard:  mod.Outputs[0].Signal,
	}, nil
}

func (g *genericTarget) Name() string          { return g.sys.Name() }
func (g *genericTarget) System() *model.System { return g.sys }

// DefaultCases is a three-point workload grid: P1 is the stimulus base
// level, P2 the per-millisecond walk step.
func (g *genericTarget) DefaultCases() []Case {
	return []Case{
		{ID: 1, P1: 300, P2: 5},
		{ID: 2, P1: 500, P2: 9},
		{ID: 3, P1: 700, P2: 17},
	}
}

func (g *genericTarget) DescribeCase(tc Case) string {
	return fmt.Sprintf("base=%.0f walk=%.0f", tc.P1, tc.P2)
}

func (g *genericTarget) AllSignals() []model.SignalID { return g.sys.SignalIDs() }
func (g *genericTarget) ControlPeriodMs() int64       { return genericPeriodMs }

func (g *genericTarget) Defaults() Defaults {
	return Defaults{MaxRunMs: 10_000, TailMs: 0, GraceMs: 0, PeriodicMs: 10}
}

const genericPeriodMs = 10

func (g *genericTarget) Acquire(tc Case, seed int64, v Variant) (Rig, error) {
	bus := model.NewBus(g.sys)
	mem := &memmap.Map{}

	mods := g.sys.Modules()
	slots := make([][]model.ModuleID, genericPeriodMs)
	for k, m := range mods {
		slot := (k + 1) % genericPeriodMs
		slots[slot] = append(slots[slot], m.ID)
	}
	s, err := sched.New(bus, sched.Table{SlotMs: 1, Slots: slots})
	if err != nil {
		return nil, err
	}
	for _, m := range mods {
		if err := s.Register(newGenericModule(g.sys, mem, m)); err != nil {
			return nil, err
		}
	}

	stim := newStimulus(g.sys, g.inputs, tc, seed)
	s.OnPreSlot(func(nowMs int64) { stim.advance(bus) })
	return &genericRig{sys: g.sys, bus: bus, mem: mem, sched: s}, nil
}

func (g *genericTarget) Release(r Rig) {}

// AllEASpecs synthesizes one behaviour assertion per non-input,
// non-boolean signal from its width: the interpreter kernel smooths
// every signal through a 10-bit accumulator, so fault-free steps stay
// well under the width-scaled rate bound while a corrupted read's spike
// overshoots it.
func (g *genericTarget) AllEASpecs() []ea.Spec {
	var out []ea.Spec
	for _, sig := range g.sys.Signals() {
		if sig.Kind == model.KindSystemInput || sig.IsBool() {
			continue
		}
		out = append(out, genericSpec(sig))
	}
	return out
}

func genericSpec(sig *model.Signal) ea.Spec {
	shift := 0
	if sig.Type.Width < 10 {
		shift = int(10 - sig.Type.Width)
	}
	return ea.Spec{
		Name:   "GEA-" + string(sig.ID),
		Signal: sig.ID,
		Kind:   ea.KindBehaviour,
		Min:    0,
		Max:    (1023 >> shift) + 32,
		MaxUp:  96 >> shift, MaxDown: 96 >> shift,
		WarmupChecks: 6,
	}
}

func (g *genericTarget) EHSet() []string {
	var out []string
	for _, s := range g.AllEASpecs() {
		out = append(out, s.Name)
	}
	return out
}

// PASet keeps only the assertions on system outputs — the
// exposure-guided "guard what leaves the system" placement.
func (g *genericTarget) PASet() []string {
	var out []string
	for _, s := range g.AllEASpecs() {
		if sig, ok := g.sys.Signal(s.Signal); ok && sig.Kind == model.KindSystemOutput {
			out = append(out, s.Name)
		}
	}
	return out
}

func (g *genericTarget) ExtendedSet() []string { return g.EHSet() }

// ERMSpecs wraps every system output in a range clamp sized to the
// signal's full domain — silent in fault-free runs by construction.
func (g *genericTarget) ERMSpecs() []erm.Spec {
	var out []erm.Spec
	for _, id := range g.sys.SystemOutputs() {
		sig, _ := g.sys.Signal(id)
		out = append(out, erm.Spec{
			Name: "GRM-" + string(id), Signal: id,
			Min: 0, Max: sig.Type.MaxUnsigned(),
			Policy: erm.PolicyClamp, WarmupWrites: 2,
		})
	}
	return out
}

func (g *genericTarget) Probe() Probe {
	sig, _ := g.sys.Signal(g.guard)
	return Probe{Input: g.probe, Guard: genericSpec(sig)}
}

func (g *genericTarget) CaseSeed(seed int64, tc Case) int64 {
	return seed*1013 + int64(tc.ID)
}

func (g *genericTarget) RunSeed(seed int64, campaign string, index int) int64 {
	return HashSeed(seed, campaign, index)
}

func (g *genericTarget) InjectWindow(horizonMs int64) int64 { return horizonMs }

// genericRig is one assembled interpreter run.
type genericRig struct {
	sys   *model.System
	bus   *model.Bus
	mem   *memmap.Map
	sched *sched.Scheduler
}

func (r *genericRig) System() *model.System   { return r.sys }
func (r *genericRig) Bus() *model.Bus         { return r.bus }
func (r *genericRig) Mem() *memmap.Map        { return r.mem }
func (r *genericRig) Sched() *sched.Scheduler { return r.sched }

func (r *genericRig) RunFor(durationMs int64) error { return r.sched.RunFor(durationMs) }

func (r *genericRig) RunUntilDone(maxMs int64) (bool, error) {
	if err := r.sched.RunFor(maxMs); err != nil {
		return false, err
	}
	return true, nil
}

// Failed is always false: generic targets have no behavioural
// specification to violate, so campaigns measure error propagation and
// detection only. Failure-class columns degenerate to "no failure",
// which the reports state explicitly.
func (r *genericRig) Failed(done bool) bool { return false }

// genericModule is the interpreter kernel: scale every input to a
// common 10-bit domain, average, low-pass the average into a persistent
// accumulator through a transient stack temporary, and emit the
// accumulator (width-scaled, with a per-port offset so sibling outputs
// are distinguishable).
type genericModule struct {
	decl *model.ModuleDecl
	inW  []uint8     // input widths, port order
	outW []uint8     // output widths, port order
	acc  *memmap.Var // RAM: low-pass state
	tmp  *memmap.Var // stack: per-invocation average
}

func newGenericModule(sys *model.System, mem *memmap.Map, decl *model.ModuleDecl) *genericModule {
	m := &genericModule{
		decl: decl,
		acc:  mem.AllocRAM(string(decl.ID), "acc", model.Uint(10), 0),
		tmp:  mem.AllocStack(string(decl.ID), "t", model.Uint(10)),
	}
	for _, in := range decl.Inputs {
		sig, _ := sys.Signal(in.Signal)
		m.inW = append(m.inW, sig.Type.Width)
	}
	for _, op := range decl.Outputs {
		sig, _ := sys.Signal(op.Signal)
		m.outW = append(m.outW, sig.Type.Width)
	}
	return m
}

func (m *genericModule) ModuleID() model.ModuleID { return m.decl.ID }
func (m *genericModule) Reset()                   {}

func (m *genericModule) Step(e *model.Exec) {
	var sum model.Word
	for i := range m.decl.Inputs {
		v := e.In(i + 1)
		w := m.inW[i]
		switch {
		case w < 10:
			v <<= 10 - w
		case w > 10:
			v >>= w - 10
		}
		if v < 0 {
			v = 0
		}
		sum += v
	}
	if n := len(m.decl.Inputs); n > 0 {
		sum /= model.Word(n)
	}
	m.tmp.Set(sum)
	tv := m.tmp.Get()
	acc := m.acc.Get()
	acc += (tv - acc) / 4
	m.acc.Set(acc)

	for j := range m.decl.Outputs {
		v := acc + model.Word(j)
		if w := m.outW[j]; w < 10 {
			v = acc >> (10 - w)
		}
		e.Out(j+1, v)
	}
}

// stimulus drives the system inputs with a seeded bounded random walk,
// advanced once per millisecond slot. The walk is a pure function of
// (case, seed), so golden and injected runs replay identical inputs.
type stimulus struct {
	x    uint64
	ids  []model.SignalID
	vals []model.Word
	caps []model.Word
	walk model.Word
}

func newStimulus(sys *model.System, inputs []model.SignalID, tc Case, seed int64) *stimulus {
	st := &stimulus{
		x:    uint64(seed) ^ 0x9E3779B97F4A7C15,
		ids:  inputs,
		walk: model.Word(tc.P2),
	}
	if st.walk < 1 {
		st.walk = 1
	}
	for i, id := range inputs {
		sig, _ := sys.Signal(id)
		cap := sig.Type.MaxUnsigned()
		if cap > 1023 {
			cap = 1023
		}
		v := model.Word(tc.P1) + 37*model.Word(i)
		if v > cap {
			v = cap
		}
		if v < 0 {
			v = 0
		}
		st.vals = append(st.vals, v)
		st.caps = append(st.caps, cap)
	}
	return st
}

func (st *stimulus) delta() model.Word {
	st.x = st.x*6364136223846793005 + 1442695040888963407
	span := int64(2*st.walk + 1)
	return model.Word(int64(st.x>>33)%span) - st.walk
}

func (st *stimulus) advance(bus *model.Bus) {
	for i, id := range st.ids {
		v := st.vals[i] + st.delta()
		if v < 0 {
			v = 0
		}
		if v > st.caps[i] {
			v = st.caps[i]
		}
		st.vals[i] = v
		bus.Poke(id, v)
	}
}
