// Package sut is the system-under-test seam: it captures everything an
// injection campaign needs from a target — rig construction, test
// cases, signal enumeration, assertion/wrapper bank specs,
// run-until-done semantics, failure classification and the seed
// policies that make campaigns replayable — behind a Target interface
// plus a process-wide registry.
//
// The paper's placement method (exposure, permeability, criticality
// Eqs. 1-4) is target-agnostic; this package makes the campaign code
// match. The arrestment target (internal/target) is registered as the
// default, the tank demo (internal/tank) and the JSON-loaded multiout
// engine controller are the first library entries, and any system
// expressible in internal/model's JSON form can join via
// RegisterModelJSON. See docs/targets.md.
package sut

import (
	"fmt"

	"repro/internal/ea"
	"repro/internal/erm"
	"repro/internal/memmap"
	"repro/internal/model"
	"repro/internal/sched"
)

// Case is one workload entry of a target's test grid. P1 and P2 are
// target-interpreted scenario parameters (arrestment: mass and
// engagement velocity; tank: inflow base and setpoint; generic JSON
// targets: stimulus base level and walk step).
type Case struct {
	ID int     `json:"id"`
	P1 float64 `json:"p1"`
	P2 float64 `json:"p2"`
}

// Variant selects an optional rig build variation.
type Variant struct {
	// Hardened enables the target's module-internal plausibility
	// checks (the Section 7 recovery study's third arm). Targets
	// without a hardened build ignore it.
	Hardened bool
}

// Defaults are the per-target campaign horizon defaults.
type Defaults struct {
	// MaxRunMs bounds the golden run.
	MaxRunMs int64
	// TailMs extends the observation window past the golden run's
	// completion point.
	TailMs int64
	// GraceMs extends internal-model runs past the golden horizon.
	GraceMs int64
	// PeriodicMs is the severe-model injection period.
	PeriodicMs int64
}

// Probe names the target's canonical injection probe for the
// model-sensitivity, tightness and integration campaigns: a system
// input with exactly one consumer, plus the assertion guarding the
// consumer's downstream signal whose bound those campaigns sweep.
type Probe struct {
	// Input is the system input whose consumer reads are corrupted.
	Input model.SignalID
	// Guard is the swept assertion's template. KindCounter guards
	// sweep MaxStep; KindBehaviour guards sweep MaxUp/MaxDown.
	Guard ea.Spec
}

// Rig is one assembled, runnable instance of a target.
type Rig interface {
	// System returns the immutable system description.
	System() *model.System
	// Bus returns the run's shared-memory signal bus.
	Bus() *model.Bus
	// Mem returns the run's simulated memory map.
	Mem() *memmap.Map
	// Sched returns the run's scheduler, for hook installation.
	Sched() *sched.Scheduler
	// RunFor advances the run by durationMs of scheduler time.
	RunFor(durationMs int64) error
	// RunUntilDone runs until the target's natural completion
	// criterion (the arrestment's standstill) or maxMs elapses,
	// reporting whether completion was reached. Targets without a
	// completion criterion run the full horizon and report true.
	RunUntilDone(maxMs int64) (bool, error)
	// Failed classifies the finished run against the target's
	// specification; done is RunUntilDone's verdict.
	Failed(done bool) bool
}

// Target is one registered system under test.
type Target interface {
	// Name is the registry key.
	Name() string
	// System returns the shared immutable system description.
	System() *model.System
	// DefaultCases returns the target's workload grid.
	DefaultCases() []Case
	// DescribeCase renders a case's parameters for diagnostics.
	DescribeCase(tc Case) string
	// AllSignals returns every signal in declaration order (golden
	// trace recording order).
	AllSignals() []model.SignalID
	// ControlPeriodMs is the sampling period of assertion banks.
	ControlPeriodMs() int64
	// Defaults returns the campaign horizon defaults.
	Defaults() Defaults
	// Acquire builds (or reuses from a pool) a rig for one scenario.
	Acquire(tc Case, seed int64, v Variant) (Rig, error)
	// Release returns a rig acquired from Acquire.
	Release(r Rig)
	// AllEASpecs returns every executable assertion of the target.
	AllEASpecs() []ea.Spec
	// EHSet, PASet and ExtendedSet name the assertion subsets of the
	// experience-based, exposure-selected and extended placements.
	EHSet() []string
	PASet() []string
	ExtendedSet() []string
	// ERMSpecs returns the target's recovery wrappers.
	ERMSpecs() []erm.Spec
	// Probe returns the canonical injection probe.
	Probe() Probe
	// CaseSeed derives the rig seed for a case from the campaign seed.
	CaseSeed(seed int64, tc Case) int64
	// RunSeed derives the per-run RNG seed from the campaign seed, the
	// campaign name and the run's stable plan index.
	RunSeed(seed int64, campaign string, index int) int64
	// InjectWindow maps the golden horizon to the exclusive upper
	// bound for drawn injection times.
	InjectWindow(horizonMs int64) int64
}

// SpecsFor resolves assertion names against a target's spec list.
func SpecsFor(t Target, names []string) ([]ea.Spec, error) {
	all := t.AllEASpecs()
	byName := make(map[string]ea.Spec, len(all))
	for _, s := range all {
		byName[s.Name] = s
	}
	out := make([]ea.Spec, 0, len(names))
	for _, n := range names {
		s, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("sut: target %s has no assertion %q", t.Name(), n)
		}
		out = append(out, s)
	}
	return out, nil
}

// NewBank instantiates the named assertions over the rig's bus,
// checked once per control period. Install bank.Hook as a post-slot
// hook for periodic checking.
func NewBank(t Target, r Rig, names []string) (*ea.Bank, error) {
	specs, err := SpecsFor(t, names)
	if err != nil {
		return nil, err
	}
	return ea.NewBank(r.Bus(), t.ControlPeriodMs(), specs)
}

// NewERMBank installs recovery wrappers on the rig: write filters on
// the guarded signals plus the bank's pre-slot clock hook.
func NewERMBank(r Rig, specs []erm.Spec) (*erm.Bank, error) {
	bank, err := erm.NewBank(r.Bus(), specs)
	if err != nil {
		return nil, err
	}
	r.Sched().OnPreSlot(bank.Hook)
	return bank, nil
}

// HashSeed is the default RunSeed derivation shared by the arrestment
// and generic targets: a polynomial hash of the campaign name folded
// with the plan index.
func HashSeed(seed int64, campaign string, index int) int64 {
	h := seed
	for _, c := range campaign {
		h = h*131 + int64(c)
	}
	return h*1_000_003 + int64(index)
}
