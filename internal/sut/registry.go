package sut

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/model"
)

// DefaultTarget is the registry key campaigns fall back to when no
// target is named — the paper's arrestment system.
const DefaultTarget = "arrestment"

var registry = struct {
	mu sync.RWMutex
	m  map[string]Target
}{m: make(map[string]Target)}

// Register adds a target to the process-wide registry. Registering a
// name twice is an error: targets are immutable library entries, and a
// silent replacement would change campaign results behind a cache key.
func Register(t Target) error {
	name := t.Name()
	if name == "" {
		return fmt.Errorf("sut: target with empty name")
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.m[name]; dup {
		return fmt.Errorf("sut: target %q already registered", name)
	}
	registry.m[name] = t
	return nil
}

// MustRegister is Register for init-time library entries.
func MustRegister(t Target) {
	if err := Register(t); err != nil {
		panic(err)
	}
}

// Lookup resolves a target name; the empty string resolves to
// DefaultTarget. Unknown names error with the registered names listed,
// so command-line validation can fail helpfully before any work.
func Lookup(name string) (Target, error) {
	if name == "" {
		name = DefaultTarget
	}
	registry.mu.RLock()
	t, ok := registry.m[name]
	registry.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sut: unknown target %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return t, nil
}

// Names returns the registered target names, sorted.
func Names() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]string, 0, len(registry.m))
	for n := range registry.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RegisterModelJSON builds a generic interpreter-backed target from an
// internal/model JSON system description and registers it under the
// system's name. It is how `cmd/inject -model system.json` promotes a
// JSON file into a runnable target.
func RegisterModelJSON(data []byte) (Target, error) {
	t, err := NewGenericTarget(data)
	if err != nil {
		return nil, err
	}
	if err := Register(t); err != nil {
		return nil, err
	}
	return t, nil
}

// EnsureModelJSON is RegisterModelJSON that tolerates the target
// already being registered (worker subprocesses re-register the parent
// campaign's -model target on every spawn).
func EnsureModelJSON(data []byte) (Target, error) {
	t, err := NewGenericTarget(data)
	if err != nil {
		return nil, err
	}
	registry.mu.Lock()
	if existing, ok := registry.m[t.Name()]; ok {
		registry.mu.Unlock()
		return existing, nil
	}
	registry.m[t.Name()] = t
	registry.mu.Unlock()
	return t, nil
}

// singleConsumerInput returns the first system input with exactly one
// consumer — the canonical probe input for read-corruption campaigns.
func singleConsumerInput(sys *model.System) (model.SignalID, error) {
	for _, sig := range sys.SystemInputs() {
		if len(sys.ConsumersOf(sig)) == 1 {
			return sig, nil
		}
	}
	return "", fmt.Errorf("sut: system %s has no single-consumer input to probe", sys.Name())
}
