package sut

import (
	"strings"
	"testing"

	"repro/internal/model"
)

func TestLookupAndNames(t *testing.T) {
	for _, name := range []string{"arrestment", "tank", "multiout"} {
		tgt, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if tgt.Name() != name {
			t.Errorf("Lookup(%q).Name() = %q", name, tgt.Name())
		}
	}
	def, err := Lookup("")
	if err != nil {
		t.Fatal(err)
	}
	if def.Name() != DefaultTarget {
		t.Errorf("empty lookup resolved %q, want %q", def.Name(), DefaultTarget)
	}
	_, err = Lookup("nope")
	if err == nil {
		t.Fatal("unknown target accepted")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("lookup error %q does not list registered target %q", err, name)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	tgt, _ := Lookup("tank")
	if err := Register(tgt); err == nil {
		t.Error("duplicate registration accepted")
	}
}

func TestEnsureModelJSONIdempotent(t *testing.T) {
	a, err := EnsureModelJSON(multioutJSON)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EnsureModelJSON(multioutJSON)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("EnsureModelJSON re-registered an existing target")
	}
	if _, err := RegisterModelJSON(multioutJSON); err == nil {
		t.Error("RegisterModelJSON accepted a duplicate")
	}
	if _, err := EnsureModelJSON([]byte("{")); err == nil {
		t.Error("garbage JSON accepted")
	}
}

// TestTargetContracts checks seam invariants every library entry must
// hold: resolvable probe, positive horizons, assertion sets resolving
// against the spec list, and an injection window inside the horizon.
func TestTargetContracts(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			tgt, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			d := tgt.Defaults()
			if d.MaxRunMs <= 0 || d.PeriodicMs <= 0 {
				t.Errorf("defaults %+v not positive", d)
			}
			if tgt.ControlPeriodMs() <= 0 {
				t.Error("non-positive control period")
			}
			if len(tgt.DefaultCases()) == 0 {
				t.Error("no default cases")
			}
			for _, set := range [][]string{tgt.EHSet(), tgt.PASet(), tgt.ExtendedSet()} {
				if _, err := SpecsFor(tgt, set); err != nil {
					t.Errorf("set does not resolve: %v", err)
				}
			}
			p := tgt.Probe()
			sys := tgt.System()
			if _, ok := sys.Signal(p.Input); !ok {
				t.Errorf("probe input %s not in system", p.Input)
			}
			if len(sys.ConsumersOf(p.Input)) != 1 {
				t.Errorf("probe input %s must have exactly one consumer", p.Input)
			}
			if p.Guard.Name == "" {
				t.Error("probe guard is empty")
			}
			if w := tgt.InjectWindow(d.MaxRunMs); w <= 0 || w > d.MaxRunMs {
				t.Errorf("InjectWindow(%d) = %d outside (0, horizon]", d.MaxRunMs, w)
			}
			if tgt.CaseSeed(1, tgt.DefaultCases()[0]) == tgt.CaseSeed(2, tgt.DefaultCases()[0]) {
				t.Error("CaseSeed ignores the campaign seed")
			}
		})
	}
}

// TestFaultFreeSilence acquires each library target, runs the full
// assertion and wrapper banks over a fault-free horizon and requires
// zero detections and zero recoveries — the no-false-positives
// precondition every coverage number rests on.
func TestFaultFreeSilence(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			tgt, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			tc := tgt.DefaultCases()[0]
			rig, err := tgt.Acquire(tc, tgt.CaseSeed(11, tc), Variant{})
			if err != nil {
				t.Fatal(err)
			}
			defer tgt.Release(rig)
			var all []string
			for _, s := range tgt.AllEASpecs() {
				all = append(all, s.Name)
			}
			bank, err := NewBank(tgt, rig, all)
			if err != nil {
				t.Fatal(err)
			}
			rig.Sched().OnPostSlot(bank.Hook)
			wrap, err := NewERMBank(rig, tgt.ERMSpecs())
			if err != nil {
				t.Fatal(err)
			}
			horizon := tgt.Defaults().MaxRunMs
			if horizon > 15_000 {
				horizon = 15_000
			}
			done, err := rig.RunUntilDone(horizon)
			if err != nil {
				t.Fatal(err)
			}
			if rig.Failed(done) {
				t.Error("fault-free run classified failed")
			}
			if bank.Detected() {
				t.Errorf("false positives on fault-free run: %v", bank.DetectedBy())
			}
			if wrap.Recovered() {
				t.Errorf("wrappers fired on fault-free run: %v", wrap.RecoveredBy())
			}
		})
	}
}

// TestGenericRigDeterminism pins the interpreter-backed target's
// reproducibility: same case and seed, same trace; different seed,
// different stimulus.
func TestGenericRigDeterminism(t *testing.T) {
	tgt, err := Lookup("multiout")
	if err != nil {
		t.Fatal(err)
	}
	tc := tgt.DefaultCases()[1]
	final := func(seed int64) []model.Word {
		rig, err := tgt.Acquire(tc, seed, Variant{})
		if err != nil {
			t.Fatal(err)
		}
		defer tgt.Release(rig)
		if err := rig.RunFor(2_000); err != nil {
			t.Fatal(err)
		}
		var out []model.Word
		for _, sig := range tgt.AllSignals() {
			out = append(out, rig.Bus().Peek(sig))
		}
		return out
	}
	a, b := final(42), final(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at signal %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := final(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical bus state; stimulus ignores the seed")
	}
}

// TestHashSeedSeparatesCampaigns pins the shared RunSeed derivation:
// distinct campaign names and indices map to distinct streams.
func TestHashSeedSeparatesCampaigns(t *testing.T) {
	if HashSeed(1, "perm", 0) == HashSeed(1, "cov", 0) {
		t.Error("campaign names collide")
	}
	if HashSeed(1, "perm", 0) == HashSeed(1, "perm", 1) {
		t.Error("plan indices collide")
	}
	if HashSeed(1, "perm", 7) != HashSeed(1, "perm", 7) {
		t.Error("derivation not deterministic")
	}
}
