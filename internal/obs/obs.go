// Package obs is the campaign machinery's telemetry layer: atomic
// counters and gauges, fixed-bucket histograms, span tracing on
// monotonic clocks, a structured NDJSON event log, a rate-limited live
// progress line, and an HTTP exposition surface (Prometheus text
// /metrics, /healthz, expvar /debug/vars, net/http/pprof).
//
// The layer is stdlib-only and strictly optional: a process that never
// installs a Telemetry pays a nil-pointer check per instrumentation
// site and allocates nothing (every instrument method is nil-safe, and
// BenchmarkDisabledHotPath pins the disabled path at zero allocations).
// Campaign results are never derived from telemetry state, so enabling
// or disabling it cannot perturb output — the determinism tests in
// internal/experiment pin campaigns byte-identical with telemetry on
// and off, including under chaos and subprocess dispatch.
//
// Instrumented code reads the process-wide telemetry with Active():
//
//	if tel := obs.Active(); tel != nil {
//	    tel.RigAcquires.Inc()
//	}
//
// Hot paths use the pre-resolved instrument fields on Telemetry (plain
// atomic adds); cold paths may resolve labeled series through the
// registry. Worker processes install their own Telemetry and forward
// counter/histogram deltas to the parent dispatcher over the shard wire
// protocol (see internal/campaign/dispatch), so dispatcher-mode numbers
// aggregate correctly in the parent's /metrics.
package obs

import (
	"io"
	"sync/atomic"
	"time"
)

// Telemetry bundles one process's telemetry state: the metric registry,
// the optional event log and progress line, and the pre-resolved
// instruments the engine's hot paths increment without a registry
// lookup.
type Telemetry struct {
	// Reg holds every metric series for /metrics and /debug/vars.
	Reg *Registry
	// Events, when non-nil, receives NDJSON span/event records
	// (the -events-out stream).
	Events *EventLog
	// Progress, when non-nil, renders the live stderr progress line.
	Progress *Progress
	// Live is the in-memory operations view behind the /events SSE
	// stream and the /dash page. Always present on a built Telemetry.
	Live *Live

	start time.Time

	// Engine.
	Campaigns  *Counter   // campaigns executed end to end
	RunRetries *Counter   // campaign.Retry re-attempts
	RunDur     *Histogram // per-run wall time, seconds

	// Distributed tracing.
	TraceWorkerSpans *Counter // worker-recorded spans folded into the parent trace

	// In-process sharded executor.
	ShardsPlanned *Counter   // shards partitioned for execution
	ShardsDone    *Counter   // shards completed
	ShardDur      *Histogram // per-shard wall time, seconds (all executors)

	// Subprocess dispatcher.
	DispatchShards    *Counter // shards planned by the dispatcher (incl. resumed)
	DispatchResumed   *Counter // shards replayed from a checkpoint journal
	DispatchDone      *Counter // shards completed by the dispatcher
	DispatchRetries   *Counter // shard re-dispatches after retryable failures
	DispatchIntegrity *Counter // integrity-check failures on shard responses
	DispatchPermanent *Counter // permanent (campaign-level) shard failures
	WorkerSpawns      *Counter // worker processes spawned
	WorkerKills       *Counter // worker processes killed/destroyed
	Degraded          *Gauge   // 1 while the dispatcher runs shards in-process

	// Networked fleet dispatcher.
	FleetWorkers       *Gauge   // live fleet worker connections
	FleetRegistrations *Counter // fleet workers joined (dialed or registered)
	FleetReconnects    *Counter // reconnects to workers that were lost
	FleetStragglers    *Counter // duplicate dispatches racing straggler shards

	// Golden cache (internal/experiment).
	GoldenHits   *Counter
	GoldenMisses *Counter
	GoldenSize   *Gauge

	// Rig pool (internal/target).
	RigAcquires *Counter // rig acquisitions (reuse + build)
	RigReuses   *Counter // acquisitions served by resetting a pooled rig
	RigBuilds   *Counter // acquisitions that built a fresh rig
	RigReleases *Counter // rigs returned to the pool
}

// Config selects the optional exposure surfaces of a Telemetry.
type Config struct {
	// EventSink, when non-nil, receives the NDJSON event/span stream.
	EventSink io.Writer
	// ProgressSink, when non-nil, receives the live progress line.
	ProgressSink io.Writer
	// ProgressInterval rate-limits the progress line (0 selects ~1 Hz).
	ProgressInterval time.Duration
}

// New builds a Telemetry with a fresh registry and the standard
// instrument set pre-resolved. Exposure surfaces (events, progress) are
// attached per the config; the HTTP surface is served separately with
// Handler/Serve.
func New(cfg Config) *Telemetry {
	r := NewRegistry()
	t := &Telemetry{
		Reg:   r,
		Live:  NewLive(),
		start: time.Now(),

		Campaigns:  r.Counter("repro_campaigns_total"),
		RunRetries: r.Counter("repro_run_retries_total"),
		RunDur:     r.Histogram("repro_run_duration_seconds", DurationBuckets),

		TraceWorkerSpans: r.Counter("repro_trace_worker_spans_total"),

		ShardsPlanned: r.Counter("repro_shards_total"),
		ShardsDone:    r.Counter("repro_shards_done_total"),
		ShardDur:      r.Histogram("repro_shard_duration_seconds", DurationBuckets),

		DispatchShards:    r.Counter("repro_dispatch_shards_total"),
		DispatchResumed:   r.Counter("repro_dispatch_shards_resumed_total"),
		DispatchDone:      r.Counter("repro_dispatch_shards_done_total"),
		DispatchRetries:   r.Counter("repro_dispatch_shard_retries_total"),
		DispatchIntegrity: r.Counter("repro_dispatch_integrity_failures_total"),
		DispatchPermanent: r.Counter("repro_dispatch_permanent_failures_total"),
		WorkerSpawns:      r.Counter("repro_dispatch_worker_spawns_total"),
		WorkerKills:       r.Counter("repro_dispatch_worker_kills_total"),
		Degraded:          r.Gauge("repro_dispatch_degraded"),

		FleetWorkers:       r.Gauge("repro_fleet_workers"),
		FleetRegistrations: r.Counter("repro_fleet_registrations_total"),
		FleetReconnects:    r.Counter("repro_fleet_reconnects_total"),
		FleetStragglers:    r.Counter("repro_fleet_straggler_redispatches_total"),

		GoldenHits:   r.Counter("repro_golden_cache_hits_total"),
		GoldenMisses: r.Counter("repro_golden_cache_misses_total"),
		GoldenSize:   r.Gauge("repro_golden_cache_size"),

		RigAcquires: r.Counter("repro_rig_acquires_total"),
		RigReuses:   r.Counter("repro_rig_reuses_total"),
		RigBuilds:   r.Counter("repro_rig_builds_total"),
		RigReleases: r.Counter("repro_rig_releases_total"),
	}
	if cfg.EventSink != nil {
		t.Events = NewEventLog(cfg.EventSink)
	}
	if cfg.ProgressSink != nil {
		t.Progress = NewProgress(cfg.ProgressSink, cfg.ProgressInterval)
	}
	return t
}

// Uptime reports how long the telemetry has been live (monotonic).
func (t *Telemetry) Uptime() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// Close stops the progress renderer and flushes the event log. The
// registry stays readable (final scrapes and snapshots still work).
func (t *Telemetry) Close() {
	if t == nil {
		return
	}
	t.Progress.Stop()
	t.Events.Flush()
}

// active is the process-wide telemetry. A nil pointer is the disabled
// state: Active() then returns nil and every instrumentation site
// reduces to one atomic load plus a nil check.
var active atomic.Pointer[Telemetry]

// Active returns the process-wide telemetry, or nil when disabled.
func Active() *Telemetry { return active.Load() }

// Install makes t the process-wide telemetry (nil disables telemetry).
// It returns the previously installed value so tests can restore it.
func Install(t *Telemetry) *Telemetry { return active.Swap(t) }

// EnsureActive installs a registry-only Telemetry if none is active and
// returns the active one. Worker processes call it so their metrics
// exist to forward even when the parent never exposed an HTTP surface.
func EnsureActive() *Telemetry {
	if t := active.Load(); t != nil {
		return t
	}
	t := New(Config{})
	if active.CompareAndSwap(nil, t) {
		return t
	}
	return active.Load()
}
