package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one NDJSON record on the -events-out stream. Span records
// carry a span id (and parent id when nested) plus a duration once the
// span ends; point events carry neither. Spans that belong to a
// campaign trace additionally carry the campaign's deterministic trace
// id, so records from many processes fold into one tree.
//
//	{"ts_ms":12,"kind":"span","name":"campaign.execute","span":1,"dur_ms":4031,"trace":"8f3a...","attrs":{"campaign":"permeability"}}
//	{"ts_ms":15,"kind":"event","name":"dispatch.retry","attrs":{"shard":"a1b2","attempt":"2"}}
type Event struct {
	// TSMillis is milliseconds since the event log was created,
	// measured on the monotonic clock (immune to wall-clock steps).
	TSMillis int64             `json:"ts_ms"`
	Kind     string            `json:"kind"` // "event", "span"
	Name     string            `json:"name"`
	Span     uint64            `json:"span,omitempty"`
	Parent   uint64            `json:"parent,omitempty"`
	DurMs    int64             `json:"dur_ms,omitempty"`
	Trace    string            `json:"trace,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// EventLog serializes events as NDJSON to a sink. All methods are
// nil-safe no-ops and safe for concurrent use.
type EventLog struct {
	mu     sync.Mutex
	w      *bufio.Writer
	enc    *json.Encoder
	anchor time.Time
	ids    atomic.Uint64
}

// NewEventLog wraps w in a buffered NDJSON event sink. Call Flush (or
// Telemetry.Close) before the process exits.
func NewEventLog(w io.Writer) *EventLog {
	bw := bufio.NewWriter(w)
	return &EventLog{w: bw, enc: json.NewEncoder(bw), anchor: time.Now()}
}

// now reports milliseconds since the log's anchor, monotonically.
func (l *EventLog) now() int64 { return time.Since(l.anchor).Milliseconds() }

func (l *EventLog) write(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	_ = l.enc.Encode(e)
	// Flush per record: every complete record reaches the sink as one
	// NDJSON line, so a process killed mid-campaign leaves a parseable
	// log (at worst the final line is cut, never an earlier one). Event
	// rates here are per-shard, not per-run, so the extra write is noise.
	_ = l.w.Flush()
}

// Emit records a point event.
func (l *EventLog) Emit(name string, attrs map[string]string) {
	if l == nil {
		return
	}
	l.write(Event{TSMillis: l.now(), Kind: "event", Name: name, Attrs: attrs})
}

// Flush drains the buffer to the underlying writer.
func (l *EventLog) Flush() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	_ = l.w.Flush()
}

// Span is an in-flight timed operation. End writes one span record
// carrying the start offset and duration; Child opens a nested span.
// The zero value and nil are inert.
type Span struct {
	log   *EventLog
	name  string
	id    uint64
	par   uint64
	trace string
	start time.Time
	tsMS  int64
	attrs map[string]string
}

// StartSpan opens a root span.
func (l *EventLog) StartSpan(name string, attrs map[string]string) *Span {
	if l == nil {
		return nil
	}
	return &Span{
		log: l, name: name,
		id:    l.ids.Add(1),
		start: time.Now(),
		tsMS:  l.now(),
		attrs: attrs,
	}
}

// Child opens a span nested under s, inheriting s's trace id.
func (s *Span) Child(name string, attrs map[string]string) *Span {
	if s == nil {
		return nil
	}
	c := s.log.StartSpan(name, attrs)
	c.par = s.id
	c.trace = s.trace
	return c
}

// SetTrace stamps the span (and every Child opened afterwards) with a
// campaign trace id. Safe to call on nil.
func (s *Span) SetTrace(trace string) {
	if s != nil {
		s.trace = trace
	}
}

// ID reports the span's id (0 for nil spans).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// SetAttr attaches one attribute to the span before it ends. Safe to
// call on nil.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[key] = value
}

// End closes the span, emitting its record. Safe to call on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.log.write(Event{
		TSMillis: s.tsMS,
		Kind:     "span",
		Name:     s.name,
		Span:     s.id,
		Parent:   s.par,
		Trace:    s.trace,
		DurMs:    time.Since(s.start).Milliseconds(),
		Attrs:    s.attrs,
	})
}
