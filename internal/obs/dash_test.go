package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestDashEndpointServesPage(t *testing.T) {
	tel := New(Config{})
	defer tel.Close()
	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/dash")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/dash returned %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Errorf("/dash content type %q", ct)
	}
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteString("\n")
	}
	body := sb.String()
	for _, want := range []string{"campaign dashboard", "EventSource", "/events"} {
		if !strings.Contains(body, want) {
			t.Errorf("/dash page missing %q", want)
		}
	}
}

func TestEventsEndpointStreamsSnapshots(t *testing.T) {
	tel := New(Config{})
	defer tel.Close()
	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()

	c := tel.Live.StartCampaign("permeability", "sharded", "00000000000000aa", 50)
	c.RunDone()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/event-stream") {
		t.Fatalf("/events content type %q", ct)
	}

	// First SSE frame is the connect snapshot; a state change pushes an
	// update frame. Read both.
	sc := bufio.NewScanner(resp.Body)
	frame := func() (event string, data []byte) {
		t.Helper()
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				data = []byte(strings.TrimPrefix(line, "data: "))
			case line == "" && event != "":
				return event, data
			}
		}
		t.Fatalf("SSE stream ended early: %v", sc.Err())
		return "", nil
	}

	ev, data := frame()
	if ev != "snapshot" {
		t.Fatalf("first frame event = %q, want snapshot", ev)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot frame is not JSON: %v\n%s", err, data)
	}
	if snap.Campaign == nil || snap.Campaign.Campaign != "permeability" {
		t.Errorf("connect snapshot = %+v, want the running campaign", snap.Campaign)
	}

	tel.Live.UpdateShard(ShardStatus{ID: "s0", State: "done", Runs: 50, WallMs: 3})
	ev, data = frame()
	if ev != "update" && ev != "snapshot" {
		t.Fatalf("second frame event = %q", ev)
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("second frame is not JSON: %v", err)
	}
	if len(snap.Shards) == 0 && ev == "update" {
		t.Errorf("update frame carries no shard state: %s", data)
	}
}
