package obs

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Live is the in-memory operations view behind /events (SSE) and /dash.
// It mirrors the Progress call sites — campaign start/end, run done,
// shard planned/done, retry — plus per-shard phase attribution and
// fleet worker membership, and publishes JSON snapshots to subscribers.
//
// The hot path (RunDone) is a single atomic add on the LiveCampaign
// returned by StartCampaign; per-run updates never publish — runs ride
// the periodic snapshots the SSE handler emits. Shard and worker
// transitions are rare, so they publish immediately.
//
// All methods are nil-safe no-ops, matching the rest of the package.
type Live struct {
	mu      sync.Mutex
	current *LiveCampaign
	shards  map[string]ShardStatus
	workers map[string]LiveWorker
	subs    map[chan []byte]struct{}
	done    []CampaignSummary
}

// NewLive returns an empty live view.
func NewLive() *Live {
	return &Live{
		shards:  make(map[string]ShardStatus),
		workers: make(map[string]LiveWorker),
		subs:    make(map[chan []byte]struct{}),
	}
}

// LiveCampaign tracks one running campaign with lock-free counters so
// the engine's per-run callback stays cheap. Nil-safe.
type LiveCampaign struct {
	name        string
	executor    string
	trace       string
	startedAt   time.Time
	runsTotal   int64
	runsDone    atomic.Int64
	retries     atomic.Int64
	shardsTotal atomic.Int64
	shardsDone  atomic.Int64
}

// RunDone counts one completed run. Never publishes.
func (c *LiveCampaign) RunDone() {
	if c != nil {
		c.runsDone.Add(1)
	}
}

// ShardStatus is the live state of one shard, including the phase
// split attributed from the merged trace (queue wait before a worker
// slot, worker-side execution, and network/framing overhead).
type ShardStatus struct {
	Campaign string `json:"campaign"`
	ID       string `json:"id"`
	Worker   string `json:"worker,omitempty"`
	State    string `json:"state"` // "running", "done", "retrying", "failed"
	Runs     int    `json:"runs"`
	Attempts int    `json:"attempts,omitempty"`
	WallMs   int64  `json:"wall_ms,omitempty"`
	QueueMs  int64  `json:"queue_ms,omitempty"`
	ExecMs   int64  `json:"exec_ms,omitempty"`
	NetMs    int64  `json:"net_ms,omitempty"`
}

// LiveWorker is one fleet agent's membership state.
type LiveWorker struct {
	ID       string `json:"id"`
	PID      int    `json:"pid,omitempty"`
	State    string `json:"state"` // "up", "lost"
	JoinedMs int64  `json:"joined_ms"`
}

// CampaignSummary is a finished campaign's final counters.
type CampaignSummary struct {
	Campaign string `json:"campaign"`
	Executor string `json:"executor"`
	Trace    string `json:"trace,omitempty"`
	Runs     int64  `json:"runs"`
	Retries  int64  `json:"retries,omitempty"`
	WallMs   int64  `json:"wall_ms"`
}

// Snapshot is the full live state serialized to SSE subscribers.
type Snapshot struct {
	Campaign *CampaignProgress `json:"campaign,omitempty"`
	Shards   []ShardStatus     `json:"shards,omitempty"`
	Workers  []LiveWorker      `json:"workers,omitempty"`
	Done     []CampaignSummary `json:"done,omitempty"`
}

// CampaignProgress is the running campaign's counters at snapshot time.
type CampaignProgress struct {
	Campaign    string `json:"campaign"`
	Executor    string `json:"executor"`
	Trace       string `json:"trace,omitempty"`
	RunsTotal   int64  `json:"runs_total"`
	RunsDone    int64  `json:"runs_done"`
	Retries     int64  `json:"retries,omitempty"`
	ShardsTotal int64  `json:"shards_total,omitempty"`
	ShardsDone  int64  `json:"shards_done,omitempty"`
	ElapsedMs   int64  `json:"elapsed_ms"`
}

// StartCampaign begins tracking a campaign and returns its counter
// block for the hot path. Shard detail from any previous campaign is
// cleared so the dashboard shows the current one.
func (l *Live) StartCampaign(name, executor, trace string, runsTotal int) *LiveCampaign {
	if l == nil {
		return nil
	}
	c := &LiveCampaign{
		name: name, executor: executor, trace: trace,
		startedAt: time.Now(), runsTotal: int64(runsTotal),
	}
	l.mu.Lock()
	l.current = c
	l.shards = make(map[string]ShardStatus)
	l.mu.Unlock()
	l.publish()
	return c
}

// EndCampaign moves the current campaign into the done list.
func (l *Live) EndCampaign(c *LiveCampaign) {
	if l == nil || c == nil {
		return
	}
	sum := CampaignSummary{
		Campaign: c.name, Executor: c.executor, Trace: c.trace,
		Runs:    c.runsDone.Load(),
		Retries: c.retries.Load(),
		WallMs:  time.Since(c.startedAt).Milliseconds(),
	}
	l.mu.Lock()
	if l.current == c {
		l.current = nil
	}
	l.done = append(l.done, sum)
	if len(l.done) > 32 {
		l.done = l.done[len(l.done)-32:]
	}
	l.mu.Unlock()
	l.publish()
}

// SetShards records the planned shard count for the current campaign.
func (l *Live) SetShards(n int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	c := l.current
	l.mu.Unlock()
	if c != nil {
		c.shardsTotal.Store(int64(n))
	}
	l.publish()
}

// ShardDone counts one completed shard for the current campaign.
func (l *Live) ShardDone() {
	if l == nil {
		return
	}
	l.mu.Lock()
	c := l.current
	l.mu.Unlock()
	if c != nil {
		c.shardsDone.Add(1)
	}
	l.publish()
}

// Retry counts one run retry for the current campaign.
func (l *Live) Retry() {
	if l == nil {
		return
	}
	l.mu.Lock()
	c := l.current
	l.mu.Unlock()
	if c != nil {
		c.retries.Add(1)
	}
}

// UpdateShard upserts one shard's live status and publishes. Call
// sites that don't know the campaign name (executors see only plan
// indices) may leave Campaign empty; it fills from the current
// campaign.
func (l *Live) UpdateShard(s ShardStatus) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if s.Campaign == "" && l.current != nil {
		s.Campaign = l.current.name
	}
	l.shards[s.ID] = s
	l.mu.Unlock()
	l.publish()
}

// WorkerJoin records a fleet agent joining (or a subprocess worker
// spawning).
func (l *Live) WorkerJoin(id string, pid int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.workers[id] = LiveWorker{
		ID: id, PID: pid, State: "up",
		JoinedMs: time.Now().UnixMilli(),
	}
	l.mu.Unlock()
	l.publish()
}

// WorkerLost marks a fleet agent as lost.
func (l *Live) WorkerLost(id string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if w, ok := l.workers[id]; ok {
		w.State = "lost"
		l.workers[id] = w
	}
	l.mu.Unlock()
	l.publish()
}

// SlowestShard reports the completed shard with the largest wall time,
// for the end-of-command straggler attribution line.
func (l *Live) SlowestShard() (ShardStatus, bool) {
	if l == nil {
		return ShardStatus{}, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var best ShardStatus
	found := false
	for _, s := range l.shards {
		if s.WallMs > best.WallMs || !found {
			if s.WallMs > 0 {
				best, found = s, true
			}
		}
	}
	return best, found
}

// Snapshot captures the full live state.
func (l *Live) Snapshot() Snapshot {
	if l == nil {
		return Snapshot{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var snap Snapshot
	if c := l.current; c != nil {
		snap.Campaign = &CampaignProgress{
			Campaign: c.name, Executor: c.executor, Trace: c.trace,
			RunsTotal:   c.runsTotal,
			RunsDone:    c.runsDone.Load(),
			Retries:     c.retries.Load(),
			ShardsTotal: c.shardsTotal.Load(),
			ShardsDone:  c.shardsDone.Load(),
			ElapsedMs:   time.Since(c.startedAt).Milliseconds(),
		}
	}
	for _, s := range l.shards {
		snap.Shards = append(snap.Shards, s)
	}
	sort.Slice(snap.Shards, func(i, j int) bool { return snap.Shards[i].ID < snap.Shards[j].ID })
	for _, w := range l.workers {
		snap.Workers = append(snap.Workers, w)
	}
	sort.Slice(snap.Workers, func(i, j int) bool { return snap.Workers[i].ID < snap.Workers[j].ID })
	snap.Done = append(snap.Done, l.done...)
	return snap
}

// SnapshotJSON is Snapshot marshaled, never failing (the types above
// cannot error under encoding/json).
func (l *Live) SnapshotJSON() []byte {
	b, err := json.Marshal(l.Snapshot())
	if err != nil {
		return []byte("{}")
	}
	return b
}

// Subscribe registers an SSE subscriber. The channel is buffered and
// publishes are non-blocking: a slow consumer drops intermediate
// snapshots, never stalls the engine.
func (l *Live) Subscribe() chan []byte {
	if l == nil {
		return nil
	}
	ch := make(chan []byte, 8)
	l.mu.Lock()
	l.subs[ch] = struct{}{}
	l.mu.Unlock()
	return ch
}

// Unsubscribe removes a subscriber registered with Subscribe.
func (l *Live) Unsubscribe(ch chan []byte) {
	if l == nil || ch == nil {
		return
	}
	l.mu.Lock()
	delete(l.subs, ch)
	l.mu.Unlock()
}

// publish pushes the current snapshot to every subscriber that has
// buffer room. Skipped entirely when nobody is listening.
func (l *Live) publish() {
	if l == nil {
		return
	}
	l.mu.Lock()
	n := len(l.subs)
	l.mu.Unlock()
	if n == 0 {
		return
	}
	b := l.SnapshotJSON()
	l.mu.Lock()
	for ch := range l.subs {
		select {
		case ch <- b:
		default:
		}
	}
	l.mu.Unlock()
}
