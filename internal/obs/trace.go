package obs

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"
)

// Distributed tracing for campaigns. Every campaign execution derives a
// deterministic trace id from its plan hash (the same FNV-1a identity
// that keys shards, the golden cache and the checkpoint journal), so
// re-running a campaign yields the same trace id and traces from
// different processes of one campaign correlate without coordination.
//
// The parent process carries its current span and trace id in the
// context; dispatchers stamp the trace id into shard requests; worker
// processes record their spans into an in-memory TraceRecorder and ship
// the completed subtree back with the shard response, where FoldSpans
// grafts it under the dispatch span — one coherent trace per campaign,
// no clock synchronization required (worker offsets are re-anchored
// against the round-trip completion time).

// TraceID renders a campaign plan hash as the campaign's trace id, in
// the same %016x form every wire frame and journal entry uses.
func TraceID(planHash uint64) string { return fmt.Sprintf("%016x", planHash) }

// processToken identifies this process instance for telemetry routing:
// an in-process worker agent shares the parent's registry, so its
// metric deltas must not be merged back (they would double count).
var processToken = fmt.Sprintf("%d-%x", os.Getpid(), time.Now().UnixNano())

// ProcessToken identifies this process instance. Workers send it in
// their hello frame; a coordinator that receives its own token knows
// the "worker" shares its registry and skips the metrics merge.
func ProcessToken() string { return processToken }

// traceCtxKey carries the active span and trace id in a context.
type traceCtxKey struct{}

type traceCtx struct {
	span  *Span
	trace string
}

// WithTrace returns ctx carrying the campaign's execute span and trace
// id. The engine only calls it when telemetry is installed, so the
// disabled path never pays the context allocation.
func WithTrace(ctx context.Context, span *Span, trace string) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, traceCtx{span: span, trace: trace})
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	tc, _ := ctx.Value(traceCtxKey{}).(traceCtx)
	return tc.span
}

// TraceFromContext returns the trace id carried by ctx, or "".
func TraceFromContext(ctx context.Context) string {
	tc, _ := ctx.Value(traceCtxKey{}).(traceCtx)
	return tc.trace
}

// SpanRec is one completed span recorded worker-side and shipped back
// with a shard response. Offsets are milliseconds since the recorder's
// anchor; ids are local to the recorder (the parent remaps both when
// folding the subtree into its own trace).
type SpanRec struct {
	Name    string            `json:"name"`
	ID      uint64            `json:"id"`
	Parent  uint64            `json:"parent,omitempty"`
	StartMs int64             `json:"start_ms"`
	DurMs   int64             `json:"dur_ms"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// TraceRecorder accumulates completed spans in memory. Workers keep one
// per traced shard request — they may have no event sink of their own,
// and their spans belong in the parent's trace anyway. All methods are
// nil-safe, so untraced requests cost one nil check.
type TraceRecorder struct {
	mu     sync.Mutex
	anchor time.Time
	ids    uint64
	recs   []SpanRec
}

// NewTraceRecorder returns an empty recorder anchored at now.
func NewTraceRecorder() *TraceRecorder {
	return &TraceRecorder{anchor: time.Now()}
}

// Start opens a recorded span under parent (0 = subtree root).
func (r *TraceRecorder) Start(name string, parent uint64, attrs map[string]string) *RecSpan {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	r.ids++
	id := r.ids
	r.mu.Unlock()
	return &RecSpan{
		r: r, name: name, id: id, parent: parent,
		start: time.Now(), startMs: time.Since(r.anchor).Milliseconds(),
		attrs: attrs,
	}
}

// Drain returns the recorded spans and resets the recorder.
func (r *TraceRecorder) Drain() []SpanRec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	recs := r.recs
	r.recs = nil
	return recs
}

// RecSpan is an in-flight recorded span. Nil is inert.
type RecSpan struct {
	r       *TraceRecorder
	name    string
	id      uint64
	parent  uint64
	start   time.Time
	startMs int64
	attrs   map[string]string
}

// ID reports the span's recorder-local id (0 for nil).
func (s *RecSpan) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// SetAttr attaches one attribute before End.
func (s *RecSpan) SetAttr(key, value string) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[key] = value
}

// End completes the span and appends it to the recorder.
func (s *RecSpan) End() {
	if s == nil {
		return
	}
	rec := SpanRec{
		Name: s.name, ID: s.id, Parent: s.parent,
		StartMs: s.startMs,
		DurMs:   time.Since(s.start).Milliseconds(),
		Attrs:   s.attrs,
	}
	s.r.mu.Lock()
	s.r.recs = append(s.r.recs, rec)
	s.r.mu.Unlock()
}

// RootDurMs reports the duration of a recorded subtree's root span (the
// worker's own wall time for the shard), or 0. Dispatchers subtract it
// from the round-trip time to attribute queue/exec/network phases.
func RootDurMs(recs []SpanRec) int64 {
	for _, r := range recs {
		if r.Parent == 0 {
			return r.DurMs
		}
	}
	return 0
}

// FoldSpans grafts a worker-recorded span subtree into this event log,
// nested under parent and stamped with the campaign trace id. Worker
// span ids are remapped through this log's id counter (so they can
// never collide with parent spans) and worker time offsets are
// re-anchored so the subtree's root ends now — the moment the shard
// response finished its round trip. Unknown parents (the subtree root)
// attach to parent.
func (l *EventLog) FoldSpans(parent *Span, trace string, recs []SpanRec) {
	if l == nil || len(recs) == 0 {
		return
	}
	// The subtree root's end, on the worker clock, maps to "now" on
	// ours: that is the one instant both processes observed (response
	// received ≈ response sent, minus network latency already
	// attributed to the dispatch span).
	var rootEnd int64
	for _, r := range recs {
		if end := r.StartMs + r.DurMs; end > rootEnd {
			rootEnd = end
		}
	}
	shift := l.now() - rootEnd
	ids := make(map[uint64]uint64, len(recs))
	for _, r := range recs {
		ids[r.ID] = l.ids.Add(1)
	}
	for _, r := range recs {
		par := parent.ID()
		if mapped, ok := ids[r.Parent]; ok {
			par = mapped
		}
		l.write(Event{
			TSMillis: r.StartMs + shift,
			Kind:     "span",
			Name:     r.Name,
			Span:     ids[r.ID],
			Parent:   par,
			Trace:    trace,
			DurMs:    r.DurMs,
			Attrs:    r.Attrs,
		})
	}
}
