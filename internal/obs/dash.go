package obs

import (
	"fmt"
	"net/http"
	"time"
)

// SSE stream and live dashboard for the -obs-addr endpoint.
//
// GET /events is a Server-Sent Events stream: a full "snapshot" event
// on connect, an "update" event whenever shard/worker/campaign state
// changes, and a heartbeat "snapshot" every second so run counters
// advance even between state transitions. GET /dash is a self-contained
// HTML page consuming that stream — no assets, no dependencies, usable
// from curl's sibling, a browser, over an SSH tunnel.

// eventsHandler serves the SSE stream from the Live view.
func (t *Telemetry) eventsHandler(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	send := func(event string, data []byte) bool {
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	sub := t.Live.Subscribe()
	defer t.Live.Unsubscribe(sub)

	if !send("snapshot", t.Live.SnapshotJSON()) {
		return
	}
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case b := <-sub:
			if !send("update", b) {
				return
			}
		case <-tick.C:
			if !send("snapshot", t.Live.SnapshotJSON()) {
				return
			}
		}
	}
}

// dashHandler serves the live dashboard page.
func dashHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(dashHTML))
}

const dashHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>campaign dashboard</title>
<style>
  body { font: 13px/1.5 ui-monospace, SFMono-Regular, Menlo, monospace;
         background: #11151a; color: #c9d1d9; margin: 1.5rem; }
  h1 { font-size: 15px; color: #e6edf3; }
  h2 { font-size: 13px; color: #8b949e; margin: 1.2rem 0 .4rem; }
  table { border-collapse: collapse; width: 100%; }
  th, td { text-align: left; padding: 2px 10px 2px 0; white-space: nowrap; }
  th { color: #8b949e; font-weight: normal; border-bottom: 1px solid #30363d; }
  .bar { background: #21262d; border-radius: 3px; height: 10px; width: 260px;
         display: inline-block; vertical-align: middle; overflow: hidden; }
  .bar i { background: #2ea043; display: block; height: 100%; width: 0; }
  .state-running  { color: #d29922; }
  .state-done     { color: #3fb950; }
  .state-retrying { color: #f85149; }
  .state-failed   { color: #f85149; }
  .state-up       { color: #3fb950; }
  .state-lost     { color: #f85149; }
  .dim { color: #8b949e; }
  #status { float: right; }
</style>
</head>
<body>
<h1>campaign dashboard <span id="status" class="dim">connecting…</span></h1>
<div id="campaign" class="dim">no campaign running</div>
<h2>shards</h2>
<table><thead><tr>
  <th>shard</th><th>worker</th><th>state</th><th>runs</th><th>att</th>
  <th>wall</th><th>queue</th><th>exec</th><th>net</th>
</tr></thead><tbody id="shards"></tbody></table>
<h2>workers</h2>
<table><thead><tr><th>worker</th><th>pid</th><th>state</th></tr></thead>
<tbody id="workers"></tbody></table>
<h2>completed</h2>
<table><thead><tr><th>campaign</th><th>executor</th><th>runs</th>
<th>retries</th><th>wall</th><th>trace</th></tr></thead>
<tbody id="done"></tbody></table>
<script>
function esc(s) {
  return String(s == null ? "" : s).replace(/[&<>"]/g, function (c) {
    return {"&":"&amp;","<":"&lt;",">":"&gt;","\"":"&quot;"}[c];
  });
}
function ms(v) { return v == null ? "" : v + "ms"; }
function render(snap) {
  var c = snap.campaign;
  var el = document.getElementById("campaign");
  if (c) {
    var pct = c.runs_total ? Math.round(100 * c.runs_done / c.runs_total) : 0;
    el.className = "";
    el.innerHTML = "<b>" + esc(c.campaign) + "</b> on " + esc(c.executor) +
      (c.trace ? " <span class=dim>trace " + esc(c.trace) + "</span>" : "") +
      "<br>runs " + c.runs_done + "/" + c.runs_total +
      " <span class=bar><i style=\"width:" + pct + "%\"></i></span> " + pct + "%" +
      (c.shards_total ? " · shards " + (c.shards_done||0) + "/" + c.shards_total : "") +
      (c.retries ? " · retries " + c.retries : "") +
      " · " + Math.round(c.elapsed_ms/1000) + "s";
  } else {
    el.className = "dim";
    el.textContent = "no campaign running";
  }
  var rows = "";
  (snap.shards || []).forEach(function (s) {
    rows += "<tr><td>" + esc(s.id) + "</td><td>" + esc(s.worker) +
      "</td><td class=state-" + esc(s.state) + ">" + esc(s.state) +
      "</td><td>" + s.runs + "</td><td>" + (s.attempts||"") +
      "</td><td>" + ms(s.wall_ms) + "</td><td>" + ms(s.queue_ms) +
      "</td><td>" + ms(s.exec_ms) + "</td><td>" + ms(s.net_ms) + "</td></tr>";
  });
  document.getElementById("shards").innerHTML = rows;
  rows = "";
  (snap.workers || []).forEach(function (w) {
    rows += "<tr><td>" + esc(w.id) + "</td><td>" + (w.pid||"") +
      "</td><td class=state-" + esc(w.state) + ">" + esc(w.state) + "</td></tr>";
  });
  document.getElementById("workers").innerHTML = rows;
  rows = "";
  (snap.done || []).slice().reverse().forEach(function (d) {
    rows += "<tr><td>" + esc(d.campaign) + "</td><td>" + esc(d.executor) +
      "</td><td>" + d.runs + "</td><td>" + (d.retries||0) +
      "</td><td>" + ms(d.wall_ms) + "</td><td class=dim>" + esc(d.trace) + "</td></tr>";
  });
  document.getElementById("done").innerHTML = rows;
}
var status = document.getElementById("status");
var es = new EventSource("/events");
es.onopen = function () { status.textContent = "live"; };
es.onerror = function () { status.textContent = "disconnected"; };
es.addEventListener("snapshot", function (e) { render(JSON.parse(e.data)); });
es.addEventListener("update", function (e) { render(JSON.parse(e.data)); });
</script>
</body>
</html>
`
