package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTraceIDDeterministic(t *testing.T) {
	if got := TraceID(0xdeadbeef); got != "00000000deadbeef" {
		t.Errorf("TraceID = %q, want 00000000deadbeef", got)
	}
	if TraceID(1) != TraceID(1) {
		t.Error("TraceID not deterministic")
	}
}

func TestTraceContext(t *testing.T) {
	ctx := context.Background()
	if SpanFromContext(ctx) != nil || TraceFromContext(ctx) != "" {
		t.Error("empty context should carry no span or trace")
	}
	l := NewEventLog(&bytes.Buffer{})
	sp := l.StartSpan("campaign.execute", nil)
	ctx = WithTrace(ctx, sp, "0123456789abcdef")
	if SpanFromContext(ctx) != sp {
		t.Error("span not carried through context")
	}
	if got := TraceFromContext(ctx); got != "0123456789abcdef" {
		t.Errorf("trace = %q, want 0123456789abcdef", got)
	}
}

func TestTraceRecorderNilSafe(t *testing.T) {
	var r *TraceRecorder
	sp := r.Start("worker.shard", 0, nil)
	if sp != nil {
		t.Fatal("nil recorder must return nil span")
	}
	sp.SetAttr("k", "v") // must not panic
	sp.End()             // must not panic
	if sp.ID() != 0 {
		t.Error("nil span id != 0")
	}
	if r.Drain() != nil {
		t.Error("nil recorder drains non-nil")
	}
}

func TestTraceRecorderRecordsSubtree(t *testing.T) {
	r := NewTraceRecorder()
	root := r.Start("worker.shard", 0, map[string]string{"shard": "a1"})
	child := r.Start("worker.exec", root.ID(), nil)
	child.SetAttr("runs", "8")
	child.End()
	root.End()

	recs := r.Drain()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	// End order: child first, then root.
	if recs[0].Name != "worker.exec" || recs[1].Name != "worker.shard" {
		t.Fatalf("unexpected record order: %+v", recs)
	}
	if recs[0].Parent != recs[1].ID {
		t.Errorf("child parent = %d, want root id %d", recs[0].Parent, recs[1].ID)
	}
	if recs[1].Parent != 0 {
		t.Errorf("root parent = %d, want 0", recs[1].Parent)
	}
	if recs[0].Attrs["runs"] != "8" {
		t.Errorf("child attrs = %v", recs[0].Attrs)
	}
	if got := RootDurMs(recs); got != recs[1].DurMs {
		t.Errorf("RootDurMs = %d, want root's %d", got, recs[1].DurMs)
	}
	if again := r.Drain(); again != nil {
		t.Errorf("second drain = %v, want nil", again)
	}
}

func TestFoldSpansGraftsWorkerSubtree(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	dispatch := l.StartSpan("dispatch.shard", map[string]string{"shard": "a1"})

	// Worker-recorded subtree with ids that collide with the parent
	// log's (both start at 1) and offsets from a different anchor.
	recs := []SpanRec{
		{Name: "worker.exec", ID: 2, Parent: 1, StartMs: 1000, DurMs: 40},
		{Name: "worker.shard", ID: 1, Parent: 0, StartMs: 990, DurMs: 60},
	}
	l.FoldSpans(dispatch, "feedfacefeedface", recs)
	dispatch.End()

	var spans []Event
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		spans = append(spans, e)
	}
	if len(spans) != 3 {
		t.Fatalf("got %d records, want 3", len(spans))
	}
	byName := map[string]Event{}
	for _, e := range spans {
		byName[e.Name] = e
	}
	shard, exec, disp := byName["worker.shard"], byName["worker.exec"], byName["dispatch.shard"]

	if shard.Parent != disp.Span {
		t.Errorf("worker root parent = %d, want dispatch span %d", shard.Parent, disp.Span)
	}
	if exec.Parent != shard.Span {
		t.Errorf("worker.exec parent = %d, want folded worker.shard id %d", exec.Parent, shard.Span)
	}
	ids := map[uint64]bool{shard.Span: true, exec.Span: true, disp.Span: true}
	if len(ids) != 3 || ids[0] {
		t.Errorf("folded ids must be unique and non-zero: %v", ids)
	}
	for _, e := range []Event{shard, exec} {
		if e.Trace != "feedfacefeedface" {
			t.Errorf("%s trace = %q, want feedfacefeedface", e.Name, e.Trace)
		}
	}
	// Re-anchoring preserves worker-relative offsets: exec started 10ms
	// after the shard root on the worker clock.
	if d := exec.TSMillis - shard.TSMillis; d != 10 {
		t.Errorf("relative offset after fold = %d ms, want 10", d)
	}
	// The subtree root's end maps to fold time, so folded timestamps can
	// never land in this log's future.
	if end := shard.TSMillis + shard.DurMs; end > l.now() {
		t.Errorf("folded root ends at %d, after log now %d", end, l.now())
	}
}

func TestFoldSpansNilAndEmpty(t *testing.T) {
	var l *EventLog
	l.FoldSpans(nil, "t", []SpanRec{{Name: "x", ID: 1}}) // must not panic
	var buf bytes.Buffer
	l2 := NewEventLog(&buf)
	l2.FoldSpans(nil, "t", nil)
	l2.Flush()
	if buf.Len() != 0 {
		t.Errorf("folding no records wrote %q", buf.String())
	}
}

// Satellite: every record must reach the sink as a complete NDJSON line
// without an explicit Flush, so a process killed mid-campaign leaves a
// parseable log.
func TestEventLogFlushesPerRecord(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	l.Emit("dispatch.retry", map[string]string{"shard": "a1"})
	sp := l.StartSpan("campaign.execute", nil)
	sp.End()
	// No Flush, no Close: both records must already be in the sink.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines before any flush, want 2:\n%q", len(lines), buf.String())
	}
	for _, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Errorf("unflushed line %q is not valid NDJSON: %v", line, err)
		}
	}
}

// Satellite: a histogram whose observations all exceed the top bound
// must clamp every quantile to the last finite bound instead of
// reporting garbage from the +Inf bucket.
func TestQuantileAllInOverflow(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("over_seconds", []float64{0.1, 1})
	for i := 0; i < 50; i++ {
		h.Observe(100)
	}
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := h.Quantile(q); got != 1 {
			t.Errorf("Quantile(%v) = %g, want 1 (top bound clamp)", q, got)
		}
	}
	if got := quantileFromCounts(nil, nil, 0.5); got != 0 {
		t.Errorf("quantileFromCounts with no bounds = %g, want 0", got)
	}
}

func TestLiveSnapshotLifecycle(t *testing.T) {
	l := NewLive()
	sub := l.Subscribe()
	defer l.Unsubscribe(sub)

	c := l.StartCampaign("permeability", "fleet", "00000000000000ff", 100)
	l.SetShards(4)
	c.RunDone()
	c.RunDone()
	l.Retry()
	l.WorkerJoin("agent-1", 42)
	l.UpdateShard(ShardStatus{ID: "s1", Worker: "agent-1", State: "done",
		Runs: 25, WallMs: 30, QueueMs: 5, ExecMs: 20, NetMs: 5})
	l.ShardDone()

	snap := l.Snapshot()
	if snap.Campaign == nil {
		t.Fatal("no campaign in snapshot")
	}
	cp := snap.Campaign
	if cp.Campaign != "permeability" || cp.Executor != "fleet" || cp.Trace != "00000000000000ff" {
		t.Errorf("campaign header = %+v", cp)
	}
	if cp.RunsTotal != 100 || cp.RunsDone != 2 || cp.Retries != 1 {
		t.Errorf("run counters = %+v", cp)
	}
	if cp.ShardsTotal != 4 || cp.ShardsDone != 1 {
		t.Errorf("shard counters = %+v", cp)
	}
	if len(snap.Shards) != 1 || snap.Shards[0].Campaign != "permeability" {
		t.Errorf("shards = %+v (campaign must auto-fill)", snap.Shards)
	}
	if len(snap.Workers) != 1 || snap.Workers[0].State != "up" {
		t.Errorf("workers = %+v", snap.Workers)
	}

	if s, ok := l.SlowestShard(); !ok || s.ID != "s1" || s.QueueMs != 5 {
		t.Errorf("SlowestShard = %+v, %v", s, ok)
	}

	l.WorkerLost("agent-1")
	l.EndCampaign(c)
	snap = l.Snapshot()
	if snap.Campaign != nil {
		t.Error("campaign still current after EndCampaign")
	}
	if len(snap.Done) != 1 || snap.Done[0].Runs != 2 || snap.Done[0].Retries != 1 {
		t.Errorf("done = %+v", snap.Done)
	}
	if snap.Workers[0].State != "lost" {
		t.Errorf("worker state = %q, want lost", snap.Workers[0].State)
	}

	// The subscriber must have received at least one snapshot, and the
	// payload must be valid JSON.
	select {
	case b := <-sub:
		var s Snapshot
		if err := json.Unmarshal(b, &s); err != nil {
			t.Errorf("published snapshot is not JSON: %v", err)
		}
	case <-time.After(time.Second):
		t.Error("no snapshot published to subscriber")
	}
}

func TestLiveNilSafe(t *testing.T) {
	var l *Live
	c := l.StartCampaign("x", "serial", "", 1)
	c.RunDone()
	l.SetShards(1)
	l.ShardDone()
	l.Retry()
	l.UpdateShard(ShardStatus{ID: "0"})
	l.WorkerJoin("w", 1)
	l.WorkerLost("w")
	l.EndCampaign(c)
	if _, ok := l.SlowestShard(); ok {
		t.Error("nil Live reports a slowest shard")
	}
	if l.Subscribe() != nil {
		t.Error("nil Live returns a subscription")
	}
	var lc *LiveCampaign
	lc.RunDone() // must not panic
}
