package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// help holds the exposition help text per metric family. Families
// without an entry still render, with a generic help line.
var help = map[string]string{
	"repro_campaigns_total":                   "Campaigns executed end to end.",
	"repro_campaign_runs_total":               "Runs planned per campaign.",
	"repro_campaign_runs_done_total":          "Runs completed per campaign.",
	"repro_run_retries_total":                 "Run re-attempts by the Retry executor.",
	"repro_run_duration_seconds":              "Per-run wall time.",
	"repro_trace_worker_spans_total":          "Worker-recorded spans folded into the parent trace.",
	"repro_shards_total":                      "Shards partitioned for execution.",
	"repro_shards_done_total":                 "Shards completed.",
	"repro_shard_duration_seconds":            "Per-shard wall time.",
	"repro_dispatch_shards_total":             "Shards planned by the subprocess dispatcher.",
	"repro_dispatch_shards_resumed_total":     "Shards replayed from a checkpoint journal.",
	"repro_dispatch_shards_done_total":        "Shards completed by the subprocess dispatcher.",
	"repro_dispatch_shard_retries_total":      "Shard re-dispatches after retryable failures.",
	"repro_dispatch_integrity_failures_total": "Integrity-check failures on shard responses.",
	"repro_dispatch_permanent_failures_total": "Permanent (campaign-fatal) shard failures.",
	"repro_dispatch_worker_spawns_total":      "Worker processes spawned.",
	"repro_dispatch_worker_kills_total":       "Worker processes killed or destroyed.",
	"repro_dispatch_degraded":                 "1 while the dispatcher executes shards in-process.",
	"repro_worker_runs_total":                 "Runs executed inside worker processes.",
	"repro_chaos_faults_total":                "Faults injected by the chaos executor.",
	"repro_golden_cache_hits_total":           "Golden-run cache hits.",
	"repro_golden_cache_misses_total":         "Golden-run cache misses.",
	"repro_golden_cache_size":                 "Golden runs currently cached.",
	"repro_rig_acquires_total":                "Rig acquisitions (reuse + build).",
	"repro_rig_reuses_total":                  "Rig acquisitions served by resetting a pooled rig.",
	"repro_rig_builds_total":                  "Rig acquisitions that built a fresh rig.",
	"repro_rig_releases_total":                "Rigs returned to the pool.",
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE headers per family,
// histograms expanded into cumulative _bucket series plus _sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	r.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		r.mu.Lock()
		f := r.families[name]
		renders := append([]string(nil), f.order...)
		series := make([]any, len(renders))
		for i, lr := range renders {
			series[i] = f.series[lr]
		}
		kind, bounds := f.kind, f.bounds
		r.mu.Unlock()

		h := help[name]
		if h == "" {
			h = "No help text registered."
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, h, name, kind); err != nil {
			return err
		}
		for i, lr := range renders {
			var err error
			switch v := series[i].(type) {
			case *Counter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", name, lr, v.Value())
			case *Gauge:
				_, err = fmt.Fprintf(w, "%s%s %d\n", name, lr, v.Value())
			case *Histogram:
				err = writePromHistogram(w, name, lr, bounds, v)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromHistogram renders one histogram series: cumulative buckets
// with the le label spliced into any existing label render, then sum
// and count.
func writePromHistogram(w io.Writer, name, labels string, bounds []float64, h *Histogram) error {
	counts := h.Counts()
	var cum int64
	for i, b := range bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, spliceLabel(labels, "le", formatBound(b)), cum); err != nil {
			return err
		}
	}
	cum += counts[len(bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, spliceLabel(labels, "le", "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, h.sum.load()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.count.Load())
	return err
}

// spliceLabel appends key="value" to a rendered label set.
func spliceLabel(labels, key, value string) string {
	extra := fmt.Sprintf("%s=%q", key, value)
	if labels == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(labels, "}") + "," + extra + "}"
}

// formatBound renders a bucket bound the way Prometheus expects
// (shortest decimal form).
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}
