package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total")
	labeled := r.Counter("test_labeled_total", L("k", "v"))
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				labeled.Add(2)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Errorf("counter = %d, want %d", got, goroutines*per)
	}
	if got := labeled.Value(); got != 2*goroutines*per {
		t.Errorf("labeled counter = %d, want %d", got, 2*goroutines*per)
	}
	// Same name+labels resolves to the same series regardless of
	// label order at the call site.
	r2 := r.Counter("test_two_labels_total", L("a", "1"), L("b", "2"))
	r2.Inc()
	if got := r.Counter("test_two_labels_total", L("b", "2"), L("a", "1")).Value(); got != 1 {
		t.Errorf("label order changed series identity: got %d, want 1", got)
	}
}

func TestCounterMonotone(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3) // ignored: counters never go down
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
}

func TestNilInstrumentsAreInert(t *testing.T) {
	var (
		c *Counter
		g *Gauge
		h *Histogram
		l *EventLog
		s *Span
		p *Progress
		r *Registry
		n *Telemetry
	)
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveSince(time.Now())
	l.Emit("x", nil)
	l.Flush()
	s.End()
	s.Child("y", nil).End()
	p.StartCampaign("x", 1)
	p.RunDone(1)
	p.ShardDone()
	p.Retry()
	p.Stop()
	n.Close()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil instruments reported non-zero values")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Error("nil registry returned non-nil instruments")
	}
	if r.Snapshot() != nil {
		t.Error("nil registry returned a snapshot")
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Errorf("nil registry WritePrometheus: %v", err)
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2, 100} {
		h.Observe(v)
	}
	want := []int64{2, 1, 1, 2} // <=0.01, <=0.1, <=1, +Inf
	got := h.Counts()
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if got := h.sum.load(); math.Abs(got-102.565) > 1e-9 {
		t.Errorf("sum = %g, want 102.565", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", []float64{1, 2, 4, 8})
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	// 10 samples uniformly in (1,2]: p50 should interpolate to ~1.5.
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	if got := h.Quantile(0.5); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("p50 = %g, want 1.5", got)
	}
	// Overflow samples clamp to the top bound.
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	if got := h.Quantile(0.99); got != 8 {
		t.Errorf("p99 = %g, want 8 (top bound)", got)
	}
}

func TestSpanNesting(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	root := l.StartSpan("campaign.execute", map[string]string{"campaign": "permeability"})
	child := root.Child("shard.run", map[string]string{"shard": "a1"})
	grand := child.Child("run", nil)
	l.Emit("retry", map[string]string{"attempt": "2"})
	grand.End()
	child.End()
	root.End()
	l.Flush()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d records, want 4:\n%s", len(lines), buf.String())
	}
	var evs []Event
	for _, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		evs = append(evs, e)
	}
	// Records: retry event first (spans emit on End), then spans
	// innermost-first.
	if evs[0].Kind != "event" || evs[0].Name != "retry" {
		t.Errorf("first record = %+v, want retry event", evs[0])
	}
	byName := map[string]Event{}
	for _, e := range evs[1:] {
		if e.Kind != "span" {
			t.Errorf("record %+v kind = %q, want span", e, e.Kind)
		}
		byName[e.Name] = e
	}
	rootEv, childEv, grandEv := byName["campaign.execute"], byName["shard.run"], byName["run"]
	if rootEv.Parent != 0 {
		t.Errorf("root parent = %d, want 0", rootEv.Parent)
	}
	if childEv.Parent != rootEv.Span {
		t.Errorf("child parent = %d, want root id %d", childEv.Parent, rootEv.Span)
	}
	if grandEv.Parent != childEv.Span {
		t.Errorf("grandchild parent = %d, want child id %d", grandEv.Parent, childEv.Span)
	}
	ids := map[uint64]bool{rootEv.Span: true, childEv.Span: true, grandEv.Span: true}
	if len(ids) != 3 || ids[0] {
		t.Errorf("span ids not unique and non-zero: %v", ids)
	}
	if rootEv.Attrs["campaign"] != "permeability" {
		t.Errorf("root attrs = %v", rootEv.Attrs)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("repro_campaigns_total").Add(3)
	r.Counter("repro_campaign_runs_done_total", L("campaign", "permeability")).Add(640)
	r.Gauge("repro_golden_cache_size").Set(12)
	h := r.Histogram("repro_shard_duration_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP repro_campaigns_total Campaigns executed end to end.\n",
		"# TYPE repro_campaigns_total counter\n",
		"repro_campaigns_total 3\n",
		"repro_campaign_runs_done_total{campaign=\"permeability\"} 640\n",
		"# TYPE repro_golden_cache_size gauge\n",
		"repro_golden_cache_size 12\n",
		"# TYPE repro_shard_duration_seconds histogram\n",
		"repro_shard_duration_seconds_bucket{le=\"0.1\"} 1\n",
		"repro_shard_duration_seconds_bucket{le=\"1\"} 2\n",
		"repro_shard_duration_seconds_bucket{le=\"+Inf\"} 3\n",
		"repro_shard_duration_seconds_sum 5.55\n",
		"repro_shard_duration_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotDeltaMerge(t *testing.T) {
	worker := NewRegistry()
	worker.Counter("repro_worker_runs_total", L("campaign", "permeability")).Add(10)
	wh := worker.Histogram("repro_run_duration_seconds", []float64{0.1, 1})
	wh.Observe(0.05)

	var d DeltaTracker
	first := d.Delta(worker)
	if len(first) != 2 {
		t.Fatalf("first delta = %d series, want 2: %+v", len(first), first)
	}

	parent := NewRegistry()
	parent.Merge(first)

	// Nothing moved: empty delta, merge is a no-op.
	if extra := d.Delta(worker); len(extra) != 0 {
		t.Errorf("idle delta = %+v, want none", extra)
	}

	worker.Counter("repro_worker_runs_total", L("campaign", "permeability")).Add(5)
	wh.Observe(0.5)
	parent.Merge(d.Delta(worker))

	if got := parent.Counter("repro_worker_runs_total", L("campaign", "permeability")).Value(); got != 15 {
		t.Errorf("merged counter = %d, want 15", got)
	}
	ph := parent.Histogram("repro_run_duration_seconds", []float64{0.1, 1})
	if got := ph.Count(); got != 2 {
		t.Errorf("merged histogram count = %d, want 2", got)
	}
	wantCounts := []int64{1, 1, 0}
	for i, c := range ph.Counts() {
		if c != wantCounts[i] {
			t.Errorf("merged bucket[%d] = %d, want %d", i, c, wantCounts[i])
		}
	}
	// Gauges never forward.
	worker.Gauge("repro_golden_cache_size").Set(99)
	for _, s := range d.Delta(worker) {
		if strings.Contains(s.Name, "cache_size") {
			t.Errorf("gauge leaked into delta: %+v", s)
		}
	}
}

func TestProgressLine(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, time.Nanosecond) // render on every update
	p.StartCampaign("permeability", 100)
	p.SetShards(4)
	p.RunDone(25)
	p.ShardDone()
	p.Retry()
	p.Stop()
	out := buf.String()
	for _, want := range []string{"[permeability]", "shards 1/4", "runs 25/100", "25.0%", "retries 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress line missing %q:\n%q", want, out)
		}
	}
	if !strings.HasSuffix(out, "\n") {
		t.Error("Stop did not terminate the line")
	}
	// Rate limiting: a 1h interval renders at most the forced final line.
	var buf2 bytes.Buffer
	p2 := NewProgress(&buf2, time.Hour)
	p2.StartCampaign("x", 1000)
	for i := 0; i < 1000; i++ {
		p2.RunDone(1)
	}
	p2.Stop()
	if n := strings.Count(buf2.String(), "\r"); n > 1 {
		t.Errorf("rate-limited progress rendered %d times, want <= 1", n)
	}
}

func TestInstallAndEnsureActive(t *testing.T) {
	prev := Install(nil)
	defer Install(prev)

	if Active() != nil {
		t.Fatal("Active() != nil after Install(nil)")
	}
	tel := EnsureActive()
	if tel == nil || Active() != tel {
		t.Fatal("EnsureActive did not install a telemetry")
	}
	if EnsureActive() != tel {
		t.Error("second EnsureActive replaced the active telemetry")
	}
	tel.Campaigns.Inc()
	if tel.Reg.Counter("repro_campaigns_total").Value() != 1 {
		t.Error("pre-resolved instrument not backed by the registry")
	}
	tel.Close()
}

// BenchmarkDisabledHotPath pins the disabled-telemetry fast path at
// zero allocations: one atomic load, a nil check, and nil-safe method
// calls that return immediately.
func BenchmarkDisabledHotPath(b *testing.B) {
	prev := Install(nil)
	defer Install(prev)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tel := Active(); tel != nil {
			tel.Campaigns.Inc()
			tel.RunDur.Observe(1)
			tel.Progress.RunDone(1)
		}
	}
	if testing.AllocsPerRun(100, func() {
		if tel := Active(); tel != nil {
			tel.RigAcquires.Inc()
			tel.ShardDur.Observe(0.5)
		}
	}) != 0 {
		b.Fatal("disabled telemetry path allocates")
	}
}
