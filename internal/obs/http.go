package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// publishOnce guards the process-wide expvar registration (expvar
// panics on duplicate names).
var publishOnce sync.Once

// Handler builds the diagnostics mux for this telemetry:
//
//	/metrics      Prometheus text exposition
//	/healthz      JSON liveness (uptime, series count)
//	/debug/vars   expvar (Go runtime vars + repro_metrics snapshot)
//	/debug/pprof  net/http/pprof profiles
//	/events       Server-Sent Events live campaign stream
//	/dash         live HTML dashboard consuming /events
func (t *Telemetry) Handler() http.Handler {
	publishOnce.Do(func() {
		expvar.Publish("repro_metrics", expvar.Func(func() any {
			return Active().Snapshot()
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = t.Reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"status":"ok","uptime_s":%.3f,"series":%d}`+"\n",
			t.Uptime().Seconds(), len(t.Reg.Snapshot()))
	})
	mux.HandleFunc("/events", t.eventsHandler)
	mux.HandleFunc("/dash", dashHandler)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Snapshot is a nil-safe snapshot of the telemetry's registry, used by
// the expvar bridge.
func (t *Telemetry) Snapshot() []Series {
	if t == nil {
		return nil
	}
	return t.Reg.Snapshot()
}

// Serve starts the diagnostics HTTP server on addr (host:port; an
// empty port picks a free one). It returns the bound address and a
// shutdown function. The server runs until the process exits or the
// shutdown function is called; serve errors after shutdown are
// ignored.
func (t *Telemetry) Serve(addr string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: t.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
