package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric label pair. Series within a family are keyed by
// their rendered label set, sorted by key, so label order at the call
// site never creates duplicate series.
type Label struct{ Key, Value string }

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotone cumulative count. All methods are nil-safe
// no-ops, which is what makes the disabled telemetry path free.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored: counters are monotone).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DurationBuckets are the default histogram bounds for wall-clock
// observations, in seconds: 1 ms to ~4 min on a doubling scale. Fixed
// bounds keep Observe allocation-free and make parent/worker histogram
// merging exact (bucket counts add).
var DurationBuckets = []float64{
	0.001, 0.002, 0.004, 0.008, 0.016, 0.032, 0.064, 0.128,
	0.256, 0.512, 1.024, 2.048, 4.096, 8.192, 16.384, 32.768,
	65.536, 131.072, 262.144,
}

// Histogram counts observations into fixed buckets. bounds[i] is the
// inclusive upper edge of bucket i; one overflow bucket catches the
// rest. Observe is lock-free (atomic adds only).
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last = +Inf bucket
	sum    atomicFloat
	count  atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.add(v)
	h.count.Add(1)
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h != nil {
		h.Observe(time.Since(start).Seconds())
	}
}

// Count reads the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Counts copies the per-bucket counts (len(bounds)+1 entries).
func (h *Histogram) Counts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 < q < 1) from the bucket counts,
// interpolating linearly inside the containing bucket. Samples in the
// overflow bucket are attributed to the top bound. It returns 0 when
// the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return quantileFromCounts(h.bounds, h.Counts(), q)
}

// QuantileFromCounts estimates the q-quantile of a bucket-count vector
// (len(bounds)+1 entries, last = overflow) without a live Histogram —
// the engine uses it on snapshot deltas to report per-campaign shard
// latency percentiles.
func QuantileFromCounts(bounds []float64, counts []int64, q float64) float64 {
	return quantileFromCounts(bounds, counts, q)
}

// quantileFromCounts is the bucket-walk shared by live histograms and
// snapshot deltas.
func quantileFromCounts(bounds []float64, counts []int64, q float64) float64 {
	if len(bounds) == 0 {
		return 0
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(bounds) { // overflow bucket
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(prev)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return bounds[len(bounds)-1]
}

// atomicFloat is a float64 accumulated with CAS on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// series kinds.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is one metric name: its kind, histogram bounds, and every
// labeled series registered (or merged) under it.
type family struct {
	name   string
	kind   string
	bounds []float64
	series map[string]any // label-render -> *Counter/*Gauge/*Histogram
	order  []string       // label renders, registration order
}

// Registry holds the process's metric families. Lookup methods are
// nil-safe and return nil instruments, so code written against a
// possibly-absent registry needs no branches beyond the instrument's
// own nil checks. Instrument resolution takes the registry lock; hot
// paths resolve once and keep the pointer.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// renderLabels renders a sorted label set: `{k1="v1",k2="v2"}` or "".
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns (creating if needed) the series of one family.
func (r *Registry) lookup(name, kind string, bounds []float64, labelRender string) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: kind, bounds: bounds, series: make(map[string]any)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", name, f.kind, kind))
	}
	s, ok := f.series[labelRender]
	if !ok {
		switch kind {
		case kindCounter:
			s = &Counter{}
		case kindGauge:
			s = &Gauge{}
		case kindHistogram:
			h := &Histogram{bounds: f.bounds}
			h.counts = make([]atomic.Int64, len(f.bounds)+1)
			s = h
		}
		f.series[labelRender] = s
		f.order = append(f.order, labelRender)
	}
	return s
}

// Counter returns the counter series for name and labels, creating it
// on first use. Nil-safe: a nil registry returns a nil counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindCounter, nil, renderLabels(labels)).(*Counter)
}

// Gauge returns the gauge series for name and labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindGauge, nil, renderLabels(labels)).(*Gauge)
}

// Histogram returns the histogram series for name and labels with the
// given bucket bounds (the family's first registration wins the
// bounds; nil selects DurationBuckets).
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DurationBuckets
	}
	return r.lookup(name, kindHistogram, bounds, renderLabels(labels)).(*Histogram)
}

// Series is one metric series' state, used for snapshots, wire
// forwarding (worker -> parent metric frames) and merging. Name carries
// the rendered labels; histogram state travels as bucket counts plus
// sum so merges are exact.
type Series struct {
	Name   string    `json:"name"` // family name + rendered labels
	Kind   string    `json:"kind"`
	Value  int64     `json:"value,omitempty"`  // counter/gauge
	Sum    float64   `json:"sum,omitempty"`    // histogram
	Count  int64     `json:"count,omitempty"`  // histogram
	Bounds []float64 `json:"bounds,omitempty"` // histogram
	Counts []int64   `json:"counts,omitempty"` // histogram, len(Bounds)+1
}

// Snapshot captures every series' current state, in registration order.
func (r *Registry) Snapshot() []Series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Series
	for _, name := range r.order {
		f := r.families[name]
		for _, lr := range f.order {
			s := Series{Name: name + lr, Kind: f.kind}
			switch v := f.series[lr].(type) {
			case *Counter:
				s.Value = v.Value()
			case *Gauge:
				s.Value = v.Value()
			case *Histogram:
				s.Sum = v.sum.load()
				s.Count = v.count.Load()
				s.Bounds = f.bounds
				s.Counts = v.Counts()
			}
			out = append(out, s)
		}
	}
	return out
}

// DeltaTracker turns successive snapshots of one registry into
// forwardable deltas. Worker processes keep one per connection and ship
// only what changed since the last frame; gauges are skipped (summing
// instantaneous values across processes is meaningless).
type DeltaTracker struct {
	prev map[string]Series
}

// Delta returns the counter/histogram movement since the previous call
// and advances the tracker.
func (d *DeltaTracker) Delta(r *Registry) []Series {
	snap := r.Snapshot()
	if d.prev == nil {
		d.prev = make(map[string]Series, len(snap))
	}
	var out []Series
	for _, s := range snap {
		prev := d.prev[s.Name]
		switch s.Kind {
		case kindCounter:
			if dv := s.Value - prev.Value; dv > 0 {
				out = append(out, Series{Name: s.Name, Kind: s.Kind, Value: dv})
			}
		case kindHistogram:
			if s.Count > prev.Count {
				ds := Series{
					Name: s.Name, Kind: s.Kind,
					Sum:    s.Sum - prev.Sum,
					Count:  s.Count - prev.Count,
					Bounds: s.Bounds,
					Counts: make([]int64, len(s.Counts)),
				}
				for i := range s.Counts {
					ds.Counts[i] = s.Counts[i]
					if i < len(prev.Counts) {
						ds.Counts[i] -= prev.Counts[i]
					}
				}
				out = append(out, ds)
			}
		}
		d.prev[s.Name] = s
	}
	return out
}

// splitSeriesName separates a rendered series name into family name and
// label render.
func splitSeriesName(name string) (fam, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// Merge folds counter and histogram deltas — typically forwarded from a
// worker process — into this registry, creating series as needed.
// Gauges and malformed entries are ignored.
func (r *Registry) Merge(deltas []Series) {
	if r == nil {
		return
	}
	for _, s := range deltas {
		fam, labels := splitSeriesName(s.Name)
		if fam == "" {
			continue
		}
		switch s.Kind {
		case kindCounter:
			r.lookup(fam, kindCounter, nil, labels).(*Counter).Add(s.Value)
		case kindHistogram:
			bounds := s.Bounds
			if bounds == nil {
				bounds = DurationBuckets
			}
			h, ok := r.lookup(fam, kindHistogram, bounds, labels).(*Histogram)
			if !ok || len(s.Counts) != len(h.counts) {
				continue
			}
			for i, c := range s.Counts {
				if c > 0 {
					h.counts[i].Add(c)
				}
			}
			h.sum.add(s.Sum)
			h.count.Add(s.Count)
		}
	}
}
