package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Progress renders a single live status line (normally on stderr):
//
//	[permeability] shards 12/16 runs 480/640 75.0% 1893 runs/s eta 0s retries 2
//
// Updates from any goroutine are cheap atomic stores; rendering is
// rate-limited (default ~1 Hz) and happens on the updating goroutine —
// there is no background ticker, so an idle process writes nothing.
// All methods are nil-safe no-ops.
type Progress struct {
	mu       sync.Mutex
	w        io.Writer
	interval time.Duration
	campaign string
	start    time.Time
	wrote    bool

	lastRender atomic.Int64 // ns since start of last render
	runsTotal  atomic.Int64
	runsDone   atomic.Int64
	shards     atomic.Int64
	shardsDone atomic.Int64
	retries    atomic.Int64
	stopped    atomic.Bool
}

// NewProgress builds a progress line writing to w. interval <= 0
// selects one second.
func NewProgress(w io.Writer, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = time.Second
	}
	return &Progress{w: w, interval: interval, start: time.Now()}
}

// StartCampaign resets the line for a new campaign of n planned runs.
func (p *Progress) StartCampaign(name string, runs int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.campaign = name
	p.start = time.Now()
	p.mu.Unlock()
	p.runsTotal.Store(int64(runs))
	p.runsDone.Store(0)
	p.shards.Store(0)
	p.shardsDone.Store(0)
	p.lastRender.Store(0)
}

// SetShards records the shard count of the current campaign.
func (p *Progress) SetShards(n int) {
	if p == nil {
		return
	}
	p.shards.Store(int64(n))
	p.maybeRender(false)
}

// RunDone counts n completed runs.
func (p *Progress) RunDone(n int) {
	if p == nil {
		return
	}
	p.runsDone.Add(int64(n))
	p.maybeRender(false)
}

// ShardDone counts one completed shard.
func (p *Progress) ShardDone() {
	if p == nil {
		return
	}
	p.shardsDone.Add(1)
	p.maybeRender(false)
}

// Retry counts one retried run or re-dispatched shard.
func (p *Progress) Retry() {
	if p == nil {
		return
	}
	p.retries.Add(1)
	p.maybeRender(false)
}

// Stop renders a final line (if anything was ever rendered) and
// terminates it with a newline. Further updates are ignored.
func (p *Progress) Stop() {
	if p == nil || !p.stopped.CompareAndSwap(false, true) {
		return
	}
	p.maybeRender(true)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.wrote {
		fmt.Fprintln(p.w)
	}
}

// maybeRender redraws the line when the rate limit allows (or when
// forced by Stop).
func (p *Progress) maybeRender(force bool) {
	if p.stopped.Load() && !force {
		return
	}
	now := time.Since(p.start).Nanoseconds()
	last := p.lastRender.Load()
	if !force && now-last < p.interval.Nanoseconds() {
		return
	}
	if !p.lastRender.CompareAndSwap(last, now) {
		return // another goroutine is rendering
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	done, total := p.runsDone.Load(), p.runsTotal.Load()
	elapsed := time.Since(p.start).Seconds()
	var rate float64
	if elapsed > 0 {
		rate = float64(done) / elapsed
	}
	eta := "?"
	if rate > 0 && total > done {
		eta = (time.Duration(float64(total-done) / rate * float64(time.Second))).Round(time.Second).String()
	} else if done >= total {
		eta = "0s"
	}
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(done) / float64(total)
	}
	line := fmt.Sprintf("[%s] shards %d/%d runs %d/%d %.1f%% %.0f runs/s eta %s retries %d",
		p.campaign, p.shardsDone.Load(), p.shards.Load(), done, total, pct, rate, eta, p.retries.Load())
	// \r + trailing-space pad keeps a shrinking line from leaving
	// stale characters on the terminal.
	fmt.Fprintf(p.w, "\r%-100s", line)
	p.wrote = true
}
