package ea

import (
	"strings"
	"testing"

	"repro/internal/model"
)

func bankSystem(t *testing.T) *model.Bus {
	t.Helper()
	sys, err := model.NewBuilder("bank").
		AddSignal("in", model.Uint(16), model.AsSystemInput()).
		AddSignal("sv", model.Uint(16)).
		AddSignal("ctr", model.Uint(16)).
		AddSignal("out", model.Uint(8), model.AsSystemOutput(1)).
		AddModule("M", model.In("in"), model.Out("sv", "ctr")).
		AddModule("N", model.In("sv", "ctr"), model.Out("out")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return model.NewBus(sys)
}

func bankSpecs() []Spec {
	return []Spec{
		{Name: "EA-sv", Signal: "sv", Kind: KindBehaviour, Min: 0, Max: 1000, MaxUp: 50, MaxDown: 50},
		{Name: "EA-ctr", Signal: "ctr", Kind: KindCounter, MinStep: 0, MaxStep: 10, WrapWidth: 16},
	}
}

func TestNewBankErrors(t *testing.T) {
	bus := bankSystem(t)
	if _, err := NewBank(bus, 0, bankSpecs()); err == nil {
		t.Error("zero period accepted")
	}
	bad := bankSpecs()
	bad[0].Signal = "ghost"
	if _, err := NewBank(bus, 10, bad); err == nil || !strings.Contains(err.Error(), "unknown signal") {
		t.Errorf("unknown signal not rejected: %v", err)
	}
	dup := bankSpecs()
	dup[1].Name = dup[0].Name
	if _, err := NewBank(bus, 10, dup); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate name not rejected: %v", err)
	}
	inv := bankSpecs()
	inv[0].Max = -5
	if _, err := NewBank(bus, 10, inv); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestBankChecksOnPeriodOnly(t *testing.T) {
	bus := bankSystem(t)
	b, err := NewBank(bus, 10, bankSpecs())
	if err != nil {
		t.Fatal(err)
	}
	bus.Poke("sv", 5000) // out of range
	b.Hook(3)            // off-period: no check
	if b.Detected() {
		t.Error("off-period hook performed a check")
	}
	b.Hook(10)
	if !b.Detected() {
		t.Error("on-period hook did not detect out-of-range value")
	}
}

func TestBankDetectedByAndFirstDetection(t *testing.T) {
	bus := bankSystem(t)
	b, err := NewBank(bus, 10, bankSpecs())
	if err != nil {
		t.Fatal(err)
	}
	bus.Poke("sv", 500)
	bus.Poke("ctr", 0)
	b.Hook(0)
	bus.Poke("ctr", 500) // counter jump
	b.Hook(10)
	if got := b.DetectedBy(); len(got) != 1 || got[0] != "EA-ctr" {
		t.Errorf("DetectedBy() = %v, want [EA-ctr]", got)
	}
	if got := b.FirstDetectionMs(); got != 10 {
		t.Errorf("FirstDetectionMs() = %d, want 10", got)
	}
	a, ok := b.Assertion("EA-sv")
	if !ok {
		t.Fatal("Assertion(EA-sv) missing")
	}
	if a.Detected() {
		t.Error("EA-sv fired spuriously")
	}
	if _, ok := b.Assertion("nope"); ok {
		t.Error("Assertion(nope) found")
	}
}

func TestBankResetAndCosts(t *testing.T) {
	bus := bankSystem(t)
	b, err := NewBank(bus, 10, bankSpecs())
	if err != nil {
		t.Fatal(err)
	}
	bus.Poke("sv", 9999)
	b.Hook(0)
	if !b.Detected() {
		t.Fatal("setup: nothing detected")
	}
	b.Reset()
	if b.Detected() {
		t.Error("Detected() true after Reset")
	}
	if got := b.FirstDetectionMs(); got != -1 {
		t.Errorf("FirstDetectionMs() = %d after Reset, want -1", got)
	}

	c := b.TotalCost()
	if c.ROMBytes != 50+25 || c.RAMBytes != 14+13 {
		t.Errorf("TotalCost() = %+v, want ROM 75 RAM 27", c)
	}
	sub, err := b.SubsetCost([]string{"EA-ctr"})
	if err != nil {
		t.Fatal(err)
	}
	if sub.ROMBytes != 25 || sub.RAMBytes != 13 {
		t.Errorf("SubsetCost() = %+v", sub)
	}
	if _, err := b.SubsetCost([]string{"nope"}); err == nil {
		t.Error("SubsetCost(unknown) = nil error")
	}
}

func TestBankNeverFiresOnQuietSystem(t *testing.T) {
	bus := bankSystem(t)
	b, err := NewBank(bus, 10, bankSpecs())
	if err != nil {
		t.Fatal(err)
	}
	bus.Poke("sv", 100)
	bus.Poke("ctr", 0)
	for now := int64(0); now < 1000; now += 10 {
		bus.Poke("sv", 100+(now/10)%3)
		bus.Poke("ctr", model.Word(now/10*5))
		b.Hook(now)
	}
	if b.Detected() {
		t.Errorf("false positives on nominal trajectories: %v", b.DetectedBy())
	}
}

func TestWriteBankChecksEveryWrite(t *testing.T) {
	bus := bankSystem(t)
	wb, err := NewWriteBank(bus, []Spec{
		{Name: "W-ctr", Signal: "ctr", Kind: KindCounter, MinStep: 0, MaxStep: 10, WrapWidth: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	bus.OnWrite(wb.WriteHook())

	sys := bus.System()
	m, _ := sys.Module("M")
	ex := model.NewExec(bus, m, 0)

	ex.Out(2, 0)
	wb.Hook(5)
	ex.Out(2, 8) // plausible step
	if wb.Detected() {
		t.Fatal("plausible write fired")
	}
	ex.Out(2, 100) // implausible jump, mid-period: a sampler would miss it if corrected
	if !wb.Detected() {
		t.Fatal("implausible write not caught")
	}
	a, ok := wb.Assertion("ctr")
	if !ok {
		t.Fatal("assertion lookup failed")
	}
	if got := a.FirstDetectionMs(); got != 5 {
		t.Errorf("FirstDetectionMs = %d, want 5 (clock from Hook)", got)
	}
	wb.Reset()
	if wb.Detected() {
		t.Error("Detected after Reset")
	}
}

func TestWriteBankErrors(t *testing.T) {
	bus := bankSystem(t)
	if _, err := NewWriteBank(bus, []Spec{{Name: "x", Signal: "ghost", Kind: KindBool}}); err == nil {
		t.Error("unknown signal accepted")
	}
	if _, err := NewWriteBank(bus, []Spec{
		{Name: "a", Signal: "sv", Kind: KindBool},
		{Name: "b", Signal: "sv", Kind: KindBool},
	}); err == nil {
		t.Error("duplicate signal accepted")
	}
	if _, err := NewWriteBank(bus, []Spec{{Name: "a", Signal: "sv", Kind: Kind(99)}}); err == nil {
		t.Error("invalid spec accepted")
	}
	wb, err := NewWriteBank(bus, []Spec{{Name: "a", Signal: "sv", Kind: KindBool}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(wb.Assertions()); got != 1 {
		t.Errorf("Assertions() = %d", got)
	}
}
