package ea

import (
	"fmt"

	"repro/internal/model"
)

// WriteBank deploys assertions that check on every write to their
// guarded signal — the paper's integration, where EAs are functions
// executed inline with the software and see every produced value. The
// sampling Bank, by contrast, can miss transients that self-correct
// between check instants (see EXPERIMENTS.md, Table 4 discussion).
//
// Install Hook as a scheduler pre-slot hook (it keeps the clock used
// for latency accounting) and WriteHook on the bus.
type WriteBank struct {
	bus     *model.Bus
	asserts map[model.SignalID]*Assertion
	order   []*Assertion
	nowMs   int64
}

// NewWriteBank deploys write-triggered assertions for the specs. At
// most one assertion per signal (a write dispatches to its signal's
// assertion).
func NewWriteBank(bus *model.Bus, specs []Spec) (*WriteBank, error) {
	b := &WriteBank{
		bus:     bus,
		asserts: make(map[model.SignalID]*Assertion, len(specs)),
	}
	for _, s := range specs {
		if _, ok := bus.System().Signal(s.Signal); !ok {
			return nil, fmt.Errorf("ea: spec %q guards unknown signal %q", s.Name, s.Signal)
		}
		if _, dup := b.asserts[s.Signal]; dup {
			return nil, fmt.Errorf("ea: write bank already guards signal %q", s.Signal)
		}
		a, err := New(s)
		if err != nil {
			return nil, err
		}
		b.asserts[s.Signal] = a
		b.order = append(b.order, a)
	}
	return b, nil
}

// Hook maintains the bank clock; install as a pre-slot hook.
func (b *WriteBank) Hook(nowMs int64) { b.nowMs = nowMs }

// WriteHook returns the bus write hook dispatching checks. The checked
// value is the stored (post-mask) value, interpreted per the signal
// type — exactly what downstream readers will observe.
func (b *WriteBank) WriteHook() model.WriteHook {
	return func(port model.PortRef, sig model.SignalID, oldRaw, newRaw model.Word) {
		a, ok := b.asserts[sig]
		if !ok {
			return
		}
		s, _ := b.bus.System().Signal(sig)
		a.Check(s.Type.FromRaw(newRaw), b.nowMs)
	}
}

// Assertions returns the deployed assertions in spec order.
func (b *WriteBank) Assertions() []*Assertion {
	return append([]*Assertion(nil), b.order...)
}

// Assertion returns the assertion guarding the signal.
func (b *WriteBank) Assertion(sig model.SignalID) (*Assertion, bool) {
	a, ok := b.asserts[sig]
	return a, ok
}

// Detected reports whether any assertion fired this run.
func (b *WriteBank) Detected() bool {
	for _, a := range b.order {
		if a.Detected() {
			return true
		}
	}
	return false
}

// Reset clears all assertion state.
func (b *WriteBank) Reset() {
	for _, a := range b.order {
		a.Reset()
	}
}
