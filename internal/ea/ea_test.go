package ea

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func behaviourSpec() Spec {
	return Spec{
		Name: "EAb", Signal: "s", Kind: KindBehaviour,
		Min: 0, Max: 1000, MaxUp: 50, MaxDown: 50,
	}
}

func TestSpecValidate(t *testing.T) {
	tests := []struct {
		name    string
		spec    Spec
		wantSub string
	}{
		{"no signal", Spec{Name: "x", Kind: KindBool}, "no signal"},
		{"max below min", Spec{Name: "x", Signal: "s", Kind: KindBehaviour, Min: 10, Max: 5}, "Max"},
		{"negative rates", Spec{Name: "x", Signal: "s", Kind: KindBehaviour, Max: 5, MaxUp: -1}, "rate"},
		{"counter no width", Spec{Name: "x", Signal: "s", Kind: KindCounter}, "WrapWidth"},
		{"counter bad steps", Spec{Name: "x", Signal: "s", Kind: KindCounter, WrapWidth: 16, MinStep: 5, MaxStep: 2}, "MaxStep"},
		{"sequence bad modulo", Spec{Name: "x", Signal: "s", Kind: KindSequence, Modulo: 1}, "Modulo"},
		{"sequence negative", Spec{Name: "x", Signal: "s", Kind: KindSequence, Modulo: 10, AllowExtra: -1}, "negative"},
		{"unknown kind", Spec{Name: "x", Signal: "s", Kind: Kind(42)}, "unknown kind"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.spec.Validate()
			if err == nil {
				t.Fatal("Validate() = nil, want error")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q missing %q", err, tt.wantSub)
			}
		})
	}
	if err := behaviourSpec().Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestBehaviourRangeCheck(t *testing.T) {
	a := MustNew(behaviourSpec())
	if a.Check(500, 0) {
		t.Error("in-range first value fired")
	}
	if !a.Check(1001, 10) {
		t.Error("out-of-range value did not fire")
	}
	if !a.Check(-1, 20) {
		t.Error("negative value did not fire")
	}
	if got := a.Detections(); got != 2 {
		t.Errorf("Detections() = %d, want 2", got)
	}
	if got := a.FirstDetectionMs(); got != 10 {
		t.Errorf("FirstDetectionMs() = %d, want 10", got)
	}
}

func TestBehaviourRateCheck(t *testing.T) {
	a := MustNew(behaviourSpec())
	a.Check(500, 0)
	if a.Check(540, 10) {
		t.Error("+40 within MaxUp fired")
	}
	if !a.Check(620, 20) {
		t.Error("+80 beyond MaxUp did not fire")
	}
	a.Reset()
	a.Check(500, 0)
	if !a.Check(420, 10) {
		t.Error("-80 beyond MaxDown did not fire")
	}
}

func TestBehaviourSaturationExemption(t *testing.T) {
	a := MustNew(behaviourSpec())
	a.Check(500, 0)
	if a.Check(1000, 10) {
		t.Error("jump to Max rail fired despite saturation exemption")
	}
	if a.Check(300, 20) {
		t.Error("jump off Max rail fired despite saturation exemption")
	}
	a.Reset()
	a.Check(400, 0)
	if a.Check(0, 10) {
		t.Error("jump to Min rail fired despite saturation exemption")
	}
}

func TestBehaviourFirstSampleNoRate(t *testing.T) {
	a := MustNew(behaviourSpec())
	// First check has no previous value: only the range applies.
	if a.Check(999, 0) {
		t.Error("first in-range sample fired")
	}
}

func TestCounterCheck(t *testing.T) {
	a := MustNew(Spec{
		Name: "EAc", Signal: "c", Kind: KindCounter,
		MinStep: 0, MaxStep: 10, WrapWidth: 16,
	})
	a.Check(100, 0)
	if a.Check(108, 10) {
		t.Error("+8 step fired")
	}
	if !a.Check(150, 20) {
		t.Error("+42 step did not fire")
	}
	if !a.Check(149, 30) {
		t.Error("decrement (wraps to huge delta) did not fire")
	}
}

func TestCounterWrapAround(t *testing.T) {
	a := MustNew(Spec{
		Name: "EAc", Signal: "c", Kind: KindCounter,
		MinStep: 0, MaxStep: 10, WrapWidth: 16,
	})
	a.Check(65533, 0)
	if a.Check(2, 10) { // 65533 -> 2 is +5 modulo 2^16
		t.Error("legitimate wrap-around fired")
	}
}

func TestCounterMinStep(t *testing.T) {
	a := MustNew(Spec{
		Name: "EAm", Signal: "m", Kind: KindCounter,
		MinStep: 10, MaxStep: 10, WrapWidth: 16,
	})
	a.Check(0, 0)
	if a.Check(10, 10) {
		t.Error("exact step fired")
	}
	if !a.Check(15, 20) {
		t.Error("+5 step below MinStep=10 did not fire")
	}
}

func TestSequenceCheck(t *testing.T) {
	a := MustNew(Spec{
		Name: "EAs", Signal: "s", Kind: KindSequence,
		Modulo: 10, StepPerPeriod: 0, AllowExtra: 2,
	})
	a.Check(3, 0)
	if a.Check(3, 10) {
		t.Error("expected repeat fired")
	}
	if a.Check(5, 20) {
		t.Error("+2 within AllowExtra fired")
	}
	if !a.Check(1, 30) { // 5 -> 1 is 6 forward steps
		t.Error("+6 forward shift did not fire")
	}
	if !a.Check(20, 40) {
		t.Error("out-of-domain value did not fire")
	}
}

func TestSequenceWithStep(t *testing.T) {
	a := MustNew(Spec{
		Name: "EAs", Signal: "s", Kind: KindSequence,
		Modulo: 8, StepPerPeriod: 3, AllowExtra: 0,
	})
	a.Check(0, 0)
	for i, want := range []model.Word{3, 6, 1, 4, 7, 2} {
		if a.Check(want, int64(10*(i+1))) {
			t.Fatalf("legitimate +3 mod 8 sequence fired at step %d", i)
		}
	}
	if !a.Check(4, 100) { // expected 5
		t.Error("off-sequence value did not fire")
	}
}

func TestBoolCheck(t *testing.T) {
	a := MustNew(Spec{Name: "EAb", Signal: "b", Kind: KindBool})
	if a.Check(0, 0) || a.Check(1, 10) {
		t.Error("boolean domain values fired")
	}
	if !a.Check(2, 20) {
		t.Error("out-of-domain boolean did not fire")
	}
}

func TestWarmupSuppression(t *testing.T) {
	spec := behaviourSpec()
	spec.WarmupChecks = 2
	a := MustNew(spec)
	if a.Check(5000, 0) {
		t.Error("warmup check 0 fired")
	}
	if a.Check(5000, 10) {
		t.Error("warmup check 1 fired")
	}
	if !a.Check(5000, 20) {
		t.Error("post-warmup out-of-range did not fire")
	}
}

func TestResetClearsAccounting(t *testing.T) {
	a := MustNew(behaviourSpec())
	a.Check(2000, 5)
	if !a.Detected() {
		t.Fatal("setup: no detection")
	}
	a.Reset()
	if a.Detected() || a.Detections() != 0 || a.FirstDetectionMs() != -1 {
		t.Error("Reset did not clear accounting")
	}
}

func TestDerivedCosts(t *testing.T) {
	tests := []struct {
		kind    Kind
		wantROM int
		wantRAM int
	}{
		{KindBehaviour, 50, 14},
		{KindCounter, 25, 13},
		{KindSequence, 37, 13},
		{KindBool, 12, 2},
	}
	for _, tt := range tests {
		got := derivedCost(tt.kind)
		if got.ROMBytes != tt.wantROM || got.RAMBytes != tt.wantRAM {
			t.Errorf("%v cost = %d/%d, want %d/%d", tt.kind, got.ROMBytes, got.RAMBytes, tt.wantROM, tt.wantRAM)
		}
		if got.Cycles <= 0 {
			t.Errorf("%v has no cycle cost", tt.kind)
		}
	}
}

func TestExplicitCostOverride(t *testing.T) {
	spec := behaviourSpec()
	spec.Cost = Cost{ROMBytes: 1, RAMBytes: 2, Cycles: 3}
	a := MustNew(spec)
	if got := a.Cost(); got != spec.Cost {
		t.Errorf("Cost() = %+v, want override %+v", got, spec.Cost)
	}
}

// Property: a behaviour assertion never fires on a slowly varying
// in-range signal, and always fires on a value outside [Min, Max].
func TestQuickBehaviourSoundness(t *testing.T) {
	f := func(walk []int8, outlier uint16) bool {
		a := MustNew(behaviourSpec())
		v := model.Word(500)
		now := int64(0)
		for _, d := range walk {
			step := model.Word(d) % 50
			v += step
			if v < 1 {
				v = 1
			}
			if v > 999 {
				v = 999
			}
			if a.Check(v, now) {
				return false // in-range slow walk must never fire
			}
			now += 10
		}
		return a.Check(model.Word(outlier)+1001, now) // out of range must fire
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a counter assertion accepts any trajectory whose per-period
// deltas stay within [MinStep, MaxStep], including across wrap.
func TestQuickCounterAcceptsLegitimateSteps(t *testing.T) {
	f := func(steps []uint8, start uint16) bool {
		a := MustNew(Spec{
			Name: "c", Signal: "c", Kind: KindCounter,
			MinStep: 0, MaxStep: 255, WrapWidth: 16,
		})
		v := model.Word(start)
		now := int64(0)
		for _, s := range steps {
			v = (v + model.Word(s)) & 0xFFFF
			if a.Check(v, now) {
				return false
			}
			now += 10
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
