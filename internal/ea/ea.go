// Package ea implements generic parameterized Executable Assertions —
// the error detection mechanisms whose placement the paper studies. The
// assertion classes follow Hiller's DSN 2000 taxonomy for signals in
// embedded control software: behaviour-constrained continuous signals
// (range + change-rate), monotonic counters, cyclic sequence signals, and
// booleans (for which "the selected EA's [are] not geared", Table 2 —
// kept to make that limitation executable).
//
// Every assertion carries a resource footprint: ROM bytes (constant
// parameters defining allowed behaviour), RAM bytes (run-time state) and
// execution cycles per invocation. The byte figures for the target's
// seven assertions are calibrated to Table 3 of the paper (we cannot
// recompile the authors' MC68HC11 binaries, so we adopt their measured
// footprints as the cost model; see DESIGN.md §5).
package ea

import (
	"fmt"

	"repro/internal/model"
)

// Kind selects the assertion class.
type Kind int

// Assertion classes.
const (
	// KindBehaviour checks a continuous signal: static range [Min, Max]
	// plus change-rate limits MaxUp/MaxDown per check period, with an
	// exemption for saturation jumps to Min or Max (mode switches in
	// control software legitimately slam a setpoint to a rail).
	KindBehaviour Kind = iota + 1
	// KindCounter checks a (wrapping) counter: the per-period increment,
	// computed modulo the signal width, must lie in [MinStep, MaxStep].
	KindCounter
	// KindSequence checks a cyclic sequence signal of period Modulo that
	// advances StepPerPeriod per check, tolerating a cyclic distance of
	// up to AllowExtra from the expected value in either direction
	// (legitimate phase adjustments and scheduling jitter).
	KindSequence
	// KindBool checks the 0/1 domain of a boolean signal. On a 1-bit
	// channel it can never fire — executable evidence for the paper's
	// remark that these EAs are ineffective on booleans.
	KindBool
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindBehaviour:
		return "behaviour"
	case KindCounter:
		return "counter"
	case KindSequence:
		return "sequence"
	case KindBool:
		return "bool"
	default:
		return "unknown"
	}
}

// Spec parameterizes one executable assertion guarding one signal.
type Spec struct {
	// Name labels the assertion, e.g. "EA1".
	Name string
	// Signal is the guarded signal.
	Signal model.SignalID
	// Kind selects the assertion class.
	Kind Kind

	// Min and Max bound KindBehaviour values.
	Min, Max model.Word
	// MaxUp and MaxDown bound KindBehaviour per-period changes.
	MaxUp, MaxDown model.Word

	// MinStep and MaxStep bound KindCounter per-period increments.
	MinStep, MaxStep model.Word
	// WrapWidth is the counter width in bits for KindCounter delta
	// arithmetic.
	WrapWidth uint8

	// Modulo, StepPerPeriod and AllowExtra parameterize KindSequence.
	Modulo, StepPerPeriod, AllowExtra model.Word

	// WarmupChecks suppresses verdicts for the first n checks, letting
	// rate/sequence state initialize.
	WarmupChecks int

	// Cost overrides the derived resource footprint when non-zero.
	Cost Cost
}

// Cost is the resource footprint of one assertion.
type Cost struct {
	ROMBytes int
	RAMBytes int
	// Cycles is the execution cost per invocation in CPU cycles.
	Cycles int
}

// IsZero reports whether no explicit cost was set.
func (c Cost) IsZero() bool { return c == Cost{} }

// derivedCost returns the default footprint per class. ROM/RAM figures
// for behaviour/counter/sequence follow the per-EA values in Table 3 of
// the paper; cycle counts are synthetic but proportional to the number of
// comparisons each class performs.
func derivedCost(k Kind) Cost {
	switch k {
	case KindBehaviour:
		return Cost{ROMBytes: 50, RAMBytes: 14, Cycles: 180}
	case KindCounter:
		return Cost{ROMBytes: 25, RAMBytes: 13, Cycles: 95}
	case KindSequence:
		return Cost{ROMBytes: 37, RAMBytes: 13, Cycles: 120}
	case KindBool:
		return Cost{ROMBytes: 12, RAMBytes: 2, Cycles: 40}
	default:
		return Cost{}
	}
}

// Validate reports whether the spec is well formed.
func (s Spec) Validate() error {
	if s.Signal == "" {
		return fmt.Errorf("ea: spec %q has no signal", s.Name)
	}
	switch s.Kind {
	case KindBehaviour:
		if s.Max < s.Min {
			return fmt.Errorf("ea: spec %q: Max %d < Min %d", s.Name, s.Max, s.Min)
		}
		if s.MaxUp < 0 || s.MaxDown < 0 {
			return fmt.Errorf("ea: spec %q: negative rate limits", s.Name)
		}
	case KindCounter:
		if s.WrapWidth < 1 || s.WrapWidth > 32 {
			return fmt.Errorf("ea: spec %q: WrapWidth %d out of range", s.Name, s.WrapWidth)
		}
		if s.MaxStep < s.MinStep {
			return fmt.Errorf("ea: spec %q: MaxStep %d < MinStep %d", s.Name, s.MaxStep, s.MinStep)
		}
	case KindSequence:
		if s.Modulo < 2 {
			return fmt.Errorf("ea: spec %q: Modulo %d must be >= 2", s.Name, s.Modulo)
		}
		if s.StepPerPeriod < 0 || s.AllowExtra < 0 {
			return fmt.Errorf("ea: spec %q: negative sequence parameters", s.Name)
		}
	case KindBool:
		// No parameters.
	default:
		return fmt.Errorf("ea: spec %q: unknown kind %d", s.Name, int(s.Kind))
	}
	return nil
}

// Assertion is the runtime instance of a Spec: stateful, reusable across
// runs via Reset.
type Assertion struct {
	spec Spec
	cost Cost

	prev        model.Word
	initialized bool
	checks      int

	detections int
	firstMs    int64
}

// New instantiates an assertion from a spec.
func New(spec Spec) (*Assertion, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cost := spec.Cost
	if cost.IsZero() {
		cost = derivedCost(spec.Kind)
	}
	a := &Assertion{spec: spec, cost: cost}
	a.Reset()
	return a, nil
}

// MustNew is New that panics on error, for statically-known specs.
func MustNew(spec Spec) *Assertion {
	a, err := New(spec)
	if err != nil {
		panic(err)
	}
	return a
}

// Spec returns the assertion's specification.
func (a *Assertion) Spec() Spec { return a.spec }

// Cost returns the assertion's resource footprint.
func (a *Assertion) Cost() Cost { return a.cost }

// Reset clears run-time state and detection accounting.
func (a *Assertion) Reset() {
	a.prev = 0
	a.initialized = false
	a.checks = 0
	a.detections = 0
	a.firstMs = -1
}

// Check evaluates the assertion against the current signal value. It
// returns true when the assertion fires (a violation is detected) and
// updates detection accounting.
func (a *Assertion) Check(v model.Word, nowMs int64) bool {
	defer func() {
		a.prev = v
		a.initialized = true
		a.checks++
	}()

	if a.checks < a.spec.WarmupChecks {
		return false
	}

	violated := false
	switch a.spec.Kind {
	case KindBehaviour:
		violated = a.checkBehaviour(v)
	case KindCounter:
		violated = a.checkCounter(v)
	case KindSequence:
		violated = a.checkSequence(v)
	case KindBool:
		violated = v != 0 && v != 1
	}

	if violated {
		a.detections++
		if a.firstMs < 0 {
			a.firstMs = nowMs
		}
	}
	return violated
}

func (a *Assertion) checkBehaviour(v model.Word) bool {
	s := a.spec
	if v < s.Min || v > s.Max {
		return true
	}
	if !a.initialized {
		return false
	}
	// Saturation exemption: mode switches may slam the signal to a rail.
	if v == s.Min || v == s.Max || a.prev == s.Min || a.prev == s.Max {
		return false
	}
	if d := v - a.prev; d > s.MaxUp || -d > s.MaxDown {
		return true
	}
	return false
}

func (a *Assertion) checkCounter(v model.Word) bool {
	if !a.initialized {
		return false
	}
	mask := (model.Word(1) << a.spec.WrapWidth) - 1
	delta := (v - a.prev) & mask
	return delta < a.spec.MinStep || delta > a.spec.MaxStep
}

func (a *Assertion) checkSequence(v model.Word) bool {
	s := a.spec
	if v < 0 || v >= s.Modulo {
		return true
	}
	if !a.initialized {
		return false
	}
	expected := (a.prev + s.StepPerPeriod) % s.Modulo
	// Cyclic distance from the expected value.
	ahead := ((v-expected)%s.Modulo + s.Modulo) % s.Modulo
	if back := s.Modulo - ahead; back < ahead {
		ahead = back
	}
	return ahead > s.AllowExtra
}

// Detections returns how many checks fired in the current run.
func (a *Assertion) Detections() int { return a.detections }

// Detected reports whether the assertion fired at least once — the
// paper's per-run detection criterion ("detected at least once during
// the arrestment").
func (a *Assertion) Detected() bool { return a.detections > 0 }

// FirstDetectionMs returns the time of the first detection, or -1.
func (a *Assertion) FirstDetectionMs() int64 { return a.firstMs }
