package ea

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// Bank is a set of assertions deployed on a system, checked together at a
// fixed period — mirroring the target, where "the EA's are all functions
// which are executed sequentially ... invoked with roughly the same
// period" (paper Section 6.1). Attach Hook as a scheduler post-slot hook.
type Bank struct {
	bus      *model.Bus
	periodMs int64
	asserts  []*Assertion
}

// NewBank deploys assertions for the given specs on the bus, checking
// every periodMs. Every spec's signal must exist in the bus's system.
func NewBank(bus *model.Bus, periodMs int64, specs []Spec) (*Bank, error) {
	if periodMs <= 0 {
		return nil, fmt.Errorf("ea: bank period %d must be positive", periodMs)
	}
	b := &Bank{bus: bus, periodMs: periodMs}
	seen := make(map[string]struct{}, len(specs))
	for _, s := range specs {
		if _, ok := bus.System().Signal(s.Signal); !ok {
			return nil, fmt.Errorf("ea: spec %q guards unknown signal %q", s.Name, s.Signal)
		}
		if _, dup := seen[s.Name]; dup {
			return nil, fmt.Errorf("ea: duplicate assertion name %q", s.Name)
		}
		seen[s.Name] = struct{}{}
		a, err := New(s)
		if err != nil {
			return nil, err
		}
		b.asserts = append(b.asserts, a)
	}
	return b, nil
}

// Hook checks every assertion when nowMs falls on the bank period.
// Values are observed with Bus.Peek, so checking never perturbs the run.
func (b *Bank) Hook(nowMs int64) {
	if nowMs%b.periodMs != 0 {
		return
	}
	for _, a := range b.asserts {
		a.Check(b.bus.Peek(a.spec.Signal), nowMs)
	}
}

// Reset clears all assertion state and accounting.
func (b *Bank) Reset() {
	for _, a := range b.asserts {
		a.Reset()
	}
}

// Assertions returns the deployed assertions in spec order.
func (b *Bank) Assertions() []*Assertion {
	return append([]*Assertion(nil), b.asserts...)
}

// Assertion returns the named assertion.
func (b *Bank) Assertion(name string) (*Assertion, bool) {
	for _, a := range b.asserts {
		if a.spec.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Detected reports whether any assertion fired this run.
func (b *Bank) Detected() bool {
	for _, a := range b.asserts {
		if a.Detected() {
			return true
		}
	}
	return false
}

// DetectedBy returns the names of the assertions that fired, sorted.
func (b *Bank) DetectedBy() []string {
	var out []string
	for _, a := range b.asserts {
		if a.Detected() {
			out = append(out, a.spec.Name)
		}
	}
	sort.Strings(out)
	return out
}

// FirstDetectionMs returns the earliest detection time across the bank,
// or -1 if nothing fired.
func (b *Bank) FirstDetectionMs() int64 {
	first := int64(-1)
	for _, a := range b.asserts {
		if t := a.FirstDetectionMs(); t >= 0 && (first < 0 || t < first) {
			first = t
		}
	}
	return first
}

// TotalCost sums the resource footprint of the bank — the numbers
// compared in Table 3 (ROM and RAM) and the execution-time overhead
// argument of Section 6.1 (cycles per check period).
func (b *Bank) TotalCost() Cost {
	var c Cost
	for _, a := range b.asserts {
		c.ROMBytes += a.cost.ROMBytes
		c.RAMBytes += a.cost.RAMBytes
		c.Cycles += a.cost.Cycles
	}
	return c
}

// SubsetCost sums the footprint of the named assertions only.
func (b *Bank) SubsetCost(names []string) (Cost, error) {
	var c Cost
	for _, n := range names {
		a, ok := b.Assertion(n)
		if !ok {
			return Cost{}, fmt.Errorf("ea: unknown assertion %q", n)
		}
		c.ROMBytes += a.cost.ROMBytes
		c.RAMBytes += a.cost.RAMBytes
		c.Cycles += a.cost.Cycles
	}
	return c, nil
}
