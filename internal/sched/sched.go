// Package sched implements the slot-based, non-preemptive executive that
// runs a modular system (paper Section 4.1: "The scheduling is slot-based
// and non-preemptive"). Time advances in fixed slots; each slot first runs
// the always-scheduled modules (the target's CLOCK), then the modules
// assigned to the current slot number. The slot number can be taken from a
// signal on the bus — the target publishes it as ms_slot_nbr — so that
// errors in that signal genuinely disturb scheduling, as they would on the
// real system.
package sched

import (
	"fmt"

	"repro/internal/model"
)

// Table is a static cyclic schedule.
type Table struct {
	// SlotMs is the slot length in milliseconds.
	SlotMs int64
	// Every lists modules invoked at the start of every slot, in order.
	Every []model.ModuleID
	// Slots assigns modules to slot numbers 0..len(Slots)-1. A slot may
	// be empty.
	Slots [][]model.ModuleID
	// Selector optionally names a bus signal holding the current slot
	// number (taken modulo len(Slots)). When empty the scheduler uses its
	// own internal counter.
	Selector model.SignalID
}

// Validate checks the table against a system description.
func (t Table) Validate(sys *model.System) error {
	if t.SlotMs <= 0 {
		return fmt.Errorf("sched: SlotMs must be positive, got %d", t.SlotMs)
	}
	if len(t.Slots) == 0 {
		return fmt.Errorf("sched: table has no slots")
	}
	check := func(id model.ModuleID) error {
		if _, ok := sys.Module(id); !ok {
			return fmt.Errorf("sched: table references unknown module %q", id)
		}
		return nil
	}
	for _, id := range t.Every {
		if err := check(id); err != nil {
			return err
		}
	}
	for _, slot := range t.Slots {
		for _, id := range slot {
			if err := check(id); err != nil {
				return err
			}
		}
	}
	if t.Selector != "" {
		if _, ok := sys.Signal(t.Selector); !ok {
			return fmt.Errorf("sched: selector signal %q not in system", t.Selector)
		}
	}
	return nil
}

// Hook is a callback invoked around slots with the current time.
// Pre-slot hooks drive the environment (plant simulation, sensor
// registers); post-slot hooks host monitors (executable assertions,
// trace bookkeeping, fault-injection ticks).
type Hook func(nowMs int64)

// StepAction is a StepFilter verdict for one scheduled module step.
type StepAction int

const (
	// StepRun executes the step normally.
	StepRun StepAction = iota
	// StepSkip omits the step entirely this slot (omission fault). The
	// module's invocation counter does not advance.
	StepSkip
	// StepDefer postpones the step to the end of the slot: deferred
	// steps run after the slot's normal entries, in their original
	// order, before the post-slot hooks fire (timing/late-dispatch
	// fault).
	StepDefer
)

// StepFilter inspects a scheduled module step before it executes and
// decides whether it runs, is skipped, or is deferred to the end of the
// slot. Filters are the seam fault-injection strategies use to model
// timing and omission errors in the executive itself; when no filter is
// installed the scheduler's dispatch path is unchanged. With several
// filters installed, the first verdict other than StepRun wins.
type StepFilter func(id model.ModuleID, nowMs int64) StepAction

// entry is a pre-resolved dispatch slot: the registered behaviour, its
// declaration, and a pointer to its invocation counter. Resolving these
// once (on first RunSlot) removes the per-step map lookups from the
// simulation inner loop.
type entry struct {
	run     model.Runnable
	decl    *model.ModuleDecl
	invoked *int64
}

// Scheduler executes a system according to a Table. Create with New; the
// zero value is not usable.
type Scheduler struct {
	table   Table
	bus     *model.Bus
	mods    map[model.ModuleID]model.Runnable
	nowMs   int64
	slot    int
	pre     []Hook
	post    []Hook
	filters []StepFilter
	defers  []*entry                  // scratch for StepDefer verdicts, reused across slots
	invoked map[model.ModuleID]*int64 // invocation counts, for accounting

	// Compiled dispatch state, built lazily on the first RunSlot after
	// registration (registering a module invalidates it).
	compiled  bool
	every     []entry
	slots     [][]entry
	selIdx    int // dense index of the selector signal, -1 when unset
	exec      *model.Exec
	selModulo model.Word
}

// New creates a scheduler over the bus with the given table. All modules
// referenced by the table must be registered before the first RunSlot.
func New(bus *model.Bus, table Table) (*Scheduler, error) {
	if err := table.Validate(bus.System()); err != nil {
		return nil, err
	}
	return &Scheduler{
		table:   table,
		bus:     bus,
		mods:    make(map[model.ModuleID]model.Runnable),
		invoked: make(map[model.ModuleID]*int64),
		exec:    model.NewExec(bus, nil, 0),
	}, nil
}

// Register attaches the behaviour for one module.
func (s *Scheduler) Register(r model.Runnable) error {
	id := r.ModuleID()
	if _, ok := s.bus.System().Module(id); !ok {
		return fmt.Errorf("sched: behaviour for unknown module %q", id)
	}
	if _, dup := s.mods[id]; dup {
		return fmt.Errorf("sched: duplicate behaviour for module %q", id)
	}
	s.mods[id] = r
	s.compiled = false
	return nil
}

// OnPreSlot installs an environment hook run before each slot.
func (s *Scheduler) OnPreSlot(h Hook) { s.pre = append(s.pre, h) }

// OnPostSlot installs a monitor hook run after each slot.
func (s *Scheduler) OnPostSlot(h Hook) { s.post = append(s.post, h) }

// OnStep installs a step filter consulted before every scheduled module
// step (see StepFilter).
func (s *Scheduler) OnStep(f StepFilter) { s.filters = append(s.filters, f) }

// ResetHooks removes all pre- and post-slot hooks and step filters,
// keeping the backing arrays so re-installation after a rig reset does
// not allocate.
func (s *Scheduler) ResetHooks() {
	s.pre = s.pre[:0]
	s.post = s.post[:0]
	s.filters = s.filters[:0]
}

// NowMs returns the elapsed scheduler time in milliseconds.
func (s *Scheduler) NowMs() int64 { return s.nowMs }

// Invocations returns how many times the module has been stepped.
func (s *Scheduler) Invocations(id model.ModuleID) int64 {
	if n := s.invoked[id]; n != nil {
		return *n
	}
	return 0
}

// Reset rewinds time and resets every registered module and the bus.
// Hooks stay installed.
func (s *Scheduler) Reset() {
	s.nowMs = 0
	s.slot = 0
	s.bus.Reset()
	for _, m := range s.mods {
		m.Reset()
	}
	for _, n := range s.invoked {
		*n = 0
	}
}

// compile resolves the table's module IDs to registered behaviours and
// the selector signal to its dense index.
func (s *Scheduler) compile() error {
	resolve := func(id model.ModuleID) (entry, error) {
		r, ok := s.mods[id]
		if !ok {
			return entry{}, fmt.Errorf("sched: module %q scheduled but not registered", id)
		}
		decl, _ := s.bus.System().Module(id)
		n := s.invoked[id]
		if n == nil {
			n = new(int64)
			s.invoked[id] = n
		}
		return entry{run: r, decl: decl, invoked: n}, nil
	}
	s.every = s.every[:0]
	for _, id := range s.table.Every {
		e, err := resolve(id)
		if err != nil {
			return err
		}
		s.every = append(s.every, e)
	}
	s.slots = s.slots[:0]
	for _, slot := range s.table.Slots {
		var es []entry
		for _, id := range slot {
			e, err := resolve(id)
			if err != nil {
				return err
			}
			es = append(es, e)
		}
		s.slots = append(s.slots, es)
	}
	s.selIdx = -1
	if s.table.Selector != "" {
		i, ok := s.bus.System().SignalIndex(s.table.Selector)
		if !ok {
			return fmt.Errorf("sched: selector signal %q not in system", s.table.Selector)
		}
		s.selIdx = i
	}
	s.selModulo = model.Word(len(s.table.Slots))
	s.compiled = true
	return nil
}

// RunSlot executes exactly one slot: pre hooks, always-modules, the
// current slot's modules, post hooks; then advances time by SlotMs.
func (s *Scheduler) RunSlot() error {
	if !s.compiled {
		if err := s.compile(); err != nil {
			return err
		}
	}
	for _, h := range s.pre {
		h(s.nowMs)
	}
	if len(s.filters) == 0 {
		// Fast path: no step filters installed, dispatch directly.
		for i := range s.every {
			s.step(&s.every[i])
		}
		idx := s.slot
		if s.selIdx >= 0 {
			n := s.selModulo
			idx = int(((s.bus.PeekIdx(s.selIdx) % n) + n) % n)
		}
		slot := s.slots[idx]
		for i := range slot {
			s.step(&slot[i])
		}
	} else {
		s.defers = s.defers[:0]
		for i := range s.every {
			s.filteredStep(&s.every[i])
		}
		idx := s.slot
		if s.selIdx >= 0 {
			n := s.selModulo
			idx = int(((s.bus.PeekIdx(s.selIdx) % n) + n) % n)
		}
		slot := s.slots[idx]
		for i := range slot {
			s.filteredStep(&slot[i])
		}
		for _, e := range s.defers {
			s.step(e)
		}
	}
	for _, h := range s.post {
		h(s.nowMs)
	}
	s.nowMs += s.table.SlotMs
	s.slot = (s.slot + 1) % len(s.table.Slots)
	return nil
}

func (s *Scheduler) step(e *entry) {
	s.exec.Bind(e.decl, s.nowMs)
	e.run.Step(s.exec)
	*e.invoked++
}

// filteredStep consults the installed step filters and runs, skips or
// defers the entry accordingly. The first non-StepRun verdict wins.
func (s *Scheduler) filteredStep(e *entry) {
	for _, f := range s.filters {
		switch f(e.decl.ID, s.nowMs) {
		case StepSkip:
			return
		case StepDefer:
			s.defers = append(s.defers, e)
			return
		}
	}
	s.step(e)
}

// RunFor runs slots until durationMs of scheduler time has elapsed.
func (s *Scheduler) RunFor(durationMs int64) error {
	end := s.nowMs + durationMs
	for s.nowMs < end {
		if err := s.RunSlot(); err != nil {
			return err
		}
	}
	return nil
}

// RunUntil runs slots until done returns true (checked after every slot)
// or maxMs of scheduler time has elapsed. It reports whether done fired.
func (s *Scheduler) RunUntil(done func() bool, maxMs int64) (bool, error) {
	end := s.nowMs + maxMs
	for s.nowMs < end {
		if err := s.RunSlot(); err != nil {
			return false, err
		}
		if done() {
			return true, nil
		}
	}
	return false, nil
}
