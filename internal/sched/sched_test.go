package sched

import (
	"strings"
	"testing"

	"repro/internal/model"
)

// counter is a trivial Runnable that counts invocations and copies its
// input to its output, scaled.
type counter struct {
	id    model.ModuleID
	steps int
	times []int64
}

func (c *counter) ModuleID() model.ModuleID { return c.id }
func (c *counter) Reset()                   { c.steps = 0; c.times = nil }
func (c *counter) Step(e *model.Exec) {
	c.steps++
	c.times = append(c.times, e.NowMs())
	if len(e.Module().Inputs) > 0 && len(e.Module().Outputs) > 0 {
		e.Out(1, e.In(1)+1)
	}
}

func testSystem(t *testing.T) *model.System {
	t.Helper()
	sys, err := model.NewBuilder("schedtest").
		AddSignal("in", model.Uint(16), model.AsSystemInput()).
		AddSignal("mid", model.Uint(16)).
		AddSignal("slotsel", model.Uint(8)).
		AddSignal("out", model.Uint(16), model.AsSystemOutput(1)).
		AddModule("CLK", model.In("in"), model.Out("slotsel")).
		AddModule("A", model.In("in"), model.Out("mid")).
		AddModule("B", model.In("mid"), model.Out("out")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func newSched(t *testing.T, bus *model.Bus, table Table, mods ...model.Runnable) *Scheduler {
	t.Helper()
	s, err := New(bus, table)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mods {
		if err := s.Register(m); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestTableValidate(t *testing.T) {
	sys := testSystem(t)
	tests := []struct {
		name    string
		table   Table
		wantSub string
	}{
		{"zero slot length", Table{SlotMs: 0, Slots: [][]model.ModuleID{{}}}, "SlotMs"},
		{"no slots", Table{SlotMs: 1}, "no slots"},
		{"unknown module in Every", Table{SlotMs: 1, Every: []model.ModuleID{"X"}, Slots: [][]model.ModuleID{{}}}, "unknown module"},
		{"unknown module in slot", Table{SlotMs: 1, Slots: [][]model.ModuleID{{"X"}}}, "unknown module"},
		{"unknown selector", Table{SlotMs: 1, Slots: [][]model.ModuleID{{}}, Selector: "nope"}, "selector"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.table.Validate(sys)
			if err == nil {
				t.Fatal("Validate() = nil, want error")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q missing %q", err, tt.wantSub)
			}
		})
	}
}

func TestRoundRobinInvocation(t *testing.T) {
	sys := testSystem(t)
	bus := model.NewBus(sys)
	a := &counter{id: "A"}
	b := &counter{id: "B"}
	table := Table{
		SlotMs: 1,
		Slots:  [][]model.ModuleID{{"A"}, {"B"}, {}},
	}
	s := newSched(t, bus, table, a, b)

	if err := s.RunFor(9); err != nil {
		t.Fatal(err)
	}
	if a.steps != 3 || b.steps != 3 {
		t.Errorf("steps A=%d B=%d, want 3 each over 9 slots of a 3-slot cycle", a.steps, b.steps)
	}
	if got := s.NowMs(); got != 9 {
		t.Errorf("NowMs() = %d, want 9", got)
	}
	// A runs in slot 0 of each cycle: times 0, 3, 6.
	want := []int64{0, 3, 6}
	for i, ts := range a.times {
		if ts != want[i] {
			t.Errorf("A invocation %d at %d ms, want %d", i, ts, want[i])
		}
	}
	if got := s.Invocations("A"); got != 3 {
		t.Errorf("Invocations(A) = %d, want 3", got)
	}
}

func TestEveryModulesRunEachSlot(t *testing.T) {
	sys := testSystem(t)
	bus := model.NewBus(sys)
	clk := &counter{id: "CLK"}
	a := &counter{id: "A"}
	table := Table{
		SlotMs: 2,
		Every:  []model.ModuleID{"CLK"},
		Slots:  [][]model.ModuleID{{"A"}, {}},
	}
	s := newSched(t, bus, table, clk, a)
	if err := s.RunFor(8); err != nil { // 4 slots
		t.Fatal(err)
	}
	if clk.steps != 4 {
		t.Errorf("CLK steps = %d, want 4 (every slot)", clk.steps)
	}
	if a.steps != 2 {
		t.Errorf("A steps = %d, want 2", a.steps)
	}
}

func TestSelectorDrivenSlotChoice(t *testing.T) {
	sys := testSystem(t)
	bus := model.NewBus(sys)
	a := &counter{id: "A"}
	b := &counter{id: "B"}
	table := Table{
		SlotMs:   1,
		Slots:    [][]model.ModuleID{{"A"}, {"B"}},
		Selector: "slotsel",
	}
	s := newSched(t, bus, table, a, b)

	// Selector stuck at 1: only B must ever run.
	bus.Poke("slotsel", 1)
	if err := s.RunFor(4); err != nil {
		t.Fatal(err)
	}
	if a.steps != 0 || b.steps != 4 {
		t.Errorf("steps A=%d B=%d, want 0/4 with selector stuck at 1", a.steps, b.steps)
	}

	// Out-of-range selector values must wrap via modulo.
	bus.Poke("slotsel", 6) // 6 % 2 == 0 -> slot 0 -> A
	if err := s.RunSlot(); err != nil {
		t.Fatal(err)
	}
	if a.steps != 1 {
		t.Errorf("A steps = %d, want 1 after selector 6 (mod 2 = 0)", a.steps)
	}
}

func TestHookOrderingAndTimes(t *testing.T) {
	sys := testSystem(t)
	bus := model.NewBus(sys)
	a := &counter{id: "A"}
	table := Table{SlotMs: 1, Slots: [][]model.ModuleID{{"A"}}}
	s := newSched(t, bus, table, a)

	var order []string
	s.OnPreSlot(func(now int64) { order = append(order, "pre") })
	s.OnPostSlot(func(now int64) { order = append(order, "post") })
	if err := s.RunSlot(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "pre" || order[1] != "post" {
		t.Errorf("hook order = %v, want [pre post]", order)
	}
}

func TestPreHookDrivesInputBeforeModules(t *testing.T) {
	sys := testSystem(t)
	bus := model.NewBus(sys)
	a := &counter{id: "A"}
	table := Table{SlotMs: 1, Slots: [][]model.ModuleID{{"A"}}}
	s := newSched(t, bus, table, a)
	s.OnPreSlot(func(now int64) { bus.Poke("in", model.Word(now+100)) })
	if err := s.RunFor(3); err != nil {
		t.Fatal(err)
	}
	// A copies in+1 to mid; the last slot ran at t=2 with in=102.
	if got := bus.Peek("mid"); got != 103 {
		t.Errorf("mid = %d, want 103", got)
	}
}

func TestUnregisteredScheduledModuleFails(t *testing.T) {
	sys := testSystem(t)
	bus := model.NewBus(sys)
	table := Table{SlotMs: 1, Slots: [][]model.ModuleID{{"A"}}}
	s := newSched(t, bus, table)
	if err := s.RunSlot(); err == nil {
		t.Fatal("RunSlot with unregistered module returned nil error")
	}
}

func TestRegisterErrors(t *testing.T) {
	sys := testSystem(t)
	bus := model.NewBus(sys)
	table := Table{SlotMs: 1, Slots: [][]model.ModuleID{{}}}
	s := newSched(t, bus, table)
	if err := s.Register(&counter{id: "ghost"}); err == nil {
		t.Error("Register(unknown module) = nil error")
	}
	if err := s.Register(&counter{id: "A"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(&counter{id: "A"}); err == nil {
		t.Error("duplicate Register = nil error")
	}
}

func TestRunUntil(t *testing.T) {
	sys := testSystem(t)
	bus := model.NewBus(sys)
	a := &counter{id: "A"}
	table := Table{SlotMs: 1, Slots: [][]model.ModuleID{{"A"}}}
	s := newSched(t, bus, table, a)

	done, err := s.RunUntil(func() bool { return a.steps >= 5 }, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Error("RunUntil reported timeout, want condition hit")
	}
	if a.steps != 5 {
		t.Errorf("steps = %d, want exactly 5 (checked after each slot)", a.steps)
	}

	done, err = s.RunUntil(func() bool { return false }, 10)
	if err != nil {
		t.Fatal(err)
	}
	if done {
		t.Error("RunUntil reported done, want timeout")
	}
}

func TestResetRewindsEverything(t *testing.T) {
	sys := testSystem(t)
	bus := model.NewBus(sys)
	a := &counter{id: "A"}
	table := Table{SlotMs: 1, Slots: [][]model.ModuleID{{"A"}}}
	s := newSched(t, bus, table, a)
	bus.Poke("in", 50)
	if err := s.RunFor(3); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if got := s.NowMs(); got != 0 {
		t.Errorf("NowMs() after Reset = %d, want 0", got)
	}
	if a.steps != 0 {
		t.Errorf("module steps after Reset = %d, want 0", a.steps)
	}
	if got := bus.Peek("in"); got != 0 {
		t.Errorf("bus value after Reset = %d, want initial 0", got)
	}
	if got := s.Invocations("A"); got != 0 {
		t.Errorf("Invocations after Reset = %d, want 0", got)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []model.Word {
		sys := testSystem(t)
		bus := model.NewBus(sys)
		a := &counter{id: "A"}
		b := &counter{id: "B"}
		table := Table{SlotMs: 1, Slots: [][]model.ModuleID{{"A"}, {"B"}}}
		s := newSched(t, bus, table, a, b)
		s.OnPreSlot(func(now int64) { bus.Poke("in", model.Word(now*3%17)) })
		var outs []model.Word
		s.OnPostSlot(func(now int64) { outs = append(outs, bus.Peek("out")) })
		if err := s.RunFor(50); err != nil {
			t.Fatal(err)
		}
		return outs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at slot %d: %d vs %d", i, a[i], b[i])
		}
	}
}
