package sched

import (
	"testing"

	"repro/internal/model"
)

// orderRec records the global dispatch order of its steps.
type orderRec struct {
	id    model.ModuleID
	order *[]model.ModuleID
}

func (o *orderRec) ModuleID() model.ModuleID { return o.id }
func (o *orderRec) Reset()                   {}
func (o *orderRec) Step(e *model.Exec)       { *o.order = append(*o.order, o.id) }

func TestStepFilterSkipOmitsModule(t *testing.T) {
	sys := testSystem(t)
	bus := model.NewBus(sys)
	a := &counter{id: "A"}
	b := &counter{id: "B"}
	s := newSched(t, bus, Table{SlotMs: 1, Slots: [][]model.ModuleID{{"A", "B"}}}, a, b)
	s.OnStep(func(id model.ModuleID, nowMs int64) StepAction {
		if id == "A" {
			return StepSkip
		}
		return StepRun
	})
	if err := s.RunFor(3); err != nil {
		t.Fatal(err)
	}
	if a.steps != 0 {
		t.Errorf("A stepped %d times under omission, want 0", a.steps)
	}
	if b.steps != 3 {
		t.Errorf("B stepped %d times, want 3", b.steps)
	}
	if got := s.Invocations("A"); got != 0 {
		t.Errorf("Invocations(A) = %d, want 0 (skipped steps must not count)", got)
	}
}

func TestStepFilterDeferRunsAtSlotEnd(t *testing.T) {
	sys := testSystem(t)
	bus := model.NewBus(sys)
	var order []model.ModuleID
	a := &orderRec{id: "A", order: &order}
	b := &orderRec{id: "B", order: &order}
	s := newSched(t, bus, Table{SlotMs: 1, Slots: [][]model.ModuleID{{"A", "B"}}}, a, b)
	s.OnStep(func(id model.ModuleID, nowMs int64) StepAction {
		if id == "A" && nowMs >= 1 {
			return StepDefer
		}
		return StepRun
	})
	if err := s.RunFor(2); err != nil {
		t.Fatal(err)
	}
	want := []model.ModuleID{"A", "B", "B", "A"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (deferred steps run after the slot's entries)", order, want)
		}
	}
	if got := s.Invocations("A"); got != 2 {
		t.Errorf("Invocations(A) = %d, want 2 (deferred steps still run)", got)
	}
}

func TestStepFilterFirstVerdictWins(t *testing.T) {
	sys := testSystem(t)
	bus := model.NewBus(sys)
	a := &counter{id: "A"}
	s := newSched(t, bus, Table{SlotMs: 1, Slots: [][]model.ModuleID{{"A"}}}, a)
	s.OnStep(func(id model.ModuleID, nowMs int64) StepAction { return StepRun })
	s.OnStep(func(id model.ModuleID, nowMs int64) StepAction { return StepSkip })
	if err := s.RunFor(2); err != nil {
		t.Fatal(err)
	}
	if a.steps != 0 {
		t.Errorf("A stepped %d times, want 0 (later filter's skip must win over run)", a.steps)
	}
}

func TestResetHooksClearsFilters(t *testing.T) {
	sys := testSystem(t)
	bus := model.NewBus(sys)
	a := &counter{id: "A"}
	s := newSched(t, bus, Table{SlotMs: 1, Slots: [][]model.ModuleID{{"A"}}}, a)
	s.OnStep(func(id model.ModuleID, nowMs int64) StepAction { return StepSkip })
	s.ResetHooks()
	if err := s.RunFor(2); err != nil {
		t.Fatal(err)
	}
	if a.steps != 2 {
		t.Errorf("A stepped %d times after ResetHooks, want 2", a.steps)
	}
}
