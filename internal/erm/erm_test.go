package erm

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func wrapSpec(policy Policy) Spec {
	return Spec{
		Name: "W", Signal: "s", Policy: policy,
		Min: 0, Max: 1000, MaxUp: 50, MaxDown: 50,
	}
}

func TestSpecValidate(t *testing.T) {
	tests := []struct {
		name    string
		spec    Spec
		wantSub string
	}{
		{"no signal", Spec{Name: "x", Policy: PolicyHoldLast}, "no signal"},
		{"max below min", Spec{Name: "x", Signal: "s", Min: 5, Max: 1, Policy: PolicyHoldLast}, "Max"},
		{"negative rate", Spec{Name: "x", Signal: "s", Max: 10, MaxUp: -1, Policy: PolicyHoldLast}, "rate"},
		{"no policy", Spec{Name: "x", Signal: "s", Max: 10}, "policy"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.spec.Validate()
			if err == nil {
				t.Fatal("Validate() = nil, want error")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q missing %q", err, tt.wantSub)
			}
		})
	}
}

func TestWrapperHoldLast(t *testing.T) {
	w, err := NewWrapper(wrapSpec(PolicyHoldLast))
	if err != nil {
		t.Fatal(err)
	}
	if got := w.apply(100); got != 100 {
		t.Errorf("plausible first write = %d", got)
	}
	if got := w.apply(130); got != 130 {
		t.Errorf("plausible delta = %d", got)
	}
	// Implausible jump: held at the previous value.
	w.Hook(500)
	if got := w.apply(900); got != 130 {
		t.Errorf("implausible jump = %d, want held 130", got)
	}
	if w.Recoveries() != 1 {
		t.Errorf("Recoveries = %d", w.Recoveries())
	}
	if got := w.FirstRecoveryMs(); got != 500 {
		t.Errorf("FirstRecoveryMs = %d", got)
	}
	// Recovery resets the reference: a subsequent plausible step passes.
	if got := w.apply(160); got != 160 {
		t.Errorf("post-recovery step = %d", got)
	}
}

func TestWrapperClamp(t *testing.T) {
	w, err := NewWrapper(wrapSpec(PolicyClamp))
	if err != nil {
		t.Fatal(err)
	}
	w.apply(100)
	if got := w.apply(900); got != 150 {
		t.Errorf("clamped jump = %d, want prev+MaxUp = 150", got)
	}
	if got := w.apply(-500); got != 100 {
		t.Errorf("clamped drop = %d, want prev-MaxDown = 100", got)
	}
	// Out-of-range clamps to the range first.
	w2, _ := NewWrapper(Spec{Name: "r", Signal: "s", Min: 0, Max: 1000, Policy: PolicyClamp})
	if got := w2.apply(4000); got != 1000 {
		t.Errorf("range clamp = %d, want 1000", got)
	}
}

func TestWrapperWarmupAndZeroRates(t *testing.T) {
	s := wrapSpec(PolicyHoldLast)
	s.WarmupWrites = 2
	w, _ := NewWrapper(s)
	w.apply(0)
	if got := w.apply(800); got != 800 {
		t.Errorf("warmup write rate-checked: %d", got)
	}
	// Zero rate limits disable the rate check entirely.
	s2 := Spec{Name: "z", Signal: "s", Min: 0, Max: 1000, Policy: PolicyHoldLast}
	w2, _ := NewWrapper(s2)
	w2.apply(0)
	if got := w2.apply(999); got != 999 {
		t.Errorf("no-rate wrapper blocked a jump: %d", got)
	}
}

// Property: a hold-last wrapper's output is always within [Min, Max]
// once initialized with a plausible value, for any write sequence.
func TestQuickWrapperOutputAlwaysPlausible(t *testing.T) {
	f := func(writes []int16) bool {
		w, err := NewWrapper(wrapSpec(PolicyHoldLast))
		if err != nil {
			return false
		}
		w.apply(500)
		for _, v := range writes {
			got := w.apply(model.Word(v))
			if got < 0 || got > 1000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: clamp recovery moves any proposed value by the minimum
// needed: plausible writes are never altered.
func TestQuickClampIdentityOnPlausible(t *testing.T) {
	f := func(step int8) bool {
		w, err := NewWrapper(wrapSpec(PolicyClamp))
		if err != nil {
			return false
		}
		w.apply(500)
		d := model.Word(step) % 50
		want := 500 + d
		return w.apply(want) == want && w.Recoveries() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBankOnBus(t *testing.T) {
	sys, err := model.NewBuilder("b").
		AddSignal("in", model.Uint(16), model.AsSystemInput()).
		AddSignal("s", model.Uint(16)).
		AddSignal("o", model.Uint(16), model.AsSystemOutput(1)).
		AddModule("M", model.In("in"), model.Out("s")).
		AddModule("N", model.In("s"), model.Out("o")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	bus := model.NewBus(sys)
	bank, err := NewBank(bus, []Spec{{
		Name: "W-s", Signal: "s", Min: 0, Max: 100, Policy: PolicyHoldLast,
	}})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := sys.Module("M")
	ex := model.NewExec(bus, m, 0)
	ex.Out(1, 50)
	ex.Out(1, 5000) // implausible: held at 50
	if got := bus.Peek("s"); got != 50 {
		t.Errorf("bus value = %d, want recovered 50", got)
	}
	if !bank.Recovered() || bank.TotalRecoveries() != 1 {
		t.Errorf("bank accounting: recovered=%v total=%d", bank.Recovered(), bank.TotalRecoveries())
	}
	if got := bank.RecoveredBy(); len(got) != 1 || got[0] != "W-s" {
		t.Errorf("RecoveredBy = %v", got)
	}
	bank.Reset()
	if bank.Recovered() {
		t.Error("Recovered after Reset")
	}
}

func TestBankErrors(t *testing.T) {
	sys, err := model.NewBuilder("b").
		AddSignal("in", model.Uint(16), model.AsSystemInput()).
		AddSignal("o", model.Uint(16), model.AsSystemOutput(1)).
		AddModule("M", model.In("in"), model.Out("o")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	bus := model.NewBus(sys)
	if _, err := NewBank(bus, []Spec{{Name: "x", Signal: "ghost", Max: 1, Policy: PolicyHoldLast}}); err == nil {
		t.Error("unknown signal accepted")
	}
	if _, err := NewBank(bus, []Spec{
		{Name: "x", Signal: "o", Max: 1, Policy: PolicyHoldLast},
		{Name: "x", Signal: "o", Max: 1, Policy: PolicyHoldLast},
	}); err == nil {
		t.Error("duplicate wrapper accepted")
	}
	if _, err := NewBank(bus, []Spec{{Name: "x", Signal: "o", Min: 5, Max: 1, Policy: PolicyHoldLast}}); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestPolicyString(t *testing.T) {
	for _, p := range []Policy{PolicyHoldLast, PolicyClamp, Policy(9)} {
		if p.String() == "" {
			t.Errorf("Policy(%d).String() empty", int(p))
		}
	}
}
