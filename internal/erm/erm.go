// Package erm implements error recovery mechanisms: containment
// wrappers on module outputs in the spirit of the wrappers the paper
// cites (Salles et al., "MetaKernels and Fault Containment Wrappers")
// and places with guideline R2. A wrapper intercepts every write to a
// guarded signal, checks it against a plausibility specification (the
// same behaviour vocabulary as the executable assertions in
// internal/ea), and on violation substitutes a recovered value instead
// of letting the implausible one propagate.
//
// The paper evaluates placement of detection mechanisms; recovery
// placement is discussed (R2, Section 9) but not measured. The
// experiment layer's RecoveryStudy quantifies it on the reproduction:
// failure rates of the internal error model with and without wrappers.
package erm

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// Policy selects how a wrapper recovers from an implausible write.
type Policy int

// Recovery policies.
const (
	// PolicyHoldLast keeps the previous (plausible) value of the signal.
	PolicyHoldLast Policy = iota + 1
	// PolicyClamp forces the value to the nearest plausible one: into
	// [Min, Max] and within the rate limits of the previous value.
	PolicyClamp
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyHoldLast:
		return "hold-last"
	case PolicyClamp:
		return "clamp"
	default:
		return "unknown policy"
	}
}

// Spec parameterizes one wrapper.
type Spec struct {
	// Name labels the wrapper, e.g. "ERM-SetValue".
	Name string
	// Signal is the guarded signal; only writes to it are filtered.
	Signal model.SignalID
	// Min and Max bound plausible values.
	Min, Max model.Word
	// MaxUp and MaxDown bound plausible per-write changes; zero means
	// no rate constraint in that direction.
	MaxUp, MaxDown model.Word
	// Policy selects the recovery action.
	Policy Policy
	// WarmupWrites disables the rate check for the first n writes.
	WarmupWrites int
}

// Validate reports whether the spec is well formed.
func (s Spec) Validate() error {
	if s.Signal == "" {
		return fmt.Errorf("erm: spec %q has no signal", s.Name)
	}
	if s.Max < s.Min {
		return fmt.Errorf("erm: spec %q: Max %d < Min %d", s.Name, s.Max, s.Min)
	}
	if s.MaxUp < 0 || s.MaxDown < 0 {
		return fmt.Errorf("erm: spec %q: negative rate limits", s.Name)
	}
	if s.Policy != PolicyHoldLast && s.Policy != PolicyClamp {
		return fmt.Errorf("erm: spec %q: unknown policy %d", s.Name, int(s.Policy))
	}
	return nil
}

// Wrapper is the runtime instance of a Spec.
type Wrapper struct {
	spec Spec

	prev        model.Word
	initialized bool
	writes      int

	recoveries int
	firstMs    int64
	nowMs      int64
}

// NewWrapper instantiates a wrapper.
func NewWrapper(spec Spec) (*Wrapper, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	w := &Wrapper{spec: spec}
	w.Reset()
	return w, nil
}

// Spec returns the wrapper's specification.
func (w *Wrapper) Spec() Spec { return w.spec }

// Reset clears run-time state and accounting.
func (w *Wrapper) Reset() {
	w.prev = 0
	w.initialized = false
	w.writes = 0
	w.recoveries = 0
	w.firstMs = -1
	w.nowMs = 0
}

// Hook is a scheduler hook keeping the wrapper's clock for latency
// accounting; install as a pre-slot hook.
func (w *Wrapper) Hook(nowMs int64) { w.nowMs = nowMs }

// Filter returns the bus write filter realizing the wrapper.
func (w *Wrapper) Filter() model.WriteFilter {
	return func(port model.PortRef, sig model.SignalID, old, proposed model.Word) model.Word {
		if sig != w.spec.Signal {
			return proposed
		}
		return w.apply(proposed)
	}
}

// apply checks one write and returns the (possibly recovered) value.
func (w *Wrapper) apply(proposed model.Word) model.Word {
	defer func() { w.writes++ }()
	s := w.spec

	plausible := proposed >= s.Min && proposed <= s.Max
	if plausible && w.initialized && w.writes >= s.WarmupWrites {
		d := proposed - w.prev
		if s.MaxUp > 0 && d > s.MaxUp {
			plausible = false
		}
		if s.MaxDown > 0 && -d > s.MaxDown {
			plausible = false
		}
	}
	if plausible {
		w.prev = proposed
		w.initialized = true
		return proposed
	}

	w.recoveries++
	if w.firstMs < 0 {
		w.firstMs = w.nowMs
	}
	var recovered model.Word
	switch s.Policy {
	case PolicyHoldLast:
		recovered = w.prev
	case PolicyClamp:
		recovered = proposed
		if recovered < s.Min {
			recovered = s.Min
		}
		if recovered > s.Max {
			recovered = s.Max
		}
		if w.initialized {
			if s.MaxUp > 0 && recovered-w.prev > s.MaxUp {
				recovered = w.prev + s.MaxUp
			}
			if s.MaxDown > 0 && w.prev-recovered > s.MaxDown {
				recovered = w.prev - s.MaxDown
			}
		}
	}
	// The recovered value becomes the new reference.
	w.prev = recovered
	w.initialized = true
	return recovered
}

// Recoveries returns how many writes were recovered this run.
func (w *Wrapper) Recoveries() int { return w.recoveries }

// FirstRecoveryMs returns the time of the first recovery, or -1.
func (w *Wrapper) FirstRecoveryMs() int64 { return w.firstMs }

// Bank deploys a set of wrappers on a bus.
type Bank struct {
	wrappers []*Wrapper
}

// NewBank validates and instantiates wrappers for the specs, installing
// their filters and clock hooks on the bus via the provided installers.
func NewBank(bus *model.Bus, specs []Spec) (*Bank, error) {
	b := &Bank{}
	seen := make(map[string]struct{}, len(specs))
	for _, s := range specs {
		if _, ok := bus.System().Signal(s.Signal); !ok {
			return nil, fmt.Errorf("erm: spec %q guards unknown signal %q", s.Name, s.Signal)
		}
		if _, dup := seen[s.Name]; dup {
			return nil, fmt.Errorf("erm: duplicate wrapper name %q", s.Name)
		}
		seen[s.Name] = struct{}{}
		w, err := NewWrapper(s)
		if err != nil {
			return nil, err
		}
		bus.OnWriteFilter(w.Filter())
		b.wrappers = append(b.wrappers, w)
	}
	return b, nil
}

// Hook fans the scheduler clock out to every wrapper; install as a
// pre-slot hook.
func (b *Bank) Hook(nowMs int64) {
	for _, w := range b.wrappers {
		w.Hook(nowMs)
	}
}

// Reset clears every wrapper.
func (b *Bank) Reset() {
	for _, w := range b.wrappers {
		w.Reset()
	}
}

// Wrappers returns the deployed wrappers in spec order.
func (b *Bank) Wrappers() []*Wrapper {
	return append([]*Wrapper(nil), b.wrappers...)
}

// Recovered reports whether any wrapper recovered a write this run.
func (b *Bank) Recovered() bool {
	for _, w := range b.wrappers {
		if w.Recoveries() > 0 {
			return true
		}
	}
	return false
}

// RecoveredBy returns the names of wrappers that recovered, sorted.
func (b *Bank) RecoveredBy() []string {
	var out []string
	for _, w := range b.wrappers {
		if w.Recoveries() > 0 {
			out = append(out, w.spec.Name)
		}
	}
	sort.Strings(out)
	return out
}

// TotalRecoveries sums recoveries across the bank.
func (b *Bank) TotalRecoveries() int {
	total := 0
	for _, w := range b.wrappers {
		total += w.Recoveries()
	}
	return total
}
