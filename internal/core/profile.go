package core

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// SignalProfile collects every per-signal measure of the framework — the
// material of Table 5 and the graphical profiles of Figures 5 and 6.
type SignalProfile struct {
	Signal model.SignalID
	Kind   model.Kind
	IsBool bool

	// Exposure is the (non-weighted) signal error exposure X^S_s.
	Exposure float64
	// ImpactOn maps each system output o to I(s → o). A system output's
	// entry for itself is 1.
	ImpactOn map[model.SignalID]float64
	// Impact is the largest per-output impact — for single-output
	// systems, exactly the Table 5 column.
	Impact float64
	// Criticality is C_s per Eq. 4 under the system's declared output
	// criticalities.
	Criticality float64
	// MaxInPermeability is the largest permeability among the signal's
	// producing pairs — the "witness" property that brings ms_slot_nbr
	// back into the extended selection (Section 10).
	MaxInPermeability float64
}

// Profile is the full dependability profile of a system under one
// permeability matrix.
type Profile struct {
	perm    *Permeability
	signals []SignalProfile
	byID    map[model.SignalID]int
}

// BuildProfile computes every per-signal measure.
func BuildProfile(p *Permeability) (*Profile, error) {
	sys := p.sys
	outs := sys.SystemOutputs()
	pr := &Profile{
		perm: p,
		byID: make(map[model.SignalID]int, len(sys.SignalIDs())),
	}
	for _, sig := range sys.Signals() {
		sp := SignalProfile{
			Signal:   sig.ID,
			Kind:     sig.Kind,
			IsBool:   sig.IsBool(),
			ImpactOn: make(map[model.SignalID]float64, len(outs)),
		}
		x, err := p.SignalExposure(sig.ID)
		if err != nil {
			return nil, err
		}
		sp.Exposure = x
		for _, o := range outs {
			imp, err := Impact(p, sig.ID, o)
			if err != nil {
				return nil, err
			}
			sp.ImpactOn[o] = imp
			if imp > sp.Impact {
				sp.Impact = imp
			}
		}
		c, err := Criticality(p, sig.ID)
		if err != nil {
			return nil, err
		}
		sp.Criticality = c
		for _, e := range sys.InEdges(sig.ID) {
			if v := p.Get(e); v > sp.MaxInPermeability {
				sp.MaxInPermeability = v
			}
		}
		pr.byID[sig.ID] = len(pr.signals)
		pr.signals = append(pr.signals, sp)
	}
	return pr, nil
}

// NewProfile assembles a Profile from externally computed signal
// measures — the seam internal/analytic uses to return its solver
// results in the exact shape the placement rules and report tables
// consume. Signals keep the given order; BuildProfile remains the
// tree-based reference constructor.
func NewProfile(p *Permeability, signals []SignalProfile) *Profile {
	pr := &Profile{
		perm:    p,
		signals: append([]SignalProfile(nil), signals...),
		byID:    make(map[model.SignalID]int, len(signals)),
	}
	for i, sp := range pr.signals {
		pr.byID[sp.Signal] = i
	}
	return pr
}

// Permeability returns the matrix the profile was built from.
func (pr *Profile) Permeability() *Permeability { return pr.perm }

// System returns the profiled system.
func (pr *Profile) System() *model.System { return pr.perm.sys }

// Signal returns the profile of one signal.
func (pr *Profile) Signal(s model.SignalID) (SignalProfile, error) {
	i, ok := pr.byID[s]
	if !ok {
		return SignalProfile{}, fmt.Errorf("core: unknown signal %q", s)
	}
	return pr.signals[i], nil
}

// Signals returns all signal profiles in declaration order.
func (pr *Profile) Signals() []SignalProfile {
	return append([]SignalProfile(nil), pr.signals...)
}

// Metric selects a ranking dimension.
type Metric int

// Ranking metrics.
const (
	ByExposure Metric = iota + 1
	ByImpact
	ByCriticality
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case ByExposure:
		return "exposure"
	case ByImpact:
		return "impact"
	case ByCriticality:
		return "criticality"
	default:
		return "unknown metric"
	}
}

// Ranked returns the signal profiles sorted by the metric, descending,
// with ties broken by signal name for determinism.
func (pr *Profile) Ranked(m Metric) []SignalProfile {
	out := pr.Signals()
	key := func(sp SignalProfile) float64 {
		switch m {
		case ByExposure:
			return sp.Exposure
		case ByImpact:
			return sp.Impact
		case ByCriticality:
			return sp.Criticality
		default:
			return 0
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ki, kj := key(out[i]), key(out[j])
		if ki != kj {
			return ki > kj
		}
		return out[i].Signal < out[j].Signal
	})
	return out
}
