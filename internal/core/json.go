package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/model"
)

// permJSON is the serialized form of a permeability matrix: one entry
// per module input/output pair, in system edge order.
type permJSON struct {
	System  string          `json:"system"`
	Entries []permEntryJSON `json:"entries"`
}

type permEntryJSON struct {
	Module model.ModuleID `json:"module"`
	In     int            `json:"in"`
	Out    int            `json:"out"`
	Value  float64        `json:"value"`
}

// MarshalJSON serializes the matrix (zero entries included, so the file
// is a complete Table 1 for its system).
func (p *Permeability) MarshalJSON() ([]byte, error) {
	out := permJSON{System: p.sys.Name()}
	for _, e := range p.sys.Edges() {
		out.Entries = append(out.Entries, permEntryJSON{
			Module: e.Module, In: e.In, Out: e.Out, Value: p.Get(e),
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalPermeability reconstructs a matrix against a system
// description. The system name must match and every entry must resolve
// to an edge of the system.
func UnmarshalPermeability(sys *model.System, data []byte) (*Permeability, error) {
	var in permJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("core: decode permeability: %w", err)
	}
	if in.System != sys.Name() {
		return nil, fmt.Errorf("core: matrix is for system %q, not %q", in.System, sys.Name())
	}
	p := NewPermeability(sys)
	for _, e := range in.Entries {
		if err := p.Set(e.Module, e.In, e.Out, e.Value); err != nil {
			return nil, err
		}
	}
	return p, nil
}
