// Package core implements the paper's contribution: the error
// propagation and effect analysis framework for placing error detection
// and recovery mechanisms (EDMs/ERMs) in black-box modular software.
//
// The framework takes only a static system description (internal/model)
// and a matrix of error permeabilities — the conditional probabilities
// P^M_{i,k} = Pr{error on output k | error on input i} of every module
// input/output pair (Eq. 1) — and derives:
//
//   - Propagation measures (Section 5.2): relative and non-weighted
//     module permeability, module error exposure, and signal error
//     exposure, used for ranking modules and signals by how likely they
//     are to see propagating errors (guidelines R1/R2).
//   - Propagation structure (Section 5.2): backtrack trees (paths errors
//     can take to reach an output) and trace trees (paths errors can take
//     from a signal), both acyclic by construction.
//   - Effect measures (Section 8): impact — the aggregated weight of all
//     propagation paths from a signal to a system output (Eq. 2, computed
//     on an impact tree) — and criticality, which scales impact by
//     designer-assigned output criticalities (Eqs. 3–4, guideline R3).
//   - Placement (Sections 5.3, 9, 10): rule engines reproducing the
//     paper's PA selection, the codified experience/heuristic selection,
//     and the extended (propagation + effect) selection.
//
// The measures "do not necessarily reflect probabilities. Rather, they
// are abstract measures that can be used to obtain a relative ordering
// across modules and signals" (Section 5.2) — the package therefore never
// interprets them as probabilities beyond clamping to [0, 1].
package core

import (
	"fmt"

	"repro/internal/model"
)

// Permeability holds the estimated error permeability of every module
// input/output pair of a system (Eq. 1). Unset pairs default to zero.
type Permeability struct {
	sys    *model.System
	values map[model.Edge]float64
}

// NewPermeability creates an empty matrix for the system.
func NewPermeability(sys *model.System) *Permeability {
	return &Permeability{sys: sys, values: make(map[model.Edge]float64)}
}

// System returns the system the matrix describes.
func (p *Permeability) System() *model.System { return p.sys }

// edge resolves a module input/output pair to its Edge.
func (p *Permeability) edge(mod model.ModuleID, in, out int) (model.Edge, error) {
	m, ok := p.sys.Module(mod)
	if !ok {
		return model.Edge{}, fmt.Errorf("core: unknown module %q", mod)
	}
	from, ok := m.InputSignal(in)
	if !ok {
		return model.Edge{}, fmt.Errorf("core: module %s has no input %d", mod, in)
	}
	to, ok := m.OutputSignal(out)
	if !ok {
		return model.Edge{}, fmt.Errorf("core: module %s has no output %d", mod, out)
	}
	return model.Edge{Module: mod, In: in, Out: out, From: from, To: to}, nil
}

// Set stores P^mod_{in,out} = v. v must lie in [0, 1].
func (p *Permeability) Set(mod model.ModuleID, in, out int, v float64) error {
	e, err := p.edge(mod, in, out)
	if err != nil {
		return err
	}
	return p.SetEdge(e, v)
}

// SetEdge stores the permeability of an edge.
func (p *Permeability) SetEdge(e model.Edge, v float64) error {
	if v < 0 || v > 1 {
		return fmt.Errorf("core: permeability %v of %s.in%d->out%d outside [0,1]", v, e.Module, e.In, e.Out)
	}
	p.values[e] = v
	return nil
}

// MustSet is Set that panics on error, for statically-known fixtures.
func (p *Permeability) MustSet(mod model.ModuleID, in, out int, v float64) {
	if err := p.Set(mod, in, out, v); err != nil {
		panic(err)
	}
}

// Get returns the permeability of an edge (zero if unset).
func (p *Permeability) Get(e model.Edge) float64 { return p.values[e] }

// Value returns P^mod_{in,out}.
func (p *Permeability) Value(mod model.ModuleID, in, out int) (float64, error) {
	e, err := p.edge(mod, in, out)
	if err != nil {
		return 0, err
	}
	return p.values[e], nil
}

// RelativePermeability returns P^M for a module: the sum of its pair
// permeabilities normalized by the number of input/output pairs — the
// paper's measure of a module's "ability to let propagating errors pass
// through it", in [0, 1].
func (p *Permeability) RelativePermeability(mod model.ModuleID) (float64, error) {
	sum, n, err := p.moduleSum(mod)
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, nil
	}
	return sum / float64(n), nil
}

// NonWeightedPermeability returns P̂^M: the same sum without
// normalization.
func (p *Permeability) NonWeightedPermeability(mod model.ModuleID) (float64, error) {
	sum, _, err := p.moduleSum(mod)
	return sum, err
}

func (p *Permeability) moduleSum(mod model.ModuleID) (float64, int, error) {
	m, ok := p.sys.Module(mod)
	if !ok {
		return 0, 0, fmt.Errorf("core: unknown module %q", mod)
	}
	var sum float64
	n := 0
	for _, in := range m.Inputs {
		for _, out := range m.Outputs {
			e := model.Edge{Module: mod, In: in.Index, Out: out.Index, From: in.Signal, To: out.Signal}
			sum += p.values[e]
			n++
		}
	}
	return sum, n, nil
}

// SignalExposure returns X^S_s, the signal error exposure: the sum of
// the permeabilities of all input/output pairs that produce the signal.
// This is the non-weighted form, which is what Table 2 of the paper
// tabulates (e.g. OutValue: 0.885 + 0.896 = 1.781). System inputs have
// no producing pairs and expose as zero.
func (p *Permeability) SignalExposure(s model.SignalID) (float64, error) {
	if _, ok := p.sys.Signal(s); !ok {
		return 0, fmt.Errorf("core: unknown signal %q", s)
	}
	var sum float64
	for _, e := range p.sys.InEdges(s) {
		sum += p.values[e]
	}
	return sum, nil
}

// RelativeSignalExposure normalizes the signal exposure by the number of
// producing input/output pairs, yielding a value in [0, 1].
func (p *Permeability) RelativeSignalExposure(s model.SignalID) (float64, error) {
	if _, ok := p.sys.Signal(s); !ok {
		return 0, fmt.Errorf("core: unknown signal %q", s)
	}
	in := p.sys.InEdges(s)
	if len(in) == 0 {
		return 0, nil
	}
	var sum float64
	for _, e := range in {
		sum += p.values[e]
	}
	return sum / float64(len(in)), nil
}

// ModuleExposure returns X^M: the summed exposure of the module's input
// signals — how likely the module is to be subjected to propagating
// errors (guideline R1). The normalized companion divides by the number
// of inputs.
func (p *Permeability) ModuleExposure(mod model.ModuleID) (float64, error) {
	m, ok := p.sys.Module(mod)
	if !ok {
		return 0, fmt.Errorf("core: unknown module %q", mod)
	}
	var sum float64
	for _, in := range m.Inputs {
		x, err := p.SignalExposure(in.Signal)
		if err != nil {
			return 0, err
		}
		sum += x
	}
	return sum, nil
}

// RelativeModuleExposure returns the module exposure normalized by the
// number of inputs.
func (p *Permeability) RelativeModuleExposure(mod model.ModuleID) (float64, error) {
	m, ok := p.sys.Module(mod)
	if !ok {
		return 0, fmt.Errorf("core: unknown module %q", mod)
	}
	if len(m.Inputs) == 0 {
		return 0, nil
	}
	sum, err := p.ModuleExposure(mod)
	if err != nil {
		return 0, err
	}
	return sum / float64(len(m.Inputs)), nil
}
