package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

// randomDAG builds a layered random system: nLayers layers of width
// signals each, with every consecutive-layer pair connected through one
// module per layer. Returns the system and the generator used to assign
// permeabilities.
func randomDAG(seed int64) (*model.System, *Permeability) {
	rng := rand.New(rand.NewSource(seed))
	layers := 2 + rng.Intn(3) // 2..4 layers
	width := 1 + rng.Intn(3)  // 1..3 signals per layer

	b := model.NewBuilder("dag")
	name := func(l, w int) model.SignalID {
		return model.SignalID(string(rune('a'+l)) + string(rune('0'+w)))
	}
	for l := 0; l < layers; l++ {
		for w := 0; w < width; w++ {
			switch l {
			case 0:
				b.AddSignal(name(l, w), model.Uint(8), model.AsSystemInput())
			case layers - 1:
				b.AddSignal(name(l, w), model.Uint(8), model.AsSystemOutput(1))
			default:
				b.AddSignal(name(l, w), model.Uint(8))
			}
		}
	}
	for l := 0; l < layers-1; l++ {
		ins := make([]model.SignalID, width)
		outs := make([]model.SignalID, width)
		for w := 0; w < width; w++ {
			ins[w] = name(l, w)
			outs[w] = name(l+1, w)
		}
		b.AddModule(model.ModuleID("M"+string(rune('0'+l))), ins, outs)
	}
	sys := b.MustBuild()

	p := NewPermeability(sys)
	for _, e := range sys.Edges() {
		if err := p.SetEdge(e, rng.Float64()); err != nil {
			panic(err)
		}
	}
	return sys, p
}

// Property: impact is always within [0, 1] for random DAGs and random
// permeabilities, for every signal/output pair.
func TestQuickImpactBounded(t *testing.T) {
	f := func(seed int64) bool {
		sys, p := randomDAG(seed)
		for _, s := range sys.SignalIDs() {
			for _, o := range sys.SystemOutputs() {
				imp, err := Impact(p, s, o)
				if err != nil || imp < 0 || imp > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: increasing any single edge permeability never decreases any
// impact value (monotonicity of Eq. 2).
func TestQuickImpactMonotoneInPermeability(t *testing.T) {
	f := func(seed int64, edgeSel uint8) bool {
		sys, p := randomDAG(seed)
		edges := sys.Edges()
		e := edges[int(edgeSel)%len(edges)]

		before := map[[2]model.SignalID]float64{}
		for _, s := range sys.SignalIDs() {
			for _, o := range sys.SystemOutputs() {
				imp, err := Impact(p, s, o)
				if err != nil {
					return false
				}
				before[[2]model.SignalID{s, o}] = imp
			}
		}
		// Raise the edge toward 1.
		old := p.Get(e)
		if err := p.SetEdge(e, old+(1-old)/2); err != nil {
			return false
		}
		for key, b := range before {
			after, err := Impact(p, key[0], key[1])
			if err != nil {
				return false
			}
			if after < b-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: criticality is bounded by the maximum output criticality and
// by 1, and single-output criticality equals C_o times impact.
func TestQuickCriticalityBounds(t *testing.T) {
	f := func(seed int64, coRaw uint8) bool {
		sys, p := randomDAG(seed)
		co := float64(coRaw) / 255
		crits := map[model.SignalID]float64{}
		for _, o := range sys.SystemOutputs() {
			crits[o] = co
		}
		for _, s := range sys.SignalIDs() {
			c, err := CriticalityWith(p, s, crits)
			if err != nil {
				return false
			}
			if c < -1e-12 || c > co+1e-9 && len(crits) == 1 || c > 1 {
				return false
			}
			if len(crits) == 1 {
				for o := range crits {
					imp, err := Impact(p, s, o)
					if err != nil {
						return false
					}
					if diff := c - co*imp; diff > 1e-9 || diff < -1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: every tree path is acyclic and its weight equals the product
// of its edge permeabilities.
func TestQuickTreePathWeightsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		sys, p := randomDAG(seed)
		for _, s := range sys.SignalIDs() {
			tree, err := BuildImpactTree(p, s)
			if err != nil {
				return false
			}
			for _, path := range tree.Paths() {
				seen := map[model.SignalID]bool{}
				prod := 1.0
				for _, sig := range path.Signals {
					if seen[sig] {
						return false
					}
					seen[sig] = true
				}
				for _, e := range path.Edges {
					prod *= p.Get(e)
				}
				if diff := prod - path.Weight; diff > 1e-12 || diff < -1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: signal exposure equals the sum of incoming edge values and
// the relative form is the mean.
func TestQuickExposureIsIncomingSum(t *testing.T) {
	f := func(seed int64) bool {
		sys, p := randomDAG(seed)
		for _, s := range sys.SignalIDs() {
			var want float64
			for _, e := range sys.InEdges(s) {
				want += p.Get(e)
			}
			got, err := p.SignalExposure(s)
			if err != nil {
				return false
			}
			if diff := got - want; diff > 1e-12 || diff < -1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: removing a path (zeroing one of its edges) never increases
// impact.
func TestQuickImpactPathRemoval(t *testing.T) {
	f := func(seed int64, edgeSel uint8) bool {
		sys, p := randomDAG(seed)
		edges := sys.Edges()
		e := edges[int(edgeSel)%len(edges)]
		var before []float64
		for _, s := range sys.SignalIDs() {
			for _, o := range sys.SystemOutputs() {
				imp, err := Impact(p, s, o)
				if err != nil {
					return false
				}
				before = append(before, imp)
			}
		}
		if err := p.SetEdge(e, 0); err != nil {
			return false
		}
		i := 0
		for _, s := range sys.SignalIDs() {
			for _, o := range sys.SystemOutputs() {
				after, err := Impact(p, s, o)
				if err != nil {
					return false
				}
				if after > before[i]+1e-12 {
					return false
				}
				i++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
