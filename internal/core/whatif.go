package core

import (
	"fmt"

	"repro/internal/model"
)

// Clone returns an independent copy of the matrix.
func (p *Permeability) Clone() *Permeability {
	cp := NewPermeability(p.sys)
	for e, v := range p.values {
		cp.values[e] = v
	}
	return cp
}

// ScaleModule returns a copy of the matrix with every input/output pair
// of the module scaled by factor (clamped to [0, 1]) — the what-if of
// adding containment to a module (factor < 1, e.g. a wrapper that masks
// 80% of propagating errors scales by 0.2) or of removing it
// (factor > 1). Use with CheckConformance to iterate on Section 9's
// process: find the violated condition, strengthen a module, re-profile.
func (p *Permeability) ScaleModule(mod model.ModuleID, factor float64) (*Permeability, error) {
	if factor < 0 {
		return nil, fmt.Errorf("core: negative scale factor %v", factor)
	}
	m, ok := p.sys.Module(mod)
	if !ok {
		return nil, fmt.Errorf("core: unknown module %q", mod)
	}
	cp := p.Clone()
	for _, in := range m.Inputs {
		for _, out := range m.Outputs {
			e := model.Edge{Module: mod, In: in.Index, Out: out.Index, From: in.Signal, To: out.Signal}
			v := cp.values[e] * factor
			if v > 1 {
				v = 1
			}
			cp.values[e] = v
		}
	}
	return cp, nil
}

// ScaleEdge returns a copy with one pair scaled — the what-if of
// guarding a single signal path.
func (p *Permeability) ScaleEdge(mod model.ModuleID, in, out int, factor float64) (*Permeability, error) {
	if factor < 0 {
		return nil, fmt.Errorf("core: negative scale factor %v", factor)
	}
	e, err := p.edge(mod, in, out)
	if err != nil {
		return nil, err
	}
	cp := p.Clone()
	v := cp.values[e] * factor
	if v > 1 {
		v = 1
	}
	cp.values[e] = v
	return cp, nil
}

// ContainmentPlan evaluates, for every module, how much scaling its
// permeabilities by factor would reduce a signal's impact on a system
// output — a ranking of where containment buys the most protection for
// that signal/output pair.
type ContainmentOption struct {
	Module model.ModuleID
	// Before and After are the impact values without and with the
	// hypothetical containment.
	Before, After float64
}

// PlanContainment ranks modules by the impact reduction that scaling
// their pair permeabilities by factor would achieve for from → to.
// Options are returned in system module order; callers sort as needed.
func PlanContainment(p *Permeability, from, to model.SignalID, factor float64) ([]ContainmentOption, error) {
	before, err := Impact(p, from, to)
	if err != nil {
		return nil, err
	}
	var out []ContainmentOption
	for _, mod := range p.sys.ModuleIDs() {
		scaled, err := p.ScaleModule(mod, factor)
		if err != nil {
			return nil, err
		}
		after, err := Impact(scaled, from, to)
		if err != nil {
			return nil, err
		}
		out = append(out, ContainmentOption{Module: mod, Before: before, After: after})
	}
	return out, nil
}
