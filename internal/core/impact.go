package core

import (
	"fmt"

	"repro/internal/model"
)

// Impact computes the impact of errors in signal from on signal to
// (Eq. 2): 1 − Π_i (1 − w_i) over every acyclic propagation path i from
// from to to, where w_i is the product of the permeabilities along the
// path. A signal's impact on itself is 1 (the paper: for the output
// signal "one could say that the impact is 1.0"). The result is in
// [0, 1]; a signal with no path to the destination has impact 0.
func Impact(p *Permeability, from, to model.SignalID) (float64, error) {
	if _, ok := p.sys.Signal(to); !ok {
		return 0, fmt.Errorf("core: unknown signal %q", to)
	}
	if from == to {
		return 1, nil
	}
	tree, err := BuildImpactTree(p, from)
	if err != nil {
		return 0, err
	}
	return ImpactFromPaths(tree.PathsTo(to)), nil
}

// ImpactFromPaths folds path weights with Eq. 2. Exposed so callers that
// already built an impact tree (e.g. reports rendering Fig. 4) can reuse
// its paths.
func ImpactFromPaths(paths []Path) float64 {
	prod := 1.0
	for _, path := range paths {
		prod *= 1 - path.Weight
	}
	impact := 1 - prod
	if impact < 0 {
		impact = 0
	}
	if impact > 1 {
		impact = 1
	}
	return impact
}

// Criticality computes C_s (Eq. 4): the criticality of a signal given
// the designer-assigned criticalities C_o of the system outputs:
//
//	C_s = 1 − Π_i (1 − C_{o,i} · I(s → o_i))
//
// Output criticalities are taken from the system description
// (model.Signal.Criticality). For a signal that is itself a system
// output, its own term uses I = 1, so C_s ≥ C_o as expected.
func Criticality(p *Permeability, s model.SignalID) (float64, error) {
	crits := make(map[model.SignalID]float64)
	for _, o := range p.sys.SystemOutputs() {
		sig, _ := p.sys.Signal(o)
		crits[o] = sig.Criticality
	}
	return CriticalityWith(p, s, crits)
}

// CriticalityWith is Criticality with explicit output criticalities —
// "the criticality values may change when project policies change"
// (Section 8), so policy exploration must not require rebuilding the
// system description. Outputs missing from the map default to zero.
func CriticalityWith(p *Permeability, s model.SignalID, outputCrits map[model.SignalID]float64) (float64, error) {
	if _, ok := p.sys.Signal(s); !ok {
		return 0, fmt.Errorf("core: unknown signal %q", s)
	}
	for o, c := range outputCrits {
		if c < 0 || c > 1 {
			return 0, fmt.Errorf("core: criticality %v of output %q outside [0,1]", c, o)
		}
		sig, ok := p.sys.Signal(o)
		if !ok {
			return 0, fmt.Errorf("core: unknown output %q", o)
		}
		if sig.Kind != model.KindSystemOutput {
			return 0, fmt.Errorf("core: %q is not a system output", o)
		}
	}
	prod := 1.0
	for o, co := range outputCrits {
		imp, err := Impact(p, s, o)
		if err != nil {
			return 0, err
		}
		prod *= 1 - co*imp
	}
	c := 1 - prod
	if c < 0 {
		c = 0
	}
	if c > 1 {
		c = 1
	}
	return c, nil
}
