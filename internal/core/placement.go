package core

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// Thresholds parameterize the placement rule engines. The defaults
// reproduce the paper's selections on its own permeability matrix.
type Thresholds struct {
	// ExposureMin is the signal-error-exposure level above which a
	// signal is worth guarding (guideline R1).
	ExposureMin float64
	// ImpactMin is the impact level above which the extended framework
	// guards a signal even when its exposure is low (guideline R3:
	// "errors in this signal are relatively rare but costly").
	ImpactMin float64
	// WitnessPermeability marks signals fed through a near-certain
	// permeability: under error models that corrupt internal state, such
	// a signal witnesses corruption of its source (the paper's
	// ms_slot_nbr argument in Section 10).
	WitnessPermeability float64
}

// DefaultThresholds returns the thresholds used throughout the
// reproduction.
func DefaultThresholds() Thresholds {
	return Thresholds{
		ExposureMin:         0.9,
		ImpactMin:           0.25,
		WitnessPermeability: 0.999,
	}
}

// Rule identifies why a signal was selected or rejected.
type Rule string

// Selection and rejection rules. R1–R3 name the paper's guidelines.
const (
	// RuleR1Exposure: high signal error exposure (Section 5.2, R1).
	RuleR1Exposure Rule = "R1: high error exposure"
	// RuleR3Impact: high impact/criticality despite low exposure
	// (Section 9, R3).
	RuleR3Impact Rule = "R3: high impact on system output"
	// RuleWitness: permeability-1 witness of internal-state corruption
	// (Section 10).
	RuleWitness Rule = "witness: fed through permeability ~1 under internal error model"
	// RuleEHInternalSignal: the codified experience/heuristic rule —
	// guard every internally generated non-boolean signal (Section 5.1).
	RuleEHInternalSignal Rule = "EH: internally generated signal with direct influence"

	// Rejection rules, phrased like the motivations of Table 2.
	RejectLowExposure  Rule = "low error exposure"
	RejectZeroImpact   Rule = "no propagation path to a system output"
	RejectBoolean      Rule = "selected EA's not geared at boolean values"
	RejectSystemOutput Rule = "errors here most likely come from the guarded predecessor"
	RejectSystemInput  Rule = "hardware register, refreshed by the sensor"
)

// Candidate is the placement decision for one signal.
type Candidate struct {
	Signal   model.SignalID
	Selected bool
	// Rules lists the matched selection (or rejection) rules.
	Rules []Rule
	// Exposure, Impact and Criticality echo the profile for reporting.
	Exposure    float64
	Impact      float64
	Criticality float64
}

// Selection is the outcome of a placement pass.
type Selection struct {
	// Candidates holds one entry per signal, in declaration order.
	Candidates []Candidate
}

// Selected returns the chosen signals, sorted by descending exposure
// then name.
func (s Selection) Selected() []model.SignalID {
	var picked []Candidate
	for _, c := range s.Candidates {
		if c.Selected {
			picked = append(picked, c)
		}
	}
	sort.Slice(picked, func(i, j int) bool {
		if picked[i].Exposure != picked[j].Exposure {
			return picked[i].Exposure > picked[j].Exposure
		}
		return picked[i].Signal < picked[j].Signal
	})
	out := make([]model.SignalID, len(picked))
	for i, c := range picked {
		out[i] = c.Signal
	}
	return out
}

// Candidate returns the decision for one signal.
func (s Selection) Candidate(id model.SignalID) (Candidate, error) {
	for _, c := range s.Candidates {
		if c.Signal == id {
			return c, nil
		}
	}
	return Candidate{}, fmt.Errorf("core: no candidate for signal %q", id)
}

// SelectPA is the propagation-analysis placement of Section 5.3: guard
// signals whose error exposure is high, skipping booleans (the EA
// limitation of Table 2), signals with no onward propagation (errors
// there cannot affect the system output — the ms_slot_nbr rejection) and
// system outputs (guarded via their immediate predecessor — the TOC2
// rejection). On the paper's matrix this yields exactly
// {OutValue, i, SetValue, pulscnt}.
func SelectPA(pr *Profile, th Thresholds) Selection {
	multi := len(pr.System().SystemOutputs()) > 1
	var sel Selection
	for _, sp := range pr.Signals() {
		c := decide(sp, th, false, multi)
		sel.Candidates = append(sel.Candidates, c)
	}
	return sel
}

// SelectExtended is the extended placement of Sections 9–10: the PA rule
// extended with the effect rule R3 (guard high-impact low-exposure
// signals such as IsValue and mscnt) and, because the severe error model
// corrupts internal state everywhere, the witness rule (re-admitting
// ms_slot_nbr). On the paper's matrix this re-derives the EH set. Per
// R3's own wording — "the higher the criticality (or impact if the
// system only has one output signal)" — the effect measure is the
// criticality on multi-output systems and the impact otherwise.
func SelectExtended(pr *Profile, th Thresholds) Selection {
	multi := len(pr.System().SystemOutputs()) > 1
	var sel Selection
	for _, sp := range pr.Signals() {
		c := decide(sp, th, true, multi)
		sel.Candidates = append(sel.Candidates, c)
	}
	return sel
}

// effectOf returns R3's effect measure for the signal.
func effectOf(sp SignalProfile, multiOutput bool) float64 {
	if multiOutput {
		return sp.Criticality
	}
	return sp.Impact
}

func decide(sp SignalProfile, th Thresholds, extended, multiOutput bool) Candidate {
	c := Candidate{
		Signal:      sp.Signal,
		Exposure:    sp.Exposure,
		Impact:      sp.Impact,
		Criticality: sp.Criticality,
	}
	// Structural exclusions first.
	switch {
	case sp.Kind == model.KindSystemInput:
		c.Rules = append(c.Rules, RejectSystemInput)
		return c
	case sp.IsBool:
		c.Rules = append(c.Rules, RejectBoolean)
		return c
	case sp.Kind == model.KindSystemOutput:
		c.Rules = append(c.Rules, RejectSystemOutput)
		return c
	}

	effect := effectOf(sp, multiOutput)
	if sp.Exposure >= th.ExposureMin {
		switch {
		case sp.Impact > 0:
			c.Selected = true
			c.Rules = append(c.Rules, RuleR1Exposure)
		case extended && sp.MaxInPermeability >= th.WitnessPermeability:
			c.Selected = true
			c.Rules = append(c.Rules, RuleWitness)
		default:
			c.Rules = append(c.Rules, RejectZeroImpact)
		}
		if c.Selected && extended && effect >= th.ImpactMin {
			c.Rules = append(c.Rules, RuleR3Impact)
		}
		return c
	}

	if extended && effect >= th.ImpactMin {
		c.Selected = true
		c.Rules = append(c.Rules, RuleR3Impact)
		return c
	}
	c.Rules = append(c.Rules, RejectLowExposure)
	return c
}

// SelectEH codifies the experience/heuristic process of Section 5.1
// (identify signal paths, identify internally generated signals with
// direct influence, rank by criticality, decide): guard every internally
// generated non-boolean signal. On the target this yields the paper's
// EH set of seven signals.
func SelectEH(sys *model.System) Selection {
	var sel Selection
	for _, sig := range sys.Signals() {
		c := Candidate{Signal: sig.ID}
		switch {
		case sig.Kind == model.KindSystemInput:
			c.Rules = append(c.Rules, RejectSystemInput)
		case sig.Kind == model.KindSystemOutput:
			c.Rules = append(c.Rules, RejectSystemOutput)
		case sig.IsBool():
			c.Rules = append(c.Rules, RejectBoolean)
		default:
			c.Selected = true
			c.Rules = append(c.Rules, RuleEHInternalSignal)
		}
		sel.Candidates = append(sel.Candidates, c)
	}
	return sel
}
