package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestMonteCarloMatchesAnalyticOnChain(t *testing.T) {
	// Single path: Eq. 2 and the simulation must agree (no sharing).
	sys, err := model.NewBuilder("mc-chain").
		AddSignal("in", model.Uint(8), model.AsSystemInput()).
		AddSignal("m", model.Uint(8)).
		AddSignal("out", model.Uint(8), model.AsSystemOutput(1)).
		AddModule("A", model.In("in"), model.Out("m")).
		AddModule("B", model.In("m"), model.Out("out")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	p := NewPermeability(sys)
	p.MustSet("A", 1, 1, 0.6)
	p.MustSet("B", 1, 1, 0.5)

	exact, err := Impact(p, "in", "out")
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MonteCarloImpact(p, "in", "out", 40_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mc-exact) > 0.01 {
		t.Errorf("MC %v vs exact %v on a single path", mc, exact)
	}
}

func TestMonteCarloBelowEq2OnSharedSuffix(t *testing.T) {
	// Two paths sharing their suffix: Eq. 2 treats them as independent
	// and overestimates; the simulation accounts for the shared edge.
	sys, err := model.NewBuilder("mc-shared").
		AddSignal("in", model.Uint(8), model.AsSystemInput()).
		AddSignal("a", model.Uint(8)).
		AddSignal("b", model.Uint(8)).
		AddSignal("j", model.Uint(8)).
		AddSignal("out", model.Uint(8), model.AsSystemOutput(1)).
		AddModule("SPLIT", model.In("in"), model.Out("a", "b")).
		AddModule("JOIN", model.In("a", "b"), model.Out("j")).
		AddModule("TAIL", model.In("j"), model.Out("out")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	p := NewPermeability(sys)
	p.MustSet("SPLIT", 1, 1, 0.7)
	p.MustSet("SPLIT", 1, 2, 0.7)
	p.MustSet("JOIN", 1, 1, 0.8)
	p.MustSet("JOIN", 2, 1, 0.8)
	p.MustSet("TAIL", 1, 1, 0.5) // shared by both paths

	eq2, err := Impact(p, "in", "out")
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MonteCarloImpact(p, "in", "out", 60_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Exact by hand: P(j erroneous) = 1-(1-.7*.8)^2 = 0.8064; through
	// the shared tail: 0.4032. Eq. 2: 1-(1-.28)^2 = 0.4816.
	if math.Abs(mc-0.4032) > 0.01 {
		t.Errorf("MC = %v, want ~0.4032", mc)
	}
	if eq2 <= mc {
		t.Errorf("Eq.2 %v not above MC %v despite shared suffix", eq2, mc)
	}
	if math.Abs(eq2-0.4816) > 1e-9 {
		t.Errorf("Eq.2 = %v, want 0.4816", eq2)
	}
}

func TestMonteCarloSelfAndErrors(t *testing.T) {
	sys := chainSystem(t)
	p := NewPermeability(sys)
	got, err := MonteCarloImpact(p, "out", "out", 10, 1)
	if err != nil || got != 1 {
		t.Errorf("self impact = %v, %v", got, err)
	}
	if _, err := MonteCarloImpact(p, "ghost", "out", 10, 1); err == nil {
		t.Error("unknown source accepted")
	}
	if _, err := MonteCarloImpact(p, "in", "ghost", 10, 1); err == nil {
		t.Error("unknown destination accepted")
	}
	if _, err := MonteCarloImpact(p, "in", "out", 0, 1); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestMonteCarloDeterministicPerSeed(t *testing.T) {
	sys := chainSystem(t)
	p := NewPermeability(sys)
	p.MustSet("A", 1, 1, 0.5)
	p.MustSet("B", 1, 1, 0.5)
	a, _ := MonteCarloImpact(p, "in", "out", 5000, 42)
	b, _ := MonteCarloImpact(p, "in", "out", 5000, 42)
	if a != b {
		t.Errorf("same-seed estimates differ: %v vs %v", a, b)
	}
}

func TestMonteCarloHandlesCycles(t *testing.T) {
	sys := loopSystem(t)
	p := NewPermeability(sys)
	p.MustSet("M", 2, 1, 1.0) // s -> s self-loop at permeability 1
	p.MustSet("M", 2, 2, 0.3)
	got, err := MonteCarloImpact(p, "s", "out", 20_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("cyclic MC = %v, want ~0.3", got)
	}
}

// Property: the FKG bound — Eq. 2 impact >= Monte-Carlo impact (up to
// sampling noise) on random DAGs, and both lie in [0, 1].
func TestQuickEq2DominatesMonteCarlo(t *testing.T) {
	f := func(seed int64) bool {
		sys, p := randomDAG(seed)
		for _, o := range sys.SystemOutputs() {
			for _, s := range sys.SystemInputs() {
				eq2, err := Impact(p, s, o)
				if err != nil {
					return false
				}
				mc, err := MonteCarloImpact(p, s, o, 3000, seed+7)
				if err != nil {
					return false
				}
				if mc < 0 || mc > 1 {
					return false
				}
				// Allow 4-sigma sampling noise.
				tol := 4 * math.Sqrt(mc*(1-mc)/3000)
				if mc > eq2+tol+0.01 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestMonteCarloWorkerInvariant pins the deterministic merge: sample
// blocks are seeded by block index, so the estimate cannot depend on
// the worker count.
func TestMonteCarloWorkerInvariant(t *testing.T) {
	sys := loopSystem(t)
	p := NewPermeability(sys)
	p.MustSet("M", 1, 1, 0.4)
	p.MustSet("M", 1, 2, 0.7)
	p.MustSet("M", 2, 1, 0.9)
	p.MustSet("M", 2, 2, 0.3)
	// Enough samples to span several blocks.
	ref, err := MonteCarloImpactWorkers(p, "in", "out", 3*mcBlock+17, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 16} {
		got, err := MonteCarloImpactWorkers(p, "in", "out", 3*mcBlock+17, 11, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Errorf("workers=%d: estimate %v != serial %v", workers, got, ref)
		}
	}
	if _, err := MonteCarloImpactWorkers(p, "in", "out", 100, 1, 0); err == nil {
		t.Error("zero workers accepted")
	}
}
