package core

import (
	"math"
	"testing"

	"repro/internal/model"
)

// chainSystem builds:
//
//	in -> [A] -> m1 -> [B] -> out
//	          -> m2 ----^
//
// A has outputs m1, m2; B has inputs m1, m2 and output out.
func chainSystem(t *testing.T) *model.System {
	t.Helper()
	sys, err := model.NewBuilder("chain").
		AddSignal("in", model.Uint(16), model.AsSystemInput()).
		AddSignal("m1", model.Uint(16)).
		AddSignal("m2", model.Uint(16)).
		AddSignal("out", model.Uint(16), model.AsSystemOutput(1)).
		AddModule("A", model.In("in"), model.Out("m1", "m2")).
		AddModule("B", model.In("m1", "m2"), model.Out("out")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// loopSystem builds a system with a self-loop (s -> M -> s) alongside a
// path to the output, mirroring the target's i signal.
func loopSystem(t *testing.T) *model.System {
	t.Helper()
	sys, err := model.NewBuilder("loop").
		AddSignal("in", model.Uint(16), model.AsSystemInput()).
		AddSignal("s", model.Uint(16)).
		AddSignal("out", model.Uint(16), model.AsSystemOutput(1)).
		AddModule("M", model.In("in", "s"), model.Out("s", "out")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPermeabilitySetGet(t *testing.T) {
	sys := chainSystem(t)
	p := NewPermeability(sys)

	if err := p.Set("A", 1, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	got, err := p.Value("A", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 {
		t.Errorf("Value = %v, want 0.5", got)
	}
	// Unset pairs default to zero.
	if got, _ := p.Value("A", 1, 2); got != 0 {
		t.Errorf("unset Value = %v, want 0", got)
	}
}

func TestPermeabilitySetErrors(t *testing.T) {
	sys := chainSystem(t)
	p := NewPermeability(sys)
	if err := p.Set("Z", 1, 1, 0.5); err == nil {
		t.Error("unknown module accepted")
	}
	if err := p.Set("A", 5, 1, 0.5); err == nil {
		t.Error("bad input index accepted")
	}
	if err := p.Set("A", 1, 5, 0.5); err == nil {
		t.Error("bad output index accepted")
	}
	if err := p.Set("A", 1, 1, 1.5); err == nil {
		t.Error("permeability > 1 accepted")
	}
	if err := p.Set("A", 1, 1, -0.1); err == nil {
		t.Error("negative permeability accepted")
	}
}

func TestModulePermeabilityMeasures(t *testing.T) {
	sys := chainSystem(t)
	p := NewPermeability(sys)
	p.MustSet("A", 1, 1, 0.8)
	p.MustSet("A", 1, 2, 0.4)

	rel, err := p.RelativePermeability("A")
	if err != nil {
		t.Fatal(err)
	}
	if !approx(rel, 0.6) {
		t.Errorf("RelativePermeability = %v, want 0.6", rel)
	}
	nw, err := p.NonWeightedPermeability("A")
	if err != nil {
		t.Fatal(err)
	}
	if !approx(nw, 1.2) {
		t.Errorf("NonWeightedPermeability = %v, want 1.2", nw)
	}
	if _, err := p.RelativePermeability("Z"); err == nil {
		t.Error("unknown module accepted")
	}
}

func TestSignalExposureIsSumOfIncomingPermeabilities(t *testing.T) {
	sys := chainSystem(t)
	p := NewPermeability(sys)
	p.MustSet("B", 1, 1, 0.885) // m1 -> out
	p.MustSet("B", 2, 1, 0.896) // m2 -> out

	x, err := p.SignalExposure("out")
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x, 1.781) { // the paper's OutValue arithmetic
		t.Errorf("SignalExposure(out) = %v, want 1.781", x)
	}
	rx, err := p.RelativeSignalExposure("out")
	if err != nil {
		t.Fatal(err)
	}
	if !approx(rx, 1.781/2) {
		t.Errorf("RelativeSignalExposure(out) = %v, want %v", rx, 1.781/2)
	}
	// System input: no producing pairs.
	if x, _ := p.SignalExposure("in"); x != 0 {
		t.Errorf("SignalExposure(in) = %v, want 0", x)
	}
	if _, err := p.SignalExposure("ghost"); err == nil {
		t.Error("unknown signal accepted")
	}
}

func TestModuleExposure(t *testing.T) {
	sys := chainSystem(t)
	p := NewPermeability(sys)
	p.MustSet("A", 1, 1, 0.5) // in -> m1
	p.MustSet("A", 1, 2, 0.3) // in -> m2

	// B's inputs are m1 (exposure .5) and m2 (exposure .3).
	x, err := p.ModuleExposure("B")
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x, 0.8) {
		t.Errorf("ModuleExposure(B) = %v, want 0.8", x)
	}
	rx, err := p.RelativeModuleExposure("B")
	if err != nil {
		t.Fatal(err)
	}
	if !approx(rx, 0.4) {
		t.Errorf("RelativeModuleExposure(B) = %v, want 0.4", rx)
	}
}

func TestImpactSimpleChain(t *testing.T) {
	sys := chainSystem(t)
	p := NewPermeability(sys)
	p.MustSet("A", 1, 1, 0.5) // in -> m1
	p.MustSet("A", 1, 2, 0.2) // in -> m2
	p.MustSet("B", 1, 1, 0.8) // m1 -> out
	p.MustSet("B", 2, 1, 0.5) // m2 -> out

	// Two paths: in->m1->out (0.4) and in->m2->out (0.1).
	imp, err := Impact(p, "in", "out")
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - (1-0.4)*(1-0.1)
	if !approx(imp, want) {
		t.Errorf("Impact = %v, want %v", imp, want)
	}

	// Single path from an intermediate.
	imp, err = Impact(p, "m1", "out")
	if err != nil {
		t.Fatal(err)
	}
	if !approx(imp, 0.8) {
		t.Errorf("Impact(m1) = %v, want 0.8", imp)
	}
}

func TestImpactSelfIsOneAndNoPathIsZero(t *testing.T) {
	sys := chainSystem(t)
	p := NewPermeability(sys)
	imp, err := Impact(p, "out", "out")
	if err != nil {
		t.Fatal(err)
	}
	if imp != 1 {
		t.Errorf("Impact(out, out) = %v, want 1", imp)
	}
	// No permeabilities set: all paths weigh zero.
	imp, err = Impact(p, "in", "out")
	if err != nil {
		t.Fatal(err)
	}
	if imp != 0 {
		t.Errorf("Impact with zero matrix = %v, want 0", imp)
	}
	if _, err := Impact(p, "ghost", "out"); err == nil {
		t.Error("unknown source accepted")
	}
	if _, err := Impact(p, "in", "ghost"); err == nil {
		t.Error("unknown destination accepted")
	}
}

func TestImpactPrunesSelfLoop(t *testing.T) {
	sys := loopSystem(t)
	p := NewPermeability(sys)
	p.MustSet("M", 2, 1, 1.0) // s -> s: permeability 1 self-loop
	p.MustSet("M", 2, 2, 0.3) // s -> out
	p.MustSet("M", 1, 2, 0.6) // in -> out
	p.MustSet("M", 1, 1, 0.4) // in -> s

	// The s->s loop must not let the path s->s->out double-count: the
	// only admissible path from s to out is the direct edge.
	imp, err := Impact(p, "s", "out")
	if err != nil {
		t.Fatal(err)
	}
	if !approx(imp, 0.3) {
		t.Errorf("Impact(s, out) = %v, want 0.3 (self-loop pruned)", imp)
	}

	// From in: paths in->out (0.6) and in->s->out (0.4*0.3 = 0.12).
	imp, err = Impact(p, "in", "out")
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - (1-0.6)*(1-0.12)
	if !approx(imp, want) {
		t.Errorf("Impact(in, out) = %v, want %v", imp, want)
	}
}

func TestCriticalitySingleOutputScales(t *testing.T) {
	sys := chainSystem(t)
	p := NewPermeability(sys)
	p.MustSet("A", 1, 1, 0.5)
	p.MustSet("B", 1, 1, 0.8)

	// out has criticality 1.0: C_s == impact.
	imp, _ := Impact(p, "in", "out")
	c, err := Criticality(p, "in")
	if err != nil {
		t.Fatal(err)
	}
	if !approx(c, imp) {
		t.Errorf("Criticality = %v, want impact %v", c, imp)
	}

	// Halving the output criticality halves C_s (single output).
	c2, err := CriticalityWith(p, "in", map[model.SignalID]float64{"out": 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(c2, 0.5*imp) {
		t.Errorf("CriticalityWith(0.5) = %v, want %v", c2, 0.5*imp)
	}
}

func TestCriticalityWithValidation(t *testing.T) {
	sys := chainSystem(t)
	p := NewPermeability(sys)
	if _, err := CriticalityWith(p, "in", map[model.SignalID]float64{"out": 1.5}); err == nil {
		t.Error("criticality > 1 accepted")
	}
	if _, err := CriticalityWith(p, "in", map[model.SignalID]float64{"ghost": 0.5}); err == nil {
		t.Error("unknown output accepted")
	}
	if _, err := CriticalityWith(p, "in", map[model.SignalID]float64{"m1": 0.5}); err == nil {
		t.Error("non-output accepted as output")
	}
	if _, err := CriticalityWith(p, "ghost", nil); err == nil {
		t.Error("unknown signal accepted")
	}
}

func TestCriticalityMultiOutput(t *testing.T) {
	sys, err := model.NewBuilder("multi").
		AddSignal("in", model.Uint(16), model.AsSystemInput()).
		AddSignal("actuator", model.Uint(16), model.AsSystemOutput(1.0)).
		AddSignal("diag", model.Uint(16), model.AsSystemOutput(0.2)).
		AddModule("M", model.In("in"), model.Out("actuator", "diag")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	p := NewPermeability(sys)
	p.MustSet("M", 1, 1, 0.5) // in -> actuator
	p.MustSet("M", 1, 2, 0.9) // in -> diag

	// C = 1 - (1 - 1.0*0.5)(1 - 0.2*0.9)
	c, err := Criticality(p, "in")
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - (1-0.5)*(1-0.18)
	if !approx(c, want) {
		t.Errorf("Criticality = %v, want %v", c, want)
	}

	// Same impacts, different criticalities: "two signals with the same
	// impact may have different criticalities" — rescaling the diag
	// output must change C.
	c2, err := CriticalityWith(p, "in", map[model.SignalID]float64{"actuator": 1, "diag": 1})
	if err != nil {
		t.Fatal(err)
	}
	if c2 <= c {
		t.Errorf("raising output criticality did not raise C: %v <= %v", c2, c)
	}
}

func TestPermeabilityJSONRoundTrip(t *testing.T) {
	sys := chainSystem(t)
	p := NewPermeability(sys)
	p.MustSet("A", 1, 1, 0.8)
	p.MustSet("B", 2, 1, 0.25)

	data, err := p.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalPermeability(sys, data)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range sys.Edges() {
		if got.Get(e) != p.Get(e) {
			t.Errorf("edge %v: %v != %v", e, got.Get(e), p.Get(e))
		}
	}
}

func TestUnmarshalPermeabilityValidation(t *testing.T) {
	sys := chainSystem(t)
	other := loopSystem(t)
	p := NewPermeability(sys)
	data, err := p.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalPermeability(other, data); err == nil {
		t.Error("matrix accepted against wrong system")
	}
	if _, err := UnmarshalPermeability(sys, []byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	bad := []byte(`{"system":"chain","entries":[{"module":"A","in":9,"out":1,"value":0.5}]}`)
	if _, err := UnmarshalPermeability(sys, bad); err == nil {
		t.Error("bad port accepted")
	}
	badVal := []byte(`{"system":"chain","entries":[{"module":"A","in":1,"out":1,"value":7}]}`)
	if _, err := UnmarshalPermeability(sys, badVal); err == nil {
		t.Error("out-of-range value accepted")
	}
}
