package core

import (
	"testing"
	"testing/quick"
)

func TestCloneIsIndependent(t *testing.T) {
	sys := chainSystem(t)
	p := NewPermeability(sys)
	p.MustSet("A", 1, 1, 0.5)
	cp := p.Clone()
	cp.MustSet("A", 1, 1, 0.9)
	if got, _ := p.Value("A", 1, 1); got != 0.5 {
		t.Errorf("mutating clone changed original: %v", got)
	}
	if got, _ := cp.Value("A", 1, 1); got != 0.9 {
		t.Errorf("clone value = %v", got)
	}
}

func TestScaleModule(t *testing.T) {
	sys := chainSystem(t)
	p := NewPermeability(sys)
	p.MustSet("A", 1, 1, 0.8)
	p.MustSet("A", 1, 2, 0.4)
	p.MustSet("B", 1, 1, 0.6)

	scaled, err := p.ScaleModule("A", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := scaled.Value("A", 1, 1); !approx(got, 0.4) {
		t.Errorf("A(1,1) = %v, want 0.4", got)
	}
	if got, _ := scaled.Value("A", 1, 2); !approx(got, 0.2) {
		t.Errorf("A(1,2) = %v, want 0.2", got)
	}
	// Other modules untouched; original untouched.
	if got, _ := scaled.Value("B", 1, 1); got != 0.6 {
		t.Errorf("B(1,1) = %v, want 0.6", got)
	}
	if got, _ := p.Value("A", 1, 1); got != 0.8 {
		t.Errorf("original mutated: %v", got)
	}

	// Scaling up clamps at 1.
	up, err := p.ScaleModule("A", 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := up.Value("A", 1, 1); got != 1 {
		t.Errorf("upscaled = %v, want clamp 1", got)
	}

	if _, err := p.ScaleModule("Z", 0.5); err == nil {
		t.Error("unknown module accepted")
	}
	if _, err := p.ScaleModule("A", -1); err == nil {
		t.Error("negative factor accepted")
	}
}

func TestScaleEdge(t *testing.T) {
	sys := chainSystem(t)
	p := NewPermeability(sys)
	p.MustSet("A", 1, 1, 0.8)
	p.MustSet("A", 1, 2, 0.4)

	scaled, err := p.ScaleEdge("A", 1, 1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := scaled.Value("A", 1, 1); !approx(got, 0.2) {
		t.Errorf("scaled edge = %v", got)
	}
	if got, _ := scaled.Value("A", 1, 2); got != 0.4 {
		t.Errorf("sibling edge touched: %v", got)
	}
	if _, err := p.ScaleEdge("A", 9, 1, 0.5); err == nil {
		t.Error("bad port accepted")
	}
}

func TestPlanContainmentRanksEffectiveModules(t *testing.T) {
	sys := chainSystem(t)
	p := NewPermeability(sys)
	p.MustSet("A", 1, 1, 0.9)
	p.MustSet("B", 1, 1, 0.9)

	options, err := PlanContainment(p, "in", "out", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(options) != 2 {
		t.Fatalf("options = %d, want 2", len(options))
	}
	for _, o := range options {
		if o.Before <= o.After {
			t.Errorf("containing %s did not reduce impact: %v -> %v", o.Module, o.Before, o.After)
		}
		// The single path goes through both modules: scaling either by
		// 0.1 scales the path weight by 0.1.
		if !approx(o.Before, 0.81) || !approx(o.After, 0.081) {
			t.Errorf("option %s = %v -> %v, want 0.81 -> 0.081", o.Module, o.Before, o.After)
		}
	}
	if _, err := PlanContainment(p, "ghost", "out", 0.1); err == nil {
		t.Error("unknown signal accepted")
	}
}

// Property: scaling any module by f in [0,1] never increases any
// impact (monotonicity under containment).
func TestQuickContainmentMonotone(t *testing.T) {
	f := func(seed int64, modSel, fRaw uint8) bool {
		sys, p := randomDAG(seed)
		mods := sys.ModuleIDs()
		mod := mods[int(modSel)%len(mods)]
		factor := float64(fRaw) / 255
		scaled, err := p.ScaleModule(mod, factor)
		if err != nil {
			return false
		}
		for _, s := range sys.SignalIDs() {
			for _, o := range sys.SystemOutputs() {
				before, err1 := Impact(p, s, o)
				after, err2 := Impact(scaled, s, o)
				if err1 != nil || err2 != nil {
					return false
				}
				if after > before+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestWhatIfDrivesConformanceLoop(t *testing.T) {
	// The Section 9 loop: a violated impact condition, fixed by
	// containing the module the plan ranks highest.
	pr, _ := placementSystem(t)
	p := pr.Permeability()
	conds := Conditions{
		MaxModulePermeability: -1,
		MaxModuleExposure:     -1,
		MaxSignalExposure:     -1,
		MaxSignalImpact:       0.5,
	}
	findings, err := CheckConformance(pr, conds)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("setup: no impact violations")
	}

	contained, err := p.ScaleModule("SINK", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	pr2, err := BuildProfile(contained)
	if err != nil {
		t.Fatal(err)
	}
	findings2, err := CheckConformance(pr2, conds)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings2) >= len(findings) {
		t.Errorf("containment did not reduce findings: %d -> %d", len(findings), len(findings2))
	}
}

func TestScaleModuleEdgeFactors(t *testing.T) {
	sys := chainSystem(t)
	p := NewPermeability(sys)
	p.MustSet("A", 1, 1, 0.8)
	p.MustSet("A", 1, 2, 0.4)
	p.MustSet("B", 1, 1, 0.6)

	// Factor 0 zeroes the module's pairs exactly and leaves the rest.
	zeroed, err := p.ScaleModule("A", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := zeroed.Value("A", 1, 1); got != 0 {
		t.Errorf("A(1,1) = %v, want exactly 0", got)
	}
	if got, _ := zeroed.Value("A", 1, 2); got != 0 {
		t.Errorf("A(1,2) = %v, want exactly 0", got)
	}
	if got, _ := zeroed.Value("B", 1, 1); got != 0.6 {
		t.Errorf("B(1,1) = %v, want 0.6", got)
	}

	// Factor exactly 1 is a bit-identical no-op.
	same, err := p.ScaleModule("A", 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range sys.Edges() {
		if same.Get(e) != p.Get(e) {
			t.Errorf("factor-1 scale changed %v: %v -> %v", e, p.Get(e), same.Get(e))
		}
	}

	// A product landing exactly on 1 stays 1 without the clamp firing.
	exact, err := p.ScaleModule("A", 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := exact.Value("A", 1, 2); got != 1 {
		t.Errorf("A(1,2) scaled by 2.5 = %v, want exactly 1", got)
	}
	// 0.8 * 2.5 = 2 clamps to 1.
	if got, _ := exact.Value("A", 1, 1); got != 1 {
		t.Errorf("A(1,1) scaled by 2.5 = %v, want clamp to 1", got)
	}
}
