package core

import (
	"fmt"

	"repro/internal/model"
)

// Conditions are project-level dependability requirements on the
// profile, per Section 9 of the paper: "a possible approach to placement
// of EDM's and ERM's may be to set up specific conditions which the
// software must conform to" — a maximum error permeability per module
// (minimum containment), a maximum exposure, and a maximum impact per
// signal. A negative limit disables that condition.
type Conditions struct {
	// MaxModulePermeability bounds every module's relative permeability
	// (its normalized ability to let errors through).
	MaxModulePermeability float64
	// MaxModuleExposure bounds every module's relative exposure.
	MaxModuleExposure float64
	// MaxSignalExposure bounds every signal's error exposure.
	MaxSignalExposure float64
	// MaxSignalImpact bounds every non-output signal's impact on any
	// system output.
	MaxSignalImpact float64
}

// DisabledConditions returns a Conditions value with every limit off.
func DisabledConditions() Conditions {
	return Conditions{
		MaxModulePermeability: -1,
		MaxModuleExposure:     -1,
		MaxSignalExposure:     -1,
		MaxSignalImpact:       -1,
	}
}

// ConformanceKind identifies which condition a finding violates.
type ConformanceKind int

// Conformance finding kinds.
const (
	KindModulePermeability ConformanceKind = iota + 1
	KindModuleExposure
	KindSignalExposure
	KindSignalImpact
)

// String implements fmt.Stringer.
func (k ConformanceKind) String() string {
	switch k {
	case KindModulePermeability:
		return "module permeability"
	case KindModuleExposure:
		return "module exposure"
	case KindSignalExposure:
		return "signal exposure"
	case KindSignalImpact:
		return "signal impact"
	default:
		return "unknown condition"
	}
}

// ConformanceFinding is one violated condition with the remedial advice
// the paper's Section 9 attaches to it.
type ConformanceFinding struct {
	Kind   ConformanceKind
	Module model.ModuleID // set for module-level findings
	Signal model.SignalID // set for signal-level findings
	Value  float64
	Limit  float64
	Advice string
}

// String implements fmt.Stringer.
func (f ConformanceFinding) String() string {
	subject := string(f.Signal)
	if f.Module != "" {
		subject = string(f.Module)
	}
	return fmt.Sprintf("%s of %s = %.3f exceeds limit %.3f: %s",
		f.Kind, subject, f.Value, f.Limit, f.Advice)
}

// CheckConformance evaluates the profile against the conditions and
// returns every violation, module findings first, then signal findings,
// in declaration order.
func CheckConformance(pr *Profile, c Conditions) ([]ConformanceFinding, error) {
	var out []ConformanceFinding
	p := pr.Permeability()
	sys := pr.System()

	for _, mod := range sys.ModuleIDs() {
		if c.MaxModulePermeability >= 0 {
			v, err := p.RelativePermeability(mod)
			if err != nil {
				return nil, err
			}
			if v > c.MaxModulePermeability {
				out = append(out, ConformanceFinding{
					Kind: KindModulePermeability, Module: mod,
					Value: v, Limit: c.MaxModulePermeability,
					Advice: "allocate resources to this module to increase its error containment",
				})
			}
		}
		if c.MaxModuleExposure >= 0 {
			v, err := p.RelativeModuleExposure(mod)
			if err != nil {
				return nil, err
			}
			if v > c.MaxModuleExposure {
				out = append(out, ConformanceFinding{
					Kind: KindModuleExposure, Module: mod,
					Value: v, Limit: c.MaxModuleExposure,
					Advice: "protect this module, or contain the modules responsible for its exposure",
				})
			}
		}
	}

	for _, sp := range pr.Signals() {
		if c.MaxSignalExposure >= 0 && sp.Exposure > c.MaxSignalExposure {
			out = append(out, ConformanceFinding{
				Kind: KindSignalExposure, Signal: sp.Signal,
				Value: sp.Exposure, Limit: c.MaxSignalExposure,
				Advice: "guard this signal, or contain the producing module",
			})
		}
		if c.MaxSignalImpact >= 0 && sp.Kind != model.KindSystemOutput && sp.Impact > c.MaxSignalImpact {
			out = append(out, ConformanceFinding{
				Kind: KindSignalImpact, Signal: sp.Signal,
				Value: sp.Impact, Limit: c.MaxSignalImpact,
				Advice: "error containment from this signal to the system outputs is insufficient",
			})
		}
	}
	return out, nil
}

// ModuleThresholds parameterize ERM (error recovery mechanism)
// placement at module granularity, per guideline R2: "the higher the
// error permeability values of a module the lower its ability to
// contain errors ... it may be more cost effective to place ERM's in
// those modules".
type ModuleThresholds struct {
	// PermeabilityMin selects modules whose relative permeability is at
	// least this value.
	PermeabilityMin float64
	// ExposureMin additionally selects modules whose relative exposure
	// is at least this value (R1 applied at module level).
	ExposureMin float64
}

// DefaultModuleThresholds returns the thresholds used by the tools.
func DefaultModuleThresholds() ModuleThresholds {
	return ModuleThresholds{PermeabilityMin: 0.5, ExposureMin: 1.0}
}

// ModuleCandidate is the ERM placement decision for one module.
type ModuleCandidate struct {
	Module model.ModuleID
	// RelativePermeability and RelativeExposure echo the measures.
	RelativePermeability float64
	RelativeExposure     float64
	Selected             bool
	Rules                []Rule
}

// Module-level rules.
const (
	// RuleR2Permeability: low containment — place ERMs here (R2).
	RuleR2Permeability Rule = "R2: high module permeability (low containment)"
	// RuleR1ModuleExposure: module likely to see propagating errors (R1).
	RuleR1ModuleExposure Rule = "R1: high module exposure"
	// RejectContained: the module contains errors adequately.
	RejectContained Rule = "adequate containment and low exposure"
)

// SelectERM ranks modules for error recovery mechanisms using R1/R2 at
// module granularity. Candidates are returned in declaration order.
func SelectERM(p *Permeability, th ModuleThresholds) ([]ModuleCandidate, error) {
	var out []ModuleCandidate
	for _, mod := range p.sys.ModuleIDs() {
		perm, err := p.RelativePermeability(mod)
		if err != nil {
			return nil, err
		}
		exp, err := p.RelativeModuleExposure(mod)
		if err != nil {
			return nil, err
		}
		c := ModuleCandidate{
			Module:               mod,
			RelativePermeability: perm,
			RelativeExposure:     exp,
		}
		if perm >= th.PermeabilityMin {
			c.Selected = true
			c.Rules = append(c.Rules, RuleR2Permeability)
		}
		if exp >= th.ExposureMin {
			c.Selected = true
			c.Rules = append(c.Rules, RuleR1ModuleExposure)
		}
		if !c.Selected {
			c.Rules = append(c.Rules, RejectContained)
		}
		out = append(out, c)
	}
	return out, nil
}
