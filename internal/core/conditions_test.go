package core

import (
	"strings"
	"testing"
)

func TestCheckConformanceFindsViolations(t *testing.T) {
	pr, _ := placementSystem(t)
	c := Conditions{
		MaxModulePermeability: 0.5,
		MaxModuleExposure:     0.5,
		MaxSignalExposure:     0.9,
		MaxSignalImpact:       0.5,
	}
	findings, err := CheckConformance(pr, c)
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[ConformanceKind][]ConformanceFinding{}
	for _, f := range findings {
		byKind[f.Kind] = append(byKind[f.Kind], f)
	}

	// SRC lets 0.95+1.0+0.05+0.95 through over 4 pairs = 0.7375 > 0.5.
	found := false
	for _, f := range byKind[KindModulePermeability] {
		if f.Module == "SRC" {
			found = true
			if f.Value <= f.Limit {
				t.Errorf("finding value %v not above limit %v", f.Value, f.Limit)
			}
		}
	}
	if !found {
		t.Error("SRC permeability violation not found")
	}

	// hot (0.95) and dead (1.0) exceed the signal exposure limit.
	sigs := map[string]bool{}
	for _, f := range byKind[KindSignalExposure] {
		sigs[string(f.Signal)] = true
	}
	if !sigs["hot"] || !sigs["dead"] {
		t.Errorf("signal exposure violations = %v, want hot and dead", sigs)
	}

	// rare/hot/flag impact 0.9 > 0.5; the output itself is exempt.
	for _, f := range byKind[KindSignalImpact] {
		if f.Signal == "out" {
			t.Error("system output flagged for impact on itself")
		}
	}
	if len(byKind[KindSignalImpact]) == 0 {
		t.Error("no impact violations found")
	}

	// Findings render with advice.
	if s := findings[0].String(); !strings.Contains(s, "exceeds limit") {
		t.Errorf("finding String() = %q", s)
	}
}

func TestCheckConformanceDisabled(t *testing.T) {
	pr, _ := placementSystem(t)
	findings, err := CheckConformance(pr, DisabledConditions())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("disabled conditions produced %d findings", len(findings))
	}
}

func TestCheckConformanceZeroLimitsFlagEverythingNonzero(t *testing.T) {
	pr, _ := placementSystem(t)
	findings, err := CheckConformance(pr, Conditions{
		MaxModulePermeability: 0,
		MaxModuleExposure:     0,
		MaxSignalExposure:     0,
		MaxSignalImpact:       0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) < 6 {
		t.Errorf("zero limits found only %d findings", len(findings))
	}
}

func TestSelectERM(t *testing.T) {
	pr, _ := placementSystem(t)
	p := pr.Permeability()

	cands, err := SelectERM(p, ModuleThresholds{PermeabilityMin: 0.8, ExposureMin: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	byMod := map[string]ModuleCandidate{}
	for _, c := range cands {
		byMod[string(c.Module)] = c
	}

	// SINK: permeability (0.9+0.9+0.9)/3 = 0.9 >= 0.8 -> R2 selects.
	sink := byMod["SINK"]
	if !sink.Selected {
		t.Error("SINK not selected despite high permeability")
	}
	hasRule := func(c ModuleCandidate, r Rule) bool {
		for _, got := range c.Rules {
			if got == r {
				return true
			}
		}
		return false
	}
	if !hasRule(sink, RuleR2Permeability) {
		t.Errorf("SINK rules = %v, want R2", sink.Rules)
	}

	// SRC: permeability 0.7375 < 0.8, exposure 0 (system input feed).
	src := byMod["SRC"]
	if src.Selected {
		t.Errorf("SRC selected: %+v", src)
	}
	if !hasRule(src, RejectContained) {
		t.Errorf("SRC rules = %v, want containment rejection", src.Rules)
	}
}

func TestSelectERMExposureRule(t *testing.T) {
	pr, _ := placementSystem(t)
	p := pr.Permeability()
	// With an exposure threshold SINK's mean input exposure
	// ((0.95 + 0.05 + 0.95)/3 = 0.65) crosses, R1 selects it even when
	// the permeability rule is out of reach.
	cands, err := SelectERM(p, ModuleThresholds{PermeabilityMin: 2, ExposureMin: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.Module == "SINK" {
			if !c.Selected {
				t.Errorf("SINK not selected by exposure rule: %+v", c)
			}
			found := false
			for _, r := range c.Rules {
				if r == RuleR1ModuleExposure {
					found = true
				}
			}
			if !found {
				t.Errorf("SINK rules = %v, want module-exposure rule", c.Rules)
			}
		}
	}
}

func TestConformanceKindStrings(t *testing.T) {
	for _, k := range []ConformanceKind{
		KindModulePermeability, KindModuleExposure,
		KindSignalExposure, KindSignalImpact, ConformanceKind(0),
	} {
		if k.String() == "" {
			t.Errorf("ConformanceKind(%d).String() empty", int(k))
		}
	}
}
