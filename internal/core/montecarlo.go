package core

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
)

// MonteCarloImpact estimates Pr{error in to | error in from} under the
// edge-independence reading of the permeability matrix: in each sample,
// every module input/output pair independently passes errors with its
// permeability, and an error placed on from propagates over the
// resulting subgraph (to a fixpoint, so cycles are handled).
//
// This is the quantity Eq. 2 would equal "if one could assume
// independence all over" (paper Section 8) — except that Eq. 2
// additionally assumes the propagation paths are independent, which
// fails when paths share edges. Since path events are positively
// associated (Harris/FKG), the analytic impact of Eq. 2 can only
// overestimate this simulation; the gap measures how much the shared
// structure matters (ablation A4 in EXPERIMENTS.md).
func MonteCarloImpact(p *Permeability, from, to model.SignalID, samples int, seed int64) (float64, error) {
	if _, ok := p.sys.Signal(from); !ok {
		return 0, fmt.Errorf("core: unknown signal %q", from)
	}
	if _, ok := p.sys.Signal(to); !ok {
		return 0, fmt.Errorf("core: unknown signal %q", to)
	}
	if samples < 1 {
		return 0, fmt.Errorf("core: samples %d must be >= 1", samples)
	}
	if from == to {
		return 1, nil
	}

	edges := p.sys.Edges()
	rng := rand.New(rand.NewSource(seed))
	hits := 0
	passed := make([]bool, len(edges))
	erroneous := make(map[model.SignalID]bool, len(p.sys.SignalIDs()))

	for s := 0; s < samples; s++ {
		for i, e := range edges {
			passed[i] = rng.Float64() < p.Get(e)
		}
		for k := range erroneous {
			delete(erroneous, k)
		}
		erroneous[from] = true
		// Propagate to a fixpoint: the erroneous set grows monotonically
		// and is bounded by the signal count, so this terminates.
		for changed := true; changed; {
			changed = false
			for i, e := range edges {
				if passed[i] && erroneous[e.From] && !erroneous[e.To] {
					erroneous[e.To] = true
					changed = true
				}
			}
		}
		if erroneous[to] {
			hits++
		}
	}
	return float64(hits) / float64(samples), nil
}
