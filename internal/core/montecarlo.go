package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/model"
)

// mcBlock is the number of samples drawn per RNG stream. Sampling is
// split into fixed-size blocks, each seeded from (seed, block index),
// so the estimate depends only on (seed, samples) — never on how many
// workers drained the blocks or in what order.
const mcBlock = 4096

// MonteCarloImpact estimates Pr{error in to | error in from} under the
// edge-independence reading of the permeability matrix: in each sample,
// every module input/output pair independently passes errors with its
// permeability, and an error placed on from propagates over the
// resulting subgraph (to a fixpoint, so cycles are handled).
//
// This is the quantity Eq. 2 would equal "if one could assume
// independence all over" (paper Section 8) — except that Eq. 2
// additionally assumes the propagation paths are independent, which
// fails when paths share edges. Since path events are positively
// associated (Harris/FKG), the analytic impact of Eq. 2 can only
// overestimate this simulation; the gap measures how much the shared
// structure matters (ablation A4 in EXPERIMENTS.md).
//
// Samples are drawn in seed-indexed blocks spread across GOMAXPROCS
// workers; the result is identical for any worker count. Use
// MonteCarloImpactWorkers to pick the worker count explicitly.
func MonteCarloImpact(p *Permeability, from, to model.SignalID, samples int, seed int64) (float64, error) {
	return MonteCarloImpactWorkers(p, from, to, samples, seed, runtime.GOMAXPROCS(0))
}

// MonteCarloImpactWorkers is MonteCarloImpact with an explicit worker
// count (1 runs fully serial). The estimate is worker-count-invariant.
func MonteCarloImpactWorkers(p *Permeability, from, to model.SignalID, samples int, seed int64, workers int) (float64, error) {
	fromIdx, ok := p.sys.SignalIndex(from)
	if !ok {
		return 0, fmt.Errorf("core: unknown signal %q", from)
	}
	toIdx, ok := p.sys.SignalIndex(to)
	if !ok {
		return 0, fmt.Errorf("core: unknown signal %q", to)
	}
	if samples < 1 {
		return 0, fmt.Errorf("core: samples %d must be >= 1", samples)
	}
	if workers < 1 {
		return 0, fmt.Errorf("core: workers %d must be >= 1", workers)
	}
	if from == to {
		return 1, nil
	}

	g := compileMC(p)
	blocks := (samples + mcBlock - 1) / mcBlock
	if workers > blocks {
		workers = blocks
	}

	var next atomic.Int64
	var hits atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := newMCState(g)
			local := 0
			for {
				b := int(next.Add(1)) - 1
				if b >= blocks {
					break
				}
				n := mcBlock
				if first := b * mcBlock; samples-first < n {
					n = samples - first
				}
				local += st.runBlock(g, mcSeed(seed, b), n, int32(fromIdx), int32(toIdx))
			}
			hits.Add(int64(local))
		}()
	}
	wg.Wait()
	return float64(hits.Load()) / float64(samples), nil
}

// mcGraph is the dense propagation graph for sampling: only edges that
// can ever pass an error (permeability > 0, not a self-loop) are kept,
// grouped by source signal for worklist propagation.
type mcGraph struct {
	n     int       // signals in the system
	perm  []float64 // per active edge, in system edge order
	eTo   []int32   // destination signal per active edge
	start []int32   // active-edge range per signal: edges of s are [start[s], start[s+1])
}

func compileMC(p *Permeability) *mcGraph {
	sys := p.sys
	n := sys.NumSignals()
	g := &mcGraph{n: n, start: make([]int32, n+1)}
	type act struct {
		from, to int32
		perm     float64
	}
	var active []act
	for _, e := range sys.Edges() {
		w := p.Get(e)
		if w <= 0 || e.From == e.To {
			continue // can never pass, or a no-op on an already-erroneous signal
		}
		fi, _ := sys.SignalIndex(e.From)
		ti, _ := sys.SignalIndex(e.To)
		active = append(active, act{int32(fi), int32(ti), w})
	}
	for _, a := range active {
		g.start[a.from+1]++
	}
	for i := 0; i < n; i++ {
		g.start[i+1] += g.start[i]
	}
	g.perm = make([]float64, len(active))
	g.eTo = make([]int32, len(active))
	fill := append([]int32(nil), g.start[:n]...)
	for _, a := range active {
		g.perm[fill[a.from]] = a.perm
		g.eTo[fill[a.from]] = a.to
		fill[a.from]++
	}
	return g
}

// mcState is per-worker scratch, allocated once and reused across every
// sample the worker draws.
type mcState struct {
	passed []bool  // per active edge, this sample's pass draw
	stamp  []int32 // per signal: epoch at which it became erroneous
	queue  []int32 // BFS worklist
	epoch  int32
}

func newMCState(g *mcGraph) *mcState {
	return &mcState{
		passed: make([]bool, len(g.perm)),
		stamp:  make([]int32, g.n),
		queue:  make([]int32, 0, g.n),
	}
}

func (st *mcState) runBlock(g *mcGraph, seed int64, samples int, from, to int32) int {
	rng := rand.New(rand.NewSource(seed))
	hits := 0
	for s := 0; s < samples; s++ {
		for i, w := range g.perm {
			st.passed[i] = rng.Float64() < w
		}
		st.epoch++
		if st.epoch == 0 { // int32 wrap: reset stamps and restart epochs
			for i := range st.stamp {
				st.stamp[i] = 0
			}
			st.epoch = 1
		}
		// Breadth-first propagation: each signal enters the erroneous set
		// at most once, each active edge is examined at most once.
		st.queue = append(st.queue[:0], from)
		st.stamp[from] = st.epoch
		hit := false
		for len(st.queue) > 0 {
			v := st.queue[len(st.queue)-1]
			st.queue = st.queue[:len(st.queue)-1]
			for i := g.start[v]; i < g.start[v+1]; i++ {
				t := g.eTo[i]
				if st.passed[i] && st.stamp[t] != st.epoch {
					st.stamp[t] = st.epoch
					if t == to {
						hit = true
					}
					st.queue = append(st.queue, t)
				}
			}
		}
		if hit {
			hits++
		}
	}
	return hits
}

// mcSeed derives the RNG seed for one sample block via a splitmix64
// round, decorrelating the per-block streams.
func mcSeed(seed int64, block int) int64 {
	z := uint64(seed) + uint64(block+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
